// Command quickstart walks through the paper's Example 2.1 end to end
// with the in-process API: a calendar policy of two views, a query
// that is blocked in isolation, and the same query allowed once the
// history contains the application's access check.
package main

import (
	"context"
	"fmt"
	"log"

	beyond "repro"
	"repro/internal/sqlparser"
	"repro/internal/trace"
)

func main() {
	// Schema: the paper's calendar application.
	sch := beyond.NewSchema().
		Table("Events").
		NotNullCol("EId", beyond.Int).
		NotNullCol("Title", beyond.Text).
		Col("Notes", beyond.Text).
		PK("EId").Done().
		Table("Attendance").
		NotNullCol("UId", beyond.Int).
		NotNullCol("EId", beyond.Int).
		PK("UId", "EId").Done().
		MustBuild()

	db := beyond.NewDB(sch)
	db.MustExec("INSERT INTO Events (EId, Title, Notes) VALUES (2, 'retro', 'bring snacks')")
	db.MustExec("INSERT INTO Attendance (UId, EId) VALUES (1, 2)")

	// Policy: the paper's views V1 and V2.
	pol := beyond.MustNewPolicy(sch, map[string]string{
		"V1": "SELECT EId FROM Attendance WHERE UId = ?MyUId",
		"V2": "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?MyUId",
	})
	chk := beyond.NewChecker(pol)
	sess := beyond.Session(map[string]any{"MyUId": 1})

	// Q2 in isolation: blocked.
	q2 := "SELECT * FROM Events WHERE EId=2"
	d, err := chk.CheckSQL(context.Background(), q2, beyond.Args(), sess, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q2 alone:       allowed=%v (%s)\n", d.Allowed, d.Reason)

	// Q1: allowed, and its result enters the history.
	q1 := "SELECT 1 FROM Attendance WHERE UId=1 AND EId=2"
	d, err = chk.CheckSQL(context.Background(), q1, beyond.Args(), sess, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q1:             allowed=%v (%s)\n", d.Allowed, d.Reason)

	res, err := db.QuerySQL(q1, beyond.Args())
	if err != nil {
		log.Fatal(err)
	}
	tr := &trace.Trace{}
	tr.Append(trace.Entry{
		SQL:     q1,
		Stmt:    sqlparser.MustParseSelect(q1),
		Args:    beyond.Args(),
		Columns: res.Columns,
		Rows:    rowsOf(res),
	})

	// Q2 with Q1's non-empty result in the history: allowed.
	d, err = chk.CheckSQL(context.Background(), q2, beyond.Args(), sess, tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q2 after Q1:    allowed=%v (%s)\n", d.Allowed, d.Reason)

	stats := chk.Stats()
	fmt.Printf("checker stats:  decisions=%d allowed=%d blocked=%d\n",
		stats.Decisions, stats.Allowed, stats.Blocked)
}

func rowsOf(res *beyond.Result) [][]beyond.Value {
	out := make([][]beyond.Value, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r
	}
	return out
}
