// Command calendar runs the paper's calendar application behind the
// network enforcement proxy, drives Listing 1's handler over TCP, and
// then extracts the policy back out of the handler code (Example 3.1's
// round trip).
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	beyond "repro"
	"repro/internal/proxy"
)

func main() {
	ctx := context.Background()
	fixture, err := beyond.FixtureByName("calendar")
	if err != nil {
		log.Fatal(err)
	}
	db := fixture.MustNewDB(8)
	chk := beyond.NewChecker(fixture.Policy())

	// Start the proxy on a loopback socket.
	srv := beyond.NewProxy(db, chk, beyond.Enforce)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("proxy listening on %s (mode %s)\n", addr, beyond.Enforce)

	cl, err := beyond.DialProxy(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Hello(ctx, map[string]any{"MyUId": 1}); err != nil {
		log.Fatal(err)
	}

	// The application tries to fetch an event directly: blocked.
	_, err = cl.Query(ctx, "SELECT * FROM Events WHERE EId = ?", 2)
	if errors.Is(err, proxy.ErrBlocked) {
		fmt.Printf("direct fetch blocked: %v\n", err)
	} else {
		log.Fatalf("expected a policy block, got %v", err)
	}

	// Listing 1's discipline: access check first, then fetch.
	check, err := cl.Query(ctx, "SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	if check.Empty() {
		fmt.Println("user 1 does not attend event 2; rendering 404")
		return
	}
	event, err := cl.Query(ctx, "SELECT * FROM Events WHERE EId = ?", 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("event fetched after access check: %s\n", event.Rows[0][1].Text())

	st, err := cl.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proxy stats: %d queries, %d allowed, %d blocked, %d cache hits\n",
		st.Queries, st.Allowed, st.Blocked, st.CacheHits)

	// Example 3.1: extract the policy from the handler code and
	// compare with the operator's hand-written one.
	extracted, err := beyond.ExtractPolicy(fixture.Schema, fixture.App)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nextracted policy (symbolic execution of the handlers):\n%s", extracted)
	acc := beyond.CompareExtraction(extracted, fixture.AppTruth())
	fmt.Printf("vs hand-written policy: recall %.2f, precision %.2f, exact=%v\n",
		acc.Recall(), acc.Precision(), acc.Exact())
}
