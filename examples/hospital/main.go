// Command hospital audits the paper's Example 4.1 policy for
// sensitive-data disclosure: the prior-agnostic PQI/NQI criteria flag
// that joining the two staff views narrows every patient's disease
// down to what their doctor treats, k-anonymity quantifies the group
// sizes, and the Bayesian baseline shows why the paper distrusts
// prior-dependent criteria.
package main

import (
	"context"
	"fmt"
	"log"

	beyond "repro"
	"repro/internal/cq"
	"repro/internal/disclosure"
)

func main() {
	fixture, err := beyond.FixtureByName("hospital")
	if err != nil {
		log.Fatal(err)
	}
	pol := fixture.Policy()
	fmt.Printf("policy under audit:\n%s\n", pol)

	// PQI/NQI audit of the operator's sensitive queries.
	rep, err := beyond.AuditPolicy(context.Background(), pol, fixture.Sensitive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prior-agnostic audit (§4.3):\n%s\n", rep)

	// k-anonymity of the adversary-computable join release.
	db := fixture.MustNewDB(16)
	k, err := beyond.KAnonymity(db,
		"SELECT p.DocId, t.Disease FROM Patients p JOIN Treats t ON p.DocId = t.DocId",
		[]string{"DocId"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k-anonymity of the doctor/disease join release (quasi-id DocId): k = %d\n\n", k)

	// Bayesian baseline: the same observation shifts different priors
	// differently (§4.2's critique).
	shiftDemo(fixture)
}

func shiftDemo(fixture *beyond.Fixture) {
	s := fixture.Schema
	pol := fixture.Policy()
	mk := func(v any) beyond.Value { return beyond.Session(map[string]any{"x": v})["x"] }
	pneumonia, tb, flu := mk("pneumonia"), mk("tb"), mk("flu")
	doc1, doc2, pid, name := mk(1), mk(2), mk(1), mk("john")

	treats := [][]beyond.Value{{doc1, pneumonia}, {doc1, tb}, {doc2, flu}}
	doctors := [][]beyond.Value{{doc1, mk("dr1")}, {doc2, mk("dr2")}}
	actual := cq.Instance{
		"treats":   treats,
		"doctors":  doctors,
		"patients": {{pid, name, doc1, pneumonia}},
	}
	fixed := cq.Instance{"treats": treats, "doctors": doctors}
	candidates := func(pPneu, pTB, pFlu float64) []disclosure.CandidateTuple {
		return []disclosure.CandidateTuple{
			{Table: "patients", Row: []beyond.Value{pid, name, doc1, pneumonia}, Prob: pPneu},
			{Table: "patients", Row: []beyond.Value{pid, name, doc1, tb}, Prob: pTB},
			{Table: "patients", Row: []beyond.Value{pid, name, doc2, flu}, Prob: pFlu},
		}
	}
	exactlyOne := func(inst cq.Instance) bool { return len(inst["patients"]) == 1 }
	sens := cq.MustFromSQL(s, "SELECT PName, Disease FROM Patients")[0]
	answer := []beyond.Value{name, pneumonia}

	for _, prior := range []disclosure.Prior{
		{Name: "uninformed (uniform)", Fixed: fixed, Vars: candidates(0.5, 0.5, 0.5), Valid: exactlyOne},
		{Name: "neighbor who saw John coughing", Fixed: fixed, Vars: candidates(0.9, 0.3, 0.3), Valid: exactlyOne},
	} {
		r, err := disclosure.Shift(s, prior, actual, pol, nil, sens, answer)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("prior %-32s P(pneumonia) %.3f -> %.3f (shift %.3f)\n",
			prior.Name+":", r.PriorProb, r.PosteriorProb, r.Delta())
	}
	fmt.Println("\nthe Bayesian verdict depends on the prior — the paper's case for prior-agnostic criteria (§4.3)")
}
