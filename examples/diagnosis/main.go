// Command diagnosis demonstrates the paper's §5: a query gets blocked,
// and the tool produces everything Dora needs — the two-database proof
// of violation, contained-rewriting patches, the synthesized access
// check from Example 2.1, and a policy patch proposal — then verifies
// that applying the access check unblocks the query.
package main

import (
	"context"
	"fmt"
	"log"

	beyond "repro"
	"repro/internal/diagnose"
	"repro/internal/policy"
)

func main() {
	ctx := context.Background()
	fixture, err := beyond.FixtureByName("calendar")
	if err != nil {
		log.Fatal(err)
	}
	chk := beyond.NewChecker(fixture.Policy())
	sess := beyond.Session(map[string]any{"MyUId": 1})

	blocked := "SELECT * FROM Events WHERE EId=2"
	diag, err := beyond.DiagnoseBlocked(ctx, chk, sess, blocked, beyond.Args(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(diag)

	// Apply the first synthesized access check as the application
	// patch: run the probe, record its result, and re-check.
	if len(diag.Checks) == 0 {
		log.Fatal("no access check synthesized")
	}
	fmt.Printf("applying patch: run %q before the query\n", diag.Checks[0].CheckSQL)

	db := fixture.MustNewDB(8)
	srv := beyond.NewProxy(db, chk, beyond.Enforce)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	cl, err := beyond.DialProxy(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Hello(ctx, map[string]any{"MyUId": 1}); err != nil {
		log.Fatal(err)
	}
	// The patched application issues the probe first (seeded data has
	// user 1 attending event 2).
	if _, err := cl.Query(ctx, "SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", 1, 2); err != nil {
		log.Fatal(err)
	}
	rows, err := cl.Query(ctx, blocked)
	if err != nil {
		log.Fatalf("patched flow should be allowed: %v", err)
	}
	fmt.Printf("patched flow allowed; fetched event %q\n", rows.Rows[0][1].Text())

	// Policy-patch route (§5.2.1): extract from the app augmented with
	// the offending behaviour and diff against the current policy.
	broadened := fixture.Policy().Clone()
	extracted := policy.MustNew(fixture.Schema, map[string]string{
		"XEvents": "SELECT EId, Title, Notes FROM Events",
	})
	patches := diagnose.SuggestPolicyPatches(broadened, extracted)
	fmt.Printf("\npolicy patches suggested by re-extraction: %d\n", len(patches))
	for _, v := range patches {
		fmt.Printf("  add %s: %s\n", v.Name, v.SQL)
	}
	ok, err := diagnose.PatchAllowsQuery(ctx, broadened, patches, sess, blocked, beyond.Args(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("applying the policy patch would allow the query: %v\n", ok)
	fmt.Println("(every patch that looks unreasonable — like exposing all events — tells Dora the app, not the policy, is the culprit)")
}
