# Development targets. `make ci` is what a gate should run: formatting,
# vet, the tier-1 suite (shuffled, so inter-test order dependencies
# can't hide), the race-detector pass (which includes the concurrency
# stress tests in internal/proxy and internal/checker), a short fuzz
# smoke of the SQL parser, and staticcheck when installed.

GO ?= go

# Version stamp for -version (internal/buildinfo); a plain `go build`
# without these falls back to Go's embedded VCS metadata.
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
COMMIT  ?= $(shell git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)
DATE    ?= $(shell date -u +%Y-%m-%dT%H:%M:%SZ 2>/dev/null || echo unknown)
LDFLAGS  = -ldflags "-X repro/internal/buildinfo.Version=$(VERSION) -X repro/internal/buildinfo.Commit=$(COMMIT) -X repro/internal/buildinfo.Date=$(DATE)"

.PHONY: build test vet race bench bench-json hotpath pipeline coldpath coldsmoke allocbudget openloop opensmoke ingress pgsmoke driversmoke shadowsmoke saturate satsmoke clusterbench clustersmoke clusterkill fmtcheck fuzz fuzzwal fuzzwire killrecover staticcheck ci

build:
	$(GO) build $(LDFLAGS) ./...

# Tier-1 suite (ROADMAP.md). -shuffle=on randomizes test execution
# order within each package.
test: build
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Hot-path and evaluation benchmarks.
bench:
	$(GO) test -bench 'CheckLongTrace|ParallelPrincipals|FactsLongTrace|ProxyRoundTrip|CheckMetrics' -benchmem ./...

# Machine-readable benchmark document; successive BENCH_*.json files
# checked in at the repo root form the performance trajectory.
# -against diffs the fresh document's pinned hotpath numbers against
# the previous one and fails on a >10% speedup regression.
bench-json:
	$(GO) run ./cmd/acbench -json BENCH_10.json -against BENCH_9.json

hotpath:
	$(GO) run ./cmd/acbench -hotpath

# Pipelining throughput table (protocol v2, window sweep).
pipeline:
	$(GO) run ./cmd/acbench -pipeline

# Cold-path policy-size sweep (serial scan vs compiled index vs
# index + worker pool).
coldpath:
	$(GO) run ./cmd/acbench -coldpath

# Fixed-iteration smoke of the cold-path benchmarks: catches a
# broken/pessimized cold path in CI without the noise sensitivity of
# time-based benching.
coldsmoke:
	$(GO) test -run '^$$' -bench 'BenchmarkColdPath' -benchtime=100x ./internal/checker

# Warm-path allocation contract: a fixed-iteration -benchmem smoke of
# the warm-tier benchmarks (front tier must report 0 allocs/op), then
# the budget tests that turn those numbers into hard gates — the
# checker's decide tiers, and the proxy's pooled encode path
# end-to-end (front-tier warm probe through wire encode must be
# exactly 0 allocs/op on the v2 surface).
allocbudget:
	$(GO) test -run '^$$' -bench 'BenchmarkWarmDecide' -benchmem -benchtime=100x ./internal/checker
	$(GO) test -run 'TestWarmDecideAllocBudget' -count=1 ./internal/checker
	$(GO) test -run '^$$' -bench 'BenchmarkWarmEncode' -benchmem -benchtime=100x ./internal/proxy
	$(GO) test -run 'TestWarmEncodeAllocBudget' -count=1 ./internal/proxy

# Full open-loop sweep (10k/100k/1M sessions); see README Load Testing.
openloop:
	$(GO) run ./cmd/acbench -openloop

# Seconds-long open-loop smoke for CI: a real proxy under Poisson
# arrivals, gating that the harness runs end to end and the proxy
# absorbs the offered rate without errors.
opensmoke:
	$(GO) run ./cmd/acbench -openloop -openloop-sessions 200 -openloop-ops 2500 -openloop-qps 500

# Ingress-surface comparison: serial decide throughput for the same
# statement through the v2 client, the database/sql driver, and the
# Postgres wire listener, all on one enforcement core.
ingress:
	$(GO) run ./cmd/acbench -ingress

# Full saturation-knee search: stepped open-loop ramp per ingress,
# binary-searching the highest offered QPS whose p99 stays under the
# SLO (default 5ms), with per-step CPU attribution. -sat-ablate
# reverts the ceiling lifts for a before/after pair; see README
# "Finding the ceiling".
saturate:
	$(GO) run ./cmd/acbench -saturate

# Seconds-long bounded saturate smoke for CI: a real knee search on
# the v2 ingress with a tight wall-clock budget, gating that the ramp,
# the step classifier, and the in-process profiler run end to end.
satsmoke:
	$(GO) run ./cmd/acbench -saturate -sat-ingress v2 -sat-budget 5s -sat-step 1s

# Postgres wire-protocol conformance: raw-socket client exercising the
# simple and extended flows, mid-transaction blocks, cancellation, the
# prepared-statement front-cache pin, and the connection limit.
pgsmoke:
	$(GO) test -count=1 ./internal/pgwire

# database/sql driver suite plus the cross-ingress decision-parity
# test (every fixture's corpus through v2, driver, and pgwire).
driversmoke:
	$(GO) test -count=1 ./driver
	$(GO) test -count=1 -run 'TestIngressDecisionParity|TestServeBothListeners' .

# Policy-trial lifecycle smoke: stage a divergent candidate over the
# fixture corpus, assert the proxy reports exactly the expected diff
# set, promote, and assert convergence with direct enforcement.
shadowsmoke:
	$(GO) test -count=1 -run 'TestShadowSmoke' .

# Full cluster knee sweep: aggregate sustained QPS at the p99 SLO over
# 1/2/4/8 in-process cluster nodes with ring-mixed (local + forwarded)
# durable sessions; see DESIGN.md §16.
clusterbench:
	$(GO) run ./cmd/acbench -cluster

# Cluster-mode CI smoke: a 3-node in-process cluster serves a
# mixed-session corpus through one entry node (some sessions local,
# some forwarded), every decision byte-matched against a single-node
# control, then one owner is closed and a history-dependent session it
# owned must re-decide identically from its follower's shipped WAL.
clustersmoke:
	$(GO) test -count=1 -run 'TestClusterSmoke' .

# Cluster kill-and-takeover integration test: SIGKILL a session's owner
# mid-corpus (a real child process), and the follower must serve the
# whole history-dependent corpus byte-identically to an unkilled
# control.
clusterkill:
	$(GO) test -count=1 -run 'TestClusterKillHandover' -v .

fmtcheck:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Ten-second fuzz smoke of the SQL parser; the corpus lives in
# internal/sqlparser/testdata.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/sqlparser

# Ten-second fuzz smoke of the WAL record decoder (torn writes, bit
# flips, truncation must never panic recovery).
fuzzwal:
	$(GO) test -fuzz=FuzzWALDecode -fuzztime=10s ./internal/durable

# Ten-second fuzz smoke of the proxy wire codec: the hand-rolled fast
# decoder must agree with the normalized reflective fallback on every
# line it accepts.
fuzzwire:
	$(GO) test -fuzz=FuzzWireDecode -fuzztime=10s ./internal/proxy

# Kill-and-recover integration test: run a WAL-backed proxy, SIGKILL
# it mid-workload, restart, and assert decision parity with an
# uncrashed control run.
killrecover:
	$(GO) test -run 'TestKillRecover' -v ./internal/durable

# staticcheck is optional tooling: run it when installed, succeed
# quietly when not, so CI works on minimal containers.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; fi

ci: fmtcheck vet test race coldsmoke allocbudget opensmoke satsmoke pgsmoke driversmoke shadowsmoke clustersmoke clusterkill fuzz fuzzwal fuzzwire killrecover staticcheck
