# Development targets. `make ci` is what a gate should run: vet, the
# tier-1 suite, and the race-detector pass (which includes the
# concurrency stress tests in internal/proxy and internal/checker).

GO ?= go

.PHONY: build test vet race bench hotpath ci

build:
	$(GO) build ./...

# Tier-1 suite (ROADMAP.md).
test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Hot-path and evaluation benchmarks.
bench:
	$(GO) test -bench 'CheckLongTrace|ParallelPrincipals|FactsLongTrace|ProxyRoundTrip' -benchmem ./...

hotpath:
	$(GO) run ./cmd/acbench -hotpath

ci: vet test race
