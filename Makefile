# Development targets. `make ci` is what a gate should run: formatting,
# vet, the tier-1 suite, the race-detector pass (which includes the
# concurrency stress tests in internal/proxy and internal/checker),
# and a short fuzz smoke of the SQL parser.

GO ?= go

.PHONY: build test vet race bench hotpath pipeline fmtcheck fuzz ci

build:
	$(GO) build ./...

# Tier-1 suite (ROADMAP.md).
test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Hot-path and evaluation benchmarks.
bench:
	$(GO) test -bench 'CheckLongTrace|ParallelPrincipals|FactsLongTrace|ProxyRoundTrip' -benchmem ./...

hotpath:
	$(GO) run ./cmd/acbench -hotpath

# Pipelining throughput table (protocol v2, window sweep).
pipeline:
	$(GO) run ./cmd/acbench -pipeline

fmtcheck:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Ten-second fuzz smoke of the SQL parser; the corpus lives in
# internal/sqlparser/testdata.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/sqlparser

ci: fmtcheck vet test race fuzz
