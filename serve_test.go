package beyond_test

import (
	"bufio"
	"context"
	"database/sql"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"

	beyond "repro"
	_ "repro/driver"
	"repro/internal/apps"
	"repro/internal/proxy"
)

// --- Minimal Postgres wire client (test-only, extended protocol) ---

type pgClient struct {
	c net.Conn
	r *bufio.Reader
}

func pgDial(t *testing.T, addr string, attrs map[string]string) *pgClient {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var body []byte
	body = binary.BigEndian.AppendUint32(body, 196608)
	body = append(append(body, "user"...), 0)
	body = append(append(body, "parity"...), 0)
	for k, v := range attrs {
		body = append(append(body, "attr."+k...), 0)
		body = append(append(body, v...), 0)
	}
	body = append(body, 0)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)+4))
	if _, err := c.Write(append(hdr[:], body...)); err != nil {
		t.Fatal(err)
	}
	p := &pgClient{c: c, r: bufio.NewReader(c)}
	if _, _, errMsg := p.untilReady(t); errMsg != "" {
		t.Fatalf("startup failed: %s", errMsg)
	}
	return p
}

func (p *pgClient) close() { p.c.Close() }

func (p *pgClient) readMsg(t *testing.T) (byte, []byte) {
	t.Helper()
	var hdr [5]byte
	if _, err := io.ReadFull(p.r, hdr[:]); err != nil {
		t.Fatalf("read: %v", err)
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	body := make([]byte, n-4)
	if _, err := io.ReadFull(p.r, body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return hdr[0], body
}

// untilReady drains messages through ReadyForQuery, returning DataRow
// payloads, and the SQLSTATE/message of the first ErrorResponse.
func (p *pgClient) untilReady(t *testing.T) (rows [][]byte, state, msg string) {
	t.Helper()
	for {
		typ, body := p.readMsg(t)
		switch typ {
		case 'Z':
			return rows, state, msg
		case 'D':
			rows = append(rows, body)
		case 'E':
			if state == "" {
				state, msg = parseErrFields(body)
			}
		}
	}
}

func parseErrFields(body []byte) (state, msg string) {
	for len(body) > 0 && body[0] != 0 {
		f := body[0]
		body = body[1:]
		i := 0
		for i < len(body) && body[i] != 0 {
			i++
		}
		v := string(body[:i])
		body = body[i+1:]
		switch f {
		case 'C':
			state = v
		case 'M':
			msg = v
		}
	}
	return state, msg
}

func pgTextArg(v any) (text string, oid int32) {
	switch x := v.(type) {
	case int:
		return fmt.Sprint(x), 20
	case int64:
		return fmt.Sprint(x), 20
	case float64:
		return fmt.Sprint(x), 701
	case bool:
		if x {
			return "t", 16
		}
		return "f", 16
	default:
		return fmt.Sprint(v), 25
	}
}

// extQuery runs sql with args through Parse/Bind/Execute/Sync.
func (p *pgClient) extQuery(t *testing.T, sqlText string, args []any) (nrows int, state, msg string) {
	t.Helper()
	var m []byte
	frame := func(typ byte, body []byte) {
		m = append(m, typ)
		m = binary.BigEndian.AppendUint32(m, uint32(len(body)+4))
		m = append(m, body...)
	}
	var parse []byte
	parse = append(parse, 0) // unnamed statement
	parse = append(append(parse, sqlText...), 0)
	parse = binary.BigEndian.AppendUint16(parse, uint16(len(args)))
	texts := make([]string, len(args))
	for i, a := range args {
		text, oid := pgTextArg(a)
		texts[i] = text
		parse = binary.BigEndian.AppendUint32(parse, uint32(oid))
	}
	frame('P', parse)
	var bind []byte
	bind = append(bind, 0, 0) // unnamed portal, unnamed statement
	bind = binary.BigEndian.AppendUint16(bind, 0)
	bind = binary.BigEndian.AppendUint16(bind, uint16(len(args)))
	for _, text := range texts {
		bind = binary.BigEndian.AppendUint32(bind, uint32(len(text)))
		bind = append(bind, text...)
	}
	bind = binary.BigEndian.AppendUint16(bind, 0)
	frame('B', bind)
	var exec []byte
	exec = append(exec, 0)
	exec = binary.BigEndian.AppendUint32(exec, 0)
	frame('E', exec)
	frame('S', nil)
	if _, err := p.c.Write(m); err != nil {
		t.Fatal(err)
	}
	rows, state, msg := p.untilReady(t)
	return len(rows), state, msg
}

// --- Facade tests ---

func TestServeRequiresListener(t *testing.T) {
	f := apps.Calendar()
	if _, err := beyond.Serve(f.MustNewDB(8), beyond.NewChecker(f.Policy()), beyond.Enforce); err == nil {
		t.Fatal("Serve with no listeners must fail")
	}
}

// TestServeBothListeners binds both ingress surfaces on one core and
// verifies each serves decisions, with both reporting into the one
// registry given to WithListenerMetrics.
func TestServeBothListeners(t *testing.T) {
	f := apps.Calendar()
	reg := beyond.NewMetrics()
	svc, err := beyond.Serve(f.MustNewDB(8), beyond.NewChecker(f.Policy()), beyond.Enforce,
		beyond.WithV2Listener("127.0.0.1:0"),
		beyond.WithPgListener("127.0.0.1:0"),
		beyond.WithListenerMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.V2Addr() == "" || svc.PgAddr() == "" {
		t.Fatalf("unbound listener: v2=%q pg=%q", svc.V2Addr(), svc.PgAddr())
	}
	if svc.Metrics() != reg {
		t.Fatal("Service.Metrics is not the WithListenerMetrics registry")
	}

	ctx := context.Background()
	cl, err := proxy.Dial(svc.V2Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Hello(ctx, map[string]any{"MyUId": int64(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Query(ctx, "SELECT EId FROM Attendance WHERE UId = ?", 1); err != nil {
		t.Fatal(err)
	}

	pc := pgDial(t, svc.PgAddr(), map[string]string{"MyUId": "1"})
	defer pc.close()
	n, state, msg := pc.extQuery(t, "SELECT EId FROM Attendance WHERE UId = $1", []any{1})
	if state != "" {
		t.Fatalf("pgwire query failed: %s %s", state, msg)
	}
	if n == 0 {
		t.Fatal("pgwire query returned no rows")
	}

	if got := reg.Counter("proxy.queries").Value(); got < 2 {
		t.Fatalf("shared registry saw %d queries, want >= 2 (one per surface)", got)
	}
}

// TestDeprecatedConstructorsCompatible pins the deprecated entry
// points at their original signatures: the shims must keep compiling
// for existing callers.
func TestDeprecatedConstructorsCompatible(t *testing.T) {
	var _ func(*beyond.DB, *beyond.Checker, beyond.ProxyMode, ...beyond.ProxyOption) *beyond.ProxyServer = beyond.NewProxy
	var _ func(string, ...proxy.ClientOption) (*beyond.ProxyClient, error) = beyond.DialProxy

	// And the shim still works: it builds the same core Serve binds.
	f := apps.Calendar()
	srv := beyond.NewProxy(f.MustNewDB(8), beyond.NewChecker(f.Policy()), beyond.Enforce,
		beyond.WithMaxConns(4))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := beyond.DialProxy(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Hello(context.Background(), map[string]any{"MyUId": int64(1)}); err != nil {
		t.Fatal(err)
	}
}

// --- Ingress decision parity (E-series corpus) ---

// decision is the ingress-independent outcome of one workload query.
type decision struct {
	allowed bool
	reason  string
	rows    int
}

// v2Decision runs one workload query over the native v2 client.
func v2Decision(t *testing.T, addr string, w apps.WorkloadQuery) decision {
	t.Helper()
	ctx := context.Background()
	cl, err := proxy.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Hello(ctx, map[string]any{"MyUId": w.UId}); err != nil {
		t.Fatal(err)
	}
	if w.PrimeSQL != "" {
		if _, err := cl.Query(ctx, w.PrimeSQL, w.PrimeArgs...); err != nil {
			t.Fatalf("%s: prime: %v", w.Label, err)
		}
	}
	res, err := cl.Query(ctx, w.SQL, w.Args...)
	if err != nil {
		var be *proxy.BlockedError
		if !errors.As(err, &be) {
			t.Fatalf("%s: v2: %v", w.Label, err)
		}
		return decision{allowed: false, reason: be.Reason}
	}
	return decision{allowed: true, rows: len(res.Rows)}
}

// driverDecision runs the same workload through an unmodified
// database/sql program.
func driverDecision(t *testing.T, addr string, w apps.WorkloadQuery) decision {
	t.Helper()
	ctx := context.Background()
	db, err := sql.Open("beyond", fmt.Sprintf("%s?MyUId=%d", addr, w.UId))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(1) // one conn = one session trace
	if w.PrimeSQL != "" {
		rows, err := db.QueryContext(ctx, w.PrimeSQL, w.PrimeArgs...)
		if err != nil {
			t.Fatalf("%s: prime: %v", w.Label, err)
		}
		for rows.Next() {
		}
		rows.Close()
	}
	rows, err := db.QueryContext(ctx, w.SQL, w.Args...)
	if err != nil {
		var be *proxy.BlockedError
		if !errors.As(err, &be) {
			t.Fatalf("%s: driver: %v", w.Label, err)
		}
		return decision{allowed: false, reason: be.Reason}
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("%s: driver rows: %v", w.Label, err)
	}
	return decision{allowed: true, rows: n}
}

// pgDecision runs the same workload through the raw Postgres wire
// protocol (extended flow), mapping the 42501 refusal back to the
// decision's reason text.
func pgDecision(t *testing.T, addr string, w apps.WorkloadQuery) decision {
	t.Helper()
	pc := pgDial(t, addr, map[string]string{"MyUId": fmt.Sprint(w.UId)})
	defer pc.close()
	if w.PrimeSQL != "" {
		if _, state, msg := pc.extQuery(t, w.PrimeSQL, w.PrimeArgs); state != "" {
			t.Fatalf("%s: prime: %s %s", w.Label, state, msg)
		}
	}
	n, state, msg := pc.extQuery(t, w.SQL, w.Args)
	if state != "" {
		if state != "42501" {
			t.Fatalf("%s: pgwire SQLSTATE = %s (%s), want 42501", w.Label, state, msg)
		}
		reason, ok := strings.CutPrefix(msg, "blocked by policy: ")
		if !ok {
			t.Fatalf("%s: pgwire block message %q lacks canonical prefix", w.Label, msg)
		}
		return decision{allowed: false, reason: reason}
	}
	return decision{allowed: true, rows: n}
}

// TestIngressDecisionParity is the PR's acceptance test: the E-series
// corpus of every fixture, executed through all three ingress
// surfaces — native v2 client, unmodified database/sql program, raw
// Postgres wire client — produces byte-identical decisions, and those
// decisions match the corpus ground truth.
func TestIngressDecisionParity(t *testing.T) {
	for _, f := range apps.All() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			svc, err := beyond.Serve(f.MustNewDB(20), beyond.NewChecker(f.Policy()), beyond.Enforce,
				beyond.WithV2Listener("127.0.0.1:0"),
				beyond.WithPgListener("127.0.0.1:0"))
			if err != nil {
				t.Fatal(err)
			}
			defer svc.Close()
			for _, w := range f.Corpus {
				v2 := v2Decision(t, svc.V2Addr(), w)
				drv := driverDecision(t, svc.V2Addr(), w)
				pg := pgDecision(t, svc.PgAddr(), w)
				if v2.allowed != w.WantAllowed {
					t.Errorf("%s: v2 allowed=%v, ground truth %v", w.Label, v2.allowed, w.WantAllowed)
				}
				if drv != v2 {
					t.Errorf("%s: driver decision %+v != v2 %+v", w.Label, drv, v2)
				}
				if pg != v2 {
					t.Errorf("%s: pgwire decision %+v != v2 %+v", w.Label, pg, v2)
				}
			}
		})
	}
}

// tightenedViews drops the lexicographically last view from a
// fixture's ground-truth policy: a deterministically different
// (strictly tighter) candidate for promote-parity runs.
func tightenedViews(t *testing.T, f *apps.Fixture) map[string]string {
	t.Helper()
	if len(f.PolicySQL) < 2 {
		t.Fatalf("%s: need at least two views to drop one", f.Name)
	}
	drop := ""
	for name := range f.PolicySQL {
		if name > drop {
			drop = name
		}
	}
	views := make(map[string]string, len(f.PolicySQL)-1)
	for name, sql := range f.PolicySQL {
		if name != drop {
			views[name] = sql
		}
	}
	return views
}

// TestIngressDecisionParityAcrossPromote extends the parity test with
// a mid-corpus policy promote: a proxy that staged and promoted a
// candidate while serving must decide the rest of the corpus — through
// all three ingress surfaces — byte-identically to a FRESH proxy
// started directly on the promoted policy. An online lifecycle that
// leaves stale warm state behind fails exactly here.
func TestIngressDecisionParityAcrossPromote(t *testing.T) {
	for _, f := range apps.All() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			candViews := tightenedViews(t, f)
			candidate := beyond.MustNewPolicy(f.Schema, candViews)
			if candidate.Fingerprint() == f.Policy().Fingerprint() {
				t.Fatal("candidate must differ from the active policy")
			}

			svc, err := beyond.Serve(f.MustNewDB(20), beyond.NewChecker(f.Policy()), beyond.Enforce,
				beyond.WithV2Listener("127.0.0.1:0"),
				beyond.WithPgListener("127.0.0.1:0"))
			if err != nil {
				t.Fatal(err)
			}
			defer svc.Close()

			// First half of the corpus under the incumbent policy: the
			// staged candidate shadows but never enforces.
			mid := len(f.Corpus) / 2
			if _, err := svc.StagePolicy(candViews); err != nil {
				t.Fatal(err)
			}
			for _, w := range f.Corpus[:mid] {
				v2 := v2Decision(t, svc.V2Addr(), w)
				if v2.allowed != w.WantAllowed {
					t.Errorf("%s: pre-promote v2 allowed=%v, ground truth %v", w.Label, v2.allowed, w.WantAllowed)
				}
			}

			pv, err := svc.PromotePolicy()
			if err != nil {
				t.Fatal(err)
			}
			if pv.Fingerprint != candidate.Fingerprint() {
				t.Fatalf("promoted fingerprint %q != candidate %q", pv.Fingerprint, candidate.Fingerprint())
			}

			// Fresh control proxy started directly on the new policy.
			ctrl, err := beyond.Serve(f.MustNewDB(20), beyond.NewChecker(candidate), beyond.Enforce,
				beyond.WithV2Listener("127.0.0.1:0"),
				beyond.WithPgListener("127.0.0.1:0"))
			if err != nil {
				t.Fatal(err)
			}
			defer ctrl.Close()

			for _, w := range f.Corpus[mid:] {
				promoted := v2Decision(t, svc.V2Addr(), w)
				fresh := v2Decision(t, ctrl.V2Addr(), w)
				if promoted != fresh {
					t.Errorf("%s: post-promote v2 %+v != fresh proxy %+v", w.Label, promoted, fresh)
				}
				drv := driverDecision(t, svc.V2Addr(), w)
				if drv != fresh {
					t.Errorf("%s: post-promote driver %+v != fresh proxy %+v", w.Label, drv, fresh)
				}
				pg := pgDecision(t, svc.PgAddr(), w)
				if pg != fresh {
					t.Errorf("%s: post-promote pgwire %+v != fresh proxy %+v", w.Label, pg, fresh)
				}
			}
		})
	}
}
