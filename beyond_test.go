package beyond_test

import (
	"context"
	"strings"
	"testing"

	beyond "repro"
)

// TestPublicAPIQuickstart exercises the facade end to end, mirroring
// the package example.
func TestPublicAPIQuickstart(t *testing.T) {
	sch := beyond.NewSchema().
		Table("Events").
		NotNullCol("EId", beyond.Int).
		NotNullCol("Title", beyond.Text).
		PK("EId").Done().
		Table("Attendance").
		NotNullCol("UId", beyond.Int).
		NotNullCol("EId", beyond.Int).
		PK("UId", "EId").Done().
		MustBuild()
	db := beyond.NewDB(sch)
	db.MustExec("INSERT INTO Events (EId, Title) VALUES (2, 'retro')")
	db.MustExec("INSERT INTO Attendance (UId, EId) VALUES (1, 2)")

	pol := beyond.MustNewPolicy(sch, map[string]string{
		"V1": "SELECT EId FROM Attendance WHERE UId = ?MyUId",
	})
	chk := beyond.NewChecker(pol)
	sess := beyond.Session(map[string]any{"MyUId": 1})

	d, err := chk.CheckSQL(context.Background(), "SELECT EId FROM Attendance WHERE UId = 1", beyond.Args(), sess, nil)
	if err != nil || !d.Allowed {
		t.Fatalf("own attendance should be allowed: %+v %v", d, err)
	}
	d, err = chk.CheckSQL(context.Background(), "SELECT Title FROM Events", beyond.Args(), sess, nil)
	if err != nil || d.Allowed {
		t.Fatalf("titles should be blocked: %+v %v", d, err)
	}
}

func TestPublicAPIFixtures(t *testing.T) {
	fs := beyond.Fixtures()
	if len(fs) != 4 {
		t.Fatalf("fixtures: %d", len(fs))
	}
	f, err := beyond.FixtureByName("calendar")
	if err != nil {
		t.Fatal(err)
	}
	p, err := beyond.ExtractPolicy(f.Schema, f.App)
	if err != nil {
		t.Fatal(err)
	}
	acc := beyond.CompareExtraction(p, f.AppTruth())
	if !acc.Exact() {
		t.Fatalf("calendar extraction should be exact: %+v\n%s", acc, p)
	}
}

func TestPublicAPIProxyAndDiagnosis(t *testing.T) {
	f, err := beyond.FixtureByName("calendar")
	if err != nil {
		t.Fatal(err)
	}
	db := f.MustNewDB(8)
	chk := beyond.NewChecker(f.Policy())
	srv := beyond.NewProxy(db, chk, beyond.Enforce)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := beyond.DialProxy(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Hello(context.Background(), map[string]any{"MyUId": 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Query(context.Background(), "SELECT EId FROM Attendance WHERE UId = ?", 1); err != nil {
		t.Fatal(err)
	}

	diag, err := beyond.DiagnoseBlocked(context.Background(), chk, f.Session(1),
		"SELECT * FROM Events WHERE EId=2", beyond.Args(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if diag.Counter == nil || len(diag.Checks) == 0 {
		t.Fatalf("diagnosis incomplete: %+v", diag)
	}
	if !strings.Contains(diag.String(), "access check") {
		t.Error("diagnosis rendering missing access check section")
	}
}

func TestPublicAPIAudit(t *testing.T) {
	f, err := beyond.FixtureByName("hospital")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := beyond.AuditPolicy(context.Background(), f.Policy(), f.Sensitive)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) == 0 || !rep.Findings[0].NQI.Holds {
		t.Fatalf("hospital audit should flag NQI: %+v", rep.Findings)
	}
	db := f.MustNewDB(12)
	k, err := beyond.KAnonymity(db, "SELECT DocId FROM Patients", []string{"DocId"})
	if err != nil || k < 1 {
		t.Fatalf("k-anonymity: %d %v", k, err)
	}
}
