package driver

import (
	"context"
	sqldriver "database/sql/driver"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/proxy"
	"repro/internal/sqlparser"
)

// conn is one pooled connection: a v2-protocol client with its bound
// session. database/sql serializes use of a conn, matching the
// history-dependence of compliance decisions (one conn = one trace).
type conn struct {
	cl *proxy.Client
}

var (
	_ sqldriver.Conn           = (*conn)(nil)
	_ sqldriver.QueryerContext = (*conn)(nil)
	_ sqldriver.ExecerContext  = (*conn)(nil)
	_ sqldriver.Pinger         = (*conn)(nil)
)

func (c *conn) Close() error { return c.cl.Close() }

// Prepare computes the statement's parameter count eagerly (NumInput
// is how database/sql validates arguments client-side). The text
// itself still travels per execution: preparation is a client-side
// affair in the v2 protocol, and the server's parse cache plus the
// checker's statement-identity front cache make re-submission as
// cheap as a server-side prepared statement.
func (c *conn) Prepare(query string) (sqldriver.Stmt, error) {
	return c.prepare(query)
}

func (c *conn) PrepareContext(_ context.Context, query string) (sqldriver.Stmt, error) {
	return c.prepare(query)
}

func (c *conn) prepare(query string) (sqldriver.Stmt, error) {
	n := -1 // unknown: skip client-side arity checking
	if parsed, err := sqlparser.ParseNorm(query); err == nil {
		n = sqlparser.NumPositionalParams(parsed)
	}
	return &stmt{c: c, query: query, numInput: n}, nil
}

// Begin exists to satisfy driver.Conn. The engine has no transactional
// storage; Commit is a no-op and Rollback reports the limitation.
func (c *conn) Begin() (sqldriver.Tx, error) {
	return noopTx{}, nil
}

func (c *conn) Ping(ctx context.Context) error {
	_, err := c.cl.Stats(ctx)
	return err
}

func (c *conn) QueryContext(ctx context.Context, query string, args []sqldriver.NamedValue) (sqldriver.Rows, error) {
	vals, err := convertArgs(args)
	if err != nil {
		return nil, err
	}
	res, err := c.cl.Query(ctx, query, vals...)
	if err != nil {
		return nil, err
	}
	return &rows{res: res}, nil
}

func (c *conn) ExecContext(ctx context.Context, query string, args []sqldriver.NamedValue) (sqldriver.Result, error) {
	vals, err := convertArgs(args)
	if err != nil {
		return nil, err
	}
	n, err := c.cl.Exec(ctx, query, vals...)
	if err != nil {
		return nil, err
	}
	return result{affected: int64(n)}, nil
}

// convertArgs maps driver values to wire arguments. Ordinal-only: the
// protocol's named parameters (?Name) are bound server-side from
// session attributes, not from client args.
func convertArgs(args []sqldriver.NamedValue) ([]any, error) {
	out := make([]any, len(args))
	for i, a := range args {
		if a.Name != "" {
			return nil, errors.New("beyond: named sql arguments are not supported (session attributes bind ?Name parameters)")
		}
		switch v := a.Value.(type) {
		case int64, float64, bool, string, nil:
			out[i] = v
		case []byte:
			out[i] = string(v)
		case time.Time:
			out[i] = v.UTC().Format(time.RFC3339Nano)
		default:
			return nil, fmt.Errorf("beyond: unsupported argument type %T", a.Value)
		}
	}
	return out, nil
}

// stmt is a client-prepared statement.
type stmt struct {
	c        *conn
	query    string
	numInput int
}

var (
	_ sqldriver.Stmt             = (*stmt)(nil)
	_ sqldriver.StmtQueryContext = (*stmt)(nil)
	_ sqldriver.StmtExecContext  = (*stmt)(nil)
)

func (s *stmt) Close() error  { return nil }
func (s *stmt) NumInput() int { return s.numInput }

func (s *stmt) Query(args []sqldriver.Value) (sqldriver.Rows, error) {
	return s.QueryContext(context.Background(), namedValues(args))
}

func (s *stmt) Exec(args []sqldriver.Value) (sqldriver.Result, error) {
	return s.ExecContext(context.Background(), namedValues(args))
}

func (s *stmt) QueryContext(ctx context.Context, args []sqldriver.NamedValue) (sqldriver.Rows, error) {
	return s.c.QueryContext(ctx, s.query, args)
}

func (s *stmt) ExecContext(ctx context.Context, args []sqldriver.NamedValue) (sqldriver.Result, error) {
	return s.c.ExecContext(ctx, s.query, args)
}

func namedValues(args []sqldriver.Value) []sqldriver.NamedValue {
	out := make([]sqldriver.NamedValue, len(args))
	for i, v := range args {
		out[i] = sqldriver.NamedValue{Ordinal: i + 1, Value: v}
	}
	return out
}

// rows adapts a proxy result set to driver.Rows.
type rows struct {
	res *proxy.Rows
	i   int
}

func (r *rows) Columns() []string { return r.res.Columns }
func (r *rows) Close() error      { return nil }

func (r *rows) Next(dest []sqldriver.Value) error {
	if r.i >= len(r.res.Rows) {
		return io.EOF
	}
	row := r.res.Rows[r.i]
	r.i++
	for j := range dest {
		if j < len(row) {
			dest[j] = row[j].Any()
		} else {
			dest[j] = nil
		}
	}
	return nil
}

// result carries the affected-row count; the engine has no
// auto-increment ids.
type result struct {
	affected int64
}

func (r result) LastInsertId() (int64, error) {
	return 0, errors.New("beyond: LastInsertId is not supported")
}

func (r result) RowsAffected() (int64, error) { return r.affected, nil }

// noopTx satisfies database/sql's transaction plumbing for
// applications that wrap reads in Begin/Commit out of habit. There is
// nothing to commit — every statement is already applied — so Commit
// succeeds and Rollback reports the limitation instead of silently
// dropping writes.
type noopTx struct{}

func (noopTx) Commit() error { return nil }

func (noopTx) Rollback() error {
	return errors.New("beyond: transactions are not supported; ROLLBACK has no effect")
}
