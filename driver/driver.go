// Package driver is a native database/sql driver for the enforcement
// proxy's v2 protocol: an unmodified database/sql program gains policy
// enforcement by swapping its driver name and DSN. Register-on-import:
//
//	import _ "repro/driver"
//
//	db, _ := sql.Open("beyond", "127.0.0.1:7781?MyUId=1")
//	rows, err := db.QueryContext(ctx, "SELECT EId FROM Attendance WHERE UId = ?", 1)
//
// The DSN is "host:port" optionally followed by ?key=value pairs:
// every key except the reserved "session" becomes a policy session
// attribute (values typed by int -> float -> bool -> text inference);
// "session" names a durable session restored from the proxy's WAL.
//
// Policy blocks surface as *proxy.BlockedError values that unwrap to
// ErrBlocked, so application code branches with
// errors.Is(err, driver.ErrBlocked) on the error database/sql returns
// — typed enforcement outcomes ride the standard API unchanged.
// Context cancellation on any query maps to a server-side cancel of
// the in-flight request (protocol v2 "cancel"), not just a local
// abandon.
package driver

import (
	"context"
	"database/sql"
	sqldriver "database/sql/driver"
	"fmt"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/acerr"
	"repro/internal/proxy"
)

// Typed errors, re-exported so driver users need no internal imports.
var (
	// ErrBlocked is the sentinel under every policy refusal.
	ErrBlocked = acerr.ErrBlocked
	// ErrParse marks SQL the server rejected at parse time.
	ErrParse = acerr.ErrParse
	// ErrTooManyConns marks a dial refused by the connection limit.
	ErrTooManyConns = acerr.ErrTooManyConns
	// ErrCanceled marks work aborted by context cancellation.
	ErrCanceled = acerr.ErrCanceled
)

func init() {
	sql.Register("beyond", &Driver{})
}

// Driver implements database/sql/driver.Driver and DriverContext.
type Driver struct{}

// Open connects with a one-shot connector (DriverContext path is
// preferred by database/sql when available).
func (d *Driver) Open(dsn string) (sqldriver.Conn, error) {
	c, err := d.OpenConnector(dsn)
	if err != nil {
		return nil, err
	}
	return c.Connect(context.Background())
}

// OpenConnector parses the DSN once; database/sql then dials through
// the connector per pooled connection.
func (d *Driver) OpenConnector(dsn string) (sqldriver.Connector, error) {
	cfg, err := parseDSN(dsn)
	if err != nil {
		return nil, err
	}
	return &Connector{cfg: cfg, drv: d}, nil
}

var _ sqldriver.DriverContext = (*Driver)(nil)

// dsnConfig is a parsed DSN.
type dsnConfig struct {
	addr    string
	session string         // durable session name; empty = ephemeral
	attrs   map[string]any // policy session attributes
}

func parseDSN(dsn string) (dsnConfig, error) {
	cfg := dsnConfig{attrs: map[string]any{}}
	s := strings.TrimPrefix(dsn, "beyond://")
	addr, query, _ := strings.Cut(s, "?")
	if addr == "" {
		return cfg, fmt.Errorf("beyond: empty address in DSN %q", dsn)
	}
	cfg.addr = addr
	if query == "" {
		return cfg, nil
	}
	vals, err := url.ParseQuery(query)
	if err != nil {
		return cfg, fmt.Errorf("beyond: bad DSN query: %w", err)
	}
	for k, vs := range vals {
		v := ""
		if len(vs) > 0 {
			v = vs[len(vs)-1]
		}
		if k == "session" {
			cfg.session = v
			continue
		}
		cfg.attrs[k] = typeAttr(v)
	}
	return cfg, nil
}

// typeAttr types a DSN attribute string by affinity (int -> float ->
// bool -> text), matching the pgwire listener's startup-parameter
// typing so the same principal keys the same decisions on both
// surfaces.
func typeAttr(s string) any {
	if v, err := strconv.ParseInt(s, 10, 64); err == nil {
		return v
	}
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v
	}
	switch strings.ToLower(s) {
	case "true", "t":
		return true
	case "false", "f":
		return false
	}
	return s
}

// Connector dials and binds sessions; it is safe for concurrent use
// by the database/sql pool.
type Connector struct {
	cfg dsnConfig
	drv *Driver
}

// Connect dials the proxy, negotiates protocol v2, and binds the
// session attributes (durably when the DSN names a session).
func (c *Connector) Connect(ctx context.Context) (sqldriver.Conn, error) {
	cl, err := proxy.DialContext(ctx, c.cfg.addr)
	if err != nil {
		return nil, err
	}
	if c.cfg.session != "" {
		_, err = cl.HelloDurable(ctx, c.cfg.session, c.cfg.attrs)
	} else {
		err = cl.Hello(ctx, c.cfg.attrs)
	}
	if err != nil {
		cl.Close()
		return nil, err
	}
	return &conn{cl: cl}, nil
}

// Driver returns the parent driver.
func (c *Connector) Driver() sqldriver.Driver { return c.drv }
