package driver

import (
	"context"
	"database/sql"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/checker"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/proxy"
	"repro/internal/schema"
	"repro/internal/sqlvalue"
)

func testServer(t *testing.T, mode proxy.Mode) (*proxy.Server, string) {
	t.Helper()
	s, err := schema.NewBuilder().
		Table("Users").
		NotNullCol("UId", sqlvalue.Int).
		NotNullCol("Name", sqlvalue.Text).
		PK("UId").Done().
		Table("Events").
		OpaqueCol("EId", sqlvalue.Int).
		NotNullCol("Title", sqlvalue.Text).
		Col("Notes", sqlvalue.Text).
		PK("EId").Done().
		Table("Attendance").
		NotNullCol("UId", sqlvalue.Int).
		NotNullCol("EId", sqlvalue.Int).
		PK("UId", "EId").Done().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	db := engine.New(s)
	db.MustExec("INSERT INTO Users (UId, Name) VALUES (1, 'alice'), (2, 'bob')")
	db.MustExec("INSERT INTO Events (EId, Title, Notes) VALUES (2, 'retro', 'snacks'), (3, 'offsite', NULL)")
	db.MustExec("INSERT INTO Attendance (UId, EId) VALUES (1, 2), (2, 3)")
	pol := policy.MustNew(s, map[string]string{
		"V1": "SELECT EId FROM Attendance WHERE UId = ?MyUId",
		"V2": "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?MyUId",
	})
	srv := proxy.NewServer(db, checker.New(pol), mode)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func openDB(t *testing.T, dsn string) *sql.DB {
	t.Helper()
	db, err := sql.Open("beyond", dsn)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	// One pooled conn: compliance decisions are per-session history,
	// and a single conn keeps the test's query sequence on one trace.
	db.SetMaxOpenConns(1)
	return db
}

// TestStockDatabaseSQL drives the driver exactly as an unmodified
// application would: Open with a DSN, QueryContext, Scan, Exec —
// nothing imported beyond database/sql.
func TestStockDatabaseSQL(t *testing.T) {
	_, addr := testServer(t, proxy.Enforce)
	db := openDB(t, addr+"?MyUId=1")

	if err := db.Ping(); err != nil {
		t.Fatal(err)
	}

	rows, err := db.QueryContext(context.Background(),
		"SELECT EId FROM Attendance WHERE UId = ?", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 1 || cols[0] != "EId" {
		t.Fatalf("columns = %v", cols)
	}
	var got []int64
	for rows.Next() {
		var eid int64
		if err := rows.Scan(&eid); err != nil {
			t.Fatal(err)
		}
		got = append(got, eid)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("rows = %v, want [2]", got)
	}

	// Writes pass through with RowsAffected.
	res, err := db.ExecContext(context.Background(),
		"INSERT INTO Attendance (UId, EId) VALUES (?, ?)", int64(1), int64(3))
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 1 {
		t.Fatalf("RowsAffected = %d, want 1", n)
	}
}

// TestErrBlockedUnwrapping pins the typed-error contract: the error
// database/sql hands back for a policy block unwraps to ErrBlocked
// with errors.Is, exactly like the native client's.
func TestErrBlockedUnwrapping(t *testing.T) {
	_, addr := testServer(t, proxy.Enforce)
	db := openDB(t, addr+"?MyUId=1")

	rows, err := db.Query("SELECT * FROM Events WHERE EId=3")
	if err == nil {
		rows.Close()
		t.Fatal("expected a policy block")
	}
	if !errors.Is(err, ErrBlocked) {
		t.Fatalf("errors.Is(err, ErrBlocked) = false for %v", err)
	}
	var be *proxy.BlockedError
	if !errors.As(err, &be) {
		t.Fatalf("errors.As(*proxy.BlockedError) = false for %v", err)
	}
	if be.Reason == "" {
		t.Fatal("blocked error carries no reason")
	}

	// The connection stays usable after a block.
	var eid int64
	if err := db.QueryRow("SELECT EId FROM Attendance WHERE UId = ?", 1).Scan(&eid); err != nil {
		t.Fatal(err)
	}
}

func TestPreparedStatements(t *testing.T) {
	_, addr := testServer(t, proxy.Enforce)
	db := openDB(t, addr+"?MyUId=1")

	st, err := db.Prepare("SELECT EId FROM Attendance WHERE UId = $1")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 2; i++ {
		var eid int64
		if err := st.QueryRow(int64(1)).Scan(&eid); err != nil {
			t.Fatal(err)
		}
		if eid != 2 {
			t.Fatalf("eid = %d, want 2", eid)
		}
	}

	// NumInput is enforced client-side by database/sql.
	if _, err := st.Query(); err == nil {
		t.Fatal("expected arity error for missing argument")
	}
}

func TestContextCancellation(t *testing.T) {
	// LogOnly so the engine actually runs the pathological scan.
	s, err := schema.NewBuilder().
		Table("Big").NotNullCol("N", sqlvalue.Int).PK("N").Done().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	edb := engine.New(s)
	var sb strings.Builder
	sb.WriteString("INSERT INTO Big (N) VALUES ")
	for i := 0; i < 2000; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d)", i)
	}
	edb.MustExec(sb.String())
	pol := policy.MustNew(s, map[string]string{"V1": "SELECT N FROM Big"})
	srv := proxy.NewServer(edb, checker.New(pol), proxy.LogOnly)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	db := openDB(t, addr+"?MyUId=1")
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, qerr := db.QueryContext(ctx,
		"SELECT a.N FROM Big a, Big b, Big c WHERE a.N + b.N + c.N < 0")
	if qerr == nil {
		t.Fatal("expected cancellation error")
	}
	if !errors.Is(qerr, context.DeadlineExceeded) && !errors.Is(qerr, ErrCanceled) {
		t.Fatalf("got %v, want deadline/canceled", qerr)
	}
	// Server-side cancel means we return promptly, not after the scan.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	// Connection is poisoned? No: v2 cancel aborts the request, the
	// conn survives. database/sql may still discard it; a fresh query
	// must work either way.
	var one int64
	if err := db.QueryRow("SELECT N FROM Big WHERE N = ?", 1).Scan(&one); err != nil {
		t.Fatal(err)
	}
}

func TestDSNParsing(t *testing.T) {
	cfg, err := parseDSN("beyond://127.0.0.1:7781?MyUId=7&flag=true&ratio=0.5&who=alice&session=s1")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != "127.0.0.1:7781" || cfg.session != "s1" {
		t.Fatalf("cfg = %+v", cfg)
	}
	want := map[string]any{"MyUId": int64(7), "flag": true, "ratio": 0.5, "who": "alice"}
	for k, v := range want {
		if cfg.attrs[k] != v {
			t.Errorf("attr %s = %#v, want %#v", k, cfg.attrs[k], v)
		}
	}
	if _, err := parseDSN("?MyUId=1"); err == nil {
		t.Fatal("accepted empty address")
	}
}

func TestDurableSessionDSN(t *testing.T) {
	srv, addr := testServer(t, proxy.Enforce)
	srv.WALDir = t.TempDir()
	// Re-listen is unnecessary: OpenDurable is idempotent and the
	// connector's hello opens it lazily through the running server.
	if err := srv.OpenDurable(); err != nil {
		t.Fatal(err)
	}

	db := openDB(t, addr+"?MyUId=1&session=app-1")
	var eid int64
	if err := db.QueryRow("SELECT EId FROM Attendance WHERE UId = ?", 1).Scan(&eid); err != nil {
		t.Fatal(err)
	}
}
