package beyond

// The listener-config serving facade: one enforcement core (database,
// checker, mode, shared metrics and WAL) bound to any combination of
// ingress listeners. Two surfaces exist today:
//
//   - the v2 line protocol (native clients via DialProxy / the
//     database/sql driver in repro/driver), and
//   - the Postgres wire protocol v3 (psql, stock Postgres drivers).
//
// Both listeners converge on the same proxy core, so a statement is
// decided identically — same checker, same caches, same session
// traces, same WAL — no matter which door it came through.
//
//	svc, err := beyond.Serve(db, chk, beyond.Enforce,
//		beyond.WithV2Listener("127.0.0.1:7781"),
//		beyond.WithPgListener("127.0.0.1:5433"),
//		beyond.WithDurability("/var/lib/ac/wal"))
//	defer svc.Close()

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/obsv"
	"repro/internal/pgwire"
	"repro/internal/proxy"
)

// Cluster types (DESIGN.md §16): N Serve stacks joined into one
// enforcement cluster — consistent-hash session routing, lease-based
// ownership, WAL shipping to the per-session follower.
type (
	// ClusterConfig parameterizes a cluster node (self id, member set,
	// lease/probe/ship tuning).
	ClusterConfig = cluster.Config
	// ClusterMember is one node: stable id + v2 listener address.
	ClusterMember = cluster.Member
	// ClusterNode is the running membership/routing/shipping engine a
	// clustered Service embeds (Service.ClusterNode).
	ClusterNode = cluster.Node
)

// serveConfig is what ServeOptions assemble.
type serveConfig struct {
	v2        bool
	v2Addr    string
	pg        bool
	pgAddr    string
	pgMax     int
	metrics   *Metrics
	proxyOpts []ProxyOption
	lazyWAL   bool
	cluster   *ClusterConfig
	// shadowViews, when non-nil, stages a candidate policy as soon as
	// the core is up (after WAL recovery, so the stage persists).
	shadowViews map[string]string
}

// ServeOption configures Serve: which listeners to bind and how the
// shared proxy core behaves. Every ProxyOption is also a valid
// ServeOption source — pass them through WithV2Listener or directly
// via WithProxyConfig.
type ServeOption func(*serveConfig)

// WithV2Listener binds the v2 line-protocol listener on addr
// (host:port; port 0 picks a free port, see Service.V2Addr). Any
// ProxyOptions given here configure the shared proxy core — they
// apply to pgwire traffic too, since both listeners run one core.
func WithV2Listener(addr string, opts ...ProxyOption) ServeOption {
	return func(c *serveConfig) {
		c.v2 = true
		c.v2Addr = addr
		c.proxyOpts = append(c.proxyOpts, opts...)
	}
}

// WithPgListener binds the Postgres wire-protocol (v3) listener on
// addr, so psql and stock Postgres drivers reach enforcement without
// a custom client.
func WithPgListener(addr string) ServeOption {
	return func(c *serveConfig) {
		c.pg = true
		c.pgAddr = addr
	}
}

// WithPgMaxConns bounds concurrent pgwire connections (0 = default).
func WithPgMaxConns(n int) ServeOption {
	return func(c *serveConfig) { c.pgMax = n }
}

// WithShadowPolicy stages a candidate policy (view SQL by name) the
// moment the service is up: every live decision dual-decides under the
// active and candidate policies, divergences stream as diff records,
// and the operator promotes or rolls back when the trial concludes
// (Service.PromotePolicy / RollbackPolicy, or the acpolicy CLI against
// a running proxy). Staging happens after WAL recovery, so with
// durability on the trial survives a crash.
func WithShadowPolicy(views map[string]string) ServeOption {
	return func(c *serveConfig) { c.shadowViews = views }
}

// WithListenerMetrics points every listener and the proxy core at one
// explicit metrics registry, so a single snapshot covers checker.*,
// pipeline.*, proxy.*, and engine.* across all ingress surfaces. By
// default the core reports into its checker's registry, which is
// already shared; use this to aggregate several Serve stacks or to
// isolate serving metrics from offline checker use.
func WithListenerMetrics(reg *Metrics) ServeOption {
	return func(c *serveConfig) { c.metrics = reg }
}

// WithLazyWAL defers opening the WAL (and running recovery) until the
// first operation that needs it: a durable hello, or an incoming
// cluster.ship batch. Without it the WAL opens at Listen. Use it for
// nodes that may never write — a forwarding-heavy cluster member, or a
// pgwire ingress serving only ephemeral sessions — so they don't
// create an empty log directory at startup.
func WithLazyWAL() ServeOption {
	return func(c *serveConfig) { c.lazyWAL = true }
}

// WithCluster joins this Service to an enforcement cluster
// (DESIGN.md §16). The config names this node (Self) and the full
// member set; every member must run a v2 listener, which carries both
// forwarded application traffic and the cluster.* control ops. Durable
// sessions hash onto a consistent ring over the live members: hellos
// landing on a non-owner forward transparently, so each session's
// history accrues on exactly one node and the warm-path caches behave
// exactly as on a single proxy. Owners ship WAL records to each
// session's ring successor; if an owner dies, the successor's probes
// plus lease expiry move the sessions to the node already holding
// their history — byte-identical decisions included.
//
//	svc, err := beyond.Serve(db, chk, beyond.Enforce,
//		beyond.WithV2Listener(":7781", beyond.WithDurability(dir)),
//		beyond.WithCluster(beyond.ClusterConfig{
//			Self: "a",
//			Members: []beyond.ClusterMember{
//				{ID: "a", Addr: "10.0.0.1:7781"},
//				{ID: "b", Addr: "10.0.0.2:7781"},
//			},
//		}))
func WithCluster(cfg ClusterConfig) ServeOption {
	return func(c *serveConfig) { c.cluster = &cfg }
}

// WithProxyConfig applies proxy-core options (durability, history
// window, timeouts, connection limits) without implying a v2
// listener — for pgwire-only deployments that still want a WAL:
//
//	beyond.Serve(db, chk, beyond.Enforce,
//		beyond.WithPgListener(":5433"),
//		beyond.WithProxyConfig(beyond.WithDurability(dir)))
func WithProxyConfig(opts ...ProxyOption) ServeOption {
	return func(c *serveConfig) { c.proxyOpts = append(c.proxyOpts, opts...) }
}

// Service is a running enforcement stack: one proxy core with its
// bound listeners. Close shuts everything down.
type Service struct {
	core    *ProxyServer
	pg      *pgwire.Server
	cluster *ClusterNode
	v2Addr  string
	pgAddr  string
}

// Serve builds one enforcement core over db and c and binds the
// configured listeners. At least one listener option is required —
// a Service with no ingress is a configuration error, not a default.
func Serve(db *DB, c *Checker, mode ProxyMode, opts ...ServeOption) (*Service, error) {
	var cfg serveConfig
	for _, o := range opts {
		o(&cfg)
	}
	if !cfg.v2 && !cfg.pg {
		return nil, errors.New("beyond: Serve needs at least one listener (WithV2Listener or WithPgListener)")
	}
	core := proxy.NewServer(db, c, mode)
	for _, o := range cfg.proxyOpts {
		o(core)
	}
	if cfg.metrics != nil {
		core.Metrics = cfg.metrics
	}
	core.LazyWAL = cfg.lazyWAL
	svc := &Service{core: core}
	if cfg.cluster != nil {
		if !cfg.v2 {
			return nil, errors.New("beyond: WithCluster requires a v2 listener (peers forward and ship over it)")
		}
		node, err := cluster.New(*cfg.cluster)
		if err != nil {
			return nil, fmt.Errorf("beyond: %w", err)
		}
		// Attach before Listen: if the WAL opens eagerly there, the
		// node's ship hook and lease term install during open.
		node.Attach(core)
		svc.cluster = node
	}
	if cfg.v2 {
		addr, err := core.Listen(cfg.v2Addr)
		if err != nil {
			return nil, fmt.Errorf("beyond: v2 listener: %w", err)
		}
		svc.v2Addr = addr
	} else if core.WALDir != "" && !cfg.lazyWAL {
		// No v2 listener means core.Listen never runs; open the WAL
		// here so pgwire sessions are durable from the first accept
		// (unless WithLazyWAL asked to defer until first durable use).
		if err := core.OpenDurable(); err != nil {
			return nil, fmt.Errorf("beyond: open wal: %w", err)
		}
	}
	if cfg.pg {
		pg := pgwire.NewServer(pgwire.Config{Proxy: core, MaxConns: cfg.pgMax, Logf: core.Logf})
		addr, err := pg.Listen(cfg.pgAddr)
		if err != nil {
			svc.Close()
			return nil, fmt.Errorf("beyond: pg listener: %w", err)
		}
		svc.pg = pg
		svc.pgAddr = addr
	}
	if cfg.shadowViews != nil {
		if _, err := core.StagePolicy(cfg.shadowViews); err != nil {
			svc.Close()
			return nil, fmt.Errorf("beyond: stage shadow policy: %w", err)
		}
	}
	if svc.cluster != nil {
		svc.cluster.Start()
	}
	return svc, nil
}

// V2Addr is the bound v2 listener address ("" if not configured).
func (s *Service) V2Addr() string { return s.v2Addr }

// PgAddr is the bound Postgres wire listener address ("" if not
// configured).
func (s *Service) PgAddr() string { return s.pgAddr }

// Proxy exposes the shared core for in-process use (HandleIn,
// Durable, Stats) — both listeners delegate to it.
func (s *Service) Proxy() *ProxyServer { return s.core }

// ClusterNode exposes the cluster engine (nil without WithCluster).
// In-process clusters bind ephemeral ports first, then install the
// real addresses with SetMembers.
func (s *Service) ClusterNode() *ClusterNode { return s.cluster }

// Metrics is the registry every listener reports into.
func (s *Service) Metrics() *obsv.Registry { return s.core.MetricsRegistry() }

// StagePolicy stages a candidate policy (view SQL by name) for shadow
// dual-decide across every ingress; see WithShadowPolicy.
func (s *Service) StagePolicy(views map[string]string) (PolicyVersion, error) {
	return s.core.StagePolicy(views)
}

// PromotePolicy makes the staged candidate the enforcing policy. Its
// shadow-warmed cache entries serve enforcement immediately.
func (s *Service) PromotePolicy() (PolicyVersion, error) { return s.core.PromotePolicy() }

// RollbackPolicy discards the staged candidate and ends the trial.
func (s *Service) RollbackPolicy() (PolicyVersion, error) { return s.core.RollbackPolicy() }

// Close stops all listeners and the core, in ingress-first order so
// in-flight statements drain before the WAL closes. The cluster node
// (prober + ship flusher) stops between the two: after ingress quiets
// it flushes any queued ship batches, before the WAL that feeds it
// goes away.
func (s *Service) Close() error {
	var first error
	if s.pg != nil {
		if err := s.pg.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s.cluster != nil {
		if err := s.cluster.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := s.core.Close(); err != nil && first == nil {
		first = err
	}
	return first
}
