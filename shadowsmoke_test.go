package beyond_test

import (
	"sort"
	"testing"

	beyond "repro"
	"repro/internal/apps"
	"repro/internal/checker"
)

// TestShadowSmoke is the CI smoke for the policy-trial lifecycle
// (`make shadowsmoke`): stage a strictly-wider candidate over the
// calendar corpus, assert the proxy reports EXACTLY the expected diff
// set (computed independently by a second proxy enforcing the
// candidate directly), promote, and assert convergence — post-promote
// decisions byte-equal the direct-enforcement proxy and the diff ring
// stays empty.
//
// The candidate is a strict superset of the active policy (one added
// view), so every divergence must be a loosen and the control proxy
// can replay the full corpus without a prime being blocked.
func TestShadowSmoke(t *testing.T) {
	f := apps.Calendar()
	wide := make(map[string]string, len(f.PolicySQL)+1)
	for k, v := range f.PolicySQL {
		wide[k] = v
	}
	wide["VAllEvents"] = "SELECT * FROM Events"
	candidate := beyond.MustNewPolicy(f.Schema, wide)

	svc, err := beyond.Serve(f.MustNewDB(20), beyond.NewChecker(f.Policy()), beyond.Enforce,
		beyond.WithV2Listener("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctrl, err := beyond.Serve(f.MustNewDB(20), beyond.NewChecker(candidate), beyond.Enforce,
		beyond.WithV2Listener("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	if _, err := svc.StagePolicy(wide); err != nil {
		t.Fatal(err)
	}

	// Replay the corpus through the shadowing proxy (recording diffs)
	// and the candidate-enforcing control; the expected diff set is
	// every query the two decide differently.
	var want []string
	for _, w := range f.Corpus {
		act := v2Decision(t, svc.V2Addr(), w)
		cand := v2Decision(t, ctrl.V2Addr(), w)
		if act.allowed != w.WantAllowed {
			t.Fatalf("%s: active decision drifted under shadow: got %v want %v",
				w.Label, act.allowed, w.WantAllowed)
		}
		if act.allowed && !cand.allowed {
			t.Fatalf("%s: strictly-wider candidate tightened a decision", w.Label)
		}
		if act.allowed != cand.allowed {
			want = append(want, w.SQL)
		}
	}
	if len(want) == 0 {
		t.Fatal("smoke corpus produced no divergences; the candidate is not divergent")
	}
	diffs, _ := svc.Proxy().ShadowDiffs(0)
	var got []string
	for _, d := range diffs {
		if d.Kind != checker.DivergeLoosen {
			t.Fatalf("wider candidate produced a non-loosen divergence: %+v", d)
		}
		got = append(got, d.SQL)
	}
	sort.Strings(want)
	sort.Strings(got)
	if len(got) != len(want) {
		t.Fatalf("diff set: got %d records %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("diff set mismatch at %d: got %q want %q\nall got: %v\nall want: %v",
				i, got[i], want[i], got, want)
		}
	}

	// Promote and assert convergence: the trial proxy now decides the
	// whole corpus exactly like direct enforcement of the candidate,
	// and with no candidate staged the ring stays empty.
	pv, err := svc.PromotePolicy()
	if err != nil {
		t.Fatal(err)
	}
	if pv.Fingerprint != candidate.Fingerprint() {
		t.Fatalf("promoted fingerprint %q != candidate %q", pv.Fingerprint, candidate.Fingerprint())
	}
	for _, w := range f.Corpus {
		got := v2Decision(t, svc.V2Addr(), w)
		cand := v2Decision(t, ctrl.V2Addr(), w)
		if got != cand {
			t.Fatalf("%s: post-promote decision %+v != direct enforcement %+v", w.Label, got, cand)
		}
	}
	if diffs, _ := svc.Proxy().ShadowDiffs(0); len(diffs) != 0 {
		t.Fatalf("diff ring not empty after promote: %+v", diffs)
	}
}
