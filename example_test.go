package beyond_test

import (
	"context"
	"fmt"

	beyond "repro"
	"repro/internal/sqlparser"
	"repro/internal/trace"
)

// Example reproduces the paper's Example 2.1 with the public API.
func Example() {
	sch := beyond.NewSchema().
		Table("Events").
		NotNullCol("EId", beyond.Int).
		NotNullCol("Title", beyond.Text).
		PK("EId").Done().
		Table("Attendance").
		NotNullCol("UId", beyond.Int).
		NotNullCol("EId", beyond.Int).
		PK("UId", "EId").Done().
		MustBuild()

	pol := beyond.MustNewPolicy(sch, map[string]string{
		"V1": "SELECT EId FROM Attendance WHERE UId = ?MyUId",
		"V2": "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?MyUId",
	})
	chk := beyond.NewChecker(pol)
	sess := beyond.Session(map[string]any{"MyUId": 1})

	d, _ := chk.CheckSQL(context.Background(), "SELECT * FROM Events WHERE EId=2", beyond.Args(), sess, nil)
	fmt.Println("Q2 alone:", d.Allowed)

	// The application's access check ran and returned a row.
	tr := &trace.Trace{}
	probe := "SELECT 1 FROM Attendance WHERE UId=1 AND EId=2"
	tr.Append(trace.Entry{
		SQL:     probe,
		Stmt:    sqlparser.MustParseSelect(probe),
		Args:    beyond.Args(),
		Columns: []string{"1"},
		Rows:    [][]beyond.Value{{beyond.Session(map[string]any{"v": 1})["v"]}},
	})
	d, _ = chk.CheckSQL(context.Background(), "SELECT * FROM Events WHERE EId=2", beyond.Args(), sess, tr)
	fmt.Println("Q2 after Q1:", d.Allowed)
	// Output:
	// Q2 alone: false
	// Q2 after Q1: true
}

// ExampleExtractPolicy shows the paper's Example 3.1 round trip:
// Listing 1 extracts to exactly the views V1 and V2.
func ExampleExtractPolicy() {
	f, _ := beyond.FixtureByName("calendar")
	extracted, _ := beyond.ExtractPolicy(f.Schema, f.App)
	acc := beyond.CompareExtraction(extracted, f.AppTruth())
	fmt.Println("exact:", acc.Exact())
	// Output:
	// exact: true
}

// ExampleAuditPolicy flags the paper's Example 4.1 disclosure: joining
// the staff views rules out every disease the patient's doctor does
// not treat (NQI).
func ExampleAuditPolicy() {
	f, _ := beyond.FixtureByName("hospital")
	rep, _ := beyond.AuditPolicy(context.Background(), f.Policy(), map[string]string{
		"SPatientDisease": "SELECT PName, Disease FROM Patients",
	})
	fmt.Println("NQI:", rep.Findings[0].NQI.Holds)
	// Output:
	// NQI: true
}

// ExampleDiagnoseBlocked synthesizes the paper's own access-check
// patch for the blocked event fetch.
func ExampleDiagnoseBlocked() {
	f, _ := beyond.FixtureByName("calendar")
	chk := beyond.NewChecker(f.Policy())
	d, _ := beyond.DiagnoseBlocked(context.Background(), chk, f.Session(1),
		"SELECT * FROM Events WHERE EId=2", beyond.Args(), nil)
	fmt.Println(d.Checks[0].CheckSQL)
	// Output:
	// SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = 2
}
