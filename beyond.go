// Package beyond is the public API of the access-control toolkit
// built around Zhang, Panda & Shenker, "Access Control for Database
// Applications: Beyond Policy Enforcement" (HotOS '23). It covers the
// full life-cycle the paper lays out:
//
//   - Enforcement (§2.2): a Blockaid-style compliance Checker and a
//     network Proxy that allow a query as-is or block it, considering
//     the session's query history.
//   - Policy creation (§3): Extract policies from application code by
//     symbolic execution, or Mine them from black-box query traces
//     with hints and active probing.
//   - Policy evaluation (§4): Audit a policy against sensitive queries
//     with the prior-agnostic PQI/NQI criteria, k-anonymity, and an
//     exact Bayesian baseline.
//   - Violation diagnosis (§5): Diagnose blocked queries with
//     counterexamples, contained rewritings, synthesized access
//     checks, and policy patches.
//
// The toolkit is self-contained: it ships its own SQL parser,
// in-memory relational engine, conjunctive-query reasoner, and model
// applications (see internal/ and DESIGN.md).
//
// Quick start:
//
//	sch := beyond.NewSchema().
//		Table("Attendance").
//		NotNullCol("UId", beyond.Int).
//		NotNullCol("EId", beyond.Int).
//		PK("UId", "EId").Done().
//		MustBuild()
//	db := beyond.NewDB(sch)
//	pol := beyond.MustNewPolicy(sch, map[string]string{
//		"V1": "SELECT EId FROM Attendance WHERE UId = ?MyUId",
//	})
//	chk := beyond.NewChecker(pol)
//	d, _ := chk.CheckSQL(context.Background(),
//		"SELECT EId FROM Attendance WHERE UId = 1",
//		beyond.Args(), beyond.Session(map[string]any{"MyUId": 1}), nil)
//	fmt.Println(d.Allowed)
//
// Every public entry point that can do nontrivial work takes a
// context.Context first; cancellation aborts compliance checks,
// engine scans, counterexample search, and audits mid-decision.
// Failures surface as typed errors — errors.Is(err, beyond.ErrBlocked
// / ErrParse / ErrTooManyConns / ErrCanceled).
package beyond

import (
	"context"
	"time"

	"repro/internal/acerr"
	"repro/internal/appdsl"
	"repro/internal/apps"
	"repro/internal/baseline"
	"repro/internal/checker"
	"repro/internal/diagnose"
	"repro/internal/disclosure"
	"repro/internal/durable"
	"repro/internal/engine"
	"repro/internal/extract"
	"repro/internal/obsv"
	"repro/internal/policy"
	"repro/internal/proxy"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

// Core value and schema types.
type (
	// Value is a typed SQL value.
	Value = sqlvalue.Value
	// Schema describes tables, keys, and foreign keys.
	Schema = schema.Schema
	// SchemaBuilder declares schemas fluently.
	SchemaBuilder = schema.Builder
	// DB is the in-memory relational engine.
	DB = engine.DB
	// Result is a query result set.
	Result = engine.Result
	// Row is one stored tuple.
	Row = engine.Row
)

// Column type constants.
const (
	Int  = sqlvalue.Int
	Real = sqlvalue.Real
	Text = sqlvalue.Text
	Bool = sqlvalue.Bool
)

// Policy and enforcement types.
type (
	// Policy is an allow-list of parameterized SQL views.
	Policy = policy.Policy
	// View is one policy view.
	View = policy.View
	// Checker vets queries against a policy (the §2.2 enforcement
	// core).
	Checker = checker.Checker
	// Decision is a compliance verdict.
	Decision = checker.Decision
	// CheckerOptions toggles history, caching, and search bounds.
	CheckerOptions = checker.Options
	// Metrics is the observability registry: atomic counters and
	// bounded latency histograms that the checker, pipeline stages,
	// proxy, engine, and diagnosis search all report into. See
	// DESIGN.md §9 for the metric-name inventory.
	Metrics = obsv.Registry
	// SpanSet collects a per-request stage-latency breakdown through
	// context.Context (what the proxy's slow-decision log attaches).
	SpanSet = obsv.SpanSet
	// Trace is a session's query history.
	Trace = trace.Trace
	// ProxyServer is the network enforcement proxy.
	ProxyServer = proxy.Server
	// ProxyClient is its line-protocol client.
	ProxyClient = proxy.Client
	// ProxyMode selects enforce / log-only / off.
	ProxyMode = proxy.Mode
	// RLS is the query-modification baseline.
	RLS = baseline.RLS
	// ColumnGrants is the static column-policy baseline.
	ColumnGrants = baseline.ColumnGrants
)

// Proxy modes.
const (
	Enforce = proxy.Enforce
	LogOnly = proxy.LogOnly
	Off     = proxy.Off
)

// Policy lifecycle types (DESIGN.md §14): a staged candidate policy
// shadow-decides alongside the active one until the operator promotes
// or rolls it back.
type (
	// PolicyVersion summarizes one resident policy version: its epoch,
	// the epoch it was staged against, and its compiled fingerprint.
	PolicyVersion = checker.PolicyVersion
	// ShadowDecision is one dual-decide outcome: the enforcing active
	// verdict, the candidate's shadow verdict, and their divergence.
	ShadowDecision = checker.ShadowDecision
	// ShadowDiff is one recorded divergence between the active and
	// candidate policies on a live query.
	ShadowDiff = proxy.ShadowDiff
	// PolicyStatus is the policy.* op payload: resident versions,
	// shadow counters, and (for policy.diff) recent divergences.
	PolicyStatus = proxy.PolicyBody
)

// Extraction types (§3).
type (
	// App is a model application written in the handler DSL.
	App = appdsl.App
	// Handler is one request handler.
	Handler = appdsl.Handler
	// MineOptions configures black-box extraction.
	MineOptions = extract.MineOptions
	// ExtractionAccuracy compares an extraction to ground truth.
	ExtractionAccuracy = extract.Accuracy
)

// Disclosure types (§4).
type (
	// DisclosureVerdict is a PQI/NQI finding.
	DisclosureVerdict = disclosure.Verdict
	// DisclosureReport is a full audit.
	DisclosureReport = disclosure.Report
	// BayesPrior is a tuple-independent adversary belief.
	BayesPrior = disclosure.Prior
)

// Diagnosis types (§5).
type (
	// Diagnosis bundles counterexample, rewritings, checks, patches.
	Diagnosis = diagnose.Diagnosis
	// Counterexample is the two-database proof of violation.
	Counterexample = diagnose.Counterexample
	// AccessCheck is a synthesized application patch.
	AccessCheck = diagnose.AccessCheck
	// Rewriting is a contained-rewriting patch.
	Rewriting = diagnose.Rewriting
)

// Fixture is a bundled model application (calendar, hospital,
// employees, forum).
type Fixture = apps.Fixture

// NewSchema starts a schema declaration.
func NewSchema() *SchemaBuilder { return schema.NewBuilder() }

// NewDB creates an empty database over the schema.
func NewDB(s *Schema) *DB { return engine.New(s) }

// NewPolicy builds a policy from named view SQL.
func NewPolicy(s *Schema, views map[string]string) (*Policy, error) {
	return policy.New(s, views)
}

// MustNewPolicy is NewPolicy, panicking on error.
func MustNewPolicy(s *Schema, views map[string]string) *Policy {
	return policy.MustNew(s, views)
}

// Typed error taxonomy: match with errors.Is / errors.As.
var (
	// ErrBlocked marks a query refused by policy.
	ErrBlocked = acerr.ErrBlocked
	// ErrParse marks unparseable SQL.
	ErrParse = acerr.ErrParse
	// ErrTooManyConns marks a proxy dial rejected at the connection
	// limit.
	ErrTooManyConns = acerr.ErrTooManyConns
	// ErrCanceled marks work aborted by context cancellation or
	// deadline.
	ErrCanceled = acerr.ErrCanceled
)

// CheckerOption configures NewChecker.
type CheckerOption func(*CheckerOptions)

// WithCacheSize bounds the decision-template cache (total entries
// across shards).
func WithCacheSize(n int) CheckerOption {
	return func(o *CheckerOptions) { o.CacheSize = n }
}

// WithHistory toggles trace-derived facts (disable for the paper's E3
// ablation).
func WithHistory(on bool) CheckerOption {
	return func(o *CheckerOptions) { o.UseHistory = on }
}

// WithCache toggles decision templates.
func WithCache(on bool) CheckerOption {
	return func(o *CheckerOptions) { o.UseCache = on }
}

// WithFactCache toggles the incremental trace-fact cache.
func WithFactCache(on bool) CheckerOption {
	return func(o *CheckerOptions) { o.UseFactCache = on }
}

// WithMaxHomsPerView bounds the embedding search per view disjunct.
func WithMaxHomsPerView(n int) CheckerOption {
	return func(o *CheckerOptions) { o.MaxHomsPerView = n }
}

// WithColdWorkers bounds the checker-owned worker pool the cold
// coverage search fans out on (across template disjuncts and
// surviving candidate views). 0 means GOMAXPROCS; 1 keeps the search
// fully serial. Parallelism never changes the answer: results merge
// in disjunct and view order, so parallel and serial searches produce
// identical Decisions.
func WithColdWorkers(n int) CheckerOption {
	return func(o *CheckerOptions) { o.ColdWorkers = n }
}

// WithColdIndex toggles the compiled per-relation policy index the
// cold coverage search runs against (on by default; off restores the
// linear scan over every view — the acbench -coldpath ablation
// baseline).
func WithColdIndex(on bool) CheckerOption {
	return func(o *CheckerOptions) { o.ColdIndex = on }
}

// WithMetrics points the checker at an explicit metrics registry —
// share one across components to get a combined snapshot, or pass
// DisabledMetrics() for a strictly no-op instrumentation build.
// Without this option every checker gets its own enabled registry.
func WithMetrics(reg *Metrics) CheckerOption {
	return func(o *CheckerOptions) { o.Metrics = reg }
}

// NewMetrics creates an enabled observability registry.
func NewMetrics() *Metrics { return obsv.NewRegistry() }

// DisabledMetrics returns the no-op registry: instruments it hands
// out record nothing and cost one nil check per operation.
func DisabledMetrics() *Metrics { return obsv.Disabled() }

// NewChecker builds a compliance checker. Defaults are history-aware
// with decision templates and the fact cache on; options override
// individual knobs:
//
//	beyond.NewChecker(p, beyond.WithCacheSize(1<<16), beyond.WithHistory(false))
func NewChecker(p *Policy, opts ...CheckerOption) *Checker {
	o := checker.DefaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	return checker.NewWithOptions(p, o)
}

// NewCheckerWithOptions builds a checker from an explicit options
// struct (the internal configuration surface; most callers want
// NewChecker with CheckerOptions).
func NewCheckerWithOptions(p *Policy, o CheckerOptions) *Checker {
	return checker.NewWithOptions(p, o)
}

// ProxyOption configures NewProxy.
type ProxyOption func(*ProxyServer)

// WithMaxConns bounds simultaneous proxy connections (negative means
// unlimited).
func WithMaxConns(n int) ProxyOption {
	return func(s *ProxyServer) { s.MaxConns = n }
}

// WithReadTimeout sets the per-connection idle read deadline.
func WithReadTimeout(d time.Duration) ProxyOption {
	return func(s *ProxyServer) { s.ReadTimeout = d }
}

// WithMaxLineBytes bounds one request line.
func WithMaxLineBytes(n int) ProxyOption {
	return func(s *ProxyServer) { s.MaxLineBytes = n }
}

// WithMaxInFlight bounds the per-connection pipelined window
// (protocol v2).
func WithMaxInFlight(n int) ProxyOption {
	return func(s *ProxyServer) { s.MaxInFlight = n }
}

// WithProxyMetrics points the proxy at an explicit metrics registry.
// By default the proxy reports into its checker's registry, so one
// snapshot covers checker.*, pipeline.*, proxy.*, and engine.* names.
func WithProxyMetrics(reg *Metrics) ProxyOption {
	return func(s *ProxyServer) { s.Metrics = reg }
}

// WithSlowLog turns on the proxy's structured slow-decision log:
// queries at or over the threshold emit one JSON line (through the
// server's Logf) with the verdict, the cache tier that answered, and
// the per-stage latency breakdown. See DESIGN.md §9 for the schema.
func WithSlowLog(threshold time.Duration) ProxyOption {
	return func(s *ProxyServer) { s.SlowLogThreshold = threshold }
}

// Durability types: the WAL that persists enforcement state (session
// query histories and the policy snapshot) across proxy restarts. See
// DESIGN.md §11.
type (
	// WALOptions tunes the durability layer (fsync policy, segment
	// size, checkpoint cadence).
	WALOptions = durable.Options
	// WALManager is the durable-state manager a WAL-enabled proxy runs
	// (Server.Durable()).
	WALManager = durable.Manager
	// FsyncPolicy selects when appended records become crash-durable.
	FsyncPolicy = durable.FsyncPolicy
)

// Fsync policies for WithFsync.
const (
	// FsyncAlways fsyncs every group-commit batch before acknowledging
	// (an acknowledged append survives any crash).
	FsyncAlways = durable.FsyncAlways
	// FsyncInterval acknowledges after the OS write and fsyncs on a
	// timer (bounded loss window).
	FsyncInterval = durable.FsyncInterval
	// FsyncOff never fsyncs (page-cache durability; benchmarks and
	// tests).
	FsyncOff = durable.FsyncOff
)

// DurabilityOption tunes WithDurability.
type DurabilityOption func(*WALOptions)

// WithFsync selects the WAL fsync policy (default FsyncAlways).
func WithFsync(p FsyncPolicy) DurabilityOption {
	return func(o *WALOptions) { o.Fsync = p }
}

// WithFsyncInterval sets the FsyncInterval timer period.
func WithFsyncInterval(d time.Duration) DurabilityOption {
	return func(o *WALOptions) { o.FsyncInterval = d }
}

// WithCheckpointEvery checkpoints automatically after n appended
// records (0 disables auto-checkpointing; explicit and shutdown
// checkpoints still happen).
func WithCheckpointEvery(n int) DurabilityOption {
	return func(o *WALOptions) { o.CheckpointEvery = n }
}

// WithSegmentBytes sets the segment rotation threshold.
func WithSegmentBytes(n int64) DurabilityOption {
	return func(o *WALOptions) { o.SegmentBytes = n }
}

// WithDurability turns on durable enforcement state: sessions that
// hello with a name get their query history write-ahead-logged under
// dir and restored across proxy restarts, so the compliance decisions
// a crashed proxy would have made are exactly the decisions its
// successor makes. The WAL opens (and recovery replays) on Listen.
//
//	beyond.NewProxy(db, chk, beyond.Enforce,
//		beyond.WithDurability("/var/lib/ac/wal",
//			beyond.WithFsync(beyond.FsyncInterval),
//			beyond.WithCheckpointEvery(10000)))
func WithDurability(dir string, opts ...DurabilityOption) ProxyOption {
	return func(s *ProxyServer) {
		o := durable.DefaultOptions()
		for _, opt := range opts {
			opt(&o)
		}
		s.WALDir = dir
		s.WALOpts = o
	}
}

// WithHistoryWindow bounds every proxy session trace — durable or
// ephemeral — to its most recent n entries. Eviction only ever forgets
// facts, so windowed decisions stay sound (merely more conservative),
// and long-lived sessions stop growing without bound.
func WithHistoryWindow(n int) ProxyOption {
	return func(s *ProxyServer) { s.HistoryWindow = n }
}

// NewProxy builds an enforcement proxy over a database and checker:
//
//	beyond.NewProxy(db, chk, beyond.Enforce,
//		beyond.WithMaxConns(256), beyond.WithReadTimeout(30*time.Second))
//
// Deprecated: use Serve with WithV2Listener, which binds the same
// core and composes with the Postgres wire listener:
//
//	svc, err := beyond.Serve(db, chk, beyond.Enforce,
//		beyond.WithV2Listener(addr, beyond.WithMaxConns(256)))
//
// NewProxy remains a supported thin shim over the same proxy core;
// existing callers keep working unchanged.
func NewProxy(db *DB, c *Checker, mode ProxyMode, opts ...ProxyOption) *ProxyServer {
	s := proxy.NewServer(db, c, mode)
	for _, o := range opts {
		o(s)
	}
	return s
}

// DialProxy connects a client to a proxy address.
//
// Deprecated: new application code should prefer the database/sql
// driver (import _ "repro/driver"; sql.Open("beyond", dsn)), which
// rides the same v2 protocol behind the standard library API.
// DialProxy remains supported for tools that want the native client's
// typed surface (Stats, HelloDurable, pipelining).
func DialProxy(addr string, opts ...proxy.ClientOption) (*ProxyClient, error) {
	return proxy.Dial(addr, opts...)
}

// Args builds positional query arguments from Go values.
func Args(vals ...any) sqlparser.Args { return sqlparser.PositionalArgs(vals...) }

// Session builds the principal attribute map policies parameterize
// over (e.g. {"MyUId": 7}).
func Session(attrs map[string]any) map[string]Value {
	out := make(map[string]Value, len(attrs))
	for k, v := range attrs {
		out[k] = sqlvalue.MustFromAny(v)
	}
	return out
}

// ExtractPolicy derives a draft policy from application handlers by
// symbolic execution (§3.2.1).
func ExtractPolicy(s *Schema, app *App) (*Policy, error) {
	return extract.SymbolicExtract(s, app)
}

// MinePolicy derives a draft policy from black-box samples (§3.2.2).
func MinePolicy(s *Schema, samples []extract.Sample, opts MineOptions) (*Policy, error) {
	return extract.Mine(s, samples, opts)
}

// CompareExtraction measures extraction accuracy against a ground
// truth policy.
func CompareExtraction(extracted, truth *Policy) ExtractionAccuracy {
	return extract.Compare(extracted, truth)
}

// AuditPolicy checks PQI and NQI for each named sensitive query
// (§4.3). The ctx bounds the audit; cancellation aborts it between
// queries.
func AuditPolicy(ctx context.Context, p *Policy, sensitive map[string]string) (*DisclosureReport, error) {
	return disclosure.Audit(ctx, p, sensitive)
}

// KAnonymity computes the k parameter of a released view over a
// concrete database.
func KAnonymity(db *DB, releaseSQL string, quasi []string) (int, error) {
	return disclosure.KAnonymity(db, releaseSQL, quasi)
}

// DiagnoseBlocked explains a blocked query and proposes patches
// (§5.2). The ctx bounds the (potentially expensive) counterexample
// and rewriting search; cancellation aborts it mid-pass.
func DiagnoseBlocked(ctx context.Context, c *Checker, session map[string]Value, sql string, args sqlparser.Args, tr *Trace) (*Diagnosis, error) {
	return diagnose.Diagnose(ctx, c, session, sql, args, tr)
}

// Fixtures returns the bundled model applications.
func Fixtures() []*Fixture { return apps.All() }

// FixtureByName returns one bundled model application.
func FixtureByName(name string) (*Fixture, error) { return apps.ByName(name) }
