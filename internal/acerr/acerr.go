// Package acerr defines the toolkit's error taxonomy: a small set of
// sentinel errors that every layer (parser, checker, engine, proxy)
// wraps so callers can branch with errors.Is/errors.As instead of
// string matching, plus the stable machine-readable codes the proxy
// protocol uses to carry these errors across the wire.
//
// The sentinels and codes are a closed vocabulary: adding one is a
// protocol change and must be reflected in DESIGN.md §6.
package acerr

import (
	"context"
	"errors"
)

// Sentinel errors. Wrap them (fmt.Errorf("...: %w", acerr.ErrBlocked))
// or attach them via Coded; test with errors.Is.
var (
	// ErrBlocked marks a query the policy checker refused.
	ErrBlocked = errors.New("blocked by policy")
	// ErrParse marks SQL the parser rejected.
	ErrParse = errors.New("parse error")
	// ErrTooManyConns marks a dial rejected by the proxy's connection
	// limit.
	ErrTooManyConns = errors.New("too many connections")
	// ErrCanceled marks work aborted by context cancellation or
	// deadline expiry.
	ErrCanceled = errors.New("canceled")
)

// Wire codes: the stable machine-readable strings carried in the
// proxy protocol's Response.Code field. Clients map them back to the
// sentinels above with FromCode.
const (
	CodeBlocked      = "blocked"
	CodeParse        = "parse"
	CodeTooManyConns = "too_many_conns"
	CodeCanceled     = "canceled"
	CodeBadRequest   = "bad_request"
	CodeEngine       = "engine"
	CodeInternal     = "internal"
)

// SQLSTATE codes: the five-character class/condition codes the
// Postgres wire listener reports in ErrorResponse messages, chosen so
// stock Postgres clients classify our errors the way they would a real
// server's. Together with the wire codes above they form ONE mapping
// table (codeTable): every wire code has exactly one SQLSTATE and the
// test suite pins that the table is total over the vocabulary.
const (
	// SQLStateBlocked: 42501 insufficient_privilege — a policy refusal
	// is an authorization failure from the client's point of view.
	SQLStateBlocked = "42501"
	// SQLStateParse: 42601 syntax_error.
	SQLStateParse = "42601"
	// SQLStateTooManyConns: 53300 too_many_connections.
	SQLStateTooManyConns = "53300"
	// SQLStateCanceled: 57014 query_canceled.
	SQLStateCanceled = "57014"
	// SQLStateBadRequest: 22023 invalid_parameter_value — malformed
	// arguments rather than malformed SQL.
	SQLStateBadRequest = "22023"
	// SQLStateEngine: XX000 internal_error (engine-side failure).
	SQLStateEngine = "XX000"
	// SQLStateInternal: XX000 internal_error.
	SQLStateInternal = "XX000"
	// SQLStateFeatureNotSupported: 0A000 feature_not_supported — used
	// by the wire listener for protocol features we reject (e.g.
	// binary parameter formats), not produced by CodeOf.
	SQLStateFeatureNotSupported = "0A000"
)

// codeTable is the single source of truth tying each wire code to its
// SQLSTATE. SQLStateOf consults it; the package test asserts every
// Code* constant appears here and every sentinel reaches it through
// CodeOf.
var codeTable = map[string]string{
	CodeBlocked:      SQLStateBlocked,
	CodeParse:        SQLStateParse,
	CodeTooManyConns: SQLStateTooManyConns,
	CodeCanceled:     SQLStateCanceled,
	CodeBadRequest:   SQLStateBadRequest,
	CodeEngine:       SQLStateEngine,
	CodeInternal:     SQLStateInternal,
}

// SQLStateFor maps a wire code to its SQLSTATE. Unknown codes report
// as internal errors — the safe default for a protocol bridge.
func SQLStateFor(code string) string {
	if s, ok := codeTable[code]; ok {
		return s
	}
	return SQLStateInternal
}

// SQLStateOf maps an error to its SQLSTATE via its wire code.
func SQLStateOf(err error) string {
	return SQLStateFor(CodeOf(err))
}

// Codes returns the closed wire-code vocabulary (sorted is not
// guaranteed); tests iterate it to prove mappings are total.
func Codes() []string {
	out := make([]string, 0, len(codeTable))
	for c := range codeTable {
		out = append(out, c)
	}
	return out
}

// CodeOf maps an error to its wire code. nil maps to ""; context
// cancellation and deadline errors count as canceled even when the
// ErrCanceled sentinel was never attached.
func CodeOf(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrBlocked):
		return CodeBlocked
	case errors.Is(err, ErrParse):
		return CodeParse
	case errors.Is(err, ErrTooManyConns):
		return CodeTooManyConns
	case errors.Is(err, ErrCanceled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return CodeCanceled
	}
	return CodeInternal
}

// codedError carries a human message while unwrapping to a sentinel,
// so the message survives the wire round trip verbatim and errors.Is
// still works.
type codedError struct {
	msg      string
	sentinel error
}

func (e *codedError) Error() string { return e.msg }
func (e *codedError) Unwrap() error { return e.sentinel }

// FromCode reconstructs a typed error from a wire code and message.
// Unknown or uncoded errors come back as plain errors with the
// message alone.
func FromCode(code, msg string) error {
	var sentinel error
	switch code {
	case CodeBlocked:
		sentinel = ErrBlocked
	case CodeParse:
		sentinel = ErrParse
	case CodeTooManyConns:
		sentinel = ErrTooManyConns
	case CodeCanceled:
		sentinel = ErrCanceled
	default:
		return errors.New(msg)
	}
	if msg == "" {
		return sentinel
	}
	return &codedError{msg: msg, sentinel: sentinel}
}

// Canceled wraps a context error (or any cause) with ErrCanceled,
// preserving the cause's message. It is what ctx-aware loops return
// when they bail out early.
func Canceled(cause error) error {
	if cause == nil {
		return ErrCanceled
	}
	return &codedError{msg: "canceled: " + cause.Error(), sentinel: ErrCanceled}
}
