package acerr

import (
	"context"
	"errors"
	"fmt"
	"regexp"
	"testing"
)

// TestEveryErrorHasBothMappings pins the satellite contract: every
// exported sentinel maps to a wire code AND a SQLSTATE, and every wire
// code in the closed vocabulary has a SQLSTATE. A sentinel or code
// added without extending the table fails here, not in production.
func TestEveryErrorHasBothMappings(t *testing.T) {
	sentinels := map[string]error{
		"ErrBlocked":      ErrBlocked,
		"ErrParse":        ErrParse,
		"ErrTooManyConns": ErrTooManyConns,
		"ErrCanceled":     ErrCanceled,
	}
	for name, err := range sentinels {
		code := CodeOf(err)
		if code == "" || code == CodeInternal {
			t.Errorf("%s: CodeOf = %q, want a dedicated wire code", name, code)
		}
		state := SQLStateOf(err)
		if state == "" {
			t.Errorf("%s: no SQLSTATE", name)
		}
		// Wrapped sentinels map identically.
		wrapped := fmt.Errorf("context: %w", err)
		if CodeOf(wrapped) != code || SQLStateOf(wrapped) != state {
			t.Errorf("%s: wrapped error maps to %q/%q, want %q/%q",
				name, CodeOf(wrapped), SQLStateOf(wrapped), code, state)
		}
	}

	codes := []string{
		CodeBlocked, CodeParse, CodeTooManyConns, CodeCanceled,
		CodeBadRequest, CodeEngine, CodeInternal,
	}
	valid := regexp.MustCompile(`^[0-9A-Z]{5}$`)
	for _, c := range codes {
		state := SQLStateFor(c)
		if !valid.MatchString(state) {
			t.Errorf("code %q: SQLSTATE %q is not a five-char class code", c, state)
		}
	}
	// Codes() exposes the same vocabulary the constants declare.
	if got, want := len(Codes()), len(codes); got != want {
		t.Errorf("Codes() has %d entries, want %d", got, want)
	}
	for _, c := range Codes() {
		found := false
		for _, want := range codes {
			if c == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Codes() contains %q, not among the declared constants", c)
		}
	}
}

func TestSQLStateValues(t *testing.T) {
	// The specific classes are part of the public contract (documented
	// in DESIGN.md §13): clients pattern-match on them.
	cases := map[string]string{
		CodeBlocked:      "42501",
		CodeParse:        "42601",
		CodeTooManyConns: "53300",
		CodeCanceled:     "57014",
		CodeBadRequest:   "22023",
		CodeEngine:       "XX000",
		CodeInternal:     "XX000",
	}
	for code, want := range cases {
		if got := SQLStateFor(code); got != want {
			t.Errorf("SQLStateFor(%q) = %q, want %q", code, got, want)
		}
	}
	if got := SQLStateFor("no_such_code"); got != SQLStateInternal {
		t.Errorf("unknown code: got %q, want internal", got)
	}
	if SQLStateFeatureNotSupported != "0A000" {
		t.Errorf("feature_not_supported = %q", SQLStateFeatureNotSupported)
	}
}

func TestCodeRoundTrip(t *testing.T) {
	for _, err := range []error{ErrBlocked, ErrParse, ErrTooManyConns, ErrCanceled} {
		code := CodeOf(err)
		back := FromCode(code, "some message")
		if !errors.Is(back, err) {
			t.Errorf("FromCode(%q) does not unwrap to original sentinel", code)
		}
		if back.Error() != "some message" {
			t.Errorf("FromCode(%q) message = %q", code, back.Error())
		}
	}
	if got := CodeOf(context.DeadlineExceeded); got != CodeCanceled {
		t.Errorf("deadline: code %q, want canceled", got)
	}
	if got := SQLStateOf(context.Canceled); got != SQLStateCanceled {
		t.Errorf("ctx cancel: SQLSTATE %q, want %q", got, SQLStateCanceled)
	}
}
