// Package policy represents data-access policies as sets of
// parameterized SQL views, the form used throughout the paper: each
// view is a SELECT over base tables whose named parameters (?MyUId,
// ?MyRole, ...) refer to attributes of the current principal. A
// principal may see exactly the union of the views' answers.
package policy

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cq"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
)

// View is one parameterized policy view.
type View struct {
	Name string
	SQL  string
	Stmt *sqlparser.SelectStmt
	// CQs is the translated union of conjunctive queries; each
	// disjunct carries Name.
	CQs cq.UCQ
}

// Policy is an allow-list of views over a schema.
type Policy struct {
	Schema *schema.Schema
	Views  []*View
}

// New builds a policy from named view SQL. Every view must be inside
// the conjunctive fragment (the fragment the paper's machinery is
// defined for).
func New(s *schema.Schema, views map[string]string) (*Policy, error) {
	names := make([]string, 0, len(views))
	for n := range views {
		names = append(names, n)
	}
	sort.Strings(names)
	p := &Policy{Schema: s}
	for _, n := range names {
		if err := p.Add(n, views[n]); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// MustNew is New, panicking on error; for fixtures.
func MustNew(s *schema.Schema, views map[string]string) *Policy {
	p, err := New(s, views)
	if err != nil {
		panic(err)
	}
	return p
}

// Add parses and appends one view.
func (p *Policy) Add(name, sql string) error {
	stmt, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return fmt.Errorf("policy: view %s: %w", name, err)
	}
	ucq, err := (&cq.Translator{Schema: p.Schema}).TranslateSelect(stmt)
	if err != nil {
		return fmt.Errorf("policy: view %s: %w", name, err)
	}
	for _, q := range ucq {
		q.Name = name
		// Views are information carriers: constants and parameters in
		// the head reveal nothing, so normalize them away for
		// containment reasoning and visibility checking.
		q.NormalizeHead()
	}
	p.Views = append(p.Views, &View{Name: name, SQL: sql, Stmt: stmt, CQs: ucq})
	return nil
}

// Clone returns a shallow copy with an independent view list.
func (p *Policy) Clone() *Policy {
	return &Policy{Schema: p.Schema, Views: append([]*View(nil), p.Views...)}
}

// View returns the view by name.
func (p *Policy) View(name string) (*View, bool) {
	for _, v := range p.Views {
		if v.Name == name {
			return v, true
		}
	}
	return nil, false
}

// Params returns the distinct parameter names used across all views,
// sorted. These are the session attributes the enforcement point must
// supply (e.g. MyUId).
func (p *Policy) Params() []string {
	seen := make(map[string]bool)
	for _, v := range p.Views {
		for _, q := range v.CQs {
			for _, prm := range q.Params() {
				seen[prm] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Disjuncts returns every CQ disjunct of every view, with parameters
// bound from session when non-nil.
func (p *Policy) Disjuncts(session map[string]sqlvalue.Value) []*cq.Query {
	var out []*cq.Query
	for _, v := range p.Views {
		for _, q := range v.CQs {
			if session != nil {
				out = append(out, q.BindParams(session))
			} else {
				out = append(out, q)
			}
		}
	}
	return out
}

// String renders the policy as named view definitions, one per line.
func (p *Policy) String() string {
	var b strings.Builder
	for _, v := range p.Views {
		fmt.Fprintf(&b, "%s: %s\n", v.Name, v.SQL)
	}
	return b.String()
}

// Fingerprint returns a stable identity for the policy contents, used
// to invalidate decision caches when the policy changes.
func (p *Policy) Fingerprint() string {
	parts := make([]string, 0, len(p.Views))
	for _, v := range p.Views {
		for _, q := range v.CQs {
			parts = append(parts, q.CanonicalKey())
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, "&")
}

// Subsumes reports whether view a's information is derivable from
// view b's answer (a is redundant given b), chasing the schema's
// foreign keys as inclusion dependencies — used by extraction
// minimization and policy diffing.
func Subsumes(s *schema.Schema, a, b *View) bool {
	return cq.InfoContainsUCQ(s, a.CQs, b.CQs)
}

// DiffResult reports the comparison of two policies.
type DiffResult struct {
	// OnlyA are views of A not covered by any view of B, and vice
	// versa. "Covered" means contained in some single view of the
	// other policy.
	OnlyA []*View
	OnlyB []*View
}

// Diff compares policies by per-view containment.
func Diff(a, b *Policy) DiffResult {
	var out DiffResult
	coveredBy := func(v *View, p *Policy) bool {
		for _, w := range p.Views {
			if Subsumes(p.Schema, v, w) {
				return true
			}
		}
		return false
	}
	for _, v := range a.Views {
		if !coveredBy(v, b) {
			out.OnlyA = append(out.OnlyA, v)
		}
	}
	for _, v := range b.Views {
		if !coveredBy(v, a) {
			out.OnlyB = append(out.OnlyB, v)
		}
	}
	return out
}

// Minimize drops views that are subsumed by other views, returning a
// new policy. Ties (mutually equivalent views) keep the
// lexicographically first name.
func Minimize(p *Policy) *Policy {
	out := &Policy{Schema: p.Schema}
	views := append([]*View(nil), p.Views...)
	sort.Slice(views, func(i, j int) bool { return views[i].Name < views[j].Name })
	for i, v := range views {
		redundant := false
		for j, w := range views {
			if i == j {
				continue
			}
			if Subsumes(p.Schema, v, w) {
				// v ⊆ w: drop v unless they're equivalent and v comes
				// first.
				if Subsumes(p.Schema, w, v) && i < j {
					continue
				}
				redundant = true
				break
			}
		}
		if !redundant {
			out.Views = append(out.Views, v)
		}
	}
	return out
}
