package policy

import (
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/sqlvalue"
)

func calSchema(t testing.TB) *schema.Schema {
	t.Helper()
	s, err := schema.NewBuilder().
		Table("Events").
		NotNullCol("EId", sqlvalue.Int).
		NotNullCol("Title", sqlvalue.Text).
		Col("Notes", sqlvalue.Text).
		PK("EId").Done().
		Table("Attendance").
		NotNullCol("UId", sqlvalue.Int).
		NotNullCol("EId", sqlvalue.Int).
		PK("UId", "EId").Done().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewAndLookup(t *testing.T) {
	s := calSchema(t)
	p := MustNew(s, map[string]string{
		"V1": "SELECT EId FROM Attendance WHERE UId = ?MyUId",
		"V2": "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?MyUId",
	})
	if len(p.Views) != 2 {
		t.Fatalf("views: %d", len(p.Views))
	}
	v, ok := p.View("V1")
	if !ok || v.SQL == "" || len(v.CQs) != 1 {
		t.Fatalf("V1: %+v", v)
	}
	if _, ok := p.View("nope"); ok {
		t.Fatal("unknown view lookup should fail")
	}
}

func TestParams(t *testing.T) {
	s := calSchema(t)
	p := MustNew(s, map[string]string{
		"V1": "SELECT EId FROM Attendance WHERE UId = ?MyUId",
		"V2": "SELECT Title FROM Events WHERE EId = ?MyTeam",
	})
	ps := p.Params()
	if len(ps) != 2 || ps[0] != "MyTeam" || ps[1] != "MyUId" {
		t.Fatalf("params: %v", ps)
	}
}

func TestAddRejectsNonCQ(t *testing.T) {
	s := calSchema(t)
	p := &Policy{Schema: s}
	if err := p.Add("Bad", "SELECT Title FROM Events WHERE Notes IS NULL"); err == nil {
		t.Fatal("non-CQ view must be rejected")
	}
	if err := p.Add("Bad2", "SELECT Title FROM Evnts"); err == nil {
		t.Fatal("unknown table must be rejected")
	}
}

func TestDisjunctsBinding(t *testing.T) {
	s := calSchema(t)
	p := MustNew(s, map[string]string{
		"V1": "SELECT EId FROM Attendance WHERE UId = ?MyUId",
	})
	free := p.Disjuncts(nil)
	if len(free) != 1 || len(free[0].Params()) != 1 {
		t.Fatalf("free disjuncts: %v", free)
	}
	bound := p.Disjuncts(map[string]sqlvalue.Value{"MyUId": sqlvalue.NewInt(9)})
	if len(bound[0].Params()) != 0 {
		t.Fatalf("bound disjuncts: %v", bound)
	}
}

func TestSubsumesAndMinimize(t *testing.T) {
	s := calSchema(t)
	p := MustNew(s, map[string]string{
		"Narrow": "SELECT EId FROM Attendance WHERE UId = ?MyUId AND EId = 3",
		"Wide":   "SELECT EId FROM Attendance WHERE UId = ?MyUId",
	})
	n, _ := p.View("Narrow")
	w, _ := p.View("Wide")
	if !Subsumes(s, n, w) {
		t.Fatal("Narrow should be subsumed by Wide")
	}
	if Subsumes(s, w, n) {
		t.Fatal("Wide must not be subsumed by Narrow")
	}
	m := Minimize(p)
	if len(m.Views) != 1 || m.Views[0].Name != "Wide" {
		t.Fatalf("minimized: %s", m)
	}
}

func TestMinimizeKeepsOneOfEquivalent(t *testing.T) {
	s := calSchema(t)
	p := MustNew(s, map[string]string{
		"A": "SELECT EId FROM Attendance WHERE UId = ?MyUId",
		"B": "SELECT a.EId FROM Attendance a WHERE a.UId = ?MyUId",
	})
	m := Minimize(p)
	if len(m.Views) != 1 || m.Views[0].Name != "A" {
		t.Fatalf("minimized equivalents: %s", m)
	}
}

func TestDiff(t *testing.T) {
	s := calSchema(t)
	a := MustNew(s, map[string]string{
		"V1": "SELECT EId FROM Attendance WHERE UId = ?MyUId",
		"V2": "SELECT Title FROM Events",
	})
	b := MustNew(s, map[string]string{
		"W1": "SELECT EId FROM Attendance WHERE UId = ?MyUId",
	})
	d := Diff(a, b)
	if len(d.OnlyA) != 1 || d.OnlyA[0].Name != "V2" {
		t.Fatalf("onlyA: %+v", d.OnlyA)
	}
	if len(d.OnlyB) != 0 {
		t.Fatalf("onlyB: %+v", d.OnlyB)
	}
}

func TestFingerprintChangesWithPolicy(t *testing.T) {
	s := calSchema(t)
	p := MustNew(s, map[string]string{"V1": "SELECT EId FROM Attendance WHERE UId = ?MyUId"})
	f1 := p.Fingerprint()
	if err := p.Add("V2", "SELECT Title FROM Events"); err != nil {
		t.Fatal(err)
	}
	if p.Fingerprint() == f1 {
		t.Fatal("fingerprint must change when a view is added")
	}
}

func TestStringRendering(t *testing.T) {
	s := calSchema(t)
	p := MustNew(s, map[string]string{"V1": "SELECT EId FROM Attendance WHERE UId = ?MyUId"})
	if !strings.Contains(p.String(), "V1: SELECT EId") {
		t.Errorf("rendering: %s", p)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := calSchema(t)
	p := MustNew(s, map[string]string{"V1": "SELECT EId FROM Attendance WHERE UId = ?MyUId"})
	c := p.Clone()
	if err := c.Add("V2", "SELECT Title FROM Events"); err != nil {
		t.Fatal(err)
	}
	if len(p.Views) != 1 || len(c.Views) != 2 {
		t.Fatal("clone shares view list")
	}
}
