package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sqlvalue"
)

// Parse parses a single SQL statement.
func Parse(src string) (Statement, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks, nextPos: -1}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	// Allow a trailing semicolon.
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.advance()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errHere("unexpected trailing input %q", p.peek().text)
	}
	return stmt, nil
}

// ParseSelect parses a statement and requires it to be a SELECT.
func ParseSelect(src string) (*SelectStmt, error) {
	s, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := s.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: expected SELECT, got %T", s)
	}
	return sel, nil
}

// MustParse is Parse, panicking on error. For fixtures and tests.
func MustParse(src string) Statement {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

// MustParseSelect is ParseSelect, panicking on error.
func MustParseSelect(src string) *SelectStmt {
	s, err := ParseSelect(src)
	if err != nil {
		panic(err)
	}
	return s
}

type parser struct {
	src     string
	toks    []token
	i       int
	nextPos int // running index assigned to positional params
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) peek2() token {
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *parser) advance() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) errHere(format string, args ...any) error {
	return fmt.Errorf("sql:%d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) expectKeyword(kw string) error {
	t := p.peek()
	if t.kind != tokKeyword || t.text != kw {
		return p.errHere("expected %s, got %q", kw, t.text)
	}
	p.advance()
	return nil
}

func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokKeyword && t.text == kw
}

func (p *parser) eatKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	t := p.peek()
	if t.kind != tokSymbol || t.text != sym {
		return p.errHere("expected %q, got %q", sym, t.text)
	}
	p.advance()
	return nil
}

func (p *parser) atSymbol(sym string) bool {
	t := p.peek()
	return t.kind == tokSymbol && t.text == sym
}

func (p *parser) eatSymbol(sym string) bool {
	if p.atSymbol(sym) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if !identLike(t) {
		return "", p.errHere("expected identifier, got %q", t.text)
	}
	p.advance()
	return t.text, nil
}

func (p *parser) parseStatement() (Statement, error) {
	switch t := p.peek(); {
	case t.kind == tokKeyword && t.text == "SELECT":
		return p.parseSelect()
	case t.kind == tokKeyword && t.text == "INSERT":
		return p.parseInsert()
	case t.kind == tokKeyword && t.text == "UPDATE":
		return p.parseUpdate()
	case t.kind == tokKeyword && t.text == "DELETE":
		return p.parseDelete()
	case t.kind == tokKeyword && t.text == "CREATE":
		return p.parseCreateTable()
	case t.kind == tokSymbol && t.text == "(":
		// Parenthesized SELECT at top level.
		p.advance()
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return sel, nil
	}
	return nil, p.errHere("expected a statement, got %q", p.peek().text)
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{}
	sel.Distinct = p.eatKeyword("DISTINCT")
	if p.eatKeyword("ALL") {
		sel.Distinct = false
	}

	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.eatSymbol(",") {
			break
		}
	}

	if p.eatKeyword("FROM") {
		for {
			te, err := p.parseTableExpr()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, te)
			if !p.eatSymbol(",") {
				break
			}
		}
	}

	if p.eatKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.atKeyword("GROUP") {
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.eatSymbol(",") {
				break
			}
		}
	}
	if p.eatKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	if p.atKeyword("ORDER") {
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.eatKeyword("DESC") {
				item.Desc = true
			} else {
				p.eatKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.eatSymbol(",") {
				break
			}
		}
	}
	if p.eatKeyword("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Limit = e
	}
	if p.eatKeyword("OFFSET") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Offset = e
	}
	for p.atKeyword("UNION") {
		p.advance()
		all := p.eatKeyword("ALL")
		arm, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		// ORDER BY / LIMIT / OFFSET written after the last arm apply
		// to the whole union: hoist them onto the head select.
		if len(arm.OrderBy) > 0 && len(sel.OrderBy) == 0 {
			sel.OrderBy, arm.OrderBy = arm.OrderBy, nil
		}
		if arm.Limit != nil && sel.Limit == nil {
			sel.Limit, arm.Limit = arm.Limit, nil
		}
		if arm.Offset != nil && sel.Offset == nil {
			sel.Offset, arm.Offset = arm.Offset, nil
		}
		sel.Union = append(sel.Union, UnionPart{All: all, Select: arm})
		// A nested chain parsed into the arm flattens onto the head.
		if len(arm.Union) > 0 {
			sel.Union = append(sel.Union, arm.Union...)
			arm.Union = nil
		}
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	// "*" | ident "." "*" | expr [AS alias]
	if p.atSymbol("*") {
		p.advance()
		return SelectItem{Star: true}, nil
	}
	if identLike(p.peek()) && p.peek2().kind == tokSymbol && p.peek2().text == "." {
		// Lookahead for t.*
		if p.i+2 < len(p.toks) {
			t3 := p.toks[p.i+2]
			if t3.kind == tokSymbol && t3.text == "*" {
				tab := p.advance().text
				p.advance() // .
				p.advance() // *
				return SelectItem{Star: true, Table: tab}, nil
			}
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.eatKeyword("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if identLike(p.peek()) {
		// Bare alias.
		item.Alias = p.advance().text
	}
	return item, nil
}

func (p *parser) parseTableExpr() (TableExpr, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var jt JoinType
		switch {
		case p.atKeyword("JOIN"):
			p.advance()
			jt = InnerJoin
		case p.atKeyword("INNER"):
			p.advance()
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jt = InnerJoin
		case p.atKeyword("LEFT"):
			p.advance()
			p.eatKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jt = LeftJoin
		case p.atKeyword("CROSS"):
			p.advance()
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			right, err := p.parseTablePrimary()
			if err != nil {
				return nil, err
			}
			left = &JoinExpr{Type: InnerJoin, Left: left, Right: right}
			continue
		default:
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		join := &JoinExpr{Type: jt, Left: left, Right: right}
		if p.eatKeyword("ON") {
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			join.On = on
		}
		left = join
	}
}

func (p *parser) parseTablePrimary() (TableExpr, error) {
	if p.eatSymbol("(") {
		te, err := p.parseTableExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return te, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ref := &TableRef{Name: name}
	if p.eatKeyword("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ref.Alias = a
	} else if identLike(p.peek()) {
		ref.Alias = p.advance().text
	}
	return ref, nil
}

// Expression grammar (precedence climbing):
//
//	expr    := orExpr
//	orExpr  := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := NOT notExpr | predicate
//	predicate := additive [compOp additive | IS [NOT] NULL |
//	             [NOT] IN (...) | [NOT] LIKE additive |
//	             [NOT] BETWEEN additive AND additive]
//	additive := multiplicative (('+'|'-') multiplicative)*
//	multiplicative := primary (('*'|'/'|'%') primary)*
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.eatKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") {
		p.advance()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.eatKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: '!', Expr: e}, nil
	}
	return p.parsePredicate()
}

var compOps = map[string]BinaryOp{
	"=": OpEq, "<>": OpNe, "!=": OpNe,
	"<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) parsePredicate() (Expr, error) {
	// EXISTS (subquery)
	if p.atKeyword("EXISTS") {
		p.advance()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &ExistsExpr{Subquery: sub}, nil
	}

	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}

	// Comparison operators.
	if t := p.peek(); t.kind == tokSymbol {
		if op, ok := compOps[t.text]; ok {
			p.advance()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, Left: left, Right: right}, nil
		}
	}

	// IS [NOT] NULL
	if p.atKeyword("IS") {
		p.advance()
		not := p.eatKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{Expr: left, Not: not}, nil
	}

	not := false
	if p.atKeyword("NOT") {
		// Only if followed by IN/LIKE/BETWEEN.
		n := p.peek2()
		if n.kind == tokKeyword && (n.text == "IN" || n.text == "LIKE" || n.text == "BETWEEN") {
			p.advance()
			not = true
		}
	}

	switch {
	case p.atKeyword("IN"):
		p.advance()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		in := &InExpr{Expr: left, Not: not}
		if p.atKeyword("SELECT") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			in.Subquery = sub
		} else {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				in.List = append(in.List, e)
				if !p.eatSymbol(",") {
					break
				}
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return in, nil

	case p.atKeyword("LIKE"):
		p.advance()
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		var e Expr = &BinaryExpr{Op: OpLike, Left: left, Right: right}
		if not {
			e = &UnaryExpr{Op: '!', Expr: e}
		}
		return e, nil

	case p.atKeyword("BETWEEN"):
		p.advance()
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{Expr: left, Not: not, Lo: lo, Hi: hi}, nil
	}

	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol || (t.text != "+" && t.text != "-") {
			return left, nil
		}
		p.advance()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		op := OpAdd
		if t.text == "-" {
			op = OpSub
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol || (t.text != "*" && t.text != "/" && t.text != "%") {
			return left, nil
		}
		p.advance()
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		var op BinaryOp
		switch t.text {
		case "*":
			op = OpMul
		case "/":
			op = OpDiv
		default:
			op = OpMod
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

// parsePrimary parses a primary expression and any trailing
// Postgres-style `::type` cast suffixes. The engine is dynamically
// typed and the checker reasons over untyped conjunctive queries, so a
// cast is accepted and discarded: `col::int8 = $1` decides and
// evaluates exactly like `col = $1`. The type name is a single
// identifier with an optional parenthesized precision list
// (`::varchar(10)`, `::numeric(8,2)`).
func (p *parser) parsePrimary() (Expr, error) {
	e, err := p.parsePrimaryBase()
	if err != nil {
		return nil, err
	}
	for p.atSymbol("::") {
		p.advance()
		if _, err := p.expectIdent(); err != nil {
			return nil, err
		}
		if p.eatSymbol("(") {
			for {
				if t := p.peek(); t.kind != tokInt {
					return nil, p.errHere("expected integer in type precision, got %q", t.text)
				}
				p.advance()
				if !p.eatSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		}
	}
	return e, nil
}

func (p *parser) parsePrimaryBase() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errHere("bad integer %q", t.text)
		}
		return &Literal{Value: sqlvalue.NewInt(n)}, nil
	case tokFloat:
		p.advance()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errHere("bad float %q", t.text)
		}
		return &Literal{Value: sqlvalue.NewReal(f)}, nil
	case tokString:
		p.advance()
		return &Literal{Value: sqlvalue.NewText(t.text)}, nil
	case tokParam:
		p.advance()
		if t.text == "" {
			p.nextPos++
			return &Param{Index: p.nextPos}, nil
		}
		if t.text[0] == '$' {
			// Postgres-style $N placeholder: an explicit 1-based
			// positional index ($1 may repeat and indices may appear
			// out of order).
			n, err := strconv.Atoi(t.text[1:])
			if err != nil || n < 1 {
				return nil, p.errHere("bad placeholder %q", t.text)
			}
			return &Param{Index: n - 1, Explicit: true}, nil
		}
		return &Param{Name: t.text, Index: -1}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.advance()
			return &Literal{Value: sqlvalue.NewNull()}, nil
		case "TRUE":
			p.advance()
			return &Literal{Value: sqlvalue.NewBool(true)}, nil
		case "FALSE":
			p.advance()
			return &Literal{Value: sqlvalue.NewBool(false)}, nil
		case "NOT":
			p.advance()
			e, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{Op: '!', Expr: e}, nil
		}
	case tokSymbol:
		switch t.text {
		case "(":
			p.advance()
			if p.atKeyword("SELECT") {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Subquery: sub}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		case "-":
			p.advance()
			e, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			if lit, ok := e.(*Literal); ok {
				switch lit.Value.Type() {
				case sqlvalue.Int:
					return &Literal{Value: sqlvalue.NewInt(-lit.Value.Int())}, nil
				case sqlvalue.Real:
					return &Literal{Value: sqlvalue.NewReal(-lit.Value.Real())}, nil
				}
			}
			return &UnaryExpr{Op: '-', Expr: e}, nil
		case "*":
			// COUNT(*) handled in function parsing; bare * invalid here.
		}
	}
	if identLike(t) {
		return p.parseIdentExpr()
	}
	return nil, p.errHere("unexpected token %q in expression", t.text)
}

func (p *parser) parseIdentExpr() (Expr, error) {
	name := p.advance().text

	// Function call?
	if p.atSymbol("(") {
		p.advance()
		fn := &FuncExpr{Name: strings.ToUpper(name)}
		if p.eatSymbol("*") {
			fn.Star = true
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return fn, nil
		}
		fn.Distinct = p.eatKeyword("DISTINCT")
		if !p.atSymbol(")") {
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fn.Args = append(fn.Args, a)
				if !p.eatSymbol(",") {
					break
				}
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return fn, nil
	}

	// Qualified column?
	if p.atSymbol(".") {
		p.advance()
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &ColumnRef{Table: name, Column: col}, nil
	}
	return &ColumnRef{Column: name}, nil
}

func (p *parser) parseInsert() (Statement, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: name}
	if p.eatSymbol("(") {
		for {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, c)
			if !p.eatSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.eatSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.eatSymbol(",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	upd := &UpdateStmt{Table: name}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Set = append(upd.Set, Assignment{Column: col, Value: val})
		if !p.eatSymbol(",") {
			break
		}
	}
	if p.eatKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Where = w
	}
	return upd, nil
}

func (p *parser) parseDelete() (Statement, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	del := &DeleteStmt{Table: name}
	if p.eatKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}

func (p *parser) parseCreateTable() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ct := &CreateTableStmt{Name: name}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.atKeyword("PRIMARY"):
			p.advance()
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parseParenIdentList()
			if err != nil {
				return nil, err
			}
			ct.PrimaryKey = cols
		case p.atKeyword("UNIQUE"):
			p.advance()
			cols, err := p.parseParenIdentList()
			if err != nil {
				return nil, err
			}
			ct.UniqueKeys = append(ct.UniqueKeys, cols)
		case p.atKeyword("FOREIGN"):
			p.advance()
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parseParenIdentList()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("REFERENCES"); err != nil {
				return nil, err
			}
			ref, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			refCols, err := p.parseParenIdentList()
			if err != nil {
				return nil, err
			}
			ct.ForeignKeys = append(ct.ForeignKeys, ForeignKeyDef{Columns: cols, RefTable: ref, RefColumns: refCols})
		default:
			colName, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			typeName, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			typ, err := sqlvalue.ParseType(typeName)
			if err != nil {
				return nil, p.errHere("%v", err)
			}
			cd := ColumnDef{Name: colName, Type: typ}
			for {
				switch {
				case p.atKeyword("NOT"):
					p.advance()
					if err := p.expectKeyword("NULL"); err != nil {
						return nil, err
					}
					cd.NotNull = true
				case p.atKeyword("PRIMARY"):
					p.advance()
					if err := p.expectKeyword("KEY"); err != nil {
						return nil, err
					}
					cd.PK = true
					cd.NotNull = true
				case p.atKeyword("UNIQUE"):
					p.advance()
					cd.Unique = true
				default:
					goto colDone
				}
			}
		colDone:
			ct.Columns = append(ct.Columns, cd)
		}
		if !p.eatSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	// Fold inline PK/UNIQUE markers into table-level keys.
	for _, c := range ct.Columns {
		if c.PK && len(ct.PrimaryKey) == 0 {
			ct.PrimaryKey = []string{c.Name}
		}
		if c.Unique {
			ct.UniqueKeys = append(ct.UniqueKeys, []string{c.Name})
		}
	}
	return ct, nil
}

func (p *parser) parseParenIdentList() ([]string, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var out []string
	for {
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if !p.eatSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return out, nil
}
