package sqlparser

import (
	"testing"
)

// FuzzParse asserts two invariants on arbitrary input: the parser
// never panics, and when it accepts, printing and re-parsing is
// stable (print∘parse is idempotent). Run `go test -fuzz=FuzzParse`
// for continuous fuzzing; the seed corpus runs in every `go test`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT EId FROM Attendance WHERE UId = ?MyUId",
		"SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = 1",
		"SELECT DISTINCT d, COUNT(*) AS n FROM Emp GROUP BY d HAVING COUNT(*) > 2 ORDER BY n DESC LIMIT 5",
		"SELECT x FROM T WHERE a IN (1, 2) OR b NOT IN (SELECT id FROM U)",
		"SELECT a FROM T UNION ALL SELECT b FROM U ORDER BY 1",
		"INSERT INTO T (a, b) VALUES (1, 'x''y'), (2, NULL)",
		"UPDATE T SET a = a + 1 WHERE id = ?",
		"DELETE FROM T WHERE id = 3",
		"CREATE TABLE T (a INTEGER PRIMARY KEY, b TEXT NOT NULL, UNIQUE (b))",
		"SELECT x FROM T WHERE NOT (a = 1 AND b BETWEEN 2 AND 3) -- c",
		"SELECT 'unterminated",
		"SELECT ((((1))))",
		"SELECT a FROM T WHERE EXISTS (SELECT 1 FROM U WHERE U.x = T.x)",
		"select lower(a), 1.5e FROM t",
		")(*&^%$#@!",
		"SELECT a FROM T WHERE x IS NOT NULL AND y LIKE '%_%'",
		"SELECT a FROM t WHERE b = $1 AND c = $2::int8",
		"SELECT $dollar quoted$",
		"SELECT $tag$body with $1 and 'quotes'$tag$ FROM t",
		"SELECT x FROM t WHERE n = 'it''s' AND y = $1 /* :c */ -- $2",
		"SELECT a::text, b::numeric(10, 2) FROM t WHERE c = $2 AND d = $2",
		"SELECT a FROM t WHERE b = :name AND c = ?",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		out1 := stmt.SQL()
		stmt2, err := Parse(out1)
		if err != nil {
			t.Fatalf("accepted %q but rejected own rendering %q: %v", src, out1, err)
		}
		out2 := stmt2.SQL()
		if out1 != out2 {
			t.Fatalf("print∘parse not idempotent:\n 1: %s\n 2: %s", out1, out2)
		}
	})
}
