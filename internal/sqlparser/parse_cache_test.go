package sqlparser

import (
	"fmt"
	"testing"
)

// A stream of unique malformed statements must not be able to evict
// hot statement templates: error entries live in their own small
// bounded cache, not the template budget. (Regression: error entries
// used to share the per-shard cap, so a probing client could thrash
// every hot template out of the cache.)
func TestParseCacheErrorChurnDoesNotEvictTemplates(t *testing.T) {
	hot := []string{
		"SELECT EId FROM Attendance WHERE UId = ?",
		"SELECT Name FROM Users WHERE UId = ?",
		"SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?",
	}
	stmts := make([]Statement, len(hot))
	for i, sql := range hot {
		st, err := ParseCached(sql)
		if err != nil {
			t.Fatalf("prime %q: %v", sql, err)
		}
		stmts[i] = st
	}

	// Far more unique failures than the whole template cache holds.
	for i := 0; i < parseCacheShards*parseCachePerShard*4; i++ {
		sql := fmt.Sprintf("SELEC bogus FROM t%d WHERE", i)
		if _, err := ParseCached(sql); err == nil {
			t.Fatalf("expected parse error for %q", sql)
		}
	}

	// ParseCached returns the SHARED statement per SQL text, so pointer
	// identity proves the template survived the churn uncached-free.
	for i, sql := range hot {
		st, err := ParseCached(sql)
		if err != nil {
			t.Fatalf("re-parse %q: %v", sql, err)
		}
		if st != stmts[i] {
			t.Errorf("hot template %q was evicted by error churn (got a fresh parse)", sql)
		}
	}

	// The negative cache itself must have stayed within its bound.
	for i := range parseCache {
		sh := &parseCache[i]
		sh.mu.Lock()
		n := len(sh.errs)
		sh.mu.Unlock()
		if n > parseErrCachePerShard {
			t.Errorf("shard %d: %d error entries, cap %d", i, n, parseErrCachePerShard)
		}
	}
}

// Parse failures are still memoized: the second parse of the same bad
// statement returns the cached error without re-lexing.
func TestParseCacheMemoizesErrors(t *testing.T) {
	const bad = "SELECT FROM WHERE !!"
	_, err1 := ParseCached(bad)
	if err1 == nil {
		t.Fatal("expected parse error")
	}
	_, err2 := ParseCached(bad)
	if err2 == nil {
		t.Fatal("expected cached parse error")
	}
	// Same error instance proves the negative-cache hit.
	if err1 != err2 {
		t.Errorf("error not served from cache: %v vs %v", err1, err2)
	}
}
