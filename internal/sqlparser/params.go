package sqlparser

import "strconv"

// Placeholder normalization. Every ingress surface — the v2 line
// protocol, the Postgres wire listener, and the database/sql driver —
// accepts whatever placeholder style its clients write: sequential
// `?`, Postgres `$N`, `:name`, or the native `?name`. The
// statement-identity caches (the parse cache and the checker's front
// cache) key on statement text, so "WHERE UId = ?" from a v2 client
// and "WHERE UId = $1" from a stock Postgres driver would otherwise be
// two distinct statements forever. NormalizeParams rewrites a
// statement into one canonical parameter form so identical statements
// key identically no matter which surface they entered through:
//
//   - bare `?`  -> `$N` (N assigned left to right, matching the
//     parser's own sequential index assignment)
//   - `:name`   -> `?name` (the parser's native named form)
//   - `$N` and `?name` pass through unchanged
//
// The scan must not rewrite placeholder characters that do not mean
// placeholders, which is where real SQL gets treacherous (SNIPPETS.md
// Snippet 3 catalogs the edge cases): `?`/`:`/`$` inside single-quoted
// strings (with '' escapes), quoted identifiers, line and block
// comments, and dollar-quoted strings are data; the `::` of a cast is
// an operator, not a `:name`; `$tag$` opens a string, not a
// placeholder. When the scanner hits a construct it cannot finish
// (an unterminated string, say) it returns the input unchanged and
// lets the parser produce the real error.

// NormalizeParams returns src with its placeholders rewritten to the
// canonical form, or src itself (no allocation) when nothing needs
// rewriting.
func NormalizeParams(src string) string {
	// Fast scan: find the first byte that could need attention. Most
	// statements on the hot path are already canonical.
	i := 0
	for i < len(src) {
		switch src[i] {
		case '?', ':', '$', '\'', '"', '`', '-', '/':
			goto rewrite
		}
		i++
	}
	return src

rewrite:
	var out []byte
	// emit appends src[from:to] lazily: until the first actual rewrite
	// happens, nothing is copied.
	flushed := 0
	flush := func(to int) {
		if out == nil {
			out = make([]byte, 0, len(src)+8)
		}
		out = append(out, src[flushed:to]...)
		flushed = to
	}
	nextPos := 0
	for i = 0; i < len(src); {
		c := src[i]
		switch c {
		case '\'':
			j, ok := skipQuoted(src, i, '\'', true)
			if !ok {
				return src
			}
			i = j
		case '"', '`':
			j, ok := skipQuoted(src, i, c, false)
			if !ok {
				return src
			}
			i = j
		case '-':
			if i+1 < len(src) && src[i+1] == '-' {
				for i < len(src) && src[i] != '\n' {
					i++
				}
			} else {
				i++
			}
		case '/':
			if i+1 < len(src) && src[i+1] == '*' {
				end := indexFrom(src, i+2, "*/")
				if end < 0 {
					return src
				}
				i = end + 2
			} else {
				i++
			}
		case '$':
			if i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9' {
				// Already-canonical $N. It does NOT advance the bare-`?`
				// counter: the parser numbers sequential `?` independently
				// of explicit indices, and the rewrite must agree with
				// what the parser would have assigned on the raw text.
				j := i + 1
				for j < len(src) && src[j] >= '0' && src[j] <= '9' {
					j++
				}
				i = j
				break
			}
			// Dollar-quoted string $tag$...$tag$ — skip verbatim.
			j := i + 1
			for j < len(src) && isIdentChar(src[j]) {
				j++
			}
			if j < len(src) && src[j] == '$' {
				delim := src[i : j+1]
				end := indexFrom(src, j+1, delim)
				if end < 0 {
					return src
				}
				i = end + len(delim)
				break
			}
			i++
		case ':':
			if i+1 < len(src) && src[i+1] == ':' {
				i += 2 // cast operator; the following ident is a type
				break
			}
			if i+1 < len(src) && isIdentStart(src[i+1]) {
				j := i + 1
				for j < len(src) && isIdentChar(src[j]) {
					j++
				}
				flush(i)
				out = append(out, '?')
				out = append(out, src[i+1:j]...)
				flushed = j
				i = j
				break
			}
			i++
		case '?':
			if i+1 < len(src) && isIdentChar(src[i+1]) {
				// Native named form ?name: already canonical.
				j := i + 1
				for j < len(src) && isIdentChar(src[j]) {
					j++
				}
				i = j
				break
			}
			nextPos++
			flush(i)
			out = append(out, '$')
			out = strconv.AppendInt(out, int64(nextPos), 10)
			flushed = i + 1
			i++
		default:
			i++
		}
	}
	if out == nil {
		return src
	}
	flush(len(src))
	return string(out)
}

// skipQuoted returns the index just past a quoted region opening at
// src[i] with the given quote byte. doubled turns on the SQL ”
// escape. ok=false means the region never closes.
func skipQuoted(src string, i int, quote byte, doubled bool) (int, bool) {
	j := i + 1
	for j < len(src) {
		if src[j] != quote {
			j++
			continue
		}
		if doubled && j+1 < len(src) && src[j+1] == quote {
			j += 2
			continue
		}
		return j + 1, true
	}
	return 0, false
}

func indexFrom(src string, from int, sub string) int {
	for j := from; j+len(sub) <= len(src); j++ {
		if src[j:j+len(sub)] == sub {
			return j
		}
	}
	return -1
}

// NumPositionalParams reports how many positional values a statement
// needs: the count of sequential `?` parameters or, with explicit $N
// placeholders, the highest index used.
func NumPositionalParams(s Statement) int {
	n := 0
	for _, p := range Params(s) {
		if p.Name != "" {
			continue
		}
		if p.Index+1 > n {
			n = p.Index + 1
		}
	}
	return n
}

// HasNamedParams reports whether the statement uses any ?name
// parameters.
func HasNamedParams(s Statement) bool {
	for _, p := range Params(s) {
		if p.Name != "" {
			return true
		}
	}
	return false
}
