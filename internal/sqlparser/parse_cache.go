package sqlparser

import (
	"fmt"
	"sync"
)

// Applications issue the same statement shapes over and over (only
// the bound arguments change), so the proxy hot path would otherwise
// re-lex and re-parse identical SQL on every request. The cache below
// memoizes parse results process-wide. Cached statements are SHARED:
// callers must treat them as immutable templates — Bind and MapExprs
// already deep-copy, which is how every evaluation path consumes them.

const (
	parseCacheShards    = 16
	parseCachePerShard  = 512
	parseCacheMaxSQLLen = 4096 // don't retain giant one-off statements

	// parseErrCachePerShard bounds the separate negative cache. Parse
	// errors MUST NOT share the statement-template budget: a stream of
	// unique malformed SQL (a buggy client, a probing attacker) would
	// otherwise evict every hot template and force the whole workload
	// back through the parser (negative-cache poisoning + thrash).
	parseErrCachePerShard = 64
)

type parseShard struct {
	mu sync.Mutex
	m  map[string]Statement
	// errs memoizes parse failures under its own small bound so
	// repeated bad statements skip re-parsing without competing with
	// hot templates for space.
	errs map[string]error
}

var parseCache [parseCacheShards]parseShard

func parseShardFor(sql string) *parseShard {
	// FNV-1a over the statement text.
	h := uint32(2166136261)
	for i := 0; i < len(sql); i++ {
		h = (h ^ uint32(sql[i])) * 16777619
	}
	return &parseCache[h%parseCacheShards]
}

func cachedParse(sql string) (Statement, error, bool) {
	if len(sql) > parseCacheMaxSQLLen {
		return nil, nil, false
	}
	sh := parseShardFor(sql)
	sh.mu.Lock()
	stmt, ok := sh.m[sql]
	if !ok {
		var err error
		if err, ok = sh.errs[sql]; ok {
			sh.mu.Unlock()
			return nil, err, true
		}
		sh.mu.Unlock()
		return nil, nil, false
	}
	sh.mu.Unlock()
	return stmt, nil, true
}

func storeParse(sql string, stmt Statement, err error) {
	if len(sql) > parseCacheMaxSQLLen {
		return
	}
	sh := parseShardFor(sql)
	sh.mu.Lock()
	if err != nil {
		// Failures go to the separate bounded negative cache so they can
		// never displace a hot statement template.
		if sh.errs == nil {
			sh.errs = make(map[string]error, parseErrCachePerShard)
		}
		if len(sh.errs) >= parseErrCachePerShard {
			for k := range sh.errs {
				delete(sh.errs, k)
				break
			}
		}
		sh.errs[sql] = err
		sh.mu.Unlock()
		return
	}
	if sh.m == nil {
		sh.m = make(map[string]Statement, parseCachePerShard)
	}
	if len(sh.m) >= parseCachePerShard {
		// Evict an arbitrary entry; the workload's statement-shape
		// population is far below the cap, so this path is cold.
		for k := range sh.m {
			delete(sh.m, k)
			break
		}
	}
	sh.m[sql] = stmt
	sh.mu.Unlock()
}

// ParseCached is Parse backed by the process-wide statement cache.
// The returned statement is shared across callers and must not be
// modified; Bind it (which copies) before evaluation.
func ParseCached(src string) (Statement, error) {
	if stmt, err, ok := cachedParse(src); ok {
		return stmt, err
	}
	stmt, err := Parse(src)
	storeParse(src, stmt, err)
	return stmt, err
}

// ParseSelectCached is ParseSelect backed by the statement cache,
// with the same sharing contract as ParseCached.
func ParseSelectCached(src string) (*SelectStmt, error) {
	stmt, err := ParseCached(src)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: expected SELECT, got %T", stmt)
	}
	return sel, nil
}

// ParseNorm is ParseCached with placeholder normalization on the miss
// path: the raw text is normalized (NormalizeParams) and BOTH texts
// cache the one statement parsed from the canonical form. The same
// logical statement arriving as "... WHERE a = ?" over the v2
// protocol, "... WHERE a = $1" over the Postgres wire, or
// "... WHERE a = :a" from a client library therefore returns the SAME
// shared *Statement, so every statement-identity cache downstream (the
// checker's front cache keys on the shared statement pointer) hits
// across ingress surfaces. The warm path is one cache probe on the raw
// text — normalization only runs on a miss.
func ParseNorm(src string) (Statement, error) {
	if stmt, err, ok := cachedParse(src); ok {
		return stmt, err
	}
	norm := NormalizeParams(src)
	if norm == src {
		stmt, err := Parse(src)
		storeParse(src, stmt, err)
		return stmt, err
	}
	stmt, err, ok := cachedParse(norm)
	if !ok {
		stmt, err = Parse(norm)
		storeParse(norm, stmt, err)
	}
	storeParse(src, stmt, err)
	return stmt, err
}

// ParseSelectNorm is ParseNorm requiring a SELECT, with the same
// sharing contract as ParseSelectCached.
func ParseSelectNorm(src string) (*SelectStmt, error) {
	stmt, err := ParseNorm(src)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: expected SELECT, got %T", stmt)
	}
	return sel, nil
}
