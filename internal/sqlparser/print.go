package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
)

// SQL renders the statement deterministically. Parsing the rendering
// yields a structurally identical AST (round-trip property, tested).
func (s *SelectStmt) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.SQL())
	}
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		for i, te := range s.From {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(te.SQL())
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.SQL())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(s.Having.SQL())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.SQL())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit != nil {
		b.WriteString(" LIMIT ")
		b.WriteString(s.Limit.SQL())
	}
	if s.Offset != nil {
		b.WriteString(" OFFSET ")
		b.WriteString(s.Offset.SQL())
	}
	for _, u := range s.Union {
		if u.All {
			b.WriteString(" UNION ALL ")
		} else {
			b.WriteString(" UNION ")
		}
		b.WriteString(u.Select.SQL())
	}
	return b.String()
}

// SQL renders the select item.
func (it SelectItem) SQL() string {
	if it.Star {
		if it.Table != "" {
			return it.Table + ".*"
		}
		return "*"
	}
	s := it.Expr.SQL()
	if it.Alias != "" {
		s += " AS " + it.Alias
	}
	return s
}

// SQL renders the table reference.
func (t *TableRef) SQL() string {
	if t.Alias != "" {
		return t.Name + " " + t.Alias
	}
	return t.Name
}

// SQL renders the join.
func (j *JoinExpr) SQL() string {
	kw := " JOIN "
	if j.Type == LeftJoin {
		kw = " LEFT JOIN "
	}
	s := j.Left.SQL() + kw + j.Right.SQL()
	if j.On != nil {
		s += " ON " + j.On.SQL()
	}
	return s
}

// SQL renders the INSERT statement.
func (s *InsertStmt) SQL() string {
	var b strings.Builder
	fmt.Fprintf(&b, "INSERT INTO %s", s.Table)
	if len(s.Columns) > 0 {
		fmt.Fprintf(&b, " (%s)", strings.Join(s.Columns, ", "))
	}
	b.WriteString(" VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("(")
		for j, e := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.SQL())
		}
		b.WriteString(")")
	}
	return b.String()
}

// SQL renders the UPDATE statement.
func (s *UpdateStmt) SQL() string {
	var b strings.Builder
	fmt.Fprintf(&b, "UPDATE %s SET ", s.Table)
	for i, a := range s.Set {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s = %s", a.Column, a.Value.SQL())
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.SQL())
	}
	return b.String()
}

// SQL renders the DELETE statement.
func (s *DeleteStmt) SQL() string {
	out := "DELETE FROM " + s.Table
	if s.Where != nil {
		out += " WHERE " + s.Where.SQL()
	}
	return out
}

// SQL renders the CREATE TABLE statement.
func (s *CreateTableStmt) SQL() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE TABLE %s (", s.Name)
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
		if c.NotNull {
			b.WriteString(" NOT NULL")
		}
	}
	if len(s.PrimaryKey) > 0 {
		fmt.Fprintf(&b, ", PRIMARY KEY (%s)", strings.Join(s.PrimaryKey, ", "))
	}
	for _, uk := range s.UniqueKeys {
		fmt.Fprintf(&b, ", UNIQUE (%s)", strings.Join(uk, ", "))
	}
	for _, fk := range s.ForeignKeys {
		fmt.Fprintf(&b, ", FOREIGN KEY (%s) REFERENCES %s (%s)",
			strings.Join(fk.Columns, ", "), fk.RefTable, strings.Join(fk.RefColumns, ", "))
	}
	b.WriteString(")")
	return b.String()
}

// --- Expression rendering ---

// opText maps binary operators to their SQL spelling.
var opText = map[BinaryOp]string{
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR",
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpLike: "LIKE",
}

// OpString returns the SQL spelling of a binary operator.
func OpString(op BinaryOp) string { return opText[op] }

// precedence for parenthesization on output.
func opPrec(op BinaryOp) int {
	switch op {
	case OpOr:
		return 1
	case OpAnd:
		return 2
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpLike:
		return 3
	case OpAdd, OpSub:
		return 4
	default:
		return 5
	}
}

func exprPrec(e Expr) int {
	switch x := e.(type) {
	case *BinaryExpr:
		return opPrec(x.Op)
	case *UnaryExpr:
		if x.Op == '!' {
			return 2 // NOT binds like AND operand
		}
		return 6
	case *BetweenExpr, *InExpr, *IsNullExpr:
		return 3
	default:
		return 7
	}
}

func renderChild(e Expr, parentPrec int) string {
	s := e.SQL()
	if exprPrec(e) < parentPrec {
		return "(" + s + ")"
	}
	return s
}

// SQL renders the literal.
func (l *Literal) SQL() string { return l.Value.String() }

// SQL renders the parameter. Explicit $N placeholders keep their
// index so printing preserves repetition and out-of-order use.
func (p *Param) SQL() string {
	if p.Name == "" && p.Explicit {
		return "$" + strconv.Itoa(p.Index+1)
	}
	return "?" + p.Name
}

// SQL renders the column reference.
func (c *ColumnRef) SQL() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// SQL renders the binary expression with minimal parentheses.
func (b *BinaryExpr) SQL() string {
	prec := opPrec(b.Op)
	left := renderChild(b.Left, prec)
	// Right child needs parens at equal precedence for non-associative
	// rendering stability (a-(b-c)).
	right := b.Right.SQL()
	if exprPrec(b.Right) <= prec && !isAssociative(b.Op) {
		right = "(" + right + ")"
	} else {
		right = renderChild(b.Right, prec)
	}
	return left + " " + opText[b.Op] + " " + right
}

func isAssociative(op BinaryOp) bool {
	switch op {
	case OpAnd, OpOr, OpAdd, OpMul:
		return true
	}
	return false
}

// SQL renders NOT / negation.
func (u *UnaryExpr) SQL() string {
	if u.Op == '!' {
		return "NOT " + renderChild(u.Expr, 3)
	}
	return "-" + renderChild(u.Expr, 6)
}

// SQL renders IS [NOT] NULL.
func (i *IsNullExpr) SQL() string {
	s := renderChild(i.Expr, 4) + " IS "
	if i.Not {
		s += "NOT "
	}
	return s + "NULL"
}

// SQL renders [NOT] IN.
func (i *InExpr) SQL() string {
	s := renderChild(i.Expr, 4)
	if i.Not {
		s += " NOT"
	}
	s += " IN ("
	if i.Subquery != nil {
		s += i.Subquery.SQL()
	} else {
		parts := make([]string, len(i.List))
		for k, e := range i.List {
			parts[k] = e.SQL()
		}
		s += strings.Join(parts, ", ")
	}
	return s + ")"
}

// SQL renders [NOT] EXISTS.
func (e *ExistsExpr) SQL() string {
	s := "EXISTS (" + e.Subquery.SQL() + ")"
	if e.Not {
		return "NOT " + s
	}
	return s
}

// SQL renders [NOT] BETWEEN.
func (b *BetweenExpr) SQL() string {
	s := renderChild(b.Expr, 4)
	if b.Not {
		s += " NOT"
	}
	return s + " BETWEEN " + renderChild(b.Lo, 4) + " AND " + renderChild(b.Hi, 4)
}

// SQL renders a function call.
func (f *FuncExpr) SQL() string {
	if f.Star {
		return f.Name + "(*)"
	}
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.SQL()
	}
	d := ""
	if f.Distinct {
		d = "DISTINCT "
	}
	return f.Name + "(" + d + strings.Join(parts, ", ") + ")"
}

// SQL renders a scalar subquery.
func (s *SubqueryExpr) SQL() string { return "(" + s.Subquery.SQL() + ")" }
