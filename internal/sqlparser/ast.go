// Package sqlparser implements a hand-written lexer and
// recursive-descent parser for the SQL subset used throughout the
// system: SELECT with joins, subqueries, grouping and ordering;
// INSERT, UPDATE, DELETE; and CREATE TABLE. Queries may contain
// positional parameters (?) and named parameters (?MyUId), the form
// Blockaid-style policies use to refer to the current principal.
package sqlparser

import (
	"repro/internal/sqlvalue"
)

// Node is any AST node; SQL returns its deterministic rendering.
type Node interface {
	SQL() string
}

// Statement is a top-level SQL statement.
type Statement interface {
	Node
	stmt()
}

// Expr is a scalar or boolean expression.
type Expr interface {
	Node
	expr()
}

// --- Statements ---

// SelectStmt is a SELECT query, possibly a UNION chain: Union holds
// the subsequent arms; OrderBy/Limit/Offset of the first arm apply to
// the combined result.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableExpr // cross product of join trees
	Where    Expr        // may be nil
	GroupBy  []Expr
	Having   Expr // may be nil
	OrderBy  []OrderItem
	Limit    Expr // may be nil
	Offset   Expr // may be nil
	Union    []UnionPart
}

// UnionPart is one additional arm of a UNION chain.
type UnionPart struct {
	All    bool // UNION ALL keeps duplicates
	Select *SelectStmt
}

func (*SelectStmt) stmt() {}

// SelectItem is one element of the select list.
type SelectItem struct {
	// Star is true for "*" (Table empty) or "t.*" (Table set).
	Star  bool
	Table string
	Expr  Expr   // nil when Star
	Alias string // optional AS alias
}

// OrderItem is one ORDER BY element.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// TableExpr is a FROM-clause item: a base table or a join.
type TableExpr interface {
	Node
	tableExpr()
}

// TableRef names a base table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

func (*TableRef) tableExpr() {}

// JoinType distinguishes join flavours.
type JoinType uint8

// Supported join types.
const (
	InnerJoin JoinType = iota
	LeftJoin
)

// JoinExpr is a binary join with an ON condition.
type JoinExpr struct {
	Type  JoinType
	Left  TableExpr
	Right TableExpr
	On    Expr // may be nil for CROSS-like joins
}

func (*JoinExpr) tableExpr() {}

// InsertStmt is INSERT INTO t (cols) VALUES (...), (...).
type InsertStmt struct {
	Table   string
	Columns []string // empty means all columns in declared order
	Rows    [][]Expr
}

func (*InsertStmt) stmt() {}

// UpdateStmt is UPDATE t SET c = e, ... WHERE ...
type UpdateStmt struct {
	Table string
	Set   []Assignment
	Where Expr // may be nil
}

func (*UpdateStmt) stmt() {}

// Assignment is one SET column = expr pair.
type Assignment struct {
	Column string
	Value  Expr
}

// DeleteStmt is DELETE FROM t WHERE ...
type DeleteStmt struct {
	Table string
	Where Expr // may be nil
}

func (*DeleteStmt) stmt() {}

// CreateTableStmt is CREATE TABLE with column and key definitions.
type CreateTableStmt struct {
	Name        string
	Columns     []ColumnDef
	PrimaryKey  []string
	UniqueKeys  [][]string
	ForeignKeys []ForeignKeyDef
}

func (*CreateTableStmt) stmt() {}

// ColumnDef is one column definition inside CREATE TABLE.
type ColumnDef struct {
	Name    string
	Type    sqlvalue.Type
	NotNull bool
	PK      bool // inline PRIMARY KEY
	Unique  bool // inline UNIQUE
}

// ForeignKeyDef is a table-level FOREIGN KEY clause.
type ForeignKeyDef struct {
	Columns    []string
	RefTable   string
	RefColumns []string
}

// --- Expressions ---

// Literal is a constant value.
type Literal struct {
	Value sqlvalue.Value
}

func (*Literal) expr() {}

// Param is a positional (?), explicit-index ($N), or named (?Name)
// parameter.
type Param struct {
	Name  string // empty for positional
	Index int    // 0-based position among positional params; -1 for named
	// Explicit marks a Postgres-style $N placeholder, whose index came
	// from the SQL text rather than left-to-right assignment. Explicit
	// indices may repeat and appear out of order.
	Explicit bool
}

func (*Param) expr() {}

// ColumnRef references a column, optionally qualified by table/alias.
type ColumnRef struct {
	Table  string // may be empty
	Column string
}

func (*ColumnRef) expr() {}

// BinaryOp is the operator of a BinaryExpr.
type BinaryOp uint8

// Binary operators.
const (
	OpEq BinaryOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpLike
)

// BinaryExpr applies Op to Left and Right.
type BinaryExpr struct {
	Op    BinaryOp
	Left  Expr
	Right Expr
}

func (*BinaryExpr) expr() {}

// UnaryExpr is NOT x or -x.
type UnaryExpr struct {
	Op   byte // '!' for NOT, '-' for negation
	Expr Expr
}

func (*UnaryExpr) expr() {}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	Expr Expr
	Not  bool
}

func (*IsNullExpr) expr() {}

// InExpr is x [NOT] IN (list) or x [NOT] IN (subquery).
type InExpr struct {
	Expr     Expr
	Not      bool
	List     []Expr      // non-nil for value list
	Subquery *SelectStmt // non-nil for subquery form
}

func (*InExpr) expr() {}

// ExistsExpr is [NOT] EXISTS (subquery).
type ExistsExpr struct {
	Not      bool
	Subquery *SelectStmt
}

func (*ExistsExpr) expr() {}

// BetweenExpr is x [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	Expr Expr
	Not  bool
	Lo   Expr
	Hi   Expr
}

func (*BetweenExpr) expr() {}

// FuncExpr is an aggregate or scalar function call. Star is true for
// COUNT(*).
type FuncExpr struct {
	Name     string // upper-cased
	Star     bool
	Distinct bool
	Args     []Expr
}

func (*FuncExpr) expr() {}

// SubqueryExpr is a scalar subquery used as an expression.
type SubqueryExpr struct {
	Subquery *SelectStmt
}

func (*SubqueryExpr) expr() {}

// AggregateFuncs lists the supported aggregates.
var AggregateFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// IsAggregate reports whether the expression tree contains an
// aggregate function call at its top level scope (not inside a
// subquery).
func IsAggregate(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) bool {
		switch f := x.(type) {
		case *FuncExpr:
			if AggregateFuncs[f.Name] {
				found = true
				return false
			}
		case *SubqueryExpr, *ExistsExpr:
			return false // don't descend into subqueries
		}
		return true
	})
	return found
}

// WalkExpr visits e and its children in preorder. The visitor returns
// false to skip a subtree.
func WalkExpr(e Expr, visit func(Expr) bool) {
	if e == nil || !visit(e) {
		return
	}
	switch x := e.(type) {
	case *BinaryExpr:
		WalkExpr(x.Left, visit)
		WalkExpr(x.Right, visit)
	case *UnaryExpr:
		WalkExpr(x.Expr, visit)
	case *IsNullExpr:
		WalkExpr(x.Expr, visit)
	case *InExpr:
		WalkExpr(x.Expr, visit)
		for _, it := range x.List {
			WalkExpr(it, visit)
		}
	case *BetweenExpr:
		WalkExpr(x.Expr, visit)
		WalkExpr(x.Lo, visit)
		WalkExpr(x.Hi, visit)
	case *FuncExpr:
		for _, a := range x.Args {
			WalkExpr(a, visit)
		}
	}
}

// Params returns the parameters appearing in the statement in
// source order (including inside subqueries).
func Params(s Statement) []*Param {
	var out []*Param
	collectExpr := func(e Expr) {
		WalkExpr(e, func(x Expr) bool {
			switch p := x.(type) {
			case *Param:
				out = append(out, p)
			case *SubqueryExpr:
				for _, q := range Params(p.Subquery) {
					out = append(out, q)
				}
				return false
			case *ExistsExpr:
				for _, q := range Params(p.Subquery) {
					out = append(out, q)
				}
				return false
			case *InExpr:
				if p.Subquery != nil {
					WalkExpr(p.Expr, func(y Expr) bool {
						if q, ok := y.(*Param); ok {
							out = append(out, q)
						}
						return true
					})
					for _, q := range Params(p.Subquery) {
						out = append(out, q)
					}
					return false
				}
			}
			return true
		})
	}
	switch st := s.(type) {
	case *SelectStmt:
		for _, it := range st.Items {
			collectExpr(it.Expr)
		}
		for _, te := range st.From {
			walkTableExpr(te, collectExpr)
		}
		collectExpr(st.Where)
		for _, g := range st.GroupBy {
			collectExpr(g)
		}
		collectExpr(st.Having)
		for _, o := range st.OrderBy {
			collectExpr(o.Expr)
		}
		collectExpr(st.Limit)
		collectExpr(st.Offset)
		for _, u := range st.Union {
			out = append(out, Params(u.Select)...)
		}
	case *InsertStmt:
		for _, row := range st.Rows {
			for _, e := range row {
				collectExpr(e)
			}
		}
	case *UpdateStmt:
		for _, a := range st.Set {
			collectExpr(a.Value)
		}
		collectExpr(st.Where)
	case *DeleteStmt:
		collectExpr(st.Where)
	}
	return out
}

func walkTableExpr(te TableExpr, collectExpr func(Expr)) {
	switch t := te.(type) {
	case *JoinExpr:
		walkTableExpr(t.Left, collectExpr)
		walkTableExpr(t.Right, collectExpr)
		collectExpr(t.On)
	}
}

// BaseTables returns the base table references appearing in the FROM
// clause (not in subqueries), left to right.
func BaseTables(from []TableExpr) []*TableRef {
	var out []*TableRef
	var rec func(te TableExpr)
	rec = func(te TableExpr) {
		switch t := te.(type) {
		case *TableRef:
			out = append(out, t)
		case *JoinExpr:
			rec(t.Left)
			rec(t.Right)
		}
	}
	for _, te := range from {
		rec(te)
	}
	return out
}
