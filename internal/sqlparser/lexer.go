package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokParam  // ? or ?Name
	tokSymbol // punctuation and operators
)

// token is one lexed token.
type token struct {
	kind tokenKind
	text string // keyword text upper-cased; param text excludes '?'
	pos  int    // byte offset in input
}

// keywords recognized by the lexer. Identifiers matching these
// (case-insensitively) become tokKeyword with upper-cased text.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "AS": true, "JOIN": true, "INNER": true, "LEFT": true,
	"OUTER": true, "ON": true, "GROUP": true, "BY": true, "HAVING": true,
	"ORDER": true, "ASC": true, "DESC": true, "LIMIT": true, "OFFSET": true,
	"DISTINCT": true, "INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true, "CREATE": true,
	"TABLE": true, "PRIMARY": true, "KEY": true, "UNIQUE": true,
	"FOREIGN": true, "REFERENCES": true, "NULL": true, "TRUE": true,
	"FALSE": true, "IS": true, "IN": true, "LIKE": true, "BETWEEN": true,
	"EXISTS": true, "UNION": true, "ALL": true, "CROSS": true,
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return fmt.Errorf("sql:%d: %s", pos, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	// Skip whitespace and comments.
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return token{}, l.errf(l.pos, "unterminated block comment")
			}
			l.pos += 2 + end + 2
		default:
			goto scan
		}
	}
scan:
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]

	switch {
	case c == '\'': // string literal with '' escaping
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errf(start, "unterminated string literal")
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			b.WriteByte(ch)
			l.pos++
		}
		return token{kind: tokString, text: b.String(), pos: start}, nil

	case c == '?': // parameter
		l.pos++
		n := l.pos
		for n < len(l.src) && (isIdentChar(l.src[n]) || l.src[n] == '_') {
			n++
		}
		name := l.src[l.pos:n]
		l.pos = n
		return token{kind: tokParam, text: name, pos: start}, nil

	case c == '$': // $N placeholder or $tag$...$tag$ dollar-quoted string
		if l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			n := l.pos + 1
			for n < len(l.src) && l.src[n] >= '0' && l.src[n] <= '9' {
				n++
			}
			// Keep the '$' prefix so the parser can tell an explicit
			// Postgres-style index from a ?name named parameter.
			text := l.src[l.pos:n]
			l.pos = n
			return token{kind: tokParam, text: text, pos: start}, nil
		}
		// Dollar quoting: $$body$$ or $tag$body$tag$. The tag is
		// identifier-like (it cannot start with a digit — that case is
		// the placeholder above).
		n := l.pos + 1
		for n < len(l.src) && isIdentChar(l.src[n]) {
			n++
		}
		if n < len(l.src) && l.src[n] == '$' {
			delim := l.src[l.pos : n+1]
			bodyStart := n + 1
			end := strings.Index(l.src[bodyStart:], delim)
			if end < 0 {
				return token{}, l.errf(start, "unterminated dollar-quoted string")
			}
			l.pos = bodyStart + end + len(delim)
			return token{kind: tokString, text: l.src[bodyStart : bodyStart+end], pos: start}, nil
		}
		return token{}, l.errf(start, "unexpected character %q", c)

	case c >= '0' && c <= '9':
		n := l.pos
		isFloat := false
		for n < len(l.src) && (l.src[n] >= '0' && l.src[n] <= '9') {
			n++
		}
		if n < len(l.src) && l.src[n] == '.' && n+1 < len(l.src) && l.src[n+1] >= '0' && l.src[n+1] <= '9' {
			isFloat = true
			n++
			for n < len(l.src) && (l.src[n] >= '0' && l.src[n] <= '9') {
				n++
			}
		}
		text := l.src[l.pos:n]
		l.pos = n
		if isFloat {
			return token{kind: tokFloat, text: text, pos: start}, nil
		}
		return token{kind: tokInt, text: text, pos: start}, nil

	case isIdentStart(c):
		n := l.pos
		for n < len(l.src) && isIdentChar(l.src[n]) {
			n++
		}
		text := l.src[l.pos:n]
		l.pos = n
		up := strings.ToUpper(text)
		if keywords[up] {
			return token{kind: tokKeyword, text: up, pos: start}, nil
		}
		return token{kind: tokIdent, text: text, pos: start}, nil

	case c == '"' || c == '`': // quoted identifier
		quote := c
		l.pos++
		n := l.pos
		for n < len(l.src) && l.src[n] != quote {
			n++
		}
		if n >= len(l.src) {
			return token{}, l.errf(start, "unterminated quoted identifier")
		}
		text := l.src[l.pos:n]
		// The printer renders identifiers bare, so a quoted identifier
		// only survives a print∘parse round trip if it is a valid bare
		// identifier and not a keyword. The SQL subset has no use for
		// exotic names (schemas declare plain ones); reject the rest.
		if !isBareIdent(text) {
			return token{}, l.errf(start, "quoted identifier %q is not a plain identifier", text)
		}
		l.pos = n + 1
		return token{kind: tokIdent, text: text, pos: start}, nil

	default:
		// Multi-char operators first.
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "<=", ">=", "<>", "!=", "::":
			l.pos += 2
			return token{kind: tokSymbol, text: two, pos: start}, nil
		}
		switch c {
		case '=', '<', '>', '(', ')', ',', '*', '+', '-', '/', '%', '.', ';':
			l.pos++
			return token{kind: tokSymbol, text: string(c), pos: start}, nil
		}
		return token{}, l.errf(start, "unexpected character %q", c)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= 0x80
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

// isBareIdent reports whether s lexes back as a single tokIdent when
// printed without quotes.
func isBareIdent(s string) bool {
	if s == "" || !isIdentStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isIdentChar(s[i]) {
			return false
		}
	}
	return !keywords[strings.ToUpper(s)]
}

// lexAll tokenizes the whole input (used by the parser, which wants
// lookahead).
func lexAll(src string) ([]token, error) {
	l := &lexer{src: src}
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}

// identLike reports whether t can serve as an identifier. Some
// keywords (like KEY) commonly appear as column names; we allow a
// small safe set.
func identLike(t token) bool {
	if t.kind == tokIdent {
		return true
	}
	if t.kind == tokKeyword {
		switch t.text {
		case "KEY", "ALL", "SET":
			return true
		}
	}
	return false
}

// sanitizeIdent validates an identifier for printing without quotes.
func sanitizeIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if i == 0 && !unicode.IsLetter(r) && r != '_' {
			return false
		}
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
			return false
		}
	}
	return !keywords[strings.ToUpper(s)]
}
