package sqlparser

import (
	"fmt"

	"repro/internal/sqlvalue"
)

// Args carries the values for a statement's parameters: positional
// values in order, plus named values (without the leading '?').
type Args struct {
	Positional []sqlvalue.Value
	Named      map[string]sqlvalue.Value
}

// NoArgs is an empty argument set.
var NoArgs = Args{}

// PositionalArgs builds Args from Go values.
func PositionalArgs(vals ...any) Args {
	out := Args{Positional: make([]sqlvalue.Value, len(vals))}
	for i, v := range vals {
		out.Positional[i] = sqlvalue.MustFromAny(v)
	}
	return out
}

// NamedArgs builds named Args from a map of Go values.
func NamedArgs(m map[string]any) Args {
	out := Args{Named: make(map[string]sqlvalue.Value, len(m))}
	for k, v := range m {
		out.Named[k] = sqlvalue.MustFromAny(v)
	}
	return out
}

// With returns a copy of a with one more named value set.
func (a Args) With(name string, v any) Args {
	named := make(map[string]sqlvalue.Value, len(a.Named)+1)
	for k, val := range a.Named {
		named[k] = val
	}
	named[name] = sqlvalue.MustFromAny(v)
	return Args{Positional: a.Positional, Named: named}
}

// Bind returns a copy of the statement with every parameter replaced
// by its literal value from args. It fails if a parameter has no value.
func Bind(s Statement, args Args) (Statement, error) {
	var err error
	out := mapStatement(s, func(e Expr) Expr {
		p, ok := e.(*Param)
		if !ok || err != nil {
			return e
		}
		var v sqlvalue.Value
		if p.Name != "" {
			val, found := args.Named[p.Name]
			if !found {
				err = fmt.Errorf("sql: no value for named parameter ?%s", p.Name)
				return e
			}
			v = val
		} else {
			if p.Index < 0 || p.Index >= len(args.Positional) {
				err = fmt.Errorf("sql: no value for positional parameter #%d", p.Index+1)
				return e
			}
			v = args.Positional[p.Index]
		}
		return &Literal{Value: v}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CloneStatement deep-copies a statement.
func CloneStatement(s Statement) Statement {
	return mapStatement(s, func(e Expr) Expr { return e })
}

// CloneSelect deep-copies a SELECT statement.
func CloneSelect(s *SelectStmt) *SelectStmt {
	return mapStatement(s, func(e Expr) Expr { return e }).(*SelectStmt)
}

// MapExprs rewrites every expression leaf-to-root in the statement
// using f; f receives each node after its children were rebuilt and
// may return a replacement. The input is not modified.
func MapExprs(s Statement, f func(Expr) Expr) Statement {
	return mapStatement(s, f)
}

func mapStatement(s Statement, f func(Expr) Expr) Statement {
	switch st := s.(type) {
	case *SelectStmt:
		return mapSelect(st, f)
	case *InsertStmt:
		out := &InsertStmt{Table: st.Table, Columns: append([]string(nil), st.Columns...)}
		for _, row := range st.Rows {
			nr := make([]Expr, len(row))
			for i, e := range row {
				nr[i] = mapExpr(e, f)
			}
			out.Rows = append(out.Rows, nr)
		}
		return out
	case *UpdateStmt:
		out := &UpdateStmt{Table: st.Table}
		for _, a := range st.Set {
			out.Set = append(out.Set, Assignment{Column: a.Column, Value: mapExpr(a.Value, f)})
		}
		if st.Where != nil {
			out.Where = mapExpr(st.Where, f)
		}
		return out
	case *DeleteStmt:
		out := &DeleteStmt{Table: st.Table}
		if st.Where != nil {
			out.Where = mapExpr(st.Where, f)
		}
		return out
	case *CreateTableStmt:
		cp := *st
		return &cp
	}
	return s
}

func mapSelect(st *SelectStmt, f func(Expr) Expr) *SelectStmt {
	out := &SelectStmt{Distinct: st.Distinct}
	for _, it := range st.Items {
		ni := SelectItem{Star: it.Star, Table: it.Table, Alias: it.Alias}
		if it.Expr != nil {
			ni.Expr = mapExpr(it.Expr, f)
		}
		out.Items = append(out.Items, ni)
	}
	for _, te := range st.From {
		out.From = append(out.From, mapTableExpr(te, f))
	}
	if st.Where != nil {
		out.Where = mapExpr(st.Where, f)
	}
	for _, g := range st.GroupBy {
		out.GroupBy = append(out.GroupBy, mapExpr(g, f))
	}
	if st.Having != nil {
		out.Having = mapExpr(st.Having, f)
	}
	for _, o := range st.OrderBy {
		out.OrderBy = append(out.OrderBy, OrderItem{Expr: mapExpr(o.Expr, f), Desc: o.Desc})
	}
	if st.Limit != nil {
		out.Limit = mapExpr(st.Limit, f)
	}
	if st.Offset != nil {
		out.Offset = mapExpr(st.Offset, f)
	}
	for _, u := range st.Union {
		out.Union = append(out.Union, UnionPart{All: u.All, Select: mapSelect(u.Select, f)})
	}
	return out
}

func mapTableExpr(te TableExpr, f func(Expr) Expr) TableExpr {
	switch t := te.(type) {
	case *TableRef:
		cp := *t
		return &cp
	case *JoinExpr:
		out := &JoinExpr{Type: t.Type, Left: mapTableExpr(t.Left, f), Right: mapTableExpr(t.Right, f)}
		if t.On != nil {
			out.On = mapExpr(t.On, f)
		}
		return out
	}
	return te
}

func mapExpr(e Expr, f func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *Literal:
		cp := *x
		return f(&cp)
	case *Param:
		cp := *x
		return f(&cp)
	case *ColumnRef:
		cp := *x
		return f(&cp)
	case *BinaryExpr:
		return f(&BinaryExpr{Op: x.Op, Left: mapExpr(x.Left, f), Right: mapExpr(x.Right, f)})
	case *UnaryExpr:
		return f(&UnaryExpr{Op: x.Op, Expr: mapExpr(x.Expr, f)})
	case *IsNullExpr:
		return f(&IsNullExpr{Expr: mapExpr(x.Expr, f), Not: x.Not})
	case *InExpr:
		out := &InExpr{Expr: mapExpr(x.Expr, f), Not: x.Not}
		for _, it := range x.List {
			out.List = append(out.List, mapExpr(it, f))
		}
		if x.Subquery != nil {
			out.Subquery = mapSelect(x.Subquery, f)
		}
		return f(out)
	case *ExistsExpr:
		return f(&ExistsExpr{Not: x.Not, Subquery: mapSelect(x.Subquery, f)})
	case *BetweenExpr:
		return f(&BetweenExpr{Expr: mapExpr(x.Expr, f), Not: x.Not, Lo: mapExpr(x.Lo, f), Hi: mapExpr(x.Hi, f)})
	case *FuncExpr:
		out := &FuncExpr{Name: x.Name, Star: x.Star, Distinct: x.Distinct}
		for _, a := range x.Args {
			out.Args = append(out.Args, mapExpr(a, f))
		}
		return f(out)
	case *SubqueryExpr:
		return f(&SubqueryExpr{Subquery: mapSelect(x.Subquery, f)})
	}
	return f(e)
}
