package sqlparser

import (
	"testing"

	"repro/internal/sqlvalue"
)

func TestNormalizeParams(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		// Bare ? becomes sequential $N.
		{"SELECT a FROM t WHERE b = ?", "SELECT a FROM t WHERE b = $1"},
		{"SELECT a FROM t WHERE b = ? AND c = ?", "SELECT a FROM t WHERE b = $1 AND c = $2"},
		// :name becomes the native ?name form.
		{"SELECT a FROM t WHERE b = :uid", "SELECT a FROM t WHERE b = ?uid"},
		// Already canonical: returned unchanged.
		{"SELECT a FROM t WHERE b = $1", "SELECT a FROM t WHERE b = $1"},
		{"SELECT a FROM t WHERE b = ?uid", "SELECT a FROM t WHERE b = ?uid"},
		{"SELECT a FROM t", "SELECT a FROM t"},
		// $N does not advance the bare-? counter (parser numbers them
		// independently).
		{"SELECT a FROM t WHERE b = $2 AND c = ?", "SELECT a FROM t WHERE b = $2 AND c = $1"},
		// Placeholder bytes inside strings, identifiers and comments are
		// data, not placeholders.
		{"SELECT '?' FROM t WHERE a = ?", "SELECT '?' FROM t WHERE a = $1"},
		{"SELECT 'it''s ?' FROM t WHERE a = ?", "SELECT 'it''s ?' FROM t WHERE a = $1"},
		{`SELECT "?" FROM t WHERE a = ?`, `SELECT "?" FROM t WHERE a = $1`},
		{"SELECT a FROM t -- ? :x $1\nWHERE b = ?", "SELECT a FROM t -- ? :x $1\nWHERE b = $1"},
		{"SELECT a /* ? :x */ FROM t WHERE b = ?", "SELECT a /* ? :x */ FROM t WHERE b = $1"},
		{"SELECT $tag$? :x$tag$ FROM t WHERE a = ?", "SELECT $tag$? :x$tag$ FROM t WHERE a = $1"},
		{"SELECT $$? :x$$ FROM t WHERE a = ?", "SELECT $$? :x$$ FROM t WHERE a = $1"},
		// :: is the cast operator; the type name after it is not :name.
		{"SELECT a::text FROM t WHERE b = ?", "SELECT a::text FROM t WHERE b = $1"},
		// Unterminated constructs bail out unchanged; the parser reports
		// the real error.
		{"SELECT 'unterminated", "SELECT 'unterminated"},
		{"SELECT /* unterminated", "SELECT /* unterminated"},
		{"SELECT $tag$ unterminated", "SELECT $tag$ unterminated"},
	}
	for _, c := range cases {
		if got := NormalizeParams(c.in); got != c.want {
			t.Errorf("NormalizeParams(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestNormalizeParamsNoAlloc pins that already-canonical statements
// come back as the identical string (no copy).
func TestNormalizeParamsNoAlloc(t *testing.T) {
	src := "SELECT a FROM t WHERE b = $1 AND c = ?uid"
	if got := NormalizeParams(src); got != src {
		t.Fatalf("canonical input rewritten: %q", got)
	}
	allocs := testing.AllocsPerRun(100, func() {
		_ = NormalizeParams(src)
	})
	if allocs != 0 {
		t.Fatalf("NormalizeParams allocates %v per canonical call, want 0", allocs)
	}
}

// TestNormalizeMatchesParser asserts the load-bearing property: for a
// statement mixing styles, parsing the normalized text yields the same
// parameter indices the parser assigns to the raw text. The decision
// caches key on the shared parsed statement, so a disagreement here
// would silently bind arguments to the wrong positions.
func TestNormalizeMatchesParser(t *testing.T) {
	srcs := []string{
		"SELECT a FROM t WHERE b = ? AND c = ?",
		"SELECT a FROM t WHERE b = $2 AND c = ?",
		"SELECT a FROM t WHERE b = $1 AND c = $1",
		"SELECT a FROM t WHERE b = ?uid AND c = ?",
	}
	for _, src := range srcs {
		raw, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		norm, err := Parse(NormalizeParams(src))
		if err != nil {
			t.Fatalf("Parse(NormalizeParams(%q)=%q): %v", src, NormalizeParams(src), err)
		}
		rp, np := Params(raw), Params(norm)
		if len(rp) != len(np) {
			t.Fatalf("%q: param count raw %d vs normalized %d", src, len(rp), len(np))
		}
		for i := range rp {
			if rp[i].Name != np[i].Name || rp[i].Index != np[i].Index {
				t.Errorf("%q param %d: raw {%q %d} vs normalized {%q %d}",
					src, i, rp[i].Name, rp[i].Index, np[i].Name, np[i].Index)
			}
		}
	}
}

func TestParseDollarPlaceholders(t *testing.T) {
	stmt, err := Parse("SELECT a FROM t WHERE b = $2 AND c = $1 AND d = $2")
	if err != nil {
		t.Fatal(err)
	}
	ps := Params(stmt)
	if len(ps) != 3 {
		t.Fatalf("got %d params, want 3", len(ps))
	}
	wantIdx := []int{1, 0, 1}
	for i, p := range ps {
		if p.Index != wantIdx[i] || !p.Explicit || p.Name != "" {
			t.Errorf("param %d = {Name:%q Index:%d Explicit:%v}, want index %d explicit",
				i, p.Name, p.Index, p.Explicit, wantIdx[i])
		}
	}
	// Printing preserves the explicit indices.
	if got := stmt.SQL(); got != "SELECT a FROM t WHERE b = $2 AND c = $1 AND d = $2" {
		t.Errorf("SQL() = %q", got)
	}
	// Binding maps by index, so $2/$1/$2 reuse the two values.
	bound, err := Bind(stmt, Args{Positional: []sqlvalue.Value{
		sqlvalue.NewInt(10), sqlvalue.NewInt(20),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := bound.SQL(); got != "SELECT a FROM t WHERE b = 20 AND c = 10 AND d = 20" {
		t.Errorf("bound SQL = %q", got)
	}
}

func TestParseDollarErrors(t *testing.T) {
	if _, err := Parse("SELECT a FROM t WHERE b = $0"); err == nil {
		t.Error("accepted $0")
	}
	if _, err := Parse("SELECT $tag$never closed"); err == nil {
		t.Error("accepted unterminated dollar-quoted string")
	}
}

func TestParseDollarQuotedString(t *testing.T) {
	stmt, err := Parse("SELECT $tag$it's got 'quotes' and $1$tag$ FROM t")
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*SelectStmt)
	lit, ok := sel.Items[0].Expr.(*Literal)
	if !ok {
		t.Fatalf("item is %T, want *Literal", sel.Items[0].Expr)
	}
	if got := lit.Value.Text(); got != "it's got 'quotes' and $1" {
		t.Errorf("literal = %q", got)
	}
	// Anonymous $$...$$ form.
	stmt, err = Parse("SELECT $$plain$$ FROM t")
	if err != nil {
		t.Fatal(err)
	}
	lit = stmt.(*SelectStmt).Items[0].Expr.(*Literal)
	if got := lit.Value.Text(); got != "plain" {
		t.Errorf("literal = %q", got)
	}
}

func TestParseCasts(t *testing.T) {
	// Casts parse and are discarded: the engine is dynamically typed and
	// the checker reasons over untyped constraint queries.
	for _, src := range []string{
		"SELECT a::text FROM t",
		"SELECT a FROM t WHERE b = $1::int8",
		"SELECT b::numeric(10, 2) FROM t",
		"SELECT (a + 1)::int FROM t WHERE c = ?::text",
	} {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
	stmt, err := Parse("SELECT a::text FROM t WHERE b = $1::int8")
	if err != nil {
		t.Fatal(err)
	}
	if got := stmt.SQL(); got != "SELECT a FROM t WHERE b = $1" {
		t.Errorf("cast not discarded: %q", got)
	}
	if _, err := Parse("SELECT a:: FROM t"); err == nil {
		t.Error("accepted cast with no type name")
	}
}

// TestParseNormSharesStatement pins the cross-surface cache-keying
// contract: the same logical statement in different placeholder styles
// resolves to the SAME shared Statement pointer, which is what keys
// the checker's statement-identity front cache.
func TestParseNormSharesStatement(t *testing.T) {
	variants := []string{
		"SELECT EId FROM Attendance WHERE UId = ? AND EId = ?",
		"SELECT EId FROM Attendance WHERE UId = $1 AND EId = $2",
		"SELECT EId FROM Attendance WHERE UId = :p1 AND EId = :p2",
	}
	a, err := ParseNorm(variants[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseNorm(variants[1])
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("? and $N variants parsed to distinct statements: %p vs %p", a, b)
	}
	// The :name variant normalizes to ?name — different canonical text
	// (named vs positional), so it must NOT alias to the positional one.
	c, err := ParseNorm(variants[2])
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error(":name variant aliased to positional statement")
	}
	// Second lookup of each raw text hits the alias entry directly.
	a2, err := ParseNorm(variants[0])
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a {
		t.Error("repeat ParseNorm returned a different pointer")
	}
	sel, err := ParseSelectNorm(variants[1])
	if err != nil {
		t.Fatal(err)
	}
	if Statement(sel) != a {
		t.Error("ParseSelectNorm did not share the cached statement")
	}
}

func TestNumPositionalParams(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		{"SELECT a FROM t WHERE b = ? AND c = ?", 2},
		{"SELECT a FROM t WHERE b = $2", 2},
		{"SELECT a FROM t WHERE b = $1 AND c = $1", 1},
		{"SELECT a FROM t WHERE b = ?uid", 0},
		{"SELECT a FROM t", 0},
	}
	for _, c := range cases {
		stmt, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		if got := NumPositionalParams(stmt); got != c.want {
			t.Errorf("NumPositionalParams(%q) = %d, want %d", c.src, got, c.want)
		}
		wantNamed := c.src == "SELECT a FROM t WHERE b = ?uid"
		if got := HasNamedParams(stmt); got != wantNamed {
			t.Errorf("HasNamedParams(%q) = %v, want %v", c.src, got, wantNamed)
		}
	}
}
