package sqlparser

import (
	"strings"
	"testing"

	"repro/internal/sqlvalue"
)

func TestParseSimpleSelect(t *testing.T) {
	sel := MustParseSelect("SELECT EId FROM Attendance WHERE UId = ?MyUId")
	if len(sel.Items) != 1 || sel.Items[0].Star {
		t.Fatalf("items: %+v", sel.Items)
	}
	cr, ok := sel.Items[0].Expr.(*ColumnRef)
	if !ok || cr.Column != "EId" {
		t.Fatalf("item expr: %#v", sel.Items[0].Expr)
	}
	tr, ok := sel.From[0].(*TableRef)
	if !ok || tr.Name != "Attendance" {
		t.Fatalf("from: %#v", sel.From[0])
	}
	be, ok := sel.Where.(*BinaryExpr)
	if !ok || be.Op != OpEq {
		t.Fatalf("where: %#v", sel.Where)
	}
	p, ok := be.Right.(*Param)
	if !ok || p.Name != "MyUId" {
		t.Fatalf("param: %#v", be.Right)
	}
}

func TestParseJoin(t *testing.T) {
	sel := MustParseSelect(
		"SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?MyUId")
	j, ok := sel.From[0].(*JoinExpr)
	if !ok || j.Type != InnerJoin {
		t.Fatalf("from: %#v", sel.From[0])
	}
	l := j.Left.(*TableRef)
	r := j.Right.(*TableRef)
	if l.Name != "Events" || l.Alias != "e" || r.Name != "Attendance" || r.Alias != "a" {
		t.Fatalf("join refs: %+v %+v", l, r)
	}
	on := j.On.(*BinaryExpr)
	if on.Left.(*ColumnRef).Table != "e" || on.Right.(*ColumnRef).Table != "a" {
		t.Fatalf("on: %#v", j.On)
	}
}

func TestParseLeftJoin(t *testing.T) {
	sel := MustParseSelect("SELECT a.x FROM A a LEFT OUTER JOIN B b ON a.id = b.id")
	j := sel.From[0].(*JoinExpr)
	if j.Type != LeftJoin {
		t.Fatalf("want LEFT JOIN, got %v", j.Type)
	}
}

func TestParsePositionalParams(t *testing.T) {
	sel := MustParseSelect("SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?")
	ps := Params(sel)
	if len(ps) != 2 || ps[0].Index != 0 || ps[1].Index != 1 {
		t.Fatalf("params: %+v", ps)
	}
}

func TestParseOperatorPrecedence(t *testing.T) {
	sel := MustParseSelect("SELECT x FROM T WHERE a = 1 OR b = 2 AND c = 3")
	or, ok := sel.Where.(*BinaryExpr)
	if !ok || or.Op != OpOr {
		t.Fatalf("top must be OR: %#v", sel.Where)
	}
	and, ok := or.Right.(*BinaryExpr)
	if !ok || and.Op != OpAnd {
		t.Fatalf("right must be AND: %#v", or.Right)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	sel := MustParseSelect("SELECT a + b * 2 FROM T")
	add := sel.Items[0].Expr.(*BinaryExpr)
	if add.Op != OpAdd {
		t.Fatalf("top op: %v", add.Op)
	}
	if add.Right.(*BinaryExpr).Op != OpMul {
		t.Fatal("b*2 should bind tighter")
	}
}

func TestParseInList(t *testing.T) {
	sel := MustParseSelect("SELECT x FROM T WHERE a IN (1, 2, 3) AND b NOT IN (4)")
	and := sel.Where.(*BinaryExpr)
	in := and.Left.(*InExpr)
	if in.Not || len(in.List) != 3 {
		t.Fatalf("in: %+v", in)
	}
	nin := and.Right.(*InExpr)
	if !nin.Not || len(nin.List) != 1 {
		t.Fatalf("not in: %+v", nin)
	}
}

func TestParseInSubquery(t *testing.T) {
	sel := MustParseSelect("SELECT x FROM T WHERE a IN (SELECT id FROM U WHERE z = ?)")
	in := sel.Where.(*InExpr)
	if in.Subquery == nil {
		t.Fatal("expected subquery")
	}
	if len(Params(sel)) != 1 {
		t.Fatal("param inside subquery not collected")
	}
}

func TestParseExists(t *testing.T) {
	sel := MustParseSelect("SELECT x FROM T WHERE EXISTS (SELECT 1 FROM U WHERE U.id = T.id)")
	ex, ok := sel.Where.(*ExistsExpr)
	if !ok || ex.Not {
		t.Fatalf("where: %#v", sel.Where)
	}
	sel2 := MustParseSelect("SELECT x FROM T WHERE NOT EXISTS (SELECT 1 FROM U)")
	un, ok := sel2.Where.(*UnaryExpr)
	if !ok || un.Op != '!' {
		t.Fatalf("NOT EXISTS parses as NOT(EXISTS): %#v", sel2.Where)
	}
}

func TestParseBetweenIsNullLike(t *testing.T) {
	sel := MustParseSelect(
		"SELECT x FROM T WHERE a BETWEEN 1 AND 10 AND b IS NOT NULL AND c LIKE 'x%'")
	and1 := sel.Where.(*BinaryExpr)
	and2 := and1.Left.(*BinaryExpr)
	if _, ok := and2.Left.(*BetweenExpr); !ok {
		t.Fatalf("between: %#v", and2.Left)
	}
	isn := and2.Right.(*IsNullExpr)
	if !isn.Not {
		t.Fatal("IS NOT NULL flag")
	}
	like := and1.Right.(*BinaryExpr)
	if like.Op != OpLike {
		t.Fatalf("like: %#v", and1.Right)
	}
}

func TestParseAggregatesGroupHaving(t *testing.T) {
	sel := MustParseSelect(
		"SELECT d, COUNT(*) AS n, AVG(sal) FROM Emp GROUP BY d HAVING COUNT(*) > 2 ORDER BY n DESC LIMIT 5 OFFSET 1")
	if len(sel.GroupBy) != 1 || sel.Having == nil || len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Fatalf("clauses: %+v", sel)
	}
	cnt := sel.Items[1].Expr.(*FuncExpr)
	if cnt.Name != "COUNT" || !cnt.Star || sel.Items[1].Alias != "n" {
		t.Fatalf("count: %+v", cnt)
	}
	if !IsAggregate(sel.Items[2].Expr) {
		t.Fatal("AVG should be an aggregate")
	}
	if IsAggregate(sel.Items[0].Expr) {
		t.Fatal("plain column is not an aggregate")
	}
}

func TestParseDistinct(t *testing.T) {
	sel := MustParseSelect("SELECT DISTINCT a FROM T")
	if !sel.Distinct {
		t.Fatal("distinct flag")
	}
	sel2 := MustParseSelect("SELECT COUNT(DISTINCT a) FROM T")
	if !sel2.Items[0].Expr.(*FuncExpr).Distinct {
		t.Fatal("count distinct flag")
	}
}

func TestParseStarForms(t *testing.T) {
	sel := MustParseSelect("SELECT *, t.* FROM T t")
	if !sel.Items[0].Star || sel.Items[0].Table != "" {
		t.Fatalf("bare star: %+v", sel.Items[0])
	}
	if !sel.Items[1].Star || sel.Items[1].Table != "t" {
		t.Fatalf("qualified star: %+v", sel.Items[1])
	}
}

func TestParseInsert(t *testing.T) {
	s := MustParse("INSERT INTO T (a, b) VALUES (1, 'x'), (2, 'y')")
	ins := s.(*InsertStmt)
	if ins.Table != "T" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("insert: %+v", ins)
	}
	lit := ins.Rows[1][1].(*Literal)
	if lit.Value.Text() != "y" {
		t.Fatalf("row value: %v", lit.Value)
	}
}

func TestParseUpdateDelete(t *testing.T) {
	u := MustParse("UPDATE T SET a = a + 1, b = 'z' WHERE id = ?").(*UpdateStmt)
	if len(u.Set) != 2 || u.Where == nil {
		t.Fatalf("update: %+v", u)
	}
	d := MustParse("DELETE FROM T WHERE id = 3").(*DeleteStmt)
	if d.Table != "T" || d.Where == nil {
		t.Fatalf("delete: %+v", d)
	}
}

func TestParseCreateTable(t *testing.T) {
	s := MustParse(`CREATE TABLE Events (
		EId INTEGER PRIMARY KEY,
		Title TEXT NOT NULL,
		Notes TEXT,
		OwnerId INTEGER NOT NULL,
		UNIQUE (Title),
		FOREIGN KEY (OwnerId) REFERENCES Users (UId)
	)`)
	ct := s.(*CreateTableStmt)
	if ct.Name != "Events" || len(ct.Columns) != 4 {
		t.Fatalf("create: %+v", ct)
	}
	if len(ct.PrimaryKey) != 1 || ct.PrimaryKey[0] != "EId" {
		t.Fatalf("pk: %v", ct.PrimaryKey)
	}
	if len(ct.UniqueKeys) != 1 || len(ct.ForeignKeys) != 1 {
		t.Fatalf("keys: %+v", ct)
	}
	if ct.Columns[0].Type != sqlvalue.Int || !ct.Columns[0].NotNull {
		t.Fatalf("pk column: %+v", ct.Columns[0])
	}
}

func TestParseComments(t *testing.T) {
	sel := MustParseSelect("SELECT a -- trailing\nFROM T /* block */ WHERE a = 1")
	if sel.Where == nil {
		t.Fatal("comments should be skipped")
	}
}

func TestParseStringEscapes(t *testing.T) {
	sel := MustParseSelect("SELECT 'it''s' FROM T")
	lit := sel.Items[0].Expr.(*Literal)
	if lit.Value.Text() != "it's" {
		t.Fatalf("escaped string: %q", lit.Value.Text())
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	sel := MustParseSelect("SELECT -3, -2.5 FROM T")
	if sel.Items[0].Expr.(*Literal).Value.Int() != -3 {
		t.Fatal("negative int literal")
	}
	if sel.Items[1].Expr.(*Literal).Value.Real() != -2.5 {
		t.Fatal("negative float literal")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM T",
		"SELECT a FROM",
		"SELECT a FROM T WHERE",
		"SELECT a FROM T WHERE a =",
		"INSERT INTO T VALUES",
		"UPDATE T",
		"DELETE T",
		"SELECT 'unterminated FROM T",
		"SELECT a FROM T extra stuff ~",
		"CREATE TABLE T (a BLOB9)",
		"SELECT a FROM T;;",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	srcs := []string{
		"SELECT EId FROM Attendance WHERE UId = ?MyUId",
		"SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?MyUId",
		"SELECT DISTINCT d, COUNT(*) AS n FROM Emp GROUP BY d HAVING COUNT(*) > 2 ORDER BY n DESC LIMIT 5",
		"SELECT x FROM T WHERE a IN (1, 2) OR b NOT IN (SELECT id FROM U)",
		"SELECT x FROM T WHERE NOT (a = 1 AND b = 2)",
		"SELECT x FROM T WHERE a BETWEEN 1 AND 10 AND b IS NOT NULL",
		"SELECT a - (b - c) FROM T",
		"INSERT INTO T (a, b) VALUES (1, 'x''y')",
		"UPDATE T SET a = a + 1 WHERE id = ?",
		"DELETE FROM T WHERE id = 3",
		"SELECT x FROM A LEFT JOIN B ON A.id = B.id",
		"SELECT x FROM T WHERE EXISTS (SELECT 1 FROM U WHERE U.id = T.id)",
	}
	for _, src := range srcs {
		s1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		out1 := s1.SQL()
		s2, err := Parse(out1)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", out1, err)
		}
		out2 := s2.SQL()
		if out1 != out2 {
			t.Errorf("round trip unstable:\n  src: %s\n  1st: %s\n  2nd: %s", src, out1, out2)
		}
	}
}

func TestBind(t *testing.T) {
	s := MustParse("SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?")
	b, err := Bind(s, PositionalArgs(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got := b.SQL(); got != "SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2" {
		t.Errorf("bound SQL: %s", got)
	}
	// Original unchanged.
	if strings.Contains(s.SQL(), "1 AND EId = 2") {
		t.Error("Bind mutated its input")
	}

	s2 := MustParse("SELECT EId FROM Attendance WHERE UId = ?MyUId")
	b2, err := Bind(s2, NamedArgs(map[string]any{"MyUId": 7}))
	if err != nil {
		t.Fatal(err)
	}
	if got := b2.SQL(); got != "SELECT EId FROM Attendance WHERE UId = 7" {
		t.Errorf("named bound SQL: %s", got)
	}
}

func TestBindMissing(t *testing.T) {
	s := MustParse("SELECT 1 FROM T WHERE a = ? AND b = ?Name")
	if _, err := Bind(s, PositionalArgs(1)); err == nil {
		t.Error("missing named param should fail")
	}
	if _, err := Bind(s, NamedArgs(map[string]any{"Name": 2})); err == nil {
		t.Error("missing positional param should fail")
	}
}

func TestArgsWith(t *testing.T) {
	a := NamedArgs(map[string]any{"A": 1})
	b := a.With("B", 2)
	if _, ok := a.Named["B"]; ok {
		t.Error("With must not mutate the receiver")
	}
	if b.Named["A"].Int() != 1 || b.Named["B"].Int() != 2 {
		t.Errorf("With result: %+v", b.Named)
	}
}

func TestBaseTables(t *testing.T) {
	sel := MustParseSelect("SELECT * FROM A a JOIN B ON a.x = B.x, C")
	tabs := BaseTables(sel.From)
	if len(tabs) != 3 || tabs[0].Name != "A" || tabs[1].Name != "B" || tabs[2].Name != "C" {
		t.Fatalf("base tables: %+v", tabs)
	}
}

func TestCloneIndependence(t *testing.T) {
	sel := MustParseSelect("SELECT a FROM T WHERE a = 1")
	cp := CloneSelect(sel)
	cp.Where.(*BinaryExpr).Right.(*Literal).Value = sqlvalue.NewInt(99)
	if sel.Where.(*BinaryExpr).Right.(*Literal).Value.Int() != 1 {
		t.Error("clone shares literal nodes with original")
	}
}

func TestSelectItemAliasWithoutAS(t *testing.T) {
	sel := MustParseSelect("SELECT a n FROM T")
	if sel.Items[0].Alias != "n" {
		t.Fatalf("bare alias: %+v", sel.Items[0])
	}
}

func TestParseUnion(t *testing.T) {
	sel := MustParseSelect(
		"SELECT a FROM T WHERE a = 1 UNION ALL SELECT a FROM U UNION SELECT b FROM V ORDER BY 1 LIMIT 5")
	if len(sel.Union) != 2 {
		t.Fatalf("union arms: %d", len(sel.Union))
	}
	if !sel.Union[0].All || sel.Union[1].All {
		t.Fatalf("ALL flags: %+v", sel.Union)
	}
	// Trailing ORDER BY / LIMIT hoist onto the head select.
	if len(sel.OrderBy) != 1 || sel.Limit == nil {
		t.Fatalf("hoisted clauses: %+v", sel)
	}
	if len(sel.Union[1].Select.OrderBy) != 0 || sel.Union[1].Select.Limit != nil {
		t.Fatal("clauses should have been hoisted off the last arm")
	}
	// Round trip.
	again := MustParseSelect(sel.SQL())
	if again.SQL() != sel.SQL() {
		t.Fatalf("union round trip:\n%s\n%s", sel.SQL(), again.SQL())
	}
}

func TestParseUnionParams(t *testing.T) {
	sel := MustParseSelect("SELECT a FROM T WHERE a = ? UNION SELECT a FROM T WHERE a = ?X")
	ps := Params(sel)
	if len(ps) != 2 || ps[1].Name != "X" {
		t.Fatalf("union params: %+v", ps)
	}
}
