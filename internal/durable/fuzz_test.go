package durable

import (
	"testing"

	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
)

// fuzzSeedSegment builds a well-formed segment image to mutate from.
func fuzzSeedSegment(tb testing.TB) []byte {
	e := testEntry(tb, "SELECT id FROM events WHERE uid = ?",
		sqlparser.Args{Positional: []sqlvalue.Value{sqlvalue.NewInt(7)}},
		[][]sqlvalue.Value{{sqlvalue.NewInt(1)}, {sqlvalue.NewNull()}})
	buf := make([]byte, 0, 256)
	buf = append(buf, segMagic[0], segMagic[1], segMagic[2], segMagic[3], FormatVersion, 0, 0, 0)
	buf = appendRecord(buf, recSession, encodeSession("alice", map[string]sqlvalue.Value{
		"uid": sqlvalue.NewInt(7), "who": sqlvalue.NewText("alice"),
	}))
	buf = appendRecord(buf, recAppend, encodeAppend("alice", 0, &e))
	buf = appendRecord(buf, recPolicy, encodePolicy(&policySnapshot{
		Fingerprint: "fp", Views: map[string]string{"v": "SELECT id FROM events"}, DBHash: 3,
	}))
	return buf
}

// FuzzWALDecode feeds arbitrary bytes through the same scan + decode
// path recovery uses. The invariant is total robustness: torn writes,
// bit flips, and truncation may fail the scan or a record decode, but
// must never panic and never drive an unbounded allocation.
func FuzzWALDecode(f *testing.F) {
	seed := fuzzSeedSegment(f)
	f.Add(seed)
	f.Add([]byte{})
	f.Add(seed[:headerSize])                      // header only
	f.Add(seed[:len(seed)-3])                     // torn tail (truncated final record)
	f.Add(seed[:headerSize+5])                    // torn record header
	f.Add(append([]byte{}, seed[headerSize:]...)) // records without header

	flip := append([]byte(nil), seed...)
	flip[len(flip)/2] ^= 0x40 // bit flip in a payload: CRC must catch it
	f.Add(flip)

	flipLen := append([]byte(nil), seed...)
	flipLen[headerSize] = 0xff // absurd length prefix
	flipLen[headerSize+1] = 0xff
	flipLen[headerSize+2] = 0xff
	f.Add(flipLen)

	// Regression: record claiming maxRecordBytes+ length.
	huge := append([]byte(nil), seed[:headerSize]...)
	huge = append(huge, 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0, recAppend)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Whole-file path: header check, then scan + apply, exactly as
		// Recover does for a segment.
		if len(data) >= headerSize && checkFileHeader(data, segMagic) == nil {
			res := &RecoveryResult{Sessions: make(map[string]*RecoveredSession)}
			_, _ = scanRecords(data[headerSize:], headerSize, func(typ byte, payload []byte) error {
				_ = res.apply(typ, payload) // decode errors are fine; panics are not
				return nil
			})
		}
		// Raw payload decoders on the same bytes: recovery never calls
		// them on unframed input, but acwal dump can be pointed at
		// arbitrary files.
		_, _, _ = decodeSession(data)
		_, _, _, _ = decodeAppend(data)
		_, _ = decodePolicy(data)
		_, _ = decodeCkptMeta(data)
		_, _ = decodeCkptEnd(data)
	})
}
