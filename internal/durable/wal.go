package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obsv"
)

// FsyncPolicy selects when appended records become crash-durable.
type FsyncPolicy int

const (
	// FsyncAlways fsyncs every commit batch before acknowledging its
	// appends: an acknowledged append survives any crash. Group commit
	// amortizes the fsync across every append that arrived while the
	// previous one was in flight.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval acknowledges after the OS write and fsyncs on a
	// timer: a crash may lose the last interval's appends, never more.
	FsyncInterval
	// FsyncOff never fsyncs: durability is whatever the OS page cache
	// gives you. For benchmarking the write path and for tests.
	FsyncOff
)

// String names the policy (flag-parseable; see ParseFsyncPolicy).
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// ParseFsyncPolicy parses "always", "interval", or "off".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("durable: unknown fsync policy %q (want always|interval|off)", s)
}

// Options configure a WAL.
type Options struct {
	// SegmentBytes rotates the active segment past this size; 0 means
	// DefaultSegmentBytes.
	SegmentBytes int64
	// Fsync selects the durability policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval is the timer period under FsyncInterval; 0 means
	// DefaultFsyncInterval.
	FsyncInterval time.Duration
	// MaxBatch bounds how many appends one commit batch may coalesce;
	// 0 means unbounded (every append waiting when the committer wakes
	// joins the batch). 1 disables group commit — every append pays
	// its own write and fsync — and exists as the acbench -durable
	// ablation baseline.
	MaxBatch int
	// GroupWindow is how long the committer holds a batch open for
	// stragglers under FsyncAlways once it has evidence of concurrent
	// appenders (the previous batch coalesced, or the drain caught
	// extras). A solo appender never pays it. 0 means
	// DefaultGroupWindow; negative disables the window.
	GroupWindow time.Duration
	// CheckpointEvery, when positive, checkpoints automatically after
	// that many appended records (Manager only).
	CheckpointEvery int
	// HistoryWindow, when positive, bounds every restored or durable
	// session trace to its last n entries (Manager only).
	HistoryWindow int
	// Metrics is the observability registry the WAL reports into (nil
	// or disabled: instruments are no-ops; the plain Stats counters
	// still work).
	Metrics *obsv.Registry
	// Logf receives recovery warnings and background-checkpoint
	// failures; nil discards them.
	Logf func(format string, args ...any)
}

// Default knobs.
const (
	DefaultSegmentBytes  = 4 << 20
	DefaultFsyncInterval = 5 * time.Millisecond
	DefaultGroupWindow   = 50 * time.Microsecond
)

// DefaultOptions returns the production configuration: group commit
// with fsync on every batch.
func DefaultOptions() Options {
	return Options{SegmentBytes: DefaultSegmentBytes, Fsync: FsyncAlways, FsyncInterval: DefaultFsyncInterval}
}

func (o *Options) normalize() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = DefaultFsyncInterval
	}
	if o.GroupWindow == 0 {
		o.GroupWindow = DefaultGroupWindow
	}
}

// Stats are the WAL's plain counters, readable regardless of the
// metrics registry.
type Stats struct {
	// Appends counts acknowledged record appends; Batches the commit
	// batches they coalesced into; Fsyncs the fsync calls issued.
	Appends int64
	Batches int64
	Fsyncs  int64
	// AppendedBytes counts framed record bytes written to segments.
	AppendedBytes int64
	// Rotations counts segment rotations; Checkpoints completed
	// checkpoints; CompactedSegments prefix segments deleted.
	Rotations         int64
	Checkpoints       int64
	CompactedSegments int64
}

// commitReq is one append waiting for the committer: the framed
// record bytes and the channel its durability (or error) is signaled
// on.
type commitReq struct {
	buf  []byte
	done chan error
}

// Log is the write-ahead log proper: a directory of segment files and
// one committer goroutine that batches concurrent appends into shared
// writes and fsyncs. Manager builds the session semantics on top.
type Log struct {
	dir  string
	opts Options

	mu   sync.Mutex // guards the active segment file
	f    *os.File
	idx  uint64 // active segment index
	size int64

	reqs   chan commitReq
	quit   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	// dirty marks bytes written since the last fsync (interval mode).
	dirty atomic.Bool

	appends, batches, fsyncs   atomic.Int64
	appendedBytes              atomic.Int64
	rotations                  atomic.Int64
	checkpoints, compactedSegs atomic.Int64

	mAppendMicros *obsv.Histogram
	mFsyncMicros  *obsv.Histogram
	mBatchRecords *obsv.Histogram
	mAppends      *obsv.Counter
	mFsyncs       *obsv.Counter
}

// segment / checkpoint file naming.
const (
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	ckptPrefix = "ckpt-"
	ckptSuffix = ".ck"
)

func segName(idx uint64) string  { return fmt.Sprintf("%s%08d%s", segPrefix, idx, segSuffix) }
func ckptName(idx uint64) string { return fmt.Sprintf("%s%08d%s", ckptPrefix, idx, ckptSuffix) }

func parseIndexed(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listIndexed returns the sorted indices of files matching
// prefix/suffix in dir.
func listIndexed(dir, prefix, suffix string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range ents {
		if n, ok := parseIndexed(e.Name(), prefix, suffix); ok {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// OpenLog opens (creating if needed) the WAL directory and starts the
// committer. A fresh segment is always started: existing segments are
// recovery inputs, never append targets, so a torn tail from a crash
// is never appended over.
func OpenLog(dir string, opts Options) (*Log, error) {
	opts.normalize()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listIndexed(dir, segPrefix, segSuffix)
	if err != nil {
		return nil, err
	}
	next := uint64(1)
	if n := len(segs); n > 0 {
		next = segs[n-1] + 1
	}
	// Checkpoints also advance the cut; never reuse an index at or
	// below the newest checkpoint.
	if cks, err := listIndexed(dir, ckptPrefix, ckptSuffix); err == nil && len(cks) > 0 {
		if last := cks[len(cks)-1]; next <= last {
			next = last + 1
		}
	}
	l := &Log{
		dir:  dir,
		opts: opts,
		idx:  next - 1, // rotate() increments
		reqs: make(chan commitReq, 1024),
		quit: make(chan struct{}),
	}
	reg := opts.Metrics
	l.mAppendMicros = reg.Histogram("durable.append.micros")
	l.mFsyncMicros = reg.Histogram("durable.fsync.micros")
	l.mBatchRecords = reg.Histogram("durable.batch.records")
	l.mAppends = reg.Counter("durable.appends")
	l.mFsyncs = reg.Counter("durable.fsyncs")
	if err := l.rotateLocked(); err != nil {
		return nil, err
	}
	l.wg.Add(1)
	go l.runCommitter()
	if opts.Fsync == FsyncInterval {
		l.wg.Add(1)
		go l.runIntervalSync()
	}
	return l, nil
}

// Dir returns the WAL directory.
func (l *Log) Dir() string { return l.dir }

// Stats returns the plain counters.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:           l.appends.Load(),
		Batches:           l.batches.Load(),
		Fsyncs:            l.fsyncs.Load(),
		AppendedBytes:     l.appendedBytes.Load(),
		Rotations:         l.rotations.Load(),
		Checkpoints:       l.checkpoints.Load(),
		CompactedSegments: l.compactedSegs.Load(),
	}
}

// rotateLocked closes the active segment (if any) and starts the
// next. Callers hold l.mu or are in single-threaded setup.
func (l *Log) rotateLocked() error {
	if l.f != nil {
		if l.opts.Fsync != FsyncOff {
			_ = l.f.Sync()
		}
		if err := l.f.Close(); err != nil {
			return err
		}
		l.rotations.Add(1)
	}
	l.idx++
	f, err := os.OpenFile(filepath.Join(l.dir, segName(l.idx)), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if err := writeFileHeader(f, segMagic); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.size = headerSize
	// Make the new name durable: without the directory fsync a crash
	// could forget the file while keeping later ones.
	syncDir(l.dir)
	return nil
}

// syncDir fsyncs a directory, best-effort (some filesystems refuse).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// Append frames one record, hands it to the committer, and blocks
// until the record is acknowledged per the fsync policy (written and
// fsynced under FsyncAlways; written under FsyncInterval/FsyncOff).
func (l *Log) Append(typ byte, payload []byte) error {
	if l.closed.Load() {
		return fmt.Errorf("durable: log closed")
	}
	start := time.Now()
	req := commitReq{buf: appendRecord(nil, typ, payload), done: make(chan error, 1)}
	select {
	case l.reqs <- req:
	case <-l.quit:
		return fmt.Errorf("durable: log closed")
	}
	var err error
	select {
	case err = <-req.done:
	case <-l.quit:
		// Closing. Wait for the committer to exit: it finishes its
		// in-flight batch and drains the queue first, signaling done
		// (buffered) for every request it saw. A request it did NOT
		// see won the send race against the drain's exit and is
		// stranded in the queue with no committer left to serve it —
		// report closed rather than block forever.
		l.wg.Wait()
		select {
		case err = <-req.done:
		default:
			err = fmt.Errorf("durable: log closed")
		}
	}
	l.mAppendMicros.ObserveSince(start)
	return err
}

// runCommitter is the group-commit loop: it sleeps until an append
// arrives, drains every append already queued (bounded by MaxBatch)
// into one batch, writes the batch with a single WriteV-ish write,
// fsyncs once per policy, and acknowledges the whole batch. Under
// load, every append that arrives during an fsync joins the next
// batch, so durability cost amortizes across concurrent sessions.
func (l *Log) runCommitter() {
	defer l.wg.Done()
	var batch []commitReq
	var buf []byte
	lastBatch := 1
	for {
		var first commitReq
		select {
		case first = <-l.reqs:
		case <-l.quit:
			// Drain stragglers that won the send race with Close.
			for {
				select {
				case r := <-l.reqs:
					r.done <- fmt.Errorf("durable: log closed")
				default:
					return
				}
			}
		}
		batch = append(batch[:0], first)
		buf = append(buf[:0], first.buf...)
	fill:
		for l.opts.MaxBatch <= 0 || len(batch) < l.opts.MaxBatch {
			select {
			case r := <-l.reqs:
				batch = append(batch, r)
				buf = append(buf, r.buf...)
			default:
				break fill
			}
		}
		// With fsync-per-batch and evidence of concurrent appenders —
		// the drain above caught extras, or the previous batch
		// coalesced — hold the batch open for one short window. The
		// appenders we just acknowledged are re-encoding their next
		// entries right now; the window lets them join this batch
		// instead of forcing one fsync each. A solo appender never
		// leaves evidence, so it commits immediately.
		// The window is a yield-spin, not a timer: Go timers round a
		// 50µs sleep up to roughly a millisecond, which would cost more
		// than the fsyncs it saves.
		if l.opts.Fsync == FsyncAlways && l.opts.GroupWindow > 0 &&
			(len(batch) > 1 || lastBatch > 1) &&
			(l.opts.MaxBatch <= 0 || len(batch) < l.opts.MaxBatch) {
			// Once as many appends have joined as the previous batch
			// held, the whole cohort has re-arrived — commit now
			// rather than spinning out the deadline.
			deadline := time.Now().Add(l.opts.GroupWindow)
		window:
			for (l.opts.MaxBatch <= 0 || len(batch) < l.opts.MaxBatch) && len(batch) < lastBatch {
				select {
				case r := <-l.reqs:
					batch = append(batch, r)
					buf = append(buf, r.buf...)
				default:
					if !time.Now().Before(deadline) {
						break window
					}
					runtime.Gosched()
				}
			}
		}
		lastBatch = len(batch)
		err := l.commit(buf)
		for _, r := range batch {
			r.done <- err
		}
		l.batches.Add(1)
		l.mBatchRecords.Observe(int64(len(batch)))
		l.appends.Add(int64(len(batch)))
		l.mAppends.Add(int64(len(batch)))
	}
}

// commit writes one batch to the active segment, rotating first when
// it would overflow, and fsyncs per policy.
func (l *Log) commit(buf []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.size > headerSize && l.size+int64(len(buf)) > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := l.f.Write(buf); err != nil {
		return err
	}
	l.size += int64(len(buf))
	l.appendedBytes.Add(int64(len(buf)))
	switch l.opts.Fsync {
	case FsyncAlways:
		return l.syncLocked()
	case FsyncInterval:
		l.dirty.Store(true)
	}
	return nil
}

func (l *Log) syncLocked() error {
	start := time.Now()
	err := l.f.Sync()
	l.fsyncs.Add(1)
	l.mFsyncs.Inc()
	l.mFsyncMicros.ObserveSince(start)
	l.dirty.Store(false)
	return err
}

// runIntervalSync fsyncs dirty segments on the configured period.
func (l *Log) runIntervalSync() {
	defer l.wg.Done()
	t := time.NewTicker(l.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if l.dirty.Load() {
				l.mu.Lock()
				_ = l.syncLocked()
				l.mu.Unlock()
			}
		case <-l.quit:
			return
		}
	}
}

// Sync forces an fsync of the active segment regardless of policy
// (the drain path: nothing acknowledged may be lost to a clean
// shutdown).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	return l.syncLocked()
}

// Close stops the committer, fsyncs, and closes the active segment.
// Appends racing Close fail with a closed error.
func (l *Log) Close() error {
	if l.closed.Swap(true) {
		return nil
	}
	close(l.quit)
	l.wg.Wait()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	if l.opts.Fsync != FsyncOff {
		_ = l.syncLocked()
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// writeCheckpointFile atomically writes a checkpoint covering
// segments < cut: records are streamed to a temp file, fsynced, and
// renamed to the final name, so a crash mid-checkpoint leaves only a
// ignorable .tmp. records must NOT include the meta/end framing —
// this function adds it.
func writeCheckpointFile(dir string, cut uint64, sessions uint64, records [][]byte) error {
	tmp := filepath.Join(dir, ckptName(cut)+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer os.Remove(tmp) // no-op after successful rename
	if err := writeFileHeader(f, ckptMagic); err != nil {
		f.Close()
		return err
	}
	buf := appendRecord(nil, recCkptMeta, encodeCkptMeta(&ckptMeta{Cut: cut, Sessions: sessions}))
	for _, r := range records {
		buf = append(buf, r...)
	}
	// The end record carries the file's total record count (meta and
	// end included), so an incomplete checkpoint is detectable even if
	// its tail happens to frame correctly.
	buf = appendRecord(buf, recCkptEnd, encodeCkptEnd(uint64(len(records))+2))
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, ckptName(cut))); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}

// compact removes segments fully covered by the checkpoint at cut
// (index < cut) and checkpoints older than it. Failures are
// non-fatal: a leftover segment only costs replay time.
func (l *Log) compact(cut uint64) {
	segs, err := listIndexed(l.dir, segPrefix, segSuffix)
	if err != nil {
		return
	}
	for _, idx := range segs {
		if idx < cut {
			if os.Remove(filepath.Join(l.dir, segName(idx))) == nil {
				l.compactedSegs.Add(1)
			}
		}
	}
	cks, _ := listIndexed(l.dir, ckptPrefix, ckptSuffix)
	for _, idx := range cks {
		if idx < cut {
			_ = os.Remove(filepath.Join(l.dir, ckptName(idx)))
		}
	}
	syncDir(l.dir)
}

// RotateForCheckpoint rotates to a fresh segment and returns its
// index — the checkpoint's cut. Every record acknowledged before the
// call is in a segment below the cut; records after land at or above
// it and replay on top of the checkpoint (replay dedups by absolute
// entry index, so the overlap window is harmless).
func (l *Log) RotateForCheckpoint() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	// A closed log must not grow a stray post-shutdown segment (l.f is
	// nil once Close ran; closed flips first, so check both).
	if l.closed.Load() || l.f == nil {
		return 0, fmt.Errorf("durable: log closed")
	}
	if err := l.rotateLocked(); err != nil {
		return 0, err
	}
	return l.idx, nil
}
