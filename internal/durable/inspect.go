package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// This file is the read-only inspection surface behind cmd/acwal. It
// walks a WAL directory without mutating it — no truncation, no
// compaction — so an operator can examine a live or crashed log.

// FileInfo describes one WAL file as Inspect saw it, in replay order.
type FileInfo struct {
	Name      string // base name (wal-00000003.seg, ckpt-00000002.ck)
	Kind      string // "segment" or "checkpoint"
	Index     uint64
	Bytes     int64  // file size on disk
	Records   int    // intact records scanned
	Torn      bool   // trailing bytes past the last intact record
	TornBytes int64  // how many
	Err       string // header or read failure; empty when scannable
}

// Record is one decoded WAL record, rendered for tooling. Fields are
// populated per type: Session for session/append records, Index for
// append (absolute entry index), ckpt-meta (covered cut), and
// ckpt-end (record count), SQL and Rows for append records.
type Record struct {
	File    string
	Seq     int    // ordinal within the file, 0-based
	Type    string // session | append | policy | ckpt-meta | ckpt-end
	Session string
	Index   uint64
	SQL     string
	Rows    int
	Detail  string // human-oriented extras (attrs, fingerprint, hash)
	Err     string // decode failure for this record; framing was intact
}

func recordTypeName(typ byte) string {
	switch typ {
	case recSession:
		return "session"
	case recAppend:
		return "append"
	case recPolicy:
		return "policy"
	case recCkptMeta:
		return "ckpt-meta"
	case recCkptEnd:
		return "ckpt-end"
	case recPolicyStage:
		return "policy-stage"
	case recPolicyPromote:
		return "policy-promote"
	case recPolicyRollback:
		return "policy-rollback"
	case recLease:
		return "lease"
	case recShipped:
		return "shipped"
	}
	return fmt.Sprintf("unknown(%d)", typ)
}

// shortFP abbreviates a policy fingerprint for display: fingerprints
// are canonical-key joins that grow with the policy, so the dump shows
// a prefix plus the length instead of pages of CQ text.
func shortFP(fp string) string {
	const keep = 24
	if len(fp) <= keep {
		return fp
	}
	return fmt.Sprintf("%s…(%dB)", fp[:keep], len(fp))
}

// decodeForInspection renders one record without trusting it: decode
// errors land in rec.Err instead of failing the walk, because the
// whole point of the tool is examining damaged logs.
func decodeForInspection(file string, seq int, typ byte, payload []byte) Record {
	rec := Record{File: file, Seq: seq, Type: recordTypeName(typ)}
	switch typ {
	case recSession:
		name, attrs, err := decodeSession(payload)
		rec.Session = name
		if err != nil {
			rec.Err = err.Error()
			break
		}
		if len(attrs) > 0 {
			d := ""
			for _, k := range sortedKeys(attrs) {
				if d != "" {
					d += " "
				}
				d += fmt.Sprintf("%s=%s", k, attrs[k])
			}
			rec.Detail = d
		}
	case recAppend:
		name, idx, e, err := decodeAppend(payload)
		rec.Session, rec.Index = name, idx
		rec.SQL, rec.Rows = e.SQL, len(e.Rows)
		if err != nil {
			rec.Err = err.Error()
		}
	case recPolicy:
		p, err := decodePolicy(payload)
		if err != nil {
			rec.Err = err.Error()
			break
		}
		rec.Detail = fmt.Sprintf("fingerprint=%s views=%d db=%016x", p.Fingerprint, len(p.Views), p.DBHash)
	case recCkptMeta:
		m, err := decodeCkptMeta(payload)
		if err != nil {
			rec.Err = err.Error()
			break
		}
		rec.Index = m.Cut
		rec.Detail = fmt.Sprintf("cut=%d sessions=%d", m.Cut, m.Sessions)
	case recCkptEnd:
		n, err := decodeCkptEnd(payload)
		if err != nil {
			rec.Err = err.Error()
			break
		}
		rec.Index = n
		rec.Detail = fmt.Sprintf("records=%d", n)
	case recPolicyStage:
		v, err := decodePolicyVersion(payload)
		if err != nil {
			rec.Err = err.Error()
			break
		}
		rec.Index = v.ID
		rec.Detail = fmt.Sprintf("id=%d parent=%d fingerprint=%s views=%d db=%016x",
			v.ID, v.Parent, shortFP(v.Fingerprint), len(v.Views), v.DBHash)
	case recPolicyPromote, recPolicyRollback:
		id, fp, err := decodePolicyMark(payload)
		if err != nil {
			rec.Err = err.Error()
			break
		}
		rec.Index = id
		rec.Detail = fmt.Sprintf("id=%d fingerprint=%s", id, shortFP(fp))
	case recLease:
		origin, term, err := decodeLease(payload)
		if err != nil {
			rec.Err = err.Error()
			break
		}
		rec.Index = term
		rec.Detail = fmt.Sprintf("origin=%s term=%d", origin, term)
	case recShipped:
		origin, innerTyp, inner, err := decodeShipped(payload)
		if err != nil {
			rec.Err = err.Error()
			break
		}
		// Render the wrapped record and mark its provenance.
		rec = decodeForInspection(file, seq, innerTyp, inner)
		rec.Type = "shipped-" + recordTypeName(innerTyp)
		if rec.Detail != "" {
			rec.Detail = fmt.Sprintf("origin=%s %s", origin, rec.Detail)
		} else {
			rec.Detail = fmt.Sprintf("origin=%s", origin)
		}
	default:
		rec.Err = "unknown record type"
	}
	return rec
}

// Inspect walks every checkpoint and segment file under dir in replay
// order (checkpoints by index, then segments by index), reporting each
// file via onFile and, when onRecord is non-nil, each intact record
// via onRecord. It never mutates the directory. Either callback may be
// nil. The error return covers directory-level failures only; per-file
// and per-record damage is reported through the callbacks.
func Inspect(dir string, onFile func(FileInfo), onRecord func(Record)) error {
	ckpts, err := listIndexed(dir, ckptPrefix, ckptSuffix)
	if err != nil {
		return err
	}
	segs, err := listIndexed(dir, segPrefix, segSuffix)
	if err != nil {
		return err
	}
	walk := func(indices []uint64, kind string, nameOf func(uint64) string, magic [4]byte) {
		sorted := append([]uint64(nil), indices...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, idx := range sorted {
			name := nameOf(idx)
			path := filepath.Join(dir, name)
			fi := FileInfo{Name: name, Kind: kind, Index: idx}
			if st, err := os.Stat(path); err == nil {
				fi.Bytes = st.Size()
			}
			seq := 0
			res, err := readSegmentFile(path, magic, func(typ byte, payload []byte) error {
				if onRecord != nil {
					onRecord(decodeForInspection(name, seq, typ, payload))
				}
				seq++
				return nil
			})
			if err != nil {
				fi.Err = err.Error()
			} else {
				fi.Records = res.records
				fi.Torn = res.torn
				if res.torn {
					fi.TornBytes = fi.Bytes - res.goodOff
				}
			}
			if onFile != nil {
				onFile(fi)
			}
		}
	}
	walk(ckpts, "checkpoint", ckptName, ckptMagic)
	walk(segs, "segment", segName, segMagic)
	return nil
}
