package durable

import (
	"fmt"
	"sync/atomic"
)

// Cluster-mode durability: WAL shipping and lease terms.
//
// In cluster mode (internal/cluster, DESIGN.md §16) the node that owns
// a session streams that session's WAL records to the session's ring
// successor. The follower persists each one wrapped in a recShipped
// record — so its own log distinguishes replicated state from local
// state — and folds the decoded session history into its
// recovered-session table. Takeover is then nothing new: the first
// hello for an adopted session walks the exact same restore path crash
// recovery uses, which is why handover parity is testable the same way
// `make killrecover` is.
//
// Lease terms are tiny monotone counters persisted as recLease records
// (origin node id → highest term granted). They order ownership
// generations across restarts: a follower rejects shipped batches
// carrying a term lower than one it has already durably granted.

// --- record codecs ---

func encodeLease(origin string, term uint64) []byte {
	buf := appendLenString(nil, origin)
	return appendUvarint(buf, term)
}

func decodeLease(payload []byte) (origin string, term uint64, err error) {
	r := payloadReader{b: payload}
	origin = r.str("lease origin")
	term = r.uvarint("lease term")
	return origin, term, r.err
}

func encodeShipped(origin string, innerType byte, innerPayload []byte) []byte {
	buf := appendLenString(nil, origin)
	buf = append(buf, innerType)
	return append(buf, innerPayload...)
}

func decodeShipped(payload []byte) (origin string, innerType byte, inner []byte, err error) {
	r := payloadReader{b: payload}
	origin = r.str("shipped origin")
	t := r.bytes(1, "shipped inner type")
	if r.err != nil {
		return origin, 0, nil, r.err
	}
	return origin, t[0], r.b, nil
}

// --- recovery ---

// applyCluster folds one cluster record into recovered state; called
// from apply for recLease / recShipped.
func (res *RecoveryResult) applyCluster(typ byte, payload []byte) error {
	switch typ {
	case recLease:
		origin, term, err := decodeLease(payload)
		if err != nil {
			return err
		}
		if res.LeaseTerms == nil {
			res.LeaseTerms = make(map[string]uint64)
		}
		if term > res.LeaseTerms[origin] {
			res.LeaseTerms[origin] = term
		}
	case recShipped:
		origin, innerTyp, inner, err := decodeShipped(payload)
		if err != nil {
			return err
		}
		switch innerTyp {
		case recSession:
			return res.apply(recSession, inner)
		case recAppend:
			// Shipped appends tolerate what local appends may not: a
			// session with no prior session record (the ship stream can
			// begin mid-life when followership changes — attrs arrive
			// with the adopting hello) and an index gap (the shipper
			// dropped records under backpressure; the history restarts
			// at the gap rather than poisoning recovery).
			name, idx, e, err := decodeAppend(inner)
			if err != nil {
				return err
			}
			s := res.Sessions[name]
			if s == nil {
				s = &RecoveredSession{Name: name}
				res.Sessions[name] = s
			}
			switch next := s.next(); {
			case len(s.Entries) == 0:
				s.Base = idx
				s.Entries = append(s.Entries, e)
			case idx == next:
				s.Entries = append(s.Entries, e)
			case idx < next:
				res.DuplicatesSkipped++
			default:
				res.ShippedGaps++
				s.Base, s.Entries = idx, append(s.Entries[:0], e)
			}
		default:
			return fmt.Errorf("shipped record from %q wraps unsupported type %d", origin, innerTyp)
		}
	}
	return nil
}

// --- manager runtime ---

// ShipHook observes every session/append record the manager logs, with
// the exact payload bytes that went to the WAL. The cluster shipper
// installs one to replicate them; it must not block (it runs on the
// append path, after the local WAL accepted the record).
type ShipHook func(name string, typ byte, payload []byte)

// SetShipHook installs (or clears, with nil) the ship hook.
func (m *Manager) SetShipHook(fn ShipHook) {
	if fn == nil {
		m.shipFn.Store(nil)
		return
	}
	m.shipFn.Store(&fn)
}

func (m *Manager) ship(name string, typ byte, payload []byte) {
	if p := m.shipFn.Load(); p != nil {
		(*p)(name, typ, payload)
	}
}

// ApplyShipped persists one record shipped from origin — wrapped as a
// recShipped WAL record — and folds the decoded state into the
// recovered-session table so a later hello (the takeover path)
// restores it exactly like crash recovery would. Sessions already live
// on this node are not folded (their history is being written locally;
// recovery dedups the overlap by absolute index).
func (m *Manager) ApplyShipped(origin string, typ byte, payload []byte) error {
	switch typ {
	case recSession:
		name, attrs, err := decodeSession(payload)
		if err != nil {
			return err
		}
		m.mu.Lock()
		if m.live[name] == nil {
			rec := m.recovered[name]
			if rec == nil {
				rec = &RecoveredSession{Name: name}
				m.recovered[name] = rec
			}
			rec.Attrs = attrs
		}
		m.mu.Unlock()
	case recAppend:
		name, idx, e, err := decodeAppend(payload)
		if err != nil {
			return err
		}
		m.mu.Lock()
		if m.live[name] == nil {
			rec := m.recovered[name]
			if rec == nil {
				rec = &RecoveredSession{Name: name}
				m.recovered[name] = rec
			}
			switch next := rec.next(); {
			case len(rec.Entries) == 0:
				rec.Base = idx
				rec.Entries = append(rec.Entries, e)
			case idx == next:
				rec.Entries = append(rec.Entries, e)
			case idx < next:
				// Duplicate (owner re-shipped after a retry); drop.
			default:
				// Gap: the owner's shipper dropped records under
				// backpressure. Restart the history at idx — serving a
				// history with a hole would be unsound.
				rec.Base, rec.Entries = idx, append(rec.Entries[:0], e)
			}
			if w := m.opts.HistoryWindow; w > 0 && len(rec.Entries) > w {
				drop := len(rec.Entries) - w
				rec.Base += uint64(drop)
				rec.Entries = append(rec.Entries[:0], rec.Entries[drop:]...)
			}
		}
		m.mu.Unlock()
	default:
		return fmt.Errorf("durable: cannot apply shipped record type %d", typ)
	}
	return m.log.Append(recShipped, encodeShipped(origin, typ, payload))
}

// RecordLease durably advances the lease term granted to origin. Terms
// only move forward; re-granting an already-persisted term is a no-op.
func (m *Manager) RecordLease(origin string, term uint64) error {
	m.mu.Lock()
	if m.leaseTerms == nil {
		m.leaseTerms = make(map[string]uint64)
	}
	if term <= m.leaseTerms[origin] {
		m.mu.Unlock()
		return nil
	}
	m.leaseTerms[origin] = term
	m.mu.Unlock()
	return m.log.Append(recLease, encodeLease(origin, term))
}

// LeaseTerm reports the highest durably granted term for origin (0:
// never granted).
func (m *Manager) LeaseTerm(origin string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.leaseTerms[origin]
}

// PendingSessionCount reports recovered-or-shipped sessions not yet
// claimed by a hello (the set a takeover would adopt).
func (m *Manager) PendingSessionCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.recovered)
}

// LiveSessionCount reports sessions currently claimed by a hello.
func (m *Manager) LiveSessionCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.live)
}

// shipPtr is the atomic ship-hook cell type (a named field initializer
// keeps Manager's zero value usable).
type shipPtr = atomic.Pointer[ShipHook]

func sortedUintKeys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}
