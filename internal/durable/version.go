package durable

// Policy versions as addressable WAL records. The single recPolicy
// snapshot (the policy the proxy enforces) predates shadow mode; a
// staged candidate adds a second resident policy whose identity must
// survive a crash — killing a proxy mid-trial must restore BOTH
// versions, or the trial silently evaporates. A recPolicyStage record
// carries the candidate's log-scoped version id, the id of the active
// version it was staged against (0 when the active policy predates
// versioning), and the full policy snapshot; recPolicyPromote /
// recPolicyRollback markers reference the id and close the trial.
//
// Checkpoints re-emit the live lifecycle state so compaction never
// loses it: the active version (when it came from a promote) as a
// stage+promote pair, then the staged candidate's stage record.
// Version ids are monotone over the records reachable from the log;
// the counter restarts past the highest id recovery saw.

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// PolicyVersion is one addressable policy version in the WAL: its
// log-scoped id and parent plus the persisted policy identity.
type PolicyVersion struct {
	ID     uint64
	Parent uint64
	PolicyID
}

// ErrNoCandidate is returned by PromotePolicy/RollbackPolicy when no
// candidate version is staged.
var ErrNoCandidate = errors.New("durable: no candidate policy staged")

// --- codec ---

func encodePolicyVersion(v *PolicyVersion) []byte {
	buf := appendUvarint(nil, v.ID)
	buf = appendUvarint(buf, v.Parent)
	buf = appendLenString(buf, v.Fingerprint)
	buf = binary.LittleEndian.AppendUint64(buf, v.DBHash)
	buf = appendUvarint(buf, uint64(len(v.Views)))
	for _, k := range sortedStrKeys(v.Views) {
		buf = appendLenString(buf, k)
		buf = appendLenString(buf, v.Views[k])
	}
	return buf
}

func decodePolicyVersion(payload []byte) (*PolicyVersion, error) {
	r := payloadReader{b: payload}
	v := &PolicyVersion{ID: r.uvarint("version id"), Parent: r.uvarint("version parent")}
	v.Fingerprint = r.str("version fingerprint")
	b := r.bytes(8, "version db hash")
	if r.err == nil {
		v.DBHash = binary.LittleEndian.Uint64(b)
	}
	n := r.count("version views")
	v.Views = make(map[string]string, n)
	for i := 0; i < n && r.err == nil; i++ {
		k := r.str("view name")
		v.Views[k] = r.str("view sql")
	}
	return v, r.err
}

// encodePolicyMark frames a promote/rollback marker: the referenced
// version id plus its fingerprint (so replay can cross-check the
// marker against the stage record it closes).
func encodePolicyMark(id uint64, fp string) []byte {
	buf := appendUvarint(nil, id)
	return appendLenString(buf, fp)
}

func decodePolicyMark(payload []byte) (id uint64, fp string, err error) {
	r := payloadReader{b: payload}
	id = r.uvarint("mark version id")
	fp = r.str("mark fingerprint")
	return id, fp, r.err
}

// --- manager lifecycle API ---

// StagePolicy assigns the next version id to p, stages it as the
// candidate (replacing any previous candidate), and WAL-logs the
// stage record. The returned version is what recovery will restore if
// the process dies before a promote or rollback.
func (m *Manager) StagePolicy(p PolicyID) (PolicyVersion, error) {
	m.mu.Lock()
	m.nextVerID++
	var parent uint64
	if m.active != nil {
		parent = m.active.ID
	}
	v := PolicyVersion{ID: m.nextVerID, Parent: parent, PolicyID: p}
	m.candidate = &v
	m.mu.Unlock()
	return v, m.log.Append(recPolicyStage, encodePolicyVersion(&v))
}

// PromotePolicy makes the staged candidate the active policy: it
// WAL-logs the promote marker and updates the manager's policy
// identity (the follow-up recPolicy snapshot keeps the unversioned
// readers of the log working unchanged).
func (m *Manager) PromotePolicy() (PolicyVersion, error) {
	m.mu.Lock()
	if m.candidate == nil {
		m.mu.Unlock()
		return PolicyVersion{}, ErrNoCandidate
	}
	v := *m.candidate
	m.candidate = nil
	m.active = &v
	pid := v.PolicyID
	m.policy = &pid
	m.mu.Unlock()
	if err := m.log.Append(recPolicyPromote, encodePolicyMark(v.ID, v.Fingerprint)); err != nil {
		return v, err
	}
	return v, m.log.Append(recPolicy, encodePolicy(&policySnapshot{
		Fingerprint: v.Fingerprint, Views: v.Views, DBHash: v.DBHash,
	}))
}

// RollbackPolicy discards the staged candidate, WAL-logging the
// rollback marker, and returns the discarded version.
func (m *Manager) RollbackPolicy() (PolicyVersion, error) {
	m.mu.Lock()
	if m.candidate == nil {
		m.mu.Unlock()
		return PolicyVersion{}, ErrNoCandidate
	}
	v := *m.candidate
	m.candidate = nil
	m.mu.Unlock()
	return v, m.log.Append(recPolicyRollback, encodePolicyMark(v.ID, v.Fingerprint))
}

// CandidateVersion returns a copy of the staged candidate version
// (recovered or staged this run), or nil.
func (m *Manager) CandidateVersion() *PolicyVersion {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.candidate == nil {
		return nil
	}
	v := *m.candidate
	return &v
}

// ActiveVersion returns a copy of the promoted active version, or nil
// when the active policy predates versioning (set only through
// SetPolicy).
func (m *Manager) ActiveVersion() *PolicyVersion {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.active == nil {
		return nil
	}
	v := *m.active
	return &v
}

// lifecycleRecords re-emits the live lifecycle state for a checkpoint:
// the active version as its stage+promote pair (so ActiveVersion and
// the id counter survive compaction), then the candidate's stage
// record. Callers pass copies taken under m.mu.
func lifecycleRecords(records [][]byte, active, candidate *PolicyVersion) [][]byte {
	if active != nil {
		records = append(records, appendRecord(nil, recPolicyStage, encodePolicyVersion(active)))
		records = append(records, appendRecord(nil, recPolicyPromote, encodePolicyMark(active.ID, active.Fingerprint)))
	}
	if candidate != nil {
		records = append(records, appendRecord(nil, recPolicyStage, encodePolicyVersion(candidate)))
	}
	return records
}

// applyPolicyVersion folds one lifecycle record into recovery state.
func (res *RecoveryResult) applyPolicyVersion(typ byte, payload []byte) error {
	switch typ {
	case recPolicyStage:
		v, err := decodePolicyVersion(payload)
		if err != nil {
			return err
		}
		res.Candidate = v
		if v.ID > res.LastVersionID {
			res.LastVersionID = v.ID
		}
	case recPolicyPromote:
		id, fp, err := decodePolicyMark(payload)
		if err != nil {
			return err
		}
		if res.Candidate == nil || res.Candidate.ID != id || res.Candidate.Fingerprint != fp {
			return fmt.Errorf("promote marker for unknown candidate version %d", id)
		}
		res.ActiveVersion = res.Candidate
		pid := res.Candidate.PolicyID
		res.Policy = &pid
		res.Candidate = nil
	case recPolicyRollback:
		id, fp, err := decodePolicyMark(payload)
		if err != nil {
			return err
		}
		if res.Candidate == nil || res.Candidate.ID != id || res.Candidate.Fingerprint != fp {
			return fmt.Errorf("rollback marker for unknown candidate version %d", id)
		}
		res.Candidate = nil
	default:
		return fmt.Errorf("unknown record type %d", typ)
	}
	return nil
}
