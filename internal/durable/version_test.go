package durable

import (
	"testing"
)

func lifecyclePolicies() (active, candidate PolicyID) {
	active = PolicyID{Fingerprint: "fp-active", DBHash: 42,
		Views: map[string]string{"V1": "SELECT EId FROM Attendance WHERE UId = ?MyUId"}}
	candidate = PolicyID{Fingerprint: "fp-candidate", DBHash: 42,
		Views: map[string]string{
			"V1": "SELECT EId FROM Attendance WHERE UId = ?MyUId",
			"V2": "SELECT * FROM Events",
		}}
	return active, candidate
}

// A crash mid-trial (log closed without checkpoint, no clean Close)
// must restore BOTH the active policy and the staged candidate.
func TestStagedCandidateSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	act, cand := lifecyclePolicies()
	if err := m.SetPolicy(act); err != nil {
		t.Fatal(err)
	}
	v, err := m.StagePolicy(cand)
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != 1 || v.Parent != 0 {
		t.Fatalf("first staged version: %+v", v)
	}
	if err := m.Log().Close(); err != nil { // crash: raw segments only
		t.Fatal(err)
	}

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Policy == nil || rec.Policy.Fingerprint != act.Fingerprint {
		t.Fatalf("active policy lost: %+v", rec.Policy)
	}
	if rec.Candidate == nil {
		t.Fatal("staged candidate evaporated in the crash")
	}
	if rec.Candidate.ID != v.ID || rec.Candidate.Fingerprint != cand.Fingerprint {
		t.Fatalf("candidate identity: %+v", rec.Candidate)
	}
	if len(rec.Candidate.Views) != 2 || rec.Candidate.Views["V2"] != cand.Views["V2"] {
		t.Fatalf("candidate views: %+v", rec.Candidate.Views)
	}
	if rec.LastVersionID != v.ID {
		t.Fatalf("LastVersionID %d, want %d", rec.LastVersionID, v.ID)
	}

	// A reopened manager exposes the trial and keeps ids monotone.
	m2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	cv := m2.CandidateVersion()
	if cv == nil || cv.ID != v.ID || cv.Fingerprint != cand.Fingerprint {
		t.Fatalf("reopened candidate: %+v", cv)
	}
	v2, err := m2.StagePolicy(cand)
	if err != nil {
		t.Fatal(err)
	}
	if v2.ID <= v.ID {
		t.Fatalf("version ids must stay monotone across restart: %d then %d", v.ID, v2.ID)
	}
}

// A promote closes the trial: recovery restores the candidate AS the
// active policy and no trial is in flight.
func TestPromotedPolicySurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	act, cand := lifecyclePolicies()
	if err := m.SetPolicy(act); err != nil {
		t.Fatal(err)
	}
	if _, err := m.StagePolicy(cand); err != nil {
		t.Fatal(err)
	}
	pv, err := m.PromotePolicy()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Log().Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Candidate != nil {
		t.Fatalf("promote must close the trial, candidate %+v", rec.Candidate)
	}
	if rec.ActiveVersion == nil || rec.ActiveVersion.ID != pv.ID {
		t.Fatalf("promoted version lost: %+v", rec.ActiveVersion)
	}
	if rec.Policy == nil || rec.Policy.Fingerprint != cand.Fingerprint {
		t.Fatalf("post-promote policy snapshot: %+v", rec.Policy)
	}
}

func TestRolledBackCandidateStaysGone(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	act, cand := lifecyclePolicies()
	if err := m.SetPolicy(act); err != nil {
		t.Fatal(err)
	}
	if _, err := m.StagePolicy(cand); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RollbackPolicy(); err != nil {
		t.Fatal(err)
	}
	if err := m.Log().Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Candidate != nil {
		t.Fatalf("rolled-back candidate resurfaced: %+v", rec.Candidate)
	}
	if rec.Policy == nil || rec.Policy.Fingerprint != act.Fingerprint {
		t.Fatalf("rollback must keep the pre-stage policy: %+v", rec.Policy)
	}
	if rec.LastVersionID != 1 {
		t.Fatalf("id counter must still cover the discarded version: %d", rec.LastVersionID)
	}
}

// Checkpoint compaction must re-emit the live lifecycle: both the
// promoted active version and a staged candidate survive a checkpoint
// that deletes every raw segment they were logged in.
func TestLifecycleSurvivesCheckpointCompaction(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	act, cand := lifecyclePolicies()
	if err := m.SetPolicy(act); err != nil {
		t.Fatal(err)
	}
	// Promote a first candidate so ActiveVersion is set...
	if _, err := m.StagePolicy(cand); err != nil {
		t.Fatal(err)
	}
	pv, err := m.PromotePolicy()
	if err != nil {
		t.Fatal(err)
	}
	// ...then stage a second trial that is still open.
	next := PolicyID{Fingerprint: "fp-next", DBHash: 42,
		Views: map[string]string{"V1": "SELECT EId FROM Attendance WHERE UId = ?MyUId"}}
	nv, err := m.StagePolicy(next)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.Log().Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.ActiveVersion == nil || rec.ActiveVersion.ID != pv.ID || rec.ActiveVersion.Fingerprint != cand.Fingerprint {
		t.Fatalf("active version lost in compaction: %+v", rec.ActiveVersion)
	}
	if rec.Candidate == nil || rec.Candidate.ID != nv.ID || rec.Candidate.Fingerprint != next.Fingerprint {
		t.Fatalf("candidate lost in compaction: %+v", rec.Candidate)
	}
	if rec.LastVersionID < nv.ID {
		t.Fatalf("LastVersionID %d regressed below %d", rec.LastVersionID, nv.ID)
	}
}

func TestLifecycleErrorsWithoutCandidate(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.PromotePolicy(); err != ErrNoCandidate {
		t.Fatalf("promote: want ErrNoCandidate, got %v", err)
	}
	if _, err := m.RollbackPolicy(); err != ErrNoCandidate {
		t.Fatalf("rollback: want ErrNoCandidate, got %v", err)
	}
}
