package durable

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

// RecoveredSession is one session's state rebuilt from checkpoint +
// WAL replay.
type RecoveredSession struct {
	Name  string
	Attrs map[string]sqlvalue.Value
	// Entries are the surviving history entries; Base is the absolute
	// index of Entries[0] (earlier entries were evicted or compacted
	// away before the last checkpoint).
	Entries []trace.Entry
	Base    uint64
}

// next returns the absolute index the session's next entry must have.
func (s *RecoveredSession) next() uint64 { return s.Base + uint64(len(s.Entries)) }

// RecoveryResult is everything Recover rebuilt, plus how it went.
type RecoveryResult struct {
	Sessions map[string]*RecoveredSession
	// Policy is the last persisted policy snapshot (nil when none was
	// ever logged).
	Policy *PolicyID
	// ActiveVersion identifies the promoted policy version Policy
	// corresponds to; nil when the active policy was only ever set
	// through the unversioned SetPolicy path.
	ActiveVersion *PolicyVersion
	// Candidate is the staged-but-undecided candidate policy version
	// (nil when no shadow trial was in flight). A crash mid-trial
	// restores it so the trial resumes instead of evaporating.
	Candidate *PolicyVersion
	// LastVersionID is the highest policy-version id seen during
	// replay; the manager's id counter resumes past it.
	LastVersionID uint64
	// CheckpointCut is the cut of the checkpoint replayed (0: none).
	CheckpointCut uint64
	// SegmentsReplayed counts segment files scanned; RecordsReplayed
	// intact records applied (checkpoint and segments).
	SegmentsReplayed int
	RecordsReplayed  int
	// TornTailBytes counts bytes truncated off the final segment (0:
	// clean shutdown). DuplicatesSkipped counts append records dropped
	// because the checkpoint already covered them.
	TornTailBytes     int64
	DuplicatesSkipped int
	// LeaseTerms maps origin node id -> highest lease term durably
	// granted to it (cluster mode; nil outside it). ShippedGaps counts
	// shipped-record index gaps (histories restarted mid-stream because
	// the owner's shipper dropped records).
	LeaseTerms  map[string]uint64
	ShippedGaps int
}

// PolicyID is the persisted policy identity: the checker fingerprint
// decisions were made under, the view SQL for inspection, and the
// engine content hash of the database served.
type PolicyID struct {
	Fingerprint string
	Views       map[string]string
	DBHash      uint64
}

// Recover rebuilds session state from a WAL directory: it replays the
// newest complete checkpoint, then every segment at or above its cut,
// in index order. A torn tail on the FINAL segment is truncated in
// place (the crash happened mid-append; nothing after it was ever
// acknowledged under FsyncAlways); torn records anywhere else are
// corruption and fail loudly. An empty or missing directory recovers
// to an empty state.
func Recover(dir string) (*RecoveryResult, error) {
	res := &RecoveryResult{Sessions: make(map[string]*RecoveredSession)}
	if _, err := os.Stat(dir); os.IsNotExist(err) {
		return res, nil
	}
	// Leftover temp checkpoints are crash debris; clear them so they
	// are never mistaken for data.
	if ents, err := os.ReadDir(dir); err == nil {
		for _, e := range ents {
			if filepath.Ext(e.Name()) == ".tmp" {
				_ = os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}

	cks, err := listIndexed(dir, ckptPrefix, ckptSuffix)
	if err != nil {
		return nil, err
	}
	// Newest complete checkpoint wins; an invalid one (should be
	// impossible given atomic rename, but disks happen) falls back to
	// the next older.
	for i := len(cks) - 1; i >= 0; i-- {
		ok, err := res.replayCheckpoint(filepath.Join(dir, ckptName(cks[i])))
		if err != nil {
			return nil, err
		}
		if ok {
			res.CheckpointCut = cks[i]
			break
		}
		res.Sessions = make(map[string]*RecoveredSession)
		res.Policy = nil
		res.ActiveVersion, res.Candidate, res.LastVersionID = nil, nil, 0
	}

	segs, err := listIndexed(dir, segPrefix, segSuffix)
	if err != nil {
		return nil, err
	}
	for i, idx := range segs {
		if idx < res.CheckpointCut {
			continue // covered by the checkpoint; compaction just hasn't run
		}
		path := filepath.Join(dir, segName(idx))
		sr, err := readSegmentFile(path, segMagic, func(typ byte, payload []byte) error {
			return res.apply(typ, payload)
		})
		if err != nil {
			return nil, fmt.Errorf("durable: replay %s: %w", segName(idx), err)
		}
		res.SegmentsReplayed++
		res.RecordsReplayed += sr.records
		if sr.torn {
			if i != len(segs)-1 {
				return nil, fmt.Errorf("durable: %s: torn record in a non-final segment (corruption)", segName(idx))
			}
			fi, err := os.Stat(path)
			if err != nil {
				return nil, err
			}
			res.TornTailBytes = fi.Size() - sr.goodOff
			if err := os.Truncate(path, sr.goodOff); err != nil {
				return nil, fmt.Errorf("durable: truncate torn tail of %s: %w", segName(idx), err)
			}
		}
	}
	return res, nil
}

// replayCheckpoint applies one checkpoint file. ok=false (without
// error) means the file is incomplete or malformed and the caller
// should fall back to an older one.
func (res *RecoveryResult) replayCheckpoint(path string) (ok bool, err error) {
	var (
		sawMeta bool
		sawEnd  bool
		count   int
		wantEnd uint64
	)
	sr, err := readSegmentFile(path, ckptMagic, func(typ byte, payload []byte) error {
		count++
		if !sawMeta {
			if typ != recCkptMeta {
				return fmt.Errorf("checkpoint does not open with meta")
			}
			if _, err := decodeCkptMeta(payload); err != nil {
				return err
			}
			sawMeta = true
			return nil
		}
		if sawEnd {
			return fmt.Errorf("records after checkpoint end")
		}
		if typ == recCkptEnd {
			n, err := decodeCkptEnd(payload)
			if err != nil {
				return err
			}
			sawEnd, wantEnd = true, n
			return nil
		}
		return res.apply(typ, payload)
	})
	if err != nil {
		// A malformed checkpoint is a fallback, not a fatal error; the
		// state built so far is discarded by the caller.
		return false, nil
	}
	if sr.torn || !sawMeta || !sawEnd || uint64(count) != wantEnd {
		return false, nil
	}
	res.RecordsReplayed += count
	return true, nil
}

// apply folds one intact record into the state. Append records dedup
// by absolute index: a record the checkpoint already covers is
// skipped; a gap (an index beyond the session's next) is corruption.
func (res *RecoveryResult) apply(typ byte, payload []byte) error {
	switch typ {
	case recSession:
		name, attrs, err := decodeSession(payload)
		if err != nil {
			return err
		}
		s := res.Sessions[name]
		if s == nil {
			s = &RecoveredSession{Name: name}
			res.Sessions[name] = s
		}
		s.Attrs = attrs
	case recAppend:
		name, idx, e, err := decodeAppend(payload)
		if err != nil {
			return err
		}
		s := res.Sessions[name]
		if s == nil {
			// An append for an undeclared session: the session record
			// is always written (and acknowledged) first, so this is
			// corruption, not reordering.
			return fmt.Errorf("append for undeclared session %q", name)
		}
		next := s.next()
		switch {
		case idx < next:
			// Already covered by the checkpoint (the rotate-then-
			// snapshot overlap window) or by an earlier duplicate.
			res.DuplicatesSkipped++
		case idx == next, len(s.Entries) == 0:
			// An empty session accepts any starting index: a window
			// checkpoint legitimately begins a session's surviving
			// history at its eviction base.
			if len(s.Entries) == 0 {
				s.Base = idx
			}
			s.Entries = append(s.Entries, e)
		default:
			return fmt.Errorf("session %q: append index %d skips ahead of %d", name, idx, next)
		}
	case recPolicy:
		p, err := decodePolicy(payload)
		if err != nil {
			return err
		}
		res.Policy = &PolicyID{Fingerprint: p.Fingerprint, Views: p.Views, DBHash: p.DBHash}
	case recPolicyStage, recPolicyPromote, recPolicyRollback:
		return res.applyPolicyVersion(typ, payload)
	case recLease, recShipped:
		return res.applyCluster(typ, payload)
	default:
		return fmt.Errorf("unknown record type %d", typ)
	}
	return nil
}
