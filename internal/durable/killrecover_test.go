// The kill-and-recover integration test: a WAL-backed proxy is
// SIGKILLed between priming the session histories and issuing the
// decision corpus, restarted on the same WAL directory, and every
// post-restart decision must render byte-identical to an uncrashed
// control run. The load-bearing row is the calendar fixture's
// "event-after-probe": allowed only because the probe is in the
// session history, so losing the trace across the crash flips it to
// blocked.
//
// The proxy under test runs in a subprocess (SIGKILL must take the
// whole process, fsync buffers and all), re-execing this test binary
// into TestKillRecoverChild, which is env-gated and skips otherwise.
package durable_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/checker"
	"repro/internal/durable"
	"repro/internal/proxy"
	"repro/internal/sqlvalue"
)

const (
	childEnvFlag = "ACWAL_KILLRECOVER_CHILD"
	childEnvDir  = "ACWAL_KILLRECOVER_DIR"
	childEnvAddr = "ACWAL_KILLRECOVER_ADDRFILE"
	dbSeedRows   = 24
)

// TestKillRecoverChild is the subprocess body, not a test: it serves
// the calendar fixture behind a WAL-backed enforcing proxy until the
// parent kills it.
func TestKillRecoverChild(t *testing.T) {
	if os.Getenv(childEnvFlag) == "" {
		t.Skip("subprocess helper; driven by TestKillRecoverParity")
	}
	f := apps.Calendar()
	db := f.MustNewDB(dbSeedRows)
	srv := proxy.NewServer(db, checker.New(f.Policy()), proxy.Enforce)
	srv.WALDir = os.Getenv(childEnvDir)
	srv.WALOpts = durable.Options{Fsync: durable.FsyncAlways}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("child listen: %v", err)
	}
	// Publish the bound address atomically; the parent polls for it.
	addrFile := os.Getenv(childEnvAddr)
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr), 0o644); err != nil {
		t.Fatalf("child addr file: %v", err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		t.Fatalf("child addr file: %v", err)
	}
	select {} // serve until SIGKILL
}

// decision is the parity record: everything a client observes about
// one corpus query. Restored counts are deliberately excluded — the
// crashed run reports restored history on re-hello and the control
// run does not; that asymmetry is the point, not a parity failure.
type decision struct {
	Label   string             `json:"label"`
	Allowed bool               `json:"allowed"`
	Reason  string             `json:"reason,omitempty"`
	Columns []string           `json:"columns,omitempty"`
	Rows    [][]sqlvalue.Value `json:"rows,omitempty"`
}

func sessionName(i int, label string) string { return fmt.Sprintf("kr-%02d-%s", i, label) }

// primePhase opens one durable session per corpus query and runs its
// prime (history) query when it has one.
func primePhase(t *testing.T, addr string, corpus []apps.WorkloadQuery) {
	t.Helper()
	cl, err := proxy.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	// The lane API needs the connection upgraded to protocol v2 first.
	if err := cl.Hello(ctx, map[string]any{"MyUId": int64(1)}); err != nil {
		t.Fatalf("upgrade hello: %v", err)
	}
	for i, w := range corpus {
		lane := cl.Lane(uint64(i + 1))
		if _, err := lane.HelloDurable(ctx, sessionName(i, w.Label), map[string]any{"MyUId": w.UId}); err != nil {
			t.Fatalf("prime hello %s: %v", w.Label, err)
		}
		if w.PrimeSQL == "" {
			continue
		}
		if _, err := lane.Query(ctx, w.PrimeSQL, w.PrimeArgs...); err != nil {
			t.Fatalf("prime query %s: %v", w.Label, err)
		}
	}
}

// decidePhase re-claims every durable session and runs the corpus
// query itself, rendering each outcome. It returns the decisions and
// how many trace entries the hellos reported restored in total.
func decidePhase(t *testing.T, addr string, corpus []apps.WorkloadQuery) ([]decision, int) {
	t.Helper()
	cl, err := proxy.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	if err := cl.Hello(ctx, map[string]any{"MyUId": int64(1)}); err != nil {
		t.Fatalf("upgrade hello: %v", err)
	}
	var out []decision
	restoredTotal := 0
	for i, w := range corpus {
		lane := cl.Lane(uint64(i + 1))
		restored, err := lane.HelloDurable(ctx, sessionName(i, w.Label), map[string]any{"MyUId": w.UId})
		if err != nil {
			t.Fatalf("decide hello %s: %v", w.Label, err)
		}
		restoredTotal += restored
		d := decision{Label: w.Label}
		rows, err := lane.Query(ctx, w.SQL, w.Args...)
		switch e := err.(type) {
		case nil:
			d.Allowed = true
			d.Columns = rows.Columns
			d.Rows = rows.Rows
		case *proxy.BlockedError:
			d.Reason = e.Reason
		default:
			t.Fatalf("decide query %s: %v", w.Label, err)
		}
		out = append(out, d)
	}
	return out, restoredTotal
}

// startChild launches the proxy subprocess on walDir and waits for
// its bound address.
func startChild(t *testing.T, walDir, addrFile string) (*exec.Cmd, string) {
	t.Helper()
	os.Remove(addrFile)
	cmd := exec.Command(os.Args[0], "-test.run=^TestKillRecoverChild$", "-test.v")
	cmd.Env = append(os.Environ(),
		childEnvFlag+"=1",
		childEnvDir+"="+walDir,
		childEnvAddr+"="+addrFile)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start child: %v", err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			return cmd, strings.TrimSpace(string(b))
		}
		time.Sleep(20 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatal("child never published its address")
	return nil, ""
}

func sigkill(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL child: %v", err)
	}
	cmd.Wait() // reap; exit status is the signal, not an error we check
}

func renderDecisions(t *testing.T, ds []decision) string {
	t.Helper()
	var b strings.Builder
	for _, d := range ds {
		line, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.String()
}

func TestKillRecoverParity(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess integration test")
	}
	corpus := apps.Calendar().Corpus

	// Control: one uncrashed in-process server, same WAL-backed
	// hello/prime/re-hello/query sequence.
	controlDir := t.TempDir()
	f := apps.Calendar()
	srv := proxy.NewServer(f.MustNewDB(dbSeedRows), checker.New(f.Policy()), proxy.Enforce)
	srv.WALDir = controlDir
	srv.WALOpts = durable.Options{Fsync: durable.FsyncOff} // decisions don't depend on fsync
	controlAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	primePhase(t, controlAddr, corpus)
	control, _ := decidePhase(t, controlAddr, corpus)

	// Crashed: prime against child 1, SIGKILL it, restart on the same
	// WAL directory, decide against child 2.
	walDir := t.TempDir()
	addrFile := filepath.Join(t.TempDir(), "addr")
	child1, addr1 := startChild(t, walDir, addrFile)
	primePhase(t, addr1, corpus)
	sigkill(t, child1)
	child2, addr2 := startChild(t, walDir, addrFile)
	t.Cleanup(func() { sigkill(t, child2) })
	crashed, restored := decidePhase(t, addr2, corpus)

	if restored == 0 {
		t.Fatal("restart restored no trace entries: recovery is not engaging, so parity would be vacuous")
	}
	want := renderDecisions(t, control)
	got := renderDecisions(t, crashed)
	if got != want {
		t.Fatalf("post-restart decisions diverge from uncrashed control:\n--- control ---\n%s--- crashed ---\n%s", want, got)
	}
	// The history-dependent row must have survived as an allow: if
	// recovery silently lost the trace in BOTH runs, the diff above
	// could pass with matching blocks.
	for _, d := range crashed {
		if d.Label == "event-after-probe" && !d.Allowed {
			t.Fatal("event-after-probe blocked after restart: pre-crash history was not restored")
		}
	}
}
