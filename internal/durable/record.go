// Package durable persists the enforcement state that the paper's
// security model is defined over: the per-session query history (the
// trace IS the security state — decisions are "compliant given the
// history", §2.2) and the policy snapshot it was decided under. It is
// a dependency-free write-ahead log with group commit, periodic
// checkpoints with prefix compaction, and crash recovery that replays
// checkpoint plus tail segments and truncates a torn tail record
// instead of failing.
//
// Layout of a WAL directory:
//
//	wal-00000001.seg   segment files: fixed header, then framed records
//	wal-00000002.seg
//	ckpt-00000002.ck   checkpoint: sessions + policy snapshot covering
//	                   every segment with index < 2
//
// Record framing (segment and checkpoint files alike):
//
//	[length u32 LE][crc32 u32 LE][type byte][payload ...]
//
// length counts type byte plus payload; crc32 (IEEE) guards the same
// bytes. A record that fails its length or CRC check terminates the
// scan: in the final segment that is a torn tail (the crash happened
// mid-write) and recovery truncates it; in an earlier segment it is
// corruption and recovery fails loudly. See DESIGN.md §11 for the
// crash-consistency argument.
package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Segment and checkpoint file headers: 4-byte magic, format version,
// three reserved bytes.
var (
	segMagic  = [4]byte{'A', 'C', 'W', 'L'}
	ckptMagic = [4]byte{'A', 'C', 'C', 'K'}
)

// FormatVersion is the on-disk format version stamped into every
// segment and checkpoint header. Readers reject files from a newer
// format rather than misparse them.
const FormatVersion = 1

const headerSize = 8

// Record types. Session and append records appear in segments;
// checkpoint files open with a meta record, carry the same session and
// append records, and close with an end record (so a checkpoint that
// was only partially written is detectably incomplete even after an
// atomic-rename filesystem reorders writes).
const (
	recSession  byte = 1 // durable session declared / attrs updated
	recAppend   byte = 2 // one trace entry appended to a session
	recPolicy   byte = 3 // policy snapshot (fingerprint + view SQL)
	recCkptMeta byte = 4 // checkpoint meta: covered cut, policy, db hash
	recCkptEnd  byte = 5 // checkpoint terminator (record count)

	// Policy lifecycle records (version.go): a candidate policy staged
	// for shadow trial is an addressable version (id, parent,
	// snapshot); promote/rollback markers reference it by id. Recovery
	// restores both the active AND the staged candidate policy, so a
	// crash mid-trial resumes the trial.
	recPolicyStage    byte = 6 // candidate policy version staged
	recPolicyPromote  byte = 7 // staged candidate promoted to active
	recPolicyRollback byte = 8 // staged candidate discarded

	// Cluster records (cluster.go): a follower persists the lease term
	// it last granted an origin node, and wraps every session/append
	// record shipped from that origin so replicated state is
	// distinguishable from local state in the log.
	recLease   byte = 9  // lease grant/renewal: origin node + term
	recShipped byte = 10 // shipped record: origin + wrapped session/append
)

// recHeaderSize frames every record: u32 length + u32 crc.
const recHeaderSize = 8

// maxRecordBytes bounds one record; a length field beyond it is
// treated as corruption, not an allocation request.
const maxRecordBytes = 64 << 20

func writeFileHeader(w io.Writer, magic [4]byte) error {
	var h [headerSize]byte
	copy(h[:4], magic[:])
	h[4] = FormatVersion
	_, err := w.Write(h[:])
	return err
}

func checkFileHeader(h []byte, magic [4]byte) error {
	if len(h) < headerSize || h[0] != magic[0] || h[1] != magic[1] || h[2] != magic[2] || h[3] != magic[3] {
		return fmt.Errorf("durable: bad file magic")
	}
	if h[4] > FormatVersion {
		return fmt.Errorf("durable: format version %d newer than supported %d", h[4], FormatVersion)
	}
	return nil
}

// appendRecord frames one record (type+payload) onto buf.
func appendRecord(buf []byte, typ byte, payload []byte) []byte {
	n := 1 + len(payload)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	crc := crc32.NewIEEE()
	crc.Write([]byte{typ})
	crc.Write(payload)
	buf = binary.LittleEndian.AppendUint32(buf, crc.Sum32())
	buf = append(buf, typ)
	return append(buf, payload...)
}

// scanResult reports how a segment scan ended.
type scanResult struct {
	// goodOff is the file offset just past the last intact record.
	goodOff int64
	// torn is true when trailing bytes exist past goodOff that do not
	// form an intact record (short header, short payload, bad CRC, or
	// an absurd length).
	torn bool
	// records counts intact records scanned.
	records int
}

// scanRecords reads framed records from data (the file contents past
// the header), calling fn for each intact one. It never fails on a
// torn tail: it stops and reports it. fn returning an error aborts the
// scan with that error.
func scanRecords(data []byte, baseOff int64, fn func(typ byte, payload []byte) error) (scanResult, error) {
	res := scanResult{goodOff: baseOff}
	off := 0
	for {
		if len(data)-off < recHeaderSize {
			res.torn = off < len(data)
			return res, nil
		}
		n := binary.LittleEndian.Uint32(data[off:])
		want := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 || n > maxRecordBytes || len(data)-off-recHeaderSize < int(n) {
			res.torn = true
			return res, nil
		}
		body := data[off+recHeaderSize : off+recHeaderSize+int(n)]
		if crc32.ChecksumIEEE(body) != want {
			res.torn = true
			return res, nil
		}
		if err := fn(body[0], body[1:]); err != nil {
			return res, err
		}
		off += recHeaderSize + int(n)
		res.goodOff = baseOff + int64(off)
		res.records++
	}
}

// readSegmentFile loads one segment (or checkpoint) file, verifies the
// header, and scans its records. magic selects the expected header.
func readSegmentFile(path string, magic [4]byte, fn func(typ byte, payload []byte) error) (scanResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return scanResult{}, err
	}
	if len(data) < headerSize {
		// A file created but not yet fully through its header write is
		// itself a torn artifact: no intact prefix at all, so the
		// good offset is zero.
		return scanResult{torn: true}, nil
	}
	if err := checkFileHeader(data, magic); err != nil {
		return scanResult{}, fmt.Errorf("%s: %w", path, err)
	}
	return scanRecords(data[headerSize:], headerSize, fn)
}
