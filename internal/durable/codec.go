package durable

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

// Record payload encoding: length-prefixed strings and a compact typed
// value form, all uvarint-framed. The decoder is defensive — every
// length is checked against the remaining payload before allocation —
// because recovery and acwal feed it bytes that survived a crash, and
// FuzzWALDecode feeds it bytes that survived nothing.

// Value tags.
const (
	valNull byte = 0
	valInt  byte = 1
	valReal byte = 2
	valText byte = 3
	valBool byte = 4
)

func appendUvarint(buf []byte, v uint64) []byte { return binary.AppendUvarint(buf, v) }

func appendLenString(buf []byte, s string) []byte {
	buf = appendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendValue(buf []byte, v sqlvalue.Value) []byte {
	switch v.Type() {
	case sqlvalue.Null:
		return append(buf, valNull)
	case sqlvalue.Int:
		buf = append(buf, valInt)
		return binary.LittleEndian.AppendUint64(buf, uint64(v.Int()))
	case sqlvalue.Real:
		buf = append(buf, valReal)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Real()))
	case sqlvalue.Text:
		buf = append(buf, valText)
		return appendLenString(buf, v.Text())
	case sqlvalue.Bool:
		buf = append(buf, valBool)
		if v.Bool() {
			return append(buf, 1)
		}
		return append(buf, 0)
	}
	// Unreachable for well-formed values; encode as NULL.
	return append(buf, valNull)
}

func appendValues(buf []byte, vals []sqlvalue.Value) []byte {
	buf = appendUvarint(buf, uint64(len(vals)))
	for _, v := range vals {
		buf = appendValue(buf, v)
	}
	return buf
}

// payloadReader decodes a record payload with sticky error state.
type payloadReader struct {
	b   []byte
	err error
}

func (r *payloadReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("durable: truncated or malformed %s", what)
	}
}

func (r *payloadReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *payloadReader) bytes(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.b) {
		r.fail(what)
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *payloadReader) str(what string) string {
	n := r.uvarint(what)
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)) {
		r.fail(what)
		return ""
	}
	return string(r.bytes(int(n), what))
}

func (r *payloadReader) value() sqlvalue.Value {
	tag := r.bytes(1, "value tag")
	if r.err != nil {
		return sqlvalue.NewNull()
	}
	switch tag[0] {
	case valNull:
		return sqlvalue.NewNull()
	case valInt:
		b := r.bytes(8, "int value")
		if r.err != nil {
			return sqlvalue.NewNull()
		}
		return sqlvalue.NewInt(int64(binary.LittleEndian.Uint64(b)))
	case valReal:
		b := r.bytes(8, "real value")
		if r.err != nil {
			return sqlvalue.NewNull()
		}
		return sqlvalue.NewReal(math.Float64frombits(binary.LittleEndian.Uint64(b)))
	case valText:
		return sqlvalue.NewText(r.str("text value"))
	case valBool:
		b := r.bytes(1, "bool value")
		if r.err != nil {
			return sqlvalue.NewNull()
		}
		return sqlvalue.NewBool(b[0] != 0)
	}
	r.fail("value tag")
	return sqlvalue.NewNull()
}

// count reads a collection length and sanity-bounds it by the bytes
// remaining (every element costs at least one byte), so a corrupt
// length can never drive a giant allocation.
func (r *payloadReader) count(what string) int {
	n := r.uvarint(what)
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.b)) {
		r.fail(what)
		return 0
	}
	return int(n)
}

func (r *payloadReader) values(what string) []sqlvalue.Value {
	n := r.count(what)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]sqlvalue.Value, n)
	for i := range out {
		out[i] = r.value()
	}
	return out
}

// --- session records ---

func encodeSession(name string, attrs map[string]sqlvalue.Value) []byte {
	buf := appendLenString(nil, name)
	buf = appendUvarint(buf, uint64(len(attrs)))
	// Deterministic order keeps byte-identical WALs for identical runs
	// (useful for tests and acwal diffing).
	for _, k := range sortedKeys(attrs) {
		buf = appendLenString(buf, k)
		buf = appendValue(buf, attrs[k])
	}
	return buf
}

func decodeSession(payload []byte) (name string, attrs map[string]sqlvalue.Value, err error) {
	r := payloadReader{b: payload}
	name = r.str("session name")
	n := r.count("session attrs")
	attrs = make(map[string]sqlvalue.Value, n)
	for i := 0; i < n && r.err == nil; i++ {
		k := r.str("attr name")
		attrs[k] = r.value()
	}
	return name, attrs, r.err
}

// --- append records ---

func encodeAppend(name string, idx uint64, e *trace.Entry) []byte {
	buf := appendLenString(nil, name)
	buf = appendUvarint(buf, idx)
	buf = appendLenString(buf, e.SQL)
	buf = appendValues(buf, e.Args.Positional)
	buf = appendUvarint(buf, uint64(len(e.Args.Named)))
	for _, k := range sortedKeys(e.Args.Named) {
		buf = appendLenString(buf, k)
		buf = appendValue(buf, e.Args.Named[k])
	}
	buf = appendUvarint(buf, uint64(len(e.Columns)))
	for _, c := range e.Columns {
		buf = appendLenString(buf, c)
	}
	buf = appendUvarint(buf, uint64(len(e.Rows)))
	for _, row := range e.Rows {
		buf = appendValues(buf, row)
	}
	return buf
}

// decodeAppend rebuilds the trace entry, re-parsing the SQL (parsed
// statements are shared immutable objects, not serialized). An entry
// whose SQL no longer parses is reported as an error — it could only
// have been logged by a different (newer-grammar) build.
func decodeAppend(payload []byte) (name string, idx uint64, e trace.Entry, err error) {
	r := payloadReader{b: payload}
	name = r.str("session name")
	idx = r.uvarint("entry index")
	e.SQL = r.str("entry sql")
	e.Args.Positional = r.values("positional args")
	if n := r.count("named args"); n > 0 {
		e.Args.Named = make(map[string]sqlvalue.Value, n)
		for i := 0; i < n && r.err == nil; i++ {
			k := r.str("named arg")
			e.Args.Named[k] = r.value()
		}
	}
	if n := r.count("columns"); n > 0 {
		e.Columns = make([]string, n)
		for i := range e.Columns {
			e.Columns[i] = r.str("column")
		}
	}
	if n := r.count("rows"); n > 0 {
		e.Rows = make([][]sqlvalue.Value, n)
		for i := range e.Rows {
			e.Rows[i] = r.values("row")
		}
	}
	if r.err != nil {
		return name, idx, e, r.err
	}
	e.Stmt, err = sqlparser.ParseSelectCached(e.SQL)
	if err != nil {
		return name, idx, e, fmt.Errorf("durable: replayed entry does not parse: %w", err)
	}
	return name, idx, e, nil
}

// --- policy records ---

// policySnapshot is the persisted policy identity: the fingerprint the
// checker decided under, the view SQL for inspection, and a content
// hash of the database the proxy was serving (recovery warns when
// either changed across the restart).
type policySnapshot struct {
	Fingerprint string
	Views       map[string]string
	DBHash      uint64
}

func encodePolicy(p *policySnapshot) []byte {
	buf := appendLenString(nil, p.Fingerprint)
	buf = binary.LittleEndian.AppendUint64(buf, p.DBHash)
	buf = appendUvarint(buf, uint64(len(p.Views)))
	for _, k := range sortedStrKeys(p.Views) {
		buf = appendLenString(buf, k)
		buf = appendLenString(buf, p.Views[k])
	}
	return buf
}

func decodePolicy(payload []byte) (*policySnapshot, error) {
	r := payloadReader{b: payload}
	p := &policySnapshot{Fingerprint: r.str("policy fingerprint")}
	b := r.bytes(8, "db hash")
	if r.err == nil {
		p.DBHash = binary.LittleEndian.Uint64(b)
	}
	n := r.count("policy views")
	p.Views = make(map[string]string, n)
	for i := 0; i < n && r.err == nil; i++ {
		k := r.str("view name")
		p.Views[k] = r.str("view sql")
	}
	return p, r.err
}

// --- checkpoint meta / end records ---

// ckptMeta opens a checkpoint file: cut is the first segment index NOT
// covered by it (replay resumes there; segments below it are
// compactable once the checkpoint is durable).
type ckptMeta struct {
	Cut      uint64
	Sessions uint64
}

func encodeCkptMeta(m *ckptMeta) []byte {
	buf := appendUvarint(nil, m.Cut)
	return appendUvarint(buf, m.Sessions)
}

func decodeCkptMeta(payload []byte) (*ckptMeta, error) {
	r := payloadReader{b: payload}
	m := &ckptMeta{Cut: r.uvarint("checkpoint cut")}
	m.Sessions = r.uvarint("checkpoint sessions")
	return m, r.err
}

func encodeCkptEnd(records uint64) []byte { return appendUvarint(nil, records) }

func decodeCkptEnd(payload []byte) (uint64, error) {
	r := payloadReader{b: payload}
	n := r.uvarint("checkpoint end")
	return n, r.err
}

func sortedKeys(m map[string]sqlvalue.Value) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

func sortedStrKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

// sortStrings is an insertion sort: key sets here (session attrs,
// named args, views) are tiny, and it keeps the codec free of even a
// sort import dependency question.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
