// Crash mid-trial: a candidate policy is staged over the wire (so the
// stage record is in the WAL), the proxy is SIGKILLed, and the restart
// must restore BOTH policy versions — every post-restart decision
// byte-identical to an uncrashed control, the trial still live, and
// the resumed trial able to run to a promote.
package durable_test

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/apps"
	"repro/internal/checker"
	"repro/internal/durable"
	"repro/internal/proxy"
)

// wideCandidate is the calendar policy plus an all-events view, so
// blocked event scans diverge as "loosen" during the trial.
func wideCandidate(f *apps.Fixture) map[string]string {
	views := make(map[string]string, len(f.PolicySQL)+1)
	for k, v := range f.PolicySQL {
		views[k] = v
	}
	views["VAllEvents"] = "SELECT * FROM Events"
	return views
}

// stagePolicy stages the candidate over the v2 wire, the same path an
// operator's acpolicy stage takes.
func stagePolicy(t *testing.T, addr string, views map[string]string) *proxy.PolicyBody {
	t.Helper()
	cl, err := proxy.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	if err := cl.Hello(ctx, map[string]any{"MyUId": int64(1)}); err != nil {
		t.Fatal(err)
	}
	pb, err := cl.PolicyStage(ctx, views)
	if err != nil {
		t.Fatalf("stage: %v", err)
	}
	return pb
}

func TestKillRecoverStagedCandidate(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess integration test")
	}
	f := apps.Calendar()
	corpus := f.Corpus
	candidate := wideCandidate(f)

	// Control: uncrashed in-process server, same prime/stage/decide
	// sequence.
	controlDir := t.TempDir()
	srv := proxy.NewServer(f.MustNewDB(dbSeedRows), checker.New(f.Policy()), proxy.Enforce)
	srv.WALDir = controlDir
	srv.WALOpts = durable.Options{Fsync: durable.FsyncOff}
	controlAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	primePhase(t, controlAddr, corpus)
	stagePolicy(t, controlAddr, candidate)
	control, _ := decidePhase(t, controlAddr, corpus)

	// Crashed: prime, stage, SIGKILL mid-trial, restart on the WAL.
	walDir := t.TempDir()
	addrFile := filepath.Join(t.TempDir(), "addr")
	child1, addr1 := startChild(t, walDir, addrFile)
	primePhase(t, addr1, corpus)
	staged := stagePolicy(t, addr1, candidate)
	if !staged.Staged || staged.CandidateVersionID == 0 {
		t.Fatalf("stage did not persist a WAL version: %+v", staged)
	}
	sigkill(t, child1)
	child2, addr2 := startChild(t, walDir, addrFile)
	t.Cleanup(func() { sigkill(t, child2) })

	// The restart restores the trial: candidate staged, same identity.
	cl, err := proxy.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	if err := cl.Hello(ctx, map[string]any{"MyUId": int64(1)}); err != nil {
		t.Fatal(err)
	}
	pb, err := cl.PolicyStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !pb.Staged {
		t.Fatal("staged candidate evaporated in the crash")
	}
	if pb.CandidateFingerprint != staged.CandidateFingerprint {
		t.Fatalf("restored candidate fingerprint %q != staged %q",
			pb.CandidateFingerprint, staged.CandidateFingerprint)
	}
	if pb.ActiveFingerprint != staged.ActiveFingerprint {
		t.Fatalf("restored active fingerprint %q != pre-crash %q",
			pb.ActiveFingerprint, staged.ActiveFingerprint)
	}

	// Byte-identical decisions against the uncrashed control — the
	// recovered candidate must shadow, never enforce.
	crashed, restored := decidePhase(t, addr2, corpus)
	if restored == 0 {
		t.Fatal("restart restored no trace entries: recovery is not engaging")
	}
	want := renderDecisions(t, control)
	got := renderDecisions(t, crashed)
	if got != want {
		t.Fatalf("post-restart decisions diverge from uncrashed control:\n--- control ---\n%s--- crashed ---\n%s", want, got)
	}

	// The resumed trial is live: a blocked event scan dual-decides into
	// a loosen divergence, and a promote concludes it.
	if _, err := cl.Query(ctx, "SELECT Title FROM Events"); err == nil {
		t.Fatal("all-titles must stay blocked while the candidate only shadows")
	} else {
		var be *proxy.BlockedError
		if !errors.As(err, &be) {
			t.Fatalf("all-titles: %v", err)
		}
	}
	pb, err = cl.PolicyDiff(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pb.Diffs) == 0 || pb.Diffs[0].Kind != checker.DivergeLoosen {
		t.Fatalf("resumed trial produced no loosen divergence: %+v", pb.Diffs)
	}
	if _, err := cl.PolicyPromote(ctx); err != nil {
		t.Fatalf("promote after restart: %v", err)
	}
	if _, err := cl.Query(ctx, "SELECT Title FROM Events"); err != nil {
		t.Fatalf("promoted candidate must allow the event scan: %v", err)
	}
}
