package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

// testEntry builds a real trace entry (parsed statement included) for
// a query the repo's grammar accepts.
func testEntry(t testing.TB, sql string, args sqlparser.Args, rows [][]sqlvalue.Value) trace.Entry {
	t.Helper()
	stmt, err := sqlparser.ParseSelectCached(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	cols := make([]string, 0)
	if len(rows) > 0 {
		for i := range rows[0] {
			cols = append(cols, fmt.Sprintf("c%d", i))
		}
	}
	return trace.Entry{SQL: sql, Stmt: stmt, Args: args, Columns: cols, Rows: rows}
}

func intRow(vs ...int64) []sqlvalue.Value {
	out := make([]sqlvalue.Value, len(vs))
	for i, v := range vs {
		out[i] = sqlvalue.NewInt(v)
	}
	return out
}

func entriesEqual(t *testing.T, got, want []trace.Entry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("entry count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].SQL != want[i].SQL {
			t.Fatalf("entry %d SQL = %q, want %q", i, got[i].SQL, want[i].SQL)
		}
		if !reflect.DeepEqual(got[i].Rows, want[i].Rows) {
			t.Fatalf("entry %d rows = %v, want %v", i, got[i].Rows, want[i].Rows)
		}
		if !reflect.DeepEqual(got[i].Args.Positional, want[i].Args.Positional) {
			t.Fatalf("entry %d args = %v, want %v", i, got[i].Args.Positional, want[i].Args.Positional)
		}
	}
}

func testOpts() Options {
	return Options{Fsync: FsyncOff} // tests don't need real durability
}

func TestAppendRecoverRoundtrip(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	attrs := map[string]sqlvalue.Value{
		"uid":  sqlvalue.NewInt(7),
		"name": sqlvalue.NewText("alice"),
		"nul":  sqlvalue.NewNull(),
		"ok":   sqlvalue.NewBool(true),
		"frac": sqlvalue.NewReal(2.5),
	}
	tr, restored, err := m.Session("s1", attrs)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 0 {
		t.Fatalf("fresh session restored %d entries", restored)
	}
	want := []trace.Entry{
		testEntry(t, "SELECT id FROM events WHERE uid = ?", sqlparser.Args{Positional: intRow(7)},
			[][]sqlvalue.Value{intRow(1), intRow(2)}),
		testEntry(t, "SELECT id FROM events WHERE id = 99", sqlparser.NoArgs, nil),
	}
	for _, e := range want {
		tr.Append(e)
	}
	if err := m.SetPolicy(PolicyID{Fingerprint: "fp-1", Views: map[string]string{"v": "SELECT id FROM events"}, DBHash: 42}); err != nil {
		t.Fatal(err)
	}
	if err := m.Log().Close(); err != nil { // close WITHOUT checkpoint: recovery reads raw segments
		t.Fatal(err)
	}

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := rec.Sessions["s1"]
	if s == nil {
		t.Fatalf("session s1 not recovered; have %v", rec.Sessions)
	}
	entriesEqual(t, s.Entries, want)
	if s.Base != 0 {
		t.Fatalf("base = %d, want 0", s.Base)
	}
	if !reflect.DeepEqual(s.Attrs, attrs) {
		t.Fatalf("attrs = %v, want %v", s.Attrs, attrs)
	}
	if rec.Policy == nil || rec.Policy.Fingerprint != "fp-1" || rec.Policy.DBHash != 42 {
		t.Fatalf("policy = %+v", rec.Policy)
	}
	if rec.Policy.Views["v"] != "SELECT id FROM events" {
		t.Fatalf("policy views = %v", rec.Policy.Views)
	}
	if rec.TornTailBytes != 0 {
		t.Fatalf("clean shutdown reported torn tail of %d bytes", rec.TornTailBytes)
	}
}

func TestSegmentRotationAndReplay(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.SegmentBytes = 512 // force many rotations
	m, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := m.Session("s", nil)
	if err != nil {
		t.Fatal(err)
	}
	var want []trace.Entry
	for i := 0; i < 50; i++ {
		e := testEntry(t, "SELECT id FROM events WHERE uid = ?",
			sqlparser.Args{Positional: intRow(int64(i))}, [][]sqlvalue.Value{intRow(int64(i))})
		want = append(want, e)
		tr.Append(e)
	}
	if m.Stats().Rotations == 0 {
		t.Fatal("expected segment rotations")
	}
	if err := m.Log().Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listIndexed(dir, segPrefix, segSuffix)
	if len(segs) < 2 {
		t.Fatalf("expected multiple segments, got %d", len(segs))
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SegmentsReplayed != len(segs) {
		t.Fatalf("replayed %d segments, want %d", rec.SegmentsReplayed, len(segs))
	}
	entriesEqual(t, rec.Sessions["s"].Entries, want)
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := m.Session("s", nil)
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry(t, "SELECT id FROM events WHERE id = 1", sqlparser.NoArgs, [][]sqlvalue.Value{intRow(1)})
	tr.Append(e)
	if err := m.Log().Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: valid prefix + a torn record (good
	// length header, truncated payload).
	segs, _ := listIndexed(dir, segPrefix, segSuffix)
	path := filepath.Join(dir, segName(segs[len(segs)-1]))
	full := appendRecord(nil, recAppend, encodeAppend("s", 1, &e))
	torn := full[:len(full)-5]
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(path)

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.TornTailBytes != int64(len(torn)) {
		t.Fatalf("TornTailBytes = %d, want %d", rec.TornTailBytes, len(torn))
	}
	entriesEqual(t, rec.Sessions["s"].Entries, []trace.Entry{e})
	after, _ := os.Stat(path)
	if after.Size() != before.Size()-int64(len(torn)) {
		t.Fatalf("tail not truncated: %d -> %d", before.Size(), after.Size())
	}
	// Recovery after truncation is clean.
	rec2, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.TornTailBytes != 0 {
		t.Fatalf("second recovery still torn: %d bytes", rec2.TornTailBytes)
	}
}

func TestTornRecordInEarlierSegmentFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.SegmentBytes = 256
	m, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := m.Session("s", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		tr.Append(testEntry(t, "SELECT id FROM events WHERE uid = ?",
			sqlparser.Args{Positional: intRow(int64(i))}, nil))
	}
	if err := m.Log().Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listIndexed(dir, segPrefix, segSuffix)
	if len(segs) < 2 {
		t.Fatalf("need >=2 segments, got %d", len(segs))
	}
	// Flip a byte in the middle of the FIRST segment: corruption, not a
	// torn tail.
	path := filepath.Join(dir, segName(segs[0]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir); err == nil {
		t.Fatal("recovery over a corrupt non-final segment should fail")
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.Fsync = FsyncAlways // exercise the real ack path
	m, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	const sessions, perSession = 8, 25
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		tr, _, err := m.Session(fmt.Sprintf("s%d", s), nil)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(tr *trace.Trace, s int) {
			defer wg.Done()
			for i := 0; i < perSession; i++ {
				tr.Append(testEntry(t, "SELECT id FROM events WHERE uid = ?",
					sqlparser.Args{Positional: intRow(int64(s*1000 + i))}, [][]sqlvalue.Value{intRow(int64(i))}))
			}
		}(tr, s)
	}
	wg.Wait()
	st := m.Stats()
	if st.Appends != sessions*perSession+sessions { // + session records
		t.Fatalf("appends = %d, want %d", st.Appends, sessions*perSession+sessions)
	}
	if st.Batches > st.Appends {
		t.Fatalf("batches (%d) > appends (%d)", st.Batches, st.Appends)
	}
	if err := m.Log().Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Sessions) != sessions {
		t.Fatalf("recovered %d sessions, want %d", len(rec.Sessions), sessions)
	}
	for name, s := range rec.Sessions {
		if len(s.Entries) != perSession {
			t.Fatalf("session %s recovered %d entries, want %d", name, len(s.Entries), perSession)
		}
	}
}

func TestCheckpointCompactsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.SegmentBytes = 512
	m, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := m.Session("s", map[string]sqlvalue.Value{"uid": sqlvalue.NewInt(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetPolicy(PolicyID{Fingerprint: "fp", DBHash: 9}); err != nil {
		t.Fatal(err)
	}
	var want []trace.Entry
	appendN := func(n int) {
		for i := 0; i < n; i++ {
			e := testEntry(t, "SELECT id FROM events WHERE uid = ?",
				sqlparser.Args{Positional: intRow(int64(len(want)))}, [][]sqlvalue.Value{intRow(int64(len(want)))})
			want = append(want, e)
			tr.Append(e)
		}
	}
	appendN(40)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().CompactedSegments; got == 0 {
		t.Fatal("checkpoint compacted no segments")
	}
	appendN(10) // post-checkpoint tail
	if err := m.Log().Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.CheckpointCut == 0 {
		t.Fatal("recovery used no checkpoint")
	}
	entriesEqual(t, rec.Sessions["s"].Entries, want)
	if rec.Policy == nil || rec.Policy.Fingerprint != "fp" {
		t.Fatalf("policy lost across checkpoint: %+v", rec.Policy)
	}
	if rec.Sessions["s"].Attrs["uid"].Int() != 1 {
		t.Fatalf("attrs lost across checkpoint: %v", rec.Sessions["s"].Attrs)
	}
}

func TestManagerReopenRestoresSessions(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := m.Session("alice", nil)
	if err != nil {
		t.Fatal(err)
	}
	var want []trace.Entry
	for i := 0; i < 5; i++ {
		e := testEntry(t, "SELECT id FROM events WHERE uid = ?",
			sqlparser.Args{Positional: intRow(int64(i))}, [][]sqlvalue.Value{intRow(int64(i))})
		want = append(want, e)
		tr.Append(e)
	}
	if err := m.Close(); err != nil { // full close: final checkpoint
		t.Fatal(err)
	}

	m2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.RecoveredSessionCount() != 1 || m2.RecoveredEntryCount() != 5 {
		t.Fatalf("recovered %d sessions / %d entries", m2.RecoveredSessionCount(), m2.RecoveredEntryCount())
	}
	tr2, restored, err := m2.Session("alice", nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 5 {
		t.Fatalf("restored = %d, want 5", restored)
	}
	entriesEqual(t, tr2.Entries, want)
	if tr2.NextIndex() != 5 {
		t.Fatalf("NextIndex = %d, want 5", tr2.NextIndex())
	}
	// Appends continue at the right absolute index and survive another
	// cycle.
	e := testEntry(t, "SELECT id FROM events WHERE id = 77", sqlparser.NoArgs, nil)
	tr2.Append(e)
	want = append(want, e)
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	m3, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	tr3, restored, err := m3.Session("alice", nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 6 {
		t.Fatalf("second restore = %d, want 6", restored)
	}
	entriesEqual(t, tr3.Entries, want)
}

func TestHistoryWindowAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.HistoryWindow = 3
	m, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := m.Session("s", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		tr.Append(testEntry(t, "SELECT id FROM events WHERE uid = ?",
			sqlparser.Args{Positional: intRow(int64(i))}, nil))
	}
	if tr.Len() != 3 || tr.Evicted() != 7 {
		t.Fatalf("window live state: len=%d evicted=%d", tr.Len(), tr.Evicted())
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	tr2, restored, err := m2.Session("s", nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 3 {
		t.Fatalf("restored = %d, want 3 (window)", restored)
	}
	if tr2.NextIndex() != 10 {
		t.Fatalf("NextIndex = %d, want 10 (absolute indices survive the window)", tr2.NextIndex())
	}
	got := tr2.Entries[len(tr2.Entries)-1].Args.Positional[0].Int()
	if got != 9 {
		t.Fatalf("last restored entry arg = %d, want 9", got)
	}
}

func TestDuplicateSessionNameSharesTrace(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	tr1, _, err := m.Session("shared", nil)
	if err != nil {
		t.Fatal(err)
	}
	tr1.Append(testEntry(t, "SELECT id FROM events WHERE id = 1", sqlparser.NoArgs, nil))
	tr2, restored, err := m.Session("shared", nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr2 != tr1 {
		t.Fatal("same durable name must return the same live trace")
	}
	if restored != 1 {
		t.Fatalf("re-claim reported %d entries, want 1", restored)
	}
}

func TestRecoverUnclaimedSessionSurvivesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := m.Session("dormant", nil)
	if err != nil {
		t.Fatal(err)
	}
	tr.Append(testEntry(t, "SELECT id FROM events WHERE id = 5", sqlparser.NoArgs, [][]sqlvalue.Value{intRow(5)}))
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen but never re-claim "dormant"; checkpoint (which compacts
	// its pre-crash data) must carry it forward anyway.
	m2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	m3, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	_, restored, err := m3.Session("dormant", nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 1 {
		t.Fatalf("dormant session lost across checkpoints: restored=%d", restored)
	}
}

func TestOpenLogNeverReusesIndices(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		l, err := OpenLog(dir, testOpts())
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append(recSession, encodeSession(fmt.Sprintf("s%d", i), nil)); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listIndexed(dir, segPrefix, segSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 {
		t.Fatalf("segments = %v, want 3 distinct", segs)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Sessions) != 3 {
		t.Fatalf("recovered %d sessions, want 3", len(rec.Sessions))
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncOff} {
		got, err := ParseFsyncPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("roundtrip %v: got %v, err %v", p, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

// Two connections declaring the same durable session name share one
// trace, and their concurrent appends must reach the WAL in index
// order — replay treats a skipped-ahead index as corruption. This is
// the regression test for the hook running outside the trace lock,
// which let index N+1 enqueue before N.
func TestSharedSessionConcurrentAppendsRecover(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.Fsync = FsyncAlways // real ack path maximizes interleaving
	m, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	const conns, perConn = 6, 40
	e := testEntry(t, "SELECT id FROM events WHERE uid = ?",
		sqlparser.Args{Positional: intRow(1)}, [][]sqlvalue.Value{intRow(1)})
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		tr, _, err := m.Session("shared", nil) // every conn gets the same trace
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(tr *trace.Trace) {
			defer wg.Done()
			for i := 0; i < perConn; i++ {
				tr.Append(e)
			}
		}(tr)
	}
	wg.Wait()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatalf("recovery after concurrent shared-session appends: %v", err)
	}
	s := rec.Sessions["shared"]
	if s == nil || len(s.Entries) != conns*perConn {
		t.Fatalf("recovered %v entries, want %d", s, conns*perConn)
	}
}

// Appends racing Close must all return — success or a closed error —
// never hang. Pre-fix, a send that won the race against the
// committer's exit drain stranded the request in the queue and the
// appender blocked forever on done.
func TestAppendCloseRaceDoesNotHang(t *testing.T) {
	for iter := 0; iter < 40; iter++ {
		l, err := OpenLog(t.TempDir(), testOpts())
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 25; i++ {
					if err := l.Append(recAppend, []byte("payload")); err != nil {
						return // closed: expected once Close wins
					}
				}
			}()
		}
		close(start)
		_ = l.Close()
		wg.Wait() // hangs forever (test timeout) if a request is stranded
	}
}

// A closed log must refuse to rotate: a background checkpoint that
// loses the shutdown race would otherwise create a stray segment
// after Close.
func TestRotateForCheckpointAfterClose(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.RotateForCheckpoint(); err == nil {
		t.Fatal("RotateForCheckpoint on a closed log should fail")
	}
	segs, err := listIndexed(dir, segPrefix, segSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("closed log grew segments: %v", segs)
	}
}

// Close with auto-checkpointing under concurrent appends: Close must
// wait out any in-flight background checkpoint, take the slot, and
// leave no stray post-shutdown segment behind.
func TestCloseWaitsForBackgroundCheckpoint(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.CheckpointEvery = 3 // force frequent background checkpoints
	m, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry(t, "SELECT id FROM events WHERE uid = ?",
		sqlparser.Args{Positional: intRow(1)}, [][]sqlvalue.Value{intRow(1)})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		tr, _, err := m.Session(fmt.Sprintf("s%d", g), nil)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(tr *trace.Trace) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				tr.Append(e)
			}
		}(tr)
	}
	wg.Wait()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing may touch the directory after Close returns.
	after, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Fatalf("directory changed after Close: %d -> %d files", len(before), len(after))
	}
	if _, err := Recover(dir); err != nil {
		t.Fatalf("recovery after close: %v", err)
	}
}
