package durable

import (
	"strings"
	"testing"

	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

// captureShip collects everything a manager's ship hook emits.
type captureShip struct {
	names    []string
	types    []byte
	payloads [][]byte
}

func (c *captureShip) hook(name string, typ byte, payload []byte) {
	c.names = append(c.names, name)
	c.types = append(c.types, typ)
	// The hook contract says the payload is only valid during the
	// call; copy like a real shipper would.
	c.payloads = append(c.payloads, append([]byte(nil), payload...))
}

// TestShipHookEmitsReplayablePayloads is the core WAL-shipping parity
// property: the bytes the ship hook hands out, applied verbatim on a
// follower, recover into exactly the session the owner logged.
func TestShipHookEmitsReplayablePayloads(t *testing.T) {
	ownerDir, followerDir := t.TempDir(), t.TempDir()
	owner, err := Open(ownerDir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	var cap captureShip
	owner.SetShipHook(cap.hook)

	attrs := map[string]sqlvalue.Value{"uid": sqlvalue.NewInt(7)}
	tr, _, err := owner.Session("s1", attrs)
	if err != nil {
		t.Fatal(err)
	}
	want := []trace.Entry{
		testEntry(t, "SELECT id FROM events WHERE uid = ?", sqlparser.Args{Positional: intRow(7)},
			[][]sqlvalue.Value{intRow(1), intRow(2)}),
		testEntry(t, "SELECT id FROM events WHERE id = 99", sqlparser.NoArgs, nil),
	}
	for _, e := range want {
		tr.Append(e)
	}
	if err := owner.Close(); err != nil {
		t.Fatal(err)
	}
	if len(cap.payloads) != 3 { // 1 session + 2 appends
		t.Fatalf("ship hook fired %d times, want 3", len(cap.payloads))
	}
	if cap.types[0] != recSession || cap.types[1] != recAppend {
		t.Fatalf("ship types = %v", cap.types)
	}
	for i, n := range cap.names {
		if n != "s1" {
			t.Fatalf("ship %d session = %q", i, n)
		}
	}

	follower, err := Open(followerDir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := range cap.payloads {
		if err := follower.ApplyShipped("nodeA", cap.types[i], cap.payloads[i]); err != nil {
			t.Fatalf("apply shipped %d: %v", i, err)
		}
	}
	if follower.PendingSessionCount() != 1 {
		t.Fatalf("pending sessions = %d, want 1", follower.PendingSessionCount())
	}
	// Takeover is the ordinary recovered-session restore path.
	ftr, restored, err := follower.Session("s1", attrs)
	if err != nil {
		t.Fatal(err)
	}
	if restored != len(want) {
		t.Fatalf("restored %d entries, want %d", restored, len(want))
	}
	got, _ := ftr.SnapshotState()
	entriesEqual(t, got, want)
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}

	// And the wrapped records are durable: a restart of the follower
	// still has the session.
	follower2, err := Open(followerDir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer follower2.Close()
	s := follower2.Recovery().Sessions["s1"]
	if s == nil {
		t.Fatalf("shipped session lost across restart; have %v", follower2.Recovery().Sessions)
	}
	entriesEqual(t, s.Entries, want)
}

// TestApplyShippedSurvivesCheckpoint: checkpoints persist recovered
// (not-yet-claimed) sessions, so shipped state outlives compaction.
func TestApplyShippedSurvivesCheckpoint(t *testing.T) {
	ownerDir, followerDir := t.TempDir(), t.TempDir()
	owner, err := Open(ownerDir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	var cap captureShip
	owner.SetShipHook(cap.hook)
	tr, _, err := owner.Session("s1", nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []trace.Entry{testEntry(t, "SELECT id FROM events WHERE id = 1", sqlparser.NoArgs, nil)}
	tr.Append(want[0])
	owner.Close()

	follower, err := Open(followerDir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := range cap.payloads {
		if err := follower.ApplyShipped("nodeA", cap.types[i], cap.payloads[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := follower.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	follower.Close()

	follower2, err := Open(followerDir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer follower2.Close()
	s := follower2.Recovery().Sessions["s1"]
	if s == nil {
		t.Fatal("shipped session lost across checkpoint + restart")
	}
	entriesEqual(t, s.Entries, want)
}

// TestApplyShippedToleratesGaps: a dropped batch (shipper backpressure)
// must not poison the follower — the session's history restarts at the
// gap and the gap is counted.
func TestApplyShippedToleratesGaps(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	e0 := testEntry(t, "SELECT id FROM events WHERE id = 0", sqlparser.NoArgs, nil)
	e2 := testEntry(t, "SELECT id FROM events WHERE id = 2", sqlparser.NoArgs, nil)
	if err := m.ApplyShipped("nodeA", recSession, encodeSession("s1", nil)); err != nil {
		t.Fatal(err)
	}
	if err := m.ApplyShipped("nodeA", recAppend, encodeAppend("s1", 0, &e0)); err != nil {
		t.Fatal(err)
	}
	// Index 1 never arrives; index 2 lands.
	if err := m.ApplyShipped("nodeA", recAppend, encodeAppend("s1", 2, &e2)); err != nil {
		t.Fatal(err)
	}
	// An append for a session never declared here (mid-stream
	// followership change) implicitly creates it.
	if err := m.ApplyShipped("nodeA", recAppend, encodeAppend("s2", 5, &e0)); err != nil {
		t.Fatal(err)
	}
	// Raw close (no checkpoint): recovery must replay the wrapped
	// shipped records themselves and tolerate the gap.
	if err := m.Log().Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := rec.Sessions["s1"]
	if s1 == nil || s1.Base != 2 || len(s1.Entries) != 1 {
		t.Fatalf("gap handling: s1 = %+v", s1)
	}
	entriesEqual(t, s1.Entries, []trace.Entry{e2})
	s2 := rec.Sessions["s2"]
	if s2 == nil || s2.Base != 5 || len(s2.Entries) != 1 {
		t.Fatalf("undeclared session: s2 = %+v", s2)
	}
	if rec.ShippedGaps == 0 {
		t.Fatal("gap was not counted")
	}
}

// TestLeaseTermsPersist: terms are monotone, survive restart, and
// survive checkpoint compaction.
func TestLeaseTermsPersist(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RecordLease("nodeA", 3); err != nil {
		t.Fatal(err)
	}
	if err := m.RecordLease("nodeA", 2); err != nil { // stale: no regression
		t.Fatal(err)
	}
	if err := m.RecordLease("nodeB", 1); err != nil {
		t.Fatal(err)
	}
	if got := m.LeaseTerm("nodeA"); got != 3 {
		t.Fatalf("live term = %d, want 3", got)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	m.Close()

	m2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := m2.LeaseTerm("nodeA"); got != 3 {
		t.Fatalf("recovered term(nodeA) = %d, want 3", got)
	}
	if got := m2.LeaseTerm("nodeB"); got != 1 {
		t.Fatalf("recovered term(nodeB) = %d, want 1", got)
	}
	if got := m2.LeaseTerm("nodeC"); got != 0 {
		t.Fatalf("unknown origin term = %d, want 0", got)
	}
}

// TestInspectRendersClusterRecords: the acwal surface decodes the new
// record types — lease grants and shipped session/append records —
// with their origin attached.
func TestInspectRendersClusterRecords(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RecordLease("nodeA", 4); err != nil {
		t.Fatal(err)
	}
	e := testEntry(t, "SELECT id FROM events WHERE id = 1", sqlparser.NoArgs, [][]sqlvalue.Value{intRow(1)})
	if err := m.ApplyShipped("nodeA", recSession, encodeSession("s9", map[string]sqlvalue.Value{"uid": sqlvalue.NewInt(9)})); err != nil {
		t.Fatal(err)
	}
	if err := m.ApplyShipped("nodeA", recAppend, encodeAppend("s9", 0, &e)); err != nil {
		t.Fatal(err)
	}
	// Close the raw log without the shutdown checkpoint: compaction
	// rewrites shipped records as plain session/append state, and this
	// test wants the wrapped on-disk form.
	if err := m.Log().Close(); err != nil {
		t.Fatal(err)
	}

	byType := map[string][]Record{}
	if err := Inspect(dir, nil, func(rec Record) {
		if rec.Err != "" {
			t.Fatalf("record %s #%d: %s", rec.File, rec.Seq, rec.Err)
		}
		byType[rec.Type] = append(byType[rec.Type], rec)
	}); err != nil {
		t.Fatal(err)
	}

	leases := byType["lease"]
	if len(leases) != 1 {
		t.Fatalf("lease records = %d, want 1 (have types %v)", len(leases), keysOf(byType))
	}
	if leases[0].Index != 4 || !strings.Contains(leases[0].Detail, "origin=nodeA") {
		t.Fatalf("lease rendered as %+v", leases[0])
	}
	ss := byType["shipped-session"]
	if len(ss) != 1 || ss[0].Session != "s9" || !strings.Contains(ss[0].Detail, "origin=nodeA") {
		t.Fatalf("shipped-session rendered as %+v", ss)
	}
	sa := byType["shipped-append"]
	if len(sa) != 1 || sa[0].Session != "s9" || sa[0].Index != 0 || sa[0].Rows != 1 ||
		!strings.Contains(sa[0].Detail, "origin=nodeA") {
		t.Fatalf("shipped-append rendered as %+v", sa)
	}
	if sa[0].SQL != e.SQL {
		t.Fatalf("shipped-append SQL = %q, want %q", sa[0].SQL, e.SQL)
	}
}

func keysOf(m map[string][]Record) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
