package durable

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obsv"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

// Manager is the enforcement-state durability layer the proxy talks
// to: it recovers session traces on open, hands out live traces whose
// appends are WAL-logged through the trace hook, checkpoints
// periodically, and compacts covered segments.
type Manager struct {
	log  *Log
	opts Options

	mu sync.Mutex
	// live maps durable session name -> the one shared trace. Two
	// connections declaring the same name share history (and therefore
	// decisions); the trace's own locking keeps that safe.
	live map[string]*liveSession
	// recovered holds replayed sessions not yet re-claimed by a hello.
	recovered map[string]*RecoveredSession
	policy    *PolicyID
	// Policy lifecycle state (version.go): the promoted active version
	// (nil when the active policy predates versioning), the staged
	// candidate awaiting promote/rollback, and the monotone version-id
	// counter, resumed past the highest id recovery replayed.
	active    *PolicyVersion
	candidate *PolicyVersion
	nextVerID uint64
	// leaseTerms tracks the highest durably granted lease term per
	// origin node (cluster.go).
	leaseTerms map[string]uint64

	// shipFn, when set, observes every session/append record logged
	// (cluster WAL shipping; cluster.go).
	shipFn shipPtr

	recovery RecoveryResult

	appendsSinceCkpt atomic.Int64
	// ckptRunning is the single checkpoint slot: a background
	// auto-checkpoint CASes it for its run, and Close takes it
	// permanently so no checkpoint can overlap or outlive shutdown.
	ckptRunning atomic.Bool
	mgrClosed   atomic.Bool

	mCheckpointMicros *obsv.Histogram
	mRecoveryMicros   *obsv.Histogram
	mCheckpoints      *obsv.Counter
	mRecoveredSess    *obsv.Counter
	mRecoveredEntries *obsv.Counter
	mTornTruncated    *obsv.Counter
}

type liveSession struct {
	name  string
	attrs map[string]sqlvalue.Value
	tr    *trace.Trace
}

// Open recovers state from dir and starts a WAL for new appends.
func Open(dir string, opts Options) (*Manager, error) {
	opts.normalize()
	start := time.Now()
	rec, err := Recover(dir)
	if err != nil {
		return nil, err
	}
	l, err := OpenLog(dir, opts)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		log:        l,
		opts:       opts,
		live:       make(map[string]*liveSession),
		recovered:  rec.Sessions,
		policy:     rec.Policy,
		active:     rec.ActiveVersion,
		candidate:  rec.Candidate,
		nextVerID:  rec.LastVersionID,
		leaseTerms: rec.LeaseTerms,
		recovery:   *rec,
	}
	reg := opts.Metrics
	m.mCheckpointMicros = reg.Histogram("durable.checkpoint.micros")
	m.mRecoveryMicros = reg.Histogram("durable.recovery.micros")
	m.mCheckpoints = reg.Counter("durable.checkpoints")
	m.mRecoveredSess = reg.Counter("durable.recovered.sessions")
	m.mRecoveredEntries = reg.Counter("durable.recovered.entries")
	m.mTornTruncated = reg.Counter("durable.tail.truncated")
	m.mRecoveryMicros.ObserveSince(start)
	m.mRecoveredSess.Add(int64(len(rec.Sessions)))
	for _, s := range rec.Sessions {
		m.mRecoveredEntries.Add(int64(len(s.Entries)))
	}
	if rec.TornTailBytes > 0 {
		m.mTornTruncated.Inc()
		m.logf("durable: truncated %d-byte torn tail after crash", rec.TornTailBytes)
	}
	return m, nil
}

func (m *Manager) logf(format string, args ...any) {
	if m.opts.Logf != nil {
		m.opts.Logf(format, args...)
	}
}

// Recovery reports what Open replayed.
func (m *Manager) Recovery() RecoveryResult { return m.recovery }

// Log exposes the underlying WAL (stats, direct sync).
func (m *Manager) Log() *Log { return m.log }

// SetPolicy records the policy identity the proxy now enforces. It is
// WAL-logged when it differs from the recovered snapshot; a changed
// fingerprint or database hash across a restart is worth a warning —
// restored histories were observed under the old one (decisions stay
// sound either way: facts only ever widen what is allowed when they
// are true of the data, and a stale fact can only have come from a
// changed database, which is exactly what the warning flags).
func (m *Manager) SetPolicy(p PolicyID) error {
	m.mu.Lock()
	prev := m.policy
	m.policy = &p
	// An unversioned override of a promoted policy orphans the version:
	// the active policy is no longer the one the promote produced.
	if m.active != nil && m.active.Fingerprint != p.Fingerprint {
		m.active = nil
	}
	m.mu.Unlock()
	if prev != nil {
		if prev.Fingerprint != p.Fingerprint {
			m.logf("durable: policy changed across restart (recovered sessions decided under a different policy)")
		} else if prev.DBHash != p.DBHash {
			m.logf("durable: database contents changed across restart (recovered histories observed a different database)")
		}
		if prev.Fingerprint == p.Fingerprint && prev.DBHash == p.DBHash {
			return nil // identical: no need to re-log
		}
	}
	return m.log.Append(recPolicy, encodePolicy(&policySnapshot{
		Fingerprint: p.Fingerprint, Views: p.Views, DBHash: p.DBHash,
	}))
}

// Policy returns the current policy identity (recovered or set).
func (m *Manager) Policy() *PolicyID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.policy
}

// Session declares (or re-claims) a durable session and returns its
// trace. A recovered session's history is restored into the trace —
// bounded by HistoryWindow if set — and further appends are
// WAL-logged before the append returns (per the fsync policy). The
// session record itself is durable before Session returns, so an
// append can never precede its session in the log. Restored reports
// how many history entries the trace came back with.
func (m *Manager) Session(name string, attrs map[string]sqlvalue.Value) (tr *trace.Trace, restored int, err error) {
	if name == "" {
		return nil, 0, fmt.Errorf("durable: empty session name")
	}
	m.mu.Lock()
	ls := m.live[name]
	if ls == nil {
		ls = &liveSession{name: name, tr: &trace.Trace{}}
		if m.opts.HistoryWindow > 0 {
			ls.tr.SetWindow(m.opts.HistoryWindow)
		}
		if rec := m.recovered[name]; rec != nil {
			ls.tr.Restore(rec.Entries, rec.Base)
			restored = ls.tr.Len()
			delete(m.recovered, name)
		}
		sessName := name
		ls.tr.SetHook(func(idx uint64, e *trace.Entry) {
			if err := m.appendEntry(sessName, idx, e); err != nil {
				m.logf("durable: append for session %q lost: %v", sessName, err)
			}
		})
		m.live[name] = ls
	} else {
		restored = ls.tr.Len()
	}
	ls.attrs = attrs
	m.mu.Unlock()
	payload := encodeSession(name, attrs)
	if err := m.log.Append(recSession, payload); err != nil {
		return nil, 0, err
	}
	m.ship(name, recSession, payload)
	return ls.tr, restored, nil
}

// appendEntry logs one trace append and drives auto-checkpointing.
func (m *Manager) appendEntry(name string, idx uint64, e *trace.Entry) error {
	payload := encodeAppend(name, idx, e)
	if err := m.log.Append(recAppend, payload); err != nil {
		return err
	}
	m.ship(name, recAppend, payload)
	if n := m.opts.CheckpointEvery; n > 0 {
		if m.appendsSinceCkpt.Add(1) >= int64(n) {
			m.maybeCheckpointAsync()
		}
	}
	return nil
}

// maybeCheckpointAsync starts one background checkpoint if none is
// running.
func (m *Manager) maybeCheckpointAsync() {
	if !m.ckptRunning.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer m.ckptRunning.Store(false)
		if err := m.Checkpoint(); err != nil {
			m.logf("durable: background checkpoint failed: %v", err)
		}
	}()
}

// Checkpoint serializes every live session trace and the policy
// snapshot into a new checkpoint file, then compacts segments it
// covers. Appends keep flowing while the snapshot is written; the
// overlap (records both in the checkpoint and in post-cut segments)
// is deduplicated on replay by absolute entry index.
func (m *Manager) Checkpoint() error {
	start := time.Now()
	cut, err := m.log.RotateForCheckpoint()
	if err != nil {
		return err
	}

	m.mu.Lock()
	type sessSnap struct {
		name    string
		attrs   map[string]sqlvalue.Value
		entries []trace.Entry
		base    uint64
	}
	snaps := make([]sessSnap, 0, len(m.live)+len(m.recovered))
	for name, ls := range m.live {
		entries, base := ls.tr.SnapshotState()
		snaps = append(snaps, sessSnap{name: name, attrs: ls.attrs, entries: entries, base: base})
	}
	// Recovered-but-unclaimed sessions must survive the checkpoint too
	// (their pre-crash segments are about to be compacted away).
	for name, rec := range m.recovered {
		snaps = append(snaps, sessSnap{name: name, attrs: rec.Attrs, entries: rec.Entries, base: rec.Base})
	}
	pol := m.policy
	var aVer, cVer *PolicyVersion
	if m.active != nil {
		v := *m.active
		aVer = &v
	}
	if m.candidate != nil {
		v := *m.candidate
		cVer = &v
	}
	leases := make(map[string]uint64, len(m.leaseTerms))
	for origin, term := range m.leaseTerms {
		leases[origin] = term
	}
	m.mu.Unlock()

	// Deterministic order keeps checkpoint bytes reproducible.
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].name < snaps[j].name })

	var records [][]byte
	if pol != nil {
		records = append(records, appendRecord(nil, recPolicy, encodePolicy(&policySnapshot{
			Fingerprint: pol.Fingerprint, Views: pol.Views, DBHash: pol.DBHash,
		})))
	}
	// The policy lifecycle survives compaction: the active version's
	// stage+promote pair, then the staged candidate (version.go).
	records = lifecycleRecords(records, aVer, cVer)
	// Lease terms survive compaction too — a follower that forgot a
	// granted term could accept a stale owner's ships after restart.
	for _, origin := range sortedUintKeys(leases) {
		records = append(records, appendRecord(nil, recLease, encodeLease(origin, leases[origin])))
	}
	for _, s := range snaps {
		records = append(records, appendRecord(nil, recSession, encodeSession(s.name, s.attrs)))
		for i := range s.entries {
			records = append(records, appendRecord(nil, recAppend, encodeAppend(s.name, s.base+uint64(i), &s.entries[i])))
		}
	}
	if err := writeCheckpointFile(m.log.dir, cut, uint64(len(snaps)), records); err != nil {
		return err
	}
	m.appendsSinceCkpt.Store(0)
	m.log.checkpoints.Add(1)
	m.mCheckpoints.Inc()
	m.mCheckpointMicros.ObserveSince(start)
	m.log.compact(cut)
	return nil
}

// Flush forces everything acknowledged so far onto stable storage —
// the proxy's drain path.
func (m *Manager) Flush() error { return m.log.Sync() }

// Close checkpoints (so restart replays one small file instead of the
// whole tail), flushes, and closes the WAL. It first waits for any
// in-flight background checkpoint and then holds the checkpoint slot
// for good, so the final checkpoint cannot run concurrently with an
// auto-checkpoint and no auto-checkpoint can rotate the log after it
// is closed.
func (m *Manager) Close() error {
	if m.mgrClosed.Swap(true) {
		return m.log.Close() // idempotent
	}
	for !m.ckptRunning.CompareAndSwap(false, true) {
		time.Sleep(time.Millisecond)
	}
	// Deliberately never released: the manager is closed.
	if err := m.Checkpoint(); err != nil {
		m.logf("durable: final checkpoint failed: %v", err)
	}
	return m.log.Close()
}

// Stats returns the WAL counters.
func (m *Manager) Stats() Stats { return m.log.Stats() }

// RecoveredSessionCount reports sessions replayed at open (claimed or
// not).
func (m *Manager) RecoveredSessionCount() int { return len(m.recovery.Sessions) }

// RecoveredEntryCount reports history entries replayed at open.
func (m *Manager) RecoveredEntryCount() int {
	n := 0
	for _, s := range m.recovery.Sessions {
		n += len(s.Entries)
	}
	return n
}
