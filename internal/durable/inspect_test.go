package durable

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
)

// buildInspectableWAL writes a small WAL with a checkpoint and live
// segments, returning the directory.
func buildInspectableWAL(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	m, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := m.Session("insp", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		tr.Append(testEntry(t, "SELECT id FROM events WHERE uid = ?",
			sqlparser.PositionalArgs(int64(i)), [][]sqlvalue.Value{intRow(int64(i))}))
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tr.Append(testEntry(t, "SELECT id FROM events WHERE uid = ?",
		sqlparser.PositionalArgs(int64(9)), nil))
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestInspectWalksFilesAndRecords(t *testing.T) {
	dir := buildInspectableWAL(t)
	var files []FileInfo
	var recs []Record
	if err := Inspect(dir, func(fi FileInfo) { files = append(files, fi) },
		func(r Record) { recs = append(recs, r) }); err != nil {
		t.Fatal(err)
	}
	if len(files) < 2 {
		t.Fatalf("expected at least a checkpoint and a segment, got %d files: %+v", len(files), files)
	}
	sawCkpt, sawSeg := false, false
	for _, fi := range files {
		if fi.Err != "" || fi.Torn {
			t.Fatalf("clean WAL reported damage: %+v", fi)
		}
		switch fi.Kind {
		case "checkpoint":
			sawCkpt = true
		case "segment":
			sawSeg = true
		}
	}
	if !sawCkpt || !sawSeg {
		t.Fatalf("kinds missing: ckpt=%v seg=%v", sawCkpt, sawSeg)
	}
	byType := map[string]int{}
	for _, r := range recs {
		if r.Err != "" {
			t.Fatalf("record decode error on clean WAL: %+v", r)
		}
		byType[r.Type]++
	}
	for _, want := range []string{"session", "append", "ckpt-meta", "ckpt-end"} {
		if byType[want] == 0 {
			t.Fatalf("no %s records decoded: %v", want, byType)
		}
	}
	// Append records carry session, absolute index, and SQL.
	for _, r := range recs {
		if r.Type == "append" {
			if r.Session != "insp" || r.SQL == "" {
				t.Fatalf("bad append record: %+v", r)
			}
		}
	}
}

func TestInspectReportsTornTail(t *testing.T) {
	dir := buildInspectableWAL(t)
	// Chop bytes off the newest segment to fake a crash mid-record.
	segs, err := listIndexed(dir, segPrefix, segSuffix)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	last := segs[0]
	for _, s := range segs {
		if s > last {
			last = s
		}
	}
	path := filepath.Join(dir, segName(last))
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-3); err != nil {
		t.Fatal(err)
	}
	torn := false
	if err := Inspect(dir, func(fi FileInfo) {
		if fi.Name == segName(last) {
			torn = fi.Torn && fi.TornBytes > 0
		}
	}, nil); err != nil {
		t.Fatal(err)
	}
	if !torn {
		t.Fatal("Inspect did not report the torn tail")
	}
}

func TestInspectEmptyDir(t *testing.T) {
	dir := t.TempDir()
	n := 0
	if err := Inspect(dir, func(FileInfo) { n++ }, nil); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("empty dir reported %d files", n)
	}
}
