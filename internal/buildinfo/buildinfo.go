// Package buildinfo carries the version identity stamped into every
// command at build time. The Makefile injects the values with
//
//	-ldflags "-X repro/internal/buildinfo.Version=... \
//	          -X repro/internal/buildinfo.Commit=... \
//	          -X repro/internal/buildinfo.Date=..."
//
// A plain `go build` (no ldflags) falls back to the module version and
// VCS metadata Go embeds on its own, so -version is never useless.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Stamped at link time via -X; see the Makefile's LDFLAGS.
var (
	Version = ""
	Commit  = ""
	Date    = ""
)

// String renders the one-line version banner the -version flag of
// every command prints.
func String(cmd string) string {
	v, c, d := Version, Commit, Date
	if bi, ok := debug.ReadBuildInfo(); ok {
		if v == "" && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			v = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				if c == "" {
					c = s.Value
				}
			case "vcs.time":
				if d == "" {
					d = s.Value
				}
			}
		}
	}
	if v == "" {
		v = "dev"
	}
	out := fmt.Sprintf("%s %s", cmd, v)
	if c != "" {
		if len(c) > 12 {
			c = c[:12]
		}
		out += fmt.Sprintf(" (%s)", c)
	}
	if d != "" {
		out += " built " + d
	}
	return out + " " + runtime.Version()
}
