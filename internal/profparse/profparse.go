// Package profparse is a minimal reader for pprof CPU profiles (the
// gzipped profile.proto protobuf runtime/pprof emits), just enough to
// answer "which functions burned the CPU": it decodes samples,
// locations, functions, and the string table, attributes each sample's
// value to its leaf frame (flat attribution), and returns the top-N
// functions. No protobuf dependency — the wire format is hand-decoded
// (varints plus length-delimited fields), the same discipline as the
// repo's other codecs.
//
// The saturation harness (cmd/acbench -saturate) uses it to turn each
// load step's in-memory CPU profile into a "limiting resource" line in
// BENCH_9.json without shelling out to `go tool pprof`.
package profparse

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
)

// Entry is one function's flat (leaf) share of the profile.
type Entry struct {
	Name string
	// Flat is the value attributed to samples whose leaf frame is this
	// function, in the profile's value unit (cpu-nanoseconds for a
	// runtime/pprof CPU profile).
	Flat int64
}

// profile.proto field numbers (only the ones we need).
const (
	fProfileSampleType  = 1
	fProfileSample      = 2
	fProfileLocation    = 4
	fProfileFunction    = 5
	fProfileStringTable = 6

	fValueTypeType = 1

	fSampleLocationID = 1
	fSampleValue      = 2

	fLocationID   = 1
	fLocationLine = 4

	fLineFunctionID = 1

	fFunctionID   = 1
	fFunctionName = 2
)

// wire types.
const (
	wtVarint = 0
	wtI64    = 1
	wtLen    = 2
	wtI32    = 5
)

type decoder struct{ b []byte }

func (d *decoder) done() bool { return len(d.b) == 0 }

func (d *decoder) varint() (uint64, error) {
	var v uint64
	for i := 0; i < 10; i++ {
		if len(d.b) == 0 {
			return 0, io.ErrUnexpectedEOF
		}
		c := d.b[0]
		d.b = d.b[1:]
		v |= uint64(c&0x7f) << (7 * i)
		if c < 0x80 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("profparse: varint overflow")
}

// tag reads one field tag, returning field number and wire type.
func (d *decoder) tag() (int, int, error) {
	v, err := d.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(v >> 3), int(v & 7), nil
}

// skip consumes one field's payload by wire type.
func (d *decoder) skip(wt int) error {
	switch wt {
	case wtVarint:
		_, err := d.varint()
		return err
	case wtI64:
		if len(d.b) < 8 {
			return io.ErrUnexpectedEOF
		}
		d.b = d.b[8:]
		return nil
	case wtLen:
		_, err := d.bytes()
		return err
	case wtI32:
		if len(d.b) < 4 {
			return io.ErrUnexpectedEOF
		}
		d.b = d.b[4:]
		return nil
	}
	return fmt.Errorf("profparse: unsupported wire type %d", wt)
}

func (d *decoder) bytes() ([]byte, error) {
	n, err := d.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.b)) {
		return nil, io.ErrUnexpectedEOF
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v, nil
}

// repeatedUint64 appends the values of one repeated-uint64 field
// occurrence: a packed length-delimited block or a single varint
// (both encodings are legal; runtime/pprof emits packed).
func repeatedUint64(d *decoder, wt int, out []uint64) ([]uint64, error) {
	if wt == wtLen {
		blk, err := d.bytes()
		if err != nil {
			return nil, err
		}
		pd := decoder{b: blk}
		for !pd.done() {
			v, err := pd.varint()
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	}
	v, err := d.varint()
	if err != nil {
		return nil, err
	}
	return append(out, v), nil
}

type sample struct {
	locs   []uint64
	values []int64
}

// Parse decodes a pprof profile (gzipped or raw) into flat per-leaf-
// function totals, using the LAST sample value (runtime/pprof CPU
// profiles carry [samples-count, cpu-nanoseconds]; the last is the
// time dimension).
func Parse(data []byte) ([]Entry, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("profparse: gunzip: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("profparse: gunzip: %w", err)
		}
		data = raw
	}

	var (
		samples   []sample
		locLeafFn = map[uint64]uint64{} // location id → leaf-line function id
		fnName    = map[uint64]int64{}  // function id → string table index
		strtab    []string
		numTypes  int
	)

	d := decoder{b: data}
	for !d.done() {
		field, wt, err := d.tag()
		if err != nil {
			return nil, err
		}
		switch field {
		case fProfileSampleType:
			if _, err := d.bytes(); err != nil {
				return nil, err
			}
			numTypes++
		case fProfileSample:
			blk, err := d.bytes()
			if err != nil {
				return nil, err
			}
			var s sample
			sd := decoder{b: blk}
			for !sd.done() {
				f, w, err := sd.tag()
				if err != nil {
					return nil, err
				}
				switch f {
				case fSampleLocationID:
					if s.locs, err = repeatedUint64(&sd, w, s.locs); err != nil {
						return nil, err
					}
				case fSampleValue:
					var vals []uint64
					if vals, err = repeatedUint64(&sd, w, nil); err != nil {
						return nil, err
					}
					for _, v := range vals {
						s.values = append(s.values, int64(v))
					}
				default:
					if err := sd.skip(w); err != nil {
						return nil, err
					}
				}
			}
			samples = append(samples, s)
		case fProfileLocation:
			blk, err := d.bytes()
			if err != nil {
				return nil, err
			}
			var id, leafFn uint64
			haveLine := false
			ld := decoder{b: blk}
			for !ld.done() {
				f, w, err := ld.tag()
				if err != nil {
					return nil, err
				}
				switch f {
				case fLocationID:
					if id, err = ld.varint(); err != nil {
						return nil, err
					}
				case fLocationLine:
					lblk, err := ld.bytes()
					if err != nil {
						return nil, err
					}
					// The FIRST line of a location is the innermost
					// (leaf-most after inlining); keep only that one.
					if haveLine {
						continue
					}
					haveLine = true
					lld := decoder{b: lblk}
					for !lld.done() {
						lf, lw, err := lld.tag()
						if err != nil {
							return nil, err
						}
						if lf == fLineFunctionID {
							if leafFn, err = lld.varint(); err != nil {
								return nil, err
							}
						} else if err := lld.skip(lw); err != nil {
							return nil, err
						}
					}
				default:
					if err := ld.skip(w); err != nil {
						return nil, err
					}
				}
			}
			locLeafFn[id] = leafFn
		case fProfileFunction:
			blk, err := d.bytes()
			if err != nil {
				return nil, err
			}
			var id uint64
			var name int64
			fd := decoder{b: blk}
			for !fd.done() {
				f, w, err := fd.tag()
				if err != nil {
					return nil, err
				}
				switch f {
				case fFunctionID:
					if id, err = fd.varint(); err != nil {
						return nil, err
					}
				case fFunctionName:
					v, err := fd.varint()
					if err != nil {
						return nil, err
					}
					name = int64(v)
				default:
					if err := fd.skip(w); err != nil {
						return nil, err
					}
				}
			}
			fnName[id] = name
		case fProfileStringTable:
			s, err := d.bytes()
			if err != nil {
				return nil, err
			}
			strtab = append(strtab, string(s))
		default:
			if err := d.skip(wt); err != nil {
				return nil, err
			}
		}
	}

	// Value index: the last declared sample type (cpu-nanoseconds in a
	// runtime/pprof CPU profile).
	vi := numTypes - 1
	if vi < 0 {
		vi = 0
	}

	flat := map[string]int64{}
	for _, s := range samples {
		if len(s.locs) == 0 || len(s.values) == 0 {
			continue
		}
		idx := vi
		if idx >= len(s.values) {
			idx = len(s.values) - 1
		}
		name := "<unknown>"
		if fid, ok := locLeafFn[s.locs[0]]; ok {
			if si, ok := fnName[fid]; ok && si >= 0 && int(si) < len(strtab) {
				name = strtab[si]
			}
		}
		flat[name] += s.values[idx]
	}

	out := make([]Entry, 0, len(flat))
	for n, v := range flat {
		out = append(out, Entry{Name: n, Flat: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flat != out[j].Flat {
			return out[i].Flat > out[j].Flat
		}
		return out[i].Name < out[j].Name
	})
	return out, nil
}

// Top parses the profile and returns its n heaviest leaf functions.
func Top(data []byte, n int) ([]Entry, error) {
	entries, err := Parse(data)
	if err != nil {
		return nil, err
	}
	if len(entries) > n {
		entries = entries[:n]
	}
	return entries, nil
}
