package profparse

import (
	"bytes"
	"runtime/pprof"
	"testing"
	"time"
)

// pb is a minimal protobuf writer for building test profiles.
type pb struct{ b []byte }

func (p *pb) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

func (p *pb) tag(field, wt int) { p.varint(uint64(field<<3 | wt)) }

func (p *pb) lenField(field int, body []byte) {
	p.tag(field, wtLen)
	p.varint(uint64(len(body)))
	p.b = append(p.b, body...)
}

func (p *pb) varintField(field int, v uint64) {
	p.tag(field, wtVarint)
	p.varint(v)
}

func (p *pb) packed(field int, vals ...uint64) {
	var inner pb
	for _, v := range vals {
		inner.varint(v)
	}
	p.lenField(field, inner.b)
}

// buildProfile hand-encodes a two-sample CPU profile:
//
//	sample 1: stack [loc1 loc2], values [3, 300] (leaf = loc1 = fnA)
//	sample 2: stack [loc2],      values [1, 100] (leaf = loc2 = fnB)
//	sample 3: stack [loc1],      values [2, 250] (leaf = loc1 = fnA)
//
// with sample types [samples-count, cpu-nanoseconds]; flat attribution
// over the LAST value dimension must yield fnA=550, fnB=100.
func buildProfile() []byte {
	var root pb

	// Two sample types (content irrelevant to the parser beyond count).
	var vt pb
	vt.varintField(fValueTypeType, 1)
	root.lenField(fProfileSampleType, vt.b)
	root.lenField(fProfileSampleType, vt.b)

	sampleOf := func(locs []uint64, vals []uint64) []byte {
		var s pb
		s.packed(fSampleLocationID, locs...)
		s.packed(fSampleValue, vals...)
		return s.b
	}
	root.lenField(fProfileSample, sampleOf([]uint64{1, 2}, []uint64{3, 300}))
	root.lenField(fProfileSample, sampleOf([]uint64{2}, []uint64{1, 100}))
	root.lenField(fProfileSample, sampleOf([]uint64{1}, []uint64{2, 250}))

	locOf := func(id, fnID uint64) []byte {
		var line pb
		line.varintField(fLineFunctionID, fnID)
		var loc pb
		loc.varintField(fLocationID, id)
		loc.lenField(fLocationLine, line.b)
		return loc.b
	}
	root.lenField(fProfileLocation, locOf(1, 10))
	root.lenField(fProfileLocation, locOf(2, 20))

	fnOf := func(id uint64, nameIdx uint64) []byte {
		var fn pb
		fn.varintField(fFunctionID, id)
		fn.varintField(fFunctionName, nameIdx)
		return fn.b
	}
	root.lenField(fProfileFunction, fnOf(10, 1))
	root.lenField(fProfileFunction, fnOf(20, 2))

	// String table: index 0 must be "".
	for _, s := range []string{"", "fnA", "fnB"} {
		root.lenField(fProfileStringTable, []byte(s))
	}
	return root.b
}

func TestParseHandEncoded(t *testing.T) {
	entries, err := Parse(buildProfile())
	if err != nil {
		t.Fatal(err)
	}
	want := []Entry{{Name: "fnA", Flat: 550}, {Name: "fnB", Flat: 100}}
	if len(entries) != len(want) {
		t.Fatalf("got %d entries (%v), want %d", len(entries), entries, len(want))
	}
	for i, e := range entries {
		if e != want[i] {
			t.Errorf("entry %d: got %+v, want %+v", i, e, want[i])
		}
	}
}

func TestTopBounds(t *testing.T) {
	entries, err := Top(buildProfile(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name != "fnA" {
		t.Fatalf("Top(1) = %v, want [fnA]", entries)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte{0xff, 0xff, 0xff}); err == nil {
		t.Fatal("want error on truncated varint input")
	}
}

// TestParseRealProfile smokes the parser against an actual
// runtime/pprof capture (gzipped), burning a little CPU so the profile
// is non-empty on most runs; an empty profile is tolerated (CI boxes
// can be too quiet for the 100Hz sampler) but a parse error is not.
func TestParseRealProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("cannot start CPU profile: %v", err)
	}
	deadline := time.Now().Add(150 * time.Millisecond)
	x := 0
	for time.Now().Before(deadline) {
		for i := 0; i < 1e5; i++ {
			x += i * i
		}
	}
	pprof.StopCPUProfile()
	_ = x
	entries, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("parse real profile: %v", err)
	}
	t.Logf("parsed %d flat entries from real profile", len(entries))
	for i, e := range entries {
		if i >= 5 {
			break
		}
		t.Logf("  %-50s %d", e.Name, e.Flat)
	}
}
