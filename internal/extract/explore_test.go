package extract

import (
	"testing"
)

func TestExploreRecoversCalendarPolicy(t *testing.T) {
	s := calendarSchema(t)
	app := showEventApp()
	db := seededDB(t, s)
	opts := DefaultMineOptions()
	opts.SessionParam = map[string]string{"user_id": "MyUId"}
	p, err := ExploreAndMine(s, app, db, opts)
	if err != nil {
		t.Fatal(err)
	}
	acc := Compare(p, groundTruth(t, s))
	if acc.Recall() < 1 {
		t.Fatalf("exploration should cover the ground truth:\n%s\nacc %+v", p, acc)
	}
	if acc.Precision() < 1 {
		t.Fatalf("exploration should not over-generalize:\n%s\nacc %+v", p, acc)
	}
}

func TestExplorerCandidateValues(t *testing.T) {
	s := calendarSchema(t)
	app := showEventApp()
	db := seededDB(t, s)
	ex := &Explorer{Schema: s, App: app, DB: db, MaxValuesPerParam: 3}
	cands := ex.candidateValues()
	vals, ok := cands["event_id"]
	if !ok || len(vals) < 2 {
		t.Fatalf("event_id candidates: %v", vals)
	}
	// Candidates should include actual event ids from the database and
	// the guaranteed miss.
	hasReal, hasMiss := false, false
	for _, v := range vals {
		switch v.Int() {
		case 2, 5:
			hasReal = true
		case 999983:
			hasMiss = true
		}
	}
	if !hasReal || !hasMiss {
		t.Fatalf("candidates should mix real ids and a miss: %v", vals)
	}
}

func TestExplorerSkipsInvalidInputsGracefully(t *testing.T) {
	// A database with no rows: every probe misses, abort paths run,
	// but exploration must not error.
	s := calendarSchema(t)
	app := showEventApp()
	db := emptyDB(t, s)
	opts := DefaultMineOptions()
	opts.SessionParam = map[string]string{"user_id": "MyUId"}
	ex := &Explorer{Schema: s, App: app, DB: db, Options: opts}
	p, samples, err := ex.Explore()
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("abort-path probes still issue the check query")
	}
	// Only the access-check view is derivable from abort paths.
	if p == nil || len(p.Views) == 0 {
		t.Fatalf("expected at least the probe view: %v", p)
	}
}
