package extract

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cq"
	"repro/internal/policy"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
)

// MinedEntry is one observed query in a black-box trace.
type MinedEntry struct {
	SQL     string
	Args    []sqlvalue.Value
	Columns []string
	Rows    [][]sqlvalue.Value
}

// Sample is one observed handler invocation: the principal's session
// attributes, the request parameters, and the queries the handler
// issued. Params are not used by mining itself but let a GuardProber
// replay the invocation.
type Sample struct {
	Handler string
	Session map[string]sqlvalue.Value
	Params  map[string]sqlvalue.Value
	Entries []MinedEntry
}

// GuardProber re-runs a sample's handler against a database mutated so
// that guard entry guardIdx returns no rows, and reports the SQL
// statements the re-run issued. Mining uses it to confirm that a
// candidate guard is causal (§3.2.2's active discovery): if the
// guarded query is still issued without the guard row, the correlation
// was coincidental.
type GuardProber func(s Sample, guardIdx int) ([]string, error)

// MineOptions configure black-box extraction.
type MineOptions struct {
	// SessionParam maps session attribute names to policy parameter
	// names (e.g. "user_id" -> "MyUId").
	SessionParam map[string]string
	// UseHints generalizes constants in columns marked Opaque in the
	// schema even when they don't vary across samples.
	UseHints bool
	// InferGuards enables access-check inference from value
	// correlations with earlier queries.
	InferGuards bool
	// Prober, when set, actively confirms inferred guards.
	Prober GuardProber
	// MinimizePolicy drops views subsumed by others.
	MinimizePolicy bool
}

// DefaultMineOptions enables everything except probing (which needs
// an app runner).
func DefaultMineOptions() MineOptions {
	return MineOptions{UseHints: true, InferGuards: true, MinimizePolicy: true}
}

// Mine derives a draft policy from concrete traces (the
// language-agnostic extraction of §3.2.2).
func Mine(s *schema.Schema, samples []Sample, opts MineOptions) (*policy.Policy, error) {
	m := &miner{schema: s, opts: opts, tr: &cq.Translator{Schema: s}}
	byHandler := map[string][]Sample{}
	var order []string
	for _, sm := range samples {
		if _, ok := byHandler[sm.Handler]; !ok {
			order = append(order, sm.Handler)
		}
		byHandler[sm.Handler] = append(byHandler[sm.Handler], sm)
	}
	var views []*cq.Query
	seen := map[string]bool{}
	for _, h := range order {
		vs, err := m.mineHandler(byHandler[h])
		if err != nil {
			return nil, fmt.Errorf("extract: mining %s: %w", h, err)
		}
		for _, v := range vs {
			k := v.CanonicalKey()
			if !seen[k] {
				seen[k] = true
				views = append(views, v)
			}
		}
	}
	if !opts.MinimizePolicy {
		p := &policy.Policy{Schema: s}
		for i, v := range views {
			sql, err := cq.ToSQL(s, v)
			if err != nil {
				return nil, err
			}
			if err := p.Add(fmt.Sprintf("X%d", i+1), sql); err != nil {
				return nil, err
			}
		}
		return p, nil
	}
	return assemblePolicy(s, views)
}

type miner struct {
	schema *schema.Schema
	opts   MineOptions
	tr     *cq.Translator
}

// entryKey aligns entries across samples: SQL text plus occurrence
// number of that SQL within the trace.
type entryKey struct {
	sql string
	n   int
}

// aligned is one query site observed across samples.
type aligned struct {
	key entryKey
	// pos[s] is the entry index in sample s's trace (-1 when the
	// sample didn't reach this site).
	pos []int
}

// minedView carries a generalized entry's CQ plus metadata for guard
// correlation.
type minedView struct {
	q *cq.Query
	// argTerm[k] is the CQ term for argument position k.
	argTerm []cq.Term
	// headTerm[c] is the CQ term for result column c.
	headTerm []cq.Term
	// guards lists the aligned-site indices conjoined as guards.
	guards []int
}

func (m *miner) mineHandler(samples []Sample) ([]*cq.Query, error) {
	sites := alignEntries(samples)
	generalized := make([]*minedView, len(sites))

	for si, site := range sites {
		mv, err := m.generalizeSite(samples, sites, generalized, si, site)
		if err != nil {
			return nil, err
		}
		generalized[si] = mv
	}

	// Guard probing: drop guards the prober refutes.
	if m.opts.Prober != nil {
		for si, mv := range generalized {
			if mv == nil || len(mv.guards) == 0 {
				continue
			}
			var confirmed []int
			for _, g := range mv.guards {
				ok, err := m.probeGuard(samples, sites, si, g)
				if err != nil {
					return nil, err
				}
				if ok {
					confirmed = append(confirmed, g)
				}
			}
			if len(confirmed) != len(mv.guards) {
				rebuilt, err := m.generalizeSiteWithGuards(samples, sites, generalized, si, sites[si], confirmed)
				if err != nil {
					return nil, err
				}
				generalized[si] = rebuilt
			}
		}
	}

	var out []*cq.Query
	for _, mv := range generalized {
		if mv != nil {
			view := mv.q.Clone()
			view.NormalizeHead()
			view = cq.ReduceFKAtoms(m.schema, view)
			out = append(out, cq.Minimize(view))
		}
	}
	return out, nil
}

// alignEntries computes the query sites across samples.
func alignEntries(samples []Sample) []aligned {
	var sites []aligned
	index := map[entryKey]int{}
	for sIdx, sm := range samples {
		counts := map[string]int{}
		for eIdx, e := range sm.Entries {
			k := entryKey{sql: e.SQL, n: counts[e.SQL]}
			counts[e.SQL]++
			at, ok := index[k]
			if !ok {
				at = len(sites)
				index[k] = at
				sites = append(sites, aligned{key: k, pos: make([]int, len(samples))})
				for i := range sites[at].pos {
					sites[at].pos[i] = -1
				}
			}
			sites[at].pos[sIdx] = eIdx
		}
	}
	return sites
}

// generalizeSite anti-unifies one site across samples into a view.
func (m *miner) generalizeSite(samples []Sample, sites []aligned, prior []*minedView, si int, site aligned) (*minedView, error) {
	guards := []int{}
	if m.opts.InferGuards {
		guards = m.candidateGuards(samples, sites, prior, si, site)
	}
	return m.generalizeSiteWithGuards(samples, sites, prior, si, site, guards)
}

func (m *miner) generalizeSiteWithGuards(samples []Sample, sites []aligned, prior []*minedView, si int, site aligned, guards []int) (*minedView, error) {
	// Representative entry (first sample that has the site).
	rep := -1
	for s, p := range site.pos {
		if p >= 0 {
			rep = s
			break
		}
	}
	if rep == -1 {
		return nil, nil
	}
	entry := samples[rep].Entries[site.pos[rep]]

	// Decide a term per argument position.
	nArgs := len(entry.Args)
	argTerms := make([]cq.Term, nArgs)
	opaquePos, err := m.opaqueArgPositions(entry.SQL, nArgs)
	if err != nil {
		return nil, err
	}
	for k := 0; k < nArgs; k++ {
		argTerms[k] = m.generalizeArg(samples, site, si, k, opaquePos[k])
	}

	// Translate with named parameters standing for the arg positions.
	sel, err := sqlparser.ParseSelect(entry.SQL)
	if err != nil {
		return nil, err
	}
	marked := sqlparser.MapExprs(sel, func(e sqlparser.Expr) sqlparser.Expr {
		if p, ok := e.(*sqlparser.Param); ok && p.Name == "" {
			return &sqlparser.Param{Name: fmt.Sprintf("__arg%d", p.Index), Index: -1}
		}
		return e
	}).(*sqlparser.SelectStmt)
	ucq, err := m.tr.TranslateSelect(marked)
	if err != nil {
		return nil, err
	}
	if len(ucq) != 1 {
		return nil, fmt.Errorf("disjunctive query %q not supported by the miner", entry.SQL)
	}
	q := ucq[0].RenameVars(fmt.Sprintf("s%d_", si))
	q = q.Substitute(func(t cq.Term) cq.Term {
		if t.IsParam() && strings.HasPrefix(t.Param, "__arg") {
			var k int
			fmt.Sscanf(t.Param, "__arg%d", &k)
			if k >= 0 && k < nArgs {
				return argTerms[k]
			}
		}
		return t
	})

	mv := &minedView{argTerm: argTerms, guards: guards}

	// Record head terms for later correlation, then expose
	// generalized argument variables in the head.
	mv.headTerm = append([]cq.Term(nil), q.Head...)
	exposed := map[string]bool{}
	for _, t := range q.Head {
		if t.IsVar() {
			exposed[t.Var] = true
		}
	}
	for k, t := range argTerms {
		if t.IsVar() && !exposed[t.Var] {
			q.Head = append(q.Head, t)
			q.HeadNames = append(q.HeadNames, fmt.Sprintf("arg%d", k))
			exposed[t.Var] = true
		}
	}

	// Conjoin guard bodies with correlation: a guard contributes its
	// atoms; shared terms arise from argument/result unification.
	for _, g := range guards {
		gv := prior[g]
		if gv == nil {
			continue
		}
		// Correlate: for every arg position k of this site whose value
		// matches the guard's result column c (in all samples), unify
		// argTerms[k] with the guard's head term c. Arg-to-arg
		// correlations share terms already via generalizeArg when the
		// values are session attributes; for free variables, unify
		// here too.
		corr := m.correlations(samples, sites, prior, si, g)
		sub := func(t cq.Term) cq.Term { return t }
		if len(corr) > 0 {
			pairs := map[string]cq.Term{}
			for k, gt := range corr {
				if k < len(argTerms) && argTerms[k].IsVar() {
					pairs[argTerms[k].Var] = gt
				}
			}
			sub = func(t cq.Term) cq.Term {
				if t.IsVar() {
					if to, ok := pairs[t.Var]; ok {
						return to
					}
				}
				return t
			}
		}
		q = q.Substitute(sub)
		for i, t := range mv.headTerm {
			mv.headTerm[i] = applySub(sub, t)
		}
		for i, t := range argTerms {
			argTerms[i] = applySub(sub, t)
		}
		q.Atoms = append(q.Atoms, gv.q.Atoms...)
		q.Comps = append(q.Comps, gv.q.Comps...)
	}

	mv.q = q
	return mv, nil
}

func applySub(sub func(cq.Term) cq.Term, t cq.Term) cq.Term {
	if t.IsConst() {
		return t
	}
	return sub(t)
}

// generalizeArg picks the term for one argument position.
func (m *miner) generalizeArg(samples []Sample, site aligned, si, k int, opaque bool) cq.Term {
	type obs struct {
		val  sqlvalue.Value
		sess map[string]sqlvalue.Value
	}
	var vals []obs
	for s, p := range site.pos {
		if p < 0 {
			continue
		}
		e := samples[s].Entries[p]
		if k < len(e.Args) {
			vals = append(vals, obs{val: e.Args[k], sess: samples[s].Session})
		}
	}
	if len(vals) == 0 {
		return cq.V(fmt.Sprintf("s%d_free_a%d", si, k))
	}
	// Session correlation: a session attribute whose value equals the
	// argument in every observation, with at least two distinct
	// session values giving evidence.
	var attrs []string
	for a := range vals[0].sess {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	for _, a := range attrs {
		all := true
		distinct := map[string]bool{}
		for _, o := range vals {
			sv, ok := o.sess[a]
			if !ok || !sqlvalue.Identical(sv, o.val) {
				all = false
				break
			}
			distinct[sv.Key()] = true
		}
		if all && len(distinct) >= 2 {
			name, ok := m.opts.SessionParam[a]
			if !ok {
				name = "My" + capitalize(a)
			}
			return cq.P(name)
		}
	}
	// Constant across samples?
	same := true
	for _, o := range vals[1:] {
		if !sqlvalue.Identical(o.val, vals[0].val) {
			same = false
			break
		}
	}
	if same && !(m.opts.UseHints && opaque) {
		return cq.C(vals[0].val)
	}
	return cq.V(fmt.Sprintf("s%d_free_a%d", si, k))
}

// opaqueArgPositions reports, per argument position, whether it
// compares against a column marked Opaque in the schema.
func (m *miner) opaqueArgPositions(sql string, nArgs int) ([]bool, error) {
	out := make([]bool, nArgs)
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	marked := sqlparser.MapExprs(sel, func(e sqlparser.Expr) sqlparser.Expr {
		if p, ok := e.(*sqlparser.Param); ok && p.Name == "" {
			return &sqlparser.Param{Name: fmt.Sprintf("__arg%d", p.Index), Index: -1}
		}
		return e
	}).(*sqlparser.SelectStmt)
	ucq, err := m.tr.TranslateSelect(marked)
	if err != nil {
		return nil, err
	}
	for _, q := range ucq {
		for _, a := range q.Atoms {
			tab, ok := m.schema.Table(a.Table)
			if !ok {
				continue
			}
			for ci, t := range a.Args {
				if t.IsParam() && strings.HasPrefix(t.Param, "__arg") {
					var k int
					fmt.Sscanf(t.Param, "__arg%d", &k)
					if k >= 0 && k < nArgs && m.columnOpaque(tab, ci) {
						out[k] = true
					}
				}
			}
		}
	}
	return out, nil
}

// columnOpaque reports whether the column is marked opaque, directly
// or through a foreign key to an opaque column.
func (m *miner) columnOpaque(tab *schema.Table, ci int) bool {
	if tab.Columns[ci].Opaque {
		return true
	}
	name := tab.Columns[ci].Name
	for _, fk := range tab.ForeignKeys {
		for i, c := range fk.Columns {
			if !strings.EqualFold(c, name) {
				continue
			}
			ref, ok := m.schema.Table(fk.RefTable)
			if !ok {
				continue
			}
			if rc, ok := ref.Column(fk.RefColumns[i]); ok && rc.Opaque {
				return true
			}
		}
	}
	return false
}

// candidateGuards finds earlier sites whose results or arguments the
// current site's arguments correlate with, in every sample that
// reached both.
func (m *miner) candidateGuards(samples []Sample, sites []aligned, prior []*minedView, si int, site aligned) []int {
	var guards []int
	for gi := 0; gi < si; gi++ {
		if prior[gi] == nil {
			continue
		}
		if len(m.correlations(samples, sites, prior, si, gi)) > 0 || m.alwaysPrecedesNonEmpty(samples, sites, si, gi) {
			guards = append(guards, gi)
		}
	}
	return guards
}

// alwaysPrecedesNonEmpty reports whether guard site gi appears before
// site si with a non-empty result in every sample that reached si,
// and shares a session-correlated argument (a pure access check like
// Listing 1's attendance probe).
func (m *miner) alwaysPrecedesNonEmpty(samples []Sample, sites []aligned, si, gi int) bool {
	shared := false
	for s := range samples {
		p, g := sites[si].pos[s], sites[gi].pos[s]
		if p < 0 {
			continue
		}
		if g < 0 || g >= p {
			return false
		}
		ge := samples[s].Entries[g]
		if len(ge.Rows) == 0 {
			return false
		}
		// Share at least one argument value with the guarded query.
		pe := samples[s].Entries[p]
		for _, av := range pe.Args {
			for _, gv := range ge.Args {
				if sqlvalue.Identical(av, gv) {
					shared = true
				}
			}
		}
	}
	return shared
}

// correlations maps argument positions of site si to guard-site head
// terms when the values coincide in every sample.
func (m *miner) correlations(samples []Sample, sites []aligned, prior []*minedView, si, gi int) map[int]cq.Term {
	out := map[int]cq.Term{}
	if gi >= len(prior) || prior[gi] == nil {
		return out
	}
	// Try each (arg position, result column) pair.
	rep := -1
	for s, p := range sites[si].pos {
		if p >= 0 && sites[gi].pos[s] >= 0 {
			rep = s
			break
		}
	}
	if rep < 0 {
		return out
	}
	nArgs := len(samples[rep].Entries[sites[si].pos[rep]].Args)
	nCols := len(samples[rep].Entries[sites[gi].pos[rep]].Columns)
	nGArgs := len(samples[rep].Entries[sites[gi].pos[rep]].Args)
	// Arg-to-arg: this site's argument equals the guard's argument in
	// every sample that reached both.
	for k := 0; k < nArgs; k++ {
		for gm := 0; gm < nGArgs; gm++ {
			all := true
			evidence := 0
			for s := range samples {
				p, g := sites[si].pos[s], sites[gi].pos[s]
				if p < 0 {
					continue
				}
				if g < 0 || g >= p {
					all = false
					break
				}
				pe, ge := samples[s].Entries[p], samples[s].Entries[g]
				if k >= len(pe.Args) || gm >= len(ge.Args) || len(ge.Rows) == 0 ||
					!sqlvalue.Identical(pe.Args[k], ge.Args[gm]) {
					all = false
					break
				}
				evidence++
			}
			if all && evidence > 0 && gm < len(prior[gi].argTerm) {
				if _, dup := out[k]; !dup && !prior[gi].argTerm[gm].IsConst() {
					out[k] = prior[gi].argTerm[gm]
				}
			}
		}
	}
	for k := 0; k < nArgs; k++ {
		for c := 0; c < nCols; c++ {
			all := true
			evidence := 0
			for s := range samples {
				p, g := sites[si].pos[s], sites[gi].pos[s]
				if p < 0 {
					continue
				}
				if g < 0 || g >= p {
					all = false
					break
				}
				pe, ge := samples[s].Entries[p], samples[s].Entries[g]
				if k >= len(pe.Args) || len(ge.Rows) == 0 {
					all = false
					break
				}
				found := false
				for _, row := range ge.Rows {
					if c < len(row) && sqlvalue.Identical(row[c], pe.Args[k]) {
						found = true
						break
					}
				}
				if !found {
					all = false
					break
				}
				evidence++
			}
			if all && evidence > 0 && c < len(prior[gi].headTerm) {
				if _, dup := out[k]; !dup {
					out[k] = prior[gi].headTerm[c]
				}
			}
		}
	}
	return out
}

// probeGuard asks the prober to re-run the first applicable sample
// with the guard row removed; the guard is confirmed when the guarded
// query disappears from the re-run trace.
func (m *miner) probeGuard(samples []Sample, sites []aligned, si, gi int) (bool, error) {
	for s := range samples {
		p, g := sites[si].pos[s], sites[gi].pos[s]
		if p < 0 || g < 0 {
			continue
		}
		sqls, err := m.opts.Prober(samples[s], g)
		if err != nil {
			return false, err
		}
		target := samples[s].Entries[p].SQL
		count := 0
		for _, q := range sqls {
			if q == target {
				count++
			}
		}
		// Confirmed when the guarded query is issued fewer times
		// without the guard rows than with them.
		orig := 0
		for _, e := range samples[s].Entries {
			if e.SQL == target {
				orig++
			}
		}
		return count < orig, nil
	}
	return true, nil // no sample to probe with: keep the guard
}
