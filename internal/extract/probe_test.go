package extract

import (
	"testing"

	"repro/internal/sqlvalue"
)

// TestProberDropsCoincidentalGuard: two queries whose argument values
// coincide by accident (the handler issues them independently) get a
// spurious guard from value correlation; a prober that shows the
// second query is still issued without the first's rows must strip it.
func TestProberDropsCoincidentalGuard(t *testing.T) {
	s := calendarSchema(t)
	iv := func(n int64) sqlvalue.Value { return sqlvalue.NewInt(n) }

	mkSamples := func() []Sample {
		var out []Sample
		for _, uid := range []int64{1, 2} {
			// Entry 0: the user's attendance probe for event uid+10.
			// Entry 1: an event fetch for the same id — but in this
			// fake app the fetch is unconditional (no real guard).
			eid := uid + 10
			out = append(out, Sample{
				Handler: "h",
				Session: map[string]sqlvalue.Value{"user_id": iv(uid)},
				Entries: []MinedEntry{
					{
						SQL:     "SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?",
						Args:    []sqlvalue.Value{iv(uid), iv(eid)},
						Columns: []string{"1"},
						Rows:    [][]sqlvalue.Value{{iv(1)}},
					},
					{
						SQL:     "SELECT Title FROM Events WHERE EId = ?",
						Args:    []sqlvalue.Value{iv(eid)},
						Columns: []string{"Title"},
						Rows:    [][]sqlvalue.Value{{sqlvalue.NewText("x")}},
					},
				},
			})
		}
		return out
	}

	opts := DefaultMineOptions()
	opts.SessionParam = map[string]string{"user_id": "MyUId"}

	// Without probing: correlation installs the guard.
	guarded, err := Mine(s, mkSamples(), opts)
	if err != nil {
		t.Fatal(err)
	}
	hasGuardedFetch := false
	for _, v := range guarded.Views {
		for _, q := range v.CQs {
			hasTable := map[string]bool{}
			for _, a := range q.Atoms {
				hasTable[a.Table] = true
			}
			if hasTable["events"] && hasTable["attendance"] {
				hasGuardedFetch = true
			}
		}
	}
	if !hasGuardedFetch {
		t.Fatal("setup: correlation should install a guard without probing")
	}

	// With a prober reporting the fetch still happens when the guard
	// rows are removed, the guard must be dropped.
	opts.Prober = func(sm Sample, guardIdx int) ([]string, error) {
		var sqls []string
		for _, e := range sm.Entries {
			sqls = append(sqls, e.SQL) // unconditional re-issue
		}
		return sqls, nil
	}
	unguarded, err := Mine(s, mkSamples(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range unguarded.Views {
		for _, q := range v.CQs {
			hasEvents, hasAtt := false, false
			for _, a := range q.Atoms {
				if a.Table == "events" {
					hasEvents = true
				}
				if a.Table == "attendance" {
					hasAtt = true
				}
			}
			if hasEvents && hasAtt {
				t.Fatalf("refuted guard survived probing: %s", q)
			}
		}
	}
}

// TestProberConfirmsRealGuard: when the probe shows the fetch
// disappears without the guard rows, the guard stays.
func TestProberConfirmsRealGuard(t *testing.T) {
	s := calendarSchema(t)
	db := seededDB(t, s)
	app := showEventApp()
	samples := mineSamples(t, s, app, db, []struct {
		uid     int64
		eventID int64
	}{
		{uid: 1, eventID: 2},
		{uid: 2, eventID: 5},
	})
	opts := DefaultMineOptions()
	opts.SessionParam = map[string]string{"user_id": "MyUId"}
	opts.Prober = func(sm Sample, guardIdx int) ([]string, error) {
		// The guard is real: removing its rows aborts the handler
		// before the fetch.
		return []string{sm.Entries[guardIdx].SQL}, nil
	}
	p, err := Mine(s, samples, opts)
	if err != nil {
		t.Fatal(err)
	}
	acc := Compare(p, groundTruth(t, s))
	if !acc.Exact() {
		t.Fatalf("confirmed guard should keep extraction exact: %+v\n%s", acc, p)
	}
	// Sanity: the guarded fetch view still joins both tables.
	joined := false
	for _, v := range p.Views {
		for _, q := range v.CQs {
			tables := map[string]bool{}
			for _, a := range q.Atoms {
				tables[a.Table] = true
			}
			if tables["events"] && tables["attendance"] {
				joined = true
			}
		}
	}
	if !joined {
		t.Fatal("guarded fetch view missing after confirmation")
	}
}
