// Package extract implements the paper's §3 proposal — policy
// extraction: automatically generating a maximally restrictive policy
// that allows an application's current behaviour.
//
// Two extractors are provided, mirroring §3.2:
//
//   - Symbolic (language-based, §3.2.1): symbolically execute each
//     handler of an appdsl application, collect every (query, path
//     condition) pair, and turn each into a view — session attributes
//     become policy parameters, request parameters become exposed
//     columns, and non-empty-result path conditions become conjoined
//     guard subqueries.
//
//   - Mining (language-agnostic/black-box, §3.2.2): observe concrete
//     query traces across multiple principals, anti-unify aligned
//     queries (session-correlated constants become parameters,
//     varying constants become exposed columns), infer access-check
//     guards from value correlations, optionally confirm them by
//     active mutation probing, and minimize the resulting policy.
package extract

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/appdsl"
	"repro/internal/cq"
	"repro/internal/policy"
	"repro/internal/schema"
	"repro/internal/sqlparser"
)

// freeParamPrefix marks request-parameter placeholders during
// translation; they are generalized into exposed head variables.
const freeParamPrefix = "__free_"

// SymbolicExtract derives a draft policy from the application's
// handler code by symbolic execution.
func SymbolicExtract(s *schema.Schema, app *appdsl.App) (*policy.Policy, error) {
	var views []*cq.Query
	for _, h := range app.Handlers {
		paths, err := appdsl.SymbolicExecute(h)
		if err != nil {
			return nil, fmt.Errorf("extract: handler %s: %w", h.Name, err)
		}
		seen := make(map[string]bool)
		for _, p := range paths {
			for i := range p.Issued {
				vs, err := issuanceViews(s, app, p.Issued, i)
				if err != nil {
					return nil, fmt.Errorf("extract: handler %s: %w", h.Name, err)
				}
				for _, v := range vs {
					key := v.CanonicalKey()
					if seen[key] {
						continue
					}
					seen[key] = true
					views = append(views, v)
				}
			}
		}
	}
	return assemblePolicy(s, views)
}

// issuanceViews builds the view CQ(s) for issuance i of a path: the
// query's own disjuncts, each conjoined with the bodies of the
// non-empty guards in its path condition, with free request
// parameters generalized and exposed.
func issuanceViews(s *schema.Schema, app *appdsl.App, issued []appdsl.Issuance, i int) ([]*cq.Query, error) {
	// Translate every issuance this one depends on (guards +
	// row sources), each with a distinct variable prefix so their
	// variables stay disjoint yet internally consistent.
	needed := map[int]bool{}
	var mark func(idx int)
	mark = func(idx int) {
		if needed[idx] {
			return
		}
		needed[idx] = true
		for _, a := range issued[idx].Assumes {
			if a.NonEmpty {
				mark(a.Issuance)
			}
		}
		for _, src := range issued[idx].RowSources {
			if src < idx {
				mark(src)
			}
		}
	}
	for _, a := range issued[i].Assumes {
		if a.NonEmpty {
			mark(a.Issuance)
		}
	}
	for _, arg := range issued[i].Args {
		if rr, ok := arg.(appdsl.RowRef); ok {
			if src, ok2 := issued[i].RowSources[rr.Row]; ok2 {
				mark(src)
			}
		}
	}

	ctx := make(map[int]*translated)
	var order []int
	for idx := range needed {
		order = append(order, idx)
	}
	sort.Ints(order)
	for _, idx := range order {
		tq, err := translateIssuance(s, app, issued, idx, ctx, fmt.Sprintf("g%d_", idx))
		if err != nil {
			return nil, err
		}
		ctx[idx] = tq
	}

	main, err := translateIssuance(s, app, issued, i, ctx, "m_")
	if err != nil {
		return nil, err
	}

	var out []*cq.Query
	for _, disj := range main.disjuncts {
		v := disj.Clone()
		// Conjoin guard bodies (first disjunct of each guard; guards
		// in our DSL are single-disjunct access checks).
		for _, idx := range order {
			g := ctx[idx].disjuncts[0]
			v.Atoms = append(v.Atoms, g.Atoms...)
			v.Comps = append(v.Comps, g.Comps...)
		}
		generalizeFreeParams(v)
		v.NormalizeHead()
		v = cq.ReduceFKAtoms(s, v)
		out = append(out, cq.Minimize(v))
	}
	return out, nil
}

// translated is an issuance converted to CQ form.
type translated struct {
	disjuncts []*cq.Query
}

// translateIssuance translates issuance idx with symbolic arguments:
// session attributes become policy parameters, request parameters
// become free-parameter placeholders, and RowRefs resolve to the head
// term of the producing issuance's translation in ctx.
func translateIssuance(s *schema.Schema, app *appdsl.App, issued []appdsl.Issuance, idx int, ctx map[int]*translated, prefix string) (*translated, error) {
	iss := issued[idx]
	sel, err := sqlparser.ParseSelect(iss.SQL)
	if err != nil {
		return nil, err
	}
	// Replace positional parameters with symbolic named parameters.
	k := -1
	var replErr error
	replaced := sqlparser.MapExprs(sel, func(e sqlparser.Expr) sqlparser.Expr {
		p, ok := e.(*sqlparser.Param)
		if !ok || p.Name != "" {
			return e
		}
		k = p.Index
		if k >= len(iss.Args) {
			replErr = fmt.Errorf("extract: %q has more parameters than arguments", iss.SQL)
			return e
		}
		switch a := iss.Args[k].(type) {
		case appdsl.Lit:
			return &sqlparser.Literal{Value: a.Value}
		case appdsl.SessionRef:
			name, ok := app.SessionParam[a.Name]
			if !ok {
				name = "My" + capitalize(a.Name)
			}
			return &sqlparser.Param{Name: name, Index: -1}
		case appdsl.ParamRef:
			return &sqlparser.Param{Name: freeParamPrefix + a.Name, Index: -1}
		case appdsl.RowRef:
			// Marker resolved below at the CQ level.
			return &sqlparser.Param{Name: rowRefMarker(a), Index: -1}
		}
		replErr = fmt.Errorf("extract: unsupported argument %T", iss.Args[k])
		return e
	}).(*sqlparser.SelectStmt)
	if replErr != nil {
		return nil, replErr
	}

	ucq, err := (&cq.Translator{Schema: s}).TranslateSelect(replaced)
	if err != nil {
		return nil, err
	}
	out := &translated{}
	for di, q := range ucq {
		rq := q.RenameVars(prefix)
		// Resolve RowRef markers against the producing issuance's head.
		rq = rq.Substitute(func(t cq.Term) cq.Term {
			if !t.IsParam() || !strings.HasPrefix(t.Param, "__row_") {
				return t
			}
			rr, ok := parseRowRefMarker(t.Param)
			if !ok {
				return t
			}
			src, ok := iss.RowSources[rr.Row]
			if !ok {
				return t
			}
			srcT, ok := ctx[src]
			if !ok || len(srcT.disjuncts) == 0 {
				return t
			}
			g := srcT.disjuncts[0]
			for hi, name := range g.HeadNames {
				if strings.EqualFold(name, rr.Column) {
					return g.Head[hi]
				}
			}
			return t
		})
		out.disjuncts = append(out.disjuncts, rq)
		_ = di
	}
	if len(out.disjuncts) == 0 {
		return nil, fmt.Errorf("extract: %q translated to no disjuncts", iss.SQL)
	}
	return out, nil
}

// capitalize upper-cases the first byte for parameter naming.
func capitalize(s string) string {
	if s == "" {
		return s
	}
	if s[0] >= 'a' && s[0] <= 'z' {
		return string(s[0]-32) + s[1:]
	}
	return s
}

func rowRefMarker(r appdsl.RowRef) string {
	return "__row_" + r.Row + "__col_" + r.Column
}

func parseRowRefMarker(s string) (appdsl.RowRef, bool) {
	if !strings.HasPrefix(s, "__row_") {
		return appdsl.RowRef{}, false
	}
	rest := strings.TrimPrefix(s, "__row_")
	parts := strings.SplitN(rest, "__col_", 2)
	if len(parts) != 2 {
		return appdsl.RowRef{}, false
	}
	return appdsl.RowRef{Row: parts[0], Column: parts[1]}, true
}

// generalizeFreeParams replaces free request-parameter placeholders
// with fresh variables exposed in the head: the maximally restrictive
// view that allows the query for every value of the parameter.
func generalizeFreeParams(q *cq.Query) {
	vars := map[string]cq.Term{}
	repl := func(t cq.Term) cq.Term {
		if t.IsParam() && strings.HasPrefix(t.Param, freeParamPrefix) {
			v, ok := vars[t.Param]
			if !ok {
				v = cq.V("free_" + strings.TrimPrefix(t.Param, freeParamPrefix))
				vars[t.Param] = v
			}
			return v
		}
		return t
	}
	for i, t := range q.Head {
		q.Head[i] = repl(t)
	}
	for ai := range q.Atoms {
		for i, t := range q.Atoms[ai].Args {
			q.Atoms[ai].Args[i] = repl(t)
		}
	}
	for i := range q.Comps {
		q.Comps[i].Left = repl(q.Comps[i].Left)
		q.Comps[i].Right = repl(q.Comps[i].Right)
	}
	// Expose each generalized variable.
	names := make([]string, 0, len(vars))
	for n := range vars {
		names = append(names, n)
	}
	sort.Strings(names)
	have := map[string]bool{}
	for _, t := range q.Head {
		if t.IsVar() {
			have[t.Var] = true
		}
	}
	for _, n := range names {
		v := vars[n]
		if !have[v.Var] {
			q.Head = append(q.Head, v)
			q.HeadNames = append(q.HeadNames, v.Var)
		}
	}
}

// assemblePolicy renders views to SQL, names them, drops redundant
// ones (policy-size minimization), and builds the policy.
func assemblePolicy(s *schema.Schema, views []*cq.Query) (*policy.Policy, error) {
	// Drop views subsumed by others.
	var kept []*cq.Query
	for i, v := range views {
		redundant := false
		for j, w := range views {
			if i == j {
				continue
			}
			if cq.Contains(v, w) {
				if cq.Contains(w, v) && i < j {
					continue // equivalent: keep the first
				}
				redundant = true
				break
			}
		}
		if !redundant {
			kept = append(kept, v)
		}
	}
	p := &policy.Policy{Schema: s}
	for i, v := range kept {
		sql, err := cq.ToSQL(s, v)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("X%d", i+1)
		if err := p.Add(name, sql); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Accuracy compares an extracted policy against a ground truth.
type Accuracy struct {
	// TruthCovered counts ground-truth views contained in some
	// extracted view (recall numerator).
	TruthCovered int
	TruthTotal   int
	// ExtractedSound counts extracted views contained in some
	// ground-truth view (precision numerator: no over-generalization).
	ExtractedSound int
	ExtractedTotal int
}

// Recall is the fraction of ground-truth behaviour the extraction
// allows.
func (a Accuracy) Recall() float64 {
	if a.TruthTotal == 0 {
		return 1
	}
	return float64(a.TruthCovered) / float64(a.TruthTotal)
}

// Precision is the fraction of extracted views that don't exceed the
// ground truth.
func (a Accuracy) Precision() float64 {
	if a.ExtractedTotal == 0 {
		return 1
	}
	return float64(a.ExtractedSound) / float64(a.ExtractedTotal)
}

// Exact reports a perfect extraction.
func (a Accuracy) Exact() bool {
	return a.TruthCovered == a.TruthTotal && a.ExtractedSound == a.ExtractedTotal
}

// Compare measures extraction accuracy by view containment.
func Compare(extracted, truth *policy.Policy) Accuracy {
	var acc Accuracy
	acc.TruthTotal = len(truth.Views)
	acc.ExtractedTotal = len(extracted.Views)
	for _, tv := range truth.Views {
		for _, ev := range extracted.Views {
			if policy.Subsumes(truth.Schema, tv, ev) {
				acc.TruthCovered++
				break
			}
		}
	}
	for _, ev := range extracted.Views {
		for _, tv := range truth.Views {
			if policy.Subsumes(truth.Schema, ev, tv) {
				acc.ExtractedSound++
				break
			}
		}
	}
	return acc
}
