package extract

import (
	"testing"

	"repro/internal/appdsl"
	"repro/internal/cq"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
)

func calendarSchema(t testing.TB) *schema.Schema {
	t.Helper()
	s, err := schema.NewBuilder().
		Table("Users").
		NotNullCol("UId", sqlvalue.Int).
		NotNullCol("Name", sqlvalue.Text).
		PK("UId").Done().
		Table("Events").
		OpaqueCol("EId", sqlvalue.Int).
		NotNullCol("Title", sqlvalue.Text).
		Col("Notes", sqlvalue.Text).
		PK("EId").Done().
		Table("Attendance").
		NotNullCol("UId", sqlvalue.Int).
		NotNullCol("EId", sqlvalue.Int).
		PK("UId", "EId").
		FK([]string{"UId"}, "Users", []string{"UId"}).
		FK([]string{"EId"}, "Events", []string{"EId"}).Done().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// showEventApp is the paper's Listing 1 as an application.
func showEventApp() *appdsl.App {
	return &appdsl.App{
		Name:         "calendar",
		SessionParam: map[string]string{"user_id": "MyUId"},
		Handlers: []*appdsl.Handler{{
			Name:   "show_event",
			Params: []string{"event_id"},
			Body: []appdsl.Stmt{
				appdsl.Query{Dest: "check",
					SQL:  "SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?",
					Args: []appdsl.Val{appdsl.SessionRef{Name: "user_id"}, appdsl.ParamRef{Name: "event_id"}}},
				appdsl.If{Cond: appdsl.Empty{Result: "check"},
					Then: []appdsl.Stmt{appdsl.Abort{Message: "event not found"}}},
				appdsl.Query{Dest: "event",
					SQL:  "SELECT * FROM Events WHERE EId = ?",
					Args: []appdsl.Val{appdsl.ParamRef{Name: "event_id"}}},
				appdsl.Render{From: "event"},
			},
		}},
	}
}

// groundTruth is the paper's Example 2.1 policy.
func groundTruth(t testing.TB, s *schema.Schema) *policy.Policy {
	t.Helper()
	return policy.MustNew(s, map[string]string{
		"V1": "SELECT EId FROM Attendance WHERE UId = ?MyUId",
		"V2": "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?MyUId",
	})
}

func TestSymbolicExtractExample31(t *testing.T) {
	s := calendarSchema(t)
	p, err := SymbolicExtract(s, showEventApp())
	if err != nil {
		t.Fatal(err)
	}
	truth := groundTruth(t, s)
	acc := Compare(p, truth)
	if !acc.Exact() {
		t.Fatalf("extraction should recover V1=V2 exactly (paper Example 3.1).\nExtracted:\n%s\nAccuracy: %+v",
			p, acc)
	}
}

func TestSymbolicExtractExposesGuard(t *testing.T) {
	s := calendarSchema(t)
	p, err := SymbolicExtract(s, showEventApp())
	if err != nil {
		t.Fatal(err)
	}
	// One of the views must join Events with Attendance on the current
	// user (the guarded fetch); it must NOT allow arbitrary events.
	broad := cq.MustFromSQL(s, "SELECT * FROM Events")[0]
	for _, v := range p.Views {
		for _, q := range v.CQs {
			if cq.Contains(broad, q) {
				t.Fatalf("over-generalized view %s allows all events:\n%s", v.Name, q)
			}
		}
	}
}

// mineSamples runs the app concretely for several users and collects
// black-box samples.
func mineSamples(t *testing.T, s *schema.Schema, app *appdsl.App, db *engine.DB, runs []struct {
	uid     int64
	eventID int64
}) []Sample {
	t.Helper()
	var samples []Sample
	for _, r := range runs {
		var entries []MinedEntry
		runner := appdsl.RunnerFunc(func(sql string, args []sqlvalue.Value) (*appdsl.Rows, error) {
			res, err := db.QuerySQL(sql, sqlparser.Args{Positional: args})
			if err != nil {
				return nil, err
			}
			rows := make([][]sqlvalue.Value, len(res.Rows))
			for i, rr := range res.Rows {
				rows[i] = rr
			}
			entries = append(entries, MinedEntry{
				SQL: sql, Args: args, Columns: res.Columns, Rows: rows,
			})
			return &appdsl.Rows{Columns: res.Columns, Rows: rows}, nil
		})
		h, _ := app.Handler("show_event")
		_, err := appdsl.Run(h,
			map[string]sqlvalue.Value{"event_id": sqlvalue.NewInt(r.eventID)},
			map[string]sqlvalue.Value{"user_id": sqlvalue.NewInt(r.uid)},
			runner)
		if err != nil {
			t.Fatalf("run uid=%d event=%d: %v", r.uid, r.eventID, err)
		}
		samples = append(samples, Sample{
			Handler: "show_event",
			Session: map[string]sqlvalue.Value{"user_id": sqlvalue.NewInt(r.uid)},
			Entries: entries,
		})
	}
	return samples
}

func seededDB(t testing.TB, s *schema.Schema) *engine.DB {
	t.Helper()
	db := engine.New(s)
	db.MustExec("INSERT INTO Users (UId, Name) VALUES (1, 'alice'), (2, 'bob')")
	db.MustExec("INSERT INTO Events (EId, Title, Notes) VALUES (2, 'retro', 'x'), (5, 'ship', NULL)")
	db.MustExec("INSERT INTO Attendance (UId, EId) VALUES (1, 2), (2, 5)")
	return db
}

func TestMineRecoversPolicy(t *testing.T) {
	s := calendarSchema(t)
	app := showEventApp()
	db := seededDB(t, s)
	samples := mineSamples(t, s, app, db, []struct {
		uid     int64
		eventID int64
	}{
		{uid: 1, eventID: 2},
		{uid: 2, eventID: 5},
	})
	opts := DefaultMineOptions()
	opts.SessionParam = map[string]string{"user_id": "MyUId"}
	p, err := Mine(s, samples, opts)
	if err != nil {
		t.Fatal(err)
	}
	truth := groundTruth(t, s)
	acc := Compare(p, truth)
	if acc.Recall() < 1 {
		t.Fatalf("mining should cover the ground truth.\nExtracted:\n%s\nAccuracy: %+v", p, acc)
	}
	if acc.Precision() < 1 {
		t.Fatalf("mining should not over-generalize.\nExtracted:\n%s\nAccuracy: %+v", p, acc)
	}
}

func TestMineWithoutGuardsOverGeneralizes(t *testing.T) {
	s := calendarSchema(t)
	app := showEventApp()
	db := seededDB(t, s)
	samples := mineSamples(t, s, app, db, []struct {
		uid     int64
		eventID int64
	}{
		{uid: 1, eventID: 2},
		{uid: 2, eventID: 5},
	})
	opts := DefaultMineOptions()
	opts.SessionParam = map[string]string{"user_id": "MyUId"}
	opts.InferGuards = false
	p, err := Mine(s, samples, opts)
	if err != nil {
		t.Fatal(err)
	}
	acc := Compare(p, groundTruth(t, s))
	if acc.Precision() >= 1 {
		t.Fatalf("without guard inference the event fetch should over-generalize:\n%s", p)
	}
}

func TestMineSingleUserCannotGeneralizeSession(t *testing.T) {
	s := calendarSchema(t)
	app := showEventApp()
	db := seededDB(t, s)
	samples := mineSamples(t, s, app, db, []struct {
		uid     int64
		eventID int64
	}{
		{uid: 1, eventID: 2},
	})
	opts := DefaultMineOptions()
	opts.SessionParam = map[string]string{"user_id": "MyUId"}
	p, err := Mine(s, samples, opts)
	if err != nil {
		t.Fatal(err)
	}
	// With one principal, the UId constant can't be attributed to the
	// session; recall against the parameterized truth fails.
	acc := Compare(p, groundTruth(t, s))
	if acc.Recall() >= 1 {
		t.Fatalf("single-principal mining should not produce parameterized views:\n%s", p)
	}
}

func TestMineHintsGeneralizeOpaqueIds(t *testing.T) {
	s := calendarSchema(t)
	app := showEventApp()
	db := seededDB(t, s)
	// Both runs probe the SAME event id, so without hints the event id
	// would be kept as a constant.
	db.MustExec("INSERT INTO Attendance (UId, EId) VALUES (2, 2)")
	samples := mineSamples(t, s, app, db, []struct {
		uid     int64
		eventID int64
	}{
		{uid: 1, eventID: 2},
		{uid: 2, eventID: 2},
	})
	opts := DefaultMineOptions()
	opts.SessionParam = map[string]string{"user_id": "MyUId"}

	withHints, err := Mine(s, samples, opts)
	if err != nil {
		t.Fatal(err)
	}
	accH := Compare(withHints, groundTruth(t, s))
	if accH.Recall() < 1 {
		t.Fatalf("with opaque-ID hints the constant event id should generalize:\n%s", withHints)
	}

	opts.UseHints = false
	withoutHints, err := Mine(s, samples, opts)
	if err != nil {
		t.Fatal(err)
	}
	accN := Compare(withoutHints, groundTruth(t, s))
	if accN.Recall() >= 1 {
		t.Fatalf("without hints EId=2 should stay a constant (no generalization):\n%s", withoutHints)
	}
}

func TestCompareAccuracyMath(t *testing.T) {
	a := Accuracy{TruthCovered: 1, TruthTotal: 2, ExtractedSound: 3, ExtractedTotal: 3}
	if a.Recall() != 0.5 || a.Precision() != 1 || a.Exact() {
		t.Errorf("accuracy math: %+v", a)
	}
	empty := Accuracy{}
	if empty.Recall() != 1 || empty.Precision() != 1 {
		t.Error("empty accuracy should be vacuously perfect")
	}
}

func emptyDB(t testing.TB, s *schema.Schema) *engine.DB {
	t.Helper()
	return engine.New(s)
}
