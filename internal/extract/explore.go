package extract

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/appdsl"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
)

// Explorer implements §3.2.2's coverage step for black-box extraction:
// when no test suite exists, it generates inputs itself. For each
// handler and principal it proposes request-parameter values drawn
// from the database's key columns (plus a miss value), runs the
// handler, and keeps going until the mined policy stops changing —
// a simple active-learning loop in the spirit of the paper's
// test-generation references.
type Explorer struct {
	Schema *schema.Schema
	App    *appdsl.App
	DB     *engine.DB
	// Principals to run as (session attribute "user_id").
	Principals []int64
	// MaxValuesPerParam bounds candidate values per request parameter.
	MaxValuesPerParam int
	// Options passed to the miner on each round.
	Options MineOptions
}

// Explore runs the loop and returns the stabilized policy together
// with the samples that produced it.
func (e *Explorer) Explore() (*policy.Policy, []Sample, error) {
	if e.MaxValuesPerParam <= 0 {
		e.MaxValuesPerParam = 6
	}
	if len(e.Principals) == 0 {
		e.Principals = []int64{1, 2}
	}
	candidates := e.candidateValues()

	var samples []Sample
	var lastFP string
	stable := 0
	var pol *policy.Policy
	// Each round widens the candidate pool by one value per parameter
	// and runs every handler on every combination; stop once the mined
	// policy's fingerprint has been stable for two consecutive
	// widenings (one quiet round can be coincidence — e.g. a round
	// that only adds entities the principal cannot access).
	for round := 1; round <= e.MaxValuesPerParam+1; round++ {
		samples = samples[:0]
		for _, uid := range e.Principals {
			for _, h := range e.App.Handlers {
				for _, params := range paramCombos(h.Params, candidates, round) {
					sm, err := e.runOnce(h, uid, params)
					if err != nil {
						return nil, nil, err
					}
					if sm != nil {
						samples = append(samples, *sm)
					}
				}
			}
		}
		p, err := Mine(e.Schema, samples, e.Options)
		if err != nil {
			return nil, nil, err
		}
		fp := p.Fingerprint()
		pol = p
		if fp == lastFP {
			stable++
			if stable >= 2 {
				break
			}
		} else {
			stable = 0
		}
		lastFP = fp
	}
	return pol, samples, nil
}

// paramCombos enumerates assignments of the first `width` candidate
// values to each parameter (cartesian, capped).
func paramCombos(params []string, candidates map[string][]sqlvalue.Value, width int) []map[string]sqlvalue.Value {
	out := []map[string]sqlvalue.Value{{}}
	for _, p := range params {
		vals := candidates[p]
		if len(vals) > width {
			vals = vals[:width]
		}
		if len(vals) == 0 {
			return nil
		}
		var next []map[string]sqlvalue.Value
		for _, base := range out {
			for _, v := range vals {
				m := make(map[string]sqlvalue.Value, len(base)+1)
				for k, bv := range base {
					m[k] = bv
				}
				m[p] = v
				next = append(next, m)
				if len(next) > 64 {
					return next
				}
			}
		}
		out = next
	}
	return out
}

// runOnce executes one handler invocation, collecting its trace; an
// abort still yields the queries issued before it (they revealed
// data). A handler that errors for non-abort reasons is skipped: the
// explorer probes blindly and some inputs are simply invalid.
func (e *Explorer) runOnce(h *appdsl.Handler, uid int64, params map[string]sqlvalue.Value) (*Sample, error) {
	var entries []MinedEntry
	runner := appdsl.RunnerFunc(func(sql string, args []sqlvalue.Value) (*appdsl.Rows, error) {
		res, err := e.DB.QuerySQL(sql, sqlparser.Args{Positional: args})
		if err != nil {
			return nil, err
		}
		rows := make([][]sqlvalue.Value, len(res.Rows))
		for i, r := range res.Rows {
			rows[i] = r
		}
		entries = append(entries, MinedEntry{SQL: sql, Args: args, Columns: res.Columns, Rows: rows})
		return &appdsl.Rows{Columns: res.Columns, Rows: rows}, nil
	})
	session := map[string]sqlvalue.Value{"user_id": sqlvalue.NewInt(uid)}
	_, err := appdsl.Run(h, params, session, runner)
	if err != nil {
		if _, aborted := err.(*appdsl.AbortError); !aborted {
			return nil, nil //nolint: invalid input; skip silently
		}
	}
	if len(entries) == 0 {
		return nil, nil
	}
	return &Sample{Handler: h.Name, Session: session, Params: params, Entries: entries}, nil
}

// candidateValues proposes request-parameter values: for a parameter
// named like "<x>_id", the distinct values of key columns whose name
// resembles x, else the distinct values of every integer key column;
// always including one guaranteed miss.
func (e *Explorer) candidateValues() map[string][]sqlvalue.Value {
	out := map[string][]sqlvalue.Value{}
	paramNames := map[string]bool{}
	for _, h := range e.App.Handlers {
		for _, p := range h.Params {
			paramNames[p] = true
		}
	}
	for p := range paramNames {
		stem := strings.TrimSuffix(strings.ToLower(p), "_id")
		var vals []sqlvalue.Value
		seen := map[string]bool{}
		add := func(v sqlvalue.Value) {
			k := v.Key()
			if !seen[k] && len(vals) < e.MaxValuesPerParam {
				seen[k] = true
				vals = append(vals, v)
			}
		}
		for _, t := range e.Schema.Tables() {
			match := strings.Contains(strings.ToLower(t.Name), stem)
			for _, pk := range t.PrimaryKey {
				ci, _ := t.ColumnIndex(pk)
				if t.Columns[ci].Type != sqlvalue.Int {
					continue
				}
				if !match && !strings.Contains(strings.ToLower(pk), stem) {
					continue
				}
				for _, row := range e.DB.Snapshot(t.Name) {
					add(row[ci])
				}
			}
		}
		// A guaranteed miss exercises the abort paths.
		vals = append(vals, sqlvalue.NewInt(999983))
		sort.Slice(vals, func(i, j int) bool { return sqlvalue.Less(vals[i], vals[j]) })
		out[p] = vals
	}
	return out
}

// ExploreAndMine is the convenience entry point used by cmd/acextract:
// auto-generate inputs for the app over the database and mine a
// policy.
func ExploreAndMine(s *schema.Schema, app *appdsl.App, db *engine.DB, opts MineOptions) (*policy.Policy, error) {
	ex := &Explorer{Schema: s, App: app, DB: db, Options: opts}
	p, samples, err := ex.Explore()
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("extract: exploration produced no samples")
	}
	_ = samples
	return p, nil
}
