package experiments

import (
	"fmt"
	"strings"

	"repro/internal/appdsl"
	"repro/internal/apps"
	"repro/internal/engine"
	"repro/internal/extract"
	"repro/internal/policy"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
)

// SyntheticPolicy builds a policy with exactly n views for the scaling
// series: the fixture's views cycled with disambiguating constants.
func SyntheticPolicy(f *apps.Fixture, n int) *policy.Policy {
	base := f.Policy()
	out := &policy.Policy{Schema: f.Schema}
	i := 0
	for len(out.Views) < n {
		src := base.Views[i%len(base.Views)]
		name := fmt.Sprintf("%s_s%d", src.Name, len(out.Views))
		sql := src.SQL
		if len(out.Views) >= len(base.Views) {
			// Specialize with a constant so the view is distinct.
			if strings.Contains(sql, "WHERE") {
				sql += fmt.Sprintf(" AND 1 = %d", len(out.Views)+1)
				// 1 = k is unsatisfiable for k != 1; keep the original
				// predicate shape instead for realistic work:
				sql = strings.TrimSuffix(sql, fmt.Sprintf(" AND 1 = %d", len(out.Views)+1))
				sql += fmt.Sprintf(" AND %d = %d", len(out.Views)+1, len(out.Views)+1)
			} else {
				sql += fmt.Sprintf(" WHERE %d = %d", len(out.Views)+1, len(out.Views)+1)
			}
		}
		if err := out.Add(name, sql); err != nil {
			// Constant-true predicates fall outside the fragment for
			// some views; fall back to the raw SQL.
			_ = out.Add(name+"_raw", src.SQL)
		}
		i++
	}
	return out
}

// collectSamples runs the fixture's handlers concretely for each
// (principal, request) pair, recording black-box samples.
type runSpec struct {
	Handler string
	UId     int64
	Params  map[string]any
}

func collectSamples(f *apps.Fixture, db *engine.DB, runs []runSpec) ([]extract.Sample, error) {
	var samples []extract.Sample
	for _, r := range runs {
		h, ok := f.App.Handler(r.Handler)
		if !ok {
			return nil, fmt.Errorf("experiments: no handler %q", r.Handler)
		}
		entries, err := runHandlerCollect(f, db, h, r.UId, r.Params)
		if err != nil {
			return nil, err
		}
		params := map[string]sqlvalue.Value{}
		for k, v := range r.Params {
			params[k] = sqlvalue.MustFromAny(v)
		}
		samples = append(samples, extract.Sample{
			Handler: r.Handler,
			Session: map[string]sqlvalue.Value{"user_id": sqlvalue.NewInt(r.UId)},
			Params:  params,
			Entries: entries,
		})
	}
	return samples, nil
}

func runHandlerCollect(f *apps.Fixture, db *engine.DB, h *appdsl.Handler, uid int64, params map[string]any) ([]extract.MinedEntry, error) {
	var entries []extract.MinedEntry
	runner := appdsl.RunnerFunc(func(sql string, args []sqlvalue.Value) (*appdsl.Rows, error) {
		res, err := db.QuerySQL(sql, sqlparser.Args{Positional: args})
		if err != nil {
			return nil, err
		}
		rows := make([][]sqlvalue.Value, len(res.Rows))
		for i, r := range res.Rows {
			rows[i] = r
		}
		entries = append(entries, extract.MinedEntry{
			SQL: sql, Args: args, Columns: res.Columns, Rows: rows,
		})
		return &appdsl.Rows{Columns: res.Columns, Rows: rows}, nil
	})
	pv := map[string]sqlvalue.Value{}
	for k, v := range params {
		pv[k] = sqlvalue.MustFromAny(v)
	}
	_, err := appdsl.Run(h, pv, map[string]sqlvalue.Value{"user_id": sqlvalue.NewInt(uid)}, runner)
	if err != nil {
		if _, aborted := err.(*appdsl.AbortError); !aborted {
			return nil, err
		}
	}
	return entries, nil
}

// miningRuns picks a default request set per fixture: every handler
// invoked by two principals on entities they can access.
func miningRuns(f *apps.Fixture) []runSpec {
	switch f.Name {
	case "calendar":
		return []runSpec{
			{Handler: "show_event", UId: 1, Params: map[string]any{"event_id": 2}},
			{Handler: "show_event", UId: 2, Params: map[string]any{"event_id": 3}},
			{Handler: "list_events", UId: 1},
			{Handler: "list_events", UId: 2},
			{Handler: "profile", UId: 1},
			{Handler: "profile", UId: 2},
		}
	case "hospital":
		// Request parameters deliberately differ from the session uid
		// so the miner cannot spuriously correlate them.
		return []runSpec{
			{Handler: "patient_card", UId: 1, Params: map[string]any{"patient_id": 2}},
			{Handler: "patient_card", UId: 2, Params: map[string]any{"patient_id": 3}},
			{Handler: "doctor_page", UId: 1, Params: map[string]any{"doctor_id": 2}},
			{Handler: "doctor_page", UId: 2, Params: map[string]any{"doctor_id": 1}},
		}
	case "employees":
		return []runSpec{
			{Handler: "directory", UId: 1},
			{Handler: "directory", UId: 2},
			{Handler: "my_record", UId: 1},
			{Handler: "my_record", UId: 2},
			{Handler: "seniors_roster", UId: 1},
			{Handler: "seniors_roster", UId: 2},
			{Handler: "department_page", UId: 1, Params: map[string]any{"dept_id": 2}},
			{Handler: "department_page", UId: 2, Params: map[string]any{"dept_id": 1}},
		}
	case "forum":
		// Cover both read_post branches: public posts (odd ids) and
		// follower-only posts by authors the reader follows.
		return []runSpec{
			{Handler: "read_post", UId: 1, Params: map[string]any{"post_id": 3}},
			{Handler: "read_post", UId: 2, Params: map[string]any{"post_id": 5}},
			{Handler: "read_post", UId: 1, Params: map[string]any{"post_id": 4}},
			{Handler: "read_post", UId: 2, Params: map[string]any{"post_id": 6}},
			{Handler: "my_feed", UId: 1},
			{Handler: "my_feed", UId: 2},
		}
	}
	return nil
}

// RunE4 produces Table 3: extraction accuracy per fixture, for the
// symbolic and black-box extractors, measured by view containment
// against the ground-truth policy.
func RunE4() (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "Policy extraction accuracy (§3.2)",
		Columns: []string{"app", "mode", "views", "recall", "precision", "exact"},
	}
	for _, f := range apps.All() {
		truth := f.AppTruth()

		sym, err := extract.SymbolicExtract(f.Schema, f.App)
		if err != nil {
			return nil, fmt.Errorf("%s symbolic: %w", f.Name, err)
		}
		accS := extract.Compare(sym, truth)
		t.Add(f.Name, "symbolic",
			fmt.Sprintf("%d", len(sym.Views)),
			fmt.Sprintf("%.2f", accS.Recall()),
			fmt.Sprintf("%.2f", accS.Precision()),
			fmt.Sprintf("%v", accS.Exact()))

		db := f.MustNewDB(12)
		samples, err := collectSamples(f, db, miningRuns(f))
		if err != nil {
			return nil, fmt.Errorf("%s mining: %w", f.Name, err)
		}
		opts := extract.DefaultMineOptions()
		opts.SessionParam = f.SessionParam
		mined, err := extract.Mine(f.Schema, samples, opts)
		if err != nil {
			return nil, fmt.Errorf("%s mining: %w", f.Name, err)
		}
		accM := extract.Compare(mined, truth)
		t.Add(f.Name, "black-box",
			fmt.Sprintf("%d", len(mined.Views)),
			fmt.Sprintf("%.2f", accM.Recall()),
			fmt.Sprintf("%.2f", accM.Precision()),
			fmt.Sprintf("%v", accM.Exact()))

		// Fully automatic: no hand-picked requests, the explorer
		// generates its own inputs (§3.2.2's coverage step).
		explored, err := extract.ExploreAndMine(f.Schema, f.App, f.MustNewDB(12), opts)
		if err != nil {
			return nil, fmt.Errorf("%s explore: %w", f.Name, err)
		}
		accE := extract.Compare(explored, truth)
		t.Add(f.Name, "explored",
			fmt.Sprintf("%d", len(explored.Views)),
			fmt.Sprintf("%.2f", accE.Recall()),
			fmt.Sprintf("%.2f", accE.Precision()),
			fmt.Sprintf("%v", accE.Exact()))
	}
	t.Note("recall = fraction of ground-truth views the extraction allows; precision = fraction of extracted views within the ground truth")
	return t, nil
}

// RunE5 produces Figure 2: how the black-box generalization controls
// change the outcome on the calendar app — number of principals,
// opaque-ID hints, guard inference, probing, and minimization.
func RunE5() (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Generalization controls for black-box extraction (§3.2.2)",
		Columns: []string{"configuration", "views", "recall", "precision"},
	}
	f := apps.Calendar()
	truth := f.AppTruth()
	db := f.MustNewDB(12)

	all := miningRuns(f)
	single := []runSpec{all[0], all[2], all[4]} // one principal only
	// Both principals request the same event (seeded so users 1 and 2
	// both attend event 3): the event id constant cannot be
	// generalized by variation, only by the opaque-ID hint.
	sameEntity := []runSpec{
		{Handler: "show_event", UId: 1, Params: map[string]any{"event_id": 3}},
		{Handler: "show_event", UId: 2, Params: map[string]any{"event_id": 3}},
		{Handler: "list_events", UId: 1},
		{Handler: "list_events", UId: 2},
		{Handler: "profile", UId: 1},
		{Handler: "profile", UId: 2},
	}

	type cfg struct {
		name   string
		runs   []runSpec
		mutate func(*extract.MineOptions)
		prober bool
	}
	cfgs := []cfg{
		{name: "full (2 principals, hints, guards, minimize)", runs: all, mutate: func(o *extract.MineOptions) {}},
		{name: "single principal", runs: single, mutate: func(o *extract.MineOptions) {}},
		{name: "same-entity requests, hints on", runs: sameEntity, mutate: func(o *extract.MineOptions) {}},
		{name: "same-entity requests, hints off", runs: sameEntity, mutate: func(o *extract.MineOptions) { o.UseHints = false }},
		{name: "no guard inference", runs: all, mutate: func(o *extract.MineOptions) { o.InferGuards = false }},
		{name: "no minimization", runs: all, mutate: func(o *extract.MineOptions) { o.MinimizePolicy = false }},
		{name: "with mutation probing", runs: all, mutate: func(o *extract.MineOptions) {}, prober: true},
	}
	for _, c := range cfgs {
		samples, err := collectSamples(f, db, c.runs)
		if err != nil {
			return nil, err
		}
		opts := extract.DefaultMineOptions()
		opts.SessionParam = f.SessionParam
		c.mutate(&opts)
		if c.prober {
			opts.Prober = newGuardProber(f, db)
		}
		p, err := extract.Mine(f.Schema, samples, opts)
		if err != nil {
			return nil, err
		}
		acc := extract.Compare(p, truth)
		t.Add(c.name,
			fmt.Sprintf("%d", len(p.Views)),
			fmt.Sprintf("%.2f", acc.Recall()),
			fmt.Sprintf("%.2f", acc.Precision()))
	}
	t.Note("expected shape: the full configuration recovers the policy; ablations lose recall (single principal, no hints) or precision (no guards)")
	return t, nil
}

// newGuardProber replays a sample's handler against a clone of the
// database with the guard query's matching rows deleted (§3.2.2's
// active discovery).
func newGuardProber(f *apps.Fixture, db *engine.DB) extract.GuardProber {
	return func(s extract.Sample, guardIdx int) ([]string, error) {
		clone := db.Clone()
		guard := s.Entries[guardIdx]
		if err := deleteMatching(clone, guard); err != nil {
			return nil, err
		}
		h, ok := f.App.Handler(s.Handler)
		if !ok {
			return nil, fmt.Errorf("experiments: no handler %q", s.Handler)
		}
		entries, err := runHandlerCollectValues(clone, h, s.Params, s.Session)
		if err != nil {
			return nil, err
		}
		var sqls []string
		for _, e := range entries {
			sqls = append(sqls, e)
		}
		return sqls, nil
	}
}

func runHandlerCollectValues(db *engine.DB, h *appdsl.Handler, params, session map[string]sqlvalue.Value) ([]string, error) {
	var sqls []string
	runner := appdsl.RunnerFunc(func(sql string, args []sqlvalue.Value) (*appdsl.Rows, error) {
		res, err := db.QuerySQL(sql, sqlparser.Args{Positional: args})
		if err != nil {
			return nil, err
		}
		rows := make([][]sqlvalue.Value, len(res.Rows))
		for i, r := range res.Rows {
			rows[i] = r
		}
		sqls = append(sqls, sql)
		return &appdsl.Rows{Columns: res.Columns, Rows: rows}, nil
	})
	_, err := appdsl.Run(h, params, session, runner)
	if err != nil {
		if _, aborted := err.(*appdsl.AbortError); !aborted {
			return nil, err
		}
	}
	return sqls, nil
}

// deleteMatching removes the rows matched by a single-table SELECT's
// WHERE clause (used to empty a guard's result).
func deleteMatching(db *engine.DB, e extract.MinedEntry) error {
	sel, err := sqlparser.ParseSelect(e.SQL)
	if err != nil {
		return err
	}
	tabs := sqlparser.BaseTables(sel.From)
	if len(tabs) != 1 {
		return nil // multi-table guards: skip (prober keeps the guard)
	}
	del := &sqlparser.DeleteStmt{Table: tabs[0].Name, Where: sel.Where}
	bound, err := sqlparser.Bind(del, sqlparser.Args{Positional: e.Args})
	if err != nil {
		return err
	}
	_, err = db.Delete(bound.(*sqlparser.DeleteStmt))
	return err
}
