// Package experiments implements the evaluation suite E1–E8 defined in
// DESIGN.md. The paper is a HotOS position paper with no tables or
// figures of its own, so each experiment operationalizes one of its
// claims or worked examples; EXPERIMENTS.md records expectation vs
// measurement. Every experiment returns a Table the benchmark harness
// and cmd/acbench print.
package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/baseline"
	"repro/internal/checker"
	"repro/internal/engine"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a note line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// primeTrace builds the history a corpus query needs.
func primeTrace(db *engine.DB, w apps.WorkloadQuery) (*trace.Trace, error) {
	tr := &trace.Trace{}
	if w.PrimeSQL == "" {
		return tr, nil
	}
	sel, err := sqlparser.ParseSelect(w.PrimeSQL)
	if err != nil {
		return nil, err
	}
	bound, err := sqlparser.Bind(sel, sqlparser.PositionalArgs(w.PrimeArgs...))
	if err != nil {
		return nil, err
	}
	res, err := db.Query(bound.(*sqlparser.SelectStmt))
	if err != nil {
		return nil, err
	}
	rows := make([][]sqlvalue.Value, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = r
	}
	tr.Append(trace.Entry{
		SQL: w.PrimeSQL, Stmt: sel, Args: sqlparser.PositionalArgs(w.PrimeArgs...),
		Columns: res.Columns, Rows: rows,
	})
	return tr, nil
}

// RunE1 produces Table 1: the enforcement decision matrix — every
// corpus query of every fixture, the ground-truth label, and the
// checker's decision; the paper's Example 2.1 rows are called out.
func RunE1() (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "Enforcement correctness (decision matrix, §2.2 / Example 2.1)",
		Columns: []string{"app", "query", "want", "got", "verdict"},
	}
	total, correct := 0, 0
	for _, f := range apps.All() {
		db := f.MustNewDB(24)
		chk := checker.New(f.Policy())
		for _, w := range f.Corpus {
			tr, err := primeTrace(db, w)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", f.Name, w.Label, err)
			}
			d, err := chk.CheckSQL(context.Background(), w.SQL, sqlparser.PositionalArgs(w.Args...), f.Session(w.UId), tr)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", f.Name, w.Label, err)
			}
			total++
			verdict := "MISMATCH"
			if d.Allowed == w.WantAllowed {
				verdict = "ok"
				correct++
			}
			t.Add(f.Name, w.Label, allowStr(w.WantAllowed), allowStr(d.Allowed), verdict)
		}
	}
	t.Note("accuracy: %d/%d decisions match the ground-truth labels", correct, total)
	return t, nil
}

func allowStr(b bool) string {
	if b {
		return "allow"
	}
	return "block"
}

// LatencyPoint is one E2 measurement.
type LatencyPoint struct {
	Config string
	NsOp   float64
}

// RunE2 produces Figure 1: per-query decision+execution latency for
// passthrough, cold checker, cached checker, and the RLS baseline, on
// the calendar workload, plus the latency-vs-view-count series.
func RunE2(dbSize, iters int) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "Enforcement latency (proxy configurations, §2.1-§2.2)",
		Columns: []string{"config", "ns/op", "relative"},
	}
	f := apps.Calendar()
	db := f.MustNewDB(dbSize)
	w := f.Corpus[0] // own-attendance point query
	sel := sqlparser.MustParseSelect(w.SQL)
	argv := sqlparser.PositionalArgs(w.Args...)
	sess := f.Session(w.UId)
	bound, err := sqlparser.Bind(sel, argv)
	if err != nil {
		return nil, err
	}
	bsel := bound.(*sqlparser.SelectStmt)

	// Best-of-3 passes: the minimum mean is the least noisy estimator
	// of the true cost, which keeps the cached-vs-cold comparison
	// stable even under the race detector's scheduling jitter.
	measure := func(fn func() error) (float64, error) {
		best := math.MaxFloat64
		for pass := 0; pass < 3; pass++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				if err := fn(); err != nil {
					return 0, err
				}
			}
			if ns := float64(time.Since(start).Nanoseconds()) / float64(iters); ns < best {
				best = ns
			}
		}
		return best, nil
	}

	pass, err := measure(func() error {
		_, e := db.Query(bsel)
		return e
	})
	if err != nil {
		return nil, err
	}

	coldOpts := checker.DefaultOptions()
	coldOpts.UseCache = false
	coldChk := checker.NewWithOptions(f.Policy(), coldOpts)
	cold, err := measure(func() error {
		coldChk.Check(context.Background(), sel, argv, sess, nil)
		_, e := db.Query(bsel)
		return e
	})
	if err != nil {
		return nil, err
	}

	cachedChk := checker.New(f.Policy())
	cachedChk.Check(context.Background(), sel, argv, sess, nil) // warm the template
	cached, err := measure(func() error {
		cachedChk.Check(context.Background(), sel, argv, sess, nil)
		_, e := db.Query(bsel)
		return e
	})
	if err != nil {
		return nil, err
	}

	rls := baseline.MustNewRLS(f.Schema, f.RLSRules)
	rlsNs, err := measure(func() error {
		rw, e := rls.Rewrite(sel, sess)
		if e != nil {
			return e
		}
		rb, e := sqlparser.Bind(rw, argv)
		if e != nil {
			return e
		}
		_, e = db.Query(rb.(*sqlparser.SelectStmt))
		return e
	})
	if err != nil {
		return nil, err
	}

	// Decision-only costs (no query execution), the stable signal for
	// the cached-vs-cold comparison.
	decCold, err := measure(func() error {
		coldChk.Check(context.Background(), sel, argv, sess, nil)
		return nil
	})
	if err != nil {
		return nil, err
	}
	decCached, err := measure(func() error {
		cachedChk.Check(context.Background(), sel, argv, sess, nil)
		return nil
	})
	if err != nil {
		return nil, err
	}

	rel := func(x float64) string { return fmt.Sprintf("%.2fx", x/pass) }
	t.Add("passthrough (no enforcement)", fmt.Sprintf("%.0f", pass), "1.00x")
	t.Add("checker cold (no decision cache)", fmt.Sprintf("%.0f", cold), rel(cold))
	t.Add("checker cached (decision templates)", fmt.Sprintf("%.0f", cached), rel(cached))
	t.Add("RLS query modification", fmt.Sprintf("%.0f", rlsNs), rel(rlsNs))
	t.Add("decision only, cold", fmt.Sprintf("%.0f", decCold), rel(decCold))
	t.Add("decision only, cached", fmt.Sprintf("%.0f", decCached), rel(decCached))
	t.Note("expected shape: cached ≈ passthrough ≪ cold (Blockaid's headline result)")

	// Series: cold decision latency vs number of views.
	for _, nviews := range []int{1, 2, 4, 8, 16} {
		p := SyntheticPolicy(f, nviews)
		chk := checker.NewWithOptions(p, coldOpts)
		ns, err := measure(func() error {
			chk.Check(context.Background(), sel, argv, sess, nil)
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("cold decision, %d views", nviews), fmt.Sprintf("%.0f", ns), rel(ns))
	}
	return t, nil
}

// RunE3 produces Table 2: decision-template hit rate over the corpus
// replayed across principals, and the history on/off ablation.
func RunE3() (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "Decision cache and history ablation (§2.2)",
		Columns: []string{"app", "cacheHitRate", "allowedWithHistory", "allowedWithoutHistory", "historyOnlyQueries"},
	}
	for _, f := range apps.All() {
		db := f.MustNewDB(24)
		chk := checker.New(f.Policy())
		noHist := checker.DefaultOptions()
		noHist.UseHistory = false
		chkNoHist := checker.NewWithOptions(f.Policy(), noHist)

		allowedHist, allowedNo, historyOnly := 0, 0, 0
		// Replay the corpus for three principals: identical templates
		// across principals should hit the cache.
		for _, uid := range []int64{1, 2, 3} {
			for _, w := range f.Corpus {
				tr, err := primeTrace(db, w)
				if err != nil {
					return nil, err
				}
				d, err := chk.CheckSQL(context.Background(), w.SQL, sqlparser.PositionalArgs(w.Args...), f.Session(uid), tr)
				if err != nil {
					return nil, err
				}
				dn, err := chkNoHist.CheckSQL(context.Background(), w.SQL, sqlparser.PositionalArgs(w.Args...), f.Session(uid), tr)
				if err != nil {
					return nil, err
				}
				if d.Allowed {
					allowedHist++
				}
				if dn.Allowed {
					allowedNo++
				}
				if d.Allowed && !dn.Allowed {
					historyOnly++
				}
			}
		}
		st := chk.Stats()
		hitRate := float64(st.CacheHits) / float64(st.Decisions)
		t.Add(f.Name,
			fmt.Sprintf("%.2f", hitRate),
			fmt.Sprintf("%d", allowedHist),
			fmt.Sprintf("%d", allowedNo),
			fmt.Sprintf("%d", historyOnly))
	}
	t.Note("historyOnlyQueries > 0 shows history-aware vetting strictly dominates (Example 2.1)")
	return t, nil
}
