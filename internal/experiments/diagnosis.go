package experiments

import (
	"context"
	"fmt"
	"time"

	"strings"

	"repro/internal/apps"
	"repro/internal/checker"
	"repro/internal/cq"
	"repro/internal/diagnose"
	"repro/internal/engine"
	"repro/internal/sqlparser"
)

// RunE8 produces Table 5: diagnosis quality — for every violating
// corpus query, whether a counterexample was found, how many contained
// rewritings and access checks were generated, whether a check
// unblocks the query, and the wall-clock cost.
func RunE8() (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "Violation diagnosis quality (§5.2)",
		Columns: []string{"app", "blocked query", "counterex", "rewritings", "checks", "checkUnblocks", "ms"},
	}
	totals := struct{ queries, counter, rewrites, checks, unblocks int }{}
	for _, f := range apps.All() {
		chk := checker.New(f.Policy())
		for _, w := range f.Corpus {
			if w.WantAllowed {
				continue
			}
			sess := f.Session(w.UId)
			start := time.Now()
			d, err := diagnose.Diagnose(context.Background(), chk, sess, w.SQL, sqlparser.PositionalArgs(w.Args...), nil)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", f.Name, w.Label, err)
			}
			ms := float64(time.Since(start).Microseconds()) / 1000

			unblocks := "-"
			if len(d.Checks) > 0 {
				// verified during abduction: a returned check unblocks
				// by construction.
				unblocks = "yes"
				totals.unblocks++
			}
			totals.queries++
			if d.Counter != nil {
				totals.counter++
			}
			if len(d.Rewritings) > 0 {
				totals.rewrites++
			}
			if len(d.Checks) > 0 {
				totals.checks++
			}
			t.Add(f.Name, w.Label,
				yesNo(d.Counter != nil),
				fmt.Sprintf("%d", len(d.Rewritings)),
				fmt.Sprintf("%d", len(d.Checks)),
				unblocks,
				fmt.Sprintf("%.2f", ms))
		}
	}
	t.Note("totals over %d blocked queries: counterexample %d, rewriting %d, access check %d (all verified to unblock: %d)",
		totals.queries, totals.counter, totals.rewrites, totals.checks, totals.unblocks)
	return t, nil
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// RunE8Retention extends Table 5 with the retained-answer fraction of
// the best rewriting on a seeded instance, for queries that have one.
func RunE8Retention() (*Table, error) {
	t := &Table{
		ID:      "E8b",
		Title:   "Rewriting retention: fraction of the blocked answer kept (§5.2.2)",
		Columns: []string{"app", "blocked query", "bestRetained"},
	}
	for _, f := range apps.All() {
		chk := checker.New(f.Policy())
		db := f.MustNewDB(16)
		inst := instanceOf(db)
		for _, w := range f.Corpus {
			if w.WantAllowed {
				continue
			}
			sess := f.Session(w.UId)
			bound, err := sqlparser.Bind(sqlparser.MustParseSelect(w.SQL), sqlparser.PositionalArgs(w.Args...))
			if err != nil {
				return nil, err
			}
			ucq, err := (&cq.Translator{Schema: f.Schema}).TranslateSelect(bound.(*sqlparser.SelectStmt))
			if err != nil {
				continue // outside the fragment
			}
			best := -1.0
			for _, q := range ucq {
				rws, err := diagnose.ContainedRewritings(context.Background(), chk, sess, q)
				if err != nil {
					return nil, err
				}
				for _, r := range rws {
					if fr := diagnose.RetainedFraction(inst, sess, q, r.CQ); fr > best {
						best = fr
					}
				}
			}
			cell := "no rewriting"
			if best >= 0 {
				cell = fmt.Sprintf("%.2f", best)
			}
			t.Add(f.Name, w.Label, cell)
		}
	}
	return t, nil
}

// instanceOf snapshots an engine database into a cq.Instance.
func instanceOf(db *engine.DB) cq.Instance {
	inst := cq.Instance{}
	for _, t := range db.Tables() {
		key := strings.ToLower(t)
		for _, row := range db.Snapshot(t) {
			inst[key] = append(inst[key], row)
		}
	}
	return inst
}
