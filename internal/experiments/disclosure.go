package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/cq"
	"repro/internal/disclosure"
	"repro/internal/policy"
	"repro/internal/sqlvalue"
)

// RunE6 produces Table 4: the disclosure audit — PQI/NQI verdicts on
// every fixture's sensitive queries (reproducing Examples 4.1 and
// 4.2), hospital k-anonymity, and the Bayesian baseline's
// prior-sensitivity demonstration.
func RunE6() (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "Disclosure audit: PQI/NQI, k-anonymity, Bayesian baseline (§4)",
		Columns: []string{"app", "sensitive query", "PQI", "NQI"},
	}
	for _, f := range apps.All() {
		p := f.Policy()
		rep, err := disclosure.Audit(context.Background(), p, f.Sensitive)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f.Name, err)
		}
		for _, fd := range rep.Findings {
			t.Add(f.Name, fd.Name,
				fmt.Sprintf("%v", fd.PQI.Holds),
				fmt.Sprintf("%v", fd.NQI.Holds))
		}
	}

	// The paper's Example 4.2 pair, explicitly.
	emp := apps.Employees()
	p42 := policy.MustNew(emp.Schema, map[string]string{
		"Q1": "SELECT Name FROM Employees WHERE Age >= 60",
	})
	v, err := disclosure.PQISQL(p42, "SELECT Name FROM Employees WHERE Age >= 18")
	if err != nil {
		return nil, err
	}
	t.Add("example4.2", "Q2 given {Q1}", fmt.Sprintf("%v", v.Holds), "-")
	p42b := policy.MustNew(emp.Schema, map[string]string{
		"Q2": "SELECT Name FROM Employees WHERE Age >= 18",
	})
	nv, err := disclosure.NQISQL(p42b, "SELECT Name FROM Employees WHERE Age >= 60")
	if err != nil {
		return nil, err
	}
	t.Add("example4.2", "Q1 given {Q2}", "-", fmt.Sprintf("%v", nv.Holds))

	// Hospital k-anonymity of the doctor-disease join release.
	hosp := apps.Hospital()
	hdb := hosp.MustNewDB(20)
	k, err := disclosure.KAnonymity(hdb,
		"SELECT p.DocId, t.Disease FROM Patients p JOIN Treats t ON p.DocId = t.DocId",
		[]string{"DocId"})
	if err != nil {
		return nil, err
	}
	t.Note("hospital: k-anonymity of the patient-doctor ⋈ doctor-disease release, quasi-identifier DocId: k = %d", k)

	// Bayesian prior-sensitivity (the §4.2 critique, quantified).
	uninformed, neighbor, err := bayesianShifts()
	if err != nil {
		return nil, err
	}
	t.Note("bayesian: uninformed prior shift %.3f -> %.3f (Δ %.3f); informed-neighbor prior %.3f -> %.3f (Δ %.3f) — the verdict depends on the prior",
		uninformed.PriorProb, uninformed.PosteriorProb, uninformed.Delta(),
		neighbor.PriorProb, neighbor.PosteriorProb, neighbor.Delta())
	return t, nil
}

// bayesianShifts reruns the hospital belief-shift computation for two
// priors.
func bayesianShifts() (disclosure.ShiftResult, disclosure.ShiftResult, error) {
	hosp := apps.Hospital()
	s := hosp.Schema
	p := hosp.Policy()

	john := sqlvalue.NewText("john")
	pneumonia := sqlvalue.NewText("pneumonia")
	tb := sqlvalue.NewText("tb")
	flu := sqlvalue.NewText("flu")
	doc1, doc2, pid := sqlvalue.NewInt(1), sqlvalue.NewInt(2), sqlvalue.NewInt(1)

	treats := [][]sqlvalue.Value{{doc1, pneumonia}, {doc1, tb}, {doc2, flu}}
	doctors := [][]sqlvalue.Value{
		{doc1, sqlvalue.NewText("dr1")},
		{doc2, sqlvalue.NewText("dr2")},
	}
	actual := cq.Instance{
		"treats":   treats,
		"doctors":  doctors,
		"patients": {{pid, john, doc1, pneumonia}},
	}
	fixed := cq.Instance{"treats": treats, "doctors": doctors}
	candidates := func(pPneu, pTB, pFlu float64) []disclosure.CandidateTuple {
		return []disclosure.CandidateTuple{
			{Table: "patients", Row: []sqlvalue.Value{pid, john, doc1, pneumonia}, Prob: pPneu},
			{Table: "patients", Row: []sqlvalue.Value{pid, john, doc1, tb}, Prob: pTB},
			{Table: "patients", Row: []sqlvalue.Value{pid, john, doc2, flu}, Prob: pFlu},
		}
	}
	exactlyOne := func(inst cq.Instance) bool { return len(inst["patients"]) == 1 }
	sens := cq.MustFromSQL(s, "SELECT PName, Disease FROM Patients")[0]
	answer := []sqlvalue.Value{john, pneumonia}

	u := disclosure.Prior{Name: "uniform", Fixed: fixed, Vars: candidates(0.5, 0.5, 0.5), Valid: exactlyOne}
	rU, err := disclosure.Shift(s, u, actual, p, nil, sens, answer)
	if err != nil {
		return rU, rU, err
	}
	n := disclosure.Prior{Name: "cough", Fixed: fixed, Vars: candidates(0.9, 0.3, 0.3), Valid: exactlyOne}
	rN, err := disclosure.Shift(s, n, actual, p, nil, sens, answer)
	return rU, rN, err
}

// RunE7 produces Figure 3: PQI/NQI checking time as the policy grows
// (more views) and as the schema widens (more columns per view).
func RunE7(iters int) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "Disclosure-checker scaling (§4.3: extending the algorithms to complex schemas)",
		Columns: []string{"series", "size", "us/check"},
	}
	f := apps.Employees()
	sensitive := "SELECT Name, Salary FROM Employees"

	for _, nviews := range []int{1, 2, 4, 8, 16} {
		p := SyntheticPolicy(f, nviews)
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := disclosure.PQISQL(p, sensitive); err != nil {
				return nil, err
			}
			if _, err := disclosure.NQISQL(p, sensitive); err != nil {
				return nil, err
			}
		}
		us := float64(time.Since(start).Microseconds()) / float64(iters)
		t.Add("views", fmt.Sprintf("%d", nviews), fmt.Sprintf("%.1f", us))
	}

	// Schema width: hospital chase depth grows with FK fan-out; use
	// increasing join width in the sensitive query instead.
	hosp := apps.Hospital()
	hp := hosp.Policy()
	sens := []string{
		"SELECT PName FROM Patients",
		"SELECT PName, Disease FROM Patients",
		"SELECT p.PName, t.Disease FROM Patients p JOIN Treats t ON p.DocId = t.DocId",
		"SELECT p.PName, t.Disease, d.DName FROM Patients p JOIN Treats t ON p.DocId = t.DocId JOIN Doctors d ON p.DocId = d.DId",
	}
	for i, sql := range sens {
		start := time.Now()
		for k := 0; k < iters; k++ {
			if _, err := disclosure.PQISQL(hp, sql); err != nil {
				return nil, err
			}
			if _, err := disclosure.NQISQL(hp, sql); err != nil {
				return nil, err
			}
		}
		us := float64(time.Since(start).Microseconds()) / float64(iters)
		t.Add("query atoms", fmt.Sprintf("%d", i+1), fmt.Sprintf("%.1f", us))
	}
	t.Note("expected shape: roughly quadratic in views (pairwise joins dominate), modest growth with query width")
	return t, nil
}
