package experiments

// RunAll executes the full suite in order. E2/E7 sizes are tuned for a
// quick interactive run; the benchmarks in bench_test.go use testing.B
// for calibrated numbers.
func RunAll() ([]*Table, error) {
	var out []*Table
	steps := []func() (*Table, error){
		RunE1,
		func() (*Table, error) { return RunE2(64, 200) },
		RunE3,
		RunE4,
		RunE5,
		RunE6,
		func() (*Table, error) { return RunE7(5) },
		RunE8,
		RunE8Retention,
	}
	for _, step := range steps {
		t, err := step()
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}
