package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestRunE1AllDecisionsCorrect(t *testing.T) {
	tab, err := RunE1()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if r[4] != "ok" {
			t.Errorf("E1 mismatch: %v", r)
		}
	}
	if len(tab.Rows) < 30 {
		t.Errorf("E1 corpus too small: %d rows", len(tab.Rows))
	}
}

func TestRunE2Shapes(t *testing.T) {
	tab, err := RunE2(32, 300)
	if err != nil {
		t.Fatal(err)
	}
	ns := map[string]float64{}
	for _, r := range tab.Rows {
		v, err := strconv.ParseFloat(r[1], 64)
		if err != nil {
			t.Fatalf("bad ns cell %q", r[1])
		}
		ns[r[0]] = v
	}
	pass := ns["passthrough (no enforcement)"]
	cold := ns["decision only, cold"]
	cached := ns["decision only, cached"]
	if pass <= 0 || cold <= 0 || cached <= 0 {
		t.Fatalf("missing configs: %v", ns)
	}
	// The headline shape: a cached decision is much cheaper than a
	// cold one (end-to-end rows are dominated by query execution and
	// too noisy for a strict assertion).
	if cached >= cold {
		t.Errorf("cached decision (%v) should beat cold (%v)", cached, cold)
	}
}

func TestRunE3HistoryMatters(t *testing.T) {
	tab, err := RunE3()
	if err != nil {
		t.Fatal(err)
	}
	foundHistory := false
	for _, r := range tab.Rows {
		if r[0] == "calendar" {
			n, _ := strconv.Atoi(r[4])
			if n > 0 {
				foundHistory = true
			}
			hit, _ := strconv.ParseFloat(r[1], 64)
			if hit <= 0 {
				t.Errorf("calendar cache hit rate should be positive: %v", r)
			}
		}
	}
	if !foundHistory {
		t.Error("calendar must have history-only queries (Example 2.1)")
	}
}

func TestRunE4ExtractionQuality(t *testing.T) {
	tab, err := RunE4()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		rec, _ := strconv.ParseFloat(r[3], 64)
		prec, _ := strconv.ParseFloat(r[4], 64)
		if r[1] == "symbolic" {
			if rec < 1 || prec < 1 {
				t.Errorf("symbolic extraction should be exact on %s: %v", r[0], r)
			}
		}
		if r[1] == "black-box" && rec < 0.5 {
			t.Errorf("black-box recall too low on %s: %v", r[0], r)
		}
		if r[1] == "explored" && (rec < 1 || prec < 1) {
			t.Errorf("auto-explored mining should be exact on %s: %v", r[0], r)
		}
	}
}

func TestRunE5Ablations(t *testing.T) {
	tab, err := RunE5()
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string][2]float64{}
	for _, r := range tab.Rows {
		rec, _ := strconv.ParseFloat(r[2], 64)
		prec, _ := strconv.ParseFloat(r[3], 64)
		vals[r[0]] = [2]float64{rec, prec}
	}
	full := vals["full (2 principals, hints, guards, minimize)"]
	if full[0] < 1 || full[1] < 1 {
		t.Errorf("full configuration should be exact: %v", full)
	}
	if v := vals["single principal"]; v[0] >= 1 {
		t.Errorf("single principal should lose recall: %v", v)
	}
	if v := vals["same-entity requests, hints on"]; v[0] < 1 {
		t.Errorf("opaque-ID hints should generalize the fixed event id: %v", v)
	}
	if v := vals["same-entity requests, hints off"]; v[0] >= 1 {
		t.Errorf("without hints a fixed event id stays constant: %v", v)
	}
	if v := vals["no guard inference"]; v[1] >= 1 {
		t.Errorf("no-guards should lose precision: %v", v)
	}
	if v := vals["with mutation probing"]; v[0] < 1 || v[1] < 1 {
		t.Errorf("probing should confirm the real guard and stay exact: %v", v)
	}
}

func TestRunE6Disclosure(t *testing.T) {
	tab, err := RunE6()
	if err != nil {
		t.Fatal(err)
	}
	cell := func(app, q string) (string, string) {
		for _, r := range tab.Rows {
			if r[0] == app && r[1] == q {
				return r[2], r[3]
			}
		}
		t.Fatalf("missing row %s/%s", app, q)
		return "", ""
	}
	// Example 4.1: hospital sensitive query flagged via NQI.
	if _, nqi := cell("hospital", "SPatientDisease"); nqi != "true" {
		t.Error("hospital SPatientDisease must be flagged NQI")
	}
	// Example 4.2 rows.
	if pqi, _ := cell("example4.2", "Q2 given {Q1}"); pqi != "true" {
		t.Error("Example 4.2 PQI must hold")
	}
	if _, nqi := cell("example4.2", "Q1 given {Q2}"); nqi != "true" {
		t.Error("Example 4.2 NQI must hold")
	}
	// SSalaries is PQI-flagged: VOwnRecord makes the principal's own
	// salary a certain answer (self-disclosure). Scoped to other
	// principals, the finding disappears.
	if pqi, _ := cell("employees", "SSalaries"); pqi != "true" {
		t.Error("SSalaries should be PQI-flagged via VOwnRecord self-disclosure")
	}
	if pqi, _ := cell("employees", "SOthersSalaries"); pqi != "false" {
		t.Error("other principals' salaries must not be PQI-disclosed")
	}
	// The adults roster is PQI-disclosed via VSeniors (subset
	// certainty), matching Example 4.2.
	if pqi, _ := cell("employees", "SAdults"); pqi != "true" {
		t.Error("SAdults should be PQI-flagged via VSeniors")
	}
	hasBayes := false
	for _, n := range tab.Notes {
		if strings.Contains(n, "bayesian") {
			hasBayes = true
		}
	}
	if !hasBayes {
		t.Error("E6 must include the Bayesian prior-sensitivity note")
	}
}

func TestRunE7Scaling(t *testing.T) {
	tab, err := RunE7(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 7 {
		t.Fatalf("E7 rows: %d", len(tab.Rows))
	}
}

func TestRunE8Diagnosis(t *testing.T) {
	tab, err := RunE8()
	if err != nil {
		t.Fatal(err)
	}
	counterexamples := 0
	for _, r := range tab.Rows {
		if r[2] == "yes" {
			counterexamples++
		}
	}
	if counterexamples == 0 {
		t.Error("E8 should find counterexamples for blocked queries")
	}
	// The calendar event-no-probe row is the paper's Example 2.1; it
	// must have an access check.
	found := false
	for _, r := range tab.Rows {
		if r[0] == "calendar" && r[1] == "event-no-probe" {
			found = true
			if r[4] == "0" {
				t.Errorf("event-no-probe should have an access check: %v", r)
			}
		}
	}
	if !found {
		t.Error("missing calendar/event-no-probe row")
	}
}

func TestRunE8Retention(t *testing.T) {
	tab, err := RunE8Retention()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("E8b empty")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "X", Title: "test", Columns: []string{"a", "b"}}
	tab.Add("1", "2")
	tab.Note("hello %d", 7)
	out := tab.String()
	for _, want := range []string{"== X: test ==", "a", "hello 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}
