// Package obsv is the repo's dependency-free observability core: a
// registry of named atomic counters and bounded latency histograms,
// plus span timing threaded through context.Context (span.go).
//
// Every layer that does measurable work — the checker's decision
// pipeline, the proxy server, the engine's scans, the diagnose search
// — reports into a Registry, and the edges surface it: acproxy's
// -metrics endpoint serializes a Snapshot as JSON, acbench -json
// writes trajectory files, and the proxy's slow-decision log attaches
// per-stage micros from the context SpanSet.
//
// Design constraints, in order:
//
//   - Hot-path cost is a handful of atomic operations. Counter.Add is
//     one atomic add; Histogram.Record is two atomic adds plus one
//     atomic store into a fixed ring. No locks, no allocation.
//   - Everything is nil-safe: a disabled Registry hands out nil
//     Counters and Histograms whose methods are no-ops, so
//     instrumented code never branches on "is metrics on" — it just
//     calls through, and a no-op build costs only the nil check.
//   - Instruments are resolved by name once (at construction time of
//     the instrumented component), not per operation; the registry
//     map is never touched on the hot path.
package obsv

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. A nil Counter
// is a valid no-op instrument.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d. No-op on a nil receiver.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; zero on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// DefaultHistogramWindow is how many recent samples a histogram keeps
// for percentile estimation.
const DefaultHistogramWindow = 4096

// Histogram keeps the most recent samples (microseconds by
// convention) in a fixed lock-free ring for percentile estimation,
// plus lifetime count and sum for the mean. A nil Histogram is a
// valid no-op instrument.
//
// Record is wait-free: one atomic add to claim a slot, one atomic
// store into it, one atomic add to the sum. Quantiles are computed on
// read by copying and sorting the window — stats cost stays O(1) per
// sample and the read side pays the sort.
type Histogram struct {
	ring []atomic.Int64
	n    atomic.Int64 // total recorded over the lifetime
	sum  atomic.Int64 // lifetime sum
}

// newHistogram builds a histogram with the given window (rounded up
// to 1).
func newHistogram(window int) *Histogram {
	if window < 1 {
		window = 1
	}
	return &Histogram{ring: make([]atomic.Int64, window)}
}

// Observe records one sample. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := h.n.Add(1) - 1
	h.ring[int(uint64(i)%uint64(len(h.ring)))].Store(v)
	h.sum.Add(v)
}

// ObserveSince records the elapsed time since start, in microseconds.
// No-op on a nil receiver.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Microseconds())
}

// HistogramSnapshot is a histogram read: percentiles over the recent
// window, lifetime count and mean.
type HistogramSnapshot struct {
	P50     int64   `json:"p50"`
	P90     int64   `json:"p90"`
	P99     int64   `json:"p99"`
	P999    int64   `json:"p999"`
	Max     int64   `json:"max"`
	Count   int64   `json:"count"`
	Mean    float64 `json:"mean"`
	Samples int     `json:"samples"` // window samples the quantiles are over
}

// Snapshot computes the percentile view. Zero-valued on a nil
// receiver or before any sample.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	count := h.n.Load()
	if count == 0 {
		return HistogramSnapshot{}
	}
	n := int(count)
	if n > len(h.ring) {
		n = len(h.ring)
	}
	window := make([]int64, n)
	for i := 0; i < n; i++ {
		window[i] = h.ring[i].Load()
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	at := func(p float64) int64 { return window[int(p*float64(n-1))] }
	return HistogramSnapshot{
		P50:     at(0.50),
		P90:     at(0.90),
		P99:     at(0.99),
		P999:    at(0.999),
		Max:     window[n-1],
		Count:   count,
		Mean:    float64(h.sum.Load()) / float64(count),
		Samples: n,
	}
}

// Registry is a named collection of instruments. The zero value is
// not useful; build one with NewRegistry, or use Disabled() (or a nil
// *Registry) for a registry whose instruments are all no-ops.
type Registry struct {
	disabled bool

	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	window   int
}

// NewRegistry builds an enabled registry with the default histogram
// window.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		window:   DefaultHistogramWindow,
	}
}

// Disabled returns a registry whose instruments are all nil no-ops:
// instrumented components built over it run with metrics off and pay
// only a nil check per operation.
func Disabled() *Registry { return &Registry{disabled: true} }

// Enabled reports whether the registry records anything. A nil
// registry is disabled.
func (r *Registry) Enabled() bool { return r != nil && !r.disabled }

// Counter returns (creating on first use) the named counter, or nil
// when the registry is disabled or nil.
func (r *Registry) Counter(name string) *Counter {
	if !r.Enabled() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns (creating on first use) the named histogram, or
// nil when the registry is disabled or nil.
func (r *Registry) Histogram(name string) *Histogram {
	if !r.Enabled() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(r.window)
		r.hists[name] = h
	}
	return h
}

// Snapshot renders every instrument: counters as integers, histograms
// as HistogramSnapshot objects. Keys are the instrument names. Empty
// on a disabled registry.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if !r.Enabled() {
		return out
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, c := range counters {
		out[k] = c.Value()
	}
	for k, h := range hists {
		out[k] = h.Snapshot()
	}
	return out
}

// WriteJSON serializes the snapshot as indented, key-sorted JSON —
// the expvar-style payload acproxy's -metrics endpoint serves.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot()) // map keys are sorted by encoding/json
}
