package obsv

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("x") != c {
		t.Fatal("same name must resolve to the same counter")
	}
}

func TestNilInstrumentsAreNoops(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	h := r.Histogram("y")
	c.Inc()
	c.Add(10)
	h.Observe(7)
	h.ObserveSince(time.Now())
	if c.Value() != 0 {
		t.Fatal("nil counter must read zero")
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram must read empty")
	}
	d := Disabled()
	if d.Enabled() {
		t.Fatal("Disabled() must not be enabled")
	}
	if d.Counter("x") != nil || d.Histogram("y") != nil {
		t.Fatal("disabled registry must hand out nil instruments")
	}
	if len(d.Snapshot()) != 0 {
		t.Fatal("disabled registry snapshot must be empty")
	}
}

func TestHistogramPercentiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Samples != 100 {
		t.Fatalf("count=%d samples=%d, want 100/100", s.Count, s.Samples)
	}
	if s.P50 < 45 || s.P50 > 55 {
		t.Fatalf("p50 = %d, want ~50", s.P50)
	}
	if s.P99 < 95 || s.P99 > 100 {
		t.Fatalf("p99 = %d, want ~99", s.P99)
	}
	if s.Max != 100 {
		t.Fatalf("max = %d, want 100", s.Max)
	}
	if s.Mean < 50 || s.Mean > 51 {
		t.Fatalf("mean = %.1f, want 50.5", s.Mean)
	}
}

func TestHistogramWindowBounded(t *testing.T) {
	h := newHistogram(8)
	for i := int64(0); i < 1000; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("lifetime count = %d, want 1000", s.Count)
	}
	if s.Samples != 8 {
		t.Fatalf("window samples = %d, want 8", s.Samples)
	}
	// The window holds only recent values.
	if s.P50 < 900 {
		t.Fatalf("p50 = %d, want a recent value (>=900)", s.P50)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				h.Observe(i)
				if i%100 == 0 {
					_ = h.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
}

func TestSnapshotAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(3)
	r.Histogram("a.micros").Observe(10)
	snap := r.Snapshot()
	if snap["a.count"] != int64(3) {
		t.Fatalf("snapshot counter = %v", snap["a.count"])
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON output not valid JSON: %v", err)
	}
	if decoded["a.count"].(float64) != 3 {
		t.Fatalf("decoded counter = %v", decoded["a.count"])
	}
	hist := decoded["a.micros"].(map[string]any)
	if hist["count"].(float64) != 1 {
		t.Fatalf("decoded histogram = %v", hist)
	}
}

func TestSpanSetThroughContext(t *testing.T) {
	if SpanSetFrom(context.Background()) != nil {
		t.Fatal("background context must carry no SpanSet")
	}
	ctx, ss := WithSpanSet(context.Background())
	if SpanSetFrom(ctx) != ss {
		t.Fatal("SpanSetFrom must return the installed set")
	}
	ss.Record("bind", 3*time.Microsecond)
	ss.Record("cover", 5*time.Microsecond)
	ss.Record("bind", 2*time.Microsecond) // accumulates
	ss.SetTier("template")
	m := ss.Micros()
	if m["bind"] != 5 || m["cover"] != 5 {
		t.Fatalf("micros = %v", m)
	}
	if ss.Tier() != "template" {
		t.Fatalf("tier = %q", ss.Tier())
	}
	// Nil SpanSet is a no-op.
	var nilSS *SpanSet
	nilSS.Record("x", time.Second)
	nilSS.SetTier("front")
	if nilSS.Micros() != nil || nilSS.Tier() != "" {
		t.Fatal("nil SpanSet must be inert")
	}
}
