package obsv

import (
	"context"
	"sync"
	"time"
)

// SpanSet collects named span durations for ONE logical operation —
// the per-stage breakdown of a single decision — so an edge (the
// proxy's slow-decision log) can report where that specific request's
// time went, not just aggregate histograms. It is carried through
// context.Context: instrumented code records into it only when the
// caller asked (WithSpanSet), so the common path pays one context
// lookup and nothing else.
//
// A SpanSet is safe for concurrent use (pipeline stages may run on
// the caller's goroutine but engine scans report from within the same
// request context). A nil SpanSet is a valid no-op.
type SpanSet struct {
	mu    sync.Mutex
	names []string
	us    []int64
	tier  string
}

type spanKey struct{}

// WithSpanSet returns a context carrying a fresh SpanSet and the set
// itself. Instrumented code downstream records stage timings into it.
func WithSpanSet(ctx context.Context) (context.Context, *SpanSet) {
	ss := &SpanSet{}
	return context.WithValue(ctx, spanKey{}, ss), ss
}

// SpanSetFrom returns the context's SpanSet, or nil when the caller
// did not request span collection.
func SpanSetFrom(ctx context.Context) *SpanSet {
	ss, _ := ctx.Value(spanKey{}).(*SpanSet)
	return ss
}

// Record adds one named span. Repeated names accumulate (a stage that
// runs twice reports its total). No-op on a nil receiver.
func (s *SpanSet) Record(name string, d time.Duration) {
	if s == nil {
		return
	}
	us := d.Microseconds()
	s.mu.Lock()
	for i, n := range s.names {
		if n == name {
			s.us[i] += us
			s.mu.Unlock()
			return
		}
	}
	s.names = append(s.names, name)
	s.us = append(s.us, us)
	s.mu.Unlock()
}

// SetTier notes which cache tier answered the operation ("front",
// "histfree", "template", or "" for a cold decision). No-op on a nil
// receiver.
func (s *SpanSet) SetTier(t string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.tier = t
	s.mu.Unlock()
}

// Tier returns the answering cache tier; empty on nil or cold.
func (s *SpanSet) Tier() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tier
}

// Micros returns the recorded spans as a name→microseconds map, in
// insertion order lost (map) — use for structured logging. Nil-safe.
func (s *SpanSet) Micros() map[string]int64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.names))
	for i, n := range s.names {
		out[n] = s.us[i]
	}
	return out
}
