package diagnose

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/acerr"
	"repro/internal/checker"
	"repro/internal/cq"
	"repro/internal/policy"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
)

// slowSearchInput builds a counterexample search that must exhaust
// every pass: a full-release view V0 makes any deletion or mutation
// visible (so no counterexample exists and no early return happens),
// the extra comparison views contribute integer boundaries that
// multiply the mutation candidates, and thousands of protected trace
// facts make each probe's view re-evaluation expensive. Uncanceled it
// runs for many seconds.
func slowSearchInput(t testing.TB) (*schema.Schema, *policy.Policy, *cq.Query, []cq.Fact) {
	t.Helper()
	s, err := schema.NewBuilder().
		Table("T").
		NotNullCol("A", sqlvalue.Int).
		NotNullCol("B", sqlvalue.Int).
		PK("A", "B").Done().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	views := map[string]string{"V0": "SELECT A, B FROM T"}
	for i, k := range []int64{1000, 2000, 3000, 4000, 5000, 6000, 7000} {
		views[fmt.Sprintf("V%d", i+1)] = fmt.Sprintf("SELECT A FROM T WHERE B >= %d", k)
	}
	p := policy.MustNew(s, views)
	q := cq.MustFromSQL(s,
		"SELECT t1.A FROM T t1 JOIN T t2 ON t1.B = t2.A JOIN T t3 ON t2.B = t3.A WHERE t1.A >= 100")[0]
	facts := make([]cq.Fact, 0, 2000)
	for i := int64(1); i <= 2000; i++ {
		facts = append(facts, cq.Fact{
			Atom: cq.Atom{Table: "t", Args: []cq.Term{cq.CInt(-i), cq.CInt(-i)}},
		})
	}
	return s, p, q, facts
}

func TestFindCounterexamplePreCanceled(t *testing.T) {
	// Q2 has a counterexample (TestCounterexampleForBlockedQ2), but an
	// already-canceled context must abort before the search starts.
	p := calendarPolicy(t)
	q := cq.MustFromSQL(p.Schema, "SELECT * FROM Events WHERE EId=2")[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, ok := FindCounterexample(ctx, p.Schema, p, session(1), q, nil); ok {
		t.Fatal("canceled search must not report a counterexample")
	}
}

func TestFindCounterexampleCancelMidSearch(t *testing.T) {
	s, p, q, facts := slowSearchInput(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, ok := FindCounterexample(ctx, s, p, session(1), q, facts)
	elapsed := time.Since(start)
	if ok {
		t.Fatal("full-release view admits no counterexample")
	}
	// Uncanceled, this search runs for many seconds (hundreds of
	// probes, each re-evaluating eight views over 2000 protected
	// rows). Cancellation must cut it to roughly the cancel delay.
	if elapsed > 2*time.Second {
		t.Fatalf("canceled search took %v; cancellation did not abort it", elapsed)
	}
	t.Logf("canceled after 30ms, search returned in %v", elapsed)
}

func TestFindCounterexampleDeadlineMidSearch(t *testing.T) {
	s, p, q, facts := slowSearchInput(t)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, ok := FindCounterexample(ctx, s, p, session(1), q, facts)
	if elapsed := time.Since(start); ok || elapsed > 2*time.Second {
		t.Fatalf("deadline did not bound the search: ok=%v elapsed=%v", ok, elapsed)
	}
}

func TestDiagnoseCanceledReturnsTypedError(t *testing.T) {
	p := calendarPolicy(t)
	chk := checker.New(p)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Diagnose(ctx, chk, session(1), "SELECT * FROM Events WHERE EId=2", sqlparser.NoArgs, nil)
	if err == nil {
		t.Fatal("canceled diagnosis must return an error")
	}
	if !errors.Is(err, acerr.ErrCanceled) {
		t.Fatalf("want errors.Is(err, acerr.ErrCanceled), got %v", err)
	}
}
