package diagnose

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/checker"
	"repro/internal/cq"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
)

// Rewriting is one contained-rewriting patch: a narrowed query that is
// contained in the blocked query and compliant under the policy.
type Rewriting struct {
	SQL string
	CQ  *cq.Query
}

// maxRewriteCandidates bounds the unification search.
const maxRewriteCandidates = 512

// ContainedRewritings proposes narrowed versions of the blocked query
// disjunct: each candidate conjoins a policy view's body onto the
// query (a bucket-algorithm step — view subgoals unify with query
// subgoals or join in as new ones), and survives only if it is (a)
// strictly contained in the original, (b) satisfiable, and (c) allowed
// by the checker. Only maximal candidates are returned, most-general
// first.
func ContainedRewritings(ctx context.Context, chk *checker.Checker, session map[string]sqlvalue.Value, q *cq.Query) ([]Rewriting, error) {
	s := chk.Policy().Schema
	var candidates []*cq.Query
	for _, vd := range chk.Policy().Disjuncts(nil) {
		v := vd.RenameVars("w_")
		for _, cand := range unifyIntoQuery(q, v) {
			if len(candidates) >= maxRewriteCandidates {
				break
			}
			candidates = append(candidates, cand)
		}
	}

	var out []Rewriting
	seen := map[string]bool{}
	for _, cand := range candidates {
		cs := cq.NewConstraints()
		cs.AddAll(cand.Comps)
		if !cs.Consistent() {
			continue
		}
		if _, _, err := cq.Freeze(s, cand.BindParams(sessionValues(session))); err != nil {
			continue // unsatisfiable narrowing is useless as a patch
		}
		if !cq.Contains(cand, q) {
			continue
		}
		min := cq.Minimize(cand)
		key := min.CanonicalKey()
		if seen[key] {
			continue
		}
		seen[key] = true
		sql, err := cq.ToSQL(s, min)
		if err != nil {
			continue
		}
		d, err := chk.CheckSQL(ctx, sql, sqlparser.NoArgs, session, nil)
		if err != nil || !d.Allowed {
			continue
		}
		out = append(out, Rewriting{SQL: sql, CQ: min})
	}

	// Keep maximal candidates only.
	var maximal []Rewriting
	for i, a := range out {
		dominated := false
		for j, b := range out {
			if i == j {
				continue
			}
			if cq.Contains(a.CQ, b.CQ) && !cq.Contains(b.CQ, a.CQ) {
				dominated = true
				break
			}
			if cq.Contains(a.CQ, b.CQ) && cq.Contains(b.CQ, a.CQ) && j < i {
				dominated = true // duplicate up to equivalence
				break
			}
		}
		if !dominated {
			maximal = append(maximal, a)
		}
	}
	sort.Slice(maximal, func(i, j int) bool { return maximal[i].SQL < maximal[j].SQL })
	return maximal, nil
}

func sessionValues(session map[string]sqlvalue.Value) map[string]sqlvalue.Value {
	if session == nil {
		return map[string]sqlvalue.Value{}
	}
	return session
}

// unifyIntoQuery enumerates conjunctions of the view body onto the
// query: each view atom either unifies with a same-table query atom
// (most general unifier over the arguments) or is added as a fresh
// subgoal. The query's head is preserved (under the unifier).
func unifyIntoQuery(q *cq.Query, v *cq.Query) []*cq.Query {
	type state struct {
		sub   map[string]cq.Term // variable -> term (applies to both sides)
		extra []cq.Atom
	}
	var results []*cq.Query
	var rec func(i int, st state)

	apply := func(sub map[string]cq.Term, t cq.Term) cq.Term {
		for t.IsVar() {
			n, ok := sub[t.Var]
			if !ok || n.Equal(t) {
				break
			}
			t = n
		}
		return t
	}
	unify := func(sub map[string]cq.Term, a, b cq.Term) (map[string]cq.Term, bool) {
		a, b = apply(sub, a), apply(sub, b)
		if a.Equal(b) {
			return sub, true
		}
		ns := make(map[string]cq.Term, len(sub)+1)
		for k, vv := range sub {
			ns[k] = vv
		}
		switch {
		case a.IsVar():
			ns[a.Var] = b
			return ns, true
		case b.IsVar():
			ns[b.Var] = a
			return ns, true
		default:
			return nil, false // distinct constants/params
		}
	}

	rec = func(i int, st state) {
		if len(results) >= maxRewriteCandidates {
			return
		}
		if i == len(v.Atoms) {
			subFn := func(t cq.Term) cq.Term { return apply(st.sub, t) }
			cand := q.Substitute(subFn)
			for _, a := range st.extra {
				na := cq.Atom{Table: a.Table, Args: make([]cq.Term, len(a.Args))}
				for k, t := range a.Args {
					na.Args[k] = apply(st.sub, t)
				}
				cand.Atoms = append(cand.Atoms, na)
			}
			for _, c := range v.Comps {
				cand.Comps = append(cand.Comps, cq.Comparison{
					Op: c.Op, Left: apply(st.sub, c.Left), Right: apply(st.sub, c.Right),
				})
			}
			results = append(results, cand)
			return
		}
		va := v.Atoms[i]
		// Option A: unify with each same-table query atom.
		for _, qa := range q.Atoms {
			if qa.Table != va.Table || len(qa.Args) != len(va.Args) {
				continue
			}
			sub := st.sub
			ok := true
			for k := range va.Args {
				var success bool
				sub, success = unify(sub, va.Args[k], qa.Args[k])
				if !success {
					ok = false
					break
				}
			}
			if ok {
				rec(i+1, state{sub: sub, extra: st.extra})
			}
		}
		// Option B: keep as a fresh subgoal.
		rec(i+1, state{sub: st.sub, extra: append(append([]cq.Atom(nil), st.extra...), va)})
	}
	rec(0, state{sub: map[string]cq.Term{}})
	return results
}

// RetainedFraction measures a rewriting's usefulness on a concrete
// instance: the fraction of the blocked query's answer rows the
// rewriting still returns (1.0 = lossless for this database).
func RetainedFraction(inst cq.Instance, session map[string]sqlvalue.Value, original, rewritten *cq.Query) float64 {
	o := cq.Evaluate(original.BindParams(sessionValues(session)), inst)
	if len(o) == 0 {
		return 1
	}
	r := cq.Evaluate(rewritten.BindParams(sessionValues(session)), inst)
	kept := 0
	for _, row := range o {
		if cq.ContainsRow(r, row) {
			kept++
		}
	}
	return float64(kept) / float64(len(o))
}

// describeRewriting renders a one-line explanation.
func describeRewriting(r Rewriting) string {
	return fmt.Sprintf("narrowed query: %s", r.SQL)
}
