package diagnose

import (
	"context"
	"testing"

	"repro/internal/apps"
	"repro/internal/checker"
	"repro/internal/cq"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
)

func TestCounterexampleRespectsNegativeFacts(t *testing.T) {
	p := calendarPolicy(t)
	s := p.Schema
	// Blocked query whose freeze would need attendance(1,2), but the
	// trace says no such row exists: the freeze is trace-inconsistent
	// and the search must give up rather than fabricate a proof.
	q := cq.MustFromSQL(s, "SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = 1 AND a.EId = 2")[0]
	neg := []cq.Fact{{
		Atom:    cq.Atom{Table: "attendance", Args: []cq.Term{cq.CInt(1), cq.CInt(2)}},
		Negated: true,
	}}
	if _, ok := FindCounterexample(context.Background(), s, p, session(1), q, neg); ok {
		t.Fatal("counterexample must not contradict a negative trace fact")
	}
}

func TestCounterexampleNegativePatternWithVariables(t *testing.T) {
	p := calendarPolicy(t)
	s := p.Schema
	// Pattern with a variable: user 1 attends NO events at all.
	q := cq.MustFromSQL(s, "SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = 1")[0]
	neg := []cq.Fact{{
		Atom:    cq.Atom{Table: "attendance", Args: []cq.Term{cq.CInt(1), cq.V("x")}},
		Negated: true,
	}}
	if _, ok := FindCounterexample(context.Background(), s, p, session(1), q, neg); ok {
		t.Fatal("freeze contradicts the all-events-empty pattern; search must give up")
	}
}

func TestCounterexamplePositiveFactProtected(t *testing.T) {
	p := calendarPolicy(t)
	s := p.Schema
	// The trace pins attendance(1,2); Q2 on event 2 is compliant, so
	// no counterexample may exist, and in particular deleting the fact
	// row is forbidden.
	q := cq.MustFromSQL(s, "SELECT * FROM Events WHERE EId=2")[0]
	pos := []cq.Fact{{
		Atom: cq.Atom{Table: "attendance", Args: []cq.Term{cq.CInt(1), cq.CInt(2)}},
	}}
	if ce, ok := FindCounterexample(context.Background(), s, p, session(1), q, pos); ok {
		t.Fatalf("compliant-with-history query must have no counterexample, got\n%s", ce)
	}
}

func TestCounterexamplePairMutation(t *testing.T) {
	// The adults case: Age>=18 sensitive query against a policy that
	// releases only the 60+ roster. The freeze lands inside VSeniors'
	// range, so only the pair-mutation pass finds the proof.
	f := apps.Employees()
	p := f.Policy()
	q := cq.MustFromSQL(f.Schema, "SELECT Name FROM Employees WHERE Age >= 18")[0]
	ce, ok := FindCounterexample(context.Background(), f.Schema, p, f.Session(1), q, nil)
	if !ok {
		t.Fatal("pair mutation should find a counterexample for the adults query")
	}
	// Both instances must agree on every view.
	views := p.Disjuncts(f.Session(1))
	for _, v := range views {
		if cq.AnswerKey(cq.Evaluate(v, ce.D1)) != cq.AnswerKey(cq.Evaluate(v, ce.D2)) {
			t.Fatalf("counterexample instances disagree on a view:\n%s", ce)
		}
	}
	// And disagree on the query.
	a1 := cq.Evaluate(q.BindParams(f.Session(1)), ce.D1)
	a2 := cq.Evaluate(q.BindParams(f.Session(1)), ce.D2)
	if cq.AnswerKey(a1) == cq.AnswerKey(a2) {
		t.Fatalf("counterexample instances agree on the query:\n%s", ce)
	}
}

func TestCounterexampleCellMutationHiddenColumn(t *testing.T) {
	// The hospital case: the Disease column is invisible to every
	// view, so a single cell mutation separates the instances.
	f := apps.Hospital()
	p := f.Policy()
	q := cq.MustFromSQL(f.Schema, "SELECT PName, Disease FROM Patients")[0]
	ce, ok := FindCounterexample(context.Background(), f.Schema, p, f.Session(1), q, nil)
	if !ok {
		t.Fatal("cell mutation should find a counterexample for the hidden disease column")
	}
	if len(ce.D1["patients"]) == 0 {
		t.Fatalf("counterexample missing patient row: %s", ce)
	}
}

func TestCounterexampleUnsatisfiableQuery(t *testing.T) {
	p := calendarPolicy(t)
	q := cq.MustFromSQL(p.Schema, "SELECT EId FROM Attendance WHERE UId = 1 AND UId = 2")[0]
	if _, ok := FindCounterexample(context.Background(), p.Schema, p, session(1), q, nil); ok {
		t.Fatal("unsatisfiable query cannot have a counterexample")
	}
}

func TestAbduceNoCheckForHopelessQuery(t *testing.T) {
	// No view covers another user's profile; abduction must not
	// fabricate a check (VMe pins UId to the session parameter, and no
	// database statement can change whose session this is).
	f := apps.Calendar()
	chk := checker.New(f.Policy())
	sel := sqlparser.MustParseSelect("SELECT Name FROM Users WHERE UId = 2")
	checks, err := AbduceAccessChecks(context.Background(), chk, f.Session(1), sel, sqlparser.NoArgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range checks {
		t.Errorf("unexpected check: %s", c)
	}
}

func TestNegPatternCoversVariablePattern(t *testing.T) {
	pattern := cq.Atom{Table: "attendance", Args: []cq.Term{cq.CInt(1), cq.V("x")}}
	cand := cq.Atom{Table: "attendance", Args: []cq.Term{cq.CInt(1), cq.CInt(7)}}
	if !negPatternCovers(pattern, cand, map[string]sqlvalue.Value{}) {
		t.Fatal("variable pattern should cover any value at that position")
	}
	other := cq.Atom{Table: "attendance", Args: []cq.Term{cq.CInt(2), cq.CInt(7)}}
	if negPatternCovers(pattern, other, map[string]sqlvalue.Value{}) {
		t.Fatal("constant mismatch must not be covered")
	}
}
