// Package diagnose implements the paper's §5 — violation diagnosis:
// when the proxy blocks a query, help the operator understand why and
// generate candidate patches.
//
//   - Counterexample (§5.1): a pair of database instances that agree
//     on every policy view (and on the trace) but give the blocked
//     query different answers — the proof-of-violation Blockaid's
//     theory describes.
//   - Contained rewriting (§5.2.2, form 1): narrow the blocked query
//     by conjoining policy-view bodies so the result is contained in
//     the original and compliant; maximal candidates are kept.
//   - Access-check synthesis (§5.2.2, form 2): abduce a statement
//     about database content (the existence of a row) that, once
//     established by a prior query, makes the blocked query compliant
//     — e.g. "Attendance contains row (UId=?MyUId, EId=2)".
package diagnose

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/cq"
	"repro/internal/policy"
	"repro/internal/schema"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

// Counterexample is a proof of non-compliance: two instances agreeing
// on all views and trace facts, with different query answers.
type Counterexample struct {
	D1, D2 cq.Instance
	// Answer is a row returned on D1 but not on D2.
	Answer []sqlvalue.Value
}

// String renders the two instances side by side.
func (c *Counterexample) String() string {
	var b strings.Builder
	b.WriteString("D1 (query returns the row):\n")
	writeInstance(&b, c.D1)
	b.WriteString("D2 (query does not):\n")
	writeInstance(&b, c.D2)
	row := make([]string, len(c.Answer))
	for i, v := range c.Answer {
		row[i] = v.String()
	}
	fmt.Fprintf(&b, "differing answer: (%s)\n", strings.Join(row, ", "))
	return b.String()
}

func writeInstance(b *strings.Builder, inst cq.Instance) {
	tables := make([]string, 0, len(inst))
	for t := range inst {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, t := range tables {
		for _, row := range inst[t] {
			parts := make([]string, len(row))
			for i, v := range row {
				parts[i] = v.String()
			}
			fmt.Fprintf(b, "  %s(%s)\n", t, strings.Join(parts, ", "))
		}
	}
}

// FindCounterexample searches for a counterexample for the query
// disjunct under the (session-bound) policy views and trace facts. It
// builds D1 by freezing the query (plus known fact rows) and derives
// D2 by deleting tuple subsets; a hit is a subset whose removal leaves
// every view answer unchanged while removing a query answer.
//
// The search is bounded and sound: any returned counterexample is
// genuine. Absence of a result does not prove compliance. A canceled
// ctx aborts the search between probe evaluations and reports no
// counterexample; callers distinguish "none found" from "gave up" via
// ctx.Err.
func FindCounterexample(ctx context.Context, s *schema.Schema, p *policy.Policy, session map[string]sqlvalue.Value, q *cq.Query, facts []cq.Fact) (*Counterexample, bool) {
	if ctx.Err() != nil {
		return nil, false
	}
	bound := q.BindParams(session)
	inst, _, err := cq.Freeze(s, bound)
	if err != nil {
		return nil, false // unsatisfiable query can't have a counterexample
	}
	// Add positive fact rows; remember them so they're never deleted
	// (both instances must stay consistent with the trace).
	protected := map[string]bool{}
	for _, f := range facts {
		if f.Negated {
			continue
		}
		row := make([]sqlvalue.Value, len(f.Atom.Args))
		ok := true
		for i, t := range f.Atom.Args {
			switch {
			case t.IsConst():
				row[i] = t.Const
			case t.IsParam():
				v, has := session[t.Param]
				if !has {
					ok = false
				}
				row[i] = v
			default:
				ok = false
			}
		}
		if !ok {
			continue
		}
		key := f.Atom.Table + "|" + cq.AnswerKey([][]sqlvalue.Value{row})
		protected[key] = true
		if !instanceHasRow(inst, f.Atom.Table, row) {
			inst[f.Atom.Table] = append(inst[f.Atom.Table], row)
		}
	}
	// Negative facts must hold on D1 (and every subset, since removal
	// only shrinks).
	for _, f := range facts {
		if !f.Negated {
			continue
		}
		if patternMatches(inst, f.Atom, session) {
			return nil, false // trace-inconsistent freeze; give up
		}
	}

	views := p.Disjuncts(session)
	viewKeys := func(in cq.Instance) string {
		keys := make([]string, len(views))
		for i, v := range views {
			keys[i] = cq.AnswerKey(cq.Evaluate(v, in))
		}
		return strings.Join(keys, "\x01")
	}
	baseViews := viewKeys(inst)
	baseAnswers := cq.Evaluate(bound, inst)
	if len(baseAnswers) == 0 {
		return nil, false
	}

	// Candidate deletions: all non-protected tuples.
	type tupleRef struct {
		table string
		idx   int
	}
	var deletable []tupleRef
	for t, rows := range inst {
		for i, row := range rows {
			key := t + "|" + cq.AnswerKey([][]sqlvalue.Value{row})
			if !protected[key] {
				deletable = append(deletable, tupleRef{table: t, idx: i})
			}
		}
	}
	sort.Slice(deletable, func(i, j int) bool {
		if deletable[i].table != deletable[j].table {
			return deletable[i].table < deletable[j].table
		}
		return deletable[i].idx < deletable[j].idx
	})
	n := len(deletable)
	if n > 12 {
		n = 12 // bound the subset search
	}
	for mask := 1; mask < 1<<n; mask++ {
		if mask&15 == 0 && ctx.Err() != nil {
			return nil, false
		}
		d2 := cq.Instance{}
		skip := map[tupleRef]bool{}
		for b := 0; b < n; b++ {
			if mask&(1<<b) != 0 {
				skip[deletable[b]] = true
			}
		}
		for t, rows := range inst {
			for i, row := range rows {
				if skip[tupleRef{table: t, idx: i}] {
					continue
				}
				d2[t] = append(d2[t], row)
			}
		}
		if viewKeys(d2) != baseViews {
			continue
		}
		newAnswers := cq.Evaluate(bound, d2)
		for _, a := range baseAnswers {
			if !cq.ContainsRow(newAnswers, a) {
				return &Counterexample{D1: inst.Clone(), D2: d2, Answer: a}, true
			}
		}
	}

	// Second pass: perturb one cell of a non-protected tuple — catches
	// violations where a column invisible to the views changes the
	// query's answer (a hidden Disease column, an age crossing a
	// comparison boundary). Candidate values per type: one fresh value
	// plus the comparison boundaries of the query and views ±1.
	intBoundaries := comparisonConstants(bound, views)
	fresh := 0
	for _, ref := range deletable {
		width := len(inst[ref.table][ref.idx])
		for col := 0; col < width; col++ {
			fresh++
			orig := inst[ref.table][ref.idx][col]
			var muts []sqlvalue.Value
			switch orig.Type() {
			case sqlvalue.Int:
				muts = append(muts, sqlvalue.NewInt(900000+int64(fresh)))
				for _, c := range intBoundaries {
					muts = append(muts,
						sqlvalue.NewInt(c-1), sqlvalue.NewInt(c), sqlvalue.NewInt(c+1))
				}
			case sqlvalue.Real:
				muts = append(muts, sqlvalue.NewReal(900000.5+float64(fresh)))
			case sqlvalue.Text:
				muts = append(muts, sqlvalue.NewText(fmt.Sprintf("mut_%d", fresh)))
			case sqlvalue.Bool:
				muts = append(muts, sqlvalue.NewBool(!orig.Bool()))
			default:
				continue
			}
			for _, mut := range muts {
				if ctx.Err() != nil {
					return nil, false
				}
				if sqlvalue.Identical(mut, orig) {
					continue
				}
				d2 := inst.Clone()
				d2[ref.table][ref.idx][col] = mut
				if viewKeys(d2) != baseViews {
					continue
				}
				negOK := true
				for _, f := range facts {
					if f.Negated && patternMatches(d2, f.Atom, session) {
						negOK = false
						break
					}
				}
				if !negOK {
					continue
				}
				newAnswers := cq.Evaluate(bound, d2)
				if cq.AnswerKey(newAnswers) == cq.AnswerKey(baseAnswers) {
					continue
				}
				for _, a := range baseAnswers {
					if !cq.ContainsRow(newAnswers, a) {
						return &Counterexample{D1: inst.Clone(), D2: d2, Answer: a}, true
					}
				}
				// The answer changed by gaining rows; report one.
				for _, a := range newAnswers {
					if !cq.ContainsRow(baseAnswers, a) {
						return &Counterexample{D1: d2, D2: inst.Clone(), Answer: a}, true
					}
				}
			}
		}
	}

	// Third pass: vary the same cell in BOTH instances. Needed when
	// the frozen value incidentally lands inside a view's range (e.g.
	// an age satisfying Age>=18 frozen above 60, inside VSeniors):
	// neither endpoint matches the freeze, but a pair on the same side
	// of the view boundary and different sides of the query boundary
	// is a counterexample.
	for _, ref := range deletable {
		width := len(inst[ref.table][ref.idx])
		for col := 0; col < width; col++ {
			orig := inst[ref.table][ref.idx][col]
			if orig.Type() != sqlvalue.Int {
				continue
			}
			var cands []sqlvalue.Value
			for _, c := range intBoundaries {
				cands = append(cands,
					sqlvalue.NewInt(c-1), sqlvalue.NewInt(c), sqlvalue.NewInt(c+1))
			}
			for _, v1 := range cands {
				if ctx.Err() != nil {
					return nil, false
				}
				d1 := inst.Clone()
				d1[ref.table][ref.idx][col] = v1
				if !negFactsHold(d1, facts, session) {
					continue
				}
				k1 := viewKeys(d1)
				a1 := cq.Evaluate(bound, d1)
				for _, v2 := range cands {
					if sqlvalue.Identical(v1, v2) {
						continue
					}
					d2 := inst.Clone()
					d2[ref.table][ref.idx][col] = v2
					if viewKeys(d2) != k1 || !negFactsHold(d2, facts, session) {
						continue
					}
					a2 := cq.Evaluate(bound, d2)
					for _, a := range a1 {
						if !cq.ContainsRow(a2, a) {
							return &Counterexample{D1: d1, D2: d2, Answer: a}, true
						}
					}
				}
			}
		}
	}
	return nil, false
}

// negFactsHold checks that no negated trace pattern matches.
func negFactsHold(inst cq.Instance, facts []cq.Fact, session map[string]sqlvalue.Value) bool {
	for _, f := range facts {
		if f.Negated && patternMatches(inst, f.Atom, session) {
			return false
		}
	}
	return true
}

// comparisonConstants collects the integer constants appearing in the
// query's and views' comparisons — the boundaries worth probing.
func comparisonConstants(q *cq.Query, views []*cq.Query) []int64 {
	seen := map[int64]bool{}
	var out []int64
	collect := func(qq *cq.Query) {
		for _, c := range qq.Comps {
			for _, t := range []cq.Term{c.Left, c.Right} {
				if t.IsConst() && t.Const.Type() == sqlvalue.Int {
					v := t.Const.Int()
					if !seen[v] {
						seen[v] = true
						out = append(out, v)
					}
				}
			}
		}
	}
	collect(q)
	for _, v := range views {
		collect(v)
	}
	if len(out) > 8 {
		out = out[:8]
	}
	return out
}

func instanceHasRow(inst cq.Instance, table string, row []sqlvalue.Value) bool {
	for _, r := range inst[table] {
		if len(r) != len(row) {
			continue
		}
		same := true
		for i := range r {
			if !sqlvalue.Identical(r[i], row[i]) {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

// patternMatches reports whether some row of the instance matches the
// (possibly variable-bearing) atom pattern.
func patternMatches(inst cq.Instance, pattern cq.Atom, session map[string]sqlvalue.Value) bool {
	for _, row := range inst[pattern.Table] {
		if len(row) != len(pattern.Args) {
			continue
		}
		bind := map[string]sqlvalue.Value{}
		ok := true
		for i, t := range pattern.Args {
			switch {
			case t.IsConst():
				if !sqlvalue.Identical(t.Const, row[i]) {
					ok = false
				}
			case t.IsParam():
				v, has := session[t.Param]
				if !has || !sqlvalue.Identical(v, row[i]) {
					ok = false
				}
			default:
				if prev, has := bind[t.Var]; has {
					if !sqlvalue.Identical(prev, row[i]) {
						ok = false
					}
				} else {
					bind[t.Var] = row[i]
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// FactsFromTrace converts a trace into facts for counterexample and
// patch search (re-exported convenience).
func FactsFromTrace(s *schema.Schema, tr *trace.Trace) []cq.Fact {
	if tr == nil {
		return nil
	}
	return trace.Facts(s, tr)
}
