package diagnose

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/acerr"
	"repro/internal/checker"
	"repro/internal/cq"
	"repro/internal/policy"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

// Diagnosis bundles everything the tool can offer the operator for a
// blocked query: a proof of violation, application patches of both
// forms, and policy patches.
type Diagnosis struct {
	Query   string
	Reason  string
	Counter *Counterexample
	// Rewritings are narrowed compliant variants of the query.
	Rewritings []Rewriting
	// Checks are synthesized access-check statements.
	Checks []AccessCheck
	// PolicyPatches are views that, if added to the policy, would
	// allow the query (views the extractor produced that the current
	// policy lacks).
	PolicyPatches []*policy.View
}

// String renders the diagnosis for the operator.
func (d *Diagnosis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "blocked query: %s\nreason: %s\n", d.Query, d.Reason)
	if d.Counter != nil {
		b.WriteString("\nproof of violation (two databases agreeing on every view):\n")
		b.WriteString(d.Counter.String())
	}
	if len(d.Rewritings) > 0 {
		b.WriteString("\napplication patches — narrow the query:\n")
		for _, r := range d.Rewritings {
			fmt.Fprintf(&b, "  %s\n", describeRewriting(r))
		}
	}
	if len(d.Checks) > 0 {
		b.WriteString("\napplication patches — add an access check before the query:\n")
		for _, c := range d.Checks {
			fmt.Fprintf(&b, "  %s\n", c)
		}
	}
	if len(d.PolicyPatches) > 0 {
		b.WriteString("\npolicy patches — add views:\n")
		for _, v := range d.PolicyPatches {
			fmt.Fprintf(&b, "  %s: %s\n", v.Name, v.SQL)
		}
	}
	return b.String()
}

// Diagnose produces the full diagnosis for a blocked query. The ctx
// bounds the whole search: a cancellation or deadline aborts the
// counterexample and patch enumeration mid-way and returns whatever
// was assembled so far alongside acerr.ErrCanceled.
func Diagnose(ctx context.Context, chk *checker.Checker, session map[string]sqlvalue.Value, sql string, args sqlparser.Args, tr *trace.Trace) (*Diagnosis, error) {
	// Diagnosis searches are the system's slowest paths; time them into
	// the checker's registry so an operator can tell diagnose load from
	// enforcement load in one snapshot.
	if reg := chk.Metrics(); reg.Enabled() {
		reg.Counter("diagnose.runs").Inc()
		defer reg.Histogram("diagnose.micros").ObserveSince(time.Now())
	}
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	d := chk.Check(ctx, sel, args, session, tr)
	out := &Diagnosis{Query: sql, Reason: d.Reason}
	if d.Allowed {
		out.Reason = "query is allowed; nothing to diagnose"
		return out, nil
	}

	s := chk.Policy().Schema
	bound, err := sqlparser.Bind(sel, args)
	if err != nil {
		return nil, err
	}
	facts := FactsFromTrace(s, tr)
	if ucq, terr := (&cq.Translator{Schema: s}).TranslateSelect(bound.(*sqlparser.SelectStmt)); terr == nil {
		for _, q := range ucq {
			if ce, ok := FindCounterexample(ctx, s, chk.Policy(), session, q, facts); ok {
				out.Counter = ce
				break
			}
		}
		for _, q := range ucq {
			rw, rerr := ContainedRewritings(ctx, chk, session, q)
			if rerr == nil {
				out.Rewritings = append(out.Rewritings, rw...)
			}
		}
	}
	checks, err := AbduceAccessChecks(ctx, chk, session, sel, args, tr)
	if err == nil {
		out.Checks = checks
	}
	if cerr := ctx.Err(); cerr != nil {
		return out, acerr.Canceled(cerr)
	}
	return out, nil
}

// SuggestPolicyPatches compares a freshly extracted policy against the
// current one (§5.2.1): views present in the extraction but not
// covered by the current policy are candidate policy patches. The
// caller typically extracts from up-to-date source or an augmented
// test suite.
func SuggestPolicyPatches(current, extracted *policy.Policy) []*policy.View {
	diff := policy.Diff(extracted, current)
	return diff.OnlyA
}

// PatchAllowsQuery reports whether adding the candidate views to the
// policy would allow the blocked query — the sanity check an operator
// runs before accepting a policy patch.
func PatchAllowsQuery(ctx context.Context, p *policy.Policy, patches []*policy.View, session map[string]sqlvalue.Value, sql string, args sqlparser.Args, tr *trace.Trace) (bool, error) {
	patched := p.Clone()
	for i, v := range patches {
		name := v.Name
		if _, exists := patched.View(name); exists {
			name = fmt.Sprintf("%s_patch%d", v.Name, i)
		}
		if err := patched.Add(name, v.SQL); err != nil {
			return false, err
		}
	}
	chk := checker.New(patched)
	d, err := chk.CheckSQL(ctx, sql, args, session, tr)
	if err != nil {
		return false, err
	}
	return d.Allowed, nil
}
