package diagnose

import (
	"context"
	"strings"
	"testing"

	"repro/internal/checker"
	"repro/internal/cq"
	"repro/internal/policy"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

func calendarSchema(t testing.TB) *schema.Schema {
	t.Helper()
	s, err := schema.NewBuilder().
		Table("Users").
		NotNullCol("UId", sqlvalue.Int).
		NotNullCol("Name", sqlvalue.Text).
		PK("UId").Done().
		Table("Events").
		OpaqueCol("EId", sqlvalue.Int).
		NotNullCol("Title", sqlvalue.Text).
		Col("Notes", sqlvalue.Text).
		PK("EId").Done().
		Table("Attendance").
		NotNullCol("UId", sqlvalue.Int).
		NotNullCol("EId", sqlvalue.Int).
		PK("UId", "EId").Done().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func calendarPolicy(t testing.TB) *policy.Policy {
	t.Helper()
	return policy.MustNew(calendarSchema(t), map[string]string{
		"V1": "SELECT EId FROM Attendance WHERE UId = ?MyUId",
		"V2": "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?MyUId",
	})
}

func session(uid int64) map[string]sqlvalue.Value {
	return map[string]sqlvalue.Value{"MyUId": sqlvalue.NewInt(uid)}
}

func TestCounterexampleForBlockedQ2(t *testing.T) {
	p := calendarPolicy(t)
	s := p.Schema
	q := cq.MustFromSQL(s, "SELECT * FROM Events WHERE EId=2")[0]
	ce, ok := FindCounterexample(context.Background(), s, p, session(1), q, nil)
	if !ok {
		t.Fatal("blocked Q2 must have a counterexample")
	}
	// D1 contains the event row; D2 must not change any view answer.
	if len(ce.D1["events"]) == 0 {
		t.Fatalf("D1 missing event row: %v", ce.D1)
	}
	if len(ce.Answer) != 3 {
		t.Fatalf("answer row: %v", ce.Answer)
	}
	if !strings.Contains(ce.String(), "differing answer") {
		t.Errorf("rendering: %s", ce)
	}
}

func TestNoCounterexampleForAllowedQuery(t *testing.T) {
	p := calendarPolicy(t)
	s := p.Schema
	// V1's own instantiation: allowed, so the bounded search must not
	// find a counterexample (checker soundness cross-check).
	q := cq.MustFromSQL(s, "SELECT EId FROM Attendance WHERE UId = 1")[0]
	if _, ok := FindCounterexample(context.Background(), s, p, session(1), q, nil); ok {
		t.Fatal("allowed query must not have a counterexample")
	}
}

func TestNoCounterexampleWithHistory(t *testing.T) {
	p := calendarPolicy(t)
	s := p.Schema
	q := cq.MustFromSQL(s, "SELECT * FROM Events WHERE EId=2")[0]
	facts := []cq.Fact{{Atom: cq.Atom{Table: "attendance", Args: []cq.Term{cq.CInt(1), cq.CInt(2)}}}}
	if _, ok := FindCounterexample(context.Background(), s, p, session(1), q, facts); ok {
		t.Fatal("with the attendance fact, Q2 is compliant — no counterexample may exist")
	}
}

// TestCheckerSoundnessAgainstCounterexamples cross-validates the two
// independent implementations: whenever the checker allows a query,
// the bounded counterexample search must come up empty.
func TestCheckerSoundnessAgainstCounterexamples(t *testing.T) {
	p := calendarPolicy(t)
	s := p.Schema
	chk := checker.New(p)
	queries := []string{
		"SELECT EId FROM Attendance WHERE UId = 1",
		"SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = 1",
		"SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = 1",
		"SELECT * FROM Events WHERE EId=2",
		"SELECT EId FROM Attendance WHERE UId = 2",
		"SELECT * FROM Attendance",
		"SELECT Title FROM Events",
		"SELECT EId FROM Attendance WHERE UId = 1 AND EId = 7",
		"SELECT Name FROM Users WHERE UId = 1",
	}
	for _, sql := range queries {
		d, err := chk.CheckSQL(context.Background(), sql, sqlparser.NoArgs, session(1), nil)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		ucq, err := cq.FromSQL(s, sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		for _, q := range ucq {
			_, found := FindCounterexample(context.Background(), s, p, session(1), q, nil)
			if d.Allowed && found {
				t.Errorf("UNSOUND: checker allowed %q but a counterexample exists", sql)
			}
		}
	}
}

func TestContainedRewritingForQ2(t *testing.T) {
	p := calendarPolicy(t)
	chk := checker.New(p)
	q := cq.MustFromSQL(p.Schema, "SELECT * FROM Events WHERE EId=2")[0]
	rws, err := ContainedRewritings(context.Background(), chk, session(1), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rws) == 0 {
		t.Fatal("expected a contained rewriting for blocked Q2 (join with own attendance)")
	}
	// Every rewriting must be contained in Q2 and allowed.
	for _, r := range rws {
		if !cq.Contains(r.CQ, q) {
			t.Errorf("rewriting not contained: %s", r.SQL)
		}
		d, err := chk.CheckSQL(context.Background(), r.SQL, sqlparser.NoArgs, session(1), nil)
		if err != nil || !d.Allowed {
			t.Errorf("rewriting not allowed: %s (%v %v)", r.SQL, d, err)
		}
	}
}

func TestRewritingRetainsAnswersWhenPermitted(t *testing.T) {
	p := calendarPolicy(t)
	chk := checker.New(p)
	q := cq.MustFromSQL(p.Schema, "SELECT * FROM Events WHERE EId=2")[0]
	rws, err := ContainedRewritings(context.Background(), chk, session(1), q)
	if err != nil || len(rws) == 0 {
		t.Fatalf("rewritings: %v %v", rws, err)
	}
	// On an instance where user 1 does attend event 2, the best
	// rewriting retains the full answer.
	inst := cq.Instance{
		"events":     {{sqlvalue.NewInt(2), sqlvalue.NewText("retro"), sqlvalue.NewText("x")}},
		"attendance": {{sqlvalue.NewInt(1), sqlvalue.NewInt(2)}},
	}
	best := 0.0
	for _, r := range rws {
		if f := RetainedFraction(inst, session(1), q, r.CQ); f > best {
			best = f
		}
	}
	if best < 1 {
		t.Fatalf("best rewriting retains %.2f of the answer, want 1.0", best)
	}
	// On an instance where the user does NOT attend, the rewriting
	// returns nothing (which is the point: it is compliant).
	inst2 := cq.Instance{
		"events":     {{sqlvalue.NewInt(2), sqlvalue.NewText("retro"), sqlvalue.NewText("x")}},
		"attendance": {{sqlvalue.NewInt(9), sqlvalue.NewInt(2)}},
	}
	for _, r := range rws {
		if f := RetainedFraction(inst2, session(1), q, r.CQ); f > 0 {
			t.Errorf("rewriting leaks on non-attended instance: %s (%.2f)", r.SQL, f)
		}
	}
}

func TestAbduceAccessCheckExample21(t *testing.T) {
	p := calendarPolicy(t)
	chk := checker.New(p)
	sel := sqlparser.MustParseSelect("SELECT * FROM Events WHERE EId=2")
	checks, err := AbduceAccessChecks(context.Background(), chk, session(1), sel, sqlparser.NoArgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) == 0 {
		t.Fatal("expected the paper's access check: Attendance contains (UId=?MyUId, EId=2)")
	}
	found := false
	for _, c := range checks {
		if c.Table == "Attendance" &&
			strings.Contains(c.CheckSQL, "UId = ?MyUId") &&
			strings.Contains(c.CheckSQL, "EId = 2") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing the canonical check; got %+v", checks)
	}
}

func TestAbduceRespectsNegativeTraceFacts(t *testing.T) {
	p := calendarPolicy(t)
	chk := checker.New(p)
	// The trace already shows user 1 does NOT attend event 2: the
	// canonical check is inconsistent with the trace and must not be
	// proposed.
	tr := &trace.Trace{}
	probe := sqlparser.MustParseSelect("SELECT 1 FROM Attendance WHERE UId=1 AND EId=2")
	tr.Append(trace.Entry{SQL: probe.SQL(), Stmt: probe, Args: sqlparser.NoArgs, Columns: []string{"1"}})
	sel := sqlparser.MustParseSelect("SELECT * FROM Events WHERE EId=2")
	checks, err := AbduceAccessChecks(context.Background(), chk, session(1), sel, sqlparser.NoArgs, tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range checks {
		if strings.Contains(c.CheckSQL, "EId = 2") && strings.Contains(c.CheckSQL, "UId = ?MyUId") {
			t.Fatalf("check contradicts the trace: %s", c.CheckSQL)
		}
	}
}

func TestDiagnoseEndToEnd(t *testing.T) {
	p := calendarPolicy(t)
	chk := checker.New(p)
	d, err := Diagnose(context.Background(), chk, session(1), "SELECT * FROM Events WHERE EId=2", sqlparser.NoArgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Counter == nil {
		t.Error("diagnosis missing counterexample")
	}
	if len(d.Rewritings) == 0 {
		t.Error("diagnosis missing rewritings")
	}
	if len(d.Checks) == 0 {
		t.Error("diagnosis missing access checks")
	}
	out := d.String()
	for _, want := range []string{"proof of violation", "narrow the query", "access check"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestDiagnoseAllowedQuery(t *testing.T) {
	p := calendarPolicy(t)
	chk := checker.New(p)
	d, err := Diagnose(context.Background(), chk, session(1), "SELECT EId FROM Attendance WHERE UId = 1", sqlparser.NoArgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Counter != nil || len(d.Rewritings) > 0 {
		t.Fatalf("allowed query should produce an empty diagnosis: %+v", d)
	}
}

func TestSuggestPolicyPatches(t *testing.T) {
	p := calendarPolicy(t)
	extracted := policy.MustNew(p.Schema, map[string]string{
		"X1": "SELECT EId FROM Attendance WHERE UId = ?MyUId",
		"X2": "SELECT Name FROM Users WHERE UId = ?MyUId", // new behaviour
	})
	patches := SuggestPolicyPatches(p, extracted)
	if len(patches) != 1 || patches[0].Name != "X2" {
		t.Fatalf("patches: %+v", patches)
	}
	ok, err := PatchAllowsQuery(context.Background(), p, patches, session(1), "SELECT Name FROM Users WHERE UId = 1", sqlparser.NoArgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("applying the patch should allow the query")
	}
	// Without the patch it stays blocked.
	chk := checker.New(p)
	d, _ := chk.CheckSQL(context.Background(), "SELECT Name FROM Users WHERE UId = 1", sqlparser.NoArgs, session(1), nil)
	if d.Allowed {
		t.Fatal("setup: query should be blocked pre-patch")
	}
}
