package diagnose

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/checker"
	"repro/internal/cq"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

// AccessCheck is a synthesized application patch (§5.2.2, form 2): a
// statement about database content — "table T contains a row matching
// this pattern" — that the developer can verify before issuing the
// blocked query, making it compliant.
type AccessCheck struct {
	// Table and Conditions describe the row pattern.
	Table string
	// CheckSQL is the probe query the application should run (its
	// non-empty result establishes the statement).
	CheckSQL string
	// Atom is the pattern as a (possibly parameterized) ground atom.
	Atom cq.Atom
}

// String renders the check.
func (a AccessCheck) String() string {
	return fmt.Sprintf("ensure %s has a matching row: %s", a.Table, a.CheckSQL)
}

// maxChecks bounds the abduction search output.
const maxChecks = 16

// AbduceAccessChecks searches for row-existence statements that make
// the blocked query compliant given the trace. A candidate arises
// from a policy view whose body partially embeds into the query: the
// unmatched view atoms, instantiated by the partial embedding, are
// exactly what must additionally hold. Each candidate is verified by
// re-checking the query with the hypothetical probe appended to the
// trace, and must be consistent with the trace (not contradicted by a
// known-empty pattern).
func AbduceAccessChecks(ctx context.Context, chk *checker.Checker, session map[string]sqlvalue.Value, sel *sqlparser.SelectStmt, args sqlparser.Args, tr *trace.Trace) ([]AccessCheck, error) {
	s := chk.Policy().Schema
	bound, err := sqlparser.Bind(sel, args)
	if err != nil {
		return nil, err
	}
	ucq, err := (&cq.Translator{Schema: s}).TranslateSelect(bound.(*sqlparser.SelectStmt))
	if err != nil {
		return nil, err
	}
	facts := FactsFromTrace(s, tr)

	var out []AccessCheck
	seen := map[string]bool{}
	for _, q := range ucq {
		for _, vd := range chk.Policy().Disjuncts(nil) {
			v := vd.RenameVars("w_")
			for _, cand := range partialEmbeddings(q, v) {
				if len(out) >= maxChecks {
					return out, nil
				}
				check, ok := buildCheck(s, session, cand)
				if !ok {
					continue
				}
				key := check.Atom.String()
				if seen[key] {
					continue
				}
				seen[key] = true
				if contradictsTrace(check.Atom, facts, session) {
					continue
				}
				if verifyCheck(ctx, chk, session, sel, args, tr, check) {
					out = append(out, check)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CheckSQL < out[j].CheckSQL })
	return out, nil
}

// candidateCheck is a partial view embedding: missing atoms under the
// unifier become the abduced statement.
type candidateCheck struct {
	missing []cq.Atom
}

// partialEmbeddings enumerates embeddings of a subset of the view's
// atoms into the query (at least one matched, at least one missing),
// returning the instantiated missing atoms.
func partialEmbeddings(q *cq.Query, v *cq.Query) []candidateCheck {
	qcs := cq.NewConstraints()
	qcs.AddAll(q.Comps)

	type state struct {
		m       cq.Mapping
		matched int
		missing []int
	}
	var results []candidateCheck
	var rec func(i int, st state)
	rec = func(i int, st state) {
		if len(results) >= 64 {
			return
		}
		if i == len(v.Atoms) {
			if st.matched == 0 || len(st.missing) == 0 {
				return
			}
			// View comparisons must not be violated under the mapping;
			// unmapped variables are unconstrained, so only fully
			// mapped comparisons are testable.
			for _, c := range v.Comps {
				lc := st.m.ApplyComp(c)
				if termMapped(lc.Left, v) && termMapped(lc.Right, v) && !qcs.Implies(lc) {
					return
				}
			}
			var miss []cq.Atom
			for _, mi := range st.missing {
				a := v.Atoms[mi]
				na := cq.Atom{Table: a.Table, Args: make([]cq.Term, len(a.Args))}
				for k, t := range a.Args {
					na.Args[k] = st.m.Apply(t)
				}
				miss = append(miss, na)
			}
			results = append(results, candidateCheck{missing: miss})
			return
		}
		va := v.Atoms[i]
		// Match against query atoms.
		for _, qa := range q.Atoms {
			if qa.Table != va.Table || len(qa.Args) != len(va.Args) {
				continue
			}
			m := st.m
			cloned := false
			ok := true
			for k, vt := range va.Args {
				qt := qa.Args[k]
				switch {
				case vt.IsVar():
					if bnd, has := m[vt.Var]; has {
						if !bnd.Equal(qt) && !qcs.Implies(cq.Comparison{Op: cq.Eq, Left: bnd, Right: qt}) {
							ok = false
						}
					} else {
						if !cloned {
							m = m.Clone()
							cloned = true
						}
						m[vt.Var] = qt
					}
				default:
					if !vt.Equal(qt) && !qcs.Implies(cq.Comparison{Op: cq.Eq, Left: vt, Right: qt}) {
						ok = false
					}
				}
				if !ok {
					break
				}
			}
			if ok {
				rec(i+1, state{m: m, matched: st.matched + 1, missing: st.missing})
			}
		}
		// Or mark missing.
		rec(i+1, state{m: st.m, matched: st.matched, missing: append(append([]int(nil), st.missing...), i)})
	}
	rec(0, state{m: cq.Mapping{}})
	return results
}

func termMapped(t cq.Term, v *cq.Query) bool {
	if !t.IsVar() {
		return true
	}
	// A view variable that stayed unmapped keeps its w_ prefix.
	return !strings.HasPrefix(t.Var, "w_")
}

// buildCheck turns the missing atoms into a probe query. Every
// argument must be a constant, a session parameter, or an unmapped
// view variable (existential in the probe); query variables are
// unknown to the application and disqualify the candidate.
func buildCheck(s *schema.Schema, session map[string]sqlvalue.Value, cand candidateCheck) (AccessCheck, bool) {
	if len(cand.missing) != 1 {
		// Multi-atom checks are possible but rarely what a developer
		// would write; prefer single-row statements like the paper's.
		return AccessCheck{}, false
	}
	a := cand.missing[0]
	tab, ok := s.Table(a.Table)
	if !ok {
		return AccessCheck{}, false
	}
	var conds []string
	pinned := 0
	for i, t := range a.Args {
		col := tab.Columns[i].Name
		switch {
		case t.IsConst():
			conds = append(conds, fmt.Sprintf("%s = %s", col, t.Const.String()))
			pinned++
		case t.IsParam():
			conds = append(conds, fmt.Sprintf("%s = ?%s", col, t.Param))
			pinned++
		default:
			if !strings.HasPrefix(t.Var, "w_") {
				return AccessCheck{}, false // depends on a query variable
			}
			// Unmapped view variable: existential, no condition.
		}
	}
	if pinned == 0 {
		return AccessCheck{}, false // vacuous statement
	}
	sql := "SELECT 1 FROM " + tab.Name
	if len(conds) > 0 {
		sql += " WHERE " + strings.Join(conds, " AND ")
	}
	return AccessCheck{Table: tab.Name, CheckSQL: sql, Atom: a}, true
}

// contradictsTrace reports whether a negative fact already rules the
// statement out.
func contradictsTrace(a cq.Atom, facts []cq.Fact, session map[string]sqlvalue.Value) bool {
	grounded := groundAtom(a, session)
	for _, f := range facts {
		if !f.Negated || f.Atom.Table != a.Table {
			continue
		}
		if negPatternCovers(f.Atom, grounded, session) {
			return true
		}
	}
	return false
}

func groundAtom(a cq.Atom, session map[string]sqlvalue.Value) cq.Atom {
	out := cq.Atom{Table: a.Table, Args: make([]cq.Term, len(a.Args))}
	for i, t := range a.Args {
		if t.IsParam() {
			if v, ok := session[t.Param]; ok {
				out.Args[i] = cq.C(v)
				continue
			}
		}
		out.Args[i] = t
	}
	return out
}

// negPatternCovers reports whether every row matching cand would also
// match the negated pattern (so cand cannot hold).
func negPatternCovers(pattern, cand cq.Atom, session map[string]sqlvalue.Value) bool {
	if len(pattern.Args) != len(cand.Args) {
		return false
	}
	bind := map[string]cq.Term{}
	for i, pt := range pattern.Args {
		ct := cand.Args[i]
		if pt.IsParam() {
			if v, ok := session[pt.Param]; ok {
				pt = cq.C(v)
			}
		}
		switch {
		case pt.IsVar():
			if prev, ok := bind[pt.Var]; ok {
				if !prev.Equal(ct) {
					return false
				}
			} else {
				bind[pt.Var] = ct
			}
		default:
			if !pt.Equal(ct) {
				return false
			}
		}
	}
	return true
}

// verifyCheck re-runs the compliance decision with the hypothetical
// probe appended to the trace as a one-row result.
func verifyCheck(ctx context.Context, chk *checker.Checker, session map[string]sqlvalue.Value, sel *sqlparser.SelectStmt, args sqlparser.Args, tr *trace.Trace, check AccessCheck) bool {
	probeSel, err := sqlparser.ParseSelect(check.CheckSQL)
	if err != nil {
		return false
	}
	// Bind probe parameters from the session.
	named := map[string]sqlvalue.Value{}
	for _, p := range sqlparser.Params(probeSel) {
		if p.Name == "" {
			return false
		}
		v, ok := session[p.Name]
		if !ok {
			return false
		}
		named[p.Name] = v
	}
	hypo := &trace.Trace{}
	if tr != nil {
		hypo = tr.Clone()
	}
	hypo.Append(trace.Entry{
		SQL:     check.CheckSQL,
		Stmt:    probeSel,
		Args:    sqlparser.Args{Named: named},
		Columns: []string{"1"},
		Rows:    [][]sqlvalue.Value{{sqlvalue.NewInt(1)}},
	})
	d := chk.Check(ctx, sel, args, session, hypo)
	return d.Allowed
}
