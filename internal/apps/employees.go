package apps

import (
	"fmt"

	"repro/internal/appdsl"
	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/sqlvalue"
)

// Employees extends the paper's Example 4.2 into a small HR system:
// a public directory hides salaries, every employee sees their own
// full record, and the seniors roster (age >= 60) is released for a
// benefits program — exactly the Q1/Q2 pair the PQI/NQI examples use.
func Employees() *Fixture {
	s := schema.NewBuilder().
		Table("Departments").
		NotNullCol("DeptId", sqlvalue.Int).
		NotNullCol("DeptName", sqlvalue.Text).
		PK("DeptId").Done().
		Table("Employees").
		NotNullCol("Id", sqlvalue.Int).
		NotNullCol("Name", sqlvalue.Text).
		NotNullCol("Age", sqlvalue.Int).
		NotNullCol("Salary", sqlvalue.Int).
		NotNullCol("DeptId", sqlvalue.Int).
		PK("Id").
		FK([]string{"DeptId"}, "Departments", []string{"DeptId"}).Done().
		MustBuild()

	app := &appdsl.App{
		Name:         "employees",
		SessionParam: map[string]string{"user_id": "MyUId"},
		Handlers: []*appdsl.Handler{
			{
				Name: "directory",
				Body: []appdsl.Stmt{
					appdsl.Query{Dest: "dir",
						SQL: "SELECT Id, Name, DeptId FROM Employees"},
					appdsl.Render{From: "dir"},
				},
			},
			{
				Name: "my_record",
				Body: []appdsl.Stmt{
					appdsl.Query{Dest: "me",
						SQL:  "SELECT Id, Name, Age, Salary, DeptId FROM Employees WHERE Id = ?",
						Args: []appdsl.Val{appdsl.SessionRef{Name: "user_id"}}},
					appdsl.Render{From: "me"},
				},
			},
			{
				Name: "seniors_roster",
				Body: []appdsl.Stmt{
					appdsl.Query{Dest: "seniors",
						SQL: "SELECT Name FROM Employees WHERE Age >= 60"},
					appdsl.Render{From: "seniors"},
				},
			},
			{
				Name:   "department_page",
				Params: []string{"dept_id"},
				Body: []appdsl.Stmt{
					appdsl.Query{Dest: "dept",
						SQL:  "SELECT DeptName FROM Departments WHERE DeptId = ?",
						Args: []appdsl.Val{appdsl.ParamRef{Name: "dept_id"}}},
					appdsl.If{Cond: appdsl.Empty{Result: "dept"},
						Then: []appdsl.Stmt{appdsl.Abort{Message: "no such department"}}},
					appdsl.Query{Dest: "members",
						SQL:  "SELECT Name FROM Employees WHERE DeptId = ?",
						Args: []appdsl.Val{appdsl.ParamRef{Name: "dept_id"}}},
					appdsl.Render{From: "members"},
				},
			},
		},
	}

	return &Fixture{
		Name:   "employees",
		Schema: s,
		App:    app,
		PolicySQL: map[string]string{
			"VDirectory": "SELECT Id, Name, DeptId FROM Employees",
			"VOwnRecord": "SELECT Id, Name, Age, Salary, DeptId FROM Employees WHERE Id = ?MyUId",
			"VSeniors":   "SELECT Name FROM Employees WHERE Age >= 60",
			"VDepts":     "SELECT DeptId, DeptName FROM Departments",
		},
		RLSRules: map[string]string{
			// Row-level rules cannot hide just the Salary column; the
			// closest RLS policy restricts Employees to the own row.
			"Employees": "Id = ?MyUId",
		},
		AppTruthSQL: map[string]string{
			"TDirectory":   "SELECT Id, Name, DeptId FROM Employees",
			"TOwnRecord":   "SELECT Id, Name, Age, Salary, DeptId FROM Employees WHERE Id = ?MyUId",
			"TSeniors":     "SELECT Name FROM Employees WHERE Age >= 60",
			"TDeptPage":    "SELECT DeptId, DeptName FROM Departments",
			"TDeptMembers": "SELECT e.Name, e.DeptId FROM Employees e JOIN Departments d ON e.DeptId = d.DeptId",
		},
		Sensitive: map[string]string{
			"SSalaries": "SELECT Name, Salary FROM Employees",
			// Scoped to other principals: removes the self-disclosure
			// finding SSalaries triggers via VOwnRecord.
			"SOthersSalaries": "SELECT Name, Salary FROM Employees WHERE Id <> ?MyUId",
			"SAdults":         "SELECT Name FROM Employees WHERE Age >= 18",
		},
		SessionParam: map[string]string{"user_id": "MyUId"},
		Seed:         seedEmployees,
		Corpus:       employeesCorpus(),
	}
}

func seedEmployees(db *engine.DB, n int) error {
	if n < 4 {
		n = 4
	}
	depts := n/10 + 2
	for d := 1; d <= depts; d++ {
		if err := db.InsertRow("Departments", d, fmt.Sprintf("dept%d", d)); err != nil {
			return err
		}
	}
	for i := 1; i <= n; i++ {
		age := 22 + (i*7)%50 // 22..71
		salary := 50000 + (i*977)%90000
		dept := i%depts + 1
		if err := db.InsertRow("Employees", i, fmt.Sprintf("emp%d", i), age, salary, dept); err != nil {
			return err
		}
	}
	return nil
}

func employeesCorpus() []WorkloadQuery {
	return []WorkloadQuery{
		{Label: "directory", SQL: "SELECT Id, Name, DeptId FROM Employees", UId: 1, WantAllowed: true},
		{Label: "own-record", SQL: "SELECT Salary FROM Employees WHERE Id = ?", Args: []any{1}, UId: 1, WantAllowed: true},
		{Label: "seniors", SQL: "SELECT Name FROM Employees WHERE Age >= 60", UId: 1, WantAllowed: true},
		// Age>=65 is contained in VSeniors but NOT determined by it:
		// the view hides ages, so the subset cannot be computed.
		{Label: "seniors-subset", SQL: "SELECT Name FROM Employees WHERE Age >= 65", UId: 1, WantAllowed: false},
		{Label: "dept-names", SQL: "SELECT DeptName FROM Departments", UId: 1, WantAllowed: true},
		{Label: "dir-dept-join", SQL: "SELECT e.Name, d.DeptName FROM Employees e JOIN Departments d ON e.DeptId = d.DeptId", UId: 1, WantAllowed: true},

		{Label: "all-salaries", SQL: "SELECT Name, Salary FROM Employees", UId: 1, WantAllowed: false},
		{Label: "others-salary", SQL: "SELECT Salary FROM Employees WHERE Id = ?", Args: []any{2}, UId: 1, WantAllowed: false},
		{Label: "adults", SQL: "SELECT Name FROM Employees WHERE Age >= 18", UId: 1, WantAllowed: false},
		{Label: "ages", SQL: "SELECT Name, Age FROM Employees", UId: 1, WantAllowed: false},
	}
}
