package apps

import (
	"context"
	"testing"

	"repro/internal/baseline"
	"repro/internal/checker"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

func TestFixturesBuild(t *testing.T) {
	for _, f := range All() {
		if f.Schema == nil || f.App == nil || len(f.PolicySQL) == 0 || f.Seed == nil {
			t.Errorf("%s: incomplete fixture", f.Name)
		}
		// Policies parse and translate.
		p := f.Policy()
		if len(p.Views) != len(f.PolicySQL) {
			t.Errorf("%s: views %d != %d", f.Name, len(p.Views), len(f.PolicySQL))
		}
		// Seeds insert without constraint violations.
		db, err := f.NewDB(20)
		if err != nil {
			t.Errorf("%s: seed: %v", f.Name, err)
			continue
		}
		for _, table := range db.Tables() {
			if db.RowCount(table) == 0 {
				t.Errorf("%s: table %s empty after seed", f.Name, table)
			}
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("calendar"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown fixture must error")
	}
}

// TestCorpusLabels verifies every fixture's labeled corpus against the
// checker — the substance of experiment E1's accuracy matrix.
func TestCorpusLabels(t *testing.T) {
	for _, f := range All() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			db := f.MustNewDB(20)
			chk := checker.New(f.Policy())
			for _, w := range f.Corpus {
				tr := &trace.Trace{}
				if w.PrimeSQL != "" {
					sel := sqlparser.MustParseSelect(w.PrimeSQL)
					bound, err := sqlparser.Bind(sel, args(w.PrimeArgs...))
					if err != nil {
						t.Fatalf("%s prime: %v", w.Label, err)
					}
					res, err := db.Query(bound.(*sqlparser.SelectStmt))
					if err != nil {
						t.Fatalf("%s prime: %v", w.Label, err)
					}
					rows := make([][]sqlvalue.Value, len(res.Rows))
					for i, r := range res.Rows {
						rows[i] = r
					}
					tr.Append(trace.Entry{
						SQL: w.PrimeSQL, Stmt: sel, Args: args(w.PrimeArgs...),
						Columns: res.Columns, Rows: rows,
					})
				}
				d, err := chk.CheckSQL(context.Background(), w.SQL, args(w.Args...), f.Session(w.UId), tr)
				if err != nil {
					t.Fatalf("%s: %v", w.Label, err)
				}
				if d.Allowed != w.WantAllowed {
					t.Errorf("%s/%s: allowed=%v want %v (%s)",
						f.Name, w.Label, d.Allowed, w.WantAllowed, d.Reason)
				}
				// Allowed queries must also execute.
				if d.Allowed {
					sel := sqlparser.MustParseSelect(w.SQL)
					bound, err := sqlparser.Bind(sel, args(w.Args...))
					if err != nil {
						t.Fatalf("%s bind: %v", w.Label, err)
					}
					if _, err := db.Query(bound.(*sqlparser.SelectStmt)); err != nil {
						t.Errorf("%s: execution failed: %v", w.Label, err)
					}
				}
			}
		})
	}
}

// TestRLSRulesParse validates the baseline configuration of fixtures
// that have one.
func TestRLSRulesParse(t *testing.T) {
	for _, f := range All() {
		if len(f.RLSRules) == 0 {
			continue
		}
		if _, err := baseline.NewRLS(f.Schema, f.RLSRules); err != nil {
			t.Errorf("%s: RLS rules: %v", f.Name, err)
		}
	}
}

// TestSensitiveQueriesParse validates the audit inputs.
func TestSensitiveQueriesParse(t *testing.T) {
	for _, f := range All() {
		for name, sql := range f.Sensitive {
			if _, err := sqlparser.ParseSelect(sql); err != nil {
				t.Errorf("%s/%s: %v", f.Name, name, err)
			}
		}
	}
}
