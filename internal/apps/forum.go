package apps

import (
	"fmt"

	"repro/internal/appdsl"
	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/sqlvalue"
)

// Forum models a small social application with visibility rules: a
// post is readable when it is public, when the reader wrote it, or
// when the reader follows its author. The policy needs three views —
// one per visibility rule — which exercises multi-view coverage and
// UCQ-ish reasoning in the checker.
func Forum() *Fixture {
	s := schema.NewBuilder().
		Table("Users").
		NotNullCol("UId", sqlvalue.Int).
		NotNullCol("Handle", sqlvalue.Text).
		PK("UId").Done().
		Table("Posts").
		OpaqueCol("PId", sqlvalue.Int).
		NotNullCol("AuthorId", sqlvalue.Int).
		NotNullCol("Body", sqlvalue.Text).
		NotNullCol("Visibility", sqlvalue.Text). // 'public' | 'followers'
		PK("PId").
		FK([]string{"AuthorId"}, "Users", []string{"UId"}).Done().
		Table("Follows").
		NotNullCol("Follower", sqlvalue.Int).
		NotNullCol("Followee", sqlvalue.Int).
		PK("Follower", "Followee").
		FK([]string{"Follower"}, "Users", []string{"UId"}).
		FK([]string{"Followee"}, "Users", []string{"UId"}).Done().
		MustBuild()

	app := &appdsl.App{
		Name:         "forum",
		SessionParam: map[string]string{"user_id": "MyUId"},
		Handlers: []*appdsl.Handler{
			{
				Name:   "read_post",
				Params: []string{"post_id"},
				Body: []appdsl.Stmt{
					appdsl.Query{Dest: "pub",
						SQL:  "SELECT Body FROM Posts WHERE PId = ? AND Visibility = 'public'",
						Args: []appdsl.Val{appdsl.ParamRef{Name: "post_id"}}},
					appdsl.If{Cond: appdsl.NotEmpty{Result: "pub"},
						Then: []appdsl.Stmt{appdsl.Render{From: "pub"}},
						Else: []appdsl.Stmt{
							appdsl.Query{Dest: "grant",
								SQL: "SELECT 1 FROM Posts p JOIN Follows f ON p.AuthorId = f.Followee " +
									"WHERE p.PId = ? AND f.Follower = ?",
								Args: []appdsl.Val{appdsl.ParamRef{Name: "post_id"}, appdsl.SessionRef{Name: "user_id"}}},
							appdsl.If{Cond: appdsl.Empty{Result: "grant"},
								Then: []appdsl.Stmt{appdsl.Abort{Message: "not visible"}}},
							appdsl.Query{Dest: "post",
								SQL:  "SELECT Body FROM Posts WHERE PId = ?",
								Args: []appdsl.Val{appdsl.ParamRef{Name: "post_id"}}},
							appdsl.Render{From: "post"},
						}},
				},
			},
			{
				Name: "my_feed",
				Body: []appdsl.Stmt{
					appdsl.Query{Dest: "feed",
						SQL: "SELECT p.PId, p.Body FROM Posts p JOIN Follows f ON p.AuthorId = f.Followee " +
							"WHERE f.Follower = ?",
						Args: []appdsl.Val{appdsl.SessionRef{Name: "user_id"}}},
					appdsl.Render{From: "feed"},
				},
			},
		},
	}

	return &Fixture{
		Name:   "forum",
		Schema: s,
		App:    app,
		PolicySQL: map[string]string{
			"VPublic":   "SELECT PId, AuthorId, Body, Visibility FROM Posts WHERE Visibility = 'public'",
			"VOwn":      "SELECT PId, AuthorId, Body, Visibility FROM Posts WHERE AuthorId = ?MyUId",
			"VFollowed": "SELECT p.PId, p.AuthorId, p.Body, p.Visibility FROM Posts p JOIN Follows f ON p.AuthorId = f.Followee WHERE f.Follower = ?MyUId",
			"VFollows":  "SELECT Followee FROM Follows WHERE Follower = ?MyUId",
			"VHandles":  "SELECT UId, Handle FROM Users",
		},
		RLSRules: map[string]string{
			"Posts": "Visibility = 'public' OR AuthorId = ?MyUId OR " +
				"EXISTS (SELECT 1 FROM Follows WHERE Follows.Followee = AuthorId AND Follows.Follower = ?MyUId)",
			"Follows": "Follower = ?MyUId",
		},
		AppTruthSQL: map[string]string{
			"TPublicRead": "SELECT PId, Body FROM Posts WHERE Visibility = 'public'",
			"TGrantProbe": "SELECT p.PId FROM Posts p JOIN Follows f ON p.AuthorId = f.Followee WHERE f.Follower = ?MyUId",
			"TGuardedRead": "SELECT p.PId, p.Body FROM Posts p JOIN Posts q ON p.PId = q.PId " +
				"JOIN Follows f ON q.AuthorId = f.Followee WHERE f.Follower = ?MyUId",
			"TFeed": "SELECT p.PId, p.Body FROM Posts p JOIN Follows f ON p.AuthorId = f.Followee WHERE f.Follower = ?MyUId",
		},
		Sensitive: map[string]string{
			"SPrivateBodies": "SELECT Body FROM Posts WHERE Visibility = 'followers'",
			"SFollowGraph":   "SELECT Follower, Followee FROM Follows",
		},
		SessionParam: map[string]string{"user_id": "MyUId"},
		Seed:         seedForum,
		Corpus:       forumCorpus(),
	}
}

// seedForum creates n users, each with one public and one followers
// post; user i follows user i+1 (mod n).
func seedForum(db *engine.DB, n int) error {
	if n < 3 {
		n = 3
	}
	for i := 1; i <= n; i++ {
		if err := db.InsertRow("Users", i, fmt.Sprintf("user%d", i)); err != nil {
			return err
		}
	}
	pid := 0
	for i := 1; i <= n; i++ {
		pid++
		if err := db.InsertRow("Posts", pid, i, fmt.Sprintf("public post by %d", i), "public"); err != nil {
			return err
		}
		pid++
		if err := db.InsertRow("Posts", pid, i, fmt.Sprintf("followers post by %d", i), "followers"); err != nil {
			return err
		}
	}
	for i := 1; i <= n; i++ {
		j := i%n + 1
		if j == i {
			continue
		}
		if err := db.InsertRow("Follows", i, j); err != nil {
			return err
		}
	}
	return nil
}

func forumCorpus() []WorkloadQuery {
	return []WorkloadQuery{
		{Label: "public-posts", SQL: "SELECT Body FROM Posts WHERE Visibility = 'public'", UId: 1, WantAllowed: true},
		{Label: "own-posts", SQL: "SELECT PId, Body FROM Posts WHERE AuthorId = ?", Args: []any{1}, UId: 1, WantAllowed: true},
		{Label: "feed", SQL: "SELECT p.PId, p.Body FROM Posts p JOIN Follows f ON p.AuthorId = f.Followee WHERE f.Follower = ?", Args: []any{1}, UId: 1, WantAllowed: true},
		{Label: "my-follows", SQL: "SELECT Followee FROM Follows WHERE Follower = ?", Args: []any{1}, UId: 1, WantAllowed: true},
		{Label: "handles", SQL: "SELECT Handle FROM Users", UId: 1, WantAllowed: true},
		{Label: "public-by-author", SQL: "SELECT Body FROM Posts WHERE Visibility = 'public' AND AuthorId = ?", Args: []any{3}, UId: 1, WantAllowed: true},
		{Label: "union-public-own", SQL: "SELECT PId, Body FROM Posts WHERE Visibility = 'public' UNION SELECT PId, Body FROM Posts WHERE AuthorId = ?", Args: []any{1}, UId: 1, WantAllowed: true},

		{Label: "all-posts", SQL: "SELECT Body FROM Posts", UId: 1, WantAllowed: false},
		{Label: "private-posts", SQL: "SELECT Body FROM Posts WHERE Visibility = 'followers'", UId: 1, WantAllowed: false},
		{Label: "others-follows", SQL: "SELECT Followee FROM Follows WHERE Follower = ?", Args: []any{2}, UId: 1, WantAllowed: false},
		{Label: "follow-graph", SQL: "SELECT Follower, Followee FROM Follows", UId: 1, WantAllowed: false},
		{Label: "post-no-grant", SQL: "SELECT Body FROM Posts WHERE PId = ?", Args: []any{4}, UId: 1, WantAllowed: false},
		{Label: "union-leaking-arm", SQL: "SELECT PId, Body FROM Posts WHERE Visibility = 'public' UNION SELECT PId, Body FROM Posts WHERE Visibility = 'followers'", UId: 1, WantAllowed: false},
	}
}
