package apps

import (
	"fmt"

	"repro/internal/appdsl"
	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/sqlvalue"
)

// Hospital is the paper's Example 4.1: staff may see the doctor
// assigned to each patient and the diseases each doctor treats, while
// the disease each patient is treated for is sensitive. The staff
// principal is modeled with MyUId = staff id (staff see all patients'
// doctor assignments, so the views are unparameterized; the principal
// still has an identity for auditing).
func Hospital() *Fixture {
	s := schema.NewBuilder().
		Table("Doctors").
		NotNullCol("DId", sqlvalue.Int).
		NotNullCol("DName", sqlvalue.Text).
		PK("DId").Done().
		Table("Treats").
		NotNullCol("DocId", sqlvalue.Int).
		NotNullCol("Disease", sqlvalue.Text).
		PK("DocId", "Disease").
		FK([]string{"DocId"}, "Doctors", []string{"DId"}).Done().
		Table("Patients").
		OpaqueCol("PId", sqlvalue.Int).
		NotNullCol("PName", sqlvalue.Text).
		NotNullCol("DocId", sqlvalue.Int).
		NotNullCol("Disease", sqlvalue.Text).
		PK("PId").
		FK([]string{"DocId"}, "Doctors", []string{"DId"}).
		FK([]string{"DocId", "Disease"}, "Treats", []string{"DocId", "Disease"}).Done().
		MustBuild()

	app := &appdsl.App{
		Name:         "hospital",
		SessionParam: map[string]string{"user_id": "MyUId"},
		Handlers: []*appdsl.Handler{
			{
				Name:   "patient_card",
				Params: []string{"patient_id"},
				Body: []appdsl.Stmt{
					appdsl.Query{Dest: "card",
						SQL:  "SELECT PName, DocId FROM Patients WHERE PId = ?",
						Args: []appdsl.Val{appdsl.ParamRef{Name: "patient_id"}}},
					appdsl.Render{From: "card"},
				},
			},
			{
				Name:   "doctor_page",
				Params: []string{"doctor_id"},
				Body: []appdsl.Stmt{
					appdsl.Query{Dest: "doc",
						SQL:  "SELECT DName FROM Doctors WHERE DId = ?",
						Args: []appdsl.Val{appdsl.ParamRef{Name: "doctor_id"}}},
					appdsl.Query{Dest: "treats",
						SQL:  "SELECT Disease FROM Treats WHERE DocId = ?",
						Args: []appdsl.Val{appdsl.ParamRef{Name: "doctor_id"}}},
					appdsl.Render{From: "doc"},
					appdsl.Render{From: "treats"},
				},
			},
		},
	}

	return &Fixture{
		Name:   "hospital",
		Schema: s,
		App:    app,
		PolicySQL: map[string]string{
			"VPatientDoctor": "SELECT PId, PName, DocId FROM Patients",
			"VDoctorTreats":  "SELECT DocId, Disease FROM Treats",
			"VDoctors":       "SELECT DId, DName FROM Doctors",
		},
		RLSRules: map[string]string{
			// RLS cannot express column hiding: it would have to hide
			// whole patient rows or reveal the disease column. This
			// mismatch is part of the E2 comparison narrative.
		},
		AppTruthSQL: map[string]string{
			"TPatientCard": "SELECT PId, PName, DocId FROM Patients",
			"TDoctors":     "SELECT DId, DName FROM Doctors",
			"TTreats":      "SELECT DocId, Disease FROM Treats",
		},
		Sensitive: map[string]string{
			"SPatientDisease": "SELECT PName, Disease FROM Patients",
		},
		SessionParam: map[string]string{"user_id": "MyUId"},
		Seed:         seedHospital,
		Corpus:       hospitalCorpus(),
	}
}

var hospitalDiseases = []string{"pneumonia", "tb", "flu", "measles", "asthma"}

// seedHospital creates n/4+1 doctors each treating two diseases, and n
// patients assigned round-robin.
func seedHospital(db *engine.DB, n int) error {
	if n < 4 {
		n = 4
	}
	docs := n/4 + 1
	for d := 1; d <= docs; d++ {
		if err := db.InsertRow("Doctors", d, fmt.Sprintf("dr%d", d)); err != nil {
			return err
		}
		d1 := hospitalDiseases[d%len(hospitalDiseases)]
		d2 := hospitalDiseases[(d+1)%len(hospitalDiseases)]
		if err := db.InsertRow("Treats", d, d1); err != nil {
			return err
		}
		if err := db.InsertRow("Treats", d, d2); err != nil {
			return err
		}
	}
	for p := 1; p <= n; p++ {
		doc := p%docs + 1
		disease := hospitalDiseases[doc%len(hospitalDiseases)]
		if p%2 == 0 {
			disease = hospitalDiseases[(doc+1)%len(hospitalDiseases)]
		}
		if err := db.InsertRow("Patients", p, fmt.Sprintf("patient%d", p), doc, disease); err != nil {
			return err
		}
	}
	return nil
}

func hospitalCorpus() []WorkloadQuery {
	return []WorkloadQuery{
		{Label: "patient-doctor", SQL: "SELECT PName, DocId FROM Patients", UId: 1, WantAllowed: true},
		{Label: "one-patient-card", SQL: "SELECT PName, DocId FROM Patients WHERE PId = ?", Args: []any{1}, UId: 1, WantAllowed: true},
		{Label: "doctor-treats", SQL: "SELECT Disease FROM Treats WHERE DocId = ?", Args: []any{1}, UId: 1, WantAllowed: true},
		{Label: "doctor-names", SQL: "SELECT DName FROM Doctors", UId: 1, WantAllowed: true},
		{Label: "doctor-join", SQL: "SELECT p.PName, t.Disease FROM Patients p JOIN Treats t ON p.DocId = t.DocId", UId: 1, WantAllowed: true},

		{Label: "patient-disease", SQL: "SELECT PName, Disease FROM Patients", UId: 1, WantAllowed: false},
		{Label: "one-patient-disease", SQL: "SELECT Disease FROM Patients WHERE PId = ?", Args: []any{1}, UId: 1, WantAllowed: false},
	}
}
