// Package apps bundles the model applications the evaluation suite
// runs against. Each fixture packages what a real deployment would
// have: a schema, seed-data generators, application handlers (in the
// appdsl), the ground-truth policy an expert would write, the
// row-level-security rules the query-modification baseline needs, the
// operator's sensitive queries for auditing, and a labeled query
// corpus (compliant and violating) for enforcement experiments.
//
// The calendar fixture is the paper's running example (Example 2.1 /
// Listing 1); hospital is Example 4.1; employees extends Example 4.2;
// forum exercises multi-view coverage with visibility rules.
package apps

import (
	"fmt"

	"repro/internal/appdsl"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
)

// WorkloadQuery is one labeled query of a fixture's corpus.
type WorkloadQuery struct {
	// Label identifies the query in reports.
	Label string
	SQL   string
	Args  []any
	// UId is the principal issuing the query.
	UId int64
	// WantAllowed is the ground-truth compliance label.
	WantAllowed bool
	// PrimeSQL, when non-empty, is a query to run first so its result
	// enters the history (history-dependent cases like Example 2.1).
	PrimeSQL  string
	PrimeArgs []any
}

// Fixture is one complete model application.
type Fixture struct {
	Name   string
	Schema *schema.Schema
	// App holds the handlers for extraction experiments.
	App *appdsl.App
	// PolicySQL is the ground-truth policy (name -> view SQL).
	PolicySQL map[string]string
	// AppTruthSQL is the maximally restrictive policy embodied in the
	// App's handlers — the target the §3 extractors should recover.
	// It can be narrower than PolicySQL (an operator may grant more
	// than the app currently uses).
	AppTruthSQL map[string]string
	// RLSRules configure the query-modification baseline.
	RLSRules map[string]string
	// Sensitive maps a name to a sensitive query for disclosure
	// auditing.
	Sensitive map[string]string
	// Seed populates a database with about `size` rows per main table.
	Seed func(db *engine.DB, size int) error
	// Corpus is the labeled enforcement workload.
	Corpus []WorkloadQuery
	// SessionParam names the session attribute mapping for extraction.
	SessionParam map[string]string
}

// Policy builds the ground-truth policy.
func (f *Fixture) Policy() *policy.Policy {
	return policy.MustNew(f.Schema, f.PolicySQL)
}

// AppTruth builds the app-embodied policy the extractors target.
func (f *Fixture) AppTruth() *policy.Policy {
	if len(f.AppTruthSQL) == 0 {
		return f.Policy()
	}
	return policy.MustNew(f.Schema, f.AppTruthSQL)
}

// NewDB creates a seeded database.
func (f *Fixture) NewDB(size int) (*engine.DB, error) {
	db := engine.New(f.Schema)
	if err := f.Seed(db, size); err != nil {
		return nil, err
	}
	return db, nil
}

// MustNewDB is NewDB, panicking on error.
func (f *Fixture) MustNewDB(size int) *engine.DB {
	db, err := f.NewDB(size)
	if err != nil {
		panic(err)
	}
	return db
}

// Session returns the session attribute map for a principal.
func (f *Fixture) Session(uid int64) map[string]sqlvalue.Value {
	return map[string]sqlvalue.Value{"MyUId": sqlvalue.NewInt(uid)}
}

// All returns every fixture.
func All() []*Fixture {
	return []*Fixture{Calendar(), Hospital(), Employees(), Forum()}
}

// ByName returns the named fixture.
func ByName(name string) (*Fixture, error) {
	for _, f := range All() {
		if f.Name == name {
			return f, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown fixture %q", name)
}

// args converts Go values to parser args.
func args(vals ...any) sqlparser.Args { return sqlparser.PositionalArgs(vals...) }
