package apps

import (
	"fmt"

	"repro/internal/appdsl"
	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/sqlvalue"
)

// Calendar is the paper's running example: users attend events and may
// see only events they attend (Example 2.1's views V1 and V2, plus a
// profile view). Its show_event handler is Listing 1 verbatim.
func Calendar() *Fixture {
	s := schema.NewBuilder().
		Table("Users").
		NotNullCol("UId", sqlvalue.Int).
		NotNullCol("Name", sqlvalue.Text).
		PK("UId").Done().
		Table("Events").
		OpaqueCol("EId", sqlvalue.Int).
		NotNullCol("Title", sqlvalue.Text).
		Col("Notes", sqlvalue.Text).
		PK("EId").Done().
		Table("Attendance").
		NotNullCol("UId", sqlvalue.Int).
		NotNullCol("EId", sqlvalue.Int).
		PK("UId", "EId").
		FK([]string{"UId"}, "Users", []string{"UId"}).
		FK([]string{"EId"}, "Events", []string{"EId"}).Done().
		MustBuild()

	app := &appdsl.App{
		Name:         "calendar",
		SessionParam: map[string]string{"user_id": "MyUId"},
		Handlers: []*appdsl.Handler{
			{
				// Listing 1: access-check then fetch.
				Name:   "show_event",
				Params: []string{"event_id"},
				Body: []appdsl.Stmt{
					appdsl.Query{Dest: "check",
						SQL:  "SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?",
						Args: []appdsl.Val{appdsl.SessionRef{Name: "user_id"}, appdsl.ParamRef{Name: "event_id"}}},
					appdsl.If{Cond: appdsl.Empty{Result: "check"},
						Then: []appdsl.Stmt{appdsl.Abort{Message: "event not found"}}},
					appdsl.Query{Dest: "event",
						SQL:  "SELECT * FROM Events WHERE EId = ?",
						Args: []appdsl.Val{appdsl.ParamRef{Name: "event_id"}}},
					appdsl.Render{From: "event"},
				},
			},
			{
				Name: "list_events",
				Body: []appdsl.Stmt{
					appdsl.Query{Dest: "mine",
						SQL:  "SELECT EId FROM Attendance WHERE UId = ?",
						Args: []appdsl.Val{appdsl.SessionRef{Name: "user_id"}}},
					appdsl.ForEach{Over: "mine", Row: "r", Body: []appdsl.Stmt{
						appdsl.Query{Dest: "ev",
							SQL:  "SELECT Title FROM Events WHERE EId = ?",
							Args: []appdsl.Val{appdsl.RowRef{Row: "r", Column: "EId"}}},
						appdsl.Render{From: "ev"},
					}},
				},
			},
			{
				Name: "profile",
				Body: []appdsl.Stmt{
					appdsl.Query{Dest: "me",
						SQL:  "SELECT Name FROM Users WHERE UId = ?",
						Args: []appdsl.Val{appdsl.SessionRef{Name: "user_id"}}},
					appdsl.Render{From: "me"},
				},
			},
		},
	}

	return &Fixture{
		Name:   "calendar",
		Schema: s,
		App:    app,
		PolicySQL: map[string]string{
			"V1":  "SELECT EId FROM Attendance WHERE UId = ?MyUId",
			"V2":  "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?MyUId",
			"VMe": "SELECT Name FROM Users WHERE UId = ?MyUId",
		},
		AppTruthSQL: map[string]string{
			"T1":  "SELECT EId FROM Attendance WHERE UId = ?MyUId",
			"T2":  "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?MyUId",
			"TMe": "SELECT Name FROM Users WHERE UId = ?MyUId",
		},
		RLSRules: map[string]string{
			"Attendance": "UId = ?MyUId",
			"Events":     "EXISTS (SELECT 1 FROM Attendance WHERE Attendance.EId = EId AND Attendance.UId = ?MyUId)",
			"Users":      "UId = ?MyUId",
		},
		Sensitive: map[string]string{
			"SAllAttendance": "SELECT UId, EId FROM Attendance",
			"SAllNotes":      "SELECT Notes FROM Events",
		},
		SessionParam: map[string]string{"user_id": "MyUId"},
		Seed:         seedCalendar,
		Corpus:       calendarCorpus(),
	}
}

// seedCalendar populates n users, n events, and ~2n attendance rows:
// user i attends events i+1 and i+2 (mod n). No user attends the
// event sharing their id, so black-box mining cannot spuriously
// correlate event ids with session ids.
func seedCalendar(db *engine.DB, n int) error {
	if n < 3 {
		n = 3
	}
	for i := 1; i <= n; i++ {
		if err := db.InsertRow("Users", i, fmt.Sprintf("user%d", i)); err != nil {
			return err
		}
		var notes any
		if i%3 == 0 {
			notes = fmt.Sprintf("notes for %d", i)
		}
		if err := db.InsertRow("Events", i, fmt.Sprintf("event%d", i), notes); err != nil {
			return err
		}
	}
	for i := 1; i <= n; i++ {
		j1 := i%n + 1
		j2 := (i+1)%n + 1
		if err := db.InsertRow("Attendance", i, j1); err != nil {
			return err
		}
		if j2 != j1 {
			if err := db.InsertRow("Attendance", i, j2); err != nil {
				return err
			}
		}
	}
	return nil
}

func calendarCorpus() []WorkloadQuery {
	return []WorkloadQuery{
		{Label: "own-attendance", SQL: "SELECT EId FROM Attendance WHERE UId = ?", Args: []any{1}, UId: 1, WantAllowed: true},
		{Label: "own-events-join", SQL: "SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?", Args: []any{1}, UId: 1, WantAllowed: true},
		{Label: "own-profile", SQL: "SELECT Name FROM Users WHERE UId = ?", Args: []any{1}, UId: 1, WantAllowed: true},
		{Label: "attendance-probe", SQL: "SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", Args: []any{1, 2}, UId: 1, WantAllowed: true},
		{Label: "event-after-probe", SQL: "SELECT * FROM Events WHERE EId = ?", Args: []any{2}, UId: 1, WantAllowed: true,
			PrimeSQL: "SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", PrimeArgs: []any{1, 2}},
		{Label: "own-count", SQL: "SELECT COUNT(*) FROM Attendance WHERE UId = ?", Args: []any{1}, UId: 1, WantAllowed: true},

		{Label: "event-no-probe", SQL: "SELECT * FROM Events WHERE EId = ?", Args: []any{2}, UId: 1, WantAllowed: false},
		{Label: "others-attendance", SQL: "SELECT EId FROM Attendance WHERE UId = ?", Args: []any{2}, UId: 1, WantAllowed: false},
		{Label: "all-attendance", SQL: "SELECT UId, EId FROM Attendance", UId: 1, WantAllowed: false},
		{Label: "others-profile", SQL: "SELECT Name FROM Users WHERE UId = ?", Args: []any{2}, UId: 1, WantAllowed: false},
		{Label: "all-titles", SQL: "SELECT Title FROM Events", UId: 1, WantAllowed: false},
		{Label: "global-count", SQL: "SELECT COUNT(*) FROM Attendance", UId: 1, WantAllowed: false},
	}
}
