// Package schema describes relational schemas: tables, typed columns,
// primary and unique keys, and foreign keys. Every other subsystem —
// the engine, the compliance checker, the extractor, and the
// disclosure auditor — resolves column references against a Schema.
package schema

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sqlvalue"
)

// Column is one typed column of a table.
type Column struct {
	Name    string
	Type    sqlvalue.Type
	NotNull bool
	// Opaque marks the column as an opaque identifier (§3.2.2 of the
	// paper): concrete values of this column must never appear in an
	// extracted policy, which forces the extractor to generalize them.
	Opaque bool
}

// ForeignKey declares that Columns of this table reference
// RefColumns of RefTable.
type ForeignKey struct {
	Columns    []string
	RefTable   string
	RefColumns []string
}

// Table is a named relation.
type Table struct {
	Name        string
	Columns     []Column
	PrimaryKey  []string // column names; may be empty
	UniqueKeys  [][]string
	ForeignKeys []ForeignKey

	colIndex map[string]int
}

// Schema is a set of tables. The zero value is an empty schema ready
// for AddTable.
type Schema struct {
	tables map[string]*Table
	order  []string // insertion order for deterministic iteration
}

// New returns an empty schema.
func New() *Schema {
	return &Schema{tables: make(map[string]*Table)}
}

// AddTable validates t and adds it to the schema. Table and column
// name lookups are case-insensitive; the declared spelling is kept for
// display.
func (s *Schema) AddTable(t *Table) error {
	if t.Name == "" {
		return fmt.Errorf("schema: table with empty name")
	}
	key := strings.ToLower(t.Name)
	if _, dup := s.tables[key]; dup {
		return fmt.Errorf("schema: duplicate table %q", t.Name)
	}
	if len(t.Columns) == 0 {
		return fmt.Errorf("schema: table %q has no columns", t.Name)
	}
	t.colIndex = make(map[string]int, len(t.Columns))
	for i, c := range t.Columns {
		ck := strings.ToLower(c.Name)
		if ck == "" {
			return fmt.Errorf("schema: table %q has a column with empty name", t.Name)
		}
		if _, dup := t.colIndex[ck]; dup {
			return fmt.Errorf("schema: table %q has duplicate column %q", t.Name, c.Name)
		}
		t.colIndex[ck] = i
	}
	check := func(cols []string, what string) error {
		if len(cols) == 0 {
			return fmt.Errorf("schema: table %q has empty %s", t.Name, what)
		}
		for _, c := range cols {
			if _, ok := t.colIndex[strings.ToLower(c)]; !ok {
				return fmt.Errorf("schema: table %q %s references unknown column %q", t.Name, what, c)
			}
		}
		return nil
	}
	if len(t.PrimaryKey) > 0 {
		if err := check(t.PrimaryKey, "primary key"); err != nil {
			return err
		}
	}
	for _, uk := range t.UniqueKeys {
		if err := check(uk, "unique key"); err != nil {
			return err
		}
	}
	for _, fk := range t.ForeignKeys {
		if err := check(fk.Columns, "foreign key"); err != nil {
			return err
		}
		if len(fk.Columns) != len(fk.RefColumns) {
			return fmt.Errorf("schema: table %q foreign key arity mismatch", t.Name)
		}
	}
	s.tables[key] = t
	s.order = append(s.order, key)
	return nil
}

// Table returns the table by (case-insensitive) name.
func (s *Schema) Table(name string) (*Table, bool) {
	t, ok := s.tables[strings.ToLower(name)]
	return t, ok
}

// MustTable is Table, panicking when absent. For seed code and tests.
func (s *Schema) MustTable(name string) *Table {
	t, ok := s.Table(name)
	if !ok {
		panic(fmt.Sprintf("schema: no table %q", name))
	}
	return t
}

// Tables returns all tables in insertion order.
func (s *Schema) Tables() []*Table {
	out := make([]*Table, 0, len(s.order))
	for _, k := range s.order {
		out = append(out, s.tables[k])
	}
	return out
}

// Validate cross-checks foreign keys now that all tables are present.
func (s *Schema) Validate() error {
	for _, t := range s.Tables() {
		for _, fk := range t.ForeignKeys {
			ref, ok := s.Table(fk.RefTable)
			if !ok {
				return fmt.Errorf("schema: table %q references unknown table %q", t.Name, fk.RefTable)
			}
			for i, rc := range fk.RefColumns {
				ri, ok := ref.ColumnIndex(rc)
				if !ok {
					return fmt.Errorf("schema: table %q FK references unknown column %s.%s", t.Name, fk.RefTable, rc)
				}
				ci, _ := t.ColumnIndex(fk.Columns[i])
				if t.Columns[ci].Type != ref.Columns[ri].Type {
					return fmt.Errorf("schema: FK type mismatch %s.%s (%s) vs %s.%s (%s)",
						t.Name, fk.Columns[i], t.Columns[ci].Type, ref.Name, rc, ref.Columns[ri].Type)
				}
			}
		}
	}
	return nil
}

// ColumnIndex returns the position of the named column.
func (t *Table) ColumnIndex(name string) (int, bool) {
	if t.colIndex == nil {
		for i, c := range t.Columns {
			if strings.EqualFold(c.Name, name) {
				return i, true
			}
		}
		return 0, false
	}
	i, ok := t.colIndex[strings.ToLower(name)]
	return i, ok
}

// Column returns the named column.
func (t *Table) Column(name string) (Column, bool) {
	i, ok := t.ColumnIndex(name)
	if !ok {
		return Column{}, false
	}
	return t.Columns[i], true
}

// ColumnNames returns the declared column names in order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

// IsKey reports whether the given set of columns contains a primary or
// unique key of the table (so a match on them identifies at most one
// row). Column names are case-insensitive.
func (t *Table) IsKey(cols []string) bool {
	have := make(map[string]bool, len(cols))
	for _, c := range cols {
		have[strings.ToLower(c)] = true
	}
	covers := func(key []string) bool {
		if len(key) == 0 {
			return false
		}
		for _, k := range key {
			if !have[strings.ToLower(k)] {
				return false
			}
		}
		return true
	}
	if covers(t.PrimaryKey) {
		return true
	}
	for _, uk := range t.UniqueKeys {
		if covers(uk) {
			return true
		}
	}
	return false
}

// String renders the schema as CREATE TABLE statements, sorted by
// table name, for debugging and golden tests.
func (s *Schema) String() string {
	tables := s.Tables()
	sort.Slice(tables, func(i, j int) bool { return tables[i].Name < tables[j].Name })
	var b strings.Builder
	for _, t := range tables {
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	return b.String()
}

// String renders the table as a CREATE TABLE statement.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE TABLE %s (", t.Name)
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
		if c.NotNull {
			b.WriteString(" NOT NULL")
		}
	}
	if len(t.PrimaryKey) > 0 {
		fmt.Fprintf(&b, ", PRIMARY KEY (%s)", strings.Join(t.PrimaryKey, ", "))
	}
	for _, uk := range t.UniqueKeys {
		fmt.Fprintf(&b, ", UNIQUE (%s)", strings.Join(uk, ", "))
	}
	for _, fk := range t.ForeignKeys {
		fmt.Fprintf(&b, ", FOREIGN KEY (%s) REFERENCES %s (%s)",
			strings.Join(fk.Columns, ", "), fk.RefTable, strings.Join(fk.RefColumns, ", "))
	}
	b.WriteString(");")
	return b.String()
}

// Builder offers a fluent way to declare tables in Go code.
type Builder struct {
	s   *Schema
	err error
}

// NewBuilder returns a Builder over a fresh schema.
func NewBuilder() *Builder { return &Builder{s: New()} }

// TableBuilder accumulates one table.
type TableBuilder struct {
	b *Builder
	t *Table
}

// Table starts a new table declaration.
func (b *Builder) Table(name string) *TableBuilder {
	return &TableBuilder{b: b, t: &Table{Name: name}}
}

// Col adds a nullable column.
func (tb *TableBuilder) Col(name string, typ sqlvalue.Type) *TableBuilder {
	tb.t.Columns = append(tb.t.Columns, Column{Name: name, Type: typ})
	return tb
}

// NotNullCol adds a NOT NULL column.
func (tb *TableBuilder) NotNullCol(name string, typ sqlvalue.Type) *TableBuilder {
	tb.t.Columns = append(tb.t.Columns, Column{Name: name, Type: typ, NotNull: true})
	return tb
}

// OpaqueCol adds a NOT NULL column flagged as an opaque identifier.
func (tb *TableBuilder) OpaqueCol(name string, typ sqlvalue.Type) *TableBuilder {
	tb.t.Columns = append(tb.t.Columns, Column{Name: name, Type: typ, NotNull: true, Opaque: true})
	return tb
}

// PK sets the primary key.
func (tb *TableBuilder) PK(cols ...string) *TableBuilder {
	tb.t.PrimaryKey = cols
	return tb
}

// Unique adds a unique key.
func (tb *TableBuilder) Unique(cols ...string) *TableBuilder {
	tb.t.UniqueKeys = append(tb.t.UniqueKeys, cols)
	return tb
}

// FK adds a foreign key.
func (tb *TableBuilder) FK(cols []string, refTable string, refCols []string) *TableBuilder {
	tb.t.ForeignKeys = append(tb.t.ForeignKeys, ForeignKey{Columns: cols, RefTable: refTable, RefColumns: refCols})
	return tb
}

// Done finishes the table and returns to the schema builder.
func (tb *TableBuilder) Done() *Builder {
	if tb.b.err == nil {
		tb.b.err = tb.b.s.AddTable(tb.t)
	}
	return tb.b
}

// Build validates and returns the schema.
func (b *Builder) Build() (*Schema, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.s.Validate(); err != nil {
		return nil, err
	}
	return b.s, nil
}

// MustBuild is Build, panicking on error.
func (b *Builder) MustBuild() *Schema {
	s, err := b.Build()
	if err != nil {
		panic(err)
	}
	return s
}
