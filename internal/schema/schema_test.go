package schema

import (
	"strings"
	"testing"

	"repro/internal/sqlvalue"
)

func calendarSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewBuilder().
		Table("Users").
		NotNullCol("UId", sqlvalue.Int).
		NotNullCol("Name", sqlvalue.Text).
		PK("UId").Done().
		Table("Events").
		OpaqueCol("EId", sqlvalue.Int).
		NotNullCol("Title", sqlvalue.Text).
		Col("Notes", sqlvalue.Text).
		PK("EId").Done().
		Table("Attendance").
		NotNullCol("UId", sqlvalue.Int).
		NotNullCol("EId", sqlvalue.Int).
		PK("UId", "EId").
		FK([]string{"UId"}, "Users", []string{"UId"}).
		FK([]string{"EId"}, "Events", []string{"EId"}).Done().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuilderAndLookup(t *testing.T) {
	s := calendarSchema(t)
	if len(s.Tables()) != 3 {
		t.Fatalf("want 3 tables, got %d", len(s.Tables()))
	}
	tab, ok := s.Table("attendance") // case-insensitive
	if !ok {
		t.Fatal("lookup attendance failed")
	}
	if tab.Name != "Attendance" {
		t.Errorf("declared spelling lost: %q", tab.Name)
	}
	i, ok := tab.ColumnIndex("eid")
	if !ok || i != 1 {
		t.Errorf("ColumnIndex(eid) = %d,%v", i, ok)
	}
	c, ok := s.MustTable("Events").Column("EId")
	if !ok || !c.Opaque || c.Type != sqlvalue.Int {
		t.Errorf("Events.EId = %+v", c)
	}
}

func TestIsKey(t *testing.T) {
	s := calendarSchema(t)
	att := s.MustTable("Attendance")
	if !att.IsKey([]string{"UId", "EId"}) {
		t.Error("composite PK should be a key")
	}
	if !att.IsKey([]string{"eid", "uid", "extra"}) {
		t.Error("superset of PK should be a key")
	}
	if att.IsKey([]string{"UId"}) {
		t.Error("half of composite PK is not a key")
	}
	ev := s.MustTable("Events")
	if !ev.IsKey([]string{"EId"}) {
		t.Error("PK column should be a key")
	}
	if ev.IsKey(nil) {
		t.Error("empty column set is never a key")
	}
}

func TestUniqueKeyIsKey(t *testing.T) {
	s, err := NewBuilder().
		Table("T").NotNullCol("a", sqlvalue.Int).NotNullCol("b", sqlvalue.Text).
		PK("a").Unique("b").Done().Build()
	if err != nil {
		t.Fatal(err)
	}
	if !s.MustTable("T").IsKey([]string{"b"}) {
		t.Error("unique column should be a key")
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*Schema, error)
	}{
		{"duplicate table", func() (*Schema, error) {
			return NewBuilder().
				Table("T").Col("a", sqlvalue.Int).Done().
				Table("t").Col("a", sqlvalue.Int).Done().Build()
		}},
		{"duplicate column", func() (*Schema, error) {
			return NewBuilder().Table("T").Col("a", sqlvalue.Int).Col("A", sqlvalue.Int).Done().Build()
		}},
		{"no columns", func() (*Schema, error) {
			return NewBuilder().Table("T").Done().Build()
		}},
		{"bad PK column", func() (*Schema, error) {
			return NewBuilder().Table("T").Col("a", sqlvalue.Int).PK("b").Done().Build()
		}},
		{"FK to unknown table", func() (*Schema, error) {
			return NewBuilder().Table("T").Col("a", sqlvalue.Int).
				FK([]string{"a"}, "Nope", []string{"x"}).Done().Build()
		}},
		{"FK arity mismatch", func() (*Schema, error) {
			return NewBuilder().
				Table("U").Col("x", sqlvalue.Int).Done().
				Table("T").Col("a", sqlvalue.Int).
				FK([]string{"a"}, "U", []string{"x", "y"}).Done().Build()
		}},
		{"FK type mismatch", func() (*Schema, error) {
			return NewBuilder().
				Table("U").Col("x", sqlvalue.Text).Done().
				Table("T").Col("a", sqlvalue.Int).
				FK([]string{"a"}, "U", []string{"x"}).Done().Build()
		}},
	}
	for _, c := range cases {
		if _, err := c.build(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestStringRendering(t *testing.T) {
	s := calendarSchema(t)
	out := s.String()
	for _, want := range []string{
		"CREATE TABLE Attendance",
		"PRIMARY KEY (UId, EId)",
		"FOREIGN KEY (EId) REFERENCES Events (EId)",
		"Title TEXT NOT NULL",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("schema string missing %q in:\n%s", want, out)
		}
	}
}

func TestColumnIndexWithoutMap(t *testing.T) {
	// A Table built directly (not via AddTable) still resolves columns.
	tab := &Table{Name: "X", Columns: []Column{{Name: "Foo", Type: sqlvalue.Int}}}
	i, ok := tab.ColumnIndex("foo")
	if !ok || i != 0 {
		t.Errorf("ColumnIndex on raw table = %d,%v", i, ok)
	}
}
