package trace

import (
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
)

func calSchema(t testing.TB) *schema.Schema {
	t.Helper()
	s, err := schema.NewBuilder().
		Table("Events").
		NotNullCol("EId", sqlvalue.Int).
		NotNullCol("Title", sqlvalue.Text).
		PK("EId").Done().
		Table("Attendance").
		NotNullCol("UId", sqlvalue.Int).
		NotNullCol("EId", sqlvalue.Int).
		PK("UId", "EId").Done().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func entry(sql string, rows ...[]sqlvalue.Value) Entry {
	stmt := sqlparser.MustParseSelect(sql)
	return Entry{SQL: sql, Stmt: stmt, Args: sqlparser.NoArgs, Rows: rows}
}

func iv(vals ...int64) []sqlvalue.Value {
	out := make([]sqlvalue.Value, len(vals))
	for i, v := range vals {
		out[i] = sqlvalue.NewInt(v)
	}
	return out
}

func TestPositiveFactFromGroundQuery(t *testing.T) {
	s := calSchema(t)
	tr := &Trace{}
	tr.Append(entry("SELECT 1 FROM Attendance WHERE UId=1 AND EId=2", iv(1)))
	facts := Facts(s, tr)
	if len(facts) != 1 {
		t.Fatalf("facts: %v", facts)
	}
	if facts[0].Negated || facts[0].Atom.Table != "attendance" {
		t.Fatalf("fact: %v", facts[0])
	}
	if facts[0].Atom.Args[0].Const.Int() != 1 || facts[0].Atom.Args[1].Const.Int() != 2 {
		t.Fatalf("fact args: %v", facts[0])
	}
}

func TestPositiveFactsFromHeadVariables(t *testing.T) {
	s := calSchema(t)
	tr := &Trace{}
	tr.Append(entry("SELECT EId FROM Attendance WHERE UId=1", iv(2), iv(5)))
	facts := Facts(s, tr)
	if len(facts) != 2 {
		t.Fatalf("facts: %v", facts)
	}
	for i, want := range []int64{2, 5} {
		if facts[i].Atom.Args[1].Const.Int() != want {
			t.Errorf("fact %d: %v", i, facts[i])
		}
	}
}

func TestNegativeFactFromEmptyResult(t *testing.T) {
	s := calSchema(t)
	tr := &Trace{}
	tr.Append(entry("SELECT 1 FROM Attendance WHERE UId=1 AND EId=9"))
	facts := Facts(s, tr)
	if len(facts) != 1 || !facts[0].Negated {
		t.Fatalf("facts: %v", facts)
	}
}

func TestNoFactsFromJoinRowsWithHiddenColumns(t *testing.T) {
	s := calSchema(t)
	tr := &Trace{}
	// Join projecting only Title: the Attendance atom's EId is not
	// recoverable from the result.
	tr.Append(entry(
		"SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = 1",
		[]sqlvalue.Value{sqlvalue.NewText("retro")}))
	facts := Facts(s, tr)
	if len(facts) != 0 {
		t.Fatalf("no atoms should be fully determined: %v", facts)
	}
}

func TestJoinFactsWithFullProjection(t *testing.T) {
	s := calSchema(t)
	tr := &Trace{}
	tr.Append(entry(
		"SELECT e.EId, e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = 1",
		[]sqlvalue.Value{sqlvalue.NewInt(2), sqlvalue.NewText("retro")}))
	facts := Facts(s, tr)
	// Both atoms become ground: events(2,'retro') and attendance(1,2).
	if len(facts) != 2 {
		t.Fatalf("facts: %v", facts)
	}
}

func TestNoFactsFromAggregates(t *testing.T) {
	s := calSchema(t)
	tr := &Trace{}
	tr.Append(entry("SELECT COUNT(*) FROM Attendance WHERE UId=1", iv(3)))
	if facts := Facts(s, tr); len(facts) != 0 {
		t.Fatalf("aggregates yield no facts: %v", facts)
	}
}

func TestNoNegativeFactsForJoins(t *testing.T) {
	s := calSchema(t)
	tr := &Trace{}
	tr.Append(entry("SELECT 1 FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = 1"))
	if facts := Facts(s, tr); len(facts) != 0 {
		t.Fatalf("multi-atom emptiness doesn't localize: %v", facts)
	}
}

func TestFactsDeduplicated(t *testing.T) {
	s := calSchema(t)
	tr := &Trace{}
	tr.Append(entry("SELECT 1 FROM Attendance WHERE UId=1 AND EId=2", iv(1)))
	tr.Append(entry("SELECT 1 FROM Attendance WHERE UId=1 AND EId=2", iv(1)))
	if facts := Facts(s, tr); len(facts) != 1 {
		t.Fatalf("duplicate facts should merge: %v", facts)
	}
}

func TestCloneAndString(t *testing.T) {
	tr := &Trace{}
	tr.Append(entry("SELECT 1 FROM Attendance WHERE UId=1 AND EId=2", iv(1)))
	cp := tr.Clone()
	cp.Append(entry("SELECT 1 FROM Attendance WHERE UId=1 AND EId=3"))
	if tr.Len() != 1 || cp.Len() != 2 {
		t.Fatal("clone shares entries slice")
	}
	if !strings.Contains(tr.String(), "1 row(s)") {
		t.Errorf("rendering: %s", tr)
	}
}

func TestFactsSkipOutOfFragmentQueries(t *testing.T) {
	s := calSchema(t)
	tr := &Trace{}
	tr.Append(entry("SELECT Title FROM Events WHERE Title LIKE 'a%'",
		[]sqlvalue.Value{sqlvalue.NewText("abc")}))
	if facts := Facts(s, tr); len(facts) != 0 {
		t.Fatalf("out-of-fragment queries yield no facts: %v", facts)
	}
}
