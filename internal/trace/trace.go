// Package trace records the query history the compliance checker
// reasons over: each entry is an issued query with its arguments and
// observed result. From a trace we derive ground facts — rows known to
// exist in the database, and patterns known to match no row — which is
// what lets the checker allow queries that would be non-compliant in
// isolation (the paper's Example 2.1).
//
// Fact derivation is incremental: a Trace memoizes the facts derived
// from each appended entry, so a session of n queries costs n entry
// translations in total rather than n per check (which made the
// enforcement hot path O(n²)). Entries are immutable once appended,
// so the cache never needs per-entry invalidation — only extension
// for newly appended entries, or a rebuild if the schema changes.
package trace

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/cq"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
)

// Entry is one observed query with its result.
type Entry struct {
	SQL  string
	Stmt *sqlparser.SelectStmt // parsed, unbound
	Args sqlparser.Args
	// Rows are the result tuples (projected through the query's select
	// list); Columns their labels.
	Columns []string
	Rows    [][]sqlvalue.Value
}

// Trace is an append-only query history for one request/session.
// The zero value is ready to use. A Trace may be shared by concurrent
// checkers: Append and fact derivation are internally synchronized.
type Trace struct {
	Entries []Entry

	mu sync.Mutex
	fc *factCache
	// Cache counters: entries whose derivation was reused vs freshly
	// translated (see FactCacheStats).
	reused, translated uint64
}

// factCache holds incrementally derived facts for one schema.
type factCache struct {
	schema *schema.Schema
	upto   int // entries processed so far
	seen   map[string]bool
	facts  []cq.Fact
}

// FactCacheStats reports the incremental fact cache's effectiveness:
// Reused counts entries whose derived facts were served from cache,
// Translated counts entries that had to be parsed/bound/translated.
type FactCacheStats struct {
	Reused     uint64
	Translated uint64
}

// Append records a query and its observed result. The entry must not
// be mutated afterwards.
func (t *Trace) Append(e Entry) {
	t.mu.Lock()
	t.Entries = append(t.Entries, e)
	t.mu.Unlock()
}

// Len returns the number of entries.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.Entries)
}

// Clone copies the trace (entries are immutable once appended, so a
// shallow copy of the slice suffices). The clone starts with an empty
// fact cache; it is rebuilt lazily on first use.
func (t *Trace) Clone() *Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	return &Trace{Entries: append([]Entry(nil), t.Entries...)}
}

// String renders the trace compactly.
func (t *Trace) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	for i, e := range t.Entries {
		fmt.Fprintf(&b, "[%d] %s -> %d row(s)\n", i+1, e.SQL, len(e.Rows))
	}
	return b.String()
}

// FactCacheStats returns the cache counters.
func (t *Trace) FactCacheStats() FactCacheStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return FactCacheStats{Reused: t.reused, Translated: t.translated}
}

// Facts derives ground facts from the trace, incrementally: entries
// already processed for this schema are served from the per-trace
// cache, and only entries appended since the last call are translated.
// The returned slice is freshly allocated on every call; the facts it
// holds are shared with the cache and must be treated as immutable
// (callers that rewrite terms must clone, as cq.Fact.Atom.Clone does).
func (t *Trace) Facts(s *schema.Schema) []cq.Fact {
	t.mu.Lock()
	defer t.mu.Unlock()
	fc := t.fc
	// (Re)build from scratch when the cache is missing, was built for
	// a different schema, or the trace shrank (cannot happen through
	// Append, but a caller rebinding Entries directly gets correctness
	// over speed).
	if fc == nil || fc.schema != s || fc.upto > len(t.Entries) {
		fc = &factCache{schema: s, seen: make(map[string]bool)}
		t.fc = fc
	}
	t.reused += uint64(fc.upto)
	if fc.upto < len(t.Entries) {
		tr := &cq.Translator{Schema: s}
		for i := fc.upto; i < len(t.Entries); i++ {
			appendEntryFacts(tr, &t.Entries[i], func(f cq.Fact) {
				k := f.String()
				if !fc.seen[k] {
					fc.seen[k] = true
					fc.facts = append(fc.facts, f)
				}
			})
			t.translated++
		}
		fc.upto = len(t.Entries)
	}
	return append([]cq.Fact(nil), fc.facts...)
}

// Facts derives ground facts from the trace, using the trace's
// incremental cache. See (*Trace).Facts for the derivation rules.
func Facts(s *schema.Schema, t *Trace) []cq.Fact {
	return t.Facts(s)
}

// FactsUncached derives the facts from scratch without touching the
// trace's cache. It exists for ablation benchmarks and as an oracle in
// tests; production paths should use (*Trace).Facts.
func FactsUncached(s *schema.Schema, t *Trace) []cq.Fact {
	t.mu.Lock()
	entries := append([]Entry(nil), t.Entries...)
	t.mu.Unlock()
	var out []cq.Fact
	seen := make(map[string]bool)
	tr := &cq.Translator{Schema: s}
	for i := range entries {
		appendEntryFacts(tr, &entries[i], func(f cq.Fact) {
			k := f.String()
			if !seen[k] {
				seen[k] = true
				out = append(out, f)
			}
		})
	}
	return out
}

// appendEntryFacts derives the facts of a single entry and hands each
// to add (which owns deduplication). A positive fact R(c1..cn) is
// derived from a returned row when the query is a single-disjunct CQ
// and every argument of an atom is forced: either a constant/bound
// parameter, or a head variable whose value the row supplies. A
// negative fact (pattern known to match no rows) is derived from an
// empty result for a single-atom CQ: no row of R matches the pattern.
func appendEntryFacts(tr *cq.Translator, e *Entry, add func(cq.Fact)) {
	bound, err := sqlparser.Bind(e.Stmt, e.Args)
	if err != nil {
		return
	}
	ucq, err := tr.TranslateSelect(bound.(*sqlparser.SelectStmt))
	if err != nil {
		return // outside the fragment: no facts derivable
	}
	if len(ucq) != 1 {
		return // disjunctive queries don't pin down which branch matched
	}
	q := ucq[0]
	if q.AggApprox {
		// Aggregate answers don't expose row contents; no positive
		// facts. (A COUNT(*)=0 observation would justify a negative
		// fact, but the aggregate result row is non-empty either
		// way, so we conservatively derive nothing.)
		return
	}
	if len(e.Rows) == 0 {
		// Empty result: for a single-atom query, the pattern has
		// no matching row (conservatively skip queries with
		// comparisons beyond the atom's own constants, where
		// emptiness doesn't localize to the atom).
		if len(q.Atoms) == 1 && len(q.Comps) == 0 {
			add(cq.Fact{Atom: q.Atoms[0].Clone(), Negated: true})
		}
		return
	}
	// Positive facts per returned row.
	for _, row := range e.Rows {
		if len(row) != len(q.Head) {
			continue
		}
		// Head variable -> observed value.
		bind := make(map[string]sqlvalue.Value)
		okRow := true
		for i, h := range q.Head {
			switch {
			case h.IsVar():
				if prev, dup := bind[h.Var]; dup && !sqlvalue.Identical(prev, row[i]) {
					okRow = false
				}
				bind[h.Var] = row[i]
			case h.IsConst():
				// Sanity: observed value should equal the constant.
				if !sqlvalue.Identical(h.Const, row[i]) {
					okRow = false
				}
			}
		}
		if !okRow {
			continue
		}
		for _, a := range q.Atoms {
			ground := cq.Atom{Table: a.Table, Args: make([]cq.Term, len(a.Args))}
			full := true
			for i, arg := range a.Args {
				switch {
				case arg.IsConst():
					ground.Args[i] = arg
				case arg.IsVar():
					v, ok := bind[arg.Var]
					if !ok {
						full = false
					} else {
						ground.Args[i] = cq.C(v)
					}
				default: // unbound parameter: not ground
					full = false
				}
				if !full {
					break
				}
			}
			if full {
				add(cq.Fact{Atom: ground})
			}
		}
	}
}
