// Package trace records the query history the compliance checker
// reasons over: each entry is an issued query with its arguments and
// observed result. From a trace we derive ground facts — rows known to
// exist in the database, and patterns known to match no row — which is
// what lets the checker allow queries that would be non-compliant in
// isolation (the paper's Example 2.1).
//
// Fact derivation is incremental: a Trace memoizes the facts derived
// from each appended entry, so a session of n queries costs n entry
// translations in total rather than n per check (which made the
// enforcement hot path O(n²)). Entries are immutable once appended,
// so the cache never needs per-entry invalidation — only extension
// for newly appended entries, or a rebuild if the schema changes.
package trace

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/cq"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
)

// Entry is one observed query with its result.
type Entry struct {
	SQL  string
	Stmt *sqlparser.SelectStmt // parsed, unbound
	Args sqlparser.Args
	// Rows are the result tuples (projected through the query's select
	// list); Columns their labels.
	Columns []string
	Rows    [][]sqlvalue.Value
}

// Trace is an append-only query history for one request/session.
// The zero value is ready to use. A Trace may be shared by concurrent
// checkers: Append and fact derivation are internally synchronized.
//
// A Trace may be bounded (SetWindow): past the bound the oldest
// entries are evicted on Append. Eviction only ever forgets facts, so
// decisions over a windowed trace are sound — merely more conservative
// than over the full history. Absolute entry indices (what the append
// hook reports, and what the durable WAL records) keep counting across
// evictions and restores, so replay can always tell a duplicate from
// new history.
type Trace struct {
	Entries []Entry

	mu sync.Mutex
	fc *factCache
	// window bounds len(Entries); 0 means unlimited.
	window int
	// evicted counts entries dropped from the front over the trace's
	// lifetime (including a restore base): Entries[i] has absolute
	// index evicted+i.
	evicted uint64
	// hook, when set, observes every Append with the entry's absolute
	// index (see SetHook).
	hook func(idx uint64, e *Entry)
	// Cache counters: entries whose derivation was reused vs freshly
	// translated (see FactCacheStats).
	reused, translated uint64
}

// factCache holds incrementally derived facts for one schema. keys
// holds each fact's canonical string, rendered exactly once at
// derivation time (it is needed for dedup anyway) so checkers can key
// their memos off it without re-rendering per check.
type factCache struct {
	schema *schema.Schema
	upto   int // entries processed so far
	seen   map[string]bool
	facts  []cq.Fact
	keys   []string
}

// FactCacheStats reports the incremental fact cache's effectiveness:
// Reused counts entries whose derived facts were served from cache,
// Translated counts entries that had to be parsed/bound/translated.
type FactCacheStats struct {
	Reused     uint64
	Translated uint64
}

// Append records a query and its observed result. The entry must not
// be mutated afterwards. When a window is set, the oldest entries are
// evicted to keep the trace within bound. The append hook, if any,
// runs after the entry is recorded, UNDER the trace lock: a trace may
// be shared by concurrent appenders (two connections on one durable
// session), and the hook enqueueing WAL records inside the lock is
// what guarantees the log sees indices in order — hook invocations for
// one trace are totally ordered by index.
func (t *Trace) Append(e Entry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Entries = append(t.Entries, e)
	idx := t.evicted + uint64(len(t.Entries)) - 1
	t.evictLocked()
	if t.hook != nil {
		t.hook(idx, &e)
	}
}

// evictLocked enforces the window bound. Evicting from the front
// invalidates the incremental fact cache (its prefix changed), so the
// facts of the surviving window are re-derived on next use.
func (t *Trace) evictLocked() {
	if t.window <= 0 || len(t.Entries) <= t.window {
		return
	}
	drop := len(t.Entries) - t.window
	t.Entries = append([]Entry(nil), t.Entries[drop:]...)
	t.evicted += uint64(drop)
	t.fc = nil
}

// SetWindow bounds the trace to at most n entries (0 restores
// unlimited), evicting the oldest immediately if already over. A
// windowed trace pays a full window re-derivation of facts per
// eviction; it is meant for long-lived bounded sessions, not the
// unbounded hot path.
func (t *Trace) SetWindow(n int) {
	t.mu.Lock()
	t.window = n
	t.evictLocked()
	t.mu.Unlock()
}

// Window returns the configured bound (0 = unlimited).
func (t *Trace) Window() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.window
}

// Evicted returns how many entries have been dropped from the front
// over the trace's lifetime (restore bases included).
func (t *Trace) Evicted() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

// SetHook installs the append observer (nil uninstalls). The durable
// WAL uses it to log every recorded entry; the hook runs under the
// trace lock and may block (e.g. waiting on group commit), which
// backpressures that trace only. The hook must not call back into the
// trace.
func (t *Trace) SetHook(fn func(idx uint64, e *Entry)) {
	t.mu.Lock()
	t.hook = fn
	t.mu.Unlock()
}

// Restore replaces the trace's contents with recovered history whose
// first entry has absolute index base. The window bound (if set
// beforehand) applies immediately, so restoring a long history into a
// smaller window keeps only its tail — with absolute indices intact.
// The hook is not invoked for restored entries: they are already
// durable.
func (t *Trace) Restore(entries []Entry, base uint64) {
	t.mu.Lock()
	t.Entries = append([]Entry(nil), entries...)
	t.evicted = base
	t.fc = nil
	t.evictLocked()
	t.mu.Unlock()
}

// SnapshotState copies the current entries and their base offset (the
// absolute index of Entries[0]) — what a checkpoint serializes.
func (t *Trace) SnapshotState() ([]Entry, uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Entry(nil), t.Entries...), t.evicted
}

// NextIndex returns the absolute index the next appended entry will
// get.
func (t *Trace) NextIndex() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted + uint64(len(t.Entries))
}

// Len returns the number of entries.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.Entries)
}

// Clone copies the trace (entries are immutable once appended, so a
// shallow copy of the slice suffices). The clone keeps the window
// bound and base offset but not the append hook — a diagnostic copy
// must never double-log to the WAL. It starts with an empty fact
// cache, rebuilt lazily on first use.
func (t *Trace) Clone() *Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	return &Trace{
		Entries: append([]Entry(nil), t.Entries...),
		window:  t.window,
		evicted: t.evicted,
	}
}

// String renders the trace compactly.
func (t *Trace) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	for i, e := range t.Entries {
		fmt.Fprintf(&b, "[%d] %s -> %d row(s)\n", i+1, e.SQL, len(e.Rows))
	}
	return b.String()
}

// FactCacheStats returns the cache counters.
func (t *Trace) FactCacheStats() FactCacheStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return FactCacheStats{Reused: t.reused, Translated: t.translated}
}

// Facts derives ground facts from the trace, incrementally: entries
// already processed for this schema are served from the per-trace
// cache, and only entries appended since the last call are translated.
// The returned slice is freshly allocated on every call; the facts it
// holds are shared with the cache and must be treated as immutable
// (callers that rewrite terms must clone, as cq.Fact.Atom.Clone does).
func (t *Trace) Facts(s *schema.Schema) []cq.Fact {
	facts, _ := t.FactsKeyed(s)
	return append([]cq.Fact(nil), facts...)
}

// FactsKeyed is Facts without the defensive copy: it returns the
// cache's own fact slice alongside each fact's canonical string
// (rendered once at derivation, not per call). Both slices are shared,
// immutable snapshots — the cache only ever appends past their length,
// never rewrites the returned prefix — so the warm decide path can
// walk a long history with zero per-check allocation. Callers must not
// mutate either slice or retain them across a schema change.
func (t *Trace) FactsKeyed(s *schema.Schema) ([]cq.Fact, []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fc := t.fc
	// (Re)build from scratch when the cache is missing, was built for
	// a different schema, or the trace shrank (cannot happen through
	// Append, but a caller rebinding Entries directly gets correctness
	// over speed).
	if fc == nil || fc.schema != s || fc.upto > len(t.Entries) {
		fc = &factCache{schema: s, seen: make(map[string]bool)}
		t.fc = fc
	}
	t.reused += uint64(fc.upto)
	if fc.upto < len(t.Entries) {
		tr := &cq.Translator{Schema: s}
		for i := fc.upto; i < len(t.Entries); i++ {
			appendEntryFacts(tr, &t.Entries[i], func(f cq.Fact) {
				k := f.String()
				if !fc.seen[k] {
					fc.seen[k] = true
					fc.facts = append(fc.facts, f)
					fc.keys = append(fc.keys, k)
				}
			})
			t.translated++
		}
		fc.upto = len(t.Entries)
	}
	// Full slice expressions pin capacity at the snapshot length, so a
	// later in-place append can never write inside a returned view.
	n := len(fc.facts)
	return fc.facts[:n:n], fc.keys[:n:n]
}

// Facts derives ground facts from the trace, using the trace's
// incremental cache. See (*Trace).Facts for the derivation rules.
func Facts(s *schema.Schema, t *Trace) []cq.Fact {
	return t.Facts(s)
}

// FactsUncached derives the facts from scratch without touching the
// trace's cache. It exists for ablation benchmarks and as an oracle in
// tests; production paths should use (*Trace).Facts.
func FactsUncached(s *schema.Schema, t *Trace) []cq.Fact {
	t.mu.Lock()
	entries := append([]Entry(nil), t.Entries...)
	t.mu.Unlock()
	var out []cq.Fact
	seen := make(map[string]bool)
	tr := &cq.Translator{Schema: s}
	for i := range entries {
		appendEntryFacts(tr, &entries[i], func(f cq.Fact) {
			k := f.String()
			if !seen[k] {
				seen[k] = true
				out = append(out, f)
			}
		})
	}
	return out
}

// appendEntryFacts derives the facts of a single entry and hands each
// to add (which owns deduplication). A positive fact R(c1..cn) is
// derived from a returned row when the query is a single-disjunct CQ
// and every argument of an atom is forced: either a constant/bound
// parameter, or a head variable whose value the row supplies. A
// negative fact (pattern known to match no rows) is derived from an
// empty result for a single-atom CQ: no row of R matches the pattern.
func appendEntryFacts(tr *cq.Translator, e *Entry, add func(cq.Fact)) {
	bound, err := sqlparser.Bind(e.Stmt, e.Args)
	if err != nil {
		return
	}
	ucq, err := tr.TranslateSelect(bound.(*sqlparser.SelectStmt))
	if err != nil {
		return // outside the fragment: no facts derivable
	}
	if len(ucq) != 1 {
		return // disjunctive queries don't pin down which branch matched
	}
	q := ucq[0]
	if q.AggApprox {
		// Aggregate answers don't expose row contents; no positive
		// facts. (A COUNT(*)=0 observation would justify a negative
		// fact, but the aggregate result row is non-empty either
		// way, so we conservatively derive nothing.)
		return
	}
	if len(e.Rows) == 0 {
		// Empty result: for a single-atom query, the pattern has
		// no matching row (conservatively skip queries with
		// comparisons beyond the atom's own constants, where
		// emptiness doesn't localize to the atom).
		if len(q.Atoms) == 1 && len(q.Comps) == 0 {
			add(cq.Fact{Atom: q.Atoms[0].Clone(), Negated: true})
		}
		return
	}
	// Positive facts per returned row.
	for _, row := range e.Rows {
		if len(row) != len(q.Head) {
			continue
		}
		// Head variable -> observed value.
		bind := make(map[string]sqlvalue.Value)
		okRow := true
		for i, h := range q.Head {
			switch {
			case h.IsVar():
				if prev, dup := bind[h.Var]; dup && !sqlvalue.Identical(prev, row[i]) {
					okRow = false
				}
				bind[h.Var] = row[i]
			case h.IsConst():
				// Sanity: observed value should equal the constant.
				if !sqlvalue.Identical(h.Const, row[i]) {
					okRow = false
				}
			}
		}
		if !okRow {
			continue
		}
		for _, a := range q.Atoms {
			ground := cq.Atom{Table: a.Table, Args: make([]cq.Term, len(a.Args))}
			full := true
			for i, arg := range a.Args {
				switch {
				case arg.IsConst():
					ground.Args[i] = arg
				case arg.IsVar():
					v, ok := bind[arg.Var]
					if !ok {
						full = false
					} else {
						ground.Args[i] = cq.C(v)
					}
				default: // unbound parameter: not ground
					full = false
				}
				if !full {
					break
				}
			}
			if full {
				add(cq.Fact{Atom: ground})
			}
		}
	}
}
