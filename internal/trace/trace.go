// Package trace records the query history the compliance checker
// reasons over: each entry is an issued query with its arguments and
// observed result. From a trace we derive ground facts — rows known to
// exist in the database, and patterns known to match no row — which is
// what lets the checker allow queries that would be non-compliant in
// isolation (the paper's Example 2.1).
package trace

import (
	"fmt"
	"strings"

	"repro/internal/cq"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
)

// Entry is one observed query with its result.
type Entry struct {
	SQL  string
	Stmt *sqlparser.SelectStmt // parsed, unbound
	Args sqlparser.Args
	// Rows are the result tuples (projected through the query's select
	// list); Columns their labels.
	Columns []string
	Rows    [][]sqlvalue.Value
}

// Trace is an append-only query history for one request/session.
type Trace struct {
	Entries []Entry
}

// Append records a query and its observed result.
func (t *Trace) Append(e Entry) { t.Entries = append(t.Entries, e) }

// Len returns the number of entries.
func (t *Trace) Len() int { return len(t.Entries) }

// Clone copies the trace (entries are immutable once appended, so a
// shallow copy of the slice suffices).
func (t *Trace) Clone() *Trace {
	return &Trace{Entries: append([]Entry(nil), t.Entries...)}
}

// String renders the trace compactly.
func (t *Trace) String() string {
	var b strings.Builder
	for i, e := range t.Entries {
		fmt.Fprintf(&b, "[%d] %s -> %d row(s)\n", i+1, e.SQL, len(e.Rows))
	}
	return b.String()
}

// Facts derives ground facts from the trace. A positive fact
// R(c1..cn) is derived from a returned row when the query is a
// single-disjunct CQ and every argument of an atom is forced: either a
// constant/bound parameter, or a head variable whose value the row
// supplies. A negative fact (pattern known to match no rows) is
// derived from an empty result for a single-atom CQ: no row of R
// matches the pattern.
func Facts(s *schema.Schema, t *Trace) []cq.Fact {
	var out []cq.Fact
	seen := make(map[string]bool)
	add := func(f cq.Fact) {
		k := f.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, f)
		}
	}
	tr := &cq.Translator{Schema: s}
	for _, e := range t.Entries {
		bound, err := sqlparser.Bind(e.Stmt, e.Args)
		if err != nil {
			continue
		}
		ucq, err := tr.TranslateSelect(bound.(*sqlparser.SelectStmt))
		if err != nil {
			continue // outside the fragment: no facts derivable
		}
		if len(ucq) != 1 {
			continue // disjunctive queries don't pin down which branch matched
		}
		q := ucq[0]
		if q.AggApprox {
			// Aggregate answers don't expose row contents; no positive
			// facts. (A COUNT(*)=0 observation would justify a negative
			// fact, but the aggregate result row is non-empty either
			// way, so we conservatively derive nothing.)
			continue
		}
		if len(e.Rows) == 0 {
			// Empty result: for a single-atom query, the pattern has
			// no matching row (conservatively skip queries with
			// comparisons beyond the atom's own constants, where
			// emptiness doesn't localize to the atom).
			if len(q.Atoms) == 1 && len(q.Comps) == 0 {
				add(cq.Fact{Atom: q.Atoms[0].Clone(), Negated: true})
			}
			continue
		}
		// Positive facts per returned row.
		for _, row := range e.Rows {
			if len(row) != len(q.Head) {
				continue
			}
			// Head variable -> observed value.
			bind := make(map[string]sqlvalue.Value)
			okRow := true
			for i, h := range q.Head {
				switch {
				case h.IsVar():
					if prev, dup := bind[h.Var]; dup && !sqlvalue.Identical(prev, row[i]) {
						okRow = false
					}
					bind[h.Var] = row[i]
				case h.IsConst():
					// Sanity: observed value should equal the constant.
					if !sqlvalue.Identical(h.Const, row[i]) {
						okRow = false
					}
				}
			}
			if !okRow {
				continue
			}
			for _, a := range q.Atoms {
				ground := cq.Atom{Table: a.Table, Args: make([]cq.Term, len(a.Args))}
				full := true
				for i, arg := range a.Args {
					switch {
					case arg.IsConst():
						ground.Args[i] = arg
					case arg.IsVar():
						v, ok := bind[arg.Var]
						if !ok {
							full = false
						} else {
							ground.Args[i] = cq.C(v)
						}
					default: // unbound parameter: not ground
						full = false
					}
					if !full {
						break
					}
				}
				if full {
					add(cq.Fact{Atom: ground})
				}
			}
		}
	}
	return out
}
