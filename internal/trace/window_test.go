package trace

import (
	"fmt"
	"testing"
)

// Window, eviction, and restore edge cases — the state machine the
// durable WAL's checkpoints and recovery are built on. Absolute entry
// indices (evicted + position) must stay consistent through every
// combination of eviction and restore, or replay dedup breaks.

func probeEntry(uid, eid int64) Entry {
	return entry(fmt.Sprintf("SELECT 1 FROM Attendance WHERE UId=%d AND EId=%d", uid, eid), iv(1))
}

func TestWindowEvictsOldest(t *testing.T) {
	tr := &Trace{}
	tr.SetWindow(3)
	for i := int64(0); i < 5; i++ {
		tr.Append(probeEntry(1, i))
	}
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want 3", tr.Len())
	}
	if tr.Evicted() != 2 {
		t.Fatalf("evicted = %d, want 2", tr.Evicted())
	}
	if tr.NextIndex() != 5 {
		t.Fatalf("next index = %d, want 5 (absolute indices survive eviction)", tr.NextIndex())
	}
	entries, base := tr.SnapshotState()
	if base != 2 || len(entries) != 3 {
		t.Fatalf("snapshot base=%d len=%d, want 2/3", base, len(entries))
	}
	// The survivors are the three newest.
	if entries[0].SQL != probeEntry(1, 2).SQL {
		t.Fatalf("wrong survivor at window front: %s", entries[0].SQL)
	}
}

func TestShrinkingWindowEvictsImmediately(t *testing.T) {
	tr := &Trace{}
	for i := int64(0); i < 6; i++ {
		tr.Append(probeEntry(1, i))
	}
	tr.SetWindow(2)
	if tr.Len() != 2 || tr.Evicted() != 4 {
		t.Fatalf("len=%d evicted=%d after shrink, want 2/4", tr.Len(), tr.Evicted())
	}
	// Widening never resurrects: the forgotten prefix stays forgotten.
	tr.SetWindow(10)
	if tr.Len() != 2 || tr.NextIndex() != 6 {
		t.Fatalf("len=%d next=%d after widen, want 2/6", tr.Len(), tr.NextIndex())
	}
}

func TestRestoreIntoSmallerWindow(t *testing.T) {
	// Recovery replays a long history into a session whose window is
	// smaller than what survived on disk: only the tail is kept, and
	// absolute indices must account for the immediately-evicted prefix.
	var long []Entry
	for i := int64(0); i < 8; i++ {
		long = append(long, probeEntry(1, i))
	}
	tr := &Trace{}
	tr.SetWindow(3)
	tr.Restore(long, 10) // first restored entry has absolute index 10
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want 3", tr.Len())
	}
	entries, base := tr.SnapshotState()
	if base != 15 {
		t.Fatalf("base = %d, want 15 (10 + 5 evicted on restore)", base)
	}
	if entries[0].SQL != long[5].SQL {
		t.Fatalf("window kept the wrong tail: %s", entries[0].SQL)
	}
	if tr.NextIndex() != 18 {
		t.Fatalf("next index = %d, want 18", tr.NextIndex())
	}
	// Appends continue the absolute numbering.
	tr.Append(probeEntry(1, 99))
	if tr.NextIndex() != 19 || tr.Len() != 3 {
		t.Fatalf("after append: next=%d len=%d, want 19/3", tr.NextIndex(), tr.Len())
	}
}

func TestRestoreEmptyTrace(t *testing.T) {
	// An empty restore at a nonzero base models a session whose whole
	// history was evicted before the checkpoint: no entries, but the
	// index counter must resume where it left off.
	tr := &Trace{}
	tr.Restore(nil, 7)
	if tr.Len() != 0 || tr.NextIndex() != 7 {
		t.Fatalf("len=%d next=%d, want 0/7", tr.Len(), tr.NextIndex())
	}
	tr.Append(probeEntry(1, 1))
	if tr.NextIndex() != 8 || tr.Evicted() != 7 {
		t.Fatalf("next=%d evicted=%d after append, want 8/7", tr.NextIndex(), tr.Evicted())
	}
}

func TestRestoreReplacesExistingEntries(t *testing.T) {
	// Restore is a replacement, not a merge: pre-existing entries (a
	// duplicate hello racing recovery, say) must not survive it.
	tr := &Trace{}
	tr.Append(probeEntry(9, 9))
	tr.Restore([]Entry{probeEntry(1, 1), probeEntry(1, 2)}, 4)
	entries, base := tr.SnapshotState()
	if len(entries) != 2 || base != 4 {
		t.Fatalf("len=%d base=%d, want 2/4", len(entries), base)
	}
	if entries[0].SQL != probeEntry(1, 1).SQL {
		t.Fatalf("restore did not replace: %s", entries[0].SQL)
	}
}

func TestRestoreInvalidatesFactCache(t *testing.T) {
	s := calSchema(t)
	tr := &Trace{}
	tr.Append(probeEntry(1, 1))
	if n := len(Facts(s, tr)); n != 1 {
		t.Fatalf("facts before restore: %d", n)
	}
	tr.Restore([]Entry{probeEntry(2, 3), probeEntry(2, 4)}, 0)
	facts := Facts(s, tr)
	if len(facts) != 2 {
		t.Fatalf("facts after restore: %d, want 2 (cache must rebuild)", len(facts))
	}
	for _, f := range facts {
		if f.Atom.Args[0].Const.Int() == 1 {
			t.Fatalf("stale pre-restore fact survived: %v", f)
		}
	}
}

func TestEvictionInvalidatesFactCache(t *testing.T) {
	s := calSchema(t)
	tr := &Trace{}
	tr.SetWindow(2)
	tr.Append(probeEntry(1, 1))
	tr.Append(probeEntry(1, 2))
	if n := len(Facts(s, tr)); n != 2 {
		t.Fatalf("facts at window capacity: %d", n)
	}
	tr.Append(probeEntry(1, 3)) // evicts (1,1)
	facts := Facts(s, tr)
	if len(facts) != 2 {
		t.Fatalf("facts after eviction: %d, want 2", len(facts))
	}
	for _, f := range facts {
		if f.Atom.Args[1].Const.Int() == 1 {
			t.Fatalf("evicted entry's fact survived: %v", f)
		}
	}
}

func TestWindowedCloneKeepsBound(t *testing.T) {
	tr := &Trace{}
	tr.SetWindow(2)
	for i := int64(0); i < 4; i++ {
		tr.Append(probeEntry(1, i))
	}
	cl := tr.Clone()
	if cl.Window() != 2 || cl.Evicted() != 2 {
		t.Fatalf("clone window=%d evicted=%d, want 2/2", cl.Window(), cl.Evicted())
	}
	cl.Append(probeEntry(1, 9))
	if cl.Len() != 2 || tr.Len() != 2 {
		t.Fatalf("clone len=%d orig len=%d, want 2/2", cl.Len(), tr.Len())
	}
	if cl.NextIndex() != 5 || tr.NextIndex() != 4 {
		t.Fatalf("clone next=%d orig next=%d, want 5/4 (independent after clone)", cl.NextIndex(), tr.NextIndex())
	}
}

func TestHookSeesAbsoluteIndicesAcrossEviction(t *testing.T) {
	tr := &Trace{}
	tr.SetWindow(2)
	var got []uint64
	tr.SetHook(func(idx uint64, e *Entry) { got = append(got, idx) })
	for i := int64(0); i < 5; i++ {
		tr.Append(probeEntry(1, i))
	}
	for i, idx := range got {
		if idx != uint64(i) {
			t.Fatalf("hook indices %v: eviction must not disturb absolute numbering", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("hook fired %d times, want 5", len(got))
	}
}

// The append hook runs under the trace lock: concurrent appenders on a
// shared trace (two connections, one durable session) must produce
// hook invocations in strict index order, or the WAL sees a
// permutation it replays as corruption. The hook body needs no extra
// locking — that serialization IS the contract.
func TestConcurrentAppendHookOrdered(t *testing.T) {
	tr := &Trace{}
	var seen []uint64
	tr.SetHook(func(idx uint64, _ *Entry) { seen = append(seen, idx) })
	const goroutines, perG = 8, 50
	done := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := int64(0); i < perG; i++ {
				tr.Append(probeEntry(1, i))
			}
		}()
	}
	for g := 0; g < goroutines; g++ {
		<-done
	}
	if len(seen) != goroutines*perG {
		t.Fatalf("hook ran %d times, want %d", len(seen), goroutines*perG)
	}
	for i, idx := range seen {
		if idx != uint64(i) {
			t.Fatalf("hook invocation %d got index %d (out of order)", i, idx)
		}
	}
}
