package trace

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/schema"
)

// TestIncrementalFactsMatchUncached grows a trace entry by entry and
// checks that the cached derivation always equals a from-scratch one.
func TestIncrementalFactsMatchUncached(t *testing.T) {
	s := calSchema(t)
	tr := &Trace{}
	for i := 0; i < 30; i++ {
		switch i % 3 {
		case 0:
			tr.Append(entry(fmt.Sprintf("SELECT 1 FROM Attendance WHERE UId=1 AND EId=%d", i), iv(1)))
		case 1:
			tr.Append(entry(fmt.Sprintf("SELECT EId FROM Attendance WHERE UId=%d", i), iv(int64(i)), iv(int64(i+1))))
		default:
			tr.Append(entry(fmt.Sprintf("SELECT 1 FROM Attendance WHERE UId=9 AND EId=%d", i))) // empty: negative fact
		}
		got := tr.Facts(s)
		want := FactsUncached(s, tr)
		if len(got) != len(want) {
			t.Fatalf("after %d entries: cached %d facts, uncached %d", i+1, len(got), len(want))
		}
		for j := range got {
			if got[j].String() != want[j].String() || got[j].Negated != want[j].Negated {
				t.Fatalf("after %d entries, fact %d: cached %v, uncached %v", i+1, j, got[j], want[j])
			}
		}
	}
}

// TestFactCacheIsIncremental verifies that repeated calls translate
// each entry exactly once.
func TestFactCacheIsIncremental(t *testing.T) {
	s := calSchema(t)
	tr := &Trace{}
	for i := 0; i < 10; i++ {
		tr.Append(entry(fmt.Sprintf("SELECT 1 FROM Attendance WHERE UId=1 AND EId=%d", i), iv(1)))
	}
	tr.Facts(s)
	tr.Facts(s)
	tr.Append(entry("SELECT 1 FROM Attendance WHERE UId=1 AND EId=99", iv(1)))
	tr.Facts(s)
	st := tr.FactCacheStats()
	if st.Translated != 11 {
		t.Errorf("translated %d entries, want 11 (each exactly once)", st.Translated)
	}
	// Second call reuses 10, third call reuses 10 more (before
	// translating the new entry).
	if st.Reused != 20 {
		t.Errorf("reused %d entries, want 20", st.Reused)
	}
}

// TestFactCacheRebuildsOnSchemaChange: deriving against a different
// schema must not serve facts cached for the old one.
func TestFactCacheRebuildsOnSchemaChange(t *testing.T) {
	s1 := calSchema(t)
	s2 := calSchema(t) // structurally equal, distinct identity
	tr := &Trace{}
	tr.Append(entry("SELECT 1 FROM Attendance WHERE UId=1 AND EId=2", iv(1)))
	f1 := tr.Facts(s1)
	f2 := tr.Facts(s2)
	if len(f1) != 1 || len(f2) != 1 {
		t.Fatalf("facts: %v / %v", f1, f2)
	}
	st := tr.FactCacheStats()
	if st.Translated != 2 {
		t.Errorf("schema switch must rebuild: translated=%d, want 2", st.Translated)
	}
}

// TestFactsReturnedSliceIsPrivate: appending to one call's result
// must not leak into the next call's.
func TestFactsReturnedSliceIsPrivate(t *testing.T) {
	s := calSchema(t)
	tr := &Trace{}
	tr.Append(entry("SELECT 1 FROM Attendance WHERE UId=1 AND EId=2", iv(1)))
	a := tr.Facts(s)
	a = append(a, a[0]) // caller extends its copy
	_ = a
	if b := tr.Facts(s); len(b) != 1 {
		t.Fatalf("cache corrupted by caller append: %v", b)
	}
}

// TestConcurrentFactsAndAppend hammers a shared trace from appenders
// and readers; run under -race.
func TestConcurrentFactsAndAppend(t *testing.T) {
	s := calSchema(t)
	tr := &Trace{}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				tr.Append(entry(fmt.Sprintf("SELECT 1 FROM Attendance WHERE UId=%d AND EId=%d", g, i), iv(1)))
			}
		}(g)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				_ = tr.Facts(s)
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Facts(s)); got != 100 {
		t.Fatalf("expected 100 facts after concurrent appends, got %d", got)
	}
	st := tr.FactCacheStats()
	if st.Translated != 100 {
		t.Errorf("each entry should be translated exactly once, got %d", st.Translated)
	}
}

// TestCloneRebuildsLazily: a clone starts with an empty cache but
// derives identical facts.
func TestCloneRebuildsLazily(t *testing.T) {
	s := calSchema(t)
	tr := &Trace{}
	tr.Append(entry("SELECT 1 FROM Attendance WHERE UId=1 AND EId=2", iv(1)))
	orig := tr.Facts(s)
	cp := tr.Clone()
	got := cp.Facts(s)
	if len(got) != len(orig) || got[0].String() != orig[0].String() {
		t.Fatalf("clone facts: %v, want %v", got, orig)
	}
	if st := cp.FactCacheStats(); st.Translated != 1 {
		t.Errorf("clone should rebuild from scratch: %+v", st)
	}
}

func benchSchema(b *testing.B) *schema.Schema {
	b.Helper()
	return calSchema(b)
}

// BenchmarkFactsLongTrace compares cached vs uncached derivation on a
// 200-entry history — the trace-side half of the O(n²) fix.
func BenchmarkFactsLongTrace(b *testing.B) {
	s := benchSchema(b)
	mk := func() *Trace {
		tr := &Trace{}
		for i := 0; i < 200; i++ {
			tr.Append(entry(fmt.Sprintf("SELECT 1 FROM Attendance WHERE UId=1 AND EId=%d", i), iv(1)))
		}
		return tr
	}
	b.Run("incremental", func(b *testing.B) {
		tr := mk()
		tr.Facts(s) // warm
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = tr.Facts(s)
		}
	})
	b.Run("uncached", func(b *testing.B) {
		tr := mk()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = FactsUncached(s, tr)
		}
	})
}
