package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/obsv"
	"repro/internal/proxy"
)

// Member is one cluster node: a stable id and its v2 listener address.
type Member struct {
	ID   string
	Addr string
}

// Provider supplies the member set. Static configuration implements
// it today; a gossip or service-discovery layer can replace it
// without touching the node.
type Provider interface {
	Members() []Member
}

// Static is the fixed-configuration membership Provider.
type Static []Member

// Members implements Provider.
func (s Static) Members() []Member { return append([]Member(nil), s...) }

// Config parameterizes a Node. Self and the member set (via Members
// or Provider) are required; everything else has serviceable
// defaults.
type Config struct {
	// Self is this node's member id; the member set must contain it.
	Self string
	// Members is the static member set (ignored when Provider is set).
	Members []Member
	// Provider overrides Members as the membership source.
	Provider Provider
	// VNodes per member on the ring; 0 means DefaultVNodes.
	VNodes int
	// LeaseTTL is how long one ship batch's lease assertion holds; 0
	// means 1500ms.
	LeaseTTL time.Duration
	// ProbeInterval paces peer health probes; 0 means 500ms.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip; 0 means ProbeInterval.
	ProbeTimeout time.Duration
	// SuspectAfter is how many consecutive probe failures mark a peer
	// dead (subject to the lease gate); 0 means 2.
	SuspectAfter int
	// ShipFlush paces the WAL-ship flusher; 0 means 5ms.
	ShipFlush time.Duration
	// ShipTimeout bounds one ship batch round trip; 0 means 2s.
	ShipTimeout time.Duration
	// ForwardWindow is the pipelining window on each inter-node
	// client; 0 means proxy.DefaultMaxInFlight.
	ForwardWindow int
	// Metrics receives the cluster.* instruments; nil means the
	// attached server's registry.
	Metrics *obsv.Registry
	// Logf receives diagnostics; nil means the attached server's.
	Logf func(format string, args ...any)
}

func (c *Config) normalize() {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 1500 * time.Millisecond
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.ProbeInterval
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 2
	}
	if c.ShipFlush <= 0 {
		c.ShipFlush = 5 * time.Millisecond
	}
	if c.ShipTimeout <= 0 {
		c.ShipTimeout = 2 * time.Second
	}
}

// memberState is the node's live view of one peer.
type memberState struct {
	Member
	alive    bool
	draining bool
	epoch    uint64 // peer's own epoch, from its last probe response
	fails    int    // consecutive probe failures
}

// Node implements proxy.ClusterHandler: it owns the membership view,
// the routing ring, the lease table, and the ship stream. One Node
// attaches to one proxy.Server.
type Node struct {
	cfg Config
	srv *proxy.Server

	mu       sync.Mutex
	members  map[string]*memberState
	order    []string // member ids, sorted, for stable iteration
	epoch    atomic.Uint64
	draining atomic.Bool

	// ring is the immutable routing view, swapped wholesale on any
	// membership change; the per-request Owner check is one atomic
	// load.
	ring atomic.Pointer[Ring]

	// term is the lease term this node asserts as an owner; it
	// advances past any persisted term at WAL open, so a restarted
	// owner's ships outrank its pre-crash self.
	term atomic.Uint64

	leases *leaseTable
	ship   *shipper
	wal    atomic.Pointer[durable.Manager]

	// clients pools one pipelined v2 connection per peer.
	cmu     sync.Mutex
	clients map[string]*proxy.Client

	nextSID atomic.Uint64

	proberDone chan struct{}
	proberWG   sync.WaitGroup
	started    atomic.Bool
	closed     atomic.Bool

	// Session-placement counters for cluster.status.
	localSessions     atomic.Int64
	forwardedSessions atomic.Int64
	forwardedOps      atomic.Int64
	forwardErrors     atomic.Int64
	takeovers         atomic.Int64

	// obsv instruments (forward latency, ship lag, lease transitions)
	// surface through the proxy -metrics endpoint.
	mForwardMicros *obsv.Histogram
	mForwards      *obsv.Counter
	mForwardErrs   *obsv.Counter
	mShipEnqueued  *obsv.Counter
	mShipAcked     *obsv.Counter
	mShipDropped   *obsv.Counter
	mShipErrors    *obsv.Counter
	mShipBytes     *obsv.Counter
	mLeaseGrants   *obsv.Counter
	mLeaseRenewals *obsv.Counter
	mLeaseRejects  *obsv.Counter
	mTakeovers     *obsv.Counter
}

// New builds a Node. Call Attach before the server Listens, then
// Start once the member addresses are final (SetMembers can install
// them later when listeners bind ephemeral ports).
func New(cfg Config) (*Node, error) {
	cfg.normalize()
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Config.Self is required")
	}
	n := &Node{
		cfg:        cfg,
		members:    make(map[string]*memberState),
		leases:     newLeaseTable(),
		clients:    make(map[string]*proxy.Client),
		proberDone: make(chan struct{}),
	}
	n.ship = newShipper(n)
	n.epoch.Store(1)
	members := cfg.Members
	if cfg.Provider != nil {
		members = cfg.Provider.Members()
	}
	n.installMembers(members)
	if _, ok := n.members[cfg.Self]; !ok && len(members) > 0 {
		return nil, fmt.Errorf("cluster: member set does not contain self %q", cfg.Self)
	}
	return n, nil
}

// Attach wires the node into a proxy server: the server routes
// durable hellos and cluster.* ops through it, and the node installs
// its ship hook when the server's WAL opens. Call before Listen.
func (n *Node) Attach(srv *proxy.Server) {
	n.srv = srv
	srv.Cluster = n
	reg := n.cfg.Metrics
	if reg == nil {
		reg = srv.MetricsRegistry()
	}
	n.mForwardMicros = reg.Histogram("cluster.forward.micros")
	n.mForwards = reg.Counter("cluster.forwards")
	n.mForwardErrs = reg.Counter("cluster.forward.errors")
	n.mShipEnqueued = reg.Counter("cluster.ship.enqueued")
	n.mShipAcked = reg.Counter("cluster.ship.acked")
	n.mShipDropped = reg.Counter("cluster.ship.dropped")
	n.mShipErrors = reg.Counter("cluster.ship.errors")
	n.mShipBytes = reg.Counter("cluster.ship.bytes")
	n.mLeaseGrants = reg.Counter("cluster.lease.grants")
	n.mLeaseRenewals = reg.Counter("cluster.lease.renewals")
	n.mLeaseRejects = reg.Counter("cluster.lease.rejects")
	n.mTakeovers = reg.Counter("cluster.lease.takeovers")
	// If the WAL already opened (eager mode, Attach after OpenDurable),
	// install the hook now.
	if m := srv.Durable(); m != nil {
		n.WALOpened(m)
	}
}

// Start launches the prober and ship flusher.
func (n *Node) Start() {
	if n.started.Swap(true) {
		return
	}
	n.proberWG.Add(2)
	go func() { defer n.proberWG.Done(); n.ship.run() }()
	go func() { defer n.proberWG.Done(); n.probeLoop() }()
}

// Close stops the prober and flusher and closes peer connections.
func (n *Node) Close() error {
	if n.closed.Swap(true) {
		return nil
	}
	if n.started.Load() {
		close(n.proberDone)
	}
	n.ship.close()
	if n.started.Load() {
		n.proberWG.Wait()
	}
	n.cmu.Lock()
	for id, c := range n.clients {
		c.Close()
		delete(n.clients, id)
	}
	n.cmu.Unlock()
	return nil
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// Epoch reports this node's membership-view epoch (bumped on every
// view change).
func (n *Node) Epoch() uint64 { return n.epoch.Load() }

// installMembers replaces the member set under n.mu, preserving known
// peers' liveness state, then rebuilds the ring. Caller must NOT hold
// n.mu.
func (n *Node) installMembers(members []Member) {
	n.mu.Lock()
	next := make(map[string]*memberState, len(members))
	order := make([]string, 0, len(members))
	for _, m := range members {
		if m.ID == "" {
			continue
		}
		st := n.members[m.ID]
		if st == nil {
			st = &memberState{Member: m, alive: true}
		} else {
			st.Addr = m.Addr
		}
		next[m.ID] = st
		order = append(order, m.ID)
	}
	sort.Strings(order)
	n.members = next
	n.order = order
	n.mu.Unlock()
	n.rebuild()
}

// SetMembers installs a new member set (bumping the epoch). Tests and
// in-process clusters use it after binding ephemeral listener ports.
func (n *Node) SetMembers(members []Member) {
	n.installMembers(members)
	n.epoch.Add(1)
}

// rebuild recomputes the routing ring from the current view: members
// that are alive and not draining. Caller must not hold n.mu.
func (n *Node) rebuild() {
	n.mu.Lock()
	ids := make([]string, 0, len(n.order))
	for _, id := range n.order {
		st := n.members[id]
		drain := st.draining
		if id == n.cfg.Self {
			drain = n.draining.Load()
		}
		if st.alive && !drain {
			ids = append(ids, id)
		}
	}
	n.mu.Unlock()
	n.ring.Store(NewRing(ids, n.cfg.VNodes))
}

// Ring exposes the current routing ring (tests, accluster).
func (n *Node) Ring() *Ring { return n.ring.Load() }

// --- proxy.ClusterHandler ---

// Owner resolves a session name to its owning node.
func (n *Node) Owner(name string) (addr string, local bool) {
	ring := n.ring.Load()
	if ring == nil || ring.Size() == 0 {
		return "", true
	}
	owner := ring.Owner(name)
	if owner == "" || owner == n.cfg.Self {
		n.localSessions.Add(1)
		return "", true
	}
	n.mu.Lock()
	st := n.members[owner]
	if st != nil {
		addr = st.Addr
	}
	n.mu.Unlock()
	return addr, false
}

// WALOpened installs the ship hook and advances the owner term past
// anything persisted — a restarted owner's ships must outrank its
// pre-crash self at every follower.
func (n *Node) WALOpened(m *durable.Manager) {
	if n.wal.Swap(m) == m {
		return
	}
	t := m.LeaseTerm(n.cfg.Self) + 1
	if err := m.RecordLease(n.cfg.Self, t); err != nil {
		n.logf("cluster: persist own lease term: %v", err)
	}
	n.term.Store(t)
	// Seed recovered grant terms so a restart cannot accept terms it
	// already outranked.
	for origin, term := range m.Recovery().LeaseTerms {
		if origin != n.cfg.Self {
			n.leases.seed(origin, term, time.Now())
		}
	}
	m.SetShipHook(n.ship.enqueue)
}

// OpenRemote forwards a durable hello to the session's owner.
func (n *Node) OpenRemote(ctx context.Context, req *proxy.Request) (proxy.RemoteSession, *proxy.Response, error) {
	ring := n.ring.Load()
	if ring == nil {
		return nil, nil, fmt.Errorf("cluster: no ring")
	}
	owner := ring.Owner(req.Name)
	c, err := n.client(owner)
	if err != nil {
		n.forwardErrors.Add(1)
		n.mForwardErrs.Inc()
		return nil, nil, err
	}
	lane := c.Lane(n.nextSID.Add(1))
	start := time.Now()
	resp, err := lane.Do(ctx, &proxy.Request{Op: "hello", Name: req.Name, Session: req.Session})
	if err != nil {
		n.dropClient(owner, c)
		n.forwardErrors.Add(1)
		n.mForwardErrs.Inc()
		return nil, nil, err
	}
	n.mForwardMicros.Observe(time.Since(start).Microseconds())
	n.mForwards.Inc()
	n.forwardedSessions.Add(1)
	return &remoteSession{n: n, peer: owner, client: c, lane: lane}, resp, nil
}

// remoteSession relays one forwarded session's requests to its owner
// over a dedicated lane of the pooled peer client.
type remoteSession struct {
	n      *Node
	peer   string
	client *proxy.Client
	lane   *proxy.Lane
}

// Do relays one request. The local request is pooled and its ID/SID
// belong to the local connection, so the relay sends a copy with both
// cleared (the lane stamps its own).
func (r *remoteSession) Do(ctx context.Context, req *proxy.Request) (*proxy.Response, error) {
	creq := *req
	creq.ID, creq.SID = 0, 0
	start := time.Now()
	resp, err := r.lane.Do(ctx, &creq)
	if err != nil {
		r.n.dropClient(r.peer, r.client)
		r.n.forwardErrors.Add(1)
		r.n.mForwardErrs.Inc()
		return nil, err
	}
	r.n.mForwardMicros.Observe(time.Since(start).Microseconds())
	r.n.mForwards.Inc()
	r.n.forwardedOps.Add(1)
	return resp, nil
}

// Close forgets the handle. The durable session on the owner outlives
// it by design.
func (r *remoteSession) Close() { r.n.forwardedSessions.Add(-1) }

// client returns the pooled pipelined connection to peer, dialing and
// upgrading it on first use.
func (n *Node) client(peer string) (*proxy.Client, error) {
	n.cmu.Lock()
	defer n.cmu.Unlock()
	if c := n.clients[peer]; c != nil {
		return c, nil
	}
	n.mu.Lock()
	st := n.members[peer]
	n.mu.Unlock()
	if st == nil || st.Addr == "" {
		return nil, fmt.Errorf("cluster: unknown peer %q", peer)
	}
	opts := []proxy.ClientOption{}
	if n.cfg.ForwardWindow > 0 {
		opts = append(opts, proxy.WithWindow(n.cfg.ForwardWindow))
	}
	c, err := proxy.Dial(st.Addr, opts...)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s (%s): %w", peer, st.Addr, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ShipTimeout)
	err = c.Hello(ctx, nil)
	cancel()
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("cluster: hello %s: %w", peer, err)
	}
	n.clients[peer] = c
	return c, nil
}

// dropClient discards a failed pooled connection so the next use
// redials. The compare guards a racing replacement.
func (n *Node) dropClient(peer string, c *proxy.Client) {
	n.cmu.Lock()
	if n.clients[peer] == c {
		delete(n.clients, peer)
	}
	n.cmu.Unlock()
	c.Close()
}

// --- health probing ---

func (n *Node) probeLoop() {
	t := time.NewTicker(n.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-n.proberDone:
			return
		case <-t.C:
			n.probeOnce()
		}
	}
}

// probeOnce pings every peer and folds the results into the view.
// Transitions (alive→dead, dead→alive, draining flips, epoch moves)
// bump this node's epoch and rebuild the ring.
func (n *Node) probeOnce() {
	n.mu.Lock()
	peers := make([]Member, 0, len(n.order))
	for _, id := range n.order {
		if id != n.cfg.Self {
			peers = append(peers, n.members[id].Member)
		}
	}
	n.mu.Unlock()

	changed := false
	for _, p := range peers {
		ok, body := n.ping(p)
		n.mu.Lock()
		st := n.members[p.ID]
		if st == nil {
			n.mu.Unlock()
			continue
		}
		if ok {
			st.fails = 0
			if !st.alive {
				st.alive = true
				changed = true
				n.logf("cluster: peer %s is back", p.ID)
			}
			if body != nil {
				if body.Draining != st.draining {
					st.draining = body.Draining
					changed = true
				}
				st.epoch = body.Epoch
			}
		} else {
			st.fails++
			// The lease gate: a follower that granted this origin a
			// lease must let it expire before serving its sessions —
			// before removing it from the ring.
			if st.alive && st.fails >= n.cfg.SuspectAfter && !n.leases.active(p.ID, time.Now()) {
				st.alive = false
				changed = true
				if n.leases.term(p.ID) > 0 {
					n.takeovers.Add(1)
					n.mTakeovers.Inc()
				}
				n.logf("cluster: peer %s marked dead after %d failed probes", p.ID, st.fails)
			}
		}
		n.mu.Unlock()
	}
	if changed {
		n.epoch.Add(1)
		n.rebuild()
	}
}

// ping sends one cluster.ping, returning the peer's reported state.
func (n *Node) ping(p Member) (bool, *proxy.ClusterBody) {
	c, err := n.client(p.ID)
	if err != nil {
		return false, nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ProbeTimeout)
	defer cancel()
	resp, err := c.Do(ctx, &proxy.Request{Op: "cluster.ping", Node: n.cfg.Self, Epoch: n.Epoch()})
	if err != nil {
		n.dropClient(p.ID, c)
		return false, nil
	}
	if resp.Error != "" {
		return false, nil
	}
	return true, resp.Cluster
}
