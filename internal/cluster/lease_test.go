package cluster

import (
	"sync"
	"testing"
	"time"
)

func TestLeaseTermsMonotone(t *testing.T) {
	lt := newLeaseTable()
	now := time.Unix(1000, 0)
	ttl := time.Second

	ok, isNew := lt.renew("a", 1, ttl, now)
	if !ok || !isNew {
		t.Fatalf("first grant: ok=%v isNew=%v", ok, isNew)
	}
	ok, isNew = lt.renew("a", 1, ttl, now.Add(100*time.Millisecond))
	if !ok || isNew {
		t.Fatalf("same-term renewal: ok=%v isNew=%v", ok, isNew)
	}
	ok, isNew = lt.renew("a", 2, ttl, now)
	if !ok || !isNew {
		t.Fatalf("term advance: ok=%v isNew=%v", ok, isNew)
	}
	if ok, _ = lt.renew("a", 1, ttl, now); ok {
		t.Fatal("stale term accepted")
	}
	if ok, _ = lt.renew("a", 0, ttl, now); ok {
		t.Fatal("zero term accepted")
	}
	if got := lt.term("a"); got != 2 {
		t.Fatalf("term = %d, want 2", got)
	}
}

func TestLeaseExpiry(t *testing.T) {
	lt := newLeaseTable()
	now := time.Unix(1000, 0)
	lt.renew("a", 1, time.Second, now)
	if !lt.active("a", now.Add(999*time.Millisecond)) {
		t.Fatal("lease expired early")
	}
	if lt.active("a", now.Add(time.Second)) {
		t.Fatal("lease outlived its TTL")
	}
	// A renewal after expiry re-arms it at the same term.
	if ok, isNew := lt.renew("a", 1, time.Second, now.Add(2*time.Second)); !ok || isNew {
		t.Fatalf("post-expiry renewal: ok=%v isNew=%v", ok, isNew)
	}
	if !lt.active("a", now.Add(2500*time.Millisecond)) {
		t.Fatal("re-armed lease not active")
	}
	// Expiry only moves forward: a short-TTL renewal cannot shorten an
	// existing window.
	lt.renew("a", 1, 10*time.Second, now.Add(3*time.Second))
	lt.renew("a", 1, time.Millisecond, now.Add(3*time.Second))
	if !lt.active("a", now.Add(12*time.Second)) {
		t.Fatal("later short renewal shortened the lease window")
	}
}

func TestLeaseSeedIsExpiredButMonotone(t *testing.T) {
	lt := newLeaseTable()
	now := time.Unix(1000, 0)
	lt.seed("a", 5, now)
	if lt.active("a", now) {
		t.Fatal("seeded lease is active; recovered terms must start expired")
	}
	if ok, _ := lt.renew("a", 4, time.Second, now); ok {
		t.Fatal("term below seeded value accepted")
	}
	if ok, _ := lt.renew("a", 5, time.Second, now); !ok {
		t.Fatal("seeded term itself rejected")
	}
	// A seed never regresses an existing grant.
	lt.seed("a", 3, now)
	if got := lt.term("a"); got != 5 {
		t.Fatalf("seed regressed term to %d", got)
	}
}

// TestLeaseConcurrentRenewals hammers renew/active/term from many
// goroutines; the -race build verifies the locking, and the final term
// must be the maximum asserted.
func TestLeaseConcurrentRenewals(t *testing.T) {
	lt := newLeaseTable()
	base := time.Unix(1000, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= 200; i++ {
				lt.renew("a", uint64(i), time.Second, base.Add(time.Duration(i)*time.Millisecond))
				lt.active("a", base)
				lt.term("a")
				lt.snapshot(base)
			}
		}(g)
	}
	wg.Wait()
	if got := lt.term("a"); got != 200 {
		t.Fatalf("final term = %d, want 200", got)
	}
	if !lt.active("a", base.Add(1100*time.Millisecond)) {
		t.Fatal("final lease window lost")
	}
}
