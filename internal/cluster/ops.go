package cluster

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/acerr"
	"repro/internal/proxy"
)

// HandleOp serves the cluster.* control ops — the small v2 op set
// peers (and the accluster CLI) speak:
//
//	cluster.ping      liveness probe; answers self/epoch/draining
//	cluster.status    full view: members, leases, placement, ship lag
//	cluster.ship      a peer owner's WAL record batch + lease assertion
//	cluster.drain     stop owning new sessions; peers route around us
//	cluster.rebalance force an immediate probe round and ring rebuild
func (n *Node) HandleOp(ctx context.Context, req *proxy.Request) *proxy.Response {
	switch req.Op {
	case "cluster.ping":
		return &proxy.Response{OK: true, Cluster: &proxy.ClusterBody{
			Self:     n.cfg.Self,
			Epoch:    n.Epoch(),
			Draining: n.draining.Load(),
		}}

	case "cluster.status":
		return &proxy.Response{OK: true, Cluster: n.statusBody()}

	case "cluster.ship":
		return n.handleShip(req)

	case "cluster.drain":
		if !n.draining.Swap(true) {
			n.epoch.Add(1)
			n.rebuild()
			n.logf("cluster: draining — new sessions route to peers")
		}
		return &proxy.Response{OK: true, Cluster: n.statusBody()}

	case "cluster.rebalance":
		n.probeOnce()
		n.epoch.Add(1)
		n.rebuild()
		return &proxy.Response{OK: true, Cluster: n.statusBody()}
	}
	return &proxy.Response{
		Error: fmt.Sprintf("unknown cluster op %q", req.Op),
		Code:  acerr.CodeBadRequest,
	}
}

// handleShip is the follower half of WAL shipping: verify the lease
// assertion, persist each shipped record (wrapped, via the durable
// manager), and extend the lease. A node with no WAL configured
// cannot follow; one with a lazy WAL opens it now — replicas imply
// durable writes.
func (n *Node) handleShip(req *proxy.Request) *proxy.Response {
	origin := req.Node
	if origin == "" {
		return &proxy.Response{Error: "cluster.ship: missing origin node", Code: acerr.CodeBadRequest}
	}
	m := n.wal.Load()
	if m == nil {
		if n.srv == nil {
			return &proxy.Response{Error: "cluster.ship: node not attached", Code: acerr.CodeInternal}
		}
		if err := n.srv.OpenDurable(); err != nil {
			return &proxy.Response{Error: "cluster.ship: open WAL: " + err.Error(), Code: acerr.CodeEngine}
		}
		if m = n.wal.Load(); m == nil {
			return &proxy.Response{Error: "cluster.ship: follower has no WAL directory configured", Code: acerr.CodeBadRequest}
		}
	}
	ttl := time.Duration(req.TTLMillis) * time.Millisecond
	if ttl <= 0 {
		ttl = n.cfg.LeaseTTL
	}
	accepted, isNew := n.leases.renew(origin, req.Term, ttl, time.Now())
	if !accepted {
		n.mLeaseRejects.Inc()
		return &proxy.Response{
			Error: fmt.Sprintf("cluster.ship: stale lease term %d from %s (granted %d)", req.Term, origin, n.leases.term(origin)),
			Code:  acerr.CodeBadRequest,
		}
	}
	if isNew {
		n.mLeaseGrants.Inc()
		if err := m.RecordLease(origin, req.Term); err != nil {
			return &proxy.Response{Error: "cluster.ship: persist lease: " + err.Error(), Code: acerr.CodeEngine}
		}
	} else {
		n.mLeaseRenewals.Inc()
	}
	for i := range req.Ship {
		r := &req.Ship[i]
		if err := m.ApplyShipped(origin, r.Type, r.Payload); err != nil {
			return &proxy.Response{
				Error: fmt.Sprintf("cluster.ship: record %d (session %s): %v", i, r.Session, err),
				Code:  acerr.CodeEngine,
			}
		}
	}
	return &proxy.Response{OK: true}
}

// statusBody assembles the full cluster.status payload.
func (n *Node) statusBody() *proxy.ClusterBody {
	now := time.Now()
	body := &proxy.ClusterBody{
		Self:     n.cfg.Self,
		Epoch:    n.Epoch(),
		Draining: n.draining.Load(),

		LocalSessions:     n.localSessions.Load(),
		ForwardedSessions: n.forwardedSessions.Load(),
		ForwardedOps:      n.forwardedOps.Load(),
		ForwardErrors:     n.forwardErrors.Load(),

		ShipEnqueued: n.mShipEnqueued.Value(),
		ShipAcked:    n.mShipAcked.Value(),
		ShipDropped:  n.mShipDropped.Value(),
		ShipBytes:    n.mShipBytes.Value(),
		Takeovers:    n.takeovers.Load(),
	}
	n.mu.Lock()
	for _, id := range n.order {
		st := n.members[id]
		ms := proxy.MemberStatus{
			ID:       id,
			Addr:     st.Addr,
			Alive:    st.alive,
			Draining: st.draining,
			Epoch:    st.epoch,
		}
		if id == n.cfg.Self {
			ms.Self = true
			ms.Alive = true
			ms.Draining = n.draining.Load()
			ms.Epoch = n.Epoch()
		}
		body.Members = append(body.Members, ms)
	}
	n.mu.Unlock()
	snaps := n.leases.snapshot(now)
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].origin < snaps[j].origin })
	for _, ls := range snaps {
		body.Leases = append(body.Leases, proxy.LeaseStatus{
			Origin:          ls.origin,
			Term:            ls.term,
			ExpiresInMillis: ls.remaining.Milliseconds(),
		})
	}
	return body
}
