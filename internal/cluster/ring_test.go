package cluster

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("session-%04d", i)
	}
	return out
}

// TestRingDeterminism: placement is a pure function of the member set —
// member order, ring rebuild count, and process identity must not
// matter, because every node computes its own ring independently.
func TestRingDeterminism(t *testing.T) {
	a := NewRing([]string{"a", "b", "c"}, 0)
	b := NewRing([]string{"c", "a", "b", "a"}, 0) // shuffled + duplicate
	for _, k := range keys(500) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner(%q) differs across equivalent rings: %q vs %q", k, a.Owner(k), b.Owner(k))
		}
		if a.Follower(k) != b.Follower(k) {
			t.Fatalf("follower(%q) differs: %q vs %q", k, a.Follower(k), b.Follower(k))
		}
	}
}

// TestRingCoversAllMembers: with enough keys every member owns some,
// and the distribution is not pathologically skewed (no member owns
// more than half the keyspace at N=4).
func TestRingCoversAllMembers(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	r := NewRing(members, 0)
	counts := map[string]int{}
	ks := keys(4000)
	for _, k := range ks {
		counts[r.Owner(k)]++
	}
	for _, m := range members {
		if counts[m] == 0 {
			t.Fatalf("member %s owns no keys: %v", m, counts)
		}
		if counts[m] > len(ks)/2 {
			t.Fatalf("member %s owns %d of %d keys — distribution collapsed: %v", m, counts[m], len(ks), counts)
		}
	}
}

// TestRingBoundedMovement: removing one of N members must move only
// the removed member's keys; keys owned by survivors stay put. That
// bound is what makes failover targeted — only the dead node's
// sessions change owner.
func TestRingBoundedMovement(t *testing.T) {
	before := NewRing([]string{"a", "b", "c", "d"}, 0)
	after := NewRing([]string{"a", "b", "d"}, 0)
	moved := 0
	for _, k := range keys(4000) {
		was, is := before.Owner(k), after.Owner(k)
		if was != "c" && was != is {
			t.Fatalf("key %q moved %s→%s though its owner survived", k, was, is)
		}
		if was == "c" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("removed member owned no keys; movement test is vacuous")
	}
}

// TestRingAddMovesOnlyToNewMember: the dual bound for joins — a key
// either keeps its owner or moves to the joining member.
func TestRingAddMovesOnlyToNewMember(t *testing.T) {
	before := NewRing([]string{"a", "b", "c"}, 0)
	after := NewRing([]string{"a", "b", "c", "d"}, 0)
	gained := 0
	for _, k := range keys(4000) {
		was, is := before.Owner(k), after.Owner(k)
		if was != is {
			if is != "d" {
				t.Fatalf("key %q moved %s→%s on a join of d", k, was, is)
			}
			gained++
		}
	}
	if gained == 0 {
		t.Fatal("joining member gained no keys")
	}
}

// TestFollowerIsFailoverOwner is the invariant WAL shipping leans on:
// the node a key's records ship to (its follower) is exactly the node
// that owns the key once the original owner leaves the ring.
func TestFollowerIsFailoverOwner(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	full := NewRing(members, 0)
	for _, k := range keys(1000) {
		owner := full.Owner(k)
		follower := full.Follower(k)
		if follower == owner {
			t.Fatalf("key %q: follower == owner (%s)", k, owner)
		}
		survivors := make([]string, 0, len(members)-1)
		for _, m := range members {
			if m != owner {
				survivors = append(survivors, m)
			}
		}
		if got := NewRing(survivors, 0).Owner(k); got != follower {
			t.Fatalf("key %q: shipped to %s but failover owner is %s", k, follower, got)
		}
	}
}

// TestRingEdgeCases: empty and single-member rings degrade safely.
func TestRingEdgeCases(t *testing.T) {
	empty := NewRing(nil, 0)
	if got := empty.Owner("x"); got != "" {
		t.Fatalf("empty ring owner = %q", got)
	}
	if got := empty.Follower("x"); got != "" {
		t.Fatalf("empty ring follower = %q", got)
	}
	solo := NewRing([]string{"a"}, 0)
	if got := solo.Owner("x"); got != "a" {
		t.Fatalf("solo owner = %q", got)
	}
	if got := solo.Follower("x"); got != "" {
		t.Fatalf("solo follower = %q (no one to ship to)", got)
	}
	if got := solo.Successors("x", 5); len(got) != 1 || got[0] != "a" {
		t.Fatalf("solo successors = %v", got)
	}
}
