// Package cluster turns N proxy replicas into one enforcement
// cluster (DESIGN.md §16): a membership layer with periodic health
// probes over the v2 cluster.* op set, consistent-hash routing of
// durable sessions so each session's history accrues on exactly one
// node, and lease-based ownership with WAL shipping so a follower can
// adopt an owner's sessions byte-identically after it dies.
//
// The package implements proxy.ClusterHandler; the dependency points
// cluster → proxy only.
package cluster

import "sort"

// DefaultVNodes is the virtual-node count per member. More vnodes
// smooth the key distribution and shrink the movement bound on
// membership change; 64 keeps ring rebuilds cheap at small N.
const DefaultVNodes = 64

// Ring is an immutable consistent-hash ring: members are expanded
// into virtual nodes, and a key belongs to the member owning the
// first vnode at or clockwise past the key's hash. Replacing the ring
// wholesale on membership change (rather than mutating it) lets the
// routing hot path read it through one atomic pointer.
type Ring struct {
	vnodes  []vnode
	members []string
}

type vnode struct {
	hash   uint64
	member string
}

// fnv64a is FNV-1a; inlined so the ring owes nothing to hash/maphash
// seeding (placement must be identical on every node).
func fnv64a(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// mix64 finalizes a hash with an avalanche pass (the 64-bit
// murmur-style fmix). Raw FNV leaves the high bits — the bits ring
// position sorts on — barely touched by an input's trailing bytes, so
// suffix-structured names ("node1".."node4", "session-0042") cluster
// and the key distribution collapses. The finalizer spreads every
// input bit across the word.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// keyHash positions a session name on the ring.
func keyHash(key string) uint64 { return mix64(fnv64a(key)) }

// vnodeHash salts the member id with the vnode ordinal. The '#' joint
// keeps "node1"+vnode 11 distinct from "node11"+vnode 1.
func vnodeHash(member string, i int) uint64 {
	var buf [20]byte
	n := 0
	for ; i > 0 || n == 0; i /= 10 {
		buf[n] = byte('0' + i%10)
		n++
	}
	h := fnv64a(member + "#")
	const prime = 1099511628211
	for j := n - 1; j >= 0; j-- {
		h ^= uint64(buf[j])
		h *= prime
	}
	return mix64(h)
}

// NewRing builds a ring over members (order-insensitive; duplicates
// collapse). vnodesPer <= 0 means DefaultVNodes. A nil/empty member
// set yields an empty ring, whose Owner always answers "".
func NewRing(members []string, vnodesPer int) *Ring {
	if vnodesPer <= 0 {
		vnodesPer = DefaultVNodes
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m != "" && !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{members: uniq, vnodes: make([]vnode, 0, len(uniq)*vnodesPer)}
	for _, m := range uniq {
		for i := 0; i < vnodesPer; i++ {
			r.vnodes = append(r.vnodes, vnode{hash: vnodeHash(m, i), member: m})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool {
		if r.vnodes[i].hash != r.vnodes[j].hash {
			return r.vnodes[i].hash < r.vnodes[j].hash
		}
		// Hash ties (vanishingly rare) break on member id so every
		// node sorts identically.
		return r.vnodes[i].member < r.vnodes[j].member
	})
	return r
}

// Members returns the ring's member ids, sorted.
func (r *Ring) Members() []string { return r.members }

// Size reports the member count.
func (r *Ring) Size() int { return len(r.members) }

// firstAt returns the index of the first vnode at or past h, wrapping.
func (r *Ring) firstAt(h uint64) int {
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	if i == len(r.vnodes) {
		i = 0
	}
	return i
}

// Owner returns the member owning key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	if len(r.vnodes) == 0 {
		return ""
	}
	return r.vnodes[r.firstAt(keyHash(key))].member
}

// Successors returns up to n distinct members in the key's ring-walk
// order, owner first. The walk order is what makes WAL shipping line
// up with failover: the key's records ship to Successors(key, 2)[1],
// and when the owner leaves the ring, Owner(key) over the survivors
// is exactly that member.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.vnodes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	start := r.firstAt(keyHash(key))
	for i := 0; i < len(r.vnodes) && len(out) < n; i++ {
		m := r.vnodes[(start+i)%len(r.vnodes)].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// Follower returns the member the key's owner ships this key's WAL
// records to ("" when the ring has fewer than two members).
func (r *Ring) Follower(key string) string {
	succ := r.Successors(key, 2)
	if len(succ) < 2 {
		return ""
	}
	return succ[1]
}
