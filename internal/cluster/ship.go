package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/proxy"
)

// shipper is the owner half of WAL shipping. The durable manager's
// ship hook hands it every session/append record this node logs (the
// exact WAL payload bytes); it batches them per follower — each
// session ships to ITS ring successor, so failover rehashing lands
// every session on the node holding its records — and a single
// flusher goroutine streams the batches over the pooled peer clients.
// The hook path is one mutex-guarded append; nothing on the decide
// path waits for the network.
type shipRec struct {
	name    string
	typ     byte
	payload []byte
}

type shipper struct {
	n *Node

	mu     sync.Mutex
	queues map[string][]shipRec
	queued int
	closed bool

	wake chan struct{}
	done chan struct{}
}

const (
	// shipBatchWake flushes early once this many records are queued.
	shipBatchWake = 256
	// maxShipQueue bounds one follower's pending queue; beyond it the
	// oldest records drop (counted — the follower restarts the
	// affected session's history at the gap).
	maxShipQueue = 1 << 16
)

func newShipper(n *Node) *shipper {
	return &shipper{
		n:      n,
		queues: make(map[string][]shipRec),
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
}

// enqueue is the durable ship hook: route the record to the session's
// follower and signal the flusher. Records for sessions with no
// follower (single-node ring) drop silently — there is no one to ship
// to.
func (sh *shipper) enqueue(name string, typ byte, payload []byte) {
	ring := sh.n.ring.Load()
	if ring == nil {
		return
	}
	follower := ring.Follower(name)
	if follower == "" || follower == sh.n.cfg.Self {
		return
	}
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return
	}
	q := sh.queues[follower]
	if len(q) >= maxShipQueue {
		q = q[1:]
		sh.n.mShipDropped.Inc()
	}
	sh.queues[follower] = append(q, shipRec{name: name, typ: typ, payload: payload})
	sh.queued++
	queued := sh.queued
	sh.mu.Unlock()
	sh.n.mShipEnqueued.Inc()
	sh.n.mShipBytes.Add(int64(len(payload)))
	if queued >= shipBatchWake {
		sh.signal()
	}
}

func (sh *shipper) signal() {
	select {
	case sh.wake <- struct{}{}:
	default:
	}
}

// run is the flusher loop: every ShipFlush (or sooner when a batch
// builds up) it takes the pending queues and streams each to its
// follower. A batch that fails transport goes back to the FRONT of
// its queue — order within a session must hold — and retries next
// tick.
func (sh *shipper) run() {
	t := time.NewTicker(sh.n.cfg.ShipFlush)
	defer t.Stop()
	for {
		select {
		case <-sh.done:
			sh.flush() // best effort on shutdown
			return
		case <-t.C:
		case <-sh.wake:
		}
		sh.flush()
	}
}

func (sh *shipper) flush() {
	sh.mu.Lock()
	if sh.queued == 0 {
		sh.mu.Unlock()
		return
	}
	batches := sh.queues
	sh.queues = make(map[string][]shipRec, len(batches))
	sh.queued = 0
	sh.mu.Unlock()

	for follower, recs := range batches {
		if err := sh.send(follower, recs); err != nil {
			sh.n.logf("cluster: ship to %s failed (%d records requeued): %v", follower, len(recs), err)
			sh.n.mShipErrors.Inc()
			sh.requeue(follower, recs)
		} else {
			sh.n.mShipAcked.Add(int64(len(recs)))
		}
	}
}

func (sh *shipper) send(follower string, recs []shipRec) error {
	c, err := sh.n.client(follower)
	if err != nil {
		return err
	}
	ship := make([]proxy.ShipRecord, len(recs))
	for i, r := range recs {
		ship[i] = proxy.ShipRecord{Session: r.name, Type: r.typ, Payload: r.payload}
	}
	ctx, cancel := context.WithTimeout(context.Background(), sh.n.cfg.ShipTimeout)
	defer cancel()
	resp, err := c.Do(ctx, &proxy.Request{
		Op:        "cluster.ship",
		Node:      sh.n.cfg.Self,
		Epoch:     sh.n.Epoch(),
		Term:      sh.n.term.Load(),
		TTLMillis: sh.n.cfg.LeaseTTL.Milliseconds(),
		Ship:      ship,
	})
	if err != nil {
		sh.n.dropClient(follower, c)
		return err
	}
	if resp.Error != "" {
		return fmt.Errorf("%s", resp.Error)
	}
	return nil
}

// requeue puts a failed batch back at the front of its queue, within
// the bound (newest-first truncation would reorder, so the bound cuts
// from the front — oldest — like enqueue does).
func (sh *shipper) requeue(follower string, recs []shipRec) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return
	}
	q := append(recs, sh.queues[follower]...)
	if over := len(q) - maxShipQueue; over > 0 {
		q = q[over:]
		sh.n.mShipDropped.Add(int64(over))
	}
	sh.queues[follower] = q
	sh.queued += len(q)
}

func (sh *shipper) close() {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return
	}
	sh.closed = true
	sh.mu.Unlock()
	close(sh.done)
}
