package cluster

import (
	"sync"
	"time"
)

// leaseTable is the follower half of lease-based ownership. An owner
// asserts a lease (origin, term, ttl) on every ship batch; the
// follower records it here. Takeover of an origin's sessions is gated
// on BOTH its probes failing AND its lease here being expired — so a
// live-but-slow owner keeps its sessions, and a dead owner's sessions
// move only after the window it could still have been serving in has
// provably closed.
//
// Terms are monotone per origin: a batch carrying a lower term than
// one already granted is stale (a pre-restart owner, or a delayed
// duplicate) and is rejected. Term persistence is the durable layer's
// job (Manager.RecordLease); this table is the runtime view.
type leaseTable struct {
	mu     sync.Mutex
	grants map[string]*grant
}

type grant struct {
	term    uint64
	expires time.Time
}

func newLeaseTable() *leaseTable {
	return &leaseTable{grants: make(map[string]*grant)}
}

// renew accepts or rejects a lease assertion. accepted=false means
// the term is stale. isNew reports a term transition (a grant at a
// term not seen before) as opposed to an extension of the current
// term — the caller persists transitions and counts them separately.
func (lt *leaseTable) renew(origin string, term uint64, ttl time.Duration, now time.Time) (accepted, isNew bool) {
	if term == 0 {
		return false, false
	}
	lt.mu.Lock()
	defer lt.mu.Unlock()
	g := lt.grants[origin]
	if g == nil {
		lt.grants[origin] = &grant{term: term, expires: now.Add(ttl)}
		return true, true
	}
	if term < g.term {
		return false, false
	}
	isNew = term > g.term
	g.term = term
	if e := now.Add(ttl); e.After(g.expires) {
		g.expires = e
	}
	return true, isNew
}

// seed installs a recovered term without an expiry window (the lease
// is already expired; only the monotone term survives restarts).
func (lt *leaseTable) seed(origin string, term uint64, now time.Time) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if g := lt.grants[origin]; g == nil || term > g.term {
		lt.grants[origin] = &grant{term: term, expires: now}
	}
}

// active reports whether origin holds an unexpired lease here.
func (lt *leaseTable) active(origin string, now time.Time) bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	g := lt.grants[origin]
	return g != nil && g.expires.After(now)
}

// term returns the highest term granted to origin (0: none).
func (lt *leaseTable) term(origin string) uint64 {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if g := lt.grants[origin]; g != nil {
		return g.term
	}
	return 0
}

// snapshot lists every grant for cluster.status.
func (lt *leaseTable) snapshot(now time.Time) []leaseSnap {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	out := make([]leaseSnap, 0, len(lt.grants))
	for origin, g := range lt.grants {
		out = append(out, leaseSnap{origin: origin, term: g.term, remaining: g.expires.Sub(now)})
	}
	return out
}

type leaseSnap struct {
	origin    string
	term      uint64
	remaining time.Duration
}
