package disclosure

import (
	"context"
	"math"
	"testing"

	"repro/internal/cq"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/schema"
	"repro/internal/sqlvalue"
)

// employeeSchema supports the paper's Example 4.2.
func employeeSchema(t testing.TB) *schema.Schema {
	t.Helper()
	s, err := schema.NewBuilder().
		Table("Employees").
		NotNullCol("Id", sqlvalue.Int).
		NotNullCol("Name", sqlvalue.Text).
		NotNullCol("Age", sqlvalue.Int).
		PK("Id").Done().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// hospitalSchema supports the paper's Example 4.1: each patient is
// treated by a doctor for a disease; the (DocId, Disease) pair must
// appear in Treats (the doctor treats that disease).
func hospitalSchema(t testing.TB) *schema.Schema {
	t.Helper()
	s, err := schema.NewBuilder().
		Table("Treats").
		NotNullCol("DocId", sqlvalue.Int).
		NotNullCol("Disease", sqlvalue.Text).
		PK("DocId", "Disease").Done().
		Table("Patients").
		NotNullCol("PId", sqlvalue.Int).
		NotNullCol("Name", sqlvalue.Text).
		NotNullCol("DocId", sqlvalue.Int).
		NotNullCol("Disease", sqlvalue.Text).
		PK("PId").
		FK([]string{"DocId", "Disease"}, "Treats", []string{"DocId", "Disease"}).Done().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExample42PQI(t *testing.T) {
	s := employeeSchema(t)
	// V = Q1 (age >= 60); S = Q2 (age >= 18). Revealing Q1's answer
	// makes its rows certain answers to Q2: PQI holds.
	p := policy.MustNew(s, map[string]string{
		"Q1": "SELECT Name FROM Employees WHERE Age >= 60",
	})
	v, err := PQISQL(p, "SELECT Name FROM Employees WHERE Age >= 18")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Holds {
		t.Fatal("PQI should hold for Q2 given {Q1} (paper Example 4.2)")
	}
	// And NQI does not hold in this direction: absence from Q1 says
	// nothing definite about Q2 membership.
	nv, err := NQISQL(p, "SELECT Name FROM Employees WHERE Age >= 18")
	if err != nil {
		t.Fatal(err)
	}
	if nv.Holds {
		t.Fatal("NQI must not hold for Q2 given {Q1}")
	}
}

func TestExample42NQI(t *testing.T) {
	s := employeeSchema(t)
	// V = Q2 (age >= 18); S = Q1 (age >= 60). Absence from Q2 rules
	// out Q1 membership: NQI holds.
	p := policy.MustNew(s, map[string]string{
		"Q2": "SELECT Name FROM Employees WHERE Age >= 18",
	})
	v, err := NQISQL(p, "SELECT Name FROM Employees WHERE Age >= 60")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Holds {
		t.Fatal("NQI should hold for Q1 given {Q2} (paper Example 4.2)")
	}
	pv, err := PQISQL(p, "SELECT Name FROM Employees WHERE Age >= 60")
	if err != nil {
		t.Fatal(err)
	}
	if pv.Holds {
		t.Fatal("PQI must not hold for Q1 given {Q2}: a Q2 row needn't be 60+")
	}
}

func TestNoImplicationForUnrelatedViews(t *testing.T) {
	s := employeeSchema(t)
	p := policy.MustNew(s, map[string]string{
		"VIds": "SELECT Id FROM Employees",
	})
	pv, err := PQISQL(p, "SELECT Name FROM Employees WHERE Age >= 60")
	if err != nil {
		t.Fatal(err)
	}
	nv, err := NQISQL(p, "SELECT Name FROM Employees WHERE Age >= 60")
	if err != nil {
		t.Fatal(err)
	}
	if pv.Holds || nv.Holds {
		t.Fatalf("id listing implies nothing about names: PQI=%v NQI=%v", pv, nv)
	}
}

// hospitalPolicy is Example 4.1's policy: staff see each patient's
// doctor and each doctor's diseases.
func hospitalPolicy(t testing.TB, s *schema.Schema) *policy.Policy {
	t.Helper()
	return policy.MustNew(s, map[string]string{
		"VPatientDoctor": "SELECT Name, DocId FROM Patients",
		"VDoctorTreats":  "SELECT DocId, Disease FROM Treats",
	})
}

func TestExample41HospitalNQI(t *testing.T) {
	s := hospitalSchema(t)
	p := hospitalPolicy(t, s)
	// Sensitive: which disease each patient is treated for.
	v, err := NQISQL(p, "SELECT Name, Disease FROM Patients")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Holds {
		t.Fatal("NQI should hold: joining the views rules out every disease the patient's doctor does not treat (paper Example 4.1)")
	}
	// PQI must not hold: the doctor treats several diseases, so no
	// single (patient, disease) pair becomes certain.
	pv, err := PQISQL(p, "SELECT Name, Disease FROM Patients")
	if err != nil {
		t.Fatal(err)
	}
	if pv.Holds {
		t.Fatalf("PQI must not hold for the hospital policy: %s", pv.Witness)
	}
}

func TestChaseFKs(t *testing.T) {
	s := hospitalSchema(t)
	q := cq.MustFromSQL(s, "SELECT Name, Disease FROM Patients")[0]
	chased := ChaseFKs(s, q)
	if len(chased.Atoms) != 2 {
		t.Fatalf("chase should add the Treats atom: %v", chased.Atoms)
	}
	if chased.Atoms[1].Table != "treats" {
		t.Fatalf("chased atom: %v", chased.Atoms[1])
	}
	// Chase is idempotent.
	again := ChaseFKs(s, chased)
	if len(again.Atoms) != 2 {
		t.Fatalf("chase not idempotent: %v", again.Atoms)
	}
}

func TestAuditReport(t *testing.T) {
	s := employeeSchema(t)
	p := policy.MustNew(s, map[string]string{
		"Q1": "SELECT Name FROM Employees WHERE Age >= 60",
	})
	rep, err := Audit(context.Background(), p, map[string]string{
		"SAdults": "SELECT Name FROM Employees WHERE Age >= 18",
		"SIds":    "SELECT Id FROM Employees",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 2 {
		t.Fatalf("findings: %+v", rep.Findings)
	}
	if rep.Findings[0].Name != "SAdults" || !rep.Findings[0].PQI.Holds {
		t.Fatalf("SAdults finding: %+v", rep.Findings[0])
	}
	if rep.Findings[1].PQI.Holds || rep.Findings[1].NQI.Holds {
		t.Fatalf("SIds finding: %+v", rep.Findings[1])
	}
	if rep.String() == "" {
		t.Fatal("report rendering empty")
	}
}

func TestKAnonymity(t *testing.T) {
	s, err := schema.NewBuilder().
		Table("Records").
		NotNullCol("Zip", sqlvalue.Int).
		NotNullCol("Age", sqlvalue.Int).
		NotNullCol("Diagnosis", sqlvalue.Text).
		Done().Build()
	if err != nil {
		t.Fatal(err)
	}
	db := engine.New(s)
	db.MustExec(`INSERT INTO Records (Zip, Age, Diagnosis) VALUES
		(94704, 30, 'flu'), (94704, 30, 'cold'), (94704, 30, 'flu'),
		(94110, 40, 'flu'), (94110, 40, 'cold')`)
	k, err := KAnonymity(db, "SELECT Zip, Age, Diagnosis FROM Records", []string{"Zip", "Age"})
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Fatalf("k = %d, want 2 (the 94110 group)", k)
	}
	// Adding a unique individual drops k to 1.
	db.MustExec("INSERT INTO Records (Zip, Age, Diagnosis) VALUES (10001, 99, 'rare')")
	k, err = KAnonymity(db, "SELECT Zip, Age, Diagnosis FROM Records", []string{"Zip", "Age"})
	if err != nil || k != 1 {
		t.Fatalf("k = %d err=%v, want 1", k, err)
	}
}

func TestKAnonymityJoinRelease(t *testing.T) {
	s := hospitalSchema(t)
	db := engine.New(s)
	db.MustExec("INSERT INTO Treats (DocId, Disease) VALUES (1, 'pneumonia'), (1, 'tb'), (2, 'flu')")
	db.MustExec(`INSERT INTO Patients (PId, Name, DocId, Disease) VALUES
		(1, 'john', 1, 'pneumonia'), (2, 'mary', 1, 'tb'), (3, 'ann', 2, 'flu')`)
	k, err := KAnonymity(db,
		"SELECT p.DocId, t.Disease FROM Patients p JOIN Treats t ON p.DocId = t.DocId",
		[]string{"DocId"})
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Fatalf("k = %d, want 1 (doctor 2 group has one row)", k)
	}
	// Errors: unknown quasi column and empty release.
	if _, err := KAnonymity(db, "SELECT DocId FROM Patients", []string{"nope"}); err == nil {
		t.Fatal("unknown quasi column must error")
	}
	k, err = KAnonymity(db, "SELECT DocId FROM Patients WHERE PId = 99", []string{"DocId"})
	if err != nil || k != 0 {
		t.Fatalf("empty release: k=%d err=%v", k, err)
	}
}

// TestBayesianPriorSensitivity reproduces the paper's neighbor-
// who-saw-John-coughing point (§4.2): the belief shift caused by the
// same released views differs with the assumed prior, which is why
// §4.3 argues for prior-agnostic criteria.
func TestBayesianPriorSensitivity(t *testing.T) {
	s := hospitalSchema(t)
	p := hospitalPolicy(t, s)

	john := sqlvalue.NewText("john")
	pneumonia := sqlvalue.NewText("pneumonia")
	tb := sqlvalue.NewText("tb")
	flu := sqlvalue.NewText("flu")
	doc1 := sqlvalue.NewInt(1)
	doc2 := sqlvalue.NewInt(2)
	pid := sqlvalue.NewInt(1)

	// The actual world: John sees doctor 1 (who treats pneumonia and
	// tb) and is treated for pneumonia; doctor 2 treats flu.
	treats := [][]sqlvalue.Value{
		{doc1, pneumonia}, {doc1, tb}, {doc2, flu},
	}
	actual := cq.Instance{
		"treats": treats,
		"patients": {
			{pid, john, doc1, pneumonia},
		},
	}
	fixed := cq.Instance{"treats": treats}
	// Candidate worlds: before seeing the views the adversary is
	// unsure which doctor John sees and which disease he has; each
	// candidate respects the doctor-treats constraint.
	candidates := func(pPneu, pTB, pFlu float64) []CandidateTuple {
		return []CandidateTuple{
			{Table: "patients", Row: []sqlvalue.Value{pid, john, doc1, pneumonia}, Prob: pPneu},
			{Table: "patients", Row: []sqlvalue.Value{pid, john, doc1, tb}, Prob: pTB},
			{Table: "patients", Row: []sqlvalue.Value{pid, john, doc2, flu}, Prob: pFlu},
		}
	}
	exactlyOne := func(inst cq.Instance) bool {
		return len(inst["patients"]) == 1
	}
	sens := cq.MustFromSQL(s, "SELECT Name, Disease FROM Patients")[0]
	answer := []sqlvalue.Value{john, pneumonia}

	// Uninformed adversary: uniform over three diseases.
	uninformed := Prior{Name: "uniform", Fixed: fixed, Vars: candidates(0.5, 0.5, 0.5), Valid: exactlyOne}
	rU, err := Shift(s, uninformed, actual, p, nil, sens, answer)
	if err != nil {
		t.Fatal(err)
	}
	// Neighbor who saw John coughing: strong prior on pneumonia.
	neighbor := Prior{Name: "cough", Fixed: fixed, Vars: candidates(0.9, 0.3, 0.3), Valid: exactlyOne}
	rN, err := Shift(s, neighbor, actual, p, nil, sens, answer)
	if err != nil {
		t.Fatal(err)
	}

	// Both posteriors should rise (the views rule out flu), but the
	// uninformed adversary's shift must be larger.
	if rU.PosteriorProb <= rU.PriorProb {
		t.Fatalf("uninformed posterior should rise: %+v", rU)
	}
	if rN.PosteriorProb <= rN.PriorProb {
		t.Fatalf("neighbor posterior should rise: %+v", rN)
	}
	if rU.Delta() <= rN.Delta() {
		t.Fatalf("prior-sensitivity: uninformed delta %.3f should exceed neighbor delta %.3f",
			rU.Delta(), rN.Delta())
	}
	// The views rule out flu but cannot distinguish pneumonia from tb:
	// the uninformed posterior should be 1/2.
	if math.Abs(rU.PosteriorProb-0.5) > 1e-9 {
		t.Fatalf("uninformed posterior = %v, want 0.5 (narrowed to two diseases)", rU.PosteriorProb)
	}
}
