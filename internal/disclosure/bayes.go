package disclosure

import (
	"fmt"

	"repro/internal/cq"
	"repro/internal/policy"
	"repro/internal/schema"
	"repro/internal/sqlvalue"
)

// CandidateTuple is a potential row with its prior (independent)
// presence probability under the adversary's belief.
type CandidateTuple struct {
	Table string
	Row   []sqlvalue.Value
	Prob  float64
}

// Prior is an adversary's belief: a tuple-independent distribution
// over a bounded tuple universe, optionally restricted by integrity
// constraints (Valid) and anchored by rows known with certainty
// (Fixed). This is the §4.2 modeling the paper argues is hard to
// validate; we implement it exactly over small domains as the
// baseline.
type Prior struct {
	Name  string
	Fixed cq.Instance
	Vars  []CandidateTuple
	Valid func(inst cq.Instance) bool
}

// ShiftResult reports the belief shift for one candidate answer.
type ShiftResult struct {
	PriorProb     float64
	PosteriorProb float64
}

// Shift reports how the adversary's belief that `answer` is in the
// sensitive query's result changes after observing the views'
// contents on the actual instance. The enumeration is exact: all 2^n
// worlds over the candidate tuples are weighted by the prior,
// filtered by Valid, and conditioned on every view returning exactly
// what it returns on `actual`.
func Shift(s *schema.Schema, prior Prior, actual cq.Instance, p *policy.Policy, session map[string]sqlvalue.Value, sensitive *cq.Query, answer []sqlvalue.Value) (ShiftResult, error) {
	if len(prior.Vars) > 20 {
		return ShiftResult{}, fmt.Errorf("disclosure: tuple universe too large (%d > 20)", len(prior.Vars))
	}
	views := p.Disjuncts(session)
	// Observed view answers on the actual instance.
	observed := make([]string, len(views))
	for i, v := range views {
		observed[i] = cq.AnswerKey(cq.Evaluate(v, actual))
	}
	sens := sensitive.BindParams(session)

	var totalPrior, hitPrior float64 // unconditioned
	var totalPost, hitPost float64   // conditioned on the observation
	n := len(prior.Vars)
	for mask := 0; mask < 1<<n; mask++ {
		w := 1.0
		inst := prior.Fixed.Clone()
		for i, t := range prior.Vars {
			if mask&(1<<i) != 0 {
				w *= t.Prob
				inst[t.Table] = append(inst[t.Table], t.Row)
			} else {
				w *= 1 - t.Prob
			}
		}
		if w == 0 {
			continue
		}
		if prior.Valid != nil && !prior.Valid(inst) {
			continue
		}
		inAnswer := cq.ContainsRow(cq.Evaluate(sens, inst), answer)
		totalPrior += w
		if inAnswer {
			hitPrior += w
		}
		match := true
		for i, v := range views {
			if cq.AnswerKey(cq.Evaluate(v, inst)) != observed[i] {
				match = false
				break
			}
		}
		if match {
			totalPost += w
			if inAnswer {
				hitPost += w
			}
		}
	}
	if totalPrior == 0 {
		return ShiftResult{}, fmt.Errorf("disclosure: prior has no valid worlds")
	}
	out := ShiftResult{PriorProb: hitPrior / totalPrior}
	if totalPost > 0 {
		out.PosteriorProb = hitPost / totalPost
	}
	return out, nil
}

// Delta is the absolute belief shift.
func (r ShiftResult) Delta() float64 {
	d := r.PosteriorProb - r.PriorProb
	if d < 0 {
		return -d
	}
	return d
}
