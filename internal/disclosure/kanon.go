package disclosure

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/sqlparser"
)

// KAnonymity computes the anonymity parameter k of a released table:
// the minimum number of rows sharing each quasi-identifier
// combination. The release is given as a SELECT (so multi-table joins
// work, extending the single-table setting of the classic algorithms
// as §4.3 calls for); quasi are the released column names forming the
// quasi-identifier.
//
// A release is k-anonymous when every individual's quasi-identifier is
// shared by at least k rows; k = 0 means the release is empty.
func KAnonymity(db *engine.DB, releaseSQL string, quasi []string) (int, error) {
	res, err := db.QuerySQL(releaseSQL, sqlparser.NoArgs)
	if err != nil {
		return 0, err
	}
	if len(res.Rows) == 0 {
		return 0, nil
	}
	pos := make([]int, len(quasi))
	for i, qc := range quasi {
		found := -1
		for ci, c := range res.Columns {
			if equalsFold(c, qc) {
				found = ci
				break
			}
		}
		if found < 0 {
			return 0, fmt.Errorf("disclosure: release has no column %q (have %v)", qc, res.Columns)
		}
		pos[i] = found
	}
	groups := make(map[string]int)
	for _, row := range res.Rows {
		key := ""
		for _, p := range pos {
			key += row[p].Key() + "\x00"
		}
		groups[key]++
	}
	k := -1
	for _, n := range groups {
		if k < 0 || n < k {
			k = n
		}
	}
	if k < 0 {
		k = 0
	}
	return k, nil
}

func equalsFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 32
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 32
		}
		if ca != cb {
			return false
		}
	}
	return true
}
