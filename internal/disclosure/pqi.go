// Package disclosure implements the paper's §4 — policy evaluation
// for sensitive-data disclosure:
//
//   - PQI/NQI (§4.3): prior-agnostic criteria adapted from Benedikt et
//     al.'s positive/negative query implication to view-based access
//     control. PQI_S(V) holds when revealing the views' contents can
//     render a possible answer to the sensitive query S certain; NQI
//     when it can render one impossible. Both are checked over the
//     views and their visible-column joins, chasing foreign keys as
//     inclusion dependencies.
//
//   - k-anonymity (§4.3's other prior-agnostic criterion): the minimum
//     quasi-identifier group size in a released view, computed over a
//     concrete instance and extended to multi-table joins.
//
//   - Bayesian privacy (§4.2, the baseline the paper argues against):
//     exact posterior computation over small tuple universes, used to
//     demonstrate how the disclosure verdict shifts with the assumed
//     prior.
package disclosure

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/acerr"
	"repro/internal/cq"
	"repro/internal/policy"
	"repro/internal/schema"
)

// Verdict reports an implication finding.
type Verdict struct {
	Holds bool
	// Witness explains the finding: the derived view and head mapping.
	Witness string
}

// maxDerived bounds the number of derived (joined) views considered.
const maxDerived = 256

// PQI checks positive query implication: can the views' contents make
// a possible answer to sensitive certain? Sound witness: a derived
// view u (a view disjunct, or a join of two on visible columns) and a
// head projection α with u|α ⊆ sensitive — every row the adversary
// sees in u is a certain answer to S.
func PQI(p *policy.Policy, sensitive *cq.Query) Verdict {
	return implication(p, sensitive, true)
}

// NQI checks negative query implication: can the views' contents make
// a possible answer impossible? Sound witness: sensitive ⊆ u|α for a
// derived view u — any candidate answer absent from u is ruled out.
func NQI(p *policy.Policy, sensitive *cq.Query) Verdict {
	return implication(p, sensitive, false)
}

// PQISQL and NQISQL accept the sensitive query as SQL.
func PQISQL(p *policy.Policy, sensitiveSQL string) (Verdict, error) {
	q, err := sensitiveCQ(p.Schema, sensitiveSQL)
	if err != nil {
		return Verdict{}, err
	}
	return PQI(p, q), nil
}

// NQISQL is NQI over SQL input.
func NQISQL(p *policy.Policy, sensitiveSQL string) (Verdict, error) {
	q, err := sensitiveCQ(p.Schema, sensitiveSQL)
	if err != nil {
		return Verdict{}, err
	}
	return NQI(p, q), nil
}

func sensitiveCQ(s *schema.Schema, sql string) (*cq.Query, error) {
	ucq, err := cq.FromSQL(s, sql)
	if err != nil {
		return nil, err
	}
	if len(ucq) != 1 {
		return nil, fmt.Errorf("disclosure: sensitive query must be a single conjunctive query")
	}
	return ucq[0], nil
}

func implication(p *policy.Policy, sensitive *cq.Query, positive bool) Verdict {
	derived := derivedViews(p)
	s := sensitive.Clone()
	// Sensitive queries are evaluated for a generic principal; bind no
	// parameters (view params stay opaque and only match themselves).
	sChased := ChaseFKs(p.Schema, s)
	for _, u := range derived {
		uChased := ChaseFKs(p.Schema, u.q)
		for _, alpha := range headMaps(len(s.Head), u.q.Head) {
			proj := projectHead(u.q, alpha)
			projChased := projectHead(uChased, alpha)
			var holds bool
			if positive {
				// u|α ⊆ S: containment of the chased projection.
				holds = viewSatisfiable(p.Schema, u.q) && cq.Contains(projChased, s)
			} else {
				// S ⊆ u|α.
				holds = cq.Contains(sChased, proj)
			}
			if holds {
				return Verdict{
					Holds:   true,
					Witness: fmt.Sprintf("%s with head positions %v", u.describe, alpha),
				}
			}
		}
	}
	return Verdict{}
}

// derived is a candidate adversary-computable view.
type derived struct {
	q        *cq.Query
	describe string
}

// derivedViews returns every view disjunct plus every pairwise join of
// two disjuncts on a pair of visible (head) columns.
func derivedViews(p *policy.Policy) []derived {
	var singles []derived
	for _, v := range p.Views {
		for _, q := range v.CQs {
			singles = append(singles, derived{q: q, describe: "view " + v.Name})
		}
	}
	out := append([]derived(nil), singles...)
	for i := 0; i < len(singles) && len(out) < maxDerived; i++ {
		for j := i; j < len(singles) && len(out) < maxDerived; j++ {
			a := singles[i].q.RenameVars("l_")
			b := singles[j].q.RenameVars("r_")
			for ai, at := range a.Head {
				if !at.IsVar() {
					continue
				}
				for bi, bt := range b.Head {
					if !bt.IsVar() || (i == j && ai == bi) {
						continue
					}
					joined := &cq.Query{
						Atoms: append(append([]cq.Atom(nil), a.Atoms...), b.Atoms...),
						Comps: append(append([]cq.Comparison(nil), a.Comps...), b.Comps...),
					}
					joined.Head = append(append([]cq.Term(nil), a.Head...), b.Head...)
					joined.HeadNames = append(append([]string(nil), a.HeadNames...), b.HeadNames...)
					joined.Comps = append(joined.Comps, cq.Comparison{Op: cq.Eq, Left: at, Right: bt})
					// Fold the equality into a substitution for cleaner
					// homomorphism behaviour.
					folded := joined.Substitute(func(t cq.Term) cq.Term {
						if t.IsVar() && t.Var == bt.Var {
							return at
						}
						return t
					})
					folded.Comps = dropTrivialEq(folded.Comps)
					out = append(out, derived{
						q: folded,
						describe: fmt.Sprintf("%s ⋈ %s on (%s = %s)",
							singles[i].describe, singles[j].describe, headName(a, ai), headName(b, bi)),
					})
					if len(out) >= maxDerived {
						return out
					}
				}
			}
		}
	}
	return out
}

func dropTrivialEq(comps []cq.Comparison) []cq.Comparison {
	var out []cq.Comparison
	for _, c := range comps {
		if c.Op == cq.Eq && c.Left.Equal(c.Right) {
			continue
		}
		out = append(out, c)
	}
	return out
}

func headName(q *cq.Query, i int) string {
	if i < len(q.HeadNames) && q.HeadNames[i] != "" {
		return q.HeadNames[i]
	}
	return fmt.Sprintf("col%d", i)
}

// headMaps enumerates injective assignments of n sensitive head
// positions to positions of the derived head.
func headMaps(n int, head []cq.Term) [][]int {
	var out [][]int
	var rec func(cur []int, used map[int]bool)
	rec = func(cur []int, used map[int]bool) {
		if len(out) > 512 {
			return
		}
		if len(cur) == n {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := range head {
			if used[i] {
				continue
			}
			used[i] = true
			rec(append(cur, i), used)
			used[i] = false
		}
	}
	rec(nil, map[int]bool{})
	return out
}

// projectHead returns q with its head restricted to the given
// positions.
func projectHead(q *cq.Query, positions []int) *cq.Query {
	out := q.Clone()
	out.Head = nil
	out.HeadNames = nil
	for _, i := range positions {
		out.Head = append(out.Head, q.Head[i])
		out.HeadNames = append(out.HeadNames, headName(q, i))
	}
	return out
}

// viewSatisfiable reports whether the view can return rows on some
// instance (a PQI witness needs a producible row).
func viewSatisfiable(s *schema.Schema, q *cq.Query) bool {
	_, _, err := cq.Freeze(s, q)
	return err == nil
}

// ChaseFKs is re-exported from cq for callers of the disclosure API.
func ChaseFKs(s *schema.Schema, q *cq.Query) *cq.Query { return cq.ChaseFKs(s, q) }

// Report audits a policy against a set of named sensitive queries and
// renders one line per finding.
type Report struct {
	Findings []Finding
}

// Finding is the audit outcome for one sensitive query.
type Finding struct {
	Name string
	PQI  Verdict
	NQI  Verdict
}

// Audit checks PQI and NQI for every sensitive query. The ctx bounds
// the audit; cancellation between queries returns acerr.ErrCanceled.
func Audit(ctx context.Context, p *policy.Policy, sensitive map[string]string) (*Report, error) {
	names := make([]string, 0, len(sensitive))
	for n := range sensitive {
		names = append(names, n)
	}
	sort.Strings(names)
	rep := &Report{}
	for _, n := range names {
		if err := ctx.Err(); err != nil {
			return nil, acerr.Canceled(err)
		}
		q, err := sensitiveCQ(p.Schema, sensitive[n])
		if err != nil {
			return nil, fmt.Errorf("disclosure: %s: %w", n, err)
		}
		rep.Findings = append(rep.Findings, Finding{
			Name: n,
			PQI:  PQI(p, q),
			NQI:  NQI(p, q),
		})
	}
	return rep, nil
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "%s: PQI=%v NQI=%v", f.Name, f.PQI.Holds, f.NQI.Holds)
		if f.PQI.Holds {
			fmt.Fprintf(&b, " [PQI via %s]", f.PQI.Witness)
		}
		if f.NQI.Holds {
			fmt.Fprintf(&b, " [NQI via %s]", f.NQI.Witness)
		}
		b.WriteString("\n")
	}
	return b.String()
}
