// Package pipeline turns a multi-phase decision procedure into an
// explicit sequence of named stages over a shared mutable state, with
// end-to-end observability built in: every stage reports its run
// count, short-circuit count, and a latency histogram into an
// obsv.Registry, and — when the caller asked for a per-request
// breakdown via obsv.WithSpanSet — each stage's duration lands in the
// request's SpanSet so edges can log exactly where one slow decision
// spent its time.
//
// The checker's decide path (parse → bind → cache probes → fact
// derivation → coverage → verdict) is the motivating client: the
// former ~650-line monolith becomes a composition of small stages,
// and any future stage (a solver tier, a remote policy fetch) slots
// in without touching the others.
//
// Stages run strictly in order on the caller's goroutine. A stage
// returns one of three outcomes: Continue (next stage runs), Done
// (the pipeline completed early — a cache hit answered), or Abort
// (the operation cannot produce a cacheable answer — cancellation).
// When the registry is disabled the per-stage clock reads are skipped
// entirely, so a no-op-metrics build pays only the function calls.
package pipeline

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/obsv"
)

// Outcome is a stage's verdict on how the pipeline proceeds.
type Outcome int

const (
	// Continue passes control to the next stage.
	Continue Outcome = iota
	// Done completes the pipeline early with the state's answer.
	Done
	// Abort stops the pipeline without a reusable answer (the state
	// still carries a conservative verdict for the caller).
	Abort
)

// Stage is one named unit of a pipeline over state S.
type Stage[S any] struct {
	// Name labels the stage in metrics (pipeline.<pipe>.<name>.*) and
	// in per-request span breakdowns.
	Name string
	// Run advances the state. It must be safe for concurrent calls
	// with distinct states.
	Run func(ctx context.Context, s S) Outcome
}

// Pipeline is an ordered, instrumented stage sequence. Build once
// with New, run many times concurrently with Run.
type Pipeline[S any] struct {
	name   string
	stages []Stage[S]
	timed  bool
	tick   atomic.Uint64 // run counter driving latency sampling

	// Per-stage instruments, index-aligned with stages; nil when the
	// registry is disabled (every method is nil-safe).
	runs  []*obsv.Counter
	dones []*obsv.Counter
	lat   []*obsv.Histogram

	total  *obsv.Histogram
	aborts *obsv.Counter
}

// New builds a pipeline named name whose instruments live in reg
// (which may be nil or disabled for a no-op-metrics build).
func New[S any](name string, reg *obsv.Registry, stages ...Stage[S]) *Pipeline[S] {
	p := &Pipeline[S]{
		name:   name,
		stages: stages,
		timed:  reg.Enabled(),
		runs:   make([]*obsv.Counter, len(stages)),
		dones:  make([]*obsv.Counter, len(stages)),
		lat:    make([]*obsv.Histogram, len(stages)),
	}
	prefix := "pipeline." + name + "."
	for i, st := range stages {
		p.runs[i] = reg.Counter(prefix + st.Name + ".runs")
		p.dones[i] = reg.Counter(prefix + st.Name + ".done")
		p.lat[i] = reg.Histogram(prefix + st.Name + ".micros")
	}
	p.total = reg.Histogram(prefix + "total.micros")
	p.aborts = reg.Counter(prefix + "aborts")
	return p
}

// Stages returns the stage names in execution order.
func (p *Pipeline[S]) Stages() []string {
	out := make([]string, len(p.stages))
	for i, st := range p.stages {
		out[i] = st.Name
	}
	return out
}

// SampleEvery is the stage-latency sampling period: the first run
// and every SampleEvery-th run after it pay the per-stage clock
// reads; the rest increment counters only. Runs whose context
// carries an obsv.SpanSet are always fully timed (the caller asked
// for that request's breakdown), and run/done/abort counters are
// exact on every run — only the latency histograms are sampled.
// Sampling is what keeps the instrumented hot path within the 5%
// overhead budget on hosts with slow clock reads.
const SampleEvery = 8

// Run executes the stages in order over s until one returns Done or
// Abort, reporting per-stage and total latency into the registry
// (sampled; see SampleEvery) and, when the context carries an
// obsv.SpanSet, into the request's span breakdown. It returns the
// outcome of the last stage executed (Continue when every stage ran
// through).
func (p *Pipeline[S]) Run(ctx context.Context, s S) Outcome {
	if !p.timed {
		// Metrics disabled: no clock reads, no counters, no span
		// lookup.
		for _, st := range p.stages {
			switch st.Run(ctx, s) {
			case Done:
				return Done
			case Abort:
				return Abort
			}
		}
		return Continue
	}
	spans := obsv.SpanSetFrom(ctx)
	if spans == nil && p.tick.Add(1)%SampleEvery != 1 {
		// Counted-only run: exact counters, no clock reads.
		for i, st := range p.stages {
			p.runs[i].Inc()
			switch st.Run(ctx, s) {
			case Done:
				p.dones[i].Inc()
				return Done
			case Abort:
				p.aborts.Inc()
				return Abort
			}
		}
		return Continue
	}
	// Fully timed run: clock reads are chained — one per stage
	// boundary, not two per stage.
	start := time.Now()
	prev := start
	out := Continue
loop:
	for i, st := range p.stages {
		p.runs[i].Inc()
		res := st.Run(ctx, s)
		now := time.Now()
		d := now.Sub(prev)
		prev = now
		p.lat[i].Observe(d.Microseconds())
		spans.Record(st.Name, d)
		switch res {
		case Done:
			p.dones[i].Inc()
			out = Done
			break loop
		case Abort:
			p.aborts.Inc()
			out = Abort
			break loop
		}
	}
	p.total.Observe(prev.Sub(start).Microseconds())
	return out
}
