package pipeline

import (
	"context"
	"sync"
	"testing"

	"repro/internal/obsv"
)

type state struct {
	trail []string
	hit   bool
}

func mkStage(name string, out Outcome) Stage[*state] {
	return Stage[*state]{Name: name, Run: func(ctx context.Context, s *state) Outcome {
		s.trail = append(s.trail, name)
		return out
	}}
}

func TestStagesRunInOrder(t *testing.T) {
	reg := obsv.NewRegistry()
	p := New("t", reg,
		mkStage("a", Continue), mkStage("b", Continue), mkStage("c", Continue))
	s := &state{}
	if out := p.Run(context.Background(), s); out != Continue {
		t.Fatalf("outcome = %v, want Continue", out)
	}
	if len(s.trail) != 3 || s.trail[0] != "a" || s.trail[2] != "c" {
		t.Fatalf("trail = %v", s.trail)
	}
	if got := p.Stages(); len(got) != 3 || got[1] != "b" {
		t.Fatalf("Stages() = %v", got)
	}
}

func TestDoneShortCircuits(t *testing.T) {
	reg := obsv.NewRegistry()
	p := New("t", reg,
		mkStage("probe", Done), mkStage("expensive", Continue))
	s := &state{}
	if out := p.Run(context.Background(), s); out != Done {
		t.Fatalf("outcome = %v, want Done", out)
	}
	if len(s.trail) != 1 {
		t.Fatalf("later stages must not run after Done; trail = %v", s.trail)
	}
	if reg.Counter("pipeline.t.probe.done").Value() != 1 {
		t.Fatal("done counter not incremented")
	}
	if reg.Counter("pipeline.t.expensive.runs").Value() != 0 {
		t.Fatal("short-circuited stage must not count a run")
	}
}

func TestAbortCountsAndStops(t *testing.T) {
	reg := obsv.NewRegistry()
	p := New("t", reg, mkStage("a", Continue), mkStage("boom", Abort), mkStage("c", Continue))
	s := &state{}
	if out := p.Run(context.Background(), s); out != Abort {
		t.Fatalf("outcome = %v, want Abort", out)
	}
	if len(s.trail) != 2 {
		t.Fatalf("trail = %v", s.trail)
	}
	if reg.Counter("pipeline.t.aborts").Value() != 1 {
		t.Fatal("abort counter not incremented")
	}
}

func TestMetricsRecorded(t *testing.T) {
	reg := obsv.NewRegistry()
	p := New("dec", reg, mkStage("a", Continue), mkStage("b", Continue))
	runs := 2 * SampleEvery
	for i := 0; i < runs; i++ {
		p.Run(context.Background(), &state{})
	}
	// Counters are exact on every run.
	if got := reg.Counter("pipeline.dec.a.runs").Value(); got != int64(runs) {
		t.Fatalf("a.runs = %d, want %d", got, runs)
	}
	// Latency histograms are sampled: the first run and every
	// SampleEvery-th after it.
	if snap := reg.Histogram("pipeline.dec.total.micros").Snapshot(); snap.Count != 2 {
		t.Fatalf("total.micros count = %d, want 2 (sampled 1/%d)", snap.Count, SampleEvery)
	}
	if snap := reg.Histogram("pipeline.dec.b.micros").Snapshot(); snap.Count != 2 {
		t.Fatalf("b.micros count = %d, want 2 (sampled 1/%d)", snap.Count, SampleEvery)
	}
}

func TestSpanSetRunsAlwaysTimed(t *testing.T) {
	reg := obsv.NewRegistry()
	p := New("dec", reg, mkStage("a", Continue))
	// Burn the sampled slot so subsequent plain runs are counted-only.
	p.Run(context.Background(), &state{})
	before := reg.Histogram("pipeline.dec.a.micros").Snapshot().Count
	for i := 0; i < 3; i++ {
		ctx, ss := obsv.WithSpanSet(context.Background())
		p.Run(ctx, &state{})
		if _, ok := ss.Micros()["a"]; !ok {
			t.Fatal("SpanSet run must always collect stage timings")
		}
	}
	after := reg.Histogram("pipeline.dec.a.micros").Snapshot().Count
	if after-before != 3 {
		t.Fatalf("SpanSet runs must always hit the histogram: %d -> %d", before, after)
	}
}

func TestSpanSetReceivesStageTimings(t *testing.T) {
	reg := obsv.NewRegistry()
	p := New("dec", reg, mkStage("bind", Continue), mkStage("cover", Done))
	ctx, ss := obsv.WithSpanSet(context.Background())
	p.Run(ctx, &state{})
	m := ss.Micros()
	if _, ok := m["bind"]; !ok {
		t.Fatalf("span set missing bind: %v", m)
	}
	if _, ok := m["cover"]; !ok {
		t.Fatalf("span set missing cover: %v", m)
	}
}

func TestDisabledRegistryStillRuns(t *testing.T) {
	p := New("t", nil, mkStage("a", Continue), mkStage("b", Done))
	s := &state{}
	if out := p.Run(context.Background(), s); out != Done {
		t.Fatalf("outcome = %v, want Done", out)
	}
	if len(s.trail) != 2 {
		t.Fatalf("trail = %v", s.trail)
	}
	pd := New("t", obsv.Disabled(), mkStage("a", Continue))
	if out := pd.Run(context.Background(), &state{}); out != Continue {
		t.Fatalf("outcome = %v, want Continue", out)
	}
}

func TestConcurrentRuns(t *testing.T) {
	reg := obsv.NewRegistry()
	p := New("t", reg, mkStage("a", Continue), mkStage("b", Continue))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p.Run(context.Background(), &state{})
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("pipeline.t.a.runs").Value(); got != 1600 {
		t.Fatalf("a.runs = %d, want 1600", got)
	}
}
