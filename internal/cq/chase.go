package cq

import (
	"fmt"
	"strings"

	"repro/internal/schema"
)

// ChaseFKs extends the query's body with the atoms implied by foreign
// keys, treating each FK as an inclusion dependency: if an atom of
// table T has a FK (cols) -> R(refCols), the referenced R-atom with
// matching key columns (and fresh variables elsewhere) is implied.
// One round suffices for acyclic schemas; cyclic FK chains are cut off
// after a bounded number of added atoms. The returned query lists the
// original atoms first, then the implied ones.
func ChaseFKs(s *schema.Schema, q *Query) *Query {
	out := q.Clone()
	fresh := 0
	seen := map[string]bool{}
	for _, a := range out.Atoms {
		seen[a.String()] = true
	}
	queue := append([]Atom(nil), out.Atoms...)
	const maxAdded = 32
	added := 0
	for len(queue) > 0 && added < maxAdded {
		a := queue[0]
		queue = queue[1:]
		tab, ok := s.Table(a.Table)
		if !ok {
			continue
		}
		for _, fk := range tab.ForeignKeys {
			ref, ok := s.Table(fk.RefTable)
			if !ok {
				continue
			}
			implied := Atom{Table: strings.ToLower(ref.Name), Args: make([]Term, len(ref.Columns))}
			for i := range ref.Columns {
				fresh++
				implied.Args[i] = V(fmt.Sprintf("fk%d", fresh))
			}
			for i, c := range fk.Columns {
				ci, _ := tab.ColumnIndex(c)
				ri, _ := ref.ColumnIndex(fk.RefColumns[i])
				implied.Args[ri] = a.Args[ci]
			}
			if seen[implied.String()] {
				continue
			}
			if hasMatchingAtomFK(out.Atoms, implied, fk, ref) {
				continue
			}
			seen[implied.String()] = true
			out.Atoms = append(out.Atoms, implied)
			queue = append(queue, implied)
			added++
		}
	}
	return out
}

// hasMatchingAtomFK reports whether atoms already contains an atom of
// implied's table agreeing on the FK-pinned positions.
func hasMatchingAtomFK(atoms []Atom, implied Atom, fk schema.ForeignKey, ref *schema.Table) bool {
	pinned := make(map[int]Term)
	for i := range fk.Columns {
		ri, _ := ref.ColumnIndex(fk.RefColumns[i])
		pinned[ri] = implied.Args[ri]
	}
	for _, a := range atoms {
		if a.Table != implied.Table {
			continue
		}
		match := true
		for ri, t := range pinned {
			if !a.Args[ri].Equal(t) {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// ReduceFKAtoms drops atoms that the schema's foreign keys re-derive
// from the remaining body — e.g. a Doctors atom joined only on a key
// that a Treats atom's FK already implies. It is the inverse of
// ChaseFKs, used to normalize extracted views before comparison.
func ReduceFKAtoms(s *schema.Schema, q *Query) *Query {
	out := q.Clone()
	for i := 0; i < len(out.Atoms); i++ {
		cand := out.Clone()
		removed := cand.Atoms[i]
		cand.Atoms = append(cand.Atoms[:i], cand.Atoms[i+1:]...)
		if !headSafe(cand) {
			continue
		}
		if fkImplies(s, cand, removed, out) {
			out = cand
			i--
		}
	}
	return out
}

// fkImplies reports whether chasing rest re-derives an atom matching
// removed: equal at every position whose term also occurs elsewhere in
// the original query (positions holding variables private to the
// removed atom are existential and match anything).
func fkImplies(s *schema.Schema, rest *Query, removed Atom, orig *Query) bool {
	// Count variable occurrences in the original query.
	occ := map[string]int{}
	for _, a := range orig.Atoms {
		for _, t := range a.Args {
			if t.IsVar() {
				occ[t.Var]++
			}
		}
	}
	for _, t := range orig.Head {
		if t.IsVar() {
			occ[t.Var]++
		}
	}
	for _, c := range orig.Comps {
		for _, t := range []Term{c.Left, c.Right} {
			if t.IsVar() {
				occ[t.Var]++
			}
		}
	}
	chased := ChaseFKs(s, rest)
	for _, b := range chased.Atoms[len(rest.Atoms):] {
		if b.Table != removed.Table || len(b.Args) != len(removed.Args) {
			continue
		}
		match := true
		for k, t := range removed.Args {
			if t.IsVar() && occ[t.Var] <= 1 {
				continue // private existential position
			}
			if !b.Args[k].Equal(t) {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}
