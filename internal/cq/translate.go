package cq

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
)

// ErrNotCQ is wrapped by translation errors for SQL outside the
// conjunctive-query fragment; callers fall back to conservative
// handling.
var ErrNotCQ = errors.New("query outside the conjunctive fragment")

// maxBranches bounds UCQ expansion of OR and IN-lists.
const maxBranches = 64

// Translator converts SQL SELECTs to unions of conjunctive queries,
// resolving columns against a schema.
type Translator struct {
	Schema *schema.Schema
}

// FromSQL parses the SQL and translates it.
func FromSQL(s *schema.Schema, sql string) (UCQ, error) {
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	return (&Translator{Schema: s}).TranslateSelect(sel)
}

// MustFromSQL is FromSQL, panicking on error; for fixtures.
func MustFromSQL(s *schema.Schema, sql string) UCQ {
	u, err := FromSQL(s, sql)
	if err != nil {
		panic(err)
	}
	return u
}

// tframe is one query level's alias scope.
type tframe struct {
	parent  *tframe
	entries []tentry
}

type tentry struct {
	name  string // lower-cased alias or table name
	table *schema.Table
	atom  int // index into the builder's atoms
}

// branch is one disjunct under construction.
type branch struct {
	atoms []Atom
	comps []Comparison
}

func (b *branch) clone() *branch {
	nb := &branch{}
	for _, a := range b.atoms {
		nb.atoms = append(nb.atoms, a.Clone())
	}
	nb.comps = append([]Comparison(nil), b.comps...)
	return nb
}

type translation struct {
	tr       *Translator
	branches []*branch
	fresh    int
}

func (t *translation) notCQ(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrNotCQ, fmt.Sprintf(format, args...))
}

func (t *translation) freshPrefix() string {
	t.fresh++
	return fmt.Sprintf("x%d", t.fresh)
}

// TranslateSelect converts the SELECT into a UCQ. UNION arms become
// additional disjuncts (the natural fit: a union of conjunctive
// queries).
func (tr *Translator) TranslateSelect(sel *sqlparser.SelectStmt) (UCQ, error) {
	out, err := tr.translateOne(sel)
	if err != nil {
		return nil, err
	}
	for _, u := range sel.Union {
		arm, err := tr.TranslateSelect(u.Select)
		if err != nil {
			return nil, err
		}
		if len(out) > 0 && len(arm) > 0 && len(arm[0].Head) != len(out[0].Head) {
			return nil, fmt.Errorf("cq: UNION arms have different head widths")
		}
		out = append(out, arm...)
	}
	if len(out) > maxBranches {
		return nil, fmt.Errorf("%w: union too large (%d disjuncts)", ErrNotCQ, len(out))
	}
	return out, nil
}

func (tr *Translator) translateOne(sel *sqlparser.SelectStmt) (UCQ, error) {
	t := &translation{tr: tr, branches: []*branch{{}}}
	frame := &tframe{}
	if err := t.addFrom(sel, frame); err != nil {
		return nil, err
	}
	if sel.Where != nil {
		if err := t.addCondition(sel.Where, frame); err != nil {
			return nil, err
		}
	}
	if sel.Having != nil {
		// HAVING constrains aggregates; conservatively it reveals no
		// more than the underlying rows, which AggApprox covers.
		if !sqlparser.IsAggregate(sel.Having) {
			if err := t.addCondition(sel.Having, frame); err != nil {
				return nil, err
			}
		}
	}

	// Build heads.
	var out UCQ
	for _, br := range t.branches {
		q := &Query{Atoms: br.atoms, Comps: br.comps}
		agg := false
		for _, it := range sel.Items {
			if it.Expr != nil && sqlparser.IsAggregate(it.Expr) {
				agg = true
				break
			}
		}
		if agg || len(sel.GroupBy) > 0 {
			// Conservative over-approximation: an aggregate answer is
			// derived from the matching rows, so treat the query as
			// revealing every column of every atom.
			q.AggApprox = true
			for ai, a := range q.Atoms {
				tab, _ := tr.Schema.Table(a.Table)
				for ci, arg := range a.Args {
					q.Head = append(q.Head, arg)
					name := fmt.Sprintf("a%d_c%d", ai, ci)
					if tab != nil {
						name = tab.Columns[ci].Name
					}
					q.HeadNames = append(q.HeadNames, name)
				}
			}
		} else {
			for _, it := range sel.Items {
				if err := t.addHeadItem(q, it, frame, br); err != nil {
					return nil, err
				}
			}
		}
		out = append(out, q)
	}
	for _, q := range out {
		normalizeEq(q)
	}
	return out, nil
}

// addFrom registers the FROM tables of sel into every branch and the
// frame. Only base tables and inner joins are in the fragment.
func (t *translation) addFrom(sel *sqlparser.SelectStmt, frame *tframe) error {
	for _, te := range sel.From {
		if err := t.addTableExpr(te, frame); err != nil {
			return err
		}
	}
	return nil
}

func (t *translation) addTableExpr(te sqlparser.TableExpr, frame *tframe) error {
	switch x := te.(type) {
	case *sqlparser.TableRef:
		tab, ok := t.tr.Schema.Table(x.Name)
		if !ok {
			return fmt.Errorf("cq: unknown table %q", x.Name)
		}
		name := strings.ToLower(x.Name)
		if x.Alias != "" {
			name = strings.ToLower(x.Alias)
		}
		prefix := t.freshPrefix()
		args := make([]Term, len(tab.Columns))
		for i, c := range tab.Columns {
			args[i] = V(prefix + "_" + strings.ToLower(c.Name))
		}
		atom := Atom{Table: strings.ToLower(tab.Name), Args: args}
		idx := -1
		for _, br := range t.branches {
			br.atoms = append(br.atoms, atom.Clone())
			idx = len(br.atoms) - 1
		}
		frame.entries = append(frame.entries, tentry{name: name, table: tab, atom: idx})
		return nil
	case *sqlparser.JoinExpr:
		if x.Type != sqlparser.InnerJoin {
			return t.notCQ("outer join")
		}
		if err := t.addTableExpr(x.Left, frame); err != nil {
			return err
		}
		if err := t.addTableExpr(x.Right, frame); err != nil {
			return err
		}
		if x.On != nil {
			return t.addCondition(x.On, frame)
		}
		return nil
	}
	return t.notCQ("FROM item %T", te)
}

// resolve maps a column reference to its variable term in each branch.
// All branches share atom layout, so the term is branch-independent.
func (t *translation) resolve(frame *tframe, table, column string) (Term, error) {
	tl, cl := strings.ToLower(table), strings.ToLower(column)
	for f := frame; f != nil; f = f.parent {
		var found Term
		n := 0
		for _, e := range f.entries {
			if tl != "" && e.name != tl {
				continue
			}
			if ci, ok := e.table.ColumnIndex(cl); ok {
				found = t.branches[0].atoms[e.atom].Args[ci]
				n++
			}
		}
		if n > 1 {
			return Term{}, fmt.Errorf("cq: ambiguous column %q", column)
		}
		if n == 1 {
			return found, nil
		}
	}
	return Term{}, fmt.Errorf("cq: unknown column %s.%s", table, column)
}

// termOf converts a simple scalar expression to a Term.
func (t *translation) termOf(e sqlparser.Expr, frame *tframe) (Term, error) {
	switch x := e.(type) {
	case *sqlparser.Literal:
		return C(x.Value), nil
	case *sqlparser.Param:
		if x.Name != "" {
			return P(x.Name), nil
		}
		return P(fmt.Sprintf("_pos%d", x.Index)), nil
	case *sqlparser.ColumnRef:
		return t.resolve(frame, x.Table, x.Column)
	}
	return Term{}, t.notCQ("non-atomic term %s", e.SQL())
}

var sqlToCompOp = map[sqlparser.BinaryOp]CompOp{
	sqlparser.OpEq: Eq, sqlparser.OpNe: Ne,
	sqlparser.OpLt: Lt, sqlparser.OpLe: Le,
	sqlparser.OpGt: Gt, sqlparser.OpGe: Ge,
}

// addCondition adds a boolean condition to every branch, splitting
// branches on disjunctions.
func (t *translation) addCondition(e sqlparser.Expr, frame *tframe) error {
	switch x := e.(type) {
	case *sqlparser.BinaryExpr:
		switch x.Op {
		case sqlparser.OpAnd:
			if err := t.addCondition(x.Left, frame); err != nil {
				return err
			}
			return t.addCondition(x.Right, frame)
		case sqlparser.OpOr:
			return t.split([]sqlparser.Expr{x.Left, x.Right}, frame)
		case sqlparser.OpLike:
			return t.notCQ("LIKE")
		default:
			op, ok := sqlToCompOp[x.Op]
			if !ok {
				return t.notCQ("operator %s", sqlparser.OpString(x.Op))
			}
			l, err := t.termOf(x.Left, frame)
			if err != nil {
				return err
			}
			r, err := t.termOf(x.Right, frame)
			if err != nil {
				return err
			}
			t.addComp(Comparison{Op: op, Left: l, Right: r})
			return nil
		}

	case *sqlparser.UnaryExpr:
		if x.Op != '!' {
			return t.notCQ("unary %q in condition", x.Op)
		}
		return t.addNegated(x.Expr, frame)

	case *sqlparser.BetweenExpr:
		v, err := t.termOf(x.Expr, frame)
		if err != nil {
			return err
		}
		lo, err := t.termOf(x.Lo, frame)
		if err != nil {
			return err
		}
		hi, err := t.termOf(x.Hi, frame)
		if err != nil {
			return err
		}
		if x.Not {
			return t.notCQ("NOT BETWEEN")
		}
		t.addComp(Comparison{Op: Ge, Left: v, Right: lo})
		t.addComp(Comparison{Op: Le, Left: v, Right: hi})
		return nil

	case *sqlparser.InExpr:
		if x.Subquery != nil {
			if x.Not {
				return t.notCQ("NOT IN subquery")
			}
			return t.addSubquery(x.Subquery, frame, func(head []Term) ([]Comparison, error) {
				if len(head) != 1 {
					return nil, t.notCQ("IN subquery with %d columns", len(head))
				}
				l, err := t.termOf(x.Expr, frame)
				if err != nil {
					return nil, err
				}
				return []Comparison{{Op: Eq, Left: l, Right: head[0]}}, nil
			})
		}
		l, err := t.termOf(x.Expr, frame)
		if err != nil {
			return err
		}
		if x.Not {
			for _, it := range x.List {
				r, err := t.termOf(it, frame)
				if err != nil {
					return err
				}
				t.addComp(Comparison{Op: Ne, Left: l, Right: r})
			}
			return nil
		}
		var alts []sqlparser.Expr
		for _, it := range x.List {
			alts = append(alts, &sqlparser.BinaryExpr{Op: sqlparser.OpEq, Left: x.Expr, Right: it})
		}
		return t.split(alts, frame)

	case *sqlparser.ExistsExpr:
		if x.Not {
			return t.notCQ("NOT EXISTS")
		}
		return t.addSubquery(x.Subquery, frame, func([]Term) ([]Comparison, error) { return nil, nil })

	case *sqlparser.Literal:
		// WHERE TRUE / WHERE 1.
		v := x.Value
		if (v.Type() == sqlvalue.Bool && v.Bool()) || (v.Type() == sqlvalue.Int && v.Int() != 0) {
			return nil
		}
		return t.notCQ("constant-false condition")

	case *sqlparser.IsNullExpr:
		return t.notCQ("IS NULL")
	}
	return t.notCQ("condition %s", e.SQL())
}

// addNegated handles NOT applied to a condition.
func (t *translation) addNegated(e sqlparser.Expr, frame *tframe) error {
	switch x := e.(type) {
	case *sqlparser.BinaryExpr:
		if op, ok := sqlToCompOp[x.Op]; ok {
			l, err := t.termOf(x.Left, frame)
			if err != nil {
				return err
			}
			r, err := t.termOf(x.Right, frame)
			if err != nil {
				return err
			}
			t.addComp(Comparison{Op: op.Negate(), Left: l, Right: r})
			return nil
		}
		switch x.Op {
		case sqlparser.OpOr: // NOT (a OR b) = NOT a AND NOT b
			if err := t.addNegated(x.Left, frame); err != nil {
				return err
			}
			return t.addNegated(x.Right, frame)
		case sqlparser.OpAnd: // NOT (a AND b) = NOT a OR NOT b
			return t.split([]sqlparser.Expr{
				&sqlparser.UnaryExpr{Op: '!', Expr: x.Left},
				&sqlparser.UnaryExpr{Op: '!', Expr: x.Right},
			}, frame)
		}
	case *sqlparser.UnaryExpr:
		if x.Op == '!' {
			return t.addCondition(x.Expr, frame)
		}
	case *sqlparser.InExpr:
		flip := *x
		flip.Not = !x.Not
		return t.addCondition(&flip, frame)
	}
	return t.notCQ("negation of %s", e.SQL())
}

// split replaces each branch with one copy per alternative condition.
func (t *translation) split(alts []sqlparser.Expr, frame *tframe) error {
	if len(t.branches)*len(alts) > maxBranches {
		return t.notCQ("disjunction too large (%d branches)", len(t.branches)*len(alts))
	}
	origin := t.branches
	var all []*branch
	for _, alt := range alts {
		t.branches = make([]*branch, len(origin))
		for i, br := range origin {
			t.branches[i] = br.clone()
		}
		if err := t.addCondition(alt, frame); err != nil {
			return err
		}
		all = append(all, t.branches...)
	}
	t.branches = all
	return nil
}

// addComp appends a comparison to every branch.
func (t *translation) addComp(c Comparison) {
	for _, br := range t.branches {
		br.comps = append(br.comps, c)
	}
}

// addSubquery translates an EXISTS/IN subquery body into the current
// branches: its atoms and comparisons are conjoined (existential
// semantics matches CQ join under set semantics), then link produces
// extra comparisons tying the subquery head to the outer expression.
func (t *translation) addSubquery(sel *sqlparser.SelectStmt, outer *tframe, link func(head []Term) ([]Comparison, error)) error {
	if len(sel.GroupBy) > 0 || sel.Having != nil || sel.Limit != nil {
		return t.notCQ("subquery with grouping")
	}
	inner := &tframe{parent: outer}
	if err := t.addFrom(sel, inner); err != nil {
		return err
	}
	if sel.Where != nil {
		if err := t.addCondition(sel.Where, inner); err != nil {
			return err
		}
	}
	// Head terms of the subquery.
	var head []Term
	for _, it := range sel.Items {
		if it.Star {
			for _, e := range inner.entries {
				head = append(head, t.branches[0].atoms[e.atom].Args...)
			}
			continue
		}
		if sqlparser.IsAggregate(it.Expr) {
			return t.notCQ("aggregate subquery")
		}
		term, err := t.termOf(it.Expr, inner)
		if err != nil {
			return err
		}
		head = append(head, term)
	}
	comps, err := link(head)
	if err != nil {
		return err
	}
	for _, c := range comps {
		t.addComp(c)
	}
	return nil
}

// addHeadItem appends the head terms of one select item.
func (t *translation) addHeadItem(q *Query, it sqlparser.SelectItem, frame *tframe, br *branch) error {
	switch {
	case it.Star && it.Table == "":
		for _, e := range frame.entries {
			for ci := range e.table.Columns {
				q.Head = append(q.Head, br.atoms[e.atom].Args[ci])
				q.HeadNames = append(q.HeadNames, e.table.Columns[ci].Name)
			}
		}
		return nil
	case it.Star:
		tl := strings.ToLower(it.Table)
		for _, e := range frame.entries {
			if e.name != tl {
				continue
			}
			for ci := range e.table.Columns {
				q.Head = append(q.Head, br.atoms[e.atom].Args[ci])
				q.HeadNames = append(q.HeadNames, e.table.Columns[ci].Name)
			}
			return nil
		}
		return fmt.Errorf("cq: unknown table %q in select list", it.Table)
	default:
		term, err := t.termOf(it.Expr, frame)
		if err != nil {
			return err
		}
		name := it.Alias
		if name == "" {
			if cr, ok := it.Expr.(*sqlparser.ColumnRef); ok {
				name = cr.Column
			} else {
				name = it.Expr.SQL()
			}
		}
		q.Head = append(q.Head, term)
		q.HeadNames = append(q.HeadNames, name)
		return nil
	}
}

// normalizeEq eliminates Eq comparisons that involve a variable by
// substituting the variable with the other side (constants and
// parameters preferred as representatives), in place.
func normalizeEq(q *Query) {
	// Union-find over terms connected by Eq comparisons.
	parent := make(map[string]string)
	terms := make(map[string]Term)
	intern := func(t Term) string {
		k := t.Key()
		if _, ok := parent[k]; !ok {
			parent[k] = k
			terms[k] = t
		}
		return k
	}
	var find func(string) string
	find = func(k string) string {
		if parent[k] != k {
			parent[k] = find(parent[k])
		}
		return parent[k]
	}
	rank := func(t Term) int {
		switch t.Kind {
		case KindConst:
			return 2
		case KindParam:
			return 1
		}
		return 0
	}
	var keep []Comparison
	for _, c := range q.Comps {
		if c.Op == Eq && (c.Left.IsVar() || c.Right.IsVar()) {
			a, b := find(intern(c.Left)), find(intern(c.Right))
			if a == b {
				continue
			}
			// Higher-rank term becomes representative.
			if rank(terms[b]) > rank(terms[a]) {
				a, b = b, a
			}
			parent[b] = a
			continue
		}
		keep = append(keep, c.normalize())
	}
	subst := func(t Term) Term {
		if t.IsConst() {
			return t
		}
		k := t.Key()
		if _, ok := parent[k]; !ok {
			return t
		}
		return terms[find(k)]
	}
	for i, t := range q.Head {
		q.Head[i] = subst(t)
	}
	for ai := range q.Atoms {
		for i, t := range q.Atoms[ai].Args {
			q.Atoms[ai].Args[i] = subst(t)
		}
	}
	var comps []Comparison
	seen := make(map[string]bool)
	for _, c := range keep {
		nc := Comparison{Op: c.Op, Left: subst(c.Left), Right: subst(c.Right)}.normalize()
		// Drop trivially-true ground comparisons.
		if nc.Left.IsConst() && nc.Right.IsConst() {
			if groundHolds(nc) {
				continue
			}
		}
		if nc.Op == Eq && nc.Left.Equal(nc.Right) {
			continue
		}
		k := nc.Left.Key() + "|" + nc.Op.String() + "|" + nc.Right.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		comps = append(comps, nc)
	}
	q.Comps = comps
}

// groundHolds evaluates a comparison between two constants.
func groundHolds(c Comparison) bool {
	cmp, ok := sqlvalueCompare(c.Left, c.Right)
	if !ok {
		return c.Op == Ne // incomparable classes are unequal
	}
	switch c.Op {
	case Eq:
		return cmp == 0
	case Ne:
		return cmp != 0
	case Lt:
		return cmp < 0
	case Le:
		return cmp <= 0
	case Gt:
		return cmp > 0
	case Ge:
		return cmp >= 0
	}
	return false
}

func sqlvalueCompare(a, b Term) (int, bool) {
	if !a.IsConst() || !b.IsConst() {
		return 0, false
	}
	return sqlvalue.Compare(a.Const, b.Const)
}
