package cq

import (
	"math/rand"
	"testing"

	"repro/internal/sqlvalue"
)

// randComparison draws a random comparison over the given terms.
func randComparison(rng *rand.Rand, terms []Term) Comparison {
	ops := []CompOp{Eq, Ne, Lt, Le, Gt, Ge}
	return Comparison{
		Op:    ops[rng.Intn(len(ops))],
		Left:  terms[rng.Intn(len(terms))],
		Right: terms[rng.Intn(len(terms))],
	}
}

// holdsUnder evaluates a comparison under a variable assignment (to
// half-integer values scaled x2 to approximate the dense order).
func holdsUnder(c Comparison, assign map[string]int) bool {
	val := func(t Term) int {
		if t.IsVar() {
			return assign[t.Var]
		}
		return int(t.Const.Int()) * 2
	}
	l, r := val(c.Left), val(c.Right)
	switch c.Op {
	case Eq:
		return l == r
	case Ne:
		return l != r
	case Lt:
		return l < r
	case Le:
		return l <= r
	case Gt:
		return l > r
	case Ge:
		return l >= r
	}
	return false
}

// TestSolverSoundnessBruteForce cross-validates the constraint
// solver's Consistent and Implies against exhaustive enumeration over
// a small half-integer domain:
//
//   - if the solver says inconsistent, no assignment may satisfy the
//     set (dense-order inconsistency implies discrete inconsistency);
//   - if the solver says Implies(c), every satisfying assignment must
//     satisfy c (soundness of implication).
//
// Completeness over the discrete domain is NOT required: x>1 ∧ x<2 is
// satisfiable densely but not over integers, so only the soundness
// directions are asserted.
func TestSolverSoundnessBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(314))
	vars := []string{"x", "y", "z"}
	terms := []Term{
		V("x"), V("y"), V("z"),
		C(sqlvalue.NewInt(0)), C(sqlvalue.NewInt(1)), C(sqlvalue.NewInt(2)),
	}
	// Domain: scaled half-integers -1 .. 3 in steps of 0.5 → -2..6.
	domain := []int{-2, -1, 0, 1, 2, 3, 4, 5, 6}

	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(4)
		var comps []Comparison
		for i := 0; i < n; i++ {
			comps = append(comps, randComparison(rng, terms))
		}
		cs := NewConstraints()
		cs.AddAll(comps)

		// Enumerate satisfying assignments.
		var sats []map[string]int
		var rec func(i int, a map[string]int)
		rec = func(i int, a map[string]int) {
			if i == len(vars) {
				for _, c := range comps {
					if !holdsUnder(c, a) {
						return
					}
				}
				cp := map[string]int{}
				for k, v := range a {
					cp[k] = v
				}
				sats = append(sats, cp)
				return
			}
			for _, d := range domain {
				a[vars[i]] = d
				rec(i+1, a)
			}
		}
		rec(0, map[string]int{})

		if !cs.Consistent() && len(sats) > 0 {
			t.Fatalf("solver says inconsistent but %v satisfies %v", sats[0], comps)
		}
		// Implication soundness on random probes.
		for probe := 0; probe < 6; probe++ {
			c := randComparison(rng, terms)
			if !cs.Implies(c) {
				continue
			}
			for _, a := range sats {
				if !holdsUnder(c, a) {
					t.Fatalf("solver claims %v implied by %v, but %v violates it", c, comps, a)
				}
			}
		}
	}
}

// TestSolverImpliesReflexivity: every asserted comparison (and its
// trivial consequences) is implied.
func TestSolverImpliesReflexivity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	terms := []Term{V("a"), V("b"), C(sqlvalue.NewInt(5))}
	for trial := 0; trial < 200; trial++ {
		c := randComparison(rng, terms)
		cs := NewConstraints()
		cs.Add(c)
		if !cs.Consistent() {
			continue // e.g. x < x
		}
		if !cs.Implies(c) {
			t.Fatalf("asserted comparison not implied: %v", c)
		}
		// Flip is equivalent.
		flipped := Comparison{Op: c.Op.Flip(), Left: c.Right, Right: c.Left}
		if !cs.Implies(flipped) {
			t.Fatalf("flipped form not implied: %v from %v", flipped, c)
		}
	}
}
