// Package cq implements the conjunctive-query (CQ) intermediate
// representation the access-control machinery reasons over: queries as
// sets of relational atoms plus arithmetic comparisons, translation
// from the SQL AST, homomorphism search, containment with comparisons,
// minimization, and canonical ("frozen") instances.
//
// This is the decidable fragment Blockaid-style compliance checking,
// PQI/NQI disclosure checking, and contained rewriting all operate in;
// SQL constructs outside the fragment are rejected by the translator
// and handled conservatively by callers.
package cq

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sqlvalue"
)

// TermKind distinguishes the three kinds of terms.
type TermKind uint8

// Term kinds.
const (
	KindVar TermKind = iota
	KindConst
	KindParam
)

// Term is a variable, a constant, or a named parameter (a runtime
// constant generic over principals, e.g. ?MyUId).
type Term struct {
	Kind  TermKind
	Var   string         // KindVar
	Const sqlvalue.Value // KindConst
	Param string         // KindParam
}

// V returns a variable term.
func V(name string) Term { return Term{Kind: KindVar, Var: name} }

// C returns a constant term.
func C(v sqlvalue.Value) Term { return Term{Kind: KindConst, Const: v} }

// CInt returns an integer constant term.
func CInt(n int64) Term { return C(sqlvalue.NewInt(n)) }

// CText returns a text constant term.
func CText(s string) Term { return C(sqlvalue.NewText(s)) }

// P returns a parameter term.
func P(name string) Term { return Term{Kind: KindParam, Param: name} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Kind == KindVar }

// IsConst reports whether the term is a constant.
func (t Term) IsConst() bool { return t.Kind == KindConst }

// IsParam reports whether the term is a parameter.
func (t Term) IsParam() bool { return t.Kind == KindParam }

// Key returns a canonical string identity for the term.
func (t Term) Key() string {
	switch t.Kind {
	case KindVar:
		return "v:" + t.Var
	case KindParam:
		return "p:" + t.Param
	default:
		return "c:" + t.Const.Key()
	}
}

// Equal reports structural equality of terms.
func (t Term) Equal(o Term) bool {
	if t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case KindVar:
		return t.Var == o.Var
	case KindParam:
		return t.Param == o.Param
	default:
		return sqlvalue.Identical(t.Const, o.Const)
	}
}

// String renders the term.
func (t Term) String() string {
	switch t.Kind {
	case KindVar:
		return t.Var
	case KindParam:
		return "?" + t.Param
	default:
		return t.Const.String()
	}
}

// Atom is a relational atom R(t1, ..., tn); Args has one entry per
// column of the table, in declared order.
type Atom struct {
	Table string // lower-cased table name
	Args  []Term
}

// String renders the atom.
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Table + "(" + strings.Join(parts, ", ") + ")"
}

// Clone deep-copies the atom.
func (a Atom) Clone() Atom {
	out := Atom{Table: a.Table, Args: make([]Term, len(a.Args))}
	copy(out.Args, a.Args)
	return out
}

// CompOp is a comparison operator between terms.
type CompOp uint8

// Comparison operators.
const (
	Eq CompOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// String returns the operator's SQL spelling.
func (op CompOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	}
	return "?"
}

// Flip returns the operator with swapped operands (a op b == b Flip(op) a).
func (op CompOp) Flip() CompOp {
	switch op {
	case Lt:
		return Gt
	case Le:
		return Ge
	case Gt:
		return Lt
	case Ge:
		return Le
	}
	return op
}

// Negate returns the complement operator (NOT (a op b) == a Negate(op) b).
func (op CompOp) Negate() CompOp {
	switch op {
	case Eq:
		return Ne
	case Ne:
		return Eq
	case Lt:
		return Ge
	case Le:
		return Gt
	case Gt:
		return Le
	case Ge:
		return Lt
	}
	return op
}

// Comparison is Left Op Right.
type Comparison struct {
	Op          CompOp
	Left, Right Term
}

// String renders the comparison.
func (c Comparison) String() string {
	return c.Left.String() + " " + c.Op.String() + " " + c.Right.String()
}

// normalize orients the comparison canonically (variables first, Gt/Ge
// flipped to Lt/Le) for stable printing and deduplication.
func (c Comparison) normalize() Comparison {
	if c.Op == Gt || c.Op == Ge {
		return Comparison{Op: c.Op.Flip(), Left: c.Right, Right: c.Left}
	}
	if (c.Op == Eq || c.Op == Ne) && c.Left.Key() > c.Right.Key() {
		return Comparison{Op: c.Op, Left: c.Right, Right: c.Left}
	}
	return c
}

// Query is a conjunctive query with comparisons:
//
//	Head(HeadNames) :- Atoms, Comps.
//
// Under set semantics. AggApprox marks a query produced by the
// conservative translation of an aggregate SELECT: its head
// over-approximates what the original query reveals.
type Query struct {
	Name      string // optional label (view name, query id)
	Head      []Term
	HeadNames []string // parallel to Head; may be nil
	Atoms     []Atom
	Comps     []Comparison
	AggApprox bool
}

// Clone deep-copies the query.
func (q *Query) Clone() *Query {
	out := &Query{Name: q.Name, AggApprox: q.AggApprox}
	out.Head = append([]Term(nil), q.Head...)
	out.HeadNames = append([]string(nil), q.HeadNames...)
	for _, a := range q.Atoms {
		out.Atoms = append(out.Atoms, a.Clone())
	}
	out.Comps = append([]Comparison(nil), q.Comps...)
	return out
}

// String renders the query in datalog-like notation.
func (q *Query) String() string {
	var b strings.Builder
	name := q.Name
	if name == "" {
		name = "q"
	}
	heads := make([]string, len(q.Head))
	for i, t := range q.Head {
		heads[i] = t.String()
	}
	fmt.Fprintf(&b, "%s(%s) :- ", name, strings.Join(heads, ", "))
	var parts []string
	for _, a := range q.Atoms {
		parts = append(parts, a.String())
	}
	for _, c := range q.Comps {
		parts = append(parts, c.String())
	}
	b.WriteString(strings.Join(parts, ", "))
	return b.String()
}

// Vars returns the distinct variables of the query in first-occurrence
// order (atoms, then comparisons, then head).
func (q *Query) Vars() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(t Term) {
		if t.IsVar() && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			add(t)
		}
	}
	for _, c := range q.Comps {
		add(c.Left)
		add(c.Right)
	}
	for _, t := range q.Head {
		add(t)
	}
	return out
}

// Params returns the distinct parameter names used in the query,
// sorted.
func (q *Query) Params() []string {
	seen := make(map[string]bool)
	add := func(t Term) {
		if t.IsParam() {
			seen[t.Param] = true
		}
	}
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			add(t)
		}
	}
	for _, c := range q.Comps {
		add(c.Left)
		add(c.Right)
	}
	for _, t := range q.Head {
		add(t)
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Substitute returns a copy of the query with each term rewritten by
// sub (applied to variables and parameters; constants pass through).
func (q *Query) Substitute(sub func(Term) Term) *Query {
	mapTerm := func(t Term) Term {
		if t.IsConst() {
			return t
		}
		return sub(t)
	}
	out := &Query{Name: q.Name, AggApprox: q.AggApprox, HeadNames: append([]string(nil), q.HeadNames...)}
	for _, t := range q.Head {
		out.Head = append(out.Head, mapTerm(t))
	}
	for _, a := range q.Atoms {
		na := Atom{Table: a.Table, Args: make([]Term, len(a.Args))}
		for i, t := range a.Args {
			na.Args[i] = mapTerm(t)
		}
		out.Atoms = append(out.Atoms, na)
	}
	for _, c := range q.Comps {
		out.Comps = append(out.Comps, Comparison{Op: c.Op, Left: mapTerm(c.Left), Right: mapTerm(c.Right)})
	}
	return out
}

// BindParams replaces parameter terms by constants from vals; missing
// parameters are left in place.
func (q *Query) BindParams(vals map[string]sqlvalue.Value) *Query {
	return q.Substitute(func(t Term) Term {
		if t.IsParam() {
			if v, ok := vals[t.Param]; ok {
				return C(v)
			}
		}
		return t
	})
}

// RenameVars returns a copy with every variable prefixed, to make two
// queries variable-disjoint before combined reasoning.
func (q *Query) RenameVars(prefix string) *Query {
	return q.Substitute(func(t Term) Term {
		if t.IsVar() {
			return V(prefix + t.Var)
		}
		return t
	})
}

// NormalizeHead rewrites the head to its information content: head
// positions holding constants or parameters (values the caller already
// knows) are dropped, as are duplicate occurrences of the same term.
// Used when queries are compared as information carriers (policies,
// extraction) rather than executed.
func (q *Query) NormalizeHead() {
	var head []Term
	var names []string
	seen := make(map[string]bool)
	for i, t := range q.Head {
		if t.IsConst() || t.IsParam() {
			continue
		}
		k := t.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		head = append(head, t)
		if i < len(q.HeadNames) {
			names = append(names, q.HeadNames[i])
		} else {
			names = append(names, "")
		}
	}
	q.Head = head
	q.HeadNames = names
}

// UCQ is a union of conjunctive queries (all with compatible heads).
type UCQ []*Query

// String renders each disjunct on its own line.
func (u UCQ) String() string {
	parts := make([]string, len(u))
	for i, q := range u {
		parts[i] = q.String()
	}
	return strings.Join(parts, "\nUNION ")
}

// Fact is a ground atom known to hold (or not) in the database,
// derived from trace observations.
type Fact struct {
	Atom    Atom // all args constant
	Negated bool // true: known NOT to hold (from an empty query result)
}

// String renders the fact.
func (f Fact) String() string {
	if f.Negated {
		return "NOT " + f.Atom.String()
	}
	return f.Atom.String()
}
