package cq

import (
	"sort"

	"repro/internal/schema"
)

// Mapping is a homomorphism assignment: source variable name -> target
// term. Parameters map to themselves implicitly.
type Mapping map[string]Term

// Apply rewrites a term under the mapping.
func (m Mapping) Apply(t Term) Term {
	if t.IsVar() {
		if to, ok := m[t.Var]; ok {
			return to
		}
	}
	return t
}

// ApplyComp rewrites a comparison under the mapping.
func (m Mapping) ApplyComp(c Comparison) Comparison {
	return Comparison{Op: c.Op, Left: m.Apply(c.Left), Right: m.Apply(c.Right)}
}

// Clone copies the mapping.
func (m Mapping) Clone() Mapping {
	out := make(Mapping, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Hom is one homomorphism from a source query into a target query:
// Map assigns source variables to target terms, and AtomImage[i] is
// the index of the target atom that source atom i maps onto.
type Hom struct {
	Map       Mapping
	AtomImage []int
}

// FindHoms finds homomorphisms from the atoms/comparisons of src into
// tgt, respecting tgt's constraint closure (comparisons of src must be
// entailed by tgt's). init seeds required bindings (e.g. head
// correspondence); nil means unconstrained. If limit > 0, at most
// limit homomorphisms are returned.
func FindHoms(src, tgt *Query, init Mapping, limit int) []Hom {
	tgtCS := NewConstraints()
	tgtCS.AddAll(tgt.Comps)
	return homSearch(src, tgt, tgtCS, init, limit)
}

// FindHomsWith is FindHoms with a caller-supplied constraint closure
// for the target (tgtCS must be built from tgt.Comps). Callers that
// search many sources against one target build the closure once
// instead of once per source. A Constraints memoizes internally, so a
// shared closure must not be used from concurrent goroutines; nil
// falls back to building a private one.
func FindHomsWith(src, tgt *Query, tgtCS *Constraints, init Mapping, limit int) []Hom {
	return homSearch(src, tgt, tgtCS, init, limit)
}

func homSearch(src, tgt *Query, tgtCS *Constraints, init Mapping, limit int) []Hom {
	if tgtCS == nil {
		tgtCS = NewConstraints()
		tgtCS.AddAll(tgt.Comps)
	}
	// Index target atoms by table.
	type cand struct {
		atom Atom
		idx  int
	}
	byTable := make(map[string][]cand)
	for i, a := range tgt.Atoms {
		byTable[a.Table] = append(byTable[a.Table], cand{atom: a, idx: i})
	}
	var out []Hom
	images := make([]int, len(src.Atoms))
	var rec func(i int, m Mapping)
	rec = func(i int, m Mapping) {
		if limit > 0 && len(out) >= limit {
			return
		}
		if i == len(src.Atoms) {
			// All atoms mapped; verify comparisons are entailed.
			for _, c := range src.Comps {
				if !tgtCS.Implies(m.ApplyComp(c)) {
					return
				}
			}
			out = append(out, Hom{Map: m.Clone(), AtomImage: append([]int(nil), images...)})
			return
		}
		sa := src.Atoms[i]
		for _, tc := range byTable[sa.Table] {
			ta := tc.atom
			if len(ta.Args) != len(sa.Args) {
				continue
			}
			next := m
			cloned := false
			ok := true
			for k, st := range sa.Args {
				tt := ta.Args[k]
				switch {
				case st.IsVar():
					if bound, has := next[st.Var]; has {
						if !termsMatch(bound, tt, tgtCS) {
							ok = false
						}
					} else {
						if !cloned {
							next = next.Clone()
							cloned = true
						}
						next[st.Var] = tt
					}
				default:
					if !termsMatch(st, tt, tgtCS) {
						ok = false
					}
				}
				if !ok {
					break
				}
			}
			if ok {
				images[i] = tc.idx
				rec(i+1, next)
			}
		}
	}
	if init == nil {
		init = Mapping{}
	}
	rec(0, init)
	return out
}

// termsMatch reports whether two target-side terms can be considered
// equal under the target's constraints.
func termsMatch(a, b Term, cs *Constraints) bool {
	if a.Equal(b) {
		return true
	}
	return cs.Implies(Comparison{Op: Eq, Left: a, Right: b})
}

// Contains reports sub ⊆ super: every answer of sub on any instance is
// an answer of super. Decided by searching a containment mapping
// (homomorphism) from super into sub whose comparison images are
// entailed by sub's constraints — sound always, and complete for
// queries whose comparisons are left-semi-interval or entailed
// directly (the shapes our translator emits).
func Contains(sub, super *Query) bool {
	if len(sub.Head) != len(super.Head) {
		return false
	}
	subCS := NewConstraints()
	subCS.AddAll(sub.Comps)
	// Seed the mapping with head correspondence.
	init := Mapping{}
	for i, st := range super.Head {
		tt := sub.Head[i]
		if st.IsVar() {
			if bound, has := init[st.Var]; has {
				if !termsMatch(bound, tt, subCS) {
					return false
				}
			} else {
				init[st.Var] = tt
			}
		} else if !termsMatch(st, tt, subCS) {
			return false
		}
	}
	return len(homSearch(super, sub, subCS, init, 1)) > 0
}

// InfoContains reports whether sub's information content is derivable
// from super's answer: there is an embedding of super's body onto
// sub's entire body (modulo atoms implied by foreign keys when a
// schema is supplied) whose visible (head) positions expose every
// output and distinguishing position of sub. Invisible super positions
// are acceptable when they map a single super variable consistently
// (the join is performed inside super) onto a non-output variable of
// sub whose comparisons super's own body enforces. This is the
// single-view case of the compliance checker's coverage condition,
// and is what makes one policy view redundant given another even when
// their select lists differ in arity.
func InfoContains(s *schema.Schema, sub, super *Query) bool {
	if s != nil {
		sub = ReduceFKAtoms(s, sub)
	}
	target := sub
	required := len(sub.Atoms)
	if s != nil {
		target = ChaseFKs(s, sub)
	}
	subHeadVars := make(map[string]bool, len(sub.Head))
	for _, t := range sub.Head {
		if t.IsVar() {
			subHeadVars[t.Var] = true
		}
	}
	superHeadVars := make(map[string]bool, len(super.Head))
	for _, t := range super.Head {
		if t.IsVar() {
			superHeadVars[t.Var] = true
		}
	}
	homs := FindHoms(super, target, nil, 128)
	for _, h := range homs {
		// Visible sub-side terms: images of super's head.
		visible := make(map[string]bool, len(super.Head))
		for _, t := range super.Head {
			visible[h.Map.Apply(t).Key()] = true
		}
		// Every sub head variable must be visible.
		ok := true
		for _, t := range sub.Head {
			if t.IsVar() && !visible[t.Key()] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// The embedding must cover all of sub's original atoms
		// (chase-implied atoms are free).
		covered := make([]bool, required)
		for _, ti := range h.AtomImage {
			if ti < required {
				covered[ti] = true
			}
		}
		for _, c := range covered {
			if !c {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// How many distinct super variables map onto each sub term.
		mappers := map[string]map[string]bool{}
		for v, t := range h.Map {
			k := t.Key()
			if mappers[k] == nil {
				mappers[k] = map[string]bool{}
			}
			mappers[k][v] = true
		}
		// Constraints super's own body enforces, in sub terms.
		superCS := NewConstraints()
		for _, sc := range super.Comps {
			superCS.Add(h.Map.ApplyComp(sc))
		}
		for si, ti := range h.AtomImage {
			sa := super.Atoms[si]
			ta := target.Atoms[ti]
			for k, y := range sa.Args {
				t := ta.Args[k]
				if !y.IsVar() || superHeadVars[y.Var] {
					continue // pinned or visible
				}
				if visible[t.Key()] {
					continue // exposed through another head position
				}
				if !t.IsVar() {
					ok = false // invisible selection on a constant/param
					break
				}
				if subHeadVars[t.Var] {
					ok = false // output variable must be visible
					break
				}
				if len(mappers[t.Key()]) > 1 {
					ok = false // join not performed inside super
					break
				}
				// Comparisons on t must be enforced by super itself.
				for _, sc := range sub.Comps {
					involves := sc.Left.IsVar() && sc.Left.Var == t.Var ||
						sc.Right.IsVar() && sc.Right.Var == t.Var
					if involves && !superCS.Implies(sc) {
						ok = false
						break
					}
				}
				if !ok {
					break
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// InfoContainsUCQ lifts InfoContains to unions disjunct-wise.
func InfoContainsUCQ(s *schema.Schema, sub, super UCQ) bool {
	for _, q1 := range sub {
		found := false
		for _, q2 := range super {
			if InfoContains(s, q1, q2) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// ContainsUCQ reports u1 ⊆ u2 using the per-disjunct sufficient
// condition: every disjunct of u1 is contained in some disjunct of u2.
func ContainsUCQ(u1, u2 UCQ) bool {
	for _, q1 := range u1 {
		found := false
		for _, q2 := range u2 {
			if Contains(q1, q2) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Equivalent reports mutual containment.
func Equivalent(a, b *Query) bool {
	return Contains(a, b) && Contains(b, a)
}

// Minimize returns an equivalent query with a minimal set of atoms
// (the CQ core), found by repeatedly dropping atoms whose removal
// preserves equivalence.
func Minimize(q *Query) *Query {
	cur := q.Clone()
	for {
		removed := false
		for i := range cur.Atoms {
			cand := cur.Clone()
			cand.Atoms = append(cand.Atoms[:i], cand.Atoms[i+1:]...)
			if !headSafe(cand) {
				continue
			}
			// Removal relaxes the query, so cur ⊆ cand always; cand ⊆
			// cur makes them equivalent.
			if Contains(cand, cur) {
				cur = cand
				removed = true
				break
			}
		}
		if !removed {
			return cur
		}
	}
}

// headSafe reports whether every head variable still appears in some
// atom (a query whose head variable is unbound is not well-formed).
func headSafe(q *Query) bool {
	inAtoms := make(map[string]bool)
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			if t.IsVar() {
				inAtoms[t.Var] = true
			}
		}
	}
	for _, t := range q.Head {
		if t.IsVar() && !inAtoms[t.Var] {
			return false
		}
	}
	for _, c := range q.Comps {
		for _, t := range []Term{c.Left, c.Right} {
			if t.IsVar() && !inAtoms[t.Var] {
				return false
			}
		}
	}
	return true
}

// CoveredAtoms reports, for each atom of q, whether some homomorphism
// image covers it — a helper for diagnosis messages.
func CoveredAtoms(q *Query, by *Query) []bool {
	out := make([]bool, len(q.Atoms))
	cs := NewConstraints()
	cs.AddAll(q.Comps)
	for i, a := range q.Atoms {
		probe := &Query{Atoms: []Atom{a}, Comps: q.Comps}
		probe.Head = nil
		if len(homSearch(by, probe, nil, nil, 1)) > 0 {
			out[i] = true
		}
	}
	_ = cs
	return out
}

// Canonicalize renames variables to a stable canonical form (v0, v1,
// ... in order of first occurrence) and sorts atoms and comparisons,
// yielding a key usable for caching and deduplication.
func Canonicalize(q *Query) *Query {
	// Stable atom order first: by table, then by argument skeleton
	// (kinds and constants only, ignoring variable names).
	idx := make([]int, len(q.Atoms))
	for i := range idx {
		idx[i] = i
	}
	skeleton := func(a Atom) string {
		s := a.Table + "("
		for _, t := range a.Args {
			switch t.Kind {
			case KindVar:
				s += "v,"
			case KindParam:
				s += "?" + t.Param + ","
			default:
				s += t.Const.Key() + ","
			}
		}
		return s + ")"
	}
	sort.SliceStable(idx, func(i, j int) bool {
		return skeleton(q.Atoms[idx[i]]) < skeleton(q.Atoms[idx[j]])
	})
	ordered := q.Clone()
	ordered.Atoms = ordered.Atoms[:0]
	for _, i := range idx {
		ordered.Atoms = append(ordered.Atoms, q.Atoms[i].Clone())
	}
	// Rename variables in traversal order.
	names := make(map[string]string)
	rename := func(t Term) Term {
		if !t.IsVar() {
			return t
		}
		if n, ok := names[t.Var]; ok {
			return V(n)
		}
		n := "v" + itoa(len(names))
		names[t.Var] = n
		return V(n)
	}
	canon := ordered.Substitute(rename)
	// Sort comparisons by rendering.
	sort.Slice(canon.Comps, func(i, j int) bool {
		return canon.Comps[i].String() < canon.Comps[j].String()
	})
	return canon
}

// Key returns a canonical cache key for the query.
func (q *Query) CanonicalKey() string {
	c := Canonicalize(q)
	s := ""
	for i, t := range c.Head {
		if i > 0 {
			s += ","
		}
		s += t.Key()
	}
	s += "|"
	for _, a := range c.Atoms {
		s += a.String() + ";"
	}
	s += "|"
	for _, cm := range c.Comps {
		s += cm.String() + ";"
	}
	if c.AggApprox {
		s += "|agg"
	}
	return s
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
