package cq

import (
	"testing"

	"repro/internal/schema"
	"repro/internal/sqlvalue"
)

// FuzzTranslate asserts the full front half of the pipeline never
// panics on arbitrary input: parse, translate to UCQ, and — when both
// succeed — render each disjunct back to SQL and re-translate to an
// equivalent disjunct.
func FuzzTranslate(f *testing.F) {
	seeds := []string{
		"SELECT EId FROM Attendance WHERE UId = ?MyUId",
		"SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = 1",
		"SELECT Name FROM Users WHERE UId IN (1, 2, 3)",
		"SELECT u.Name FROM Users u WHERE EXISTS (SELECT 1 FROM Attendance a WHERE a.UId = u.UId)",
		"SELECT COUNT(*) FROM Attendance WHERE UId = 3",
		"SELECT EId FROM Attendance WHERE UId = 1 UNION SELECT EId FROM Attendance WHERE UId = 2",
		"SELECT Title FROM Events WHERE EId >= 1 AND EId < 9",
		"SELECT a.EId FROM Attendance a, Attendance b WHERE a.EId = b.EId",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	sch := fuzzSchema(f)
	tr := &Translator{Schema: sch}
	f.Fuzz(func(t *testing.T, src string) {
		ucq, err := FromSQL(sch, src)
		if err != nil {
			return
		}
		for _, q := range ucq {
			sql, err := ToSQL(sch, q)
			if err != nil {
				continue // heads not expressible (e.g. unbound) are fine
			}
			back, err := FromSQL(sch, sql)
			if err != nil {
				t.Fatalf("ToSQL output unparseable for %q: %q: %v", src, sql, err)
			}
			if len(back) != 1 {
				t.Fatalf("ToSQL output not a single disjunct for %q: %q", src, sql)
			}
			// Compare information content: SQL cannot render an empty
			// select list, so ToSQL may add a constant head item, and
			// constants/duplicates carry no information.
			a, b := q.Clone(), back[0].Clone()
			a.NormalizeHead()
			b.NormalizeHead()
			if !Equivalent(a, b) && !q.AggApprox {
				t.Fatalf("translate∘ToSQL not equivalent:\n src: %s\n  cq: %s\nback: %s", src, q, back[0])
			}
		}
		_ = tr
	})
}

func fuzzSchema(f *testing.F) *schema.Schema {
	f.Helper()
	s, err := schema.NewBuilder().
		Table("Users").
		NotNullCol("UId", sqlvalue.Int).
		NotNullCol("Name", sqlvalue.Text).
		PK("UId").Done().
		Table("Events").
		NotNullCol("EId", sqlvalue.Int).
		NotNullCol("Title", sqlvalue.Text).
		Col("Notes", sqlvalue.Text).
		PK("EId").Done().
		Table("Attendance").
		NotNullCol("UId", sqlvalue.Int).
		NotNullCol("EId", sqlvalue.Int).
		PK("UId", "EId").Done().
		Build()
	if err != nil {
		f.Fatal(err)
	}
	return s
}
