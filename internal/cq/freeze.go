package cq

import (
	"fmt"

	"repro/internal/schema"
	"repro/internal/sqlvalue"
)

// Instance is a small database instance: table name (lower-cased) ->
// rows of constants. Produced by Freeze and consumed by the
// disclosure checker and the counterexample search.
type Instance map[string][][]sqlvalue.Value

// Clone deep-copies the instance.
func (in Instance) Clone() Instance {
	out := make(Instance, len(in))
	for t, rows := range in {
		nr := make([][]sqlvalue.Value, len(rows))
		for i, r := range rows {
			nr[i] = append([]sqlvalue.Value(nil), r...)
		}
		out[t] = nr
	}
	return out
}

// Freeze builds the canonical instance of the query: each term class
// becomes a constant and each atom becomes a tuple. Variable and
// parameter classes receive fresh values of the column's type that
// satisfy the query's comparisons; distinct classes receive distinct
// values. The returned assignment maps term keys to their values.
//
// Freeze fails only when the comparisons are unsatisfiable or require
// a non-integer value in an INTEGER column with no slack.
func Freeze(s *schema.Schema, q *Query) (Instance, map[string]sqlvalue.Value, error) {
	cs := NewConstraints()
	cs.AddAll(q.Comps)
	if !cs.Consistent() {
		return nil, nil, fmt.Errorf("cq: unsatisfiable comparisons in %s", q)
	}

	// Infer a type per term from column positions.
	termType := make(map[string]sqlvalue.Type)
	noteType := func(t Term, typ sqlvalue.Type) {
		if _, ok := termType[t.Key()]; !ok {
			termType[t.Key()] = typ
		}
	}
	for _, a := range q.Atoms {
		tab, ok := s.Table(a.Table)
		if !ok {
			return nil, nil, fmt.Errorf("cq: unknown table %q", a.Table)
		}
		if len(a.Args) != len(tab.Columns) {
			return nil, nil, fmt.Errorf("cq: atom arity mismatch for %q", a.Table)
		}
		for i, t := range a.Args {
			noteType(t, tab.Columns[i].Type)
		}
	}
	for _, c := range q.Comps {
		for _, t := range []Term{c.Left, c.Right} {
			if t.IsConst() {
				noteType(t, t.Const.Type())
			}
		}
	}

	// Collect term classes appearing anywhere in the query.
	classOf := func(t Term) string { return cs.find(cs.intern(t)) }
	classes := make(map[string]Term) // class representative key -> sample term
	addTerm := func(t Term) {
		classes[classOf(t)] = t
	}
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			addTerm(t)
		}
	}
	for _, c := range q.Comps {
		addTerm(c.Left)
		addTerm(c.Right)
	}
	for _, t := range q.Head {
		addTerm(t)
	}

	// Assign values per class.
	vals := make(map[string]sqlvalue.Value) // class key -> value
	// Pass 1: classes pinned by constants.
	for ck := range classes {
		if v, ok := cs.ValueOf(cs.terms[ck]); ok {
			vals[ck] = v
		}
	}
	// Pass 2: order-constrained numeric classes via difference-
	// constraint relaxation; text classes get distinct fresh strings.
	if err := assignOrdered(cs, classes, termType, vals); err != nil {
		return nil, nil, err
	}

	// Verify all comparisons.
	valOf := func(t Term) sqlvalue.Value {
		if t.IsConst() {
			return t.Const
		}
		return vals[classOf(t)]
	}
	for _, c := range q.Comps {
		if !groundHolds(Comparison{Op: c.Op, Left: C(valOf(c.Left)), Right: C(valOf(c.Right))}) {
			return nil, nil, fmt.Errorf("cq: could not satisfy %s when freezing %s", c, q)
		}
	}

	// Materialize atoms, deduplicating identical tuples.
	inst := make(Instance)
	seen := make(map[string]bool)
	for _, a := range q.Atoms {
		row := make([]sqlvalue.Value, len(a.Args))
		key := a.Table + "|"
		for i, t := range a.Args {
			row[i] = valOf(t)
			key += row[i].Key() + ","
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		inst[a.Table] = append(inst[a.Table], row)
	}

	// Term-key assignment for callers.
	assign := make(map[string]sqlvalue.Value)
	for _, t := range classes {
		assign[t.Key()] = valOf(t)
	}
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			assign[t.Key()] = valOf(t)
		}
	}
	for _, t := range q.Head {
		assign[t.Key()] = valOf(t)
	}
	return inst, assign, nil
}

// assignOrdered gives every unpinned class a value: numeric classes
// satisfy the order constraints (solved as difference constraints by
// iterative relaxation); text and boolean classes get fresh values
// (order constraints over text are rare in our fragment; equalities
// were already folded into classes).
func assignOrdered(cs *Constraints, classes map[string]Term, termType map[string]sqlvalue.Type, vals map[string]sqlvalue.Value) error {
	cl := cs.close()
	// Seed numeric positions: pinned classes at their value; unpinned
	// at a base offset, separated so distinct classes differ.
	pos := make(map[string]float64)
	pinned := make(map[string]bool)
	base := float64(1000)
	for ck := range classes {
		if v, ok := vals[ck]; ok {
			switch v.Type() {
			case sqlvalue.Int:
				pos[ck] = float64(v.Int())
				pinned[ck] = true
			case sqlvalue.Real:
				pos[ck] = v.Real()
				pinned[ck] = true
			}
		}
	}
	// Order unpinned classes deterministically.
	var unpinned []string
	for ck := range classes {
		if !pinned[ck] {
			if _, has := vals[ck]; has {
				continue // pinned non-numeric
			}
			unpinned = append(unpinned, ck)
		}
	}
	sortStrings(unpinned)
	for i, ck := range unpinned {
		pos[ck] = base + float64(i)*16
	}

	// Relax order constraints: for classes i,j with dist[i][j] <= 0,
	// require pos[i] (+1 if strict) <= pos[j]. Iterate to fixpoint.
	type edge struct {
		from, to string
		strict   bool
	}
	var edges []edge
	for i, ri := range cl.reps {
		for j, rj := range cl.reps {
			if i == j || cl.dist[i][j] == noRel {
				continue
			}
			if _, isClass := classes[ri]; !isClass {
				continue
			}
			if _, isClass := classes[rj]; !isClass {
				continue
			}
			edges = append(edges, edge{from: ri, to: rj, strict: cl.dist[i][j] == -1})
		}
	}
	for iter := 0; iter < len(edges)+2; iter++ {
		changed := false
		for _, e := range edges {
			gap := 0.0
			if e.strict {
				gap = 1
			}
			fp, fok := pos[e.from]
			tp, tok := pos[e.to]
			if !fok || !tok {
				continue
			}
			if fp+gap > tp {
				if pinned[e.to] {
					if pinned[e.from] {
						return fmt.Errorf("cq: pinned order conflict")
					}
					// Push 'from' down instead.
					pos[e.from] = tp - gap - 1
					changed = true
					continue
				}
				pos[e.to] = fp + gap + 1
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Nudge distinct unpinned classes apart if they collided.
	used := make(map[float64]bool)
	for ck, p := range pos {
		if pinned[ck] {
			used[p] = true
		}
	}
	for _, ck := range unpinned {
		p := pos[ck]
		for used[p] {
			p += 1
		}
		pos[ck] = p
		used[p] = true
	}

	// Materialize values by type.
	textSeq := 0
	for ck, t := range classes {
		if _, has := vals[ck]; has {
			continue
		}
		typ, ok := termType[t.Key()]
		if !ok {
			typ = sqlvalue.Int
		}
		switch typ {
		case sqlvalue.Int:
			vals[ck] = sqlvalue.NewInt(int64(pos[ck]))
		case sqlvalue.Real:
			vals[ck] = sqlvalue.NewReal(pos[ck])
		case sqlvalue.Text:
			textSeq++
			vals[ck] = sqlvalue.NewText(fmt.Sprintf("f_%d_%d", int64(pos[ck]), textSeq))
		case sqlvalue.Bool:
			vals[ck] = sqlvalue.NewBool(true)
		default:
			vals[ck] = sqlvalue.NewInt(int64(pos[ck]))
		}
	}
	return nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
