package cq

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/sqlvalue"
)

func calendarSchema(t testing.TB) *schema.Schema {
	t.Helper()
	s, err := schema.NewBuilder().
		Table("Users").
		NotNullCol("UId", sqlvalue.Int).
		NotNullCol("Name", sqlvalue.Text).
		PK("UId").Done().
		Table("Events").
		OpaqueCol("EId", sqlvalue.Int).
		NotNullCol("Title", sqlvalue.Text).
		Col("Notes", sqlvalue.Text).
		PK("EId").Done().
		Table("Attendance").
		NotNullCol("UId", sqlvalue.Int).
		NotNullCol("EId", sqlvalue.Int).
		PK("UId", "EId").Done().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func employeeSchema(t testing.TB) *schema.Schema {
	t.Helper()
	s, err := schema.NewBuilder().
		Table("Employees").
		NotNullCol("Id", sqlvalue.Int).
		NotNullCol("Name", sqlvalue.Text).
		NotNullCol("Age", sqlvalue.Int).
		PK("Id").Done().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func one(t *testing.T, u UCQ) *Query {
	t.Helper()
	if len(u) != 1 {
		t.Fatalf("want 1 disjunct, got %d:\n%s", len(u), u)
	}
	return u[0]
}

func TestTranslateSimple(t *testing.T) {
	s := calendarSchema(t)
	q := one(t, MustFromSQL(s, "SELECT EId FROM Attendance WHERE UId = ?MyUId"))
	if len(q.Atoms) != 1 || q.Atoms[0].Table != "attendance" {
		t.Fatalf("atoms: %v", q.Atoms)
	}
	// UId position substituted by the parameter.
	if !q.Atoms[0].Args[0].Equal(P("MyUId")) {
		t.Fatalf("param substitution: %v", q.Atoms[0])
	}
	if len(q.Head) != 1 || !q.Head[0].IsVar() {
		t.Fatalf("head: %v", q.Head)
	}
	if len(q.Comps) != 0 {
		t.Fatalf("eqs should be folded: %v", q.Comps)
	}
}

func TestTranslateJoin(t *testing.T) {
	s := calendarSchema(t)
	q := one(t, MustFromSQL(s,
		"SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?MyUId"))
	if len(q.Atoms) != 2 {
		t.Fatalf("atoms: %v", q.Atoms)
	}
	// Join variable shared between the two atoms after Eq folding.
	eid1 := q.Atoms[0].Args[0]
	eid2 := q.Atoms[1].Args[1]
	if !eid1.Equal(eid2) {
		t.Fatalf("join variables not unified: %v vs %v", eid1, eid2)
	}
	// Head covers Events.* then Attendance.* = 3 + 2 columns.
	if len(q.Head) != 5 {
		t.Fatalf("head width: %d", len(q.Head))
	}
}

func TestTranslateConstants(t *testing.T) {
	s := calendarSchema(t)
	q := one(t, MustFromSQL(s, "SELECT 1 FROM Attendance WHERE UId=1 AND EId=2"))
	if !q.Atoms[0].Args[0].Equal(CInt(1)) || !q.Atoms[0].Args[1].Equal(CInt(2)) {
		t.Fatalf("constants not substituted: %v", q.Atoms[0])
	}
	if !q.Head[0].Equal(CInt(1)) {
		t.Fatalf("const head: %v", q.Head)
	}
}

func TestTranslateComparisons(t *testing.T) {
	s := employeeSchema(t)
	q := one(t, MustFromSQL(s, "SELECT Name FROM Employees WHERE Age >= 60"))
	if len(q.Comps) != 1 {
		t.Fatalf("comps: %v", q.Comps)
	}
	c := q.Comps[0]
	if c.Op != Ge && c.Op != Le {
		t.Fatalf("comp op: %v", c)
	}
}

func TestTranslateOrSplits(t *testing.T) {
	s := employeeSchema(t)
	u := MustFromSQL(s, "SELECT Name FROM Employees WHERE Age = 1 OR Age = 2")
	if len(u) != 2 {
		t.Fatalf("OR should yield 2 disjuncts, got %d", len(u))
	}
}

func TestTranslateInList(t *testing.T) {
	s := employeeSchema(t)
	u := MustFromSQL(s, "SELECT Name FROM Employees WHERE Id IN (1, 2, 3)")
	if len(u) != 3 {
		t.Fatalf("IN list should yield 3 disjuncts, got %d", len(u))
	}
}

func TestTranslateInSubquery(t *testing.T) {
	s := calendarSchema(t)
	q := one(t, MustFromSQL(s,
		"SELECT Title FROM Events WHERE EId IN (SELECT EId FROM Attendance WHERE UId = ?MyUId)"))
	if len(q.Atoms) != 2 {
		t.Fatalf("subquery atoms folded: %v", q.Atoms)
	}
}

func TestTranslateCorrelatedExists(t *testing.T) {
	s := calendarSchema(t)
	q := one(t, MustFromSQL(s,
		"SELECT Title FROM Events e WHERE EXISTS (SELECT 1 FROM Attendance a WHERE a.EId = e.EId AND a.UId = 5)"))
	if len(q.Atoms) != 2 {
		t.Fatalf("atoms: %v", q.Atoms)
	}
	if !q.Atoms[1].Args[0].Equal(CInt(5)) {
		t.Fatalf("correlated const: %v", q.Atoms[1])
	}
	if !q.Atoms[0].Args[0].Equal(q.Atoms[1].Args[1]) {
		t.Fatalf("correlation variable not shared: %v", q.Atoms)
	}
}

func TestTranslateAggregateApprox(t *testing.T) {
	s := calendarSchema(t)
	q := one(t, MustFromSQL(s, "SELECT COUNT(*) FROM Attendance WHERE UId = 3"))
	if !q.AggApprox {
		t.Fatal("aggregate should set AggApprox")
	}
	if len(q.Head) != 2 {
		t.Fatalf("agg head should expose all columns: %v", q.Head)
	}
}

func TestTranslateRejectsNonCQ(t *testing.T) {
	s := calendarSchema(t)
	bad := []string{
		"SELECT Title FROM Events WHERE Notes IS NULL",
		"SELECT Title FROM Events WHERE Title LIKE 'a%'",
		"SELECT Title FROM Events e LEFT JOIN Attendance a ON e.EId = a.EId",
		"SELECT Title FROM Events WHERE NOT EXISTS (SELECT 1 FROM Attendance)",
		"SELECT Title FROM Events WHERE Title = UPPER('x')",
	}
	for _, src := range bad {
		_, err := FromSQL(s, src)
		if err == nil {
			t.Errorf("%q should be outside the fragment", src)
			continue
		}
		if !errors.Is(err, ErrNotCQ) && !strings.Contains(err.Error(), "cq:") {
			t.Errorf("%q: unexpected error class %v", src, err)
		}
	}
}

func TestContainmentBasic(t *testing.T) {
	s := employeeSchema(t)
	q60 := one(t, MustFromSQL(s, "SELECT Name FROM Employees WHERE Age >= 60"))
	q18 := one(t, MustFromSQL(s, "SELECT Name FROM Employees WHERE Age >= 18"))
	if !Contains(q60, q18) {
		t.Error("Age>=60 should be contained in Age>=18")
	}
	if Contains(q18, q60) {
		t.Error("Age>=18 must not be contained in Age>=60")
	}
}

func TestContainmentReflexiveAndJoin(t *testing.T) {
	s := calendarSchema(t)
	v2 := one(t, MustFromSQL(s,
		"SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?MyUId"))
	if !Contains(v2, v2) {
		t.Error("containment must be reflexive")
	}
	// Specializing the join with a constant is contained in the view.
	qSpec := one(t, MustFromSQL(s,
		"SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?MyUId AND e.EId = 2"))
	if !Contains(qSpec, v2) {
		t.Error("specialized query should be contained in the view")
	}
	if Contains(v2, qSpec) {
		t.Error("view must not be contained in the specialized query")
	}
}

func TestContainmentHeadMismatch(t *testing.T) {
	s := employeeSchema(t)
	qName := one(t, MustFromSQL(s, "SELECT Name FROM Employees"))
	qAge := one(t, MustFromSQL(s, "SELECT Age FROM Employees"))
	if Contains(qName, qAge) || Contains(qAge, qName) {
		t.Error("different head columns must not be mutually contained")
	}
}

func TestContainmentWithParams(t *testing.T) {
	s := calendarSchema(t)
	v1 := one(t, MustFromSQL(s, "SELECT EId FROM Attendance WHERE UId = ?MyUId"))
	// Same param: contained.
	q := one(t, MustFromSQL(s, "SELECT EId FROM Attendance WHERE UId = ?MyUId AND EId = 7"))
	if !Contains(q, v1) {
		t.Error("narrowed query should be contained under the same parameter")
	}
	// Different param: not contained.
	q2 := one(t, MustFromSQL(s, "SELECT EId FROM Attendance WHERE UId = ?OtherUId"))
	if Contains(q2, v1) {
		t.Error("different parameters must not match")
	}
}

func TestContainmentTransitivityProperty(t *testing.T) {
	s := employeeSchema(t)
	qs := []*Query{
		one(t, MustFromSQL(s, "SELECT Name FROM Employees WHERE Age >= 65")),
		one(t, MustFromSQL(s, "SELECT Name FROM Employees WHERE Age >= 60")),
		one(t, MustFromSQL(s, "SELECT Name FROM Employees WHERE Age >= 18")),
		one(t, MustFromSQL(s, "SELECT Name FROM Employees")),
	}
	for i := range qs {
		for j := range qs {
			for k := range qs {
				if Contains(qs[i], qs[j]) && Contains(qs[j], qs[k]) && !Contains(qs[i], qs[k]) {
					t.Fatalf("transitivity violated at %d,%d,%d", i, j, k)
				}
			}
		}
	}
}

func TestUCQContainment(t *testing.T) {
	s := employeeSchema(t)
	u12 := MustFromSQL(s, "SELECT Name FROM Employees WHERE Age = 1 OR Age = 2")
	u123 := MustFromSQL(s, "SELECT Name FROM Employees WHERE Age IN (1, 2, 3)")
	if !ContainsUCQ(u12, u123) {
		t.Error("1|2 should be contained in 1|2|3")
	}
	if ContainsUCQ(u123, u12) {
		t.Error("1|2|3 must not be contained in 1|2")
	}
}

func TestMinimize(t *testing.T) {
	s := calendarSchema(t)
	// Redundant self-join: attendance twice with same pattern.
	q := one(t, MustFromSQL(s,
		"SELECT a1.EId FROM Attendance a1, Attendance a2 WHERE a1.UId = ?U AND a2.UId = ?U AND a1.EId = a2.EId"))
	if len(q.Atoms) != 2 {
		t.Fatalf("setup: %v", q.Atoms)
	}
	m := Minimize(q)
	if len(m.Atoms) != 1 {
		t.Fatalf("minimize should drop the redundant atom: %v", m.Atoms)
	}
	if !Equivalent(q, m) {
		t.Error("minimized query must stay equivalent")
	}
}

func TestMinimizeKeepsNecessaryAtoms(t *testing.T) {
	s := calendarSchema(t)
	q := one(t, MustFromSQL(s,
		"SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?U"))
	m := Minimize(q)
	if len(m.Atoms) != 2 {
		t.Fatalf("join atoms are all necessary: %v", m.Atoms)
	}
}

func TestConstraintsSolver(t *testing.T) {
	cs := NewConstraints()
	x, y, z := V("x"), V("y"), V("z")
	cs.Add(Comparison{Op: Lt, Left: x, Right: y})
	cs.Add(Comparison{Op: Le, Left: y, Right: z})
	if !cs.Consistent() {
		t.Fatal("x<y<=z is consistent")
	}
	if !cs.Implies(Comparison{Op: Lt, Left: x, Right: z}) {
		t.Error("x<z should be implied")
	}
	if !cs.Implies(Comparison{Op: Ne, Left: x, Right: z}) {
		t.Error("x<>z should be implied")
	}
	if cs.Implies(Comparison{Op: Lt, Left: z, Right: x}) {
		t.Error("z<x must not be implied")
	}
	cs.Add(Comparison{Op: Lt, Left: z, Right: x})
	if cs.Consistent() {
		t.Error("cycle with strict edge must be inconsistent")
	}
}

func TestConstraintsConstants(t *testing.T) {
	cs := NewConstraints()
	x := V("x")
	cs.Add(Comparison{Op: Ge, Left: x, Right: CInt(60)})
	if !cs.Implies(Comparison{Op: Ge, Left: x, Right: CInt(18)}) {
		t.Error("x>=60 implies x>=18")
	}
	if !cs.Implies(Comparison{Op: Gt, Left: x, Right: CInt(18)}) {
		t.Error("x>=60 implies x>18")
	}
	if cs.Implies(Comparison{Op: Ge, Left: x, Right: CInt(61)}) {
		t.Error("x>=60 does not imply x>=61")
	}
	if !cs.Implies(Comparison{Op: Ne, Left: x, Right: CInt(5)}) {
		t.Error("x>=60 implies x<>5")
	}
}

func TestConstraintsEqualityConflict(t *testing.T) {
	cs := NewConstraints()
	cs.AddEq(V("x"), CInt(1))
	cs.AddEq(V("x"), CInt(2))
	if cs.Consistent() {
		t.Error("x=1 and x=2 must be inconsistent")
	}
}

func TestConstraintsNeConflict(t *testing.T) {
	cs := NewConstraints()
	cs.Add(Comparison{Op: Ne, Left: V("x"), Right: V("y")})
	cs.AddEq(V("x"), V("y"))
	if cs.Consistent() {
		t.Error("x<>y with x=y must be inconsistent")
	}
}

func TestConstraintsParams(t *testing.T) {
	cs := NewConstraints()
	cs.AddEq(V("x"), P("MyUId"))
	if !cs.Implies(Comparison{Op: Eq, Left: V("x"), Right: P("MyUId")}) {
		t.Error("x = ?MyUId should be implied")
	}
	if cs.Implies(Comparison{Op: Eq, Left: V("x"), Right: P("Other")}) {
		t.Error("distinct params must not be conflated")
	}
}

func TestCanonicalKeyStability(t *testing.T) {
	s := calendarSchema(t)
	a := one(t, MustFromSQL(s, "SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?U"))
	b := one(t, MustFromSQL(s, "SELECT ev.Title FROM Events ev JOIN Attendance att ON ev.EId = att.EId WHERE att.UId = ?U"))
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Errorf("alpha-equivalent queries should share a key:\n%s\n%s", a.CanonicalKey(), b.CanonicalKey())
	}
	c := one(t, MustFromSQL(s, "SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?V"))
	if a.CanonicalKey() == c.CanonicalKey() {
		t.Error("different params must produce different keys")
	}
}

func TestBindParams(t *testing.T) {
	s := calendarSchema(t)
	q := one(t, MustFromSQL(s, "SELECT EId FROM Attendance WHERE UId = ?MyUId"))
	b := q.BindParams(map[string]sqlvalue.Value{"MyUId": sqlvalue.NewInt(7)})
	if !b.Atoms[0].Args[0].Equal(CInt(7)) {
		t.Fatalf("bound: %v", b.Atoms[0])
	}
	if len(q.Params()) != 1 || len(b.Params()) != 0 {
		t.Fatal("params accounting wrong")
	}
}

func TestFreeze(t *testing.T) {
	s := calendarSchema(t)
	q := one(t, MustFromSQL(s,
		"SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = 42"))
	inst, assign, err := Freeze(s, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst["events"]) != 1 || len(inst["attendance"]) != 1 {
		t.Fatalf("instance: %v", inst)
	}
	// Join column must agree across tables.
	if !sqlvalue.Identical(inst["events"][0][0], inst["attendance"][0][1]) {
		t.Fatalf("join values differ: %v", inst)
	}
	// UId pinned to 42.
	if inst["attendance"][0][0].Int() != 42 {
		t.Fatalf("pinned const: %v", inst["attendance"][0])
	}
	if len(assign) == 0 {
		t.Fatal("assignment missing")
	}
}

func TestFreezeOrderConstraints(t *testing.T) {
	s := employeeSchema(t)
	q := one(t, MustFromSQL(s, "SELECT Name FROM Employees WHERE Age >= 60 AND Age < 70"))
	inst, _, err := Freeze(s, q)
	if err != nil {
		t.Fatal(err)
	}
	age := inst["employees"][0][2].Int()
	if age < 60 || age >= 70 {
		t.Fatalf("frozen age %d violates constraints", age)
	}
}

func TestFreezeUnsatisfiable(t *testing.T) {
	s := employeeSchema(t)
	q := one(t, MustFromSQL(s, "SELECT Name FROM Employees WHERE Age > 70 AND Age < 60"))
	if _, _, err := Freeze(s, q); err == nil {
		t.Fatal("unsatisfiable query must not freeze")
	}
}

func TestHomomorphismSoundnessProperty(t *testing.T) {
	// If Contains(sub, super), then evaluating both on sub's frozen
	// instance must put sub's head row into super's answers. We check
	// the core of that: freezing sub yields an instance where super
	// has a matching embedding.
	s := calendarSchema(t)
	sub := one(t, MustFromSQL(s,
		"SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = 3 AND e.EId = 9"))
	super := one(t, MustFromSQL(s,
		"SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = 3"))
	if !Contains(sub, super) {
		t.Fatal("setup: sub should be contained")
	}
	inst, _, err := Freeze(s, sub)
	if err != nil {
		t.Fatal(err)
	}
	// super's atoms must embed into the instance.
	ev := inst["events"][0]
	at := inst["attendance"][0]
	if !sqlvalue.Identical(ev[0], at[1]) || at[0].Int() != 3 {
		t.Fatalf("embedding broken: %v %v", ev, at)
	}
}

func TestQueryStringAndVars(t *testing.T) {
	s := calendarSchema(t)
	q := one(t, MustFromSQL(s, "SELECT EId FROM Attendance WHERE UId = ?MyUId"))
	q.Name = "V1"
	str := q.String()
	if !strings.Contains(str, "V1(") || !strings.Contains(str, "attendance(") {
		t.Errorf("rendering: %s", str)
	}
	if len(q.Vars()) != 1 {
		t.Errorf("vars: %v", q.Vars())
	}
}

func TestRenameVarsDisjoint(t *testing.T) {
	s := calendarSchema(t)
	q := one(t, MustFromSQL(s, "SELECT EId FROM Attendance WHERE UId = ?MyUId"))
	r := q.RenameVars("z_")
	for _, v := range r.Vars() {
		if !strings.HasPrefix(v, "z_") {
			t.Errorf("rename missed %q", v)
		}
	}
	// Original untouched.
	for _, v := range q.Vars() {
		if strings.HasPrefix(v, "z_") {
			t.Error("rename mutated original")
		}
	}
}

func TestTranslateUnion(t *testing.T) {
	s := calendarSchema(t)
	u := MustFromSQL(s,
		"SELECT EId FROM Attendance WHERE UId = 1 UNION SELECT EId FROM Attendance WHERE UId = 2")
	if len(u) != 2 {
		t.Fatalf("union should yield 2 disjuncts: %s", u)
	}
	if _, err := FromSQL(s,
		"SELECT EId FROM Attendance UNION SELECT UId, EId FROM Attendance"); err == nil {
		t.Fatal("mismatched union arms must error")
	}
}
