package cq

import (
	"sort"
	"strings"

	"repro/internal/sqlvalue"
)

// Evaluate computes the query's answer on a small instance under set
// semantics: the set of head tuples over all satisfying assignments.
// Parameters must be bound beforehand (BindParams); unbound parameters
// never match any value.
func Evaluate(q *Query, inst Instance) [][]sqlvalue.Value {
	var out [][]sqlvalue.Value
	seen := make(map[string]bool)
	bind := make(map[string]sqlvalue.Value)
	var rec func(i int)
	rec = func(i int) {
		if i == len(q.Atoms) {
			if !compsHold(q.Comps, bind) {
				return
			}
			row := make([]sqlvalue.Value, len(q.Head))
			for hi, t := range q.Head {
				v, ok := termValue(t, bind)
				if !ok {
					return // head variable unbound: unsafe query
				}
				row[hi] = v
			}
			key := rowKey(row)
			if !seen[key] {
				seen[key] = true
				out = append(out, row)
			}
			return
		}
		a := q.Atoms[i]
		for _, tuple := range inst[a.Table] {
			if len(tuple) != len(a.Args) {
				continue
			}
			var bound []string
			ok := true
			for k, t := range a.Args {
				switch t.Kind {
				case KindConst:
					if !sqlvalue.Identical(t.Const, tuple[k]) {
						ok = false
					}
				case KindParam:
					ok = false // unbound parameter matches nothing
				case KindVar:
					if v, has := bind[t.Var]; has {
						if !sqlvalue.Identical(v, tuple[k]) {
							ok = false
						}
					} else {
						bind[t.Var] = tuple[k]
						bound = append(bound, t.Var)
					}
				}
				if !ok {
					break
				}
			}
			if ok {
				rec(i + 1)
			}
			for _, v := range bound {
				delete(bind, v)
			}
		}
	}
	rec(0)
	return out
}

// EvaluateUCQ unions the disjuncts' answers.
func EvaluateUCQ(u UCQ, inst Instance) [][]sqlvalue.Value {
	var out [][]sqlvalue.Value
	seen := make(map[string]bool)
	for _, q := range u {
		for _, row := range Evaluate(q, inst) {
			k := rowKey(row)
			if !seen[k] {
				seen[k] = true
				out = append(out, row)
			}
		}
	}
	return out
}

// AnswerKey returns a canonical string for an answer set, independent
// of row order — two instances agree on a query iff their AnswerKeys
// match.
func AnswerKey(rows [][]sqlvalue.Value) string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = rowKey(r)
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// ContainsRow reports whether the answer set contains the row.
func ContainsRow(rows [][]sqlvalue.Value, row []sqlvalue.Value) bool {
	want := rowKey(row)
	for _, r := range rows {
		if rowKey(r) == want {
			return true
		}
	}
	return false
}

func rowKey(row []sqlvalue.Value) string {
	var b strings.Builder
	for _, v := range row {
		b.WriteString(v.Key())
		b.WriteByte(0)
	}
	return b.String()
}

func termValue(t Term, bind map[string]sqlvalue.Value) (sqlvalue.Value, bool) {
	switch t.Kind {
	case KindConst:
		return t.Const, true
	case KindVar:
		v, ok := bind[t.Var]
		return v, ok
	}
	return sqlvalue.Value{}, false
}

func compsHold(comps []Comparison, bind map[string]sqlvalue.Value) bool {
	for _, c := range comps {
		l, ok1 := termValue(c.Left, bind)
		r, ok2 := termValue(c.Right, bind)
		if !ok1 || !ok2 {
			return false
		}
		if !groundHolds(Comparison{Op: c.Op, Left: C(l), Right: C(r)}) {
			return false
		}
	}
	return true
}
