package cq

import (
	"math/rand"
	"testing"

	"repro/internal/schema"
	"repro/internal/sqlvalue"
)

// randInstance builds a random small instance over the calendar
// schema with values drawn from a tiny domain (collisions on purpose).
func randInstance(rng *rand.Rand, s *schema.Schema) Instance {
	inst := Instance{}
	dom := func() sqlvalue.Value { return sqlvalue.NewInt(int64(rng.Intn(4))) }
	text := func() sqlvalue.Value {
		return sqlvalue.NewText([]string{"a", "b", "c"}[rng.Intn(3)])
	}
	for _, t := range s.Tables() {
		n := rng.Intn(4)
		for i := 0; i < n; i++ {
			row := make([]sqlvalue.Value, len(t.Columns))
			for c, col := range t.Columns {
				if col.Type == sqlvalue.Text {
					row[c] = text()
				} else {
					row[c] = dom()
				}
			}
			inst[lowerName(t.Name)] = append(inst[lowerName(t.Name)], row)
		}
	}
	return inst
}

func lowerName(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 32
		}
	}
	return string(b)
}

// queryPool is a set of CQ-fragment queries over the calendar schema
// with varied shapes (selections, joins, comparisons, params bound).
func queryPool(t *testing.T, s *schema.Schema) []*Query {
	t.Helper()
	srcs := []string{
		"SELECT EId FROM Attendance WHERE UId = 1",
		"SELECT EId FROM Attendance",
		"SELECT UId, EId FROM Attendance",
		"SELECT Title FROM Events",
		"SELECT Title FROM Events WHERE EId = 2",
		"SELECT EId, Title FROM Events WHERE EId >= 1",
		"SELECT EId, Title FROM Events WHERE EId >= 2",
		"SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId",
		"SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = 1",
		"SELECT e.EId FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = 2",
		"SELECT a1.EId FROM Attendance a1, Attendance a2 WHERE a1.EId = a2.EId AND a1.UId = 1",
		"SELECT Name FROM Users WHERE UId = 1",
		"SELECT u.Name FROM Users u JOIN Attendance a ON u.UId = a.UId",
	}
	var out []*Query
	for _, src := range srcs {
		out = append(out, one(t, MustFromSQL(s, src)))
	}
	return out
}

// TestContainmentSoundOnRandomInstances: whenever Contains(a, b)
// reports true, a's answers must be a subset of b's on every instance.
// This cross-validates the homomorphism procedure against the direct
// evaluator.
func TestContainmentSoundOnRandomInstances(t *testing.T) {
	s := calendarSchema(t)
	pool := queryPool(t, s)
	rng := rand.New(rand.NewSource(42))
	contained := 0
	for i, a := range pool {
		for j, b := range pool {
			if i == j || !Contains(a, b) {
				continue
			}
			contained++
			for trial := 0; trial < 40; trial++ {
				inst := randInstance(rng, s)
				ra := Evaluate(a, inst)
				rb := Evaluate(b, inst)
				for _, row := range ra {
					if !ContainsRow(rb, row) {
						t.Fatalf("UNSOUND containment:\n a=%s\n b=%s\n instance=%v\n row=%v",
							a, b, inst, row)
					}
				}
			}
		}
	}
	if contained < 3 {
		t.Fatalf("pool exercised too few containments: %d", contained)
	}
}

// TestInfoContainsSoundOnRandomInstances: if InfoContains(sub, super),
// then sub's answer must be a *function* of super's answer — two
// instances agreeing on super must agree on sub.
func TestInfoContainsSoundOnRandomInstances(t *testing.T) {
	s := calendarSchema(t)
	pool := queryPool(t, s)
	rng := rand.New(rand.NewSource(7))
	checked := 0
	for i, sub := range pool {
		for j, super := range pool {
			if i == j || !InfoContains(s, sub, super) {
				continue
			}
			checked++
			// Sample instance pairs; whenever super agrees, sub must.
			var insts []Instance
			for k := 0; k < 24; k++ {
				insts = append(insts, randInstance(rng, s))
			}
			for x := 0; x < len(insts); x++ {
				for y := x + 1; y < len(insts); y++ {
					if AnswerKey(Evaluate(super, insts[x])) != AnswerKey(Evaluate(super, insts[y])) {
						continue
					}
					if AnswerKey(Evaluate(sub, insts[x])) != AnswerKey(Evaluate(sub, insts[y])) {
						t.Fatalf("UNSOUND InfoContains:\n sub=%s\n super=%s\n D1=%v\n D2=%v",
							sub, super, insts[x], insts[y])
					}
				}
			}
		}
	}
	if checked < 2 {
		t.Fatalf("pool exercised too few info-containments: %d", checked)
	}
}

// TestMinimizePreservesAnswers: Minimize must not change the query's
// answers on any instance.
func TestMinimizePreservesAnswers(t *testing.T) {
	s := calendarSchema(t)
	pool := queryPool(t, s)
	rng := rand.New(rand.NewSource(99))
	for _, q := range pool {
		m := Minimize(q)
		for trial := 0; trial < 30; trial++ {
			inst := randInstance(rng, s)
			if AnswerKey(Evaluate(q, inst)) != AnswerKey(Evaluate(m, inst)) {
				t.Fatalf("Minimize changed semantics:\n q=%s\n m=%s\n inst=%v", q, m, inst)
			}
		}
	}
}

// TestFreezeYieldsAnswer: the canonical instance of a satisfiable
// query must make the query return its frozen head row.
func TestFreezeYieldsAnswer(t *testing.T) {
	s := calendarSchema(t)
	for _, q := range queryPool(t, s) {
		inst, _, err := Freeze(s, q)
		if err != nil {
			t.Fatalf("freeze %s: %v", q, err)
		}
		if len(Evaluate(q, inst)) == 0 {
			t.Fatalf("query %s returns nothing on its own freeze %v", q, inst)
		}
	}
}

// TestChaseFKsPreservesAnswersOnConsistentInstances: on instances that
// satisfy the FKs, chasing must not change the query's answers.
func TestChaseFKsPreservesAnswersOnConsistentInstances(t *testing.T) {
	s := calendarSchema(t)
	rng := rand.New(rand.NewSource(5))
	pool := queryPool(t, s)
	for _, q := range pool {
		c := ChaseFKs(s, q)
		for trial := 0; trial < 30; trial++ {
			inst := randInstance(rng, s)
			closeFKs(s, inst)
			if AnswerKey(Evaluate(q, inst)) != AnswerKey(Evaluate(c, inst)) {
				t.Fatalf("chase changed semantics on FK-consistent instance:\n q=%s\n c=%s\n inst=%v",
					q, c, inst)
			}
		}
	}
}

// closeFKs repairs an instance to satisfy foreign keys by inserting
// missing referenced rows.
func closeFKs(s *schema.Schema, inst Instance) {
	for pass := 0; pass < 3; pass++ {
		for _, t := range s.Tables() {
			rows := inst[lowerName(t.Name)]
			for _, fk := range t.ForeignKeys {
				ref, _ := s.Table(fk.RefTable)
				for _, row := range rows {
					vals := make([]sqlvalue.Value, len(fk.Columns))
					for i, c := range fk.Columns {
						ci, _ := t.ColumnIndex(c)
						vals[i] = row[ci]
					}
					if hasRefRow(ref, inst, fk, vals) {
						continue
					}
					nr := make([]sqlvalue.Value, len(ref.Columns))
					for i, col := range ref.Columns {
						if col.Type == sqlvalue.Text {
							nr[i] = sqlvalue.NewText("fkfix")
						} else {
							nr[i] = sqlvalue.NewInt(0)
						}
					}
					for i, rc := range fk.RefColumns {
						ri, _ := ref.ColumnIndex(rc)
						nr[ri] = vals[i]
					}
					inst[lowerName(ref.Name)] = append(inst[lowerName(ref.Name)], nr)
				}
			}
		}
	}
}

func hasRefRow(ref *schema.Table, inst Instance, fk schema.ForeignKey, vals []sqlvalue.Value) bool {
	for _, r := range inst[lowerName(ref.Name)] {
		ok := true
		for i, rc := range fk.RefColumns {
			ri, _ := ref.ColumnIndex(rc)
			if !sqlvalue.Identical(r[ri], vals[i]) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestEvaluateDeduplicates: set semantics — no duplicate head rows.
func TestEvaluateDeduplicates(t *testing.T) {
	s := calendarSchema(t)
	q := one(t, MustFromSQL(s, "SELECT UId FROM Attendance"))
	inst := Instance{"attendance": {
		{sqlvalue.NewInt(1), sqlvalue.NewInt(1)},
		{sqlvalue.NewInt(1), sqlvalue.NewInt(2)},
	}}
	rows := Evaluate(q, inst)
	if len(rows) != 1 {
		t.Fatalf("set semantics violated: %v", rows)
	}
}
