package cq

import (
	"fmt"
	"strings"

	"repro/internal/schema"
)

// ToSQL renders the conjunctive query back into SQL:
//
//	SELECT <head> FROM t0 x0, t1 x1, ... WHERE <joins and comparisons>
//
// Each atom gets a fresh alias; repeated variables become equality
// predicates on the first occurrence's column; parameters render as
// named SQL parameters. The output parses back into an equivalent CQ
// (tested), which is how extracted policies and generated patches are
// materialized as view definitions.
func ToSQL(s *schema.Schema, q *Query) (string, error) {
	type site struct {
		alias  string
		column string
	}
	binding := make(map[string]site) // var name -> first occurrence
	var conds []string

	aliases := make([]string, len(q.Atoms))
	var from []string
	for ai, a := range q.Atoms {
		tab, ok := s.Table(a.Table)
		if !ok {
			return "", fmt.Errorf("cq: unknown table %q", a.Table)
		}
		alias := fmt.Sprintf("t%d", ai)
		aliases[ai] = alias
		from = append(from, tab.Name+" "+alias)
		for ci, term := range a.Args {
			col := alias + "." + tab.Columns[ci].Name
			switch term.Kind {
			case KindVar:
				if first, seen := binding[term.Var]; seen {
					conds = append(conds, fmt.Sprintf("%s = %s.%s", col, first.alias, first.column))
				} else {
					binding[term.Var] = site{alias: alias, column: tab.Columns[ci].Name}
				}
			case KindConst:
				conds = append(conds, fmt.Sprintf("%s = %s", col, term.Const.String()))
			case KindParam:
				conds = append(conds, fmt.Sprintf("%s = ?%s", col, term.Param))
			}
		}
	}

	termSQL := func(t Term) (string, error) {
		switch t.Kind {
		case KindVar:
			b, ok := binding[t.Var]
			if !ok {
				return "", fmt.Errorf("cq: head/comparison variable %s not bound by any atom", t.Var)
			}
			return b.alias + "." + b.column, nil
		case KindConst:
			return t.Const.String(), nil
		default:
			return "?" + t.Param, nil
		}
	}

	for _, c := range q.Comps {
		l, err := termSQL(c.Left)
		if err != nil {
			return "", err
		}
		r, err := termSQL(c.Right)
		if err != nil {
			return "", err
		}
		conds = append(conds, fmt.Sprintf("%s %s %s", l, c.Op, r))
	}

	var items []string
	for i, h := range q.Head {
		expr, err := termSQL(h)
		if err != nil {
			return "", err
		}
		if i < len(q.HeadNames) && q.HeadNames[i] != "" && !strings.Contains(expr, "?") {
			// Alias when the head name differs from the bare column.
			parts := strings.SplitN(expr, ".", 2)
			if len(parts) != 2 || !strings.EqualFold(parts[1], q.HeadNames[i]) {
				expr += " AS " + sanitizeAlias(q.HeadNames[i])
			}
		}
		items = append(items, expr)
	}
	if len(items) == 0 {
		items = []string{"1"}
	}

	var b strings.Builder
	b.WriteString("SELECT ")
	b.WriteString(strings.Join(items, ", "))
	if len(from) > 0 {
		b.WriteString(" FROM ")
		b.WriteString(strings.Join(from, ", "))
	}
	if len(conds) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(conds, " AND "))
	}
	return b.String(), nil
}

// sanitizeAlias makes a head name safe as a SQL alias.
func sanitizeAlias(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	out := b.String()
	if out == "" || out[0] >= '0' && out[0] <= '9' {
		out = "c_" + out
	}
	return out
}
