package cq

import (
	"repro/internal/sqlvalue"
)

// Constraints is a conjunction of equalities, disequalities, and order
// constraints over terms, with a decision procedure for consistency
// and implication. Variables and parameters are uninterpreted symbols;
// constants are interpreted by their value order.
//
// The implication check is sound and complete for the order-theoretic
// fragment (conjunctions of =, <>, <, <= over a dense total order with
// constants), which covers the comparisons our SQL subset produces.
type Constraints struct {
	parent map[string]string
	terms  map[string]Term // key -> a representative term of that key
	// Order edges between class representatives: weight 0 for <=,
	// -1 for <. Stored as le[a][b] = strict?
	le  map[string]map[string]bool
	nes []pair

	dirty  bool
	closed *closure
}

type pair struct{ a, b string }

// NewConstraints returns an empty constraint set.
func NewConstraints() *Constraints {
	return &Constraints{
		parent: make(map[string]string),
		terms:  make(map[string]Term),
		le:     make(map[string]map[string]bool),
		dirty:  true,
	}
}

// Clone copies the constraint set.
func (cs *Constraints) Clone() *Constraints {
	out := NewConstraints()
	for k, v := range cs.parent {
		out.parent[k] = v
	}
	for k, v := range cs.terms {
		out.terms[k] = v
	}
	for a, m := range cs.le {
		nm := make(map[string]bool, len(m))
		for b, s := range m {
			nm[b] = s
		}
		out.le[a] = nm
	}
	out.nes = append([]pair(nil), cs.nes...)
	return out
}

func (cs *Constraints) intern(t Term) string {
	k := t.Key()
	if _, ok := cs.parent[k]; !ok {
		cs.parent[k] = k
		cs.terms[k] = t
		cs.dirty = true
	}
	return k
}

func (cs *Constraints) find(k string) string {
	for cs.parent[k] != k {
		cs.parent[k] = cs.parent[cs.parent[k]]
		k = cs.parent[k]
	}
	return k
}

// AddEq asserts a = b.
func (cs *Constraints) AddEq(a, b Term) {
	ka, kb := cs.find(cs.intern(a)), cs.find(cs.intern(b))
	if ka == kb {
		return
	}
	// Prefer a constant as class representative.
	if cs.terms[kb].IsConst() && !cs.terms[ka].IsConst() {
		ka, kb = kb, ka
	}
	cs.parent[kb] = ka
	cs.dirty = true
}

// Add asserts the comparison.
func (cs *Constraints) Add(c Comparison) {
	switch c.Op {
	case Eq:
		cs.AddEq(c.Left, c.Right)
	case Ne:
		cs.nes = append(cs.nes, pair{cs.intern(c.Left), cs.intern(c.Right)})
		cs.dirty = true
	case Lt:
		cs.addLe(c.Left, c.Right, true)
	case Le:
		cs.addLe(c.Left, c.Right, false)
	case Gt:
		cs.addLe(c.Right, c.Left, true)
	case Ge:
		cs.addLe(c.Right, c.Left, false)
	}
}

// AddAll asserts every comparison in the slice.
func (cs *Constraints) AddAll(comps []Comparison) {
	for _, c := range comps {
		cs.Add(c)
	}
}

func (cs *Constraints) addLe(a, b Term, strict bool) {
	ka, kb := cs.intern(a), cs.intern(b)
	m := cs.le[ka]
	if m == nil {
		m = make(map[string]bool)
		cs.le[ka] = m
	}
	// Strict dominates non-strict on the same edge.
	m[kb] = m[kb] || strict
	cs.dirty = true
}

// closure holds the computed transitive closure over class reps.
type closure struct {
	reps  []string
	index map[string]int
	// dist[i][j]: 0 => rep_i <= rep_j derivable, -1 => rep_i < rep_j
	// derivable, +1 (sentinel) => no relation derived.
	dist [][]int8
	// constVal[i]: the constant value of class i, if any.
	constVal []sqlvalue.Value
	hasConst []bool
	// ne[i*n+j]: classes known distinct.
	ne map[[2]int]bool
	// constIdx lists the classes with a constant value (the classes a
	// virtual term can relate to; see impliesVirtual).
	constIdx []int

	inconsistent bool
}

const noRel int8 = 1

func (cs *Constraints) close() *closure {
	if !cs.dirty && cs.closed != nil {
		return cs.closed
	}
	// Collect class representatives.
	repSet := make(map[string]bool)
	for k := range cs.parent {
		repSet[cs.find(k)] = true
	}
	cl := &closure{index: make(map[string]int), ne: make(map[[2]int]bool)}
	for r := range repSet {
		cl.index[r] = len(cl.reps)
		cl.reps = append(cl.reps, r)
	}
	n := len(cl.reps)
	cl.dist = make([][]int8, n)
	cl.constVal = make([]sqlvalue.Value, n)
	cl.hasConst = make([]bool, n)
	for i := range cl.dist {
		cl.dist[i] = make([]int8, n)
		for j := range cl.dist[i] {
			if i == j {
				cl.dist[i][j] = 0
			} else {
				cl.dist[i][j] = noRel
			}
		}
	}
	// Constants per class: the representative term is a constant when
	// the class contains one (union prefers constants), but a class
	// could have been formed by unioning two constants — detect
	// conflicts by scanning all keys.
	for k, t := range cs.terms {
		if !t.IsConst() {
			continue
		}
		i := cl.index[cs.find(k)]
		if cl.hasConst[i] {
			if !sqlvalue.Identical(cl.constVal[i], t.Const) {
				cl.inconsistent = true
			}
			continue
		}
		cl.hasConst[i] = true
		cl.constVal[i] = t.Const
	}
	// Order edges.
	upd := func(i, j int, w int8) {
		if w < cl.dist[i][j] || cl.dist[i][j] == noRel {
			cl.dist[i][j] = w
		}
	}
	for a, m := range cs.le {
		i := cl.index[cs.find(a)]
		for b, strict := range m {
			j := cl.index[cs.find(b)]
			w := int8(0)
			if strict {
				w = -1
			}
			upd(i, j, w)
		}
	}
	// Relations among constant classes.
	for i := 0; i < n; i++ {
		if !cl.hasConst[i] {
			continue
		}
		for j := 0; j < n; j++ {
			if i == j || !cl.hasConst[j] {
				continue
			}
			c, ok := sqlvalue.Compare(cl.constVal[i], cl.constVal[j])
			if !ok {
				// Incomparable classes (e.g. TEXT vs INT): distinct.
				cl.ne[[2]int{i, j}] = true
				continue
			}
			switch {
			case c < 0:
				upd(i, j, -1)
				cl.ne[[2]int{i, j}] = true
			case c > 0:
				upd(j, i, -1)
				cl.ne[[2]int{i, j}] = true
			}
		}
	}
	// Disequalities.
	for _, p := range cs.nes {
		i := cl.index[cs.find(p.a)]
		j := cl.index[cs.find(p.b)]
		if i == j {
			cl.inconsistent = true
			continue
		}
		cl.ne[[2]int{i, j}] = true
		cl.ne[[2]int{j, i}] = true
	}
	// Floyd–Warshall with saturation at -1 (dense order: a<b<c still
	// just yields a<c; weights below -1 are clamped).
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if cl.dist[i][k] == noRel {
				continue
			}
			for j := 0; j < n; j++ {
				if cl.dist[k][j] == noRel {
					continue
				}
				w := cl.dist[i][k] + cl.dist[k][j]
				if w < -1 {
					w = -1
				}
				if cl.dist[i][j] == noRel || w < cl.dist[i][j] {
					cl.dist[i][j] = w
				}
			}
		}
	}
	// Inconsistency: strict cycle, or a<=b & b<=a with a != b known.
	for i := 0; i < n && !cl.inconsistent; i++ {
		if cl.dist[i][i] < 0 {
			cl.inconsistent = true
			break
		}
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if cl.dist[i][j] != noRel && cl.dist[j][i] != noRel && cl.dist[i][j] == 0 && cl.dist[j][i] == 0 && cl.ne[[2]int{i, j}] {
				cl.inconsistent = true
				break
			}
		}
	}
	for i, has := range cl.hasConst {
		if has {
			cl.constIdx = append(cl.constIdx, i)
		}
	}
	cs.closed = cl
	cs.dirty = false
	return cl
}

// Consistent reports whether the constraint set is satisfiable over a
// dense total order.
func (cs *Constraints) Consistent() bool {
	return !cs.close().inconsistent
}

// SameClass reports whether a and b are known equal.
func (cs *Constraints) SameClass(a, b Term) bool {
	return cs.find(cs.intern(a)) == cs.find(cs.intern(b))
}

// ValueOf returns the constant value the term is forced to, if known.
func (cs *Constraints) ValueOf(t Term) (sqlvalue.Value, bool) {
	cl := cs.close()
	i, ok := cl.index[cs.find(cs.intern(t))]
	if !ok || !cl.hasConst[i] {
		return sqlvalue.Value{}, false
	}
	return cl.constVal[i], true
}

// Implies reports whether the comparison is entailed by the set. An
// inconsistent set implies everything.
//
// Implies never grows the set: a term the set has not seen is judged
// as the fresh singleton class interning it would create, without
// interning it (see impliesVirtual). Interning probe terms here used
// to dirty the cached closure, forcing an O(n³) recompute per fresh
// term — quadratic blowup when one constraint set answers probes
// over many terms, exactly what a homomorphism search against a
// shared target closure does.
func (cs *Constraints) Implies(c Comparison) bool {
	cl := cs.close()
	if cl.inconsistent {
		return true
	}
	i, iKnown := cs.classOf(cl, c.Left)
	j, jKnown := cs.classOf(cl, c.Right)
	if !iKnown || !jKnown {
		return cs.impliesVirtual(cl, c, i, iKnown, j, jKnown)
	}
	switch c.Op {
	case Eq:
		return i == j
	case Ne:
		if i == j {
			return false
		}
		if cl.ne[[2]int{i, j}] {
			return true
		}
		return cl.dist[i][j] == -1 || cl.dist[j][i] == -1
	case Le:
		return i == j || (cl.dist[i][j] != noRel && cl.dist[i][j] <= 0)
	case Lt:
		return i != j && cl.dist[i][j] == -1
	case Ge:
		return i == j || (cl.dist[j][i] != noRel && cl.dist[j][i] <= 0)
	case Gt:
		return i != j && cl.dist[j][i] == -1
	}
	return false
}

// classOf resolves a term to its closure class without interning it;
// known is false for terms the set has never seen.
func (cs *Constraints) classOf(cl *closure, t Term) (idx int, known bool) {
	k := t.Key()
	if _, ok := cs.parent[k]; !ok {
		return 0, false
	}
	return cl.index[cs.find(k)], true
}

// impliesVirtual answers Implies when at least one side is a term the
// set has never seen. Such a term is a virtual fresh singleton class:
// it equals nothing already present, and — when it is a constant —
// its only relations are the value-order edges close() would give it
// against the constant classes. This reproduces exactly what
// interning the term and re-closing would conclude, at O(constant
// classes) cost instead of an O(n³) closure recompute.
func (cs *Constraints) impliesVirtual(cl *closure, c Comparison, i int, iKnown bool, j int, jKnown bool) bool {
	if c.Left.Key() == c.Right.Key() {
		// Both sides are the same (unseen) class: reflexivity only.
		return c.Op == Eq || c.Op == Le || c.Op == Ge
	}
	switch {
	case iKnown: // right side virtual
		if !c.Right.IsConst() {
			return false // an unseen variable/parameter relates to nothing
		}
		v := c.Right.Const
		switch c.Op {
		case Eq:
			return false // a fresh class never equals an existing one
		case Ne:
			return cl.neConst(i, v) || cl.ltConst(i, v) || cl.gtConst(i, v)
		case Le, Lt: // class i < virtual const v
			return cl.ltConst(i, v)
		case Ge, Gt: // class i > virtual const v
			return cl.gtConst(i, v)
		}
		return false
	case jKnown: // left side virtual: mirror the comparison
		return cs.impliesVirtual(cl, Comparison{Op: c.Op.Flip(), Left: c.Right, Right: c.Left}, j, true, i, false)
	default: // both virtual: only constant values can relate them
		if !c.Left.IsConst() || !c.Right.IsConst() {
			return false
		}
		cmp, ok := sqlvalue.Compare(c.Left.Const, c.Right.Const)
		if !ok {
			return c.Op == Ne // incomparable constants are distinct
		}
		switch c.Op {
		case Ne:
			return cmp != 0
		case Lt, Le:
			return cmp < 0 // cmp == 0 with distinct keys: classes stay unrelated
		case Gt, Ge:
			return cmp > 0
		}
		return false // Eq: two fresh classes are never merged
	}
}

// ltConst reports whether class i is derivably < the virtual
// constant v: some constant class m with value below v has i <= m.
// (close() would give the virtual class an incoming strict edge from
// every constant class below it.)
func (cl *closure) ltConst(i int, v sqlvalue.Value) bool {
	for _, m := range cl.constIdx {
		if cl.dist[i][m] == noRel {
			continue
		}
		if cmp, ok := sqlvalue.Compare(cl.constVal[m], v); ok && cmp < 0 {
			return true
		}
	}
	return false
}

// gtConst reports whether class i is derivably > the virtual
// constant v.
func (cl *closure) gtConst(i int, v sqlvalue.Value) bool {
	for _, m := range cl.constIdx {
		if cl.dist[m][i] == noRel {
			continue
		}
		if cmp, ok := sqlvalue.Compare(cl.constVal[m], v); ok && cmp > 0 {
			return true
		}
	}
	return false
}

// neConst reports the direct disequality close() would record
// between class i and the virtual constant v: i carries a constant
// of a different value (or an incomparable one).
func (cl *closure) neConst(i int, v sqlvalue.Value) bool {
	if !cl.hasConst[i] {
		return false
	}
	cmp, ok := sqlvalue.Compare(cl.constVal[i], v)
	return !ok || cmp != 0
}

// ImpliesAll reports whether every comparison is entailed.
func (cs *Constraints) ImpliesAll(comps []Comparison) bool {
	for _, c := range comps {
		if !cs.Implies(c) {
			return false
		}
	}
	return true
}
