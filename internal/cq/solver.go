package cq

import (
	"repro/internal/sqlvalue"
)

// Constraints is a conjunction of equalities, disequalities, and order
// constraints over terms, with a decision procedure for consistency
// and implication. Variables and parameters are uninterpreted symbols;
// constants are interpreted by their value order.
//
// The implication check is sound and complete for the order-theoretic
// fragment (conjunctions of =, <>, <, <= over a dense total order with
// constants), which covers the comparisons our SQL subset produces.
type Constraints struct {
	parent map[string]string
	terms  map[string]Term // key -> a representative term of that key
	// Order edges between class representatives: weight 0 for <=,
	// -1 for <. Stored as le[a][b] = strict?
	le  map[string]map[string]bool
	nes []pair

	dirty  bool
	closed *closure
}

type pair struct{ a, b string }

// NewConstraints returns an empty constraint set.
func NewConstraints() *Constraints {
	return &Constraints{
		parent: make(map[string]string),
		terms:  make(map[string]Term),
		le:     make(map[string]map[string]bool),
		dirty:  true,
	}
}

// Clone copies the constraint set.
func (cs *Constraints) Clone() *Constraints {
	out := NewConstraints()
	for k, v := range cs.parent {
		out.parent[k] = v
	}
	for k, v := range cs.terms {
		out.terms[k] = v
	}
	for a, m := range cs.le {
		nm := make(map[string]bool, len(m))
		for b, s := range m {
			nm[b] = s
		}
		out.le[a] = nm
	}
	out.nes = append([]pair(nil), cs.nes...)
	return out
}

func (cs *Constraints) intern(t Term) string {
	k := t.Key()
	if _, ok := cs.parent[k]; !ok {
		cs.parent[k] = k
		cs.terms[k] = t
		cs.dirty = true
	}
	return k
}

func (cs *Constraints) find(k string) string {
	for cs.parent[k] != k {
		cs.parent[k] = cs.parent[cs.parent[k]]
		k = cs.parent[k]
	}
	return k
}

// AddEq asserts a = b.
func (cs *Constraints) AddEq(a, b Term) {
	ka, kb := cs.find(cs.intern(a)), cs.find(cs.intern(b))
	if ka == kb {
		return
	}
	// Prefer a constant as class representative.
	if cs.terms[kb].IsConst() && !cs.terms[ka].IsConst() {
		ka, kb = kb, ka
	}
	cs.parent[kb] = ka
	cs.dirty = true
}

// Add asserts the comparison.
func (cs *Constraints) Add(c Comparison) {
	switch c.Op {
	case Eq:
		cs.AddEq(c.Left, c.Right)
	case Ne:
		cs.nes = append(cs.nes, pair{cs.intern(c.Left), cs.intern(c.Right)})
		cs.dirty = true
	case Lt:
		cs.addLe(c.Left, c.Right, true)
	case Le:
		cs.addLe(c.Left, c.Right, false)
	case Gt:
		cs.addLe(c.Right, c.Left, true)
	case Ge:
		cs.addLe(c.Right, c.Left, false)
	}
}

// AddAll asserts every comparison in the slice.
func (cs *Constraints) AddAll(comps []Comparison) {
	for _, c := range comps {
		cs.Add(c)
	}
}

func (cs *Constraints) addLe(a, b Term, strict bool) {
	ka, kb := cs.intern(a), cs.intern(b)
	m := cs.le[ka]
	if m == nil {
		m = make(map[string]bool)
		cs.le[ka] = m
	}
	// Strict dominates non-strict on the same edge.
	m[kb] = m[kb] || strict
	cs.dirty = true
}

// closure holds the computed transitive closure over class reps.
type closure struct {
	reps  []string
	index map[string]int
	// dist[i][j]: 0 => rep_i <= rep_j derivable, -1 => rep_i < rep_j
	// derivable, +1 (sentinel) => no relation derived.
	dist [][]int8
	// constVal[i]: the constant value of class i, if any.
	constVal []sqlvalue.Value
	hasConst []bool
	// ne[i*n+j]: classes known distinct.
	ne map[[2]int]bool

	inconsistent bool
}

const noRel int8 = 1

func (cs *Constraints) close() *closure {
	if !cs.dirty && cs.closed != nil {
		return cs.closed
	}
	// Collect class representatives.
	repSet := make(map[string]bool)
	for k := range cs.parent {
		repSet[cs.find(k)] = true
	}
	cl := &closure{index: make(map[string]int), ne: make(map[[2]int]bool)}
	for r := range repSet {
		cl.index[r] = len(cl.reps)
		cl.reps = append(cl.reps, r)
	}
	n := len(cl.reps)
	cl.dist = make([][]int8, n)
	cl.constVal = make([]sqlvalue.Value, n)
	cl.hasConst = make([]bool, n)
	for i := range cl.dist {
		cl.dist[i] = make([]int8, n)
		for j := range cl.dist[i] {
			if i == j {
				cl.dist[i][j] = 0
			} else {
				cl.dist[i][j] = noRel
			}
		}
	}
	// Constants per class: the representative term is a constant when
	// the class contains one (union prefers constants), but a class
	// could have been formed by unioning two constants — detect
	// conflicts by scanning all keys.
	for k, t := range cs.terms {
		if !t.IsConst() {
			continue
		}
		i := cl.index[cs.find(k)]
		if cl.hasConst[i] {
			if !sqlvalue.Identical(cl.constVal[i], t.Const) {
				cl.inconsistent = true
			}
			continue
		}
		cl.hasConst[i] = true
		cl.constVal[i] = t.Const
	}
	// Order edges.
	upd := func(i, j int, w int8) {
		if w < cl.dist[i][j] || cl.dist[i][j] == noRel {
			cl.dist[i][j] = w
		}
	}
	for a, m := range cs.le {
		i := cl.index[cs.find(a)]
		for b, strict := range m {
			j := cl.index[cs.find(b)]
			w := int8(0)
			if strict {
				w = -1
			}
			upd(i, j, w)
		}
	}
	// Relations among constant classes.
	for i := 0; i < n; i++ {
		if !cl.hasConst[i] {
			continue
		}
		for j := 0; j < n; j++ {
			if i == j || !cl.hasConst[j] {
				continue
			}
			c, ok := sqlvalue.Compare(cl.constVal[i], cl.constVal[j])
			if !ok {
				// Incomparable classes (e.g. TEXT vs INT): distinct.
				cl.ne[[2]int{i, j}] = true
				continue
			}
			switch {
			case c < 0:
				upd(i, j, -1)
				cl.ne[[2]int{i, j}] = true
			case c > 0:
				upd(j, i, -1)
				cl.ne[[2]int{i, j}] = true
			}
		}
	}
	// Disequalities.
	for _, p := range cs.nes {
		i := cl.index[cs.find(p.a)]
		j := cl.index[cs.find(p.b)]
		if i == j {
			cl.inconsistent = true
			continue
		}
		cl.ne[[2]int{i, j}] = true
		cl.ne[[2]int{j, i}] = true
	}
	// Floyd–Warshall with saturation at -1 (dense order: a<b<c still
	// just yields a<c; weights below -1 are clamped).
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if cl.dist[i][k] == noRel {
				continue
			}
			for j := 0; j < n; j++ {
				if cl.dist[k][j] == noRel {
					continue
				}
				w := cl.dist[i][k] + cl.dist[k][j]
				if w < -1 {
					w = -1
				}
				if cl.dist[i][j] == noRel || w < cl.dist[i][j] {
					cl.dist[i][j] = w
				}
			}
		}
	}
	// Inconsistency: strict cycle, or a<=b & b<=a with a != b known.
	for i := 0; i < n && !cl.inconsistent; i++ {
		if cl.dist[i][i] < 0 {
			cl.inconsistent = true
			break
		}
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if cl.dist[i][j] != noRel && cl.dist[j][i] != noRel && cl.dist[i][j] == 0 && cl.dist[j][i] == 0 && cl.ne[[2]int{i, j}] {
				cl.inconsistent = true
				break
			}
		}
	}
	cs.closed = cl
	cs.dirty = false
	return cl
}

// Consistent reports whether the constraint set is satisfiable over a
// dense total order.
func (cs *Constraints) Consistent() bool {
	return !cs.close().inconsistent
}

// SameClass reports whether a and b are known equal.
func (cs *Constraints) SameClass(a, b Term) bool {
	return cs.find(cs.intern(a)) == cs.find(cs.intern(b))
}

// ValueOf returns the constant value the term is forced to, if known.
func (cs *Constraints) ValueOf(t Term) (sqlvalue.Value, bool) {
	cl := cs.close()
	i, ok := cl.index[cs.find(cs.intern(t))]
	if !ok || !cl.hasConst[i] {
		return sqlvalue.Value{}, false
	}
	return cl.constVal[i], true
}

// Implies reports whether the comparison is entailed by the set. An
// inconsistent set implies everything.
func (cs *Constraints) Implies(c Comparison) bool {
	// Interning new terms can grow the closure; do it before closing.
	ka := cs.intern(c.Left)
	kb := cs.intern(c.Right)
	cl := cs.close()
	if cl.inconsistent {
		return true
	}
	i := cl.index[cs.find(ka)]
	j := cl.index[cs.find(kb)]
	switch c.Op {
	case Eq:
		return i == j
	case Ne:
		if i == j {
			return false
		}
		if cl.ne[[2]int{i, j}] {
			return true
		}
		return cl.dist[i][j] == -1 || cl.dist[j][i] == -1
	case Le:
		return i == j || (cl.dist[i][j] != noRel && cl.dist[i][j] <= 0)
	case Lt:
		return i != j && cl.dist[i][j] == -1
	case Ge:
		return i == j || (cl.dist[j][i] != noRel && cl.dist[j][i] <= 0)
	case Gt:
		return i != j && cl.dist[j][i] == -1
	}
	return false
}

// ImpliesAll reports whether every comparison is entailed.
func (cs *Constraints) ImpliesAll(comps []Comparison) bool {
	for _, c := range comps {
		if !cs.Implies(c) {
			return false
		}
	}
	return true
}
