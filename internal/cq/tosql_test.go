package cq

import (
	"strings"
	"testing"
)

func TestToSQLRoundTrip(t *testing.T) {
	s := calendarSchema(t)
	srcs := []string{
		"SELECT EId FROM Attendance WHERE UId = ?MyUId",
		"SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?MyUId",
		"SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2",
		"SELECT Name FROM Users WHERE UId = 3",
	}
	for _, src := range srcs {
		q := one(t, MustFromSQL(s, src))
		sql, err := ToSQL(s, q)
		if err != nil {
			t.Fatalf("ToSQL(%s): %v", src, err)
		}
		back := one(t, MustFromSQL(s, sql))
		if !Equivalent(q, back) {
			t.Errorf("round trip not equivalent:\n  src:  %s\n  cq:   %s\n  sql:  %s\n  back: %s",
				src, q, sql, back)
		}
	}
}

func TestToSQLComparisons(t *testing.T) {
	s := employeeSchema(t)
	q := one(t, MustFromSQL(s, "SELECT Name FROM Employees WHERE Age >= 60 AND Age < 70"))
	sql, err := ToSQL(s, q)
	if err != nil {
		t.Fatal(err)
	}
	back := one(t, MustFromSQL(s, sql))
	if !Equivalent(q, back) {
		t.Errorf("comparison round trip:\n  %s\n  %s", q, back)
	}
}

func TestToSQLConstantHead(t *testing.T) {
	s := calendarSchema(t)
	q := one(t, MustFromSQL(s, "SELECT 1 FROM Attendance WHERE UId = 5"))
	sql, err := ToSQL(s, q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sql, "SELECT 1 ") {
		t.Errorf("constant head: %s", sql)
	}
}

func TestToSQLHeadAlias(t *testing.T) {
	s := calendarSchema(t)
	q := one(t, MustFromSQL(s, "SELECT EId AS TheEvent FROM Attendance WHERE UId = ?U"))
	sql, err := ToSQL(s, q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "AS TheEvent") {
		t.Errorf("alias lost: %s", sql)
	}
}
