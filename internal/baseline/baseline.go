// Package baseline implements the enforcement designs the paper's
// §2.1 contrasts with Blockaid-style checking, used as comparators in
// the benchmark suite:
//
//   - RLS: query-modifying row-level security in the tradition of
//     Stonebraker & Wong's INGRES query modification — each base-table
//     occurrence in a query gets the table's predicate AND-ed into the
//     WHERE clause, parameterized by session attributes.
//   - ColumnGrants: static column-level access control — a query is
//     rejected if it references a column outside the principal's
//     grant, in the spirit of SeLINQ-style column policies.
//
// Both modify-or-reject the query up front and keep no history, which
// is exactly the trade-off the paper's checker design avoids.
package baseline

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
)

// RLS is a set of per-table row predicates.
type RLS struct {
	Schema *schema.Schema
	// Rules maps a (case-insensitive) table name to a boolean SQL
	// expression over that table's columns, possibly using named
	// parameters (?MyUId). Tables without a rule are unrestricted.
	rules map[string]sqlparser.Expr
}

// NewRLS parses the rule expressions. Each rule is validated by
// parsing "SELECT 1 FROM <table> WHERE <rule>".
func NewRLS(s *schema.Schema, rules map[string]string) (*RLS, error) {
	out := &RLS{Schema: s, rules: make(map[string]sqlparser.Expr, len(rules))}
	for table, rule := range rules {
		if _, ok := s.Table(table); !ok {
			return nil, fmt.Errorf("baseline: RLS rule for unknown table %q", table)
		}
		sel, err := sqlparser.ParseSelect("SELECT 1 FROM " + table + " WHERE " + rule)
		if err != nil {
			return nil, fmt.Errorf("baseline: RLS rule for %s: %w", table, err)
		}
		out.rules[strings.ToLower(table)] = sel.Where
	}
	return out, nil
}

// MustNewRLS is NewRLS, panicking on error.
func MustNewRLS(s *schema.Schema, rules map[string]string) *RLS {
	r, err := NewRLS(s, rules)
	if err != nil {
		panic(err)
	}
	return r
}

// Rewrite returns a copy of the query with every base table's rule
// conjoined into the WHERE clause, with rule parameters bound from
// session. This is the query-modification enforcement step.
func (r *RLS) Rewrite(sel *sqlparser.SelectStmt, session map[string]sqlvalue.Value) (*sqlparser.SelectStmt, error) {
	out := sqlparser.CloneSelect(sel)
	var conds []sqlparser.Expr
	for _, ref := range sqlparser.BaseTables(out.From) {
		rule, ok := r.rules[strings.ToLower(ref.Name)]
		if !ok {
			continue
		}
		qualifier := ref.Name
		if ref.Alias != "" {
			qualifier = ref.Alias
		}
		cond, err := instantiateRule(rule, qualifier, session)
		if err != nil {
			return nil, err
		}
		conds = append(conds, cond)
	}
	// Rules also apply inside subqueries.
	var subErr error
	rewritten := sqlparser.MapExprs(out, func(e sqlparser.Expr) sqlparser.Expr {
		if subErr != nil {
			return e
		}
		switch x := e.(type) {
		case *sqlparser.ExistsExpr:
			ns, err := r.Rewrite(x.Subquery, session)
			if err != nil {
				subErr = err
				return e
			}
			return &sqlparser.ExistsExpr{Not: x.Not, Subquery: ns}
		case *sqlparser.InExpr:
			if x.Subquery == nil {
				return e
			}
			ns, err := r.Rewrite(x.Subquery, session)
			if err != nil {
				subErr = err
				return e
			}
			return &sqlparser.InExpr{Expr: x.Expr, Not: x.Not, Subquery: ns}
		case *sqlparser.SubqueryExpr:
			ns, err := r.Rewrite(x.Subquery, session)
			if err != nil {
				subErr = err
				return e
			}
			return &sqlparser.SubqueryExpr{Subquery: ns}
		}
		return e
	}).(*sqlparser.SelectStmt)
	if subErr != nil {
		return nil, subErr
	}
	out = rewritten
	for _, c := range conds {
		if out.Where == nil {
			out.Where = c
		} else {
			out.Where = &sqlparser.BinaryExpr{Op: sqlparser.OpAnd, Left: out.Where, Right: c}
		}
	}
	return out, nil
}

// instantiateRule qualifies the rule's bare column references with the
// table qualifier and binds named parameters from session.
func instantiateRule(rule sqlparser.Expr, qualifier string, session map[string]sqlvalue.Value) (sqlparser.Expr, error) {
	var err error
	wrapper := &sqlparser.SelectStmt{Items: []sqlparser.SelectItem{{Expr: rule}}}
	out := sqlparser.MapExprs(wrapper, func(e sqlparser.Expr) sqlparser.Expr {
		switch x := e.(type) {
		case *sqlparser.ColumnRef:
			if x.Table == "" {
				return &sqlparser.ColumnRef{Table: qualifier, Column: x.Column}
			}
		case *sqlparser.Param:
			if x.Name == "" {
				err = fmt.Errorf("baseline: RLS rules use named parameters only")
				return e
			}
			v, ok := session[x.Name]
			if !ok {
				err = fmt.Errorf("baseline: no session value for ?%s", x.Name)
				return e
			}
			return &sqlparser.Literal{Value: v}
		}
		return e
	}).(*sqlparser.SelectStmt)
	if err != nil {
		return nil, err
	}
	return out.Items[0].Expr, nil
}

// ColumnGrants is a static column-level policy: per table, the set of
// readable columns (lower-cased). Tables absent from the map are
// fully hidden.
type ColumnGrants struct {
	Schema *schema.Schema
	grants map[string]map[string]bool
}

// NewColumnGrants builds the grant set; column lists validate against
// the schema. An entry of []string{"*"} grants the whole table.
func NewColumnGrants(s *schema.Schema, grants map[string][]string) (*ColumnGrants, error) {
	out := &ColumnGrants{Schema: s, grants: make(map[string]map[string]bool, len(grants))}
	for table, cols := range grants {
		t, ok := s.Table(table)
		if !ok {
			return nil, fmt.Errorf("baseline: grant for unknown table %q", table)
		}
		m := make(map[string]bool, len(cols))
		for _, c := range cols {
			if c == "*" {
				for _, tc := range t.Columns {
					m[strings.ToLower(tc.Name)] = true
				}
				continue
			}
			if _, ok := t.ColumnIndex(c); !ok {
				return nil, fmt.Errorf("baseline: grant for unknown column %s.%s", table, c)
			}
			m[strings.ToLower(c)] = true
		}
		out.grants[strings.ToLower(table)] = m
	}
	return out, nil
}

// MustNewColumnGrants is NewColumnGrants, panicking on error.
func MustNewColumnGrants(s *schema.Schema, grants map[string][]string) *ColumnGrants {
	g, err := NewColumnGrants(s, grants)
	if err != nil {
		panic(err)
	}
	return g
}

// Check reports whether the query touches only granted columns; the
// error names the first offending column.
func (g *ColumnGrants) Check(sel *sqlparser.SelectStmt) error {
	refs, err := collectColumnRefs(g.Schema, sel)
	if err != nil {
		return err
	}
	for _, ref := range refs {
		cols, ok := g.grants[ref.table]
		if !ok || !cols[ref.column] {
			return fmt.Errorf("baseline: column %s.%s is not granted", ref.table, ref.column)
		}
	}
	return nil
}

type colRef struct{ table, column string }

// collectColumnRefs resolves every column reference (including stars
// and subqueries) of a SELECT to (table, column) pairs.
func collectColumnRefs(s *schema.Schema, sel *sqlparser.SelectStmt) ([]colRef, error) {
	type entry struct {
		name string
		tab  *schema.Table
	}
	var walk func(sel *sqlparser.SelectStmt, outer []entry) ([]colRef, error)
	walk = func(sel *sqlparser.SelectStmt, outer []entry) ([]colRef, error) {
		var scope []entry
		for _, ref := range sqlparser.BaseTables(sel.From) {
			t, ok := s.Table(ref.Name)
			if !ok {
				return nil, fmt.Errorf("baseline: unknown table %q", ref.Name)
			}
			name := strings.ToLower(ref.Name)
			if ref.Alias != "" {
				name = strings.ToLower(ref.Alias)
			}
			scope = append(scope, entry{name: name, tab: t})
		}
		full := append(append([]entry(nil), scope...), outer...)
		var out []colRef
		var resolve func(e sqlparser.Expr) error
		resolve = func(e sqlparser.Expr) error {
			var err error
			sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
				if err != nil {
					return false
				}
				switch cr := x.(type) {
				case *sqlparser.ColumnRef:
					found := false
					for _, en := range full {
						if cr.Table != "" && !strings.EqualFold(cr.Table, en.name) {
							continue
						}
						if _, ok := en.tab.ColumnIndex(cr.Column); ok {
							out = append(out, colRef{table: strings.ToLower(en.tab.Name), column: strings.ToLower(cr.Column)})
							found = true
							break
						}
					}
					if !found {
						err = fmt.Errorf("baseline: cannot resolve column %s", cr.SQL())
					}
				case *sqlparser.ExistsExpr:
					sub, serr := walk(cr.Subquery, full)
					if serr != nil {
						err = serr
						return false
					}
					out = append(out, sub...)
					return false
				case *sqlparser.SubqueryExpr:
					sub, serr := walk(cr.Subquery, full)
					if serr != nil {
						err = serr
						return false
					}
					out = append(out, sub...)
					return false
				case *sqlparser.InExpr:
					if cr.Subquery != nil {
						if rerr := resolve(cr.Expr); rerr != nil {
							err = rerr
							return false
						}
						sub, serr := walk(cr.Subquery, full)
						if serr != nil {
							err = serr
							return false
						}
						out = append(out, sub...)
						return false
					}
				}
				return true
			})
			return err
		}
		for _, it := range sel.Items {
			if it.Star {
				for _, en := range scope {
					if it.Table != "" && !strings.EqualFold(it.Table, en.name) {
						continue
					}
					for _, c := range en.tab.Columns {
						out = append(out, colRef{table: strings.ToLower(en.tab.Name), column: strings.ToLower(c.Name)})
					}
				}
				continue
			}
			if err := resolve(it.Expr); err != nil {
				return nil, err
			}
		}
		exprs := []sqlparser.Expr{sel.Where, sel.Having, sel.Limit, sel.Offset}
		for _, g := range sel.GroupBy {
			exprs = append(exprs, g)
		}
		for _, o := range sel.OrderBy {
			exprs = append(exprs, o.Expr)
		}
		var onExprs func(te sqlparser.TableExpr)
		collect := []sqlparser.Expr{}
		onExprs = func(te sqlparser.TableExpr) {
			if j, ok := te.(*sqlparser.JoinExpr); ok {
				onExprs(j.Left)
				onExprs(j.Right)
				if j.On != nil {
					collect = append(collect, j.On)
				}
			}
		}
		for _, te := range sel.From {
			onExprs(te)
		}
		exprs = append(exprs, collect...)
		for _, e := range exprs {
			if e == nil {
				continue
			}
			if err := resolve(e); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	return walk(sel, nil)
}

// GrantedColumns lists the grants sorted, for display.
func (g *ColumnGrants) GrantedColumns() []string {
	var out []string
	for t, cols := range g.grants {
		for c := range cols {
			out = append(out, t+"."+c)
		}
	}
	sort.Strings(out)
	return out
}
