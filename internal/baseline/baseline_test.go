package baseline

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
)

func calSchema(t testing.TB) *schema.Schema {
	t.Helper()
	s, err := schema.NewBuilder().
		Table("Events").
		NotNullCol("EId", sqlvalue.Int).
		NotNullCol("Title", sqlvalue.Text).
		Col("Notes", sqlvalue.Text).
		PK("EId").Done().
		Table("Attendance").
		NotNullCol("UId", sqlvalue.Int).
		NotNullCol("EId", sqlvalue.Int).
		PK("UId", "EId").Done().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sess(uid int64) map[string]sqlvalue.Value {
	return map[string]sqlvalue.Value{"MyUId": sqlvalue.NewInt(uid)}
}

func TestRLSRewriteAddsPredicate(t *testing.T) {
	s := calSchema(t)
	r := MustNewRLS(s, map[string]string{
		"Attendance": "UId = ?MyUId",
	})
	sel := sqlparser.MustParseSelect("SELECT EId FROM Attendance")
	out, err := r.Rewrite(sel, sess(7))
	if err != nil {
		t.Fatal(err)
	}
	got := out.SQL()
	if !strings.Contains(got, "Attendance.UId = 7") {
		t.Errorf("rewritten: %s", got)
	}
	// Original untouched.
	if sel.Where != nil {
		t.Error("Rewrite mutated input")
	}
}

func TestRLSRewriteRespectsAlias(t *testing.T) {
	s := calSchema(t)
	r := MustNewRLS(s, map[string]string{"Attendance": "UId = ?MyUId"})
	sel := sqlparser.MustParseSelect(
		"SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE e.Title = 'x'")
	out, err := r.Rewrite(sel, sess(3))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.SQL(), "a.UId = 3") {
		t.Errorf("alias-qualified predicate missing: %s", out.SQL())
	}
}

func TestRLSRewriteSubquery(t *testing.T) {
	s := calSchema(t)
	r := MustNewRLS(s, map[string]string{"Attendance": "UId = ?MyUId"})
	sel := sqlparser.MustParseSelect(
		"SELECT Title FROM Events WHERE EId IN (SELECT EId FROM Attendance)")
	out, err := r.Rewrite(sel, sess(3))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.SQL(), "Attendance.UId = 3") {
		t.Errorf("subquery predicate missing: %s", out.SQL())
	}
}

func TestRLSRewriteSemantics(t *testing.T) {
	s := calSchema(t)
	db := engine.New(s)
	db.MustExec("INSERT INTO Events (EId, Title, Notes) VALUES (1, 'a', NULL), (2, 'b', NULL)")
	db.MustExec("INSERT INTO Attendance (UId, EId) VALUES (1, 1), (2, 2)")
	r := MustNewRLS(s, map[string]string{"Attendance": "UId = ?MyUId"})

	sel := sqlparser.MustParseSelect("SELECT EId FROM Attendance")
	out, err := r.Rewrite(sel, sess(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Fatalf("RLS-filtered result: %v", res)
	}
}

func TestRLSMissingSessionValue(t *testing.T) {
	s := calSchema(t)
	r := MustNewRLS(s, map[string]string{"Attendance": "UId = ?MyUId"})
	sel := sqlparser.MustParseSelect("SELECT EId FROM Attendance")
	if _, err := r.Rewrite(sel, nil); err == nil {
		t.Fatal("missing session value must error")
	}
}

func TestRLSUnknownTableRule(t *testing.T) {
	s := calSchema(t)
	if _, err := NewRLS(s, map[string]string{"Nope": "1 = 1"}); err == nil {
		t.Fatal("rule for unknown table must error")
	}
}

func TestColumnGrants(t *testing.T) {
	s := calSchema(t)
	g := MustNewColumnGrants(s, map[string][]string{
		"Events":     {"EId", "Title"},
		"Attendance": {"*"},
	})
	ok := []string{
		"SELECT Title FROM Events",
		"SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId",
		"SELECT UId, EId FROM Attendance",
		"SELECT Title FROM Events WHERE EId IN (SELECT EId FROM Attendance WHERE UId = 1)",
	}
	for _, q := range ok {
		if err := g.Check(sqlparser.MustParseSelect(q)); err != nil {
			t.Errorf("%q should pass: %v", q, err)
		}
	}
	bad := []string{
		"SELECT Notes FROM Events",
		"SELECT * FROM Events",
		"SELECT Title FROM Events ORDER BY Notes",
		"SELECT Title FROM Events WHERE Notes = 'x'",
	}
	for _, q := range bad {
		if err := g.Check(sqlparser.MustParseSelect(q)); err == nil {
			t.Errorf("%q should be rejected", q)
		}
	}
}

func TestColumnGrantsHiddenTable(t *testing.T) {
	s := calSchema(t)
	g := MustNewColumnGrants(s, map[string][]string{"Events": {"Title"}})
	if err := g.Check(sqlparser.MustParseSelect("SELECT UId FROM Attendance")); err == nil {
		t.Fatal("ungranted table must be rejected")
	}
}

func TestColumnGrantsValidation(t *testing.T) {
	s := calSchema(t)
	if _, err := NewColumnGrants(s, map[string][]string{"Events": {"Nope"}}); err == nil {
		t.Fatal("unknown column grant must error")
	}
	if _, err := NewColumnGrants(s, map[string][]string{"Nope": {"x"}}); err == nil {
		t.Fatal("unknown table grant must error")
	}
}

func TestGrantedColumnsListing(t *testing.T) {
	s := calSchema(t)
	g := MustNewColumnGrants(s, map[string][]string{"Events": {"Title", "EId"}})
	cols := g.GrantedColumns()
	if len(cols) != 2 || cols[0] != "events.eid" {
		t.Errorf("granted: %v", cols)
	}
}
