package pgwire

import (
	"bufio"
	"context"
	"strconv"
	"strings"
	"sync"

	"repro/internal/acerr"
	"repro/internal/proxy"
	"repro/internal/sqlparser"
)

// SQLSTATEs for protocol-level conditions the acerr vocabulary does
// not cover (they never cross the v2 wire).
const (
	stateProtocolViolation = "08P01"
	stateInFailedTx        = "25P02"
	stateNoSuchStatement   = "26000"
	stateNoSuchPortal      = "34000"
)

// prepared is a named statement from Parse: the original SQL (the
// proxy normalizes it on ingest, so re-submitting the text hits the
// shared parse-cache entry and, from the second execution on, the
// checker's statement-identity front cache), its leading keyword, and
// what Describe needs.
type prepared struct {
	sql       string
	kw        string
	numParams int
	paramOIDs []int32               // as declared by Parse; 0 = unspecified
	sel       *sqlparser.SelectStmt // non-nil for SELECT
}

// portal is a Bind result: a prepared statement with argument values.
type portal struct {
	stmt *prepared
	args []any
}

// conn is one client connection: a proxy session plus protocol state.
// Statements execute strictly serially — compliance decisions are
// history-dependent, so a connection is one trace.
type conn struct {
	srv  *Server
	netc netConn
	r    *bufio.Reader
	w    *bufio.Writer
	m    msgBuf
	// readBuf is the connection's reusable frontend-payload buffer;
	// readMsg grows it to the largest message seen and every payload
	// consumer copies what it keeps, so steady state reads allocate
	// nothing.
	readBuf []byte

	pid, secret int32

	sess *proxy.Session
	tx   byte // 'I' idle, 'T' in transaction, 'E' failed transaction

	stmts   map[string]*prepared
	portals map[string]*portal

	cancelMu  sync.Mutex
	cancelCur context.CancelFunc
}

// netConn is the subset of net.Conn the handler uses (test seam).
type netConn interface {
	Read([]byte) (int, error)
	Write([]byte) (int, error)
	Close() error
}

func (c *conn) cancelCurrent() {
	c.cancelMu.Lock()
	cancel := c.cancelCur
	c.cancelMu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// statementCtx derives the per-statement context and registers its
// cancel func for CancelRequest routing.
func (c *conn) statementCtx(base context.Context) (context.Context, func()) {
	ctx, cancel := context.WithCancel(base)
	c.cancelMu.Lock()
	c.cancelCur = cancel
	c.cancelMu.Unlock()
	return ctx, func() {
		c.cancelMu.Lock()
		c.cancelCur = nil
		c.cancelMu.Unlock()
		cancel()
	}
}

func (c *conn) serve(base context.Context) {
	c.r = bufio.NewReader(c.netc)
	c.w = bufio.NewWriter(c.netc)
	c.tx = 'I'
	c.stmts = make(map[string]*prepared)
	c.portals = make(map[string]*portal)

	if !c.startup(base) {
		return
	}

	skipTillSync := false
	for {
		typ, payload, err := readMsg(c.r, &c.readBuf)
		if err != nil {
			return // disconnect
		}
		// After an extended-protocol error the backend discards
		// messages until Sync resynchronizes the pipeline.
		if skipTillSync && typ != 'S' && typ != 'X' {
			continue
		}
		p := payloadReader{b: payload}
		ok := true
		switch typ {
		case 'Q':
			sql, perr := p.cstr()
			if perr != nil {
				c.protoError(perr.Error())
				return
			}
			c.simpleQuery(base, sql)
		case 'P':
			ok = c.handleParse(&p)
		case 'B':
			ok = c.handleBind(&p)
		case 'D':
			ok = c.handleDescribe(&p)
		case 'E':
			ok = c.handleExecute(base, &p)
		case 'C':
			ok = c.handleClose(&p)
		case 'S':
			skipTillSync = false
			_ = writeReadyForQuery(c.w, &c.m, c.tx)
			if c.w.Flush() != nil {
				return
			}
			continue
		case 'H':
			if c.w.Flush() != nil {
				return
			}
			continue
		case 'X':
			return
		case 'd', 'c', 'f', 'F':
			_ = writeErrorResponse(c.w, &c.m, acerr.SQLStateFeatureNotSupported,
				"COPY and function-call messages are not supported")
			ok = false
		default:
			c.protoError("unexpected message type " + strconv.QuoteRune(rune(typ)))
			return
		}
		if !ok {
			skipTillSync = true
		}
		if c.w.Flush() != nil {
			return
		}
	}
}

// protoError reports an unrecoverable protocol violation; the caller
// closes the connection.
func (c *conn) protoError(msg string) {
	_ = writeErrorResponse(c.w, &c.m, stateProtocolViolation, msg)
	_ = c.w.Flush()
}

// startup runs the pre-authentication phase: SSL refusal,
// CancelRequest dispatch, parameter collection, and the proxy "hello"
// that binds the session. Returns false when the connection should
// close.
func (c *conn) startup(base context.Context) bool {
	var params map[string]string
	for {
		code, payload, err := readStartup(c.r)
		if err != nil {
			return false
		}
		switch code {
		case sslRequestCode:
			// No TLS: answer 'N' and let the client continue in
			// cleartext (the posture every stock driver handles).
			if _, err := c.netc.Write([]byte{'N'}); err != nil {
				return false
			}
			continue
		case cancelCode:
			p := payloadReader{b: payload}
			pid, err1 := p.int32()
			secret, err2 := p.int32()
			if err1 == nil && err2 == nil {
				c.srv.cancelByKey(pid, secret)
			}
			return false // cancel connections carry nothing else
		case protoV3:
			params = parseStartupParams(payload)
		default:
			c.protoError("unsupported protocol version " + strconv.Itoa(int(code)))
			return false
		}
		break
	}

	attrs := make(map[string]any)
	durableName := ""
	for k, v := range params {
		switch {
		case strings.HasPrefix(k, "attr."):
			attrs[strings.TrimPrefix(k, "attr.")] = parseAttrValue(v)
		case k == "session":
			durableName = v
		}
	}
	c.sess = proxy.NewSession(nil)
	hello := c.srv.cfg.Proxy.HandleInCtx(base, &proxy.Request{
		Op: "hello", Name: durableName, Session: attrs,
	}, c.sess)
	if hello.Error != "" {
		_ = writeErrorResponse(c.w, &c.m, acerr.SQLStateFor(hello.Code), hello.Error)
		_ = c.w.Flush()
		return false
	}

	_ = writeAuthOK(c.w, &c.m)
	_ = writeParameterStatus(c.w, &c.m, "server_version", "13.0 (beyond)")
	_ = writeParameterStatus(c.w, &c.m, "server_encoding", "UTF8")
	_ = writeParameterStatus(c.w, &c.m, "client_encoding", "UTF8")
	_ = writeParameterStatus(c.w, &c.m, "DateStyle", "ISO")
	_ = writeParameterStatus(c.w, &c.m, "standard_conforming_strings", "on")
	_ = writeBackendKeyData(c.w, &c.m, c.pid, c.secret)
	_ = writeReadyForQuery(c.w, &c.m, 'I')
	return c.w.Flush() == nil
}

// parseStartupParams walks the null-terminated key/value pairs of a
// StartupMessage.
func parseStartupParams(payload []byte) map[string]string {
	out := make(map[string]string)
	p := payloadReader{b: payload}
	for {
		k, err := p.cstr()
		if err != nil || k == "" {
			return out
		}
		v, err := p.cstr()
		if err != nil {
			return out
		}
		out[k] = v
	}
}

// simpleQuery services one 'Q' message: split, execute each statement
// in order (stopping at the first error, as real servers do), then
// ReadyForQuery.
func (c *conn) simpleQuery(base context.Context, sql string) {
	stmts := splitStatements(sql)
	if len(stmts) == 0 {
		_ = writeEmptyQueryResponse(c.w, &c.m)
		_ = writeReadyForQuery(c.w, &c.m, c.tx)
		return
	}
	for _, s := range stmts {
		if !c.execStatement(base, s, nil, true) {
			break
		}
	}
	_ = writeReadyForQuery(c.w, &c.m, c.tx)
}

// isControl reports whether kw is handled by the bridge itself rather
// than forwarded to the proxy.
func isControl(kw string) bool {
	switch kw {
	case "BEGIN", "START", "COMMIT", "END", "ROLLBACK", "ABORT", "SET", "RESET":
		return true
	}
	return false
}

// execControl handles transaction-control and settings statements.
// The engine has no transactional storage — BEGIN/COMMIT exist so that
// clients' transaction framing works and so that a policy block MID
// TRANSACTION poisons the rest of the block ('E' status), which is the
// fail-closed behaviour an application wrapped in BEGIN...COMMIT
// expects from a real server.
func (c *conn) execControl(kw string) bool {
	var tag string
	switch kw {
	case "BEGIN", "START":
		c.tx = 'T'
		tag = "BEGIN"
	case "COMMIT", "END":
		if c.tx == 'E' {
			// Committing a failed transaction rolls back (PG semantics).
			tag = "ROLLBACK"
		} else {
			tag = "COMMIT"
		}
		c.tx = 'I'
	case "ROLLBACK", "ABORT":
		c.tx = 'I'
		tag = "ROLLBACK"
	case "SET", "RESET":
		// Accepted and ignored: stock drivers send these on connect.
		tag = kw
	}
	_ = writeCommandComplete(c.w, &c.m, tag)
	return true
}

// execStatement runs one statement through the enforcement proxy and
// writes its result messages. sendRowDesc selects simple-protocol
// framing (RowDescription before rows); the extended protocol
// describes via Describe and Execute sends rows alone. Returns false
// after writing an ErrorResponse.
func (c *conn) execStatement(base context.Context, sql string, args []any, sendRowDesc bool) bool {
	kw := firstKeyword(sql)

	if c.tx == 'E' && kw != "COMMIT" && kw != "END" && kw != "ROLLBACK" && kw != "ABORT" {
		_ = writeErrorResponse(c.w, &c.m, stateInFailedTx,
			"current transaction is aborted, commands ignored until end of transaction block")
		return false
	}
	if isControl(kw) {
		return c.execControl(kw)
	}

	op := "exec"
	if kw == "SELECT" {
		op = "query"
	}
	ctx, done := c.statementCtx(base)
	resp := c.srv.cfg.Proxy.HandleInCtx(ctx, &proxy.Request{Op: op, SQL: sql, Args: args}, c.sess)
	done()

	if resp.Blocked {
		c.failTx()
		_ = writeErrorResponse(c.w, &c.m, acerr.SQLStateBlocked,
			"blocked by policy: "+resp.Reason)
		return false
	}
	if resp.Error != "" {
		c.failTx()
		_ = writeErrorResponse(c.w, &c.m, acerr.SQLStateFor(resp.Code), resp.Error)
		return false
	}

	if op == "query" {
		if sendRowDesc {
			_ = writeRowDescription(c.w, &c.m, resp.Columns)
		}
		for _, row := range resp.Rows {
			_ = writeDataRow(c.w, &c.m, row)
		}
		_ = writeCommandCompleteSelect(c.w, &c.m, len(resp.Rows))
		return true
	}
	var tag string
	switch kw {
	case "INSERT":
		tag = "INSERT 0 " + strconv.Itoa(resp.Affected)
	case "UPDATE":
		tag = "UPDATE " + strconv.Itoa(resp.Affected)
	case "DELETE":
		tag = "DELETE " + strconv.Itoa(resp.Affected)
	case "CREATE":
		tag = "CREATE TABLE"
	default:
		tag = kw
	}
	_ = writeCommandComplete(c.w, &c.m, tag)
	return true
}

func (c *conn) failTx() {
	if c.tx == 'T' {
		c.tx = 'E'
	}
}

// --- Extended protocol ---

func (c *conn) handleParse(p *payloadReader) bool {
	name, err1 := p.cstr()
	sql, err2 := p.cstr()
	nOids, err3 := p.int16()
	if err1 != nil || err2 != nil || err3 != nil {
		c.protoError("malformed Parse")
		return false
	}
	oids := make([]int32, nOids)
	for i := range oids {
		if oids[i], err3 = p.int32(); err3 != nil {
			c.protoError("malformed Parse")
			return false
		}
	}

	st := &prepared{sql: sql, kw: firstKeyword(sql), paramOIDs: oids}
	if !isControl(st.kw) && strings.TrimSpace(sql) != "" {
		// Validate eagerly so syntax errors surface at Parse, the way
		// conformant clients expect. ParseNorm shares its result with
		// the proxy's own ingest parse of the same text.
		stmt, err := sqlparser.ParseNorm(sql)
		if err != nil {
			_ = writeErrorResponse(c.w, &c.m, acerr.SQLStateParse, err.Error())
			return false
		}
		st.numParams = sqlparser.NumPositionalParams(stmt)
		if sel, ok := stmt.(*sqlparser.SelectStmt); ok {
			st.sel = sel
		}
	}
	c.stmts[name] = st
	_ = writeParseComplete(c.w, &c.m)
	return true
}

func (c *conn) handleBind(p *payloadReader) bool {
	portalName, err1 := p.cstr()
	stmtName, err2 := p.cstr()
	if err1 != nil || err2 != nil {
		c.protoError("malformed Bind")
		return false
	}
	st, ok := c.stmts[stmtName]
	if !ok {
		_ = writeErrorResponse(c.w, &c.m, stateNoSuchStatement,
			"prepared statement "+strconv.Quote(stmtName)+" does not exist")
		return false
	}

	nFmt, err := p.int16()
	if err != nil {
		c.protoError("malformed Bind")
		return false
	}
	fmts := make([]int16, nFmt)
	for i := range fmts {
		if fmts[i], err = p.int16(); err != nil {
			c.protoError("malformed Bind")
			return false
		}
		if fmts[i] != 0 {
			_ = writeErrorResponse(c.w, &c.m, acerr.SQLStateFeatureNotSupported,
				"binary parameter format is not supported")
			return false
		}
	}

	nParams, err := p.int16()
	if err != nil {
		c.protoError("malformed Bind")
		return false
	}
	args := make([]any, nParams)
	for i := range args {
		n, err := p.int32()
		if err != nil {
			c.protoError("malformed Bind")
			return false
		}
		if n < 0 {
			args[i] = nil
			continue
		}
		raw, err := p.take(int(n))
		if err != nil {
			c.protoError("malformed Bind")
			return false
		}
		var oid int32
		if i < len(st.paramOIDs) {
			oid = st.paramOIDs[i]
		}
		v, derr := decodeTextParam(string(raw), oid)
		if derr != nil {
			_ = writeErrorResponse(c.w, &c.m, acerr.SQLStateBadRequest,
				"parameter $"+strconv.Itoa(i+1)+": "+derr.Error())
			return false
		}
		args[i] = v
	}

	nResFmt, err := p.int16()
	if err != nil {
		c.protoError("malformed Bind")
		return false
	}
	for i := int16(0); i < nResFmt; i++ {
		f, err := p.int16()
		if err != nil {
			c.protoError("malformed Bind")
			return false
		}
		if f != 0 {
			_ = writeErrorResponse(c.w, &c.m, acerr.SQLStateFeatureNotSupported,
				"binary result format is not supported")
			return false
		}
	}

	c.portals[portalName] = &portal{stmt: st, args: args}
	_ = writeBindComplete(c.w, &c.m)
	return true
}

func (c *conn) handleDescribe(p *payloadReader) bool {
	kind := byte(0)
	if len(p.b) > 0 {
		kind = p.b[0]
		p.b = p.b[1:]
	}
	name, err := p.cstr()
	if err != nil {
		c.protoError("malformed Describe")
		return false
	}
	switch kind {
	case 'S':
		st, ok := c.stmts[name]
		if !ok {
			_ = writeErrorResponse(c.w, &c.m, stateNoSuchStatement,
				"prepared statement "+strconv.Quote(name)+" does not exist")
			return false
		}
		oids := make([]int32, st.numParams)
		copy(oids, st.paramOIDs)
		_ = writeParameterDescription(c.w, &c.m, oids)
		c.describeResult(st)
	case 'P':
		po, ok := c.portals[name]
		if !ok {
			_ = writeErrorResponse(c.w, &c.m, stateNoSuchPortal,
				"portal "+strconv.Quote(name)+" does not exist")
			return false
		}
		c.describeResult(po.stmt)
	default:
		c.protoError("malformed Describe")
		return false
	}
	return true
}

// describeResult announces the statement's result shape:
// RowDescription for SELECTs, NoData otherwise. Column names come from
// the AST the way the engine derives them (alias, then column name,
// then expression text); star items are announced as "*" because the
// bridge has no schema access — row data is still complete.
func (c *conn) describeResult(st *prepared) {
	if st.sel == nil {
		_ = writeNoData(c.w, &c.m)
		return
	}
	cols := make([]string, 0, len(st.sel.Items))
	for _, it := range st.sel.Items {
		switch {
		case it.Star && it.Table == "":
			cols = append(cols, "*")
		case it.Star:
			cols = append(cols, it.Table+".*")
		case it.Alias != "":
			cols = append(cols, it.Alias)
		default:
			if cr, ok := it.Expr.(*sqlparser.ColumnRef); ok {
				cols = append(cols, cr.Column)
			} else {
				cols = append(cols, it.Expr.SQL())
			}
		}
	}
	_ = writeRowDescription(c.w, &c.m, cols)
}

func (c *conn) handleExecute(base context.Context, p *payloadReader) bool {
	name, err := p.cstr()
	if err != nil {
		c.protoError("malformed Execute")
		return false
	}
	// Max-row count: read and ignored — portals always run to
	// completion (no PortalSuspended), which every common driver
	// accepts.
	if _, err := p.int32(); err != nil {
		c.protoError("malformed Execute")
		return false
	}
	po, ok := c.portals[name]
	if !ok {
		_ = writeErrorResponse(c.w, &c.m, stateNoSuchPortal,
			"portal "+strconv.Quote(name)+" does not exist")
		return false
	}
	if strings.TrimSpace(po.stmt.sql) == "" {
		_ = writeEmptyQueryResponse(c.w, &c.m)
		return true
	}
	return c.execStatement(base, po.stmt.sql, po.args, false)
}

func (c *conn) handleClose(p *payloadReader) bool {
	kind := byte(0)
	if len(p.b) > 0 {
		kind = p.b[0]
		p.b = p.b[1:]
	}
	name, err := p.cstr()
	if err != nil {
		c.protoError("malformed Close")
		return false
	}
	switch kind {
	case 'S':
		delete(c.stmts, name)
	case 'P':
		delete(c.portals, name)
	default:
		c.protoError("malformed Close")
		return false
	}
	_ = writeCloseComplete(c.w, &c.m)
	return true
}

// --- Parameter decoding ---

func parseInt(s string) (int64, error)     { return strconv.ParseInt(s, 10, 64) }
func parseFloat(s string) (float64, error) { return strconv.ParseFloat(s, 64) }

// decodeTextParam converts a text-format parameter to an engine value.
// A declared OID decides the type; OID 0 (unspecified, what most
// drivers send) falls back to affinity inference so integer keys
// compare exactly in the engine and the checker.
func decodeTextParam(s string, oid int32) (any, error) {
	switch oid {
	case oidInt2, oidInt4, oidInt8:
		return parseInt(s)
	case oidFloat4, oidFloat8, oidNumeric:
		return parseFloat(s)
	case oidBool:
		switch strings.ToLower(s) {
		case "t", "true", "1", "on", "yes":
			return true, nil
		case "f", "false", "0", "off", "no":
			return false, nil
		}
		return nil, strconv.ErrSyntax
	case oidText, oidVarchar:
		return s, nil
	}
	return parseAttrValue(s), nil
}
