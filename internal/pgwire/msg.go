package pgwire

import (
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
)

// Postgres v3 framing: after startup, every frontend message is one
// type byte followed by an int32 length (which includes itself but not
// the type byte) and the payload. Startup-phase messages omit the type
// byte. Backend messages use the same framed shape.

const (
	// Startup-phase magic "protocol versions".
	protoV3        = 196608   // 3.0
	sslRequestCode = 80877103 // SSLRequest: answer 'N', expect a retry
	cancelCode     = 80877102 // CancelRequest: pid + secret, no reply

	// maxMsgBytes bounds any single frontend message; a length beyond
	// it means a confused or malicious peer, not a big query.
	maxMsgBytes = 1 << 20
)

// Postgres type OIDs used on the wire. The engine is dynamically
// typed, so result columns are described as text and clients get the
// text rendering; parameter OIDs steer decoding when a driver supplies
// them.
const (
	oidBool    = 16
	oidInt8    = 20
	oidInt2    = 21
	oidInt4    = 23
	oidText    = 25
	oidFloat4  = 700
	oidFloat8  = 701
	oidVarchar = 1043
	oidNumeric = 1700
)

// readStartup reads one startup-phase message: its code and the rest
// of the payload.
func readStartup(r io.Reader) (code int32, payload []byte, err error) {
	var lenBuf [4]byte
	if _, err = io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, nil, err
	}
	n := int32(binary.BigEndian.Uint32(lenBuf[:]))
	if n < 8 || n > maxMsgBytes {
		return 0, nil, fmt.Errorf("pgwire: bad startup length %d", n)
	}
	body := make([]byte, n-4)
	if _, err = io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return int32(binary.BigEndian.Uint32(body[:4])), body[4:], nil
}

// readMsg reads one framed frontend message into *scratch, growing it
// as needed; the returned payload aliases the scratch buffer and is
// valid only until the next readMsg call with the same scratch. Every
// payload consumer copies what it keeps (cstr and decodeTextParam
// materialize strings), so one per-connection buffer serves the whole
// message stream without a per-message allocation.
func readMsg(r io.Reader, scratch *[]byte) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := int32(binary.BigEndian.Uint32(hdr[1:]))
	if n < 4 || n > maxMsgBytes {
		return 0, nil, fmt.Errorf("pgwire: bad message length %d", n)
	}
	need := int(n - 4)
	if cap(*scratch) < need {
		*scratch = make([]byte, need)
	}
	payload = (*scratch)[:need]
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// msgBuf builds one backend message. Zero value is ready after begin.
type msgBuf struct {
	buf []byte
}

func (m *msgBuf) begin(typ byte) {
	m.buf = append(m.buf[:0], typ, 0, 0, 0, 0)
}

func (m *msgBuf) byte(b byte)    { m.buf = append(m.buf, b) }
func (m *msgBuf) bytes(b []byte) { m.buf = append(m.buf, b...) }
func (m *msgBuf) int16(v int16)  { m.buf = binary.BigEndian.AppendUint16(m.buf, uint16(v)) }
func (m *msgBuf) int32(v int32)  { m.buf = binary.BigEndian.AppendUint32(m.buf, uint32(v)) }
func (m *msgBuf) cstr(s string)  { m.buf = append(append(m.buf, s...), 0) }

// finish patches the length and returns the wire bytes (valid until
// the next begin).
func (m *msgBuf) finish() []byte {
	binary.BigEndian.PutUint32(m.buf[1:5], uint32(len(m.buf)-1))
	return m.buf
}

func writeMsg(w io.Writer, m *msgBuf) error {
	_, err := w.Write(m.finish())
	return err
}

// --- Backend message writers ---

func writeAuthOK(w io.Writer, m *msgBuf) error {
	m.begin('R')
	m.int32(0)
	return writeMsg(w, m)
}

func writeParameterStatus(w io.Writer, m *msgBuf, k, v string) error {
	m.begin('S')
	m.cstr(k)
	m.cstr(v)
	return writeMsg(w, m)
}

func writeBackendKeyData(w io.Writer, m *msgBuf, pid, secret int32) error {
	m.begin('K')
	m.int32(pid)
	m.int32(secret)
	return writeMsg(w, m)
}

func writeReadyForQuery(w io.Writer, m *msgBuf, status byte) error {
	m.begin('Z')
	m.byte(status)
	return writeMsg(w, m)
}

// writeRowDescription describes result columns. The engine is
// dynamically typed, so every column is announced as text (OID 25);
// values arrive in text format regardless.
func writeRowDescription(w io.Writer, m *msgBuf, cols []string) error {
	m.begin('T')
	m.int16(int16(len(cols)))
	for _, c := range cols {
		m.cstr(c)
		m.int32(0) // table OID
		m.int16(0) // attribute number
		m.int32(oidText)
		m.int16(-1) // typlen (variable)
		m.int32(-1) // typmod
		m.int16(0)  // format: text
	}
	return writeMsg(w, m)
}

// renderValue converts an engine value (as returned through the proxy
// Response: int64, float64, string, bool, or nil) to its Postgres text
// rendering; ok=false means NULL.
func renderValue(v any) (s string, ok bool) {
	switch x := v.(type) {
	case nil:
		return "", false
	case int64:
		return strconv.FormatInt(x, 10), true
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64), true
	case bool:
		if x {
			return "t", true
		}
		return "f", true
	case string:
		return x, true
	}
	return fmt.Sprint(v), true
}

// valueText appends one DataRow cell: NULL as length -1, otherwise a
// 4-byte length placeholder followed by the value's Postgres text
// rendering appended DIRECTLY into the message buffer (strconv append
// forms, no intermediate string or []byte copy), with the length
// patched afterward. Must render byte-identically to renderValue —
// the golden and fuzz tests in frame_test.go pin the equivalence.
func (m *msgBuf) valueText(v any) {
	if v == nil {
		m.int32(-1)
		return
	}
	at := len(m.buf)
	m.buf = append(m.buf, 0, 0, 0, 0)
	switch x := v.(type) {
	case int64:
		m.buf = strconv.AppendInt(m.buf, x, 10)
	case float64:
		m.buf = strconv.AppendFloat(m.buf, x, 'g', -1, 64)
	case bool:
		if x {
			m.buf = append(m.buf, 't')
		} else {
			m.buf = append(m.buf, 'f')
		}
	case string:
		m.buf = append(m.buf, x...)
	default:
		m.buf = fmt.Append(m.buf, v)
	}
	binary.BigEndian.PutUint32(m.buf[at:], uint32(len(m.buf)-at-4))
}

func writeDataRow(w io.Writer, m *msgBuf, row []any) error {
	m.begin('D')
	m.int16(int16(len(row)))
	for _, v := range row {
		m.valueText(v)
	}
	return writeMsg(w, m)
}

func writeCommandComplete(w io.Writer, m *msgBuf, tag string) error {
	m.begin('C')
	m.cstr(tag)
	return writeMsg(w, m)
}

// writeCommandCompleteSelect writes the "SELECT n" completion tag
// without materializing the tag string (the per-query concat showed up
// in the saturation profile).
func writeCommandCompleteSelect(w io.Writer, m *msgBuf, n int) error {
	m.begin('C')
	m.buf = append(m.buf, "SELECT "...)
	m.buf = strconv.AppendInt(m.buf, int64(n), 10)
	m.byte(0)
	return writeMsg(w, m)
}

func writeEmptyQueryResponse(w io.Writer, m *msgBuf) error {
	m.begin('I')
	return writeMsg(w, m)
}

func writeParseComplete(w io.Writer, m *msgBuf) error {
	m.begin('1')
	return writeMsg(w, m)
}

func writeBindComplete(w io.Writer, m *msgBuf) error {
	m.begin('2')
	return writeMsg(w, m)
}

func writeCloseComplete(w io.Writer, m *msgBuf) error {
	m.begin('3')
	return writeMsg(w, m)
}

func writeNoData(w io.Writer, m *msgBuf) error {
	m.begin('n')
	return writeMsg(w, m)
}

func writeParameterDescription(w io.Writer, m *msgBuf, oids []int32) error {
	m.begin('t')
	m.int16(int16(len(oids)))
	for _, o := range oids {
		m.int32(o)
	}
	return writeMsg(w, m)
}

// writeErrorResponse reports an error with its SQLSTATE. Severity is
// always ERROR: the listener never kills the connection for statement
// errors, matching server behaviour.
func writeErrorResponse(w io.Writer, m *msgBuf, sqlstate, message string) error {
	m.begin('E')
	m.byte('S')
	m.cstr("ERROR")
	m.byte('V')
	m.cstr("ERROR")
	m.byte('C')
	m.cstr(sqlstate)
	m.byte('M')
	m.cstr(message)
	m.byte(0)
	return writeMsg(w, m)
}

// --- Frontend payload parsing helpers ---

// payloadReader walks a frontend message payload.
type payloadReader struct {
	b []byte
}

func (p *payloadReader) cstr() (string, error) {
	for i, c := range p.b {
		if c == 0 {
			s := string(p.b[:i])
			p.b = p.b[i+1:]
			return s, nil
		}
	}
	return "", fmt.Errorf("pgwire: unterminated string in message")
}

func (p *payloadReader) int16() (int16, error) {
	if len(p.b) < 2 {
		return 0, fmt.Errorf("pgwire: short message")
	}
	v := int16(binary.BigEndian.Uint16(p.b))
	p.b = p.b[2:]
	return v, nil
}

func (p *payloadReader) int32() (int32, error) {
	if len(p.b) < 4 {
		return 0, fmt.Errorf("pgwire: short message")
	}
	v := int32(binary.BigEndian.Uint32(p.b))
	p.b = p.b[4:]
	return v, nil
}

func (p *payloadReader) take(n int) ([]byte, error) {
	if n < 0 || len(p.b) < n {
		return nil, fmt.Errorf("pgwire: short message")
	}
	v := p.b[:n]
	p.b = p.b[n:]
	return v, nil
}
