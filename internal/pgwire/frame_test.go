package pgwire

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"math"
	"strings"
	"testing"
)

// The DataRow encoder writes values directly into the per-connection
// message buffer (valueText) instead of materializing a string per
// cell (renderValue). These tests pin both halves of that bargain:
// the wire bytes are exactly the Postgres v3 framing (golden tests,
// byte literals computed by hand from the protocol spec), and the
// direct-append rendering is byte-identical to the renderValue
// reference for every value the engine can produce (equivalence
// tests and fuzz). The msgBuf is reused across every case, as the
// connection loop reuses it across every query.

// mustHex decodes a spaced hex golden literal.
func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(strings.ReplaceAll(s, " ", ""))
	if err != nil {
		t.Fatalf("bad golden literal: %v", err)
	}
	return b
}

// TestDataRowGolden pins the exact wire bytes of a DataRow carrying
// one cell of every engine value kind: NULL, INTEGER, REAL, TEXT, and
// both BOOLEANs. Framing per the v3 protocol: 'D', int32 length
// (includes itself, excludes the type byte), int16 column count, then
// per cell an int32 length (-1 for NULL) and the text rendering.
func TestDataRowGolden(t *testing.T) {
	row := []any{nil, int64(-7), float64(2.5), "hi", true, false}
	want := mustHex(t, "44 00000027 0006"+
		" ffffffff"+ // NULL
		" 00000002 2d37"+ // "-7"
		" 00000003 322e35"+ // "2.5"
		" 00000002 6869"+ // "hi"
		" 00000001 74"+ // "t"
		" 00000001 66") // "f"

	var buf bytes.Buffer
	var m msgBuf
	// Dirty the buffer first: correctness must not depend on a fresh
	// msgBuf, because the connection loop never hands it one.
	m.begin('X')
	m.cstr("stale")
	if err := writeDataRow(&buf, &m, row); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("DataRow bytes:\n got  %x\n want %x", buf.Bytes(), want)
	}

	// Integral REALs render without a decimal point, exactly like the
	// v2 JSON surface renders them.
	buf.Reset()
	if err := writeDataRow(&buf, &m, []any{float64(3)}); err != nil {
		t.Fatal(err)
	}
	want = mustHex(t, "44 0000000b 0001 00000001 33")
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("integral REAL DataRow:\n got  %x\n want %x", buf.Bytes(), want)
	}
}

// TestRowDescriptionGolden pins the column-description framing the
// driver ingress parses on every SELECT: every column is announced as
// text (OID 25), variable length, text format.
func TestRowDescriptionGolden(t *testing.T) {
	var buf bytes.Buffer
	var m msgBuf
	if err := writeRowDescription(&buf, &m, []string{"EId"}); err != nil {
		t.Fatal(err)
	}
	want := mustHex(t, "54 0000001c 0001"+
		" 45496400"+ // "EId\0"
		" 00000000 0000"+ // table OID, attnum
		" 00000019"+ // type OID 25 (text)
		" ffff ffffffff 0000") // typlen -1, typmod -1, format text
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("RowDescription bytes:\n got  %x\n want %x", buf.Bytes(), want)
	}
}

// referenceCell renders one DataRow cell the slow way — renderValue
// into a fresh string, then explicit framing — to serve as the oracle
// for the direct-append encoder.
func referenceCell(v any) []byte {
	s, ok := renderValue(v)
	if !ok {
		return []byte{0xff, 0xff, 0xff, 0xff}
	}
	out := binary.BigEndian.AppendUint32(nil, uint32(len(s)))
	return append(out, s...)
}

// valueTextCell renders one cell through the production path, into a
// deliberately dirty, reused buffer.
func valueTextCell(m *msgBuf, v any) []byte {
	m.begin('D')
	start := len(m.buf)
	m.valueText(v)
	return m.buf[start:]
}

// TestValueTextMatchesRenderValue walks every value shape the engine
// emits through a Response — plus the fmt fallback for foreign types —
// and checks the direct-append rendering byte-for-byte against the
// renderValue reference.
func TestValueTextMatchesRenderValue(t *testing.T) {
	var m msgBuf
	values := []any{
		nil,
		int64(0), int64(42), int64(-42), int64(math.MaxInt64), int64(math.MinInt64),
		float64(0), float64(2.5), float64(-0.125), float64(1e300), float64(5e-324),
		float64(3), float64(-17), // integral REALs
		math.Inf(1), math.Inf(-1), math.NaN(),
		"", "standup", "tab\tand\x00nul", "ünïcödé",
		true, false,
		int(7), uint16(9), // foreign types: fmt fallback
	}
	for _, v := range values {
		got := valueTextCell(&m, v)
		want := referenceCell(v)
		if !bytes.Equal(got, want) {
			t.Errorf("valueText(%#v):\n got  %x\n want %x", v, got, want)
		}
	}
}

// FuzzValueTextParity fuzzes the direct-append cell encoder against
// the renderValue reference across the four wire kinds, reusing one
// msgBuf the whole run the way a connection does. kind selects the
// Go type handed to the encoder; the other arguments supply the value.
func FuzzValueTextParity(f *testing.F) {
	f.Add(uint8(0), int64(0), uint64(0), "")
	f.Add(uint8(1), int64(-9007199254740993), uint64(0), "")
	f.Add(uint8(2), int64(0), math.Float64bits(2.5), "")
	f.Add(uint8(2), int64(0), math.Float64bits(math.Inf(1)), "")
	f.Add(uint8(3), int64(0), uint64(0), "hello\x00world\"quote")
	f.Add(uint8(4), int64(1), uint64(0), "")
	var m msgBuf
	f.Fuzz(func(t *testing.T, kind uint8, i int64, fbits uint64, s string) {
		var v any
		switch kind % 5 {
		case 0:
			v = nil
		case 1:
			v = i
		case 2:
			v = math.Float64frombits(fbits)
		case 3:
			v = s
		case 4:
			v = i%2 == 0
		}
		got := valueTextCell(&m, v)
		want := referenceCell(v)
		if !bytes.Equal(got, want) {
			t.Fatalf("valueText(%#v):\n got  %x\n want %x", v, got, want)
		}
	})
}
