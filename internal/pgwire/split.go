package pgwire

import "strings"

// splitStatements splits a simple-Query buffer on top-level semicolons
// — outside single/double quotes, dollar-quoted strings, and comments
// — because psql and many clients send "stmt;" or "a; b;" in one
// message while the enforcement pipeline decides one statement at a
// time. Statements come back trimmed; empty segments are dropped. An
// unterminated construct ends the last statement at end of input and
// lets the parser report the real error.
func splitStatements(src string) []string {
	var out []string
	start := 0
	emit := func(end int) {
		s := strings.TrimSpace(src[start:end])
		if s != "" {
			out = append(out, s)
		}
	}
	i := 0
	for i < len(src) {
		switch c := src[i]; c {
		case ';':
			emit(i)
			i++
			start = i
		case '\'', '"', '`':
			j := i + 1
			for j < len(src) {
				if src[j] == c {
					if c == '\'' && j+1 < len(src) && src[j+1] == '\'' {
						j += 2
						continue
					}
					j++
					break
				}
				j++
			}
			i = j
		case '-':
			if i+1 < len(src) && src[i+1] == '-' {
				for i < len(src) && src[i] != '\n' {
					i++
				}
			} else {
				i++
			}
		case '/':
			if i+1 < len(src) && src[i+1] == '*' {
				end := strings.Index(src[i+2:], "*/")
				if end < 0 {
					i = len(src)
				} else {
					i += 2 + end + 2
				}
			} else {
				i++
			}
		case '$':
			// Possible dollar-quoted string: $tag$ ... $tag$.
			j := i + 1
			for j < len(src) && isTagChar(src[j]) {
				j++
			}
			if j < len(src) && src[j] == '$' {
				delim := src[i : j+1]
				end := strings.Index(src[j+1:], delim)
				if end < 0 {
					i = len(src)
				} else {
					i = j + 1 + end + len(delim)
				}
			} else {
				i++
			}
		default:
			i++
		}
	}
	emit(len(src))
	return out
}

func isTagChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// firstKeyword returns the statement's leading keyword, upper-cased.
func firstKeyword(sql string) string {
	i := 0
	for i < len(sql) {
		c := sql[i]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			i++
			continue
		}
		if c == '-' && i+1 < len(sql) && sql[i+1] == '-' {
			for i < len(sql) && sql[i] != '\n' {
				i++
			}
			continue
		}
		if c == '/' && i+1 < len(sql) && sql[i+1] == '*' {
			end := strings.Index(sql[i+2:], "*/")
			if end < 0 {
				return ""
			}
			i += 2 + end + 2
			continue
		}
		break
	}
	j := i
	for j < len(sql) && (sql[j] == '_' || sql[j] >= 'a' && sql[j] <= 'z' || sql[j] >= 'A' && sql[j] <= 'Z') {
		j++
	}
	return strings.ToUpper(sql[i:j])
}
