// Package pgwire implements a Postgres wire-protocol (v3) ingress for
// the enforcement proxy: stock Postgres clients — psql, language
// drivers, ORMs — connect, prepare, and execute statements, and EVERY
// statement is decided by the same checker/pipeline/durability stack
// the native v2 protocol uses. The listener is a protocol bridge, not
// a second enforcement path: each statement becomes a proxy Request
// handled through proxy.Server.HandleInCtx on the connection's
// session, so decisions, history recording, metrics, and WAL behaviour
// are identical across ingress surfaces by construction.
//
// Supported: startup (incl. SSLRequest refusal and CancelRequest),
// simple Query, the extended Parse/Bind/Describe/Execute/Close/Sync
// flow, text-format parameters and results, transaction status
// tracking ('I'/'T'/'E') with aborted-transaction semantics, and
// out-of-band cancellation via BackendKeyData. Not supported (rejected
// with SQLSTATE 0A000): binary parameter/result formats, COPY, and
// function calls.
//
// Session binding: startup parameters named "attr.X" become policy
// session attributes (values typed by int -> float -> bool -> text
// inference); the startup parameter "session" names a durable session
// restored from the WAL when the proxy runs with one.
package pgwire

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"net"
	"strings"
	"sync"

	"repro/internal/acerr"
	"repro/internal/proxy"
)

// Config parameterizes a listener.
type Config struct {
	// Proxy is the enforcement server every statement is decided by.
	Proxy *proxy.Server
	// MaxConns bounds concurrent connections; 0 means 256.
	MaxConns int
	// Logf receives structured log lines; nil silences them.
	Logf func(format string, args ...any)
}

// Server is a Postgres wire-protocol listener over one enforcement
// proxy.
type Server struct {
	cfg Config

	mu      sync.Mutex
	ln      net.Listener
	closed  bool
	conns   map[*conn]struct{}
	byPid   map[int32]*conn
	nextPid int32

	closeCtx    context.Context
	closeCancel context.CancelFunc
	wg          sync.WaitGroup
}

// NewServer returns an unstarted listener bound to the proxy.
func NewServer(cfg Config) *Server {
	return &Server{cfg: cfg}
}

func (s *Server) maxConns() int {
	if s.cfg.MaxConns > 0 {
		return s.cfg.MaxConns
	}
	return 256
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Listen binds addr and starts accepting. It returns the actual
// address (useful with ":0").
func (s *Server) Listen(addr string) (string, error) {
	if err := s.cfg.Proxy.OpenDurable(); err != nil {
		return "", err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.closed = false
	if s.conns == nil {
		s.conns = make(map[*conn]struct{})
		s.byPid = make(map[int32]*conn)
	}
	s.closeCtx, s.closeCancel = context.WithCancel(context.Background())
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Close stops the listener, cancels in-flight statements, and waits
// for connection handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed && s.ln == nil {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	var err error
	if s.ln != nil {
		err = s.ln.Close()
		s.ln = nil
	}
	if s.closeCancel != nil {
		s.closeCancel()
	}
	for c := range s.conns {
		c.netc.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		nc, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		if len(s.conns) >= s.maxConns() {
			s.mu.Unlock()
			// The client has not completed startup, but an ErrorResponse
			// before AuthenticationOk is legal and what real servers do.
			var m msgBuf
			_ = writeErrorResponse(nc, &m, acerr.SQLStateTooManyConns, "too many connections")
			nc.Close()
			s.logf("pgwire: rejected %s: connection limit (%d) reached", nc.RemoteAddr(), s.maxConns())
			continue
		}
		c := s.register(nc)
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			defer s.unregister(c)
			c.serve(s.closeCtx)
		}()
	}
}

// register allocates the connection's cancellation identity
// (BackendKeyData) and tracks it for Close and CancelRequest routing.
// Caller holds s.mu.
func (s *Server) register(nc net.Conn) *conn {
	s.nextPid++
	var sb [4]byte
	_, _ = rand.Read(sb[:])
	c := &conn{
		srv:    s,
		netc:   nc,
		pid:    s.nextPid,
		secret: int32(binary.BigEndian.Uint32(sb[:])),
	}
	s.conns[c] = struct{}{}
	s.byPid[c.pid] = c
	return c
}

func (s *Server) unregister(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	delete(s.byPid, c.pid)
	s.mu.Unlock()
	c.netc.Close()
}

// cancelByKey services a CancelRequest: find the connection by pid,
// verify the secret, and cancel its in-flight statement (a no-op when
// idle). Per protocol there is no success/failure reply.
func (s *Server) cancelByKey(pid, secret int32) {
	s.mu.Lock()
	c := s.byPid[pid]
	s.mu.Unlock()
	if c == nil || c.secret != secret {
		return
	}
	c.cancelCurrent()
}

// parseAttrValue types a startup-parameter string by affinity:
// int -> float -> bool -> text, mirroring how the v2 protocol's JSON
// attributes arrive typed.
func parseAttrValue(s string) any {
	if v, err := parseInt(s); err == nil {
		return v
	}
	if v, err := parseFloat(s); err == nil {
		return v
	}
	switch strings.ToLower(s) {
	case "true", "t":
		return true
	case "false", "f":
		return false
	}
	return s
}
