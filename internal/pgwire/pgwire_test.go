package pgwire

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/checker"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/proxy"
	"repro/internal/schema"
	"repro/internal/sqlvalue"
)

func testProxy(t *testing.T, mode proxy.Mode) *proxy.Server {
	t.Helper()
	s, err := schema.NewBuilder().
		Table("Users").
		NotNullCol("UId", sqlvalue.Int).
		NotNullCol("Name", sqlvalue.Text).
		PK("UId").Done().
		Table("Events").
		OpaqueCol("EId", sqlvalue.Int).
		NotNullCol("Title", sqlvalue.Text).
		Col("Notes", sqlvalue.Text).
		PK("EId").Done().
		Table("Attendance").
		NotNullCol("UId", sqlvalue.Int).
		NotNullCol("EId", sqlvalue.Int).
		PK("UId", "EId").Done().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	db := engine.New(s)
	db.MustExec("INSERT INTO Users (UId, Name) VALUES (1, 'alice'), (2, 'bob')")
	db.MustExec("INSERT INTO Events (EId, Title, Notes) VALUES (2, 'retro', 'snacks'), (3, 'offsite', NULL)")
	db.MustExec("INSERT INTO Attendance (UId, EId) VALUES (1, 2), (2, 3)")
	pol := policy.MustNew(s, map[string]string{
		"V1": "SELECT EId FROM Attendance WHERE UId = ?MyUId",
		"V2": "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?MyUId",
	})
	return proxy.NewServer(db, checker.New(pol), mode)
}

func listen(t *testing.T, px *proxy.Server, cfg Config) (string, *Server) {
	t.Helper()
	cfg.Proxy = px
	srv := NewServer(cfg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		px.Close()
	})
	return addr, srv
}

// --- Raw-socket test client ---

// pgConn is a minimal frontend for conformance testing: it speaks the
// v3 protocol directly over a TCP socket so the listener is exercised
// exactly as a stock client would, with no shared code.
type pgConn struct {
	t *testing.T
	c net.Conn
	r io.Reader

	pid, secret int32
}

// backendMsg is one received backend message.
type backendMsg struct {
	typ     byte
	payload []byte
}

func dialPg(t *testing.T, addr string, params map[string]string) *pgConn {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	pc := &pgConn{t: t, c: c, r: c}
	pc.sendStartup(params)
	msgs := pc.readUntilReady()
	for _, m := range msgs {
		if m.typ == 'E' {
			t.Fatalf("startup failed: %v", errorFields(m.payload))
		}
		if m.typ == 'K' {
			pc.pid = int32(binary.BigEndian.Uint32(m.payload[0:4]))
			pc.secret = int32(binary.BigEndian.Uint32(m.payload[4:8]))
		}
	}
	return pc
}

func (pc *pgConn) sendStartup(params map[string]string) {
	var body []byte
	body = binary.BigEndian.AppendUint32(body, protoV3)
	for k, v := range params {
		body = append(append(body, k...), 0)
		body = append(append(body, v...), 0)
	}
	body = append(body, 0)
	var msg []byte
	msg = binary.BigEndian.AppendUint32(msg, uint32(len(body)+4))
	msg = append(msg, body...)
	if _, err := pc.c.Write(msg); err != nil {
		pc.t.Fatal(err)
	}
}

func (pc *pgConn) send(typ byte, payload []byte) {
	msg := make([]byte, 0, len(payload)+5)
	msg = append(msg, typ)
	msg = binary.BigEndian.AppendUint32(msg, uint32(len(payload)+4))
	msg = append(msg, payload...)
	if _, err := pc.c.Write(msg); err != nil {
		pc.t.Fatal(err)
	}
}

func (pc *pgConn) read() backendMsg {
	pc.t.Helper()
	pc.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	var hdr [5]byte
	if _, err := io.ReadFull(pc.r, hdr[:]); err != nil {
		pc.t.Fatalf("read header: %v", err)
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	payload := make([]byte, n-4)
	if _, err := io.ReadFull(pc.r, payload); err != nil {
		pc.t.Fatalf("read payload: %v", err)
	}
	return backendMsg{typ: hdr[0], payload: payload}
}

// readUntilReady collects messages through the next ReadyForQuery.
func (pc *pgConn) readUntilReady() []backendMsg {
	pc.t.Helper()
	var out []backendMsg
	for {
		m := pc.read()
		out = append(out, m)
		if m.typ == 'Z' {
			return out
		}
	}
}

func (pc *pgConn) query(sql string) []backendMsg {
	pc.t.Helper()
	pc.send('Q', append([]byte(sql), 0))
	return pc.readUntilReady()
}

// parseBindExecute drives one extended-protocol round trip on the
// unnamed statement/portal and returns everything through
// ReadyForQuery.
func (pc *pgConn) parseBindExecute(sql string, args ...string) []backendMsg {
	pc.t.Helper()
	pc.sendParse("", sql, nil)
	pc.sendBind("", "", args)
	pc.sendDescribe('P', "")
	pc.sendExecute("", 0)
	pc.sendSync()
	return pc.readUntilReady()
}

func (pc *pgConn) sendParse(name, sql string, oids []int32) {
	var b []byte
	b = append(append(b, name...), 0)
	b = append(append(b, sql...), 0)
	b = binary.BigEndian.AppendUint16(b, uint16(len(oids)))
	for _, o := range oids {
		b = binary.BigEndian.AppendUint32(b, uint32(o))
	}
	pc.send('P', b)
}

func (pc *pgConn) sendBind(portal, stmt string, args []string) {
	var b []byte
	b = append(append(b, portal...), 0)
	b = append(append(b, stmt...), 0)
	b = binary.BigEndian.AppendUint16(b, 0) // all-text param formats
	b = binary.BigEndian.AppendUint16(b, uint16(len(args)))
	for _, a := range args {
		b = binary.BigEndian.AppendUint32(b, uint32(len(a)))
		b = append(b, a...)
	}
	b = binary.BigEndian.AppendUint16(b, 0) // all-text result formats
	pc.send('B', b)
}

func (pc *pgConn) sendDescribe(kind byte, name string) {
	b := append([]byte{kind}, name...)
	pc.send('D', append(b, 0))
}

func (pc *pgConn) sendExecute(portal string, maxRows int32) {
	b := append([]byte(portal), 0)
	b = binary.BigEndian.AppendUint32(b, uint32(maxRows))
	pc.send('E', b)
}

func (pc *pgConn) sendSync() { pc.send('S', nil) }

// cancelVia opens a second connection and issues a CancelRequest with
// this connection's BackendKeyData.
func (pc *pgConn) cancelVia(addr string) {
	pc.t.Helper()
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		pc.t.Fatal(err)
	}
	defer c.Close()
	var b []byte
	b = binary.BigEndian.AppendUint32(b, 16)
	b = binary.BigEndian.AppendUint32(b, cancelCode)
	b = binary.BigEndian.AppendUint32(b, uint32(pc.pid))
	b = binary.BigEndian.AppendUint32(b, uint32(pc.secret))
	if _, err := c.Write(b); err != nil {
		pc.t.Fatal(err)
	}
}

// --- Assertion helpers ---

func errorFields(payload []byte) map[byte]string {
	out := make(map[byte]string)
	for len(payload) > 0 && payload[0] != 0 {
		code := payload[0]
		payload = payload[1:]
		i := 0
		for i < len(payload) && payload[i] != 0 {
			i++
		}
		out[code] = string(payload[:i])
		if i+1 <= len(payload) {
			payload = payload[i+1:]
		}
	}
	return out
}

func findMsg(msgs []backendMsg, typ byte) *backendMsg {
	for i := range msgs {
		if msgs[i].typ == typ {
			return &msgs[i]
		}
	}
	return nil
}

func countMsgs(msgs []backendMsg, typ byte) int {
	n := 0
	for _, m := range msgs {
		if m.typ == typ {
			n++
		}
	}
	return n
}

func wantSQLState(t *testing.T, msgs []backendMsg, state string) map[byte]string {
	t.Helper()
	e := findMsg(msgs, 'E')
	if e == nil {
		t.Fatalf("no ErrorResponse in %s", msgTypes(msgs))
	}
	f := errorFields(e.payload)
	if f['C'] != state {
		t.Fatalf("SQLSTATE = %q (%q), want %q", f['C'], f['M'], state)
	}
	return f
}

func wantCommandTag(t *testing.T, msgs []backendMsg, tag string) {
	t.Helper()
	c := findMsg(msgs, 'C')
	if c == nil {
		t.Fatalf("no CommandComplete in %s", msgTypes(msgs))
	}
	got := strings.TrimRight(string(c.payload), "\x00")
	if got != tag {
		t.Fatalf("command tag = %q, want %q", got, tag)
	}
}

func txStatus(t *testing.T, msgs []backendMsg) byte {
	t.Helper()
	z := findMsg(msgs, 'Z')
	if z == nil || len(z.payload) != 1 {
		t.Fatalf("no ReadyForQuery in %s", msgTypes(msgs))
	}
	return z.payload[0]
}

func msgTypes(msgs []backendMsg) string {
	var b strings.Builder
	for _, m := range msgs {
		b.WriteByte(m.typ)
	}
	return b.String()
}

// dataRowValues decodes a text-format DataRow.
func dataRowValues(t *testing.T, m backendMsg) []string {
	t.Helper()
	p := payloadReader{b: m.payload}
	n, err := p.int16()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, n)
	for i := range out {
		ln, err := p.int32()
		if err != nil {
			t.Fatal(err)
		}
		if ln < 0 {
			out[i] = "<NULL>"
			continue
		}
		raw, err := p.take(int(ln))
		if err != nil {
			t.Fatal(err)
		}
		out[i] = string(raw)
	}
	return out
}

// --- Conformance tests ---

func TestSimpleQueryFlow(t *testing.T) {
	addr, _ := listen(t, testProxy(t, proxy.Enforce), Config{})
	pc := dialPg(t, addr, map[string]string{"user": "alice", "attr.MyUId": "1"})

	// Allowed SELECT: RowDescription + one DataRow + tag + 'I'.
	msgs := pc.query("SELECT EId FROM Attendance WHERE UId = 1")
	if findMsg(msgs, 'T') == nil {
		t.Fatalf("no RowDescription in %s", msgTypes(msgs))
	}
	if n := countMsgs(msgs, 'D'); n != 1 {
		t.Fatalf("got %d DataRows, want 1", n)
	}
	if got := dataRowValues(t, *findMsg(msgs, 'D')); len(got) != 1 || got[0] != "2" {
		t.Fatalf("row = %v, want [2]", got)
	}
	wantCommandTag(t, msgs, "SELECT 1")
	if s := txStatus(t, msgs); s != 'I' {
		t.Fatalf("status = %c, want I", s)
	}

	// Blocked SELECT: insufficient_privilege with the policy reason.
	f := wantSQLState(t, pc.query("SELECT * FROM Events WHERE EId=3"), SQLStateBlockedWire)
	if !strings.Contains(f['M'], "blocked by policy") {
		t.Fatalf("blocked message = %q", f['M'])
	}

	// Writes pass through as exec.
	wantCommandTag(t, pc.query("INSERT INTO Attendance (UId, EId) VALUES (1, 3)"), "INSERT 0 1")

	// Multi-statement buffer: both results, one ReadyForQuery.
	msgs = pc.query("SELECT EId FROM Attendance WHERE UId = 1; SELECT EId FROM Attendance WHERE UId = 1")
	if n := countMsgs(msgs, 'C'); n != 2 {
		t.Fatalf("got %d CommandCompletes, want 2 (%s)", n, msgTypes(msgs))
	}
	if n := countMsgs(msgs, 'Z'); n != 1 {
		t.Fatalf("got %d ReadyForQuery, want 1", n)
	}

	// Empty query.
	msgs = pc.query("  ;  ")
	if findMsg(msgs, 'I') == nil {
		t.Fatalf("no EmptyQueryResponse in %s", msgTypes(msgs))
	}

	// Parse error carries syntax_error.
	wantSQLState(t, pc.query("SELEKT 1"), "42601")
}

// SQLStateBlockedWire mirrors acerr.SQLStateBlocked without importing
// it here, so a silent change to the constant breaks this conformance
// suite loudly.
const SQLStateBlockedWire = "42501"

func TestExtendedProtocol(t *testing.T) {
	addr, _ := listen(t, testProxy(t, proxy.Enforce), Config{})
	pc := dialPg(t, addr, map[string]string{"attr.MyUId": "1"})

	msgs := pc.parseBindExecute("SELECT EId FROM Attendance WHERE UId = $1", "1")
	for _, typ := range []byte{'1', '2', 'T', 'D', 'C', 'Z'} {
		if findMsg(msgs, typ) == nil {
			t.Fatalf("missing %c in %s", typ, msgTypes(msgs))
		}
	}
	if got := dataRowValues(t, *findMsg(msgs, 'D')); len(got) != 1 || got[0] != "2" {
		t.Fatalf("row = %v, want [2]", got)
	}
	wantCommandTag(t, msgs, "SELECT 1")

	// Named prepared statement, Describe on the statement, repeated
	// Bind/Execute without re-Parse.
	pc.sendParse("getname", "SELECT EId FROM Attendance WHERE UId = $1", []int32{oidInt8})
	pc.sendDescribe('S', "getname")
	pc.sendSync()
	msgs = pc.readUntilReady()
	if findMsg(msgs, '1') == nil || findMsg(msgs, 't') == nil || findMsg(msgs, 'T') == nil {
		t.Fatalf("Describe(stmt) flow: %s", msgTypes(msgs))
	}
	pd := findMsg(msgs, 't')
	if n := binary.BigEndian.Uint16(pd.payload[:2]); n != 1 {
		t.Fatalf("ParameterDescription count = %d, want 1", n)
	}
	if oid := binary.BigEndian.Uint32(pd.payload[2:6]); oid != oidInt8 {
		t.Fatalf("ParameterDescription OID = %d, want %d", oid, oidInt8)
	}
	for round := 0; round < 2; round++ {
		pc.sendBind("", "getname", []string{"1"})
		pc.sendExecute("", 0)
		pc.sendSync()
		msgs = pc.readUntilReady()
		if findMsg(msgs, 'D') == nil {
			t.Fatalf("round %d: no DataRow in %s", round, msgTypes(msgs))
		}
	}

	// ?-style placeholders normalize to the same statement identity:
	// a v2-flavoured spelling works over pgwire too.
	msgs = pc.parseBindExecute("SELECT EId FROM Attendance WHERE UId = ?", "1")
	wantCommandTag(t, msgs, "SELECT 1")

	// Parse-time syntax error, then skip-till-Sync: the queued Bind
	// and Execute must be discarded, not answered.
	pc.sendParse("", "SELEKT oops", nil)
	pc.sendBind("", "", nil)
	pc.sendExecute("", 0)
	pc.sendSync()
	msgs = pc.readUntilReady()
	wantSQLState(t, msgs, "42601")
	if findMsg(msgs, '2') != nil || findMsg(msgs, 'C') != nil {
		t.Fatalf("messages after error were answered: %s", msgTypes(msgs))
	}

	// Binary parameter format is rejected as feature_not_supported.
	var b []byte
	b = append(b, 0) // portal ""
	b = append(b, "getname"...)
	b = append(b, 0)
	b = binary.BigEndian.AppendUint16(b, 1)
	b = binary.BigEndian.AppendUint16(b, 1) // format 1 = binary
	b = binary.BigEndian.AppendUint16(b, 1)
	b = binary.BigEndian.AppendUint32(b, 1)
	b = append(b, '1')
	b = binary.BigEndian.AppendUint16(b, 0)
	pc.send('B', b)
	pc.sendSync()
	wantSQLState(t, pc.readUntilReady(), "0A000")
}

func TestMidTransactionBlock(t *testing.T) {
	addr, _ := listen(t, testProxy(t, proxy.Enforce), Config{})
	pc := dialPg(t, addr, map[string]string{"attr.MyUId": "1"})

	msgs := pc.query("BEGIN")
	wantCommandTag(t, msgs, "BEGIN")
	if s := txStatus(t, msgs); s != 'T' {
		t.Fatalf("after BEGIN: status %c, want T", s)
	}

	// Allowed query inside the transaction.
	msgs = pc.query("SELECT EId FROM Attendance WHERE UId = 1")
	if s := txStatus(t, msgs); s != 'T' {
		t.Fatalf("after allowed query: status %c, want T", s)
	}

	// Policy block mid-transaction poisons the block.
	msgs = pc.query("SELECT * FROM Events WHERE EId=3")
	wantSQLState(t, msgs, SQLStateBlockedWire)
	if s := txStatus(t, msgs); s != 'E' {
		t.Fatalf("after block: status %c, want E", s)
	}

	// Subsequent statements are refused until rollback.
	msgs = pc.query("SELECT EId FROM Attendance WHERE UId = 1")
	wantSQLState(t, msgs, "25P02")

	// COMMIT of a failed transaction reports ROLLBACK.
	msgs = pc.query("COMMIT")
	wantCommandTag(t, msgs, "ROLLBACK")
	if s := txStatus(t, msgs); s != 'I' {
		t.Fatalf("after COMMIT: status %c, want I", s)
	}

	// Connection usable again.
	wantCommandTag(t, pc.query("SELECT EId FROM Attendance WHERE UId = 1"), "SELECT 1")
}

func TestCancelRequest(t *testing.T) {
	// LogOnly: the decision is recorded but the engine still runs the
	// scan, so a pathological cross join gives cancellation a real
	// in-flight statement to abort.
	s, err := schema.NewBuilder().
		Table("Big").NotNullCol("N", sqlvalue.Int).PK("N").Done().
		Table("Attendance").
		NotNullCol("UId", sqlvalue.Int).
		NotNullCol("EId", sqlvalue.Int).
		PK("UId", "EId").Done().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	db := engine.New(s)
	db.MustExec("INSERT INTO Attendance (UId, EId) VALUES (1, 2)")
	pol := policy.MustNew(s, map[string]string{
		"V1": "SELECT EId FROM Attendance WHERE UId = ?MyUId",
	})
	px := proxy.NewServer(db, checker.New(pol), proxy.LogOnly)
	var sb strings.Builder
	sb.WriteString("INSERT INTO Big (N) VALUES ")
	for i := 0; i < 2000; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d)", i)
	}
	db.MustExec(sb.String())
	addr, _ := listen(t, px, Config{})
	pc := dialPg(t, addr, map[string]string{"attr.MyUId": "1"})

	// A 2000^3 cross join with an unsatisfiable filter: never finishes
	// on its own within the test deadline.
	pc.send('Q', append([]byte("SELECT a.N FROM Big a, Big b, Big c WHERE a.N + b.N + c.N < 0"), 0))
	time.Sleep(100 * time.Millisecond) // let the statement get in flight
	pc.cancelVia(addr)
	msgs := pc.readUntilReady()
	wantSQLState(t, msgs, "57014")

	// The connection survives cancellation.
	wantCommandTag(t, pc.query("SELECT EId FROM Attendance WHERE UId = 1"), "SELECT 1")

	// A CancelRequest with the wrong secret is ignored.
	pc2 := dialPg(t, addr, map[string]string{"attr.MyUId": "1"})
	pc2.secret++
	pc2.cancelVia(addr)
	wantCommandTag(t, pc2.query("SELECT EId FROM Attendance WHERE UId = 1"), "SELECT 1")
}

// TestPreparedStatementFrontCacheHit pins the acceptance criterion:
// a prepared statement issued via the extended protocol registers as a
// statement-identity front-cache hit on its second execution, because
// the listener's Parse and the proxy's ingest parse share one
// normalized statement in the process-wide parse cache.
func TestPreparedStatementFrontCacheHit(t *testing.T) {
	px := testProxy(t, proxy.Enforce)
	addr, _ := listen(t, px, Config{})
	pc := dialPg(t, addr, map[string]string{"attr.MyUId": "1"})

	pc.sendParse("q", "SELECT EId FROM Attendance WHERE UId = $1", nil)
	pc.sendSync()
	pc.readUntilReady()

	reg := px.Checker.Metrics()
	before := reg.Counter("checker.front.hit").Value()

	for i := 0; i < 2; i++ {
		pc.sendBind("", "q", []string{"1"})
		pc.sendExecute("", 0)
		pc.sendSync()
		msgs := pc.readUntilReady()
		wantCommandTag(t, msgs, "SELECT 1")
	}

	if got := reg.Counter("checker.front.hit").Value(); got != before+1 {
		t.Fatalf("front cache hits across two executions = %d, want %d", got-before, 1)
	}
}

func TestConnectionLimit(t *testing.T) {
	addr, _ := listen(t, testProxy(t, proxy.Enforce), Config{MaxConns: 1})
	_ = dialPg(t, addr, map[string]string{"attr.MyUId": "1"})

	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The rejection is written before any startup exchange.
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	var hdr [5]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		t.Fatalf("read rejection: %v", err)
	}
	if hdr[0] != 'E' {
		t.Fatalf("got %c, want ErrorResponse", hdr[0])
	}
	payload := make([]byte, binary.BigEndian.Uint32(hdr[1:])-4)
	if _, err := io.ReadFull(c, payload); err != nil {
		t.Fatal(err)
	}
	if f := errorFields(payload); f['C'] != "53300" {
		t.Fatalf("SQLSTATE = %q, want 53300", f['C'])
	}
}
