package appdsl

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
)

// showEvent is the paper's Listing 1 rendered in the DSL.
func showEvent() *Handler {
	return &Handler{
		Name:   "show_event",
		Params: []string{"event_id"},
		Body: []Stmt{
			Query{Dest: "check",
				SQL:  "SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?",
				Args: []Val{SessionRef{Name: "user_id"}, ParamRef{Name: "event_id"}}},
			If{Cond: Empty{Result: "check"},
				Then: []Stmt{Abort{Message: "event not found"}}},
			Query{Dest: "event",
				SQL:  "SELECT * FROM Events WHERE EId = ?",
				Args: []Val{ParamRef{Name: "event_id"}}},
			Render{From: "event"},
		},
	}
}

func testDB(t testing.TB) *engine.DB {
	t.Helper()
	s, err := schema.NewBuilder().
		Table("Events").
		NotNullCol("EId", sqlvalue.Int).
		NotNullCol("Title", sqlvalue.Text).
		Col("Notes", sqlvalue.Text).
		PK("EId").Done().
		Table("Attendance").
		NotNullCol("UId", sqlvalue.Int).
		NotNullCol("EId", sqlvalue.Int).
		PK("UId", "EId").Done().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	db := engine.New(s)
	db.MustExec("INSERT INTO Events (EId, Title, Notes) VALUES (2, 'retro', 'x')")
	db.MustExec("INSERT INTO Attendance (UId, EId) VALUES (1, 2)")
	return db
}

func engineRunner(db *engine.DB) Runner {
	return RunnerFunc(func(sql string, args []sqlvalue.Value) (*Rows, error) {
		res, err := db.QuerySQL(sql, sqlparser.Args{Positional: args})
		if err != nil {
			return nil, err
		}
		rows := make([][]sqlvalue.Value, len(res.Rows))
		for i, r := range res.Rows {
			rows[i] = r
		}
		return &Rows{Columns: res.Columns, Rows: rows}, nil
	})
}

func vmap(m map[string]any) map[string]sqlvalue.Value {
	out := make(map[string]sqlvalue.Value, len(m))
	for k, v := range m {
		out[k] = sqlvalue.MustFromAny(v)
	}
	return out
}

func TestRunHappyPath(t *testing.T) {
	db := testDB(t)
	rendered, err := Run(showEvent(),
		vmap(map[string]any{"event_id": 2}),
		vmap(map[string]any{"user_id": 1}),
		engineRunner(db))
	if err != nil {
		t.Fatal(err)
	}
	if len(rendered) != 1 || len(rendered[0].Rows) != 1 {
		t.Fatalf("rendered: %+v", rendered)
	}
	if rendered[0].Rows[0][1].Text() != "retro" {
		t.Fatalf("event row: %v", rendered[0].Rows[0])
	}
}

func TestRunAbortPath(t *testing.T) {
	db := testDB(t)
	_, err := Run(showEvent(),
		vmap(map[string]any{"event_id": 99}),
		vmap(map[string]any{"user_id": 1}),
		engineRunner(db))
	var abort *AbortError
	if !errors.As(err, &abort) {
		t.Fatalf("expected AbortError, got %v", err)
	}
}

func TestRunMissingParam(t *testing.T) {
	db := testDB(t)
	_, err := Run(showEvent(), nil, vmap(map[string]any{"user_id": 1}), engineRunner(db))
	if err == nil {
		t.Fatal("missing request parameter must error")
	}
}

func TestForEachConcrete(t *testing.T) {
	db := testDB(t)
	db.MustExec("INSERT INTO Events (EId, Title, Notes) VALUES (3, 'offsite', NULL)")
	db.MustExec("INSERT INTO Attendance (UId, EId) VALUES (1, 3)")
	h := &Handler{
		Name: "list_events",
		Body: []Stmt{
			Query{Dest: "mine",
				SQL:  "SELECT EId FROM Attendance WHERE UId = ? ORDER BY EId",
				Args: []Val{SessionRef{Name: "user_id"}}},
			ForEach{Over: "mine", Row: "r", Body: []Stmt{
				Query{Dest: "ev",
					SQL:  "SELECT Title FROM Events WHERE EId = ?",
					Args: []Val{RowRef{Row: "r", Column: "EId"}}},
				Render{From: "ev"},
			}},
		},
	}
	rendered, err := Run(h, nil, vmap(map[string]any{"user_id": 1}), engineRunner(db))
	if err != nil {
		t.Fatal(err)
	}
	if len(rendered) != 2 {
		t.Fatalf("rendered per row: %d", len(rendered))
	}
	if rendered[0].Rows[0][0].Text() != "retro" || rendered[1].Rows[0][0].Text() != "offsite" {
		t.Fatalf("titles: %v %v", rendered[0].Rows, rendered[1].Rows)
	}
}

func TestSymbolicExecuteListing1(t *testing.T) {
	paths, err := SymbolicExecute(showEvent())
	if err != nil {
		t.Fatal(err)
	}
	// Two paths: check empty -> abort; check non-empty -> fetch event.
	if len(paths) != 2 {
		t.Fatalf("paths: %d", len(paths))
	}
	var abortPath, okPath *Path
	for i := range paths {
		if paths[i].Aborted {
			abortPath = &paths[i]
		} else {
			okPath = &paths[i]
		}
	}
	if abortPath == nil || okPath == nil {
		t.Fatalf("expected one aborted and one completed path: %+v", paths)
	}
	if len(abortPath.Issued) != 1 {
		t.Fatalf("abort path queries: %+v", abortPath.Issued)
	}
	if len(okPath.Issued) != 2 {
		t.Fatalf("ok path queries: %+v", okPath.Issued)
	}
	q2 := okPath.Issued[1]
	if len(q2.Assumes) != 1 || !q2.Assumes[0].NonEmpty || q2.Assumes[0].Issuance != 0 {
		t.Fatalf("Q2's path condition should assume Q1 non-empty: %+v", q2.Assumes)
	}
}

func TestSymbolicExecuteForEach(t *testing.T) {
	h := &Handler{
		Name: "list",
		Body: []Stmt{
			Query{Dest: "mine", SQL: "SELECT EId FROM Attendance WHERE UId = ?",
				Args: []Val{SessionRef{Name: "user_id"}}},
			ForEach{Over: "mine", Row: "r", Body: []Stmt{
				Query{Dest: "ev", SQL: "SELECT Title FROM Events WHERE EId = ?",
					Args: []Val{RowRef{Row: "r", Column: "EId"}}},
			}},
		},
	}
	paths, err := SymbolicExecute(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths: %d", len(paths))
	}
	// The generic-iteration path issues the inner query with a RowRef
	// arg under a non-empty assumption.
	found := false
	for _, p := range paths {
		if len(p.Issued) == 2 {
			in := p.Issued[1]
			if _, ok := in.Args[0].(RowRef); ok && len(in.Assumes) == 1 && in.Assumes[0].NonEmpty {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("generic iteration path missing: %+v", paths)
	}
}

func TestSymbolicExecuteNestedIf(t *testing.T) {
	h := &Handler{
		Name: "nested",
		Body: []Stmt{
			Query{Dest: "a", SQL: "SELECT 1 FROM Attendance WHERE UId = ?", Args: []Val{SessionRef{Name: "user_id"}}},
			If{Cond: NotEmpty{Result: "a"},
				Then: []Stmt{
					Query{Dest: "b", SQL: "SELECT 1 FROM Events WHERE EId = ?", Args: []Val{ParamRef{Name: "e"}}},
					If{Cond: Empty{Result: "b"}, Then: []Stmt{Abort{Message: "no"}}},
				},
				Else: []Stmt{Abort{Message: "denied"}},
			},
		},
	}
	paths, err := SymbolicExecute(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("expected 3 paths, got %d", len(paths))
	}
}

func TestNestedForEachSymbolic(t *testing.T) {
	h := &Handler{
		Name: "nested_loops",
		Body: []Stmt{
			Query{Dest: "outer", SQL: "SELECT EId FROM Attendance WHERE UId = ?",
				Args: []Val{SessionRef{Name: "user_id"}}},
			ForEach{Over: "outer", Row: "o", Body: []Stmt{
				Query{Dest: "inner", SQL: "SELECT Title FROM Events WHERE EId = ?",
					Args: []Val{RowRef{Row: "o", Column: "EId"}}},
				ForEach{Over: "inner", Row: "i", Body: []Stmt{
					Render{From: "inner"},
				}},
			}},
		},
	}
	paths, err := SymbolicExecute(h)
	if err != nil {
		t.Fatal(err)
	}
	// empty; outer-nonempty+inner-empty; outer-nonempty+inner-nonempty.
	if len(paths) != 3 {
		t.Fatalf("nested loop paths: %d", len(paths))
	}
	// The deepest path records the row source chain.
	deepest := paths[len(paths)-1]
	if len(deepest.Issued) != 2 {
		t.Fatalf("deepest path issuances: %+v", deepest.Issued)
	}
	if src, ok := deepest.Issued[1].RowSources["o"]; !ok || src != 0 {
		t.Fatalf("row source chain: %+v", deepest.Issued[1].RowSources)
	}
}

func TestSymbolicPathExplosionBounded(t *testing.T) {
	// 2^10 = 1024 paths exceeds the bound; expect an error, not a hang.
	var body []Stmt
	for i := 0; i < 10; i++ {
		dest := fmt.Sprintf("r%d", i)
		body = append(body,
			Query{Dest: dest, SQL: "SELECT 1 FROM Attendance WHERE UId = ?",
				Args: []Val{SessionRef{Name: "user_id"}}},
			If{Cond: Empty{Result: dest}, Then: []Stmt{Render{From: dest}}},
		)
	}
	_, err := SymbolicExecute(&Handler{Name: "explode", Body: body})
	if err == nil {
		t.Fatal("path explosion should be reported")
	}
}

func TestRunUnknownResultErrors(t *testing.T) {
	db := testDB(t)
	h := &Handler{Name: "bad", Body: []Stmt{Render{From: "nope"}}}
	if _, err := Run(h, nil, nil, engineRunner(db)); err == nil {
		t.Fatal("render of unknown result must error")
	}
	h2 := &Handler{Name: "bad2", Body: []Stmt{ForEach{Over: "nope", Row: "r"}}}
	if _, err := Run(h2, nil, nil, engineRunner(db)); err == nil {
		t.Fatal("loop over unknown result must error")
	}
	h3 := &Handler{Name: "bad3", Body: []Stmt{If{Cond: Empty{Result: "nope"}}}}
	if _, err := Run(h3, nil, nil, engineRunner(db)); err == nil {
		t.Fatal("condition on unknown result must error")
	}
}

func TestRowRefUnknownColumn(t *testing.T) {
	db := testDB(t)
	h := &Handler{
		Name: "badcol",
		Body: []Stmt{
			Query{Dest: "mine", SQL: "SELECT EId FROM Attendance WHERE UId = ?",
				Args: []Val{SessionRef{Name: "user_id"}}},
			ForEach{Over: "mine", Row: "r", Body: []Stmt{
				Query{Dest: "x", SQL: "SELECT 1 FROM Events WHERE EId = ?",
					Args: []Val{RowRef{Row: "r", Column: "Nope"}}},
			}},
		},
	}
	_, err := Run(h, nil,
		map[string]sqlvalue.Value{"user_id": sqlvalue.NewInt(1)}, engineRunner(db))
	if err == nil {
		t.Fatal("unknown row column must error")
	}
}
