package appdsl

import (
	"fmt"
)

// Issuance is one query issued along a symbolic path: the SQL, its
// symbolic arguments, and the emptiness assumptions in force when it
// was issued (its path condition, §3.2.1).
type Issuance struct {
	SQL  string
	Args []Val
	// Assumes lists assumptions on the results of *earlier* issuances
	// of the same path.
	Assumes []Assumption
	// RowSources maps a ForEach row name in scope to the issuance
	// index whose result the row ranges over, so RowRef arguments can
	// be correlated with the producing query during extraction.
	RowSources map[string]int
}

// Assumption says the result of a prior issuance was (non)empty.
type Assumption struct {
	// Issuance is the index (within the path) of the query whose
	// result is constrained.
	Issuance int
	NonEmpty bool
}

// Path is one complete symbolic execution path.
type Path struct {
	Issued  []Issuance
	Aborted bool
}

// maxPaths bounds path explosion; web handlers are expected to stay
// far below it (§3.2.1's observation about simple loop structure).
const maxPaths = 256

// SymbolicExecute enumerates the handler's paths. Request parameters
// and session attributes stay symbolic; loops execute one generic
// iteration (plus the empty-result path).
func SymbolicExecute(h *Handler) ([]Path, error) {
	ex := &symExec{}
	st := &symState{results: map[string]int{}, rows: map[string]int{}}
	if err := ex.block(h.Body, st); err != nil {
		return nil, err
	}
	return ex.paths, nil
}

type symExec struct {
	paths []Path
}

type symState struct {
	issued  []Issuance
	results map[string]int // result name -> issuance index
	rows    map[string]int // ForEach row name -> issuance index
	// assumes are the live path conditions.
	assumes []Assumption
	aborted bool
}

func (s *symState) clone() *symState {
	n := &symState{
		issued:  append([]Issuance(nil), s.issued...),
		results: make(map[string]int, len(s.results)),
		rows:    make(map[string]int, len(s.rows)),
		assumes: append([]Assumption(nil), s.assumes...),
	}
	for k, v := range s.results {
		n.results[k] = v
	}
	for k, v := range s.rows {
		n.rows[k] = v
	}
	return n
}

func (e *symExec) emit(st *symState) error {
	if len(e.paths) >= maxPaths {
		return fmt.Errorf("appdsl: path explosion (more than %d paths)", maxPaths)
	}
	e.paths = append(e.paths, Path{Issued: st.issued, Aborted: st.aborted})
	return nil
}

// block executes stmts symbolically; at the end of the handler the
// state is emitted as a completed path.
func (e *symExec) block(body []Stmt, st *symState) error {
	cont, err := e.runStmts(body, st)
	if err != nil {
		return err
	}
	for _, c := range cont {
		if err := e.emit(c); err != nil {
			return err
		}
	}
	return nil
}

// runStmts returns the set of states that fall through the block.
func (e *symExec) runStmts(body []Stmt, st *symState) ([]*symState, error) {
	states := []*symState{st}
	for _, stmt := range body {
		var next []*symState
		for _, s := range states {
			out, err := e.runStmt(stmt, s)
			if err != nil {
				return nil, err
			}
			next = append(next, out...)
			if len(next) > maxPaths {
				return nil, fmt.Errorf("appdsl: path explosion")
			}
		}
		states = next
	}
	return states, nil
}

func (e *symExec) runStmt(stmt Stmt, st *symState) ([]*symState, error) {
	switch s := stmt.(type) {
	case Query:
		rowSrc := make(map[string]int, len(st.rows))
		for k, v := range st.rows {
			rowSrc[k] = v
		}
		st.issued = append(st.issued, Issuance{
			SQL:        s.SQL,
			Args:       append([]Val(nil), s.Args...),
			Assumes:    append([]Assumption(nil), st.assumes...),
			RowSources: rowSrc,
		})
		st.results[s.Dest] = len(st.issued) - 1
		return []*symState{st}, nil

	case If:
		idx, nonEmptyThen, err := condTarget(s.Cond, st)
		if err != nil {
			return nil, err
		}
		thenSt := st.clone()
		thenSt.assumes = append(thenSt.assumes, Assumption{Issuance: idx, NonEmpty: nonEmptyThen})
		elseSt := st.clone()
		elseSt.assumes = append(elseSt.assumes, Assumption{Issuance: idx, NonEmpty: !nonEmptyThen})

		thenOut, err := e.runStmts(s.Then, thenSt)
		if err != nil {
			return nil, err
		}
		elseOut, err := e.runStmts(s.Else, elseSt)
		if err != nil {
			return nil, err
		}
		return append(thenOut, elseOut...), nil

	case Abort:
		st.aborted = true
		if err := e.emit(st); err != nil {
			return nil, err
		}
		return nil, nil // no fall-through

	case Render:
		return []*symState{st}, nil

	case ForEach:
		idx, ok := st.results[s.Over]
		if !ok {
			return nil, fmt.Errorf("appdsl: loop over unknown result %q", s.Over)
		}
		// Path A: the result is empty, loop body never runs.
		emptySt := st.clone()
		emptySt.assumes = append(emptySt.assumes, Assumption{Issuance: idx, NonEmpty: false})
		// Path B: non-empty; execute one generic iteration (RowRefs
		// stay symbolic).
		iterSt := st.clone()
		iterSt.assumes = append(iterSt.assumes, Assumption{Issuance: idx, NonEmpty: true})
		iterSt.rows[s.Row] = idx
		iterOut, err := e.runStmts(s.Body, iterSt)
		if err != nil {
			return nil, err
		}
		return append([]*symState{emptySt}, iterOut...), nil
	}
	return nil, fmt.Errorf("appdsl: unknown statement %T", stmt)
}

func condTarget(c Cond, st *symState) (idx int, nonEmptyForThen bool, err error) {
	switch x := c.(type) {
	case Empty:
		i, ok := st.results[x.Result]
		if !ok {
			return 0, false, fmt.Errorf("appdsl: condition on unknown result %q", x.Result)
		}
		return i, false, nil
	case NotEmpty:
		i, ok := st.results[x.Result]
		if !ok {
			return 0, false, fmt.Errorf("appdsl: condition on unknown result %q", x.Result)
		}
		return i, true, nil
	}
	return 0, false, fmt.Errorf("appdsl: unknown condition %T", c)
}
