// Package appdsl defines a small handler language for modeling
// database-backed web applications: handlers take request parameters
// and a session, issue SQL queries, branch on result emptiness (the
// access-check idiom of the paper's Listing 1), iterate over results,
// and render or abort.
//
// The language exists to give the paper's §3 extraction proposals a
// concrete surface: its concrete interpreter drives the enforcement
// proxy (producing query traces for black-box mining), and its
// symbolic executor enumerates every (query, path condition) pair for
// language-based extraction — the role symbolic execution of Ruby or
// PHP plays in the paper.
package appdsl

import (
	"fmt"

	"repro/internal/sqlvalue"
)

// Val is an expression yielding a scalar: a literal, a request
// parameter, a session attribute, or a column of the current loop row.
type Val interface{ val() }

// Lit is a constant.
type Lit struct{ Value sqlvalue.Value }

func (Lit) val() {}

// LitOf builds a literal from a Go value.
func LitOf(v any) Lit { return Lit{Value: sqlvalue.MustFromAny(v)} }

// ParamRef reads a request parameter.
type ParamRef struct{ Name string }

func (ParamRef) val() {}

// SessionRef reads a session attribute (e.g. "user_id").
type SessionRef struct{ Name string }

func (SessionRef) val() {}

// RowRef reads a column of the row bound by an enclosing ForEach.
type RowRef struct {
	Row    string // the ForEach's Row name
	Column string // result column label
}

func (RowRef) val() {}

// Stmt is one handler statement.
type Stmt interface{ stmt() }

// Query runs a SELECT with positional arguments and stores the result
// under Dest.
type Query struct {
	Dest string
	SQL  string
	Args []Val
}

func (Query) stmt() {}

// If branches on a condition over stored results.
type If struct {
	Cond Cond
	Then []Stmt
	Else []Stmt
}

func (If) stmt() {}

// Abort stops the handler (e.g. HTTP 404). Queries issued before the
// abort still executed and still revealed data.
type Abort struct{ Message string }

func (Abort) stmt() {}

// Render marks a stored result as shown to the user.
type Render struct{ From string }

func (Render) stmt() {}

// ForEach runs Body once per row of a stored result, binding the row
// under Row for RowRef.
type ForEach struct {
	Over string
	Row  string
	Body []Stmt
}

func (ForEach) stmt() {}

// Cond is a branch condition.
type Cond interface{ cond() }

// Empty is true when the stored result has no rows.
type Empty struct{ Result string }

func (Empty) cond() {}

// NotEmpty is true when the stored result has rows.
type NotEmpty struct{ Result string }

func (NotEmpty) cond() {}

// Handler is a named program.
type Handler struct {
	Name   string
	Params []string // request parameter names
	Body   []Stmt
}

// App is a set of handlers plus the session attributes the app uses
// and their policy-parameter names (e.g. "user_id" -> "MyUId").
type App struct {
	Name     string
	Handlers []*Handler
	// SessionParam maps a session attribute name to the policy
	// parameter that represents it in extracted views.
	SessionParam map[string]string
}

// Handler returns the named handler.
func (a *App) Handler(name string) (*Handler, bool) {
	for _, h := range a.Handlers {
		if h.Name == name {
			return h, true
		}
	}
	return nil, false
}

// --- Concrete interpretation ---

// Rows is a handler-visible result set.
type Rows struct {
	Columns []string
	Rows    [][]sqlvalue.Value
}

// Empty reports emptiness.
func (r *Rows) Empty() bool { return len(r.Rows) == 0 }

// Runner executes SQL on behalf of a handler (the proxy client, or
// the engine directly).
type Runner interface {
	RunQuery(sql string, args []sqlvalue.Value) (*Rows, error)
}

// RunnerFunc adapts a function to Runner.
type RunnerFunc func(sql string, args []sqlvalue.Value) (*Rows, error)

// RunQuery implements Runner.
func (f RunnerFunc) RunQuery(sql string, args []sqlvalue.Value) (*Rows, error) {
	return f(sql, args)
}

// AbortError reports a handler abort (not a failure).
type AbortError struct{ Message string }

// Error implements error.
func (e *AbortError) Error() string { return "handler aborted: " + e.Message }

// Run executes the handler concretely. Rendered results are returned
// in order. A policy block or engine error aborts with that error; an
// Abort statement returns an *AbortError.
func Run(h *Handler, params map[string]sqlvalue.Value, session map[string]sqlvalue.Value, r Runner) ([]*Rows, error) {
	env := &runEnv{params: params, session: session, results: map[string]*Rows{}, runner: r}
	if err := env.runBlock(h.Body); err != nil {
		return env.rendered, err
	}
	return env.rendered, nil
}

type runEnv struct {
	params   map[string]sqlvalue.Value
	session  map[string]sqlvalue.Value
	results  map[string]*Rows
	rendered []*Rows
	runner   Runner
	rowScope []rowBinding
}

type rowBinding struct {
	name string
	cols []string
	row  []sqlvalue.Value
}

func (e *runEnv) runBlock(body []Stmt) error {
	for _, st := range body {
		if err := e.runStmt(st); err != nil {
			return err
		}
	}
	return nil
}

func (e *runEnv) runStmt(st Stmt) error {
	switch s := st.(type) {
	case Query:
		args := make([]sqlvalue.Value, len(s.Args))
		for i, a := range s.Args {
			v, err := e.eval(a)
			if err != nil {
				return err
			}
			args[i] = v
		}
		rows, err := e.runner.RunQuery(s.SQL, args)
		if err != nil {
			return err
		}
		e.results[s.Dest] = rows
		return nil
	case If:
		t, err := e.evalCond(s.Cond)
		if err != nil {
			return err
		}
		if t {
			return e.runBlock(s.Then)
		}
		return e.runBlock(s.Else)
	case Abort:
		return &AbortError{Message: s.Message}
	case Render:
		rows, ok := e.results[s.From]
		if !ok {
			return fmt.Errorf("appdsl: render of unknown result %q", s.From)
		}
		e.rendered = append(e.rendered, rows)
		return nil
	case ForEach:
		rows, ok := e.results[s.Over]
		if !ok {
			return fmt.Errorf("appdsl: loop over unknown result %q", s.Over)
		}
		for _, row := range rows.Rows {
			e.rowScope = append(e.rowScope, rowBinding{name: s.Row, cols: rows.Columns, row: row})
			err := e.runBlock(s.Body)
			e.rowScope = e.rowScope[:len(e.rowScope)-1]
			if err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("appdsl: unknown statement %T", st)
}

func (e *runEnv) eval(v Val) (sqlvalue.Value, error) {
	switch x := v.(type) {
	case Lit:
		return x.Value, nil
	case ParamRef:
		val, ok := e.params[x.Name]
		if !ok {
			return sqlvalue.Value{}, fmt.Errorf("appdsl: missing request parameter %q", x.Name)
		}
		return val, nil
	case SessionRef:
		val, ok := e.session[x.Name]
		if !ok {
			return sqlvalue.Value{}, fmt.Errorf("appdsl: missing session attribute %q", x.Name)
		}
		return val, nil
	case RowRef:
		for i := len(e.rowScope) - 1; i >= 0; i-- {
			b := e.rowScope[i]
			if b.name != x.Row {
				continue
			}
			for ci, c := range b.cols {
				if c == x.Column {
					return b.row[ci], nil
				}
			}
			return sqlvalue.Value{}, fmt.Errorf("appdsl: row %q has no column %q", x.Row, x.Column)
		}
		return sqlvalue.Value{}, fmt.Errorf("appdsl: no row binding %q in scope", x.Row)
	}
	return sqlvalue.Value{}, fmt.Errorf("appdsl: unknown value %T", v)
}

func (e *runEnv) evalCond(c Cond) (bool, error) {
	switch x := c.(type) {
	case Empty:
		r, ok := e.results[x.Result]
		if !ok {
			return false, fmt.Errorf("appdsl: condition on unknown result %q", x.Result)
		}
		return r.Empty(), nil
	case NotEmpty:
		r, ok := e.results[x.Result]
		if !ok {
			return false, fmt.Errorf("appdsl: condition on unknown result %q", x.Result)
		}
		return !r.Empty(), nil
	}
	return false, fmt.Errorf("appdsl: unknown condition %T", c)
}
