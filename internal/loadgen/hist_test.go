package loadgen

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestHistIndexRoundTrip: every bucket's representative value must map
// back to the same bucket, and bucket boundaries must be contiguous.
func TestHistIndexRoundTrip(t *testing.T) {
	for idx := 0; idx < histBuckets; idx++ {
		v := histValue(idx)
		if got := histIndex(v); got != idx {
			t.Fatalf("histIndex(histValue(%d)=%d) = %d", idx, v, got)
		}
	}
	last := -1
	for _, v := range []int64{0, 1, 63, 64, 65, 127, 128, 1000, 1 << 20, 1<<62 + 12345} {
		idx := histIndex(v)
		if idx < last {
			t.Fatalf("bucket index not monotone at %d", v)
		}
		last = idx
	}
	if histIndex(-5) != 0 {
		t.Fatalf("negative values must clamp to bucket 0")
	}
}

// TestHistQuantileVsReference feeds a known sample population and
// compares every gated quantile to the exact sorted-order answer. The
// log-linear layout guarantees ≤1/64 relative bucket width, so the
// reported value must sit within ~2% of truth.
func TestHistQuantileVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 200000
	var h Hist
	vals := make([]int64, n)
	for i := range vals {
		// Log-uniform over ~[1µs, 1s] plus a heavy tail, shaped like
		// real latency data.
		v := int64(math.Exp(rng.Float64() * math.Log(1e6)))
		if rng.Float64() < 0.001 {
			v *= 50
		}
		vals[i] = v
		h.Observe(v)
	}
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := sorted[int(q*float64(n))]
		got := h.Quantile(q)
		if relErr := math.Abs(float64(got-want)) / float64(want); relErr > 0.02 {
			t.Errorf("q%g: hist %d vs exact %d (%.1f%% off, budget 2%%)",
				q, got, want, 100*relErr)
		}
	}
	if h.Quantile(0) != sorted[0] || h.Quantile(1) != sorted[n-1] {
		t.Errorf("q0/q1 must be the exact min/max: got %d/%d want %d/%d",
			h.Quantile(0), h.Quantile(1), sorted[0], sorted[n-1])
	}
	if h.Count() != n {
		t.Errorf("count %d, want %d", h.Count(), n)
	}
	var sum int64
	for _, v := range vals {
		sum += v
	}
	if want := float64(sum) / n; h.Mean() != want {
		t.Errorf("mean must be exact: %v vs %v", h.Mean(), want)
	}
}

// TestHistMerge: merging split halves must equal observing everything
// in one histogram.
func TestHistMerge(t *testing.T) {
	var a, b, all Hist
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		v := rng.Int63n(1 << 30)
		all.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Mean() != all.Mean() || a.Max() != all.Max() {
		t.Fatalf("merge mismatch: %s vs %s", a.String(), all.String())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Fatalf("q%g: merged %d vs direct %d", q, a.Quantile(q), all.Quantile(q))
		}
	}
}
