package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Op identifies one scheduled operation: its position in the arrival
// schedule and the session it executes on.
type Op struct {
	// Seq is the operation's index in arrival order.
	Seq int
	// Session is the session lane the operation runs on, in
	// [0, Schedule sessions).
	Session int
}

// Target is the system under test. Do issues one operation and blocks
// until its response; the runner measures completion against the
// operation's intended send time. Do must be safe for concurrent use.
type Target interface {
	Do(ctx context.Context, op Op) error
}

// TargetFunc adapts a function to Target.
type TargetFunc func(ctx context.Context, op Op) error

// Do implements Target.
func (f TargetFunc) Do(ctx context.Context, op Op) error { return f(ctx, op) }

// Schedule is a precomputed open-loop arrival plan: the intended send
// offset of every operation (from the run's start instant) and its
// session assignment. Precomputing removes RNG work, session picking,
// and float math from the send path, and makes runs with the same seed
// byte-for-byte reproducible.
type Schedule struct {
	// Offsets[i] is operation i's intended send time, relative to the
	// run start. Nondecreasing.
	Offsets []time.Duration
	// Session[i] is operation i's session index.
	Session []int
	// QPS is the offered rate the offsets were drawn for.
	QPS float64
}

// NewSchedule draws n Poisson arrivals at rate qps — exponential
// interarrival gaps, the standard open-loop model, so bursts occur
// naturally instead of the metronome cadence a fixed gap would give —
// and assigns each to a uniformly random session in [0, sessions).
// The seed fixes the whole plan.
func NewSchedule(n int, qps float64, sessions int, seed int64) (*Schedule, error) {
	if n <= 0 {
		return nil, errors.New("loadgen: schedule needs n > 0 operations")
	}
	if qps <= 0 {
		return nil, errors.New("loadgen: schedule needs qps > 0")
	}
	if sessions <= 0 {
		return nil, errors.New("loadgen: schedule needs sessions > 0")
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Schedule{
		Offsets: make([]time.Duration, n),
		Session: make([]int, n),
		QPS:     qps,
	}
	t := 0.0
	for i := 0; i < n; i++ {
		t += rng.ExpFloat64() / qps
		s.Offsets[i] = time.Duration(t * float64(time.Second))
		s.Session[i] = rng.Intn(sessions)
	}
	return s, nil
}

// Span is the schedule's intended duration: the last arrival's offset.
func (s *Schedule) Span() time.Duration {
	return s.Offsets[len(s.Offsets)-1]
}

// Config configures one open-loop run.
type Config struct {
	Target   Target
	Schedule *Schedule
	// Workers bounds concurrent in-flight operations. The schedule, not
	// the worker count, sets the offered rate: when all workers are
	// busy the next send stalls, and because latency is measured from
	// the INTENDED send time the stall is charged to the system under
	// test rather than hidden. Defaults to 64.
	Workers int
	// Warmup excludes the first n operations from the latency
	// histogram (they still execute and count toward errors).
	Warmup int
}

// Result is one run's outcome.
type Result struct {
	Ops    int // operations issued
	Errors int // operations whose Do returned a non-ctx error

	// Elapsed is first intended send to last completion.
	Elapsed time.Duration
	// OfferedQPS is the schedule's target rate; AchievedQPS is
	// completions over Elapsed.
	OfferedQPS  float64
	AchievedQPS float64
	// MaxLateness is the worst gap between an operation's intended and
	// actual send instant — how far the generator itself fell behind
	// schedule. Latencies already include it; it is reported so a run
	// where the GENERATOR was the bottleneck is identifiable.
	MaxLateness time.Duration

	// Latency holds completion-minus-intended-send for every
	// post-warmup operation, in microseconds.
	Latency Hist
}

// Run executes the schedule against the target. It returns when every
// operation has completed or ctx is canceled (the Result then covers
// the operations that did run). The first operation's intended send
// time is Run's start instant.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Target == nil || cfg.Schedule == nil || len(cfg.Schedule.Offsets) == 0 {
		return nil, errors.New("loadgen: run needs a target and a non-empty schedule")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 64
	}
	n := len(cfg.Schedule.Offsets)
	if workers > n {
		workers = n
	}

	var (
		next     atomic.Int64
		errs     atomic.Int64
		lateness atomic.Int64 // nanoseconds, max via CAS loop
		wg       sync.WaitGroup
	)
	perWorker := make([]Hist, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(hist *Hist) {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || ctx.Err() != nil {
					return
				}
				intended := start.Add(cfg.Schedule.Offsets[i])
				if wait := time.Until(intended); wait > 0 {
					timer := time.NewTimer(wait)
					select {
					case <-timer.C:
					case <-ctx.Done():
						timer.Stop()
						return
					}
				} else if late := -wait; late > 0 {
					for {
						cur := lateness.Load()
						if int64(late) <= cur || lateness.CompareAndSwap(cur, int64(late)) {
							break
						}
					}
				}
				err := cfg.Target.Do(ctx, Op{Seq: i, Session: cfg.Schedule.Session[i]})
				if err != nil {
					if ctx.Err() != nil {
						return
					}
					errs.Add(1)
				}
				if i >= cfg.Warmup {
					hist.Micros(time.Since(intended))
				}
			}
		}(&perWorker[w])
	}
	wg.Wait()

	res := &Result{
		Errors:      int(errs.Load()),
		Elapsed:     time.Since(start),
		OfferedQPS:  cfg.Schedule.QPS,
		MaxLateness: time.Duration(lateness.Load()),
	}
	issued := int(next.Load())
	if issued > n {
		issued = n
	}
	res.Ops = issued
	for w := range perWorker {
		res.Latency.Merge(&perWorker[w])
	}
	if res.Elapsed > 0 {
		res.AchievedQPS = float64(issued-res.Errors) / res.Elapsed.Seconds()
	}
	return res, ctx.Err()
}

// String summarizes the result for logs.
func (r *Result) String() string {
	return fmt.Sprintf("ops=%d errs=%d offered=%.0fqps achieved=%.0fqps late=%s lat[%s]",
		r.Ops, r.Errors, r.OfferedQPS, r.AchievedQPS, r.MaxLateness, r.Latency.String())
}
