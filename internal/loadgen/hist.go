// Package loadgen is an open-loop load generator for the enforcement
// proxy. Open-loop means the arrival schedule is fixed before the run:
// operations are sent at precomputed (Poisson) instants regardless of
// how fast the system under test answers, and every latency is
// measured from the operation's INTENDED send time. A stalled server
// therefore shows up as growing latency — the backlog counts against
// it — where a closed-loop driver would silently slow its own offered
// load and hide the stall (coordinated omission).
package loadgen

import (
	"fmt"
	"math/bits"
	"time"
)

// Sub-bucket resolution of the latency histogram: 2^histSubBits linear
// sub-buckets per power-of-two range, so recorded values are off by at
// most 1/2^histSubBits ≈ 1.6% — tight enough to gate p999 regressions,
// small enough (≈30 KB) to keep one histogram per run scale.
const histSubBits = 6

const histSub = 1 << histSubBits

// histBuckets spans non-negative int64: values 0..histSub-1 get exact
// buckets, then histSub sub-buckets per octave up to 2^63.
const histBuckets = histSub + (63-histSubBits)*histSub

// Hist is a log-linear histogram over every recorded sample (no
// window, no sampling): counts per bucket plus exact count/sum/min/max.
// Unlike obsv.Histogram — a fixed ring of recent samples for cheap
// server-side stats — Hist never drops an observation, which is what
// makes its p999 trustworthy at millions of operations. Not safe for
// concurrent use; the runner merges per-worker hists after the run.
type Hist struct {
	counts [histBuckets]uint64
	count  uint64
	sum    int64
	min    int64
	max    int64
}

// histIndex maps a value to its bucket. Negative values clamp to 0.
func histIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSub {
		return int(v)
	}
	exp := 63 - bits.LeadingZeros64(uint64(v))
	shift := exp - histSubBits
	// v>>shift is in [histSub, 2*histSub); subtracting histSub yields
	// the linear sub-bucket within the octave.
	return (exp-histSubBits)<<histSubBits + int(uint64(v)>>shift)
}

// histValue is the bucket's midpoint — the value a quantile reports.
func histValue(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	shift := idx/histSub - 1
	low := int64(histSub+idx%histSub) << shift
	return low + (int64(1)<<shift)/2
}

// Observe records one sample.
func (h *Hist) Observe(v int64) {
	h.counts[histIndex(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Merge folds other into h.
func (h *Hist) Merge(other *Hist) {
	if other.count == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// Count returns how many samples were recorded.
func (h *Hist) Count() uint64 { return h.count }

// Mean returns the exact sample mean (bucketing does not blur it).
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the largest recorded sample, exactly.
func (h *Hist) Max() int64 { return h.max }

// Quantile returns the value at quantile q in [0,1]: the midpoint of
// the bucket holding the ceil(q*count)-th smallest sample (the exact
// min/max for q=0/1). Zero when empty.
func (h *Hist) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			return histValue(i)
		}
	}
	return h.max
}

// String summarizes the histogram for logs.
func (h *Hist) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p90=%d p99=%d p999=%d max=%d",
		h.count, h.Mean(), h.Quantile(0.50), h.Quantile(0.90),
		h.Quantile(0.99), h.Quantile(0.999), h.max)
}

// Micros is a convenience for recording a duration in microseconds,
// the unit every latency field in this package uses.
func (h *Hist) Micros(d time.Duration) { h.Observe(d.Microseconds()) }
