package loadgen

import (
	"context"
	"testing"
	"time"

	"repro/internal/checker"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/proxy"
	"repro/internal/schema"
	"repro/internal/sqlvalue"
)

// proxyServer builds an enforcing proxy over the calendar-style test
// schema, listening on a loopback port.
func proxyServer(t *testing.T) (addr string) {
	t.Helper()
	s, err := schema.NewBuilder().
		Table("Users").
		NotNullCol("UId", sqlvalue.Int).
		NotNullCol("Name", sqlvalue.Text).
		PK("UId").Done().
		Table("Attendance").
		NotNullCol("UId", sqlvalue.Int).
		NotNullCol("EId", sqlvalue.Int).
		PK("UId", "EId").Done().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	db := engine.New(s)
	db.MustExec("INSERT INTO Users (UId, Name) VALUES (1, 'alice'), (2, 'bob'), (3, 'carol')")
	db.MustExec("INSERT INTO Attendance (UId, EId) VALUES (1, 2), (2, 3), (3, 2)")
	pol := policy.MustNew(s, map[string]string{
		"V1": "SELECT EId FROM Attendance WHERE UId = ?MyUId",
	})
	srv := proxy.NewServer(db, checker.New(pol), proxy.Enforce)
	addr, err = srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

// TestProxyTargetEndToEnd runs a small open-loop schedule against a
// live proxy: mass lane setup via pipelined hellos, then mixed
// allowed/blocked traffic. Blocks are decided outcomes, not errors.
func TestProxyTargetEndToEnd(t *testing.T) {
	addr := proxyServer(t)
	cl, err := proxy.Dial(addr, proxy.WithWindow(64))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	if err := cl.Hello(ctx, map[string]any{"MyUId": 1}); err != nil {
		t.Fatal(err)
	}

	const sessions = 200
	if err := SetupSessions(ctx, cl, sessions, func(i int) map[string]any {
		return map[string]any{"MyUId": i%3 + 1}
	}); err != nil {
		t.Fatal(err)
	}

	sched, err := NewSchedule(1500, 5000, sessions, 11)
	if err != nil {
		t.Fatal(err)
	}
	target := &ProxyTarget{
		Client: cl,
		Query: func(op Op) (string, []any) {
			if op.Seq%7 == 0 {
				// Another user's attendance: always blocked, never an error.
				return "SELECT EId FROM Attendance WHERE UId = ?", []any{(op.Session+1)%3 + 1}
			}
			return "SELECT EId FROM Attendance WHERE UId = ?", []any{op.Session%3 + 1}
		},
	}
	res, err := Run(ctx, Config{Target: target, Schedule: sched, Workers: 32, Warmup: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("run had %d errors: %s", res.Errors, res)
	}
	if res.Ops != 1500 {
		t.Fatalf("ops=%d, want 1500", res.Ops)
	}
	if res.Latency.Count() != 1400 {
		t.Fatalf("latency samples %d, want 1400", res.Latency.Count())
	}
	if p999 := res.Latency.Quantile(0.999); p999 <= 0 || time.Duration(p999)*time.Microsecond > time.Minute {
		t.Fatalf("implausible p999 %dµs", p999)
	}
}
