package loadgen

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/proxy"
)

// ProxyTarget drives the enforcement proxy over protocol v2: each
// schedule session maps to its own proxy lane (session i → SID i+1,
// keeping the connection's default lane 0 untouched), so the server
// checks different sessions concurrently while each session's history
// stays ordered.
type ProxyTarget struct {
	Client *proxy.Client
	// Query returns the SQL and args for an operation. It must be safe
	// for concurrent use.
	Query func(op Op) (sql string, args []any)
}

// Do implements Target. A policy block is a decided outcome — the
// proxy did its job — so it counts as success; only transport and
// server errors count against the run.
func (t *ProxyTarget) Do(ctx context.Context, op Op) error {
	sql, args := t.Query(op)
	_, err := t.Client.Lane(uint64(op.Session)+1).Query(ctx, sql, args...)
	if err != nil && !errors.Is(err, proxy.ErrBlocked) {
		return err
	}
	return nil
}

// SetupSessions keys n proxy sessions (lanes 1..n) with pipelined
// hellos, batching waits so setup proceeds at window depth — at a
// million sessions, serial round trips would dominate the whole run.
func SetupSessions(ctx context.Context, cl *proxy.Client, n int, attrs func(session int) map[string]any) error {
	pending := make([]*proxy.PendingOK, 0, 256)
	flush := func() error {
		for _, p := range pending {
			if err := p.Wait(ctx); err != nil {
				return err
			}
		}
		pending = pending[:0]
		return nil
	}
	for i := 0; i < n; i++ {
		p, err := cl.Lane(uint64(i)+1).HelloAsync(ctx, attrs(i))
		if err != nil {
			return fmt.Errorf("loadgen: hello session %d: %w", i, err)
		}
		if pending = append(pending, p); len(pending) == cap(pending) {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}
