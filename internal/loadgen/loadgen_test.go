package loadgen

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"
)

// TestScheduleExponential checks the arrival plan is actually Poisson:
// interarrival gaps with mean 1/qps and coefficient of variation ≈ 1
// (the exponential signature a fixed-gap metronome would fail), and
// sessions spread across the whole range.
func TestScheduleExponential(t *testing.T) {
	const (
		n        = 50000
		qps      = 12500.0
		sessions = 32
	)
	s, err := NewSchedule(n, qps, sessions, 1)
	if err != nil {
		t.Fatal(err)
	}
	gaps := make([]float64, n)
	prev := time.Duration(0)
	for i, off := range s.Offsets {
		if off < prev {
			t.Fatalf("offsets must be nondecreasing: %v after %v at %d", off, prev, i)
		}
		gaps[i] = (off - prev).Seconds()
		prev = off
	}
	var sum, sumSq float64
	for _, g := range gaps {
		sum += g
	}
	mean := sum / n
	for _, g := range gaps {
		sumSq += (g - mean) * (g - mean)
	}
	cv := math.Sqrt(sumSq/n) / mean

	if want := 1 / qps; math.Abs(mean-want)/want > 0.03 {
		t.Errorf("mean interarrival %.3gs, want %.3gs ±3%%", mean, want)
	}
	// Exponential gaps have CV exactly 1; a deterministic schedule has
	// CV 0 and a uniform-jitter one lands near 0.58.
	if cv < 0.9 || cv > 1.1 {
		t.Errorf("interarrival CV %.3f, want ≈1 (exponential)", cv)
	}

	seen := make(map[int]int)
	for _, sid := range s.Session {
		if sid < 0 || sid >= sessions {
			t.Fatalf("session %d out of range", sid)
		}
		seen[sid]++
	}
	if len(seen) != sessions {
		t.Errorf("only %d of %d sessions assigned", len(seen), sessions)
	}

	// Same seed, same plan — reproducibility is part of the contract.
	s2, _ := NewSchedule(n, qps, sessions, 1)
	for i := range s.Offsets {
		if s.Offsets[i] != s2.Offsets[i] || s.Session[i] != s2.Session[i] {
			t.Fatalf("seeded schedule not reproducible at %d", i)
		}
	}
}

// TestRunStallAccounting is the coordinated-omission test: one worker,
// a target that takes ~2ms per op, and a schedule that offers ops
// 20× faster than the target can absorb. A closed-loop driver would
// report ~2ms per op; the open-loop runner must charge each op its
// queueing delay from the INTENDED send time, so the backlog shows up
// as latencies far above service time, growing across the run.
func TestRunStallAccounting(t *testing.T) {
	const (
		n       = 100
		qps     = 10000.0 // intended span: 10ms
		service = 2 * time.Millisecond
	)
	s, err := NewSchedule(n, qps, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Config{
		Target: TargetFunc(func(ctx context.Context, op Op) error {
			time.Sleep(service)
			return nil
		}),
		Schedule: s,
		Workers:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != n || res.Errors != 0 {
		t.Fatalf("ops=%d errs=%d, want %d/0", res.Ops, res.Errors, n)
	}
	// The run takes ~n*service = 200ms against a 10ms intended span,
	// so the median op waited far beyond its own 2ms of service.
	if p50 := time.Duration(res.Latency.Quantile(0.5)) * time.Microsecond; p50 < 5*service {
		t.Errorf("p50 %v hides the backlog; must be ≫ service time %v", p50, service)
	}
	// Later ops wait longer than earlier ones — the tail must dwarf the
	// median, the signature of measuring from intended send times.
	p99 := res.Latency.Quantile(0.99)
	p50 := res.Latency.Quantile(0.50)
	if p99 < 3*p50/2 {
		t.Errorf("p99 %dµs vs p50 %dµs: backlog growth not visible", p99, p50)
	}
	if res.MaxLateness < service {
		t.Errorf("max lateness %v: the generator demonstrably fell behind, it must say so", res.MaxLateness)
	}
}

// TestRunKeepsPace: with enough workers and a fast target the runner
// must hold the offered rate and report small latencies.
func TestRunKeepsPace(t *testing.T) {
	const n = 2000
	s, err := NewSchedule(n, 20000, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	res, err := Run(context.Background(), Config{
		Target: TargetFunc(func(ctx context.Context, op Op) error {
			calls.Add(1)
			return nil
		}),
		Schedule: s,
		Workers:  16,
		Warmup:   100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != n {
		t.Fatalf("target saw %d ops, want %d", got, n)
	}
	if res.Latency.Count() != n-100 {
		t.Fatalf("histogram has %d samples, want %d post-warmup", res.Latency.Count(), n-100)
	}
	// Elapsed tracks the schedule span (~100ms), not some multiple;
	// generous slack for CI scheduling noise.
	if res.Elapsed > s.Span()+500*time.Millisecond {
		t.Errorf("elapsed %v far beyond intended span %v", res.Elapsed, s.Span())
	}
}

// TestRunErrorAndCancel: target errors count, ctx cancellation stops
// the run early and still returns the partial result.
func TestRunErrorAndCancel(t *testing.T) {
	s, err := NewSchedule(1000, 100000, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	res, err := Run(context.Background(), Config{
		Target: TargetFunc(func(ctx context.Context, op Op) error {
			if op.Seq%10 == 3 {
				return boom
			}
			return nil
		}),
		Schedule: s,
		Workers:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 100 {
		t.Errorf("errors=%d, want 100", res.Errors)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var seen atomic.Int64
	res, err = Run(ctx, Config{
		Target: TargetFunc(func(ctx context.Context, op Op) error {
			if seen.Add(1) == 50 {
				cancel()
			}
			return nil
		}),
		Schedule: s,
		Workers:  4,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res == nil || res.Ops >= 1000 {
		t.Fatalf("cancel must stop the run early: %+v", res)
	}
}
