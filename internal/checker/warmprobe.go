package checker

// The warm probe: a front-cache-only decide that either answers from
// the statement-identity front cache or reports a miss without doing
// any cold work. The proxy's inline fast path (internal/proxy
// server.go) uses it to decide ON THE READ GOROUTINE whether a request
// can be executed inline — only a front-tier hit qualifies, because
// only then is the decision O(map probe) and guaranteed not to stall
// the connection's reader behind binding, translation, or an embedding
// search.
//
// The probe replicates stageFront's key computation exactly (rendered
// session signature + NUL + rendered args, interned; frontKey over the
// pinned active epoch and the shared statement pointer) but uses a
// READ-ONLY intern lookup: front-cache keys are always interned when
// stored, so a signature absent from the intern table cannot match any
// front entry — the probe can miss without inserting, which keeps
// probe misses allocation-free and the intern table free of
// cold-signature churn.

import (
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
)

// internGet is the read-only half of intern: it returns the canonical
// string for the scratch bytes iff one already exists. The map index
// by converted []byte is no-copy, so a lookup allocates nothing.
func (c *Checker) internGet(b []byte) (string, bool) {
	c.strMu.RLock()
	s, ok := c.strs[string(b)]
	c.strMu.RUnlock()
	return s, ok
}

// CheckWarmBorrowed probes the front cache for a concrete check and
// reports whether it answered. A hit is a complete decision under the
// borrowed-Views contract of CheckBorrowed (the Views slice may alias
// cache storage; treat it as read-only) and is counted exactly like a
// front-tier hit through the full path (decisions, allowed/blocked,
// cache and front-hit counters). A miss performs NO cold work, bumps
// NO counters — the caller is expected to re-issue the check through
// CheckBorrowed, which counts the miss itself — and allocates nothing.
func (c *Checker) CheckWarmBorrowed(sel *sqlparser.SelectStmt, args sqlparser.Args, session map[string]sqlvalue.Value) (Decision, bool) {
	if !(c.opts.UseCache && c.opts.UseHistory) {
		return Decision{}, false
	}
	ver := c.vers.Load().active
	st := decidePool.Get().(*decideState)
	st.c = c
	st.session = session

	sess := st.sessionSig()
	buf := append(st.keyBuf[:0], sess...)
	buf = append(buf, 0)
	buf, st.names = appendArgsSig(buf, st.names, args)
	st.keyBuf = buf
	sig, ok := c.internGet(buf)
	if !ok {
		st.release()
		return Decision{}, false
	}
	d, ok := c.frontGet(frontKey{epoch: ver.epoch, sel: sel, sig: sig})
	st.release()
	if !ok {
		return Decision{}, false
	}
	d.FromCache = true
	d.Tier = TierFront
	d.Epoch = ver.epoch
	c.mDecisions.Inc()
	if d.Allowed {
		c.mAllowed.Inc()
	} else {
		c.mBlocked.Inc()
	}
	c.mCacheHits.Inc()
	c.mFrontHit.Inc()
	return d, true
}
