package checker

import (
	"context"
	"sync"
	"testing"

	"repro/internal/sqlparser"
)

// TestDecisionAliasStress is the pooled-state aliasing audit as a
// test. decide() recycles its scratch state through a sync.Pool and
// the warm caches hand back Decisions by value, so two invariants
// must hold under concurrency:
//
//  1. A Decision from the safe API (Check/CheckSQL) owns its Views
//     slice outright — callers may overwrite or append to it while
//     other goroutines hit the same cache entries and the pool
//     recycles scratch underneath.
//  2. No amount of such mutation may leak back into the caches: later
//     hits must see the pristine view list.
//
// Run under -race (make ci does), this also catches any scratch slice
// that escaped into a cached Decision: the mutating writes here would
// race with the pool's next user.
func TestDecisionAliasStress(t *testing.T) {
	c, tr := warmChecker(t)
	ctx := context.Background()
	const factSQL = "SELECT * FROM Events WHERE EId=2"

	// Baselines: the pristine view lists for a front-tier and a
	// template-tier decision.
	front, err := c.CheckSQL(ctx, warmSQL, sqlparser.PositionalArgs(1), session(1), tr)
	if err != nil || !front.Allowed {
		t.Fatalf("front prime: %+v %v", front, err)
	}
	tmpl, err := c.CheckSQL(ctx, factSQL, sqlparser.NoArgs, session(1), tr)
	if err != nil || !tmpl.Allowed {
		t.Fatalf("template prime: %+v %v", tmpl, err)
	}
	wantFront := append([]string(nil), front.Views...)
	wantTmpl := append([]string(nil), tmpl.Views...)
	if len(wantFront) == 0 || len(wantTmpl) == 0 {
		t.Fatalf("primes must cover through views: front=%v tmpl=%v", wantFront, wantTmpl)
	}

	var wg sync.WaitGroup
	fail := make(chan string, 16)
	report := func(msg string) {
		select {
		case fail <- msg:
		default:
		}
	}
	// Mutators: hammer the warm tiers through the safe API and deface
	// every returned Decision.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			args := sqlparser.PositionalArgs(1)
			sess := session(1)
			for i := 0; i < 1500; i++ {
				sql := warmSQL
				if i%2 == g%2 {
					sql = factSQL
					args = sqlparser.NoArgs
				} else {
					args = sqlparser.PositionalArgs(1)
				}
				d, err := c.CheckSQL(ctx, sql, args, sess, tr)
				if err != nil || !d.Allowed {
					report("mutator: check failed")
					return
				}
				for j := range d.Views {
					d.Views[j] = "DEFACED"
				}
				d.Views = append(d.Views, "EXTRA")
				d.Reason = "DEFACED"
			}
		}(g)
	}
	// Churners: fresh principals force full decide runs, recycling
	// pooled decideState concurrently with the mutators above.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				uid := int64(1000 + g*1000 + i)
				d, err := c.CheckSQL(ctx, warmSQL, sqlparser.PositionalArgs(uid), session(uid), tr)
				if err != nil || !d.Allowed {
					report("churner: check failed")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}

	// After all that defacing, fresh hits must return pristine views.
	for _, tc := range []struct {
		sql  string
		args sqlparser.Args
		want []string
	}{
		{warmSQL, sqlparser.PositionalArgs(1), wantFront},
		{factSQL, sqlparser.NoArgs, wantTmpl},
	} {
		d, err := c.CheckSQL(ctx, tc.sql, tc.args, session(1), tr)
		if err != nil || !d.Allowed {
			t.Fatalf("post-stress %s: %+v %v", tc.sql, d, err)
		}
		if len(d.Views) != len(tc.want) {
			t.Fatalf("post-stress %s: views %v, want %v", tc.sql, d.Views, tc.want)
		}
		for i := range d.Views {
			if d.Views[i] != tc.want[i] {
				t.Fatalf("cache poisoned by caller mutation: %s views %v, want %v", tc.sql, d.Views, tc.want)
			}
		}
	}
}
