package checker

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obsv"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

func exampleTrace() *trace.Trace {
	tr := &trace.Trace{}
	q1 := sqlparser.MustParseSelect("SELECT 1 FROM Attendance WHERE UId=1 AND EId=2")
	tr.Append(trace.Entry{
		SQL: q1.SQL(), Stmt: q1, Args: sqlparser.NoArgs,
		Columns: []string{"1"},
		Rows:    [][]sqlvalue.Value{{sqlvalue.NewInt(1)}},
	})
	return tr
}

// TestDecisionTiers pins which cache tier answers as the same check
// repeats: cold first, then the statement-identity front cache; a new
// principal (same template) rides the history-free tier; and a
// trace-dependent decision repeats out of the full template cache.
func TestDecisionTiers(t *testing.T) {
	c := New(calendarPolicy(t))
	tr := exampleTrace()
	ctx := context.Background()

	// Cold decision: no tier.
	d1, err := c.CheckSQL(ctx, "SELECT EId FROM Attendance WHERE UId = ?",
		sqlparser.PositionalArgs(1), session(1), tr)
	if err != nil {
		t.Fatal(err)
	}
	if !d1.Allowed || d1.FromCache || d1.Tier != "" {
		t.Fatalf("cold: %+v", d1)
	}

	// Identical concrete check: front tier.
	d2, err := c.CheckSQL(ctx, "SELECT EId FROM Attendance WHERE UId = ?",
		sqlparser.PositionalArgs(1), session(1), tr)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.FromCache || d2.Tier != TierFront {
		t.Fatalf("repeat: want front-tier hit, got %+v", d2)
	}

	// New principal, same template: the front key misses but the
	// history-free template answers.
	d3, err := c.CheckSQL(ctx, "SELECT EId FROM Attendance WHERE UId = ?",
		sqlparser.PositionalArgs(7), session(7), tr)
	if err != nil {
		t.Fatal(err)
	}
	if !d3.FromCache || d3.Tier != TierHistFree {
		t.Fatalf("new principal: want histfree-tier hit, got %+v", d3)
	}

	// Trace-dependent decision (Example 2.1's Q2): cold, then the full
	// template cache answers the repeat.
	d4 := mustCheck(t, c, "SELECT * FROM Events WHERE EId=2", session(1), tr)
	if !d4.Allowed || d4.Tier != "" {
		t.Fatalf("Q2 with history: %+v", d4)
	}
	d5 := mustCheck(t, c, "SELECT * FROM Events WHERE EId=2", session(1), tr)
	if !d5.FromCache || d5.Tier != TierTemplate {
		t.Fatalf("Q2 repeat: want template-tier hit, got %+v", d5)
	}

	// The tier counters agree with what we observed.
	reg := c.Metrics()
	if got := reg.Counter("checker.front.hit").Value(); got < 1 {
		t.Errorf("front.hit = %d, want >= 1", got)
	}
	if got := reg.Counter("checker.histfree.hit").Value(); got < 1 {
		t.Errorf("histfree.hit = %d, want >= 1", got)
	}
	if got := reg.Counter("checker.template.hit").Value(); got < 1 {
		t.Errorf("template.hit = %d, want >= 1", got)
	}
}

// TestPipelineMetricsRecorded verifies the staged pipeline reports
// per-stage instruments into the checker's registry, and that parse
// time from CheckSQL lands there too.
func TestPipelineMetricsRecorded(t *testing.T) {
	c := New(calendarPolicy(t))
	tr := exampleTrace()
	for i := 0; i < 3; i++ {
		mustCheck(t, c, "SELECT * FROM Events WHERE EId=2", session(1), tr)
	}
	snap := c.Metrics().Snapshot()
	for _, key := range []string{
		"pipeline.decide.front.runs",
		"pipeline.decide.bind.micros",
		"pipeline.decide.histfree.runs",
		"pipeline.decide.facts.micros",
		"pipeline.decide.template.runs",
		"pipeline.decide.cover.micros",
		"pipeline.decide.total.micros",
		"checker.parse.micros",
		"checker.decisions",
	} {
		if _, ok := snap[key]; !ok {
			t.Errorf("registry snapshot missing %q", key)
		}
	}
	if got := c.Metrics().Counter("pipeline.decide.front.runs").Value(); got != 3 {
		t.Errorf("front.runs = %d, want 3", got)
	}
	// Cover ran for the cold decision only; the repeats hit the
	// template tier before it.
	if got := c.Metrics().Counter("pipeline.decide.cover.runs").Value(); got != 1 {
		t.Errorf("cover.runs = %d, want 1", got)
	}
	// Stage latency histograms are sampled (pipeline.SampleEvery), so
	// only the first of these three runs is guaranteed recorded.
	if hs := c.Metrics().Histogram("pipeline.decide.total.micros").Snapshot(); hs.Count < 1 {
		t.Errorf("total.micros count = %d, want >= 1", hs.Count)
	}
}

// TestSpanSetBreakdown verifies a caller that installs an
// obsv.SpanSet gets the per-stage breakdown for its one request —
// what the proxy's slow-decision log attaches.
func TestSpanSetBreakdown(t *testing.T) {
	c := New(calendarPolicy(t))
	tr := exampleTrace()
	ctx, ss := obsv.WithSpanSet(context.Background())
	if _, err := c.CheckSQL(ctx, "SELECT * FROM Events WHERE EId=2", sqlparser.NoArgs, session(1), tr); err != nil {
		t.Fatal(err)
	}
	m := ss.Micros()
	for _, stage := range []string{"parse", "front", "bind", "facts", "cover", "verdict"} {
		if _, ok := m[stage]; !ok {
			t.Errorf("span breakdown missing stage %q: %v", stage, m)
		}
	}
}

// TestDisabledMetricsSameDecisions pins that an obsv.Disabled()
// checker decides identically (the no-op-metrics build used by the
// overhead guard) — only Stats() goes dark.
func TestDisabledMetricsSameDecisions(t *testing.T) {
	opts := DefaultOptions()
	opts.Metrics = obsv.Disabled()
	c := NewWithOptions(calendarPolicy(t), opts)
	tr := exampleTrace()
	d := mustCheck(t, c, "SELECT * FROM Events WHERE EId=2", session(1), tr)
	if !d.Allowed {
		t.Fatalf("decision must not depend on metrics: %s", d.Reason)
	}
	d = mustCheck(t, c, "SELECT * FROM Events WHERE EId=2", session(1), tr)
	if !d.FromCache || d.Tier != TierTemplate {
		t.Fatalf("caching must not depend on metrics: %+v", d)
	}
	if st := c.Stats(); st.Decisions != 0 {
		t.Fatalf("disabled metrics must read zero decisions, got %+v", st)
	}
	if len(c.Metrics().Snapshot()) != 0 {
		t.Fatal("disabled registry must snapshot empty")
	}
}

// TestResetCacheRaceAllTiers hammers ResetCache (policy-snapshot
// republication plus wholesale cache drops) against concurrent
// decisions exercising all three cache tiers at once: the
// statement-identity front cache (identical repeats), the
// history-free template tier (rotating principals over one shape),
// and the sharded full-template cache (trace-dependent decisions).
// Run under -race in CI.
func TestResetCacheRaceAllTiers(t *testing.T) {
	c := New(calendarPolicy(t))
	tr := exampleTrace()
	stop := make(chan struct{})
	var resetter sync.WaitGroup
	resetter.Add(1)
	go func() {
		defer resetter.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.ResetCache()
				time.Sleep(time.Microsecond)
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	// Front tier: identical concrete checks (same statement pointer,
	// principal, args) repeat into the front cache.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			d, err := c.CheckSQL(context.Background(), "SELECT EId FROM Attendance WHERE UId = ?",
				sqlparser.PositionalArgs(1), session(1), tr)
			if err != nil {
				errs <- err
				return
			}
			if !d.Allowed {
				errs <- fmt.Errorf("front tier: own attendance blocked: %s", d.Reason)
				return
			}
		}
	}()
	// History-free tier: rotating principals share one template, so
	// each fresh (principal, args) front-misses into the history-free
	// template entry.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			uid := int64(i%16 + 1)
			d, err := c.CheckSQL(context.Background(), "SELECT EId FROM Attendance WHERE UId = ?",
				sqlparser.PositionalArgs(uid), session(uid), tr)
			if err != nil {
				errs <- err
				return
			}
			if !d.Allowed {
				errs <- fmt.Errorf("histfree tier: uid %d blocked: %s", uid, d.Reason)
				return
			}
		}
	}()
	// Full-template tier: a trace-dependent decision (allowed only via
	// history facts) keys on the generalized facts.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			d, err := c.CheckSQL(context.Background(), "SELECT * FROM Events WHERE EId=2",
				sqlparser.NoArgs, session(1), tr)
			if err != nil {
				errs <- err
				return
			}
			if !d.Allowed {
				errs <- fmt.Errorf("template tier: Q2 with history blocked: %s", d.Reason)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	resetter.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
