//go:build race

package checker

// raceEnabled reports whether this test binary was built with -race;
// timing guards skip there (the detector inflates atomic costs).
const raceEnabled = true
