package checker

import (
	"context"
	"strings"
	"testing"

	"repro/internal/policy"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

func calendarSchema(t testing.TB) *schema.Schema {
	t.Helper()
	s, err := schema.NewBuilder().
		Table("Users").
		NotNullCol("UId", sqlvalue.Int).
		NotNullCol("Name", sqlvalue.Text).
		PK("UId").Done().
		Table("Events").
		OpaqueCol("EId", sqlvalue.Int).
		NotNullCol("Title", sqlvalue.Text).
		Col("Notes", sqlvalue.Text).
		PK("EId").Done().
		Table("Attendance").
		NotNullCol("UId", sqlvalue.Int).
		NotNullCol("EId", sqlvalue.Int).
		PK("UId", "EId").Done().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// calendarPolicy is the paper's Example 2.1 policy: V1 and V2.
func calendarPolicy(t testing.TB) *policy.Policy {
	t.Helper()
	s := calendarSchema(t)
	return policy.MustNew(s, map[string]string{
		"V1": "SELECT EId FROM Attendance WHERE UId = ?MyUId",
		"V2": "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?MyUId",
	})
}

func session(uid int64) map[string]sqlvalue.Value {
	return map[string]sqlvalue.Value{"MyUId": sqlvalue.NewInt(uid)}
}

func mustCheck(t *testing.T, c *Checker, sql string, sess map[string]sqlvalue.Value, tr *trace.Trace) Decision {
	t.Helper()
	d, err := c.CheckSQL(context.Background(), sql, sqlparser.NoArgs, sess, tr)
	if err != nil {
		t.Fatalf("check %q: %v", sql, err)
	}
	return d
}

func TestExample21Q1AllowedAlone(t *testing.T) {
	c := New(calendarPolicy(t))
	d := mustCheck(t, c, "SELECT 1 FROM Attendance WHERE UId=1 AND EId=2", session(1), nil)
	if !d.Allowed {
		t.Fatalf("Q1 should be allowed by V1: %s", d.Reason)
	}
}

func TestExample21Q2BlockedAlone(t *testing.T) {
	c := New(calendarPolicy(t))
	d := mustCheck(t, c, "SELECT * FROM Events WHERE EId=2", session(1), nil)
	if d.Allowed {
		t.Fatal("Q2 alone must be blocked — nothing ties event 2 to the current user")
	}
}

func TestExample21Q2AllowedWithHistory(t *testing.T) {
	c := New(calendarPolicy(t))
	tr := &trace.Trace{}
	q1 := sqlparser.MustParseSelect("SELECT 1 FROM Attendance WHERE UId=1 AND EId=2")
	tr.Append(trace.Entry{
		SQL: q1.SQL(), Stmt: q1, Args: sqlparser.NoArgs,
		Columns: []string{"1"},
		Rows:    [][]sqlvalue.Value{{sqlvalue.NewInt(1)}},
	})
	d := mustCheck(t, c, "SELECT * FROM Events WHERE EId=2", session(1), tr)
	if !d.Allowed {
		t.Fatalf("Q2 with Q1 history must be allowed (paper Example 2.1): %s", d.Reason)
	}
	if len(d.Views) == 0 || d.Views[0] != "V2" {
		t.Errorf("expected V2 to cover Q2, got %v", d.Views)
	}
}

func TestHistoryAblationBlocksQ2(t *testing.T) {
	opts := DefaultOptions()
	opts.UseHistory = false
	c := NewWithOptions(calendarPolicy(t), opts)
	tr := &trace.Trace{}
	q1 := sqlparser.MustParseSelect("SELECT 1 FROM Attendance WHERE UId=1 AND EId=2")
	tr.Append(trace.Entry{
		SQL: q1.SQL(), Stmt: q1, Args: sqlparser.NoArgs,
		Columns: []string{"1"},
		Rows:    [][]sqlvalue.Value{{sqlvalue.NewInt(1)}},
	})
	d := mustCheck(t, c, "SELECT * FROM Events WHERE EId=2", session(1), tr)
	if d.Allowed {
		t.Fatal("with history disabled Q2 must be blocked")
	}
}

func TestEmptyResultMakesFollowupVacuouslyAllowed(t *testing.T) {
	c := New(calendarPolicy(t))
	tr := &trace.Trace{}
	// Probe returned empty: user 1 does NOT attend event 9.
	q1 := sqlparser.MustParseSelect("SELECT 1 FROM Attendance WHERE UId=1 AND EId=9")
	tr.Append(trace.Entry{SQL: q1.SQL(), Stmt: q1, Args: sqlparser.NoArgs, Columns: []string{"1"}})
	// A join query that requires that very attendance row returns
	// nothing, hence reveals nothing.
	d := mustCheck(t, c,
		"SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = 1 AND a.EId = 9",
		session(1), tr)
	if !d.Allowed {
		t.Fatalf("vacuous query should be allowed: %s", d.Reason)
	}
}

func TestViewQueriesThemselvesAllowed(t *testing.T) {
	c := New(calendarPolicy(t))
	for _, sql := range []string{
		"SELECT EId FROM Attendance WHERE UId = 1",
		"SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = 1",
	} {
		d := mustCheck(t, c, sql, session(1), nil)
		if !d.Allowed {
			t.Errorf("view instantiation %q should be allowed: %s", sql, d.Reason)
		}
	}
}

func TestOtherUsersDataBlocked(t *testing.T) {
	c := New(calendarPolicy(t))
	// Session user is 1; asking for user 2's attendance must block.
	d := mustCheck(t, c, "SELECT EId FROM Attendance WHERE UId = 2", session(1), nil)
	if d.Allowed {
		t.Fatal("another user's attendance must be blocked")
	}
	// And the whole table, too.
	d = mustCheck(t, c, "SELECT * FROM Attendance", session(1), nil)
	if d.Allowed {
		t.Fatal("full table scan must be blocked")
	}
}

func TestProjectionOfViewAllowed(t *testing.T) {
	c := New(calendarPolicy(t))
	// Selecting a subset of V2's columns is still covered.
	d := mustCheck(t, c,
		"SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = 1",
		session(1), nil)
	if !d.Allowed {
		t.Fatalf("projection of V2 should be allowed: %s", d.Reason)
	}
}

func TestNarrowedViewAllowed(t *testing.T) {
	c := New(calendarPolicy(t))
	d := mustCheck(t, c,
		"SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = 1 AND e.Title = 'standup'",
		session(1), nil)
	if !d.Allowed {
		t.Fatalf("narrowing a view with a visible-column filter is allowed: %s", d.Reason)
	}
}

func TestInvisibleColumnFilterBlocked(t *testing.T) {
	s := calendarSchema(t)
	// Policy exposing only titles.
	p := policy.MustNew(s, map[string]string{
		"VT": "SELECT Title FROM Events",
	})
	c := New(p)
	// Filtering on the hidden EId must be blocked: the view's answer
	// does not determine which title belongs to event 5.
	d := mustCheck(t, c, "SELECT Title FROM Events WHERE EId = 5", session(1), nil)
	if d.Allowed {
		t.Fatal("filter on invisible column must be blocked")
	}
	// But the plain title listing is allowed.
	d = mustCheck(t, c, "SELECT Title FROM Events", session(1), nil)
	if !d.Allowed {
		t.Fatalf("title listing should be allowed: %s", d.Reason)
	}
}

func TestDecisionTemplatesGeneralizeAcrossUsers(t *testing.T) {
	c := New(calendarPolicy(t))
	d1 := mustCheck(t, c, "SELECT EId FROM Attendance WHERE UId = 1", session(1), nil)
	if !d1.Allowed || d1.FromCache {
		t.Fatalf("first decision: %+v", d1)
	}
	// Same shape for user 2 must hit the template cache.
	d2 := mustCheck(t, c, "SELECT EId FROM Attendance WHERE UId = 2", session(2), nil)
	if !d2.Allowed || !d2.FromCache {
		t.Fatalf("second decision should be a cache hit: %+v", d2)
	}
	st := c.Stats()
	if st.CacheHits != 1 || st.Decisions != 2 {
		t.Errorf("stats: %+v", st)
	}
}

func TestCacheDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.UseCache = false
	c := NewWithOptions(calendarPolicy(t), opts)
	mustCheck(t, c, "SELECT EId FROM Attendance WHERE UId = 1", session(1), nil)
	d := mustCheck(t, c, "SELECT EId FROM Attendance WHERE UId = 1", session(1), nil)
	if d.FromCache {
		t.Fatal("cache disabled but decision came from cache")
	}
}

func TestNonCQBlockedConservatively(t *testing.T) {
	c := New(calendarPolicy(t))
	d := mustCheck(t, c, "SELECT Title FROM Events WHERE Notes IS NULL", session(1), nil)
	if d.Allowed {
		t.Fatal("outside-fragment query must be blocked")
	}
	if !strings.Contains(d.Reason, "conservatively") {
		t.Errorf("reason: %s", d.Reason)
	}
}

func TestAggregateOverViewAllowed(t *testing.T) {
	c := New(calendarPolicy(t))
	// COUNT over the user's own attendance: covered by V1 (the
	// aggregate reveals no more than the rows themselves).
	d := mustCheck(t, c, "SELECT COUNT(*) FROM Attendance WHERE UId = 1", session(1), nil)
	if !d.Allowed {
		t.Fatalf("count over own attendance should be allowed: %s", d.Reason)
	}
	// COUNT over everyone's attendance: blocked.
	d = mustCheck(t, c, "SELECT COUNT(*) FROM Attendance", session(1), nil)
	if d.Allowed {
		t.Fatal("global count must be blocked")
	}
}

func TestConstantOnlyQueryAllowed(t *testing.T) {
	c := New(calendarPolicy(t))
	d := mustCheck(t, c, "SELECT 1", session(1), nil)
	if !d.Allowed {
		t.Fatalf("constant query reveals nothing: %s", d.Reason)
	}
}

func TestUnsatisfiableQueryAllowed(t *testing.T) {
	c := New(calendarPolicy(t))
	d := mustCheck(t, c, "SELECT EId FROM Attendance WHERE UId = 1 AND UId = 2", session(1), nil)
	if !d.Allowed {
		t.Fatalf("unsatisfiable query reveals nothing: %s", d.Reason)
	}
}

func TestJoinAcrossTwoViews(t *testing.T) {
	s := calendarSchema(t)
	p := policy.MustNew(s, map[string]string{
		"VA": "SELECT UId, EId FROM Attendance WHERE UId = ?MyUId",
		"VE": "SELECT EId, Title FROM Events",
	})
	c := New(p)
	// Join of the two views on the shared, visible EId column.
	d := mustCheck(t, c,
		"SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = 1",
		session(1), nil)
	if !d.Allowed {
		t.Fatalf("join across views with visible join column should be allowed: %s", d.Reason)
	}
	if len(d.Views) != 2 {
		t.Errorf("expected two covering views, got %v", d.Views)
	}
}

func TestJoinOnInvisibleColumnBlocked(t *testing.T) {
	s := calendarSchema(t)
	p := policy.MustNew(s, map[string]string{
		"VA": "SELECT UId FROM Attendance WHERE UId = ?MyUId", // EId hidden
		"VE": "SELECT EId, Title FROM Events",
	})
	c := New(p)
	d := mustCheck(t, c,
		"SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = 1",
		session(1), nil)
	if d.Allowed {
		t.Fatal("join on a column hidden by VA must be blocked")
	}
}

func TestPositionalArgsChecked(t *testing.T) {
	c := New(calendarPolicy(t))
	d, err := c.CheckSQL(context.Background(), "SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?",
		sqlparser.PositionalArgs(1, 2), session(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Allowed {
		t.Fatalf("parameterized Q1 should be allowed: %s", d.Reason)
	}
}

func TestComparisonPolicyCoverage(t *testing.T) {
	s, err := schema.NewBuilder().
		Table("Employees").
		NotNullCol("Id", sqlvalue.Int).
		NotNullCol("Name", sqlvalue.Text).
		NotNullCol("Age", sqlvalue.Int).
		PK("Id").Done().Build()
	if err != nil {
		t.Fatal(err)
	}
	p := policy.MustNew(s, map[string]string{
		"VAdults": "SELECT Id, Name, Age FROM Employees WHERE Age >= 18",
	})
	c := New(p)
	d := mustCheck(t, c, "SELECT Name FROM Employees WHERE Age >= 60", nil, nil)
	if !d.Allowed {
		t.Fatalf("Age>=60 is inside VAdults (Age>=18): %s", d.Reason)
	}
	d = mustCheck(t, c, "SELECT Name FROM Employees WHERE Age >= 10", nil, nil)
	if d.Allowed {
		t.Fatal("Age>=10 exceeds VAdults and must be blocked")
	}
	d = mustCheck(t, c, "SELECT Name FROM Employees", nil, nil)
	if d.Allowed {
		t.Fatal("unrestricted scan must be blocked")
	}
}

func TestStatsCounts(t *testing.T) {
	c := New(calendarPolicy(t))
	mustCheck(t, c, "SELECT EId FROM Attendance WHERE UId = 1", session(1), nil)
	mustCheck(t, c, "SELECT * FROM Attendance", session(1), nil)
	st := c.Stats()
	if st.Decisions != 2 || st.Allowed != 1 || st.Blocked != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestResetCacheAfterPolicyEdit(t *testing.T) {
	p := calendarPolicy(t)
	c := New(p)
	d := mustCheck(t, c, "SELECT Title FROM Events WHERE EId = 7", session(1), nil)
	if d.Allowed {
		t.Fatal("should block before policy edit")
	}
	if err := p.Add("VAllEvents", "SELECT * FROM Events"); err != nil {
		t.Fatal(err)
	}
	c.ResetCache()
	d = mustCheck(t, c, "SELECT Title FROM Events WHERE EId = 7", session(1), nil)
	if !d.Allowed {
		t.Fatalf("after adding VAllEvents the query should pass: %s", d.Reason)
	}
}

func TestUnionQueryAllDisjunctsMustBeCovered(t *testing.T) {
	c := New(calendarPolicy(t))
	// IN-list splits into disjuncts; one of them (UId=2) is not
	// covered for session user 1.
	d := mustCheck(t, c, "SELECT EId FROM Attendance WHERE UId IN (1, 2)", session(1), nil)
	if d.Allowed {
		t.Fatal("partially covered union must be blocked")
	}
	d = mustCheck(t, c, "SELECT EId FROM Attendance WHERE UId IN (1)", session(1), nil)
	if !d.Allowed {
		t.Fatalf("single-branch IN covered by V1: %s", d.Reason)
	}
}

func TestUnionQueryCoverage(t *testing.T) {
	c := New(calendarPolicy(t))
	// A UNION whose arms are each covered is allowed...
	d := mustCheck(t, c,
		"SELECT EId FROM Attendance WHERE UId = 1 UNION SELECT EId FROM Attendance WHERE UId = 1 AND EId = 3",
		session(1), nil)
	if !d.Allowed {
		t.Fatalf("covered union should be allowed: %s", d.Reason)
	}
	// ...and blocked when any arm is not.
	d = mustCheck(t, c,
		"SELECT EId FROM Attendance WHERE UId = 1 UNION SELECT EId FROM Attendance WHERE UId = 2",
		session(1), nil)
	if d.Allowed {
		t.Fatal("union with an uncovered arm must be blocked")
	}
}
