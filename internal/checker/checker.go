// Package checker implements Blockaid-style compliance checking: a
// query is allowed iff its answer is guaranteed to reveal no more
// information than the policy views do, given the history of prior
// queries and their results (the paper's §2.2). Queries are allowed
// as-is or blocked outright — never modified.
//
// The decision procedure works in the conjunctive fragment: the query
// is covered if each of its atoms either matches a row already known
// from the trace, or is the image of a policy-view embedding whose
// visible (head) columns expose every output, join, and
// selection-relevant position. This condition is sound — it implies
// the answer is determined by view contents plus trace — and complete
// enough to decide all of the paper's examples; queries outside the
// fragment are conservatively blocked.
//
// The decide path is an explicit staged pipeline (stages.go, built on
// internal/pipeline): front-cache probe → bind/translate →
// history-free template probe → fact derivation → template-cache
// probe → policy coverage → verdict. Each stage is named, and every
// stage reports run counts and latency into the checker's
// obsv.Registry, so per-phase time (the Blockaid-style parse / cache
// probe / solver breakdown) is observable at runtime rather than
// reconstructed from ad-hoc benchmarks. The coverage algorithm itself
// lives in cover.go.
//
// Decisions are memoized as parameter-generic templates (Blockaid's
// "decision cache"): constants equal to session attributes are
// abstracted to parameters, so one cold decision serves every
// principal issuing the same query shape. The template cache is
// sharded and bounded (see cache.go) so concurrent sessions with warm
// templates never serialize on one mutex, and the session-parameter
// generalization of trace facts is memoized so long histories don't
// pay repeated rewriting.
//
// A Checker is safe for concurrent use: policy versions (compiled
// plan plus monotone epoch; version.go) are published through an
// atomic pointer, so ResetCache / StagePolicy / Promote / Rollback
// can swap them while checks are in flight — each decision pins the
// version it started with — and all counters are atomic (obsv
// instruments). Every cache key embeds the deciding epoch, so a
// policy swap invalidates warm state by epoch bump rather than cache
// teardown, and a staged candidate dual-decides via CheckShadow
// (shadow.go).
package checker

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/acerr"
	"repro/internal/cq"
	"repro/internal/obsv"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

// Cache-tier labels reported in Decision.Tier and the proxy's
// slow-decision log.
const (
	// TierFront marks a statement-identity front-cache hit.
	TierFront = "front"
	// TierHistFree marks a history-free decision-template hit.
	TierHistFree = "histfree"
	// TierTemplate marks a full (trace-keyed) decision-template hit.
	TierTemplate = "template"
)

// Decision is the outcome of a compliance check.
type Decision struct {
	Allowed bool
	// Reason explains the outcome in one line (covering views, the
	// uncovered atom, or the fragment violation).
	Reason string
	// Views lists the policy views used to cover the query.
	Views []string
	// FromCache reports a decision-template hit.
	FromCache bool
	// Tier names the cache tier that answered ("front", "histfree",
	// "template"); empty for a cold decision.
	Tier string
	// Epoch identifies the policy version that decided (version.go):
	// the active version's epoch for Check*, the candidate's for the
	// shadow half of CheckShadow.
	Epoch uint64
}

// Stats counts checker activity. It is assembled from the checker's
// obsv instruments; with a Disabled metrics registry every field
// except CacheEntries reads zero.
type Stats struct {
	Decisions int
	CacheHits int
	Allowed   int
	Blocked   int
	// CacheEntries is the current number of cached decision templates.
	CacheEntries int
	// FactGenHits / FactGenMisses count memoized vs computed
	// session-parameter generalizations of trace facts.
	FactGenHits   int
	FactGenMisses int
	// ColdViewsKept / ColdViewsPruned count candidate policy views the
	// compiled index let through vs pruned before any embedding search
	// (their ratio is the proxy's cold_prune_ratio).
	ColdViewsKept   int
	ColdViewsPruned int
	// ColdWorkersBusy is the current number of extra cold-search
	// workers running (a gauge; zero when idle or ColdWorkers <= 1).
	ColdWorkersBusy int
}

// Options configure a Checker.
type Options struct {
	// UseHistory enables trace-derived facts (the paper's Example 2.1
	// depends on it). Disabling it is the E3 ablation.
	UseHistory bool
	// UseCache enables decision templates.
	UseCache bool
	// UseFactCache enables the trace's incremental fact cache and the
	// checker's fact-generalization memo. Disabling it re-derives the
	// whole history on every check (the pre-optimization behaviour,
	// kept for ablation benchmarks).
	UseFactCache bool
	// MaxHomsPerView bounds the embedding search per view disjunct.
	MaxHomsPerView int
	// ColdIndex runs the cold coverage search against the compiled
	// per-relation policy index (compile.go); disabling it restores
	// the original linear scan over every view, kept as the ablation
	// baseline for acbench -coldpath.
	ColdIndex bool
	// ColdWorkers bounds the checker-owned worker pool the cold
	// coverage search fans out on (across template disjuncts and
	// candidate views). 0 means GOMAXPROCS; 1 keeps the search fully
	// serial. Parallel and serial searches produce identical
	// Decisions.
	ColdWorkers int
	// CacheSize bounds the decision-template cache (total entries
	// across shards); 0 means the default.
	CacheSize int
	// Metrics is the observability registry every pipeline stage and
	// counter reports into. Nil means a fresh private registry;
	// obsv.Disabled() turns instrumentation off (stage clock reads are
	// skipped entirely). Sharing one registry across checkers
	// aggregates their instruments.
	Metrics *obsv.Registry
}

// DefaultCacheSize bounds the decision-template cache when Options
// leaves CacheSize zero.
const DefaultCacheSize = 8192

// genCacheMax bounds the fact-generalization memo (total entries
// across all session signatures); past it the memo is dropped
// wholesale and rebuilt (epoch reset, no tracking cost).
const genCacheMax = 1 << 16

// internMax bounds the warm path's key-intern table; past it the
// table is dropped wholesale, same epoch-reset discipline as the memo.
const internMax = 1 << 15

// DefaultOptions returns the production configuration.
func DefaultOptions() Options {
	return Options{UseHistory: true, UseCache: true, UseFactCache: true, MaxHomsPerView: 64, ColdIndex: true}
}

// genEntry is one memoized fact generalization: the rewritten fact
// plus its canonical string (reused for decision-cache keys).
type genEntry struct {
	f   cq.Fact
	key string
}

// frontKey identifies a concrete check: the deciding policy version's
// epoch, the parsed statement BY POINTER (sqlparser.ParseCached
// returns one shared immutable statement per SQL text, so the pointer
// stands in for the text), and the rendered session attributes and
// arguments. Holding the pointer as a map key also keeps the statement
// alive, so an address can never be reused while its entry exists.
// Statements parsed outside the cache simply miss here and fall
// through to the template path. Entries keyed by a superseded epoch
// can never match again and are evicted as the cap recycles them.
type frontKey struct {
	epoch uint64
	sel   *sqlparser.SelectStmt
	sig   string
}

// frontCacheMax bounds the front cache; past it an arbitrary entry is
// evicted (the workload's key population is far below the cap).
const frontCacheMax = 4096

// Checker vets queries against a policy.
type Checker struct {
	opts Options

	// The versioned policy store (version.go): the (active, candidate)
	// pair behind one atomic pointer, the monotone epoch source behind
	// verMu. Lifecycle writers (installActive, StagePolicy, Promote,
	// Rollback) serialize on verMu; decisions just Load.
	verMu     sync.Mutex
	nextEpoch uint64
	vers      atomic.Pointer[versionTable]

	cache *decisionCache
	tr    *cq.Translator // stateless; safe to share

	// Session-parameterized fact generalization memo, two levels:
	// interned session signature → raw fact canonical string → entry.
	// Two map lookups replace the old per-fact key concatenation, so a
	// memo hit allocates nothing. genN counts total inner entries for
	// the epoch-reset bound.
	genMu sync.RWMutex
	gen   map[string]map[string]genEntry
	genN  int

	// strs interns the warm path's rendered session/argument
	// signatures: a hit maps scratch bytes to the one canonical string
	// without allocating (map index by converted []byte is no-copy).
	strMu sync.RWMutex
	strs  map[string]string

	// Front cache for trace-independent decisions, keyed by identity
	// of the shared parsed statement (see frontKey). Holds only
	// decisions allowed with zero history facts, which stay valid
	// under every trace.
	frontMu sync.RWMutex
	front   map[frontKey]Decision

	// Observability: the staged decide pipeline plus named obsv
	// instruments, resolved once here so the hot path never touches
	// the registry map. All are nil-safe no-ops under obsv.Disabled().
	reg  *obsv.Registry
	pipe *pipeline.Pipeline[*decideState]

	mDecisions, mAllowed, mBlocked, mCacheHits *obsv.Counter
	mFrontHit, mFrontMiss                      *obsv.Counter
	mHistFreeHit, mTemplateHit, mTemplateMiss  *obsv.Counter
	mGenHits, mGenMisses                       *obsv.Counter
	mParseErrors                               *obsv.Counter
	mColdKept, mColdPruned                     *obsv.Counter
	mColdBusy, mColdTasks                      *obsv.Counter
	mParse                                     *obsv.Histogram
	mCompile, mColdGather, mColdSearch         *obsv.Histogram

	// cold is the bounded worker pool the cold coverage search fans
	// out on; shared by every decision, so proxy lanes and the batch
	// op all dispatch onto one global bound.
	cold *coldPool
}

// New creates a checker for the policy with default options.
func New(p *policy.Policy) *Checker { return NewWithOptions(p, DefaultOptions()) }

// NewWithOptions creates a checker with explicit options.
func NewWithOptions(p *policy.Policy, opts Options) *Checker {
	if opts.MaxHomsPerView <= 0 {
		opts.MaxHomsPerView = 64
	}
	if opts.CacheSize <= 0 {
		opts.CacheSize = DefaultCacheSize
	}
	if opts.ColdWorkers <= 0 {
		opts.ColdWorkers = runtime.GOMAXPROCS(0)
	}
	if opts.Metrics == nil {
		opts.Metrics = obsv.NewRegistry()
	}
	c := &Checker{
		opts:  opts,
		cache: newDecisionCache(opts.CacheSize),
		tr:    &cq.Translator{Schema: p.Schema},
		gen:   make(map[string]map[string]genEntry),
		strs:  make(map[string]string),
		front: make(map[frontKey]Decision),
		reg:   opts.Metrics,
	}
	reg := c.reg
	c.mDecisions = reg.Counter("checker.decisions")
	c.mAllowed = reg.Counter("checker.allowed")
	c.mBlocked = reg.Counter("checker.blocked")
	c.mCacheHits = reg.Counter("checker.cache.hits")
	c.mFrontHit = reg.Counter("checker.front.hit")
	c.mFrontMiss = reg.Counter("checker.front.miss")
	c.mHistFreeHit = reg.Counter("checker.histfree.hit")
	c.mTemplateHit = reg.Counter("checker.template.hit")
	c.mTemplateMiss = reg.Counter("checker.template.miss")
	c.mGenHits = reg.Counter("checker.factgen.hit")
	c.mGenMisses = reg.Counter("checker.factgen.miss")
	c.mParseErrors = reg.Counter("checker.parse.errors")
	c.mColdKept = reg.Counter("checker.cold.views.kept")
	c.mColdPruned = reg.Counter("checker.cold.views.pruned")
	c.mColdBusy = reg.Counter("checker.cold.workers.busy")
	c.mColdTasks = reg.Counter("checker.cold.workers.tasks")
	c.mParse = reg.Histogram("checker.parse.micros")
	c.mCompile = reg.Histogram("checker.compile.micros")
	c.mColdGather = reg.Histogram("checker.cold.gather.micros")
	c.mColdSearch = reg.Histogram("checker.cold.search.micros")
	c.cold = newColdPool(opts.ColdWorkers, c.mColdBusy, c.mColdTasks)
	c.pipe = c.newDecidePipeline()
	comp := c.compilePol(p)
	c.nextEpoch = 1
	c.vers.Store(&versionTable{active: &polVersion{epoch: 1, fp: comp.fp, comp: comp, pol: p}})
	return c
}

// Policy returns the checker's active policy.
func (c *Checker) Policy() *policy.Policy { return c.activeVersion().pol }

// WarmTrace pre-derives the ground facts of a restored session trace
// under the checker's schema, so the first decision after a crash
// recovery pays cache-extension cost instead of a full history
// re-translation. It is a pure warm-up: facts are derived into the
// trace's own incremental cache, and a trace warmed twice (or never)
// decides identically.
func (c *Checker) WarmTrace(tr *trace.Trace) {
	if tr == nil || !c.opts.UseHistory {
		return
	}
	_ = tr.Facts(c.activeVersion().pol.Schema)
}

// Metrics returns the checker's observability registry (the one every
// decide stage reports into). Share it with the proxy server and the
// diagnose search to get one consolidated snapshot.
func (c *Checker) Metrics() *obsv.Registry { return c.reg }

// Stats returns a copy of the counters.
func (c *Checker) Stats() Stats {
	return Stats{
		Decisions:       int(c.mDecisions.Value()),
		CacheHits:       int(c.mCacheHits.Value()),
		Allowed:         int(c.mAllowed.Value()),
		Blocked:         int(c.mBlocked.Value()),
		CacheEntries:    c.cache.Len(),
		FactGenHits:     int(c.mGenHits.Value()),
		FactGenMisses:   int(c.mGenMisses.Value()),
		ColdViewsKept:   int(c.mColdKept.Value()),
		ColdViewsPruned: int(c.mColdPruned.Value()),
		ColdWorkersBusy: int(c.mColdBusy.Value()),
	}
}

// ResetCache republishes the policy (used when it is edited in place)
// and invalidates warm decision state by EPOCH BUMP: every cache key
// embeds the deciding epoch, so entries made under the old policy can
// never match again and age out through normal eviction — no map is
// recreated, and the policy-independent state (fact-generalization
// memo, string interns) survives untouched. When the recompiled plan's
// fingerprint is unchanged the epoch is kept too, so a no-op republish
// destroys nothing: front-cache hits keep accumulating across it.
// Checks already in flight keep using the version they started with;
// new checks see the new policy.
func (c *Checker) ResetCache() {
	c.installActive(c.Policy())
}

// intern returns the canonical string for the scratch bytes, keeping
// the warm path free of per-check string conversions: the read-path
// map index converts b without copying, so a hit allocates nothing.
func (c *Checker) intern(b []byte) string {
	c.strMu.RLock()
	s, ok := c.strs[string(b)]
	c.strMu.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	c.strMu.Lock()
	if len(c.strs) >= internMax {
		c.strs = make(map[string]string)
	}
	c.strs[s] = s
	c.strMu.Unlock()
	return s
}

func (c *Checker) frontGet(k frontKey) (Decision, bool) {
	c.frontMu.RLock()
	d, ok := c.front[k]
	c.frontMu.RUnlock()
	return d, ok
}

func (c *Checker) frontPut(k frontKey, d Decision) {
	// Copy Views in: the caller's slice may itself be borrowed from the
	// decision cache or about to be handed to the application, and the
	// front cache must own what it serves (frontGet hands the stored
	// slice out borrowed; stageFront copies for the safe API).
	if len(d.Views) > 0 {
		d.Views = append([]string(nil), d.Views...)
	}
	c.frontMu.Lock()
	if len(c.front) >= frontCacheMax {
		for old := range c.front {
			delete(c.front, old)
			break
		}
	}
	c.front[k] = d
	c.frontMu.Unlock()
}

// CheckSQL parses and checks a SELECT. A parse failure wraps
// acerr.ErrParse; a context cancellation mid-check wraps
// acerr.ErrCanceled (the accompanying Decision conservatively blocks).
// Parse time is the pipeline's first stage observationally: it lands
// in checker.parse.micros and in the request SpanSet as "parse".
func (c *Checker) CheckSQL(ctx context.Context, sql string, args sqlparser.Args, session map[string]sqlvalue.Value, tr *trace.Trace) (Decision, error) {
	return c.checkSQL(ctx, sql, args, session, tr, false)
}

// CheckSQLBorrowed is CheckSQL under the borrowed-Decision contract of
// CheckBorrowed: the result's Views may alias cache-owned storage.
func (c *Checker) CheckSQLBorrowed(ctx context.Context, sql string, args sqlparser.Args, session map[string]sqlvalue.Value, tr *trace.Trace) (Decision, error) {
	return c.checkSQL(ctx, sql, args, session, tr, true)
}

func (c *Checker) checkSQL(ctx context.Context, sql string, args sqlparser.Args, session map[string]sqlvalue.Value, tr *trace.Trace, borrow bool) (Decision, error) {
	var start time.Time
	timed := c.reg.Enabled()
	if timed {
		start = time.Now()
	}
	sel, err := sqlparser.ParseSelectCached(sql)
	if timed {
		d := time.Since(start)
		c.mParse.Observe(d.Microseconds())
		obsv.SpanSetFrom(ctx).Record("parse", d)
	}
	if err != nil {
		c.mParseErrors.Inc()
		return Decision{}, fmt.Errorf("%w: %v", acerr.ErrParse, err)
	}
	d := c.check(ctx, sel, args, session, tr, borrow)
	if err := ctx.Err(); err != nil {
		return d, acerr.Canceled(err)
	}
	return d, nil
}

// Check decides whether the query may run for the given principal
// session, considering the trace when history is enabled. It is safe
// for concurrent use. A canceled ctx aborts the embedding search and
// yields a conservative blocked Decision (never cached); callers that
// care should inspect ctx.Err.
//
// The returned Decision is owned by the caller: its Views slice never
// aliases cache storage and may be mutated or retained freely.
func (c *Checker) Check(ctx context.Context, sel *sqlparser.SelectStmt, args sqlparser.Args, session map[string]sqlvalue.Value, tr *trace.Trace) Decision {
	return c.check(ctx, sel, args, session, tr, false)
}

// CheckBorrowed is Check without the defensive Views copy on cache
// hits: the returned Decision's Views may alias the decision caches
// directly, making warm front-cache decisions fully allocation-free.
// The borrowed contract (DESIGN.md §12): treat Views as read-only, and
// do not rely on it after ResetCache. Everything else in the Decision
// is a value and owned by the caller. The proxy hot path — which only
// reads a decision — uses this form.
func (c *Checker) CheckBorrowed(ctx context.Context, sel *sqlparser.SelectStmt, args sqlparser.Args, session map[string]sqlvalue.Value, tr *trace.Trace) Decision {
	return c.check(ctx, sel, args, session, tr, true)
}

func (c *Checker) check(ctx context.Context, sel *sqlparser.SelectStmt, args sqlparser.Args, session map[string]sqlvalue.Value, tr *trace.Trace, borrow bool) Decision {
	c.mDecisions.Inc()
	d := c.decide(ctx, sel, args, session, tr, borrow)
	if d.Allowed {
		c.mAllowed.Inc()
	} else {
		c.mBlocked.Inc()
	}
	if d.FromCache {
		c.mCacheHits.Inc()
	}
	return d
}

// canceledDecision is the conservative verdict for an aborted check.
// It is never cached: the search did not finish, so the template would
// poison future decisions.
func canceledDecision(ctx context.Context) Decision {
	return Decision{Allowed: false, Reason: fmt.Sprintf("check canceled: %v", ctx.Err())}
}

// appendSessionSig renders the session attributes deterministically
// into buf (names sorted via the caller's scratch slice); the result
// namespaces the fact-generalization memo, since the same ground fact
// generalizes differently under different principals. Rendering into
// scratch instead of building a string keeps the warm path
// allocation-free; the rendered bytes are interned for map keying.
func appendSessionSig(buf []byte, names []string, session map[string]sqlvalue.Value) ([]byte, []string) {
	if len(session) == 0 {
		return buf, names
	}
	if len(session) == 1 {
		for n, v := range session {
			buf = append(buf, n...)
			buf = append(buf, '=')
			buf = v.AppendKey(buf)
			buf = append(buf, ';')
		}
		return buf, names
	}
	names = names[:0]
	for n := range session {
		names = append(names, n)
	}
	slices.Sort(names)
	for _, n := range names {
		buf = append(buf, n...)
		buf = append(buf, '=')
		buf = session[n].AppendKey(buf)
		buf = append(buf, ';')
	}
	return buf, names
}

// appendArgsSig renders the bound arguments deterministically into buf
// for the front-cache key, same scratch discipline as appendSessionSig.
func appendArgsSig(buf []byte, names []string, args sqlparser.Args) ([]byte, []string) {
	for _, v := range args.Positional {
		buf = v.AppendKey(buf)
		buf = append(buf, ',')
	}
	if len(args.Named) > 0 {
		names = names[:0]
		for n := range args.Named {
			names = append(names, n)
		}
		slices.Sort(names)
		for _, n := range names {
			buf = append(buf, '@')
			buf = append(buf, n...)
			buf = append(buf, '=')
			buf = args.Named[n].AppendKey(buf)
			buf = append(buf, ';')
		}
	}
	return buf, names
}

// generalizeFactMemo returns the session-parameterized form of a
// trace fact, memoized per (fact, session signature), and reports
// whether it was a memo hit. rawKey is the fact's canonical string as
// rendered once by the trace's fact cache (trace.FactsKeyed); together
// with the interned sig it keys the two-level memo, so a hit is two
// map lookups and no allocation. Counting is left to the caller (the
// facts stage batches one atomic add per check instead of one per
// fact). Memoized facts are shared; callers must treat their atoms as
// immutable. The memo is skipped when the fact cache is disabled
// (ablation mode measures the unmemoized path).
func (c *Checker) generalizeFactMemo(f cq.Fact, rawKey string, session map[string]sqlvalue.Value, sig string) (genEntry, bool) {
	if !c.opts.UseFactCache {
		g := generalizeFact(f, session)
		return genEntry{f: g, key: g.String()}, false
	}
	c.genMu.RLock()
	e, ok := c.gen[sig][rawKey]
	c.genMu.RUnlock()
	if ok {
		return e, true
	}
	g := generalizeFact(f, session)
	e = genEntry{f: g, key: g.String()}
	c.genMu.Lock()
	if c.genN >= genCacheMax {
		c.gen = make(map[string]map[string]genEntry)
		c.genN = 0
	}
	inner := c.gen[sig]
	if inner == nil {
		inner = make(map[string]genEntry)
		c.gen[sig] = inner
	}
	if _, dup := inner[rawKey]; !dup {
		c.genN++
	}
	inner[rawKey] = e
	c.genMu.Unlock()
	return e, false
}

// appendCacheKey renders the decision-template cache key into buf:
// template canonical keys, a "#" divider, the (pre-sorted) generalized
// fact keys, all NUL-separated, then the deciding policy version's
// epoch as 8 fixed big-endian bytes. The epoch suffix replaced the old
// policy-fingerprint suffix when the versioned store landed — 8 bytes
// instead of a fingerprint that grows with the policy, and a swap
// invalidates by bump instead of wholesale cache drop. Building into
// scratch lets warm probes hit the cache without materializing a
// string.
func appendCacheKey(buf []byte, epoch uint64, tplKeys []string, factKeys []string) []byte {
	for _, k := range tplKeys {
		buf = append(buf, k...)
		buf = append(buf, 0)
	}
	buf = append(buf, '#')
	buf = append(buf, 0)
	for _, k := range factKeys {
		buf = append(buf, k...)
		buf = append(buf, 0)
	}
	buf = append(buf,
		byte(epoch>>56), byte(epoch>>48), byte(epoch>>40), byte(epoch>>32),
		byte(epoch>>24), byte(epoch>>16), byte(epoch>>8), byte(epoch))
	return buf
}

// constGeneralizer is a no-op Substitute hook (vars and params pass
// through); constant generalization happens in generalizeConsts.
func constGeneralizer(map[string]sqlvalue.Value) func(cq.Term) cq.Term {
	return func(t cq.Term) cq.Term { return t }
}

// generalizeConsts replaces constants equal to a session attribute
// with that attribute's parameter. Ambiguities resolve to the
// alphabetically first attribute name, deterministically.
func generalizeConsts(q *cq.Query, session map[string]sqlvalue.Value) *cq.Query {
	if len(session) == 0 {
		return q
	}
	names := make([]string, 0, len(session))
	for n := range session {
		names = append(names, n)
	}
	sort.Strings(names)
	repl := func(t cq.Term) cq.Term {
		if !t.IsConst() {
			return t
		}
		for _, n := range names {
			if sqlvalue.Identical(session[n], t.Const) {
				return cq.P(n)
			}
		}
		return t
	}
	out := q.Clone()
	for i, t := range out.Head {
		out.Head[i] = repl(t)
	}
	for ai := range out.Atoms {
		for i, t := range out.Atoms[ai].Args {
			out.Atoms[ai].Args[i] = repl(t)
		}
	}
	for i := range out.Comps {
		out.Comps[i].Left = repl(out.Comps[i].Left)
		out.Comps[i].Right = repl(out.Comps[i].Right)
	}
	return out
}

func generalizeFact(f cq.Fact, session map[string]sqlvalue.Value) cq.Fact {
	q := &cq.Query{Atoms: []cq.Atom{f.Atom.Clone()}}
	q = generalizeConsts(q, session)
	return cq.Fact{Atom: q.Atoms[0], Negated: f.Negated}
}
