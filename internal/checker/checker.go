// Package checker implements Blockaid-style compliance checking: a
// query is allowed iff its answer is guaranteed to reveal no more
// information than the policy views do, given the history of prior
// queries and their results (the paper's §2.2). Queries are allowed
// as-is or blocked outright — never modified.
//
// The decision procedure works in the conjunctive fragment: the query
// is covered if each of its atoms either matches a row already known
// from the trace, or is the image of a policy-view embedding whose
// visible (head) columns expose every output, join, and
// selection-relevant position. This condition is sound — it implies
// the answer is determined by view contents plus trace — and complete
// enough to decide all of the paper's examples; queries outside the
// fragment are conservatively blocked.
//
// Decisions are memoized as parameter-generic templates (Blockaid's
// "decision cache"): constants equal to session attributes are
// abstracted to parameters, so one cold decision serves every
// principal issuing the same query shape. The template cache is
// sharded and bounded (see cache.go) so concurrent sessions with warm
// templates never serialize on one mutex, and the session-parameter
// generalization of trace facts is memoized so long histories don't
// pay repeated rewriting.
//
// A Checker is safe for concurrent use: the policy snapshot (view
// disjuncts plus fingerprint) is published through an atomic pointer,
// so ResetCache can swap it while checks are in flight, and all
// counters are atomic.
package checker

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/acerr"
	"repro/internal/cq"
	"repro/internal/policy"
	"repro/internal/sqlparser"
	"repro/internal/sqlvalue"
	"repro/internal/trace"
)

// Decision is the outcome of a compliance check.
type Decision struct {
	Allowed bool
	// Reason explains the outcome in one line (covering views, the
	// uncovered atom, or the fragment violation).
	Reason string
	// Views lists the policy views used to cover the query.
	Views []string
	// FromCache reports a decision-template hit.
	FromCache bool
}

// Stats counts checker activity.
type Stats struct {
	Decisions int
	CacheHits int
	Allowed   int
	Blocked   int
	// CacheEntries is the current number of cached decision templates.
	CacheEntries int
	// FactGenHits / FactGenMisses count memoized vs computed
	// session-parameter generalizations of trace facts.
	FactGenHits   int
	FactGenMisses int
}

// Options configure a Checker.
type Options struct {
	// UseHistory enables trace-derived facts (the paper's Example 2.1
	// depends on it). Disabling it is the E3 ablation.
	UseHistory bool
	// UseCache enables decision templates.
	UseCache bool
	// UseFactCache enables the trace's incremental fact cache and the
	// checker's fact-generalization memo. Disabling it re-derives the
	// whole history on every check (the pre-optimization behaviour,
	// kept for ablation benchmarks).
	UseFactCache bool
	// MaxHomsPerView bounds the embedding search per view disjunct.
	MaxHomsPerView int
	// CacheSize bounds the decision-template cache (total entries
	// across shards); 0 means the default.
	CacheSize int
}

// DefaultCacheSize bounds the decision-template cache when Options
// leaves CacheSize zero.
const DefaultCacheSize = 8192

// genCacheMax bounds the fact-generalization memo; past it the memo
// is dropped wholesale and rebuilt (epoch reset, no tracking cost).
const genCacheMax = 1 << 16

// DefaultOptions returns the production configuration.
func DefaultOptions() Options {
	return Options{UseHistory: true, UseCache: true, UseFactCache: true, MaxHomsPerView: 64}
}

// polSnapshot is the immutable view of the policy a single decision
// works against. It is published atomically so ResetCache never races
// with in-flight decisions.
type polSnapshot struct {
	fp       string
	viewDisj []*cq.Query // parameter-form view disjuncts
}

// genEntry is one memoized fact generalization: the rewritten fact
// plus its canonical string (reused for decision-cache keys).
type genEntry struct {
	f   cq.Fact
	key string
}

// frontKey identifies a concrete check: the policy snapshot, the
// parsed statement BY POINTER (sqlparser.ParseCached returns one
// shared immutable statement per SQL text, so the pointer stands in
// for the text), and the rendered session attributes and arguments.
// Holding the pointer as a map key also keeps the statement alive, so
// an address can never be reused while its entry exists. Statements
// parsed outside the cache simply miss here and fall through to the
// template path.
type frontKey struct {
	fp  string
	sel *sqlparser.SelectStmt
	sig string
}

// frontCacheMax bounds the front cache; past it an arbitrary entry is
// evicted (the workload's key population is far below the cap).
const frontCacheMax = 4096

// Checker vets queries against a policy.
type Checker struct {
	pol  *policy.Policy
	opts Options

	snap  atomic.Pointer[polSnapshot]
	cache *decisionCache
	tr    *cq.Translator // stateless; safe to share

	// Session-parameterized fact generalization memo.
	genMu sync.RWMutex
	gen   map[string]genEntry

	// Front cache for trace-independent decisions, keyed by identity
	// of the shared parsed statement (see frontKey). Holds only
	// decisions allowed with zero history facts, which stay valid
	// under every trace.
	frontMu sync.RWMutex
	front   map[frontKey]Decision

	// Counters (atomic: Check never takes a lock).
	nDecisions atomic.Int64
	nCacheHits atomic.Int64
	nAllowed   atomic.Int64
	nBlocked   atomic.Int64
	nGenHits   atomic.Int64
	nGenMisses atomic.Int64
}

// New creates a checker for the policy with default options.
func New(p *policy.Policy) *Checker { return NewWithOptions(p, DefaultOptions()) }

// NewWithOptions creates a checker with explicit options.
func NewWithOptions(p *policy.Policy, opts Options) *Checker {
	if opts.MaxHomsPerView <= 0 {
		opts.MaxHomsPerView = 64
	}
	if opts.CacheSize <= 0 {
		opts.CacheSize = DefaultCacheSize
	}
	c := &Checker{
		pol:   p,
		opts:  opts,
		cache: newDecisionCache(opts.CacheSize),
		tr:    &cq.Translator{Schema: p.Schema},
		gen:   make(map[string]genEntry),
		front: make(map[frontKey]Decision),
	}
	c.snap.Store(&polSnapshot{fp: p.Fingerprint(), viewDisj: p.Disjuncts(nil)})
	return c
}

// Policy returns the checker's policy.
func (c *Checker) Policy() *policy.Policy { return c.pol }

// Stats returns a copy of the counters.
func (c *Checker) Stats() Stats {
	return Stats{
		Decisions:     int(c.nDecisions.Load()),
		CacheHits:     int(c.nCacheHits.Load()),
		Allowed:       int(c.nAllowed.Load()),
		Blocked:       int(c.nBlocked.Load()),
		CacheEntries:  c.cache.Len(),
		FactGenHits:   int(c.nGenHits.Load()),
		FactGenMisses: int(c.nGenMisses.Load()),
	}
}

// ResetCache drops all decision templates and republishes the policy
// snapshot (used when the policy is edited in place). Checks already
// in flight keep using the snapshot they started with; new checks see
// the new policy.
func (c *Checker) ResetCache() {
	c.snap.Store(&polSnapshot{fp: c.pol.Fingerprint(), viewDisj: c.pol.Disjuncts(nil)})
	for i := range c.cache.shards {
		sh := &c.cache.shards[i]
		sh.mu.Lock()
		sh.m = make(map[string]*cacheEntry)
		sh.mu.Unlock()
	}
	c.genMu.Lock()
	c.gen = make(map[string]genEntry)
	c.genMu.Unlock()
	c.frontMu.Lock()
	c.front = make(map[frontKey]Decision)
	c.frontMu.Unlock()
}

func (c *Checker) frontGet(k frontKey) (Decision, bool) {
	c.frontMu.RLock()
	d, ok := c.front[k]
	c.frontMu.RUnlock()
	return d, ok
}

func (c *Checker) frontPut(k frontKey, d Decision) {
	c.frontMu.Lock()
	if len(c.front) >= frontCacheMax {
		for old := range c.front {
			delete(c.front, old)
			break
		}
	}
	c.front[k] = d
	c.frontMu.Unlock()
}

// CheckSQL parses and checks a SELECT. A parse failure wraps
// acerr.ErrParse; a context cancellation mid-check wraps
// acerr.ErrCanceled (the accompanying Decision conservatively blocks).
func (c *Checker) CheckSQL(ctx context.Context, sql string, args sqlparser.Args, session map[string]sqlvalue.Value, tr *trace.Trace) (Decision, error) {
	sel, err := sqlparser.ParseSelectCached(sql)
	if err != nil {
		return Decision{}, fmt.Errorf("%w: %v", acerr.ErrParse, err)
	}
	d := c.Check(ctx, sel, args, session, tr)
	if err := ctx.Err(); err != nil {
		return d, acerr.Canceled(err)
	}
	return d, nil
}

// Check decides whether the query may run for the given principal
// session, considering the trace when history is enabled. It is safe
// for concurrent use. A canceled ctx aborts the embedding search and
// yields a conservative blocked Decision (never cached); callers that
// care should inspect ctx.Err.
func (c *Checker) Check(ctx context.Context, sel *sqlparser.SelectStmt, args sqlparser.Args, session map[string]sqlvalue.Value, tr *trace.Trace) Decision {
	c.nDecisions.Add(1)
	d := c.decide(ctx, sel, args, session, tr)
	if d.Allowed {
		c.nAllowed.Add(1)
	} else {
		c.nBlocked.Add(1)
	}
	if d.FromCache {
		c.nCacheHits.Add(1)
	}
	return d
}

// canceledDecision is the conservative verdict for an aborted check.
// It is never cached: the search did not finish, so the template would
// poison future decisions.
func canceledDecision(ctx context.Context) Decision {
	return Decision{Allowed: false, Reason: fmt.Sprintf("check canceled: %v", ctx.Err())}
}

func (c *Checker) decide(ctx context.Context, sel *sqlparser.SelectStmt, args sqlparser.Args, session map[string]sqlvalue.Value, tr *trace.Trace) Decision {
	snap := c.snap.Load()
	if ctx.Err() != nil {
		return canceledDecision(ctx)
	}

	// Fast path: an identical concrete check (same shared statement,
	// principal, and arguments) whose decision is known to be
	// trace-independent skips binding, translation, and template
	// rendering entirely.
	var fkey frontKey
	useFront := c.opts.UseCache && c.opts.UseHistory
	if useFront {
		fkey = frontKey{fp: snap.fp, sel: sel, sig: sessionSig(session) + "\x00" + argsSig(args)}
		if d, ok := c.frontGet(fkey); ok {
			d.FromCache = true
			return d
		}
	}

	// Named parameters that match session attributes bind implicitly:
	// ?MyUId in an application query means the current principal.
	if len(session) > 0 {
		merged := make(map[string]sqlvalue.Value, len(args.Named)+len(session))
		for k, v := range session {
			merged[k] = v
		}
		for k, v := range args.Named {
			merged[k] = v
		}
		args = sqlparser.Args{Positional: args.Positional, Named: merged}
	}
	bound, err := sqlparser.Bind(sel, args)
	if err != nil {
		return Decision{Reason: fmt.Sprintf("bind: %v", err)}
	}
	ucq, err := c.tr.TranslateSelect(bound.(*sqlparser.SelectStmt))
	if err != nil {
		return Decision{Reason: fmt.Sprintf("blocked conservatively: %v", err)}
	}

	// Abstract session constants into parameters (decision template).
	generalize := constGeneralizer(session)
	tpl := make([]*cq.Query, len(ucq))
	for i, q := range ucq {
		tpl[i] = q.Substitute(generalize)
		// Substitute only rewrites vars/params; constants need the map
		// form below.
		tpl[i] = generalizeConsts(tpl[i], session)
	}

	// History-free tier of the decision cache. Coverage is monotone in
	// the trace facts (facts only add atoms a homomorphism may land
	// on), so a template allowed with ZERO facts stays allowed under
	// every trace. Such decisions cache on (policy, template) alone and
	// never churn as the trace grows — without this, the full key below
	// changes on every write and view-only-allowed hot queries would
	// re-derive from scratch each request. A cached history-free DENIAL
	// is only a marker that the template needs facts; it is never
	// returned as the answer.
	if c.opts.UseCache && c.opts.UseHistory && tr != nil {
		freeKey := cacheKey(snap.fp, tpl, nil)
		if d, ok := c.cache.Get(freeKey); ok {
			if d.Allowed {
				if useFront {
					c.frontPut(fkey, d)
				}
				d.FromCache = true
				return d
			}
		} else {
			d := c.coverAll(ctx, snap, tpl, nil)
			if ctx.Err() != nil {
				return canceledDecision(ctx)
			}
			c.cache.Put(freeKey, d)
			if d.Allowed {
				if useFront {
					c.frontPut(fkey, d)
				}
				return d
			}
		}
	}

	// Facts from the trace, likewise parameterized. factKeys carries
	// each generalized fact's canonical string for the cache key, so
	// it is rendered once per (fact, session shape), not per check.
	var facts []cq.Fact
	var factKeys []string
	if c.opts.UseHistory && tr != nil {
		sig := sessionSig(session)
		var raw []cq.Fact
		if c.opts.UseFactCache {
			raw = tr.Facts(c.pol.Schema)
		} else {
			raw = trace.FactsUncached(c.pol.Schema, tr)
		}
		facts = make([]cq.Fact, 0, len(raw))
		factKeys = make([]string, 0, len(raw))
		for i, f := range raw {
			if i&63 == 63 && ctx.Err() != nil {
				return canceledDecision(ctx)
			}
			g := c.generalizeFactMemo(f, session, sig)
			facts = append(facts, g.f)
			factKeys = append(factKeys, g.key)
		}
	}

	// Decision-template cache.
	var key string
	if c.opts.UseCache {
		key = cacheKey(snap.fp, tpl, factKeys)
		if d, ok := c.cache.Get(key); ok {
			d.FromCache = true
			return d
		}
	}

	d := c.coverAll(ctx, snap, tpl, facts)
	if ctx.Err() != nil {
		return canceledDecision(ctx)
	}

	if c.opts.UseCache {
		c.cache.Put(key, d)
	}
	return d
}

// coverAll runs the coverage check for every disjunct of a decision
// template against the given fact set. Callers must check ctx.Err()
// before caching the result: a cancellation mid-loop yields a
// decision that must not be stored.
func (c *Checker) coverAll(ctx context.Context, snap *polSnapshot, tpl []*cq.Query, facts []cq.Fact) Decision {
	d := Decision{Allowed: true}
	usedViews := map[string]bool{}
	for _, q := range tpl {
		res := c.coverDisjunct(ctx, snap, q, facts)
		if ctx.Err() != nil {
			return canceledDecision(ctx)
		}
		if !res.ok {
			return Decision{Allowed: false, Reason: res.reason}
		}
		for _, v := range res.views {
			usedViews[v] = true
		}
	}
	for v := range usedViews {
		d.Views = append(d.Views, v)
	}
	sort.Strings(d.Views)
	if len(d.Views) > 0 {
		d.Reason = "covered by " + strings.Join(d.Views, ", ")
	} else {
		d.Reason = "reveals no database content"
	}
	return d
}

// sessionSig renders the session attributes deterministically; it
// namespaces the fact-generalization memo, since the same ground fact
// generalizes differently under different principals.
func sessionSig(session map[string]sqlvalue.Value) string {
	if len(session) == 0 {
		return ""
	}
	if len(session) == 1 {
		for n, v := range session {
			return n + "=" + v.Key() + ";"
		}
	}
	names := make([]string, 0, len(session))
	for n := range session {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(session[n].Key())
		b.WriteByte(';')
	}
	return b.String()
}

// argsSig renders the bound arguments deterministically for the
// front-cache key.
func argsSig(args sqlparser.Args) string {
	if len(args.Positional) == 0 && len(args.Named) == 0 {
		return ""
	}
	if len(args.Named) == 0 && len(args.Positional) == 1 {
		return args.Positional[0].Key() + ","
	}
	var b strings.Builder
	for _, v := range args.Positional {
		b.WriteString(v.Key())
		b.WriteByte(',')
	}
	if len(args.Named) > 0 {
		names := make([]string, 0, len(args.Named))
		for n := range args.Named {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			b.WriteByte('@')
			b.WriteString(n)
			b.WriteByte('=')
			b.WriteString(args.Named[n].Key())
			b.WriteByte(';')
		}
	}
	return b.String()
}

// generalizeFactMemo returns the session-parameterized form of a
// trace fact, memoized per (fact, session signature). Memoized facts
// are shared; callers must treat their atoms as immutable. The memo
// is skipped when the fact cache is disabled (ablation mode measures
// the unmemoized path).
func (c *Checker) generalizeFactMemo(f cq.Fact, session map[string]sqlvalue.Value, sig string) genEntry {
	if !c.opts.UseFactCache {
		g := generalizeFact(f, session)
		return genEntry{f: g, key: g.String()}
	}
	k := sig + "\x00" + f.String()
	c.genMu.RLock()
	e, ok := c.gen[k]
	c.genMu.RUnlock()
	if ok {
		c.nGenHits.Add(1)
		return e
	}
	c.nGenMisses.Add(1)
	g := generalizeFact(f, session)
	e = genEntry{f: g, key: g.String()}
	c.genMu.Lock()
	if len(c.gen) >= genCacheMax {
		c.gen = make(map[string]genEntry)
	}
	c.gen[k] = e
	c.genMu.Unlock()
	return e
}

func cacheKey(fp string, tpl []*cq.Query, factKeys []string) string {
	parts := make([]string, 0, len(tpl)+len(factKeys)+2)
	for _, q := range tpl {
		parts = append(parts, q.CanonicalKey())
	}
	parts = append(parts, "#")
	fs := append([]string(nil), factKeys...)
	sort.Strings(fs)
	parts = append(parts, fs...)
	parts = append(parts, fp)
	return strings.Join(parts, "\x00")
}

// constGeneralizer is a no-op Substitute hook (vars and params pass
// through); constant generalization happens in generalizeConsts.
func constGeneralizer(map[string]sqlvalue.Value) func(cq.Term) cq.Term {
	return func(t cq.Term) cq.Term { return t }
}

// generalizeConsts replaces constants equal to a session attribute
// with that attribute's parameter. Ambiguities resolve to the
// alphabetically first attribute name, deterministically.
func generalizeConsts(q *cq.Query, session map[string]sqlvalue.Value) *cq.Query {
	if len(session) == 0 {
		return q
	}
	names := make([]string, 0, len(session))
	for n := range session {
		names = append(names, n)
	}
	sort.Strings(names)
	repl := func(t cq.Term) cq.Term {
		if !t.IsConst() {
			return t
		}
		for _, n := range names {
			if sqlvalue.Identical(session[n], t.Const) {
				return cq.P(n)
			}
		}
		return t
	}
	out := q.Clone()
	for i, t := range out.Head {
		out.Head[i] = repl(t)
	}
	for ai := range out.Atoms {
		for i, t := range out.Atoms[ai].Args {
			out.Atoms[ai].Args[i] = repl(t)
		}
	}
	for i := range out.Comps {
		out.Comps[i].Left = repl(out.Comps[i].Left)
		out.Comps[i].Right = repl(out.Comps[i].Right)
	}
	return out
}

func generalizeFact(f cq.Fact, session map[string]sqlvalue.Value) cq.Fact {
	q := &cq.Query{Atoms: []cq.Atom{f.Atom.Clone()}}
	q = generalizeConsts(q, session)
	return cq.Fact{Atom: q.Atoms[0], Negated: f.Negated}
}

// coverResult is the outcome for one disjunct.
type coverResult struct {
	ok     bool
	views  []string
	reason string
}

// candidate is one usable view embedding.
type candidate struct {
	viewName string
	// covers[i] is true when query atom i is in the embedding's image
	// and every argument position passes the visibility rules.
	covers []bool
	// visible holds the term keys exposed by the view head under the
	// embedding.
	visible map[string]bool
	// enforced holds comparison-only query variables whose every
	// constraint the view's own body implies (so invisibility is
	// acceptable for them).
	enforced map[string]bool
}

// coverDisjunct decides one conjunctive disjunct against a policy
// snapshot. Cancellation is polled between view-embedding searches —
// the expensive inner step — and surfaces as a not-ok result the
// caller must discard after seeing ctx.Err.
func (c *Checker) coverDisjunct(ctx context.Context, snap *polSnapshot, q *cq.Query, facts []cq.Fact) coverResult {
	// A query whose comparisons are unsatisfiable returns nothing.
	cs := cq.NewConstraints()
	cs.AddAll(q.Comps)
	if !cs.Consistent() {
		return coverResult{ok: true}
	}

	// Vacuity via negative facts: an atom that can only match a
	// pattern known to be empty makes the disjunct return nothing.
	for _, a := range q.Atoms {
		for _, f := range facts {
			if f.Negated && atomInstanceOf(a, f.Atom, cs) {
				return coverResult{ok: true}
			}
		}
	}

	if len(q.Atoms) == 0 {
		return coverResult{ok: true} // reveals no database content
	}

	// Occurrence census for visibility rules.
	occ := countVarOccurrences(q)

	// The embedding target: the query's atoms plus positive trace
	// facts as extra known rows.
	target := &cq.Query{Atoms: append([]cq.Atom(nil), q.Atoms...), Comps: q.Comps}
	for _, f := range facts {
		if !f.Negated {
			target.Atoms = append(target.Atoms, f.Atom)
		}
	}

	// Fact-covered atoms: fully ground atoms whose row is known.
	factCovered := make([]bool, len(q.Atoms))
	for i, a := range q.Atoms {
		if !atomGround(a) {
			continue
		}
		for _, f := range facts {
			if !f.Negated && atomsEqual(a, f.Atom) {
				factCovered[i] = true
				break
			}
		}
	}

	// Enumerate view embeddings and derive candidates.
	var cands []candidate
	for _, v := range snap.viewDisj {
		if ctx.Err() != nil {
			return coverResult{reason: "check canceled"}
		}
		homs := cq.FindHoms(v, target, nil, c.opts.MaxHomsPerView)
		for _, h := range homs {
			cand := candidate{
				viewName: v.Name,
				covers:   make([]bool, len(q.Atoms)),
				visible:  make(map[string]bool),
				enforced: make(map[string]bool),
			}
			for _, ht := range v.Head {
				cand.visible[h.Map.Apply(ht).Key()] = true
			}
			// Constraints the view itself enforces, mapped onto query
			// terms: an invisible view column may still satisfy a
			// query comparison when the view's own body implies it.
			viewCS := cq.NewConstraints()
			for _, vc := range v.Comps {
				viewCS.Add(h.Map.ApplyComp(vc))
			}
			any := false
			for srcIdx, tgtIdx := range h.AtomImage {
				if tgtIdx >= len(q.Atoms) {
					continue // maps onto a fact atom
				}
				if c.atomCoverOK(v.Atoms[srcIdx], q.Atoms[tgtIdx], v, viewCS, occ, q, cand.enforced) {
					cand.covers[tgtIdx] = true
					any = true
				}
			}
			if any {
				cands = append(cands, cand)
			}
		}
	}

	// Choose a candidate per uncovered atom; then validate joint
	// visibility of join and head variables.
	need := make([]int, 0, len(q.Atoms))
	for i := range q.Atoms {
		if !factCovered[i] {
			need = append(need, i)
		}
	}
	if len(need) == 0 {
		return coverResult{ok: true}
	}

	options := make([][]int, len(need))
	for ni, ai := range need {
		for ci, cand := range cands {
			if cand.covers[ai] {
				options[ni] = append(options[ni], ci)
			}
		}
		if len(options[ni]) == 0 {
			return coverResult{
				reason: fmt.Sprintf("atom %s is not covered by any policy view", q.Atoms[ai]),
			}
		}
	}

	assign := make([]int, len(need))
	if c.searchAssignment(q, occ, cands, need, options, assign, 0) {
		used := map[string]bool{}
		for _, ci := range assign {
			used[cands[ci].viewName] = true
		}
		var views []string
		for v := range used {
			views = append(views, v)
		}
		sort.Strings(views)
		return coverResult{ok: true, views: views}
	}
	return coverResult{
		reason: "no combination of view embeddings determines the query's answer",
	}
}

// searchAssignment tries candidate assignments for the atoms in need.
func (c *Checker) searchAssignment(q *cq.Query, occ map[string]varOcc, cands []candidate, need []int, options [][]int, assign []int, i int) bool {
	if i == len(need) {
		return validateAssignment(q, occ, cands, need, assign)
	}
	for _, ci := range options[i] {
		assign[i] = ci
		if c.searchAssignment(q, occ, cands, need, options, assign, i+1) {
			return true
		}
	}
	return false
}

// validateAssignment enforces the joint visibility conditions: every
// head variable, comparison variable, and variable shared across
// atoms must be visible in the candidates covering those atoms.
func validateAssignment(q *cq.Query, occ map[string]varOcc, cands []candidate, need []int, assign []int) bool {
	// Candidate per atom index.
	byAtom := make(map[int]*candidate, len(need))
	for i, ai := range need {
		byAtom[ai] = &cands[assign[i]]
	}
	for v, o := range occ {
		key := cq.V(v).Key()
		distinguishing := o.inHead || o.inComps || len(o.atoms) > 1 || o.multiInAtom
		if !distinguishing {
			continue
		}
		// A comparison-only variable confined to a single atom is fine
		// when the covering view enforces its constraints itself.
		compOnly := o.inComps && !o.inHead && len(o.atoms) == 1 && !o.multiInAtom
		for ai := range o.atoms {
			cand, covered := byAtom[ai]
			if !covered {
				continue // fact-covered atoms are ground; vars can't occur there
			}
			if cand.visible[key] {
				continue
			}
			if compOnly && cand.enforced[v] {
				continue
			}
			return false
		}
	}
	return true
}

// varOcc summarizes where a query variable occurs.
type varOcc struct {
	atoms       map[int]bool
	inHead      bool
	inComps     bool
	multiInAtom bool // appears twice within one atom
}

func countVarOccurrences(q *cq.Query) map[string]varOcc {
	out := make(map[string]varOcc)
	get := func(v string) varOcc {
		o, ok := out[v]
		if !ok {
			o = varOcc{atoms: make(map[int]bool)}
		}
		return o
	}
	for ai, a := range q.Atoms {
		seenHere := map[string]bool{}
		for _, t := range a.Args {
			if !t.IsVar() {
				continue
			}
			o := get(t.Var)
			o.atoms[ai] = true
			if seenHere[t.Var] {
				o.multiInAtom = true
			}
			seenHere[t.Var] = true
			out[t.Var] = o
		}
	}
	for _, t := range q.Head {
		if t.IsVar() {
			o := get(t.Var)
			o.inHead = true
			out[t.Var] = o
		}
	}
	for _, cmp := range q.Comps {
		for _, t := range []cq.Term{cmp.Left, cmp.Right} {
			if t.IsVar() {
				o := get(t.Var)
				o.inComps = true
				out[t.Var] = o
			}
		}
	}
	return out
}

// atomCoverOK applies the per-position visibility rule for a view atom
// covering a query atom: a position whose query-side term is
// distinguishing (constant, parameter, head/join/comparison variable)
// must be visible in the view head, pinned by the view itself
// (view-side constant or parameter), or — for comparison variables —
// constrained identically by the view's own body (viewCS carries the
// view's comparisons mapped to query terms).
func (c *Checker) atomCoverOK(viewAtom, qAtom cq.Atom, view *cq.Query, viewCS *cq.Constraints, occ map[string]varOcc, q *cq.Query, enforced map[string]bool) bool {
	viewHead := make(map[string]bool, len(view.Head))
	for _, t := range view.Head {
		if t.IsVar() {
			viewHead[t.Var] = true
		}
	}
	for k, y := range viewAtom.Args {
		t := qAtom.Args[k]
		if !y.IsVar() {
			// View-side constant/parameter pins the position.
			continue
		}
		if viewHead[y.Var] {
			continue // visible: filterable and joinable by the caller
		}
		// Invisible view position: acceptable for a pure existential
		// query variable, or for a comparison-only variable whose
		// every constraint the view itself enforces.
		if !t.IsVar() {
			return false
		}
		o := occ[t.Var]
		if o.inHead || len(o.atoms) > 1 || o.multiInAtom {
			return false
		}
		if o.inComps {
			for _, qc := range q.Comps {
				involves := qc.Left.IsVar() && qc.Left.Var == t.Var ||
					qc.Right.IsVar() && qc.Right.Var == t.Var
				if involves && !viewCS.Implies(qc) {
					return false
				}
			}
			enforced[t.Var] = true
		}
	}
	return true
}

// --- small atom helpers ---

func atomGround(a cq.Atom) bool {
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	return true
}

func atomsEqual(a, b cq.Atom) bool {
	if a.Table != b.Table || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if !a.Args[i].Equal(b.Args[i]) {
			return false
		}
	}
	return true
}

// atomInstanceOf reports whether concrete atom a is an instance of
// pattern p (pattern variables bind consistently; constants and
// parameters must match, or be forced equal by the query constraints).
func atomInstanceOf(a, p cq.Atom, cs *cq.Constraints) bool {
	if a.Table != p.Table || len(a.Args) != len(p.Args) {
		return false
	}
	bind := map[string]cq.Term{}
	for i, pt := range p.Args {
		at := a.Args[i]
		if pt.IsVar() {
			if prev, ok := bind[pt.Var]; ok {
				if !prev.Equal(at) && !cs.Implies(cq.Comparison{Op: cq.Eq, Left: prev, Right: at}) {
					return false
				}
			} else {
				bind[pt.Var] = at
			}
			continue
		}
		if !pt.Equal(at) && !cs.Implies(cq.Comparison{Op: cq.Eq, Left: pt, Right: at}) {
			return false
		}
	}
	return true
}
