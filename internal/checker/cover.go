package checker

// The policy-coverage decision procedure — the "solver" behind the
// pipeline's cover stage. coverAll checks every disjunct of a
// decision template; coverDisjunct enumerates view embeddings and
// searches for an assignment of covering candidates that satisfies
// the joint visibility conditions.
//
// The search runs against the compiled policy plan (compile.go): the
// per-relation inverted index and relation-signature masks prune
// views that cannot embed before any homomorphism search, and the
// target constraint closure is built once per disjunct instead of
// once per view. Options.ColdIndex turns the index off for ablation
// benchmarks, restoring the original linear scan.
//
// Both coverAll (across template disjuncts) and the candidate
// enumeration (across surviving views) can fan out on the checker's
// bounded worker pool (Options.ColdWorkers). Parallelism never
// changes the answer: results are merged in disjunct order and
// candidates in view order, exactly the serial orders, so a parallel
// checker produces byte-identical Decisions — a blocking disjunct
// cancels only LATER disjuncts, whose results an earlier block always
// shadows in the merge.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cq"
	"repro/internal/obsv"
)

// coverAll runs the coverage check for every disjunct of a decision
// template against the given fact set, under one compiled policy plan
// (the caller pins the version; shadow decisions pass the candidate's
// plan here). occs optionally carries the per-disjunct
// variable-occurrence censuses memoized by the pipeline (nil entries
// are computed here). Callers must check ctx.Err() before caching the
// result: a cancellation mid-search yields a decision that must not
// be stored.
func (c *Checker) coverAll(ctx context.Context, comp *compiledPolicy, tpl []*cq.Query, occs []map[string]varOcc, facts []cq.Fact) Decision {
	fi := comp.indexFacts(facts)
	n := len(tpl)
	res := make([]coverResult, n)
	if n > 1 && c.cold.parallel() {
		// Parallel across disjuncts: each gets a derived context so a
		// definitive block at disjunct i can cancel the now-irrelevant
		// disjuncts AFTER i (an earlier block always wins the ordered
		// merge; earlier disjuncts keep running).
		ctxs := make([]context.Context, n)
		cancels := make([]context.CancelFunc, n)
		for i := range tpl {
			ctxs[i], cancels[i] = context.WithCancel(ctx)
		}
		c.cold.run(n, func(i int) {
			res[i] = c.coverDisjunct(ctxs[i], comp, tpl[i], occAt(occs, tpl, i), fi, facts)
			if !res[i].ok && ctxs[i].Err() == nil {
				for j := i + 1; j < n; j++ {
					cancels[j]()
				}
			}
		})
		for _, cancel := range cancels {
			cancel()
		}
	} else {
		for i, q := range tpl {
			res[i] = c.coverDisjunct(ctx, comp, q, occAt(occs, tpl, i), fi, facts)
			if ctx.Err() != nil {
				return canceledDecision(ctx)
			}
			if !res[i].ok {
				return Decision{Allowed: false, Reason: res[i].reason}
			}
		}
	}
	if ctx.Err() != nil {
		return canceledDecision(ctx)
	}
	// Ordered merge: the first not-ok disjunct decides, exactly as the
	// serial loop would. A disjunct canceled by an earlier sibling's
	// block is shadowed by that earlier result here.
	usedViews := map[string]bool{}
	for i := range res {
		if !res[i].ok {
			return Decision{Allowed: false, Reason: res[i].reason}
		}
		for _, v := range res[i].views {
			usedViews[v] = true
		}
	}
	d := Decision{Allowed: true}
	for v := range usedViews {
		d.Views = append(d.Views, v)
	}
	sort.Strings(d.Views)
	if len(d.Views) > 0 {
		d.Reason = "covered by " + strings.Join(d.Views, ", ")
	} else {
		d.Reason = "reveals no database content"
	}
	return d
}

// occAt returns the memoized occurrence census for disjunct i, or
// computes it when the caller didn't supply one.
func occAt(occs []map[string]varOcc, tpl []*cq.Query, i int) map[string]varOcc {
	if i < len(occs) && occs[i] != nil {
		return occs[i]
	}
	return countVarOccurrences(tpl[i])
}

// coverResult is the outcome for one disjunct.
type coverResult struct {
	ok     bool
	views  []string
	reason string
}

// candidate is one usable view embedding.
type candidate struct {
	viewName string
	// covers[i] is true when query atom i is in the embedding's image
	// and every argument position passes the visibility rules.
	covers []bool
	// visible holds the term keys exposed by the view head under the
	// embedding.
	visible map[string]bool
	// enforced holds comparison-only query variables whose every
	// constraint the view's own body implies (so invisibility is
	// acceptable for them).
	enforced map[string]bool
}

// coverDisjunct decides one conjunctive disjunct against a compiled
// policy. Cancellation is polled inside candidate enumeration and the
// assignment search and surfaces as a not-ok result the caller must
// discard after seeing ctx.Err (or, under parallel coverAll, shadow
// with an earlier disjunct's definitive block).
func (c *Checker) coverDisjunct(ctx context.Context, comp *compiledPolicy, q *cq.Query, occ map[string]varOcc, fi *factIndex, facts []cq.Fact) coverResult {
	// A query whose comparisons are unsatisfiable returns nothing.
	cs := cq.NewConstraints()
	cs.AddAll(q.Comps)
	if !cs.Consistent() {
		return coverResult{ok: true}
	}

	// Vacuity via negative facts: an atom that can only match a
	// pattern known to be empty makes the disjunct return nothing.
	for _, a := range q.Atoms {
		for _, f := range fi.neg[a.Table] {
			if atomInstanceOf(a, f.Atom, cs) {
				return coverResult{ok: true}
			}
		}
	}

	if len(q.Atoms) == 0 {
		return coverResult{ok: true} // reveals no database content
	}

	// Occurrence census for visibility rules (memoized by the
	// pipeline; tests may call in with nil).
	if occ == nil {
		occ = countVarOccurrences(q)
	}

	// The embedding target: the query's atoms plus positive trace
	// facts as extra known rows.
	target := &cq.Query{Atoms: append([]cq.Atom(nil), q.Atoms...), Comps: q.Comps}
	for _, f := range facts {
		if !f.Negated {
			target.Atoms = append(target.Atoms, f.Atom)
		}
	}

	// Fact-covered atoms: fully ground atoms whose row is known.
	factCovered := make([]bool, len(q.Atoms))
	for i, a := range q.Atoms {
		if !atomGround(a) {
			continue
		}
		for _, f := range fi.pos[a.Table] {
			if atomsEqual(a, f.Atom) {
				factCovered[i] = true
				break
			}
		}
	}

	// Enumerate view embeddings and derive candidates.
	timed := c.reg.Enabled()
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	cands, canceled := c.gatherCandidates(ctx, comp, q, target, cs, occ, fi)
	if timed {
		el := time.Since(t0)
		c.mColdGather.Observe(el.Microseconds())
		obsv.SpanSetFrom(ctx).Record("cover.gather", el)
	}
	if canceled {
		return coverResult{reason: "check canceled"}
	}

	// Choose a candidate per uncovered atom; then validate joint
	// visibility of join and head variables.
	need := make([]int, 0, len(q.Atoms))
	for i := range q.Atoms {
		if !factCovered[i] {
			need = append(need, i)
		}
	}
	if len(need) == 0 {
		return coverResult{ok: true}
	}

	options := make([][]int, len(need))
	for ni, ai := range need {
		for ci, cand := range cands {
			if cand.covers[ai] {
				options[ni] = append(options[ni], ci)
			}
		}
		if len(options[ni]) == 0 {
			return coverResult{
				reason: fmt.Sprintf("atom %s is not covered by any policy view", q.Atoms[ai]),
			}
		}
	}

	if timed {
		t0 = time.Now()
	}
	assign := make([]int, len(need))
	var steps int
	found, searchCanceled := c.searchAssignment(ctx, q, occ, cands, need, options, assign, 0, &steps)
	if timed {
		el := time.Since(t0)
		c.mColdSearch.Observe(el.Microseconds())
		obsv.SpanSetFrom(ctx).Record("cover.search", el)
	}
	if searchCanceled {
		return coverResult{reason: "check canceled"}
	}
	if found {
		used := map[string]bool{}
		for _, ci := range assign {
			used[cands[ci].viewName] = true
		}
		var views []string
		for v := range used {
			views = append(views, v)
		}
		sort.Strings(views)
		return coverResult{ok: true, views: views}
	}
	return coverResult{
		reason: "no combination of view embeddings determines the query's answer",
	}
}

// coldParallelViews is the minimum surviving-candidate-view count
// before the per-disjunct enumeration fans out on the pool; below it
// the chunk bookkeeping costs more than it saves.
const coldParallelViews = 8

// coldChunkSize is how many candidate views one parallel enumeration
// task handles.
const coldChunkSize = 8

// gatherCandidates enumerates view embeddings into the target and
// derives covering candidates, in policy-view order (parallel chunks
// are merged back in view order, so the candidate list — and
// therefore the assignment the search finds — is identical to the
// serial one). The bool result reports cancellation.
func (c *Checker) gatherCandidates(ctx context.Context, comp *compiledPolicy, q *cq.Query, target *cq.Query, targetCS *cq.Constraints, occ map[string]varOcc, fi *factIndex) ([]candidate, bool) {
	if !c.opts.ColdIndex {
		// Ablation: the original serial scan over every policy view,
		// rebuilding the target constraint closure per view.
		var cands []candidate
		for vi := range comp.views {
			if ctx.Err() != nil {
				return nil, true
			}
			v := &comp.views[vi]
			homs := cq.FindHoms(v.q, target, nil, c.opts.MaxHomsPerView)
			cands = deriveCandidates(cands, v, homs, q, occ)
		}
		return cands, false
	}

	// Indexed path. The embedding target's relation signature: the
	// query's atoms plus the positive facts.
	targetMask := fi.mask
	qRels := make([]int, 0, len(q.Atoms))
	for _, a := range q.Atoms {
		if id, ok := comp.syms.id(a.Table); ok && !containsInt(qRels, id) {
			qRels = append(qRels, id)
			targetMask |= relBit(id)
		}
	}
	targetRels := mergeSortedSets(qRels, fi.rels)

	// Gather candidate views from the inverted index — only views
	// sharing a relation with the query's own atoms can cover one —
	// and prune those mentioning a relation the target lacks (no hom
	// can exist). The mask test is a one-word bloom filter; survivors
	// are confirmed against the exact relation sets.
	seen := make([]bool, len(comp.views))
	var idxs []int
	for _, a := range q.Atoms {
		id, ok := comp.syms.id(a.Table)
		if !ok {
			continue
		}
		for _, vi := range comp.byRel[id] {
			if seen[vi] {
				continue
			}
			seen[vi] = true
			v := &comp.views[vi]
			if v.relMask&^targetMask != 0 || !subsetSorted(v.rels, targetRels) {
				continue
			}
			idxs = append(idxs, vi)
		}
	}
	c.mColdKept.Add(int64(len(idxs)))
	c.mColdPruned.Add(int64(len(comp.views) - len(idxs)))
	if len(idxs) == 0 {
		return nil, false
	}
	sort.Ints(idxs) // restore policy-view order after index-order discovery

	if !c.cold.parallel() || len(idxs) < coldParallelViews {
		// Serial: share the disjunct's already-built target closure
		// across all surviving views.
		var cands []candidate
		for _, vi := range idxs {
			if ctx.Err() != nil {
				return nil, true
			}
			v := &comp.views[vi]
			homs := cq.FindHomsWith(v.q, target, targetCS, nil, c.opts.MaxHomsPerView)
			cands = deriveCandidates(cands, v, homs, q, occ)
		}
		return cands, false
	}

	// Parallel: fixed-size contiguous chunks of the (sorted) survivor
	// list, merged back in chunk order. Each chunk builds a private
	// target closure — a Constraints memoizes internally and must not
	// be shared across goroutines.
	nch := (len(idxs) + coldChunkSize - 1) / coldChunkSize
	parts := make([][]candidate, nch)
	c.cold.run(nch, func(ci int) {
		lo := ci * coldChunkSize
		hi := lo + coldChunkSize
		if hi > len(idxs) {
			hi = len(idxs)
		}
		ccs := cq.NewConstraints()
		ccs.AddAll(target.Comps)
		var cands []candidate
		for _, vi := range idxs[lo:hi] {
			if ctx.Err() != nil {
				return
			}
			v := &comp.views[vi]
			homs := cq.FindHomsWith(v.q, target, ccs, nil, c.opts.MaxHomsPerView)
			cands = deriveCandidates(cands, v, homs, q, occ)
		}
		parts[ci] = cands
	})
	if ctx.Err() != nil {
		return nil, true
	}
	var cands []candidate
	for _, p := range parts {
		cands = append(cands, p...)
	}
	return cands, false
}

// mergeSortedSets unions int set a (sorted in place here) with
// already-sorted set b.
func mergeSortedSets(a, b []int) []int {
	sort.Ints(a)
	if len(b) == 0 {
		return a
	}
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j == len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i == len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// deriveCandidates turns the homomorphisms of one view into covering
// candidates, appending to cands.
func deriveCandidates(cands []candidate, v *compiledView, homs []cq.Hom, q *cq.Query, occ map[string]varOcc) []candidate {
	for _, h := range homs {
		cand := candidate{
			viewName: v.q.Name,
			covers:   make([]bool, len(q.Atoms)),
			visible:  make(map[string]bool),
			enforced: make(map[string]bool),
		}
		for _, ht := range v.q.Head {
			cand.visible[h.Map.Apply(ht).Key()] = true
		}
		// Constraints the view itself enforces, mapped onto query
		// terms: an invisible view column may still satisfy a query
		// comparison when the view's own body implies it.
		viewCS := cq.NewConstraints()
		for _, vc := range v.q.Comps {
			viewCS.Add(h.Map.ApplyComp(vc))
		}
		any := false
		for srcIdx, tgtIdx := range h.AtomImage {
			if tgtIdx >= len(q.Atoms) {
				continue // maps onto a fact atom
			}
			if atomCoverOK(v.q.Atoms[srcIdx], q.Atoms[tgtIdx], v.headVars, viewCS, occ, q, cand.enforced) {
				cand.covers[tgtIdx] = true
				any = true
			}
		}
		if any {
			cands = append(cands, cand)
		}
	}
	return cands
}

// searchPollEvery is how many backtracking nodes the assignment
// search visits between context polls: a pathological template with
// many need atoms and many options per atom can otherwise backtrack
// for seconds with no cancellation check at all.
const searchPollEvery = 1024

// searchAssignment tries candidate assignments for the atoms in need.
// The second result reports cancellation: the search did not finish,
// so the caller must return the never-cached canceled verdict.
func (c *Checker) searchAssignment(ctx context.Context, q *cq.Query, occ map[string]varOcc, cands []candidate, need []int, options [][]int, assign []int, i int, steps *int) (found, canceled bool) {
	*steps++
	if *steps%searchPollEvery == 0 && ctx.Err() != nil {
		return false, true
	}
	if i == len(need) {
		return validateAssignment(q, occ, cands, need, assign), false
	}
	for _, ci := range options[i] {
		assign[i] = ci
		found, canceled = c.searchAssignment(ctx, q, occ, cands, need, options, assign, i+1, steps)
		if found || canceled {
			return found, canceled
		}
	}
	return false, false
}

// validateAssignment enforces the joint visibility conditions: every
// head variable, comparison variable, and variable shared across
// atoms must be visible in the candidates covering those atoms.
func validateAssignment(q *cq.Query, occ map[string]varOcc, cands []candidate, need []int, assign []int) bool {
	// Candidate per atom index.
	byAtom := make(map[int]*candidate, len(need))
	for i, ai := range need {
		byAtom[ai] = &cands[assign[i]]
	}
	for v, o := range occ {
		key := cq.V(v).Key()
		distinguishing := o.inHead || o.inComps || len(o.atoms) > 1 || o.multiInAtom
		if !distinguishing {
			continue
		}
		// A comparison-only variable confined to a single atom is fine
		// when the covering view enforces its constraints itself.
		compOnly := o.inComps && !o.inHead && len(o.atoms) == 1 && !o.multiInAtom
		for ai := range o.atoms {
			cand, covered := byAtom[ai]
			if !covered {
				continue // fact-covered atoms are ground; vars can't occur there
			}
			if cand.visible[key] {
				continue
			}
			if compOnly && cand.enforced[v] {
				continue
			}
			return false
		}
	}
	return true
}

// varOcc summarizes where a query variable occurs.
type varOcc struct {
	atoms       map[int]bool
	inHead      bool
	inComps     bool
	multiInAtom bool // appears twice within one atom
}

func countVarOccurrences(q *cq.Query) map[string]varOcc {
	out := make(map[string]varOcc)
	get := func(v string) varOcc {
		o, ok := out[v]
		if !ok {
			o = varOcc{atoms: make(map[int]bool)}
		}
		return o
	}
	for ai, a := range q.Atoms {
		seenHere := map[string]bool{}
		for _, t := range a.Args {
			if !t.IsVar() {
				continue
			}
			o := get(t.Var)
			o.atoms[ai] = true
			if seenHere[t.Var] {
				o.multiInAtom = true
			}
			seenHere[t.Var] = true
			out[t.Var] = o
		}
	}
	for _, t := range q.Head {
		if t.IsVar() {
			o := get(t.Var)
			o.inHead = true
			out[t.Var] = o
		}
	}
	for _, cmp := range q.Comps {
		for _, t := range []cq.Term{cmp.Left, cmp.Right} {
			if t.IsVar() {
				o := get(t.Var)
				o.inComps = true
				out[t.Var] = o
			}
		}
	}
	return out
}

// atomCoverOK applies the per-position visibility rule for a view atom
// covering a query atom: a position whose query-side term is
// distinguishing (constant, parameter, head/join/comparison variable)
// must be visible in the view head, pinned by the view itself
// (view-side constant or parameter), or — for comparison variables —
// constrained identically by the view's own body (viewCS carries the
// view's comparisons mapped to query terms). viewHead is the view's
// precompiled head-variable set.
func atomCoverOK(viewAtom, qAtom cq.Atom, viewHead map[string]bool, viewCS *cq.Constraints, occ map[string]varOcc, q *cq.Query, enforced map[string]bool) bool {
	for k, y := range viewAtom.Args {
		t := qAtom.Args[k]
		if !y.IsVar() {
			// View-side constant/parameter pins the position.
			continue
		}
		if viewHead[y.Var] {
			continue // visible: filterable and joinable by the caller
		}
		// Invisible view position: acceptable for a pure existential
		// query variable, or for a comparison-only variable whose
		// every constraint the view itself enforces.
		if !t.IsVar() {
			return false
		}
		o := occ[t.Var]
		if o.inHead || len(o.atoms) > 1 || o.multiInAtom {
			return false
		}
		if o.inComps {
			for _, qc := range q.Comps {
				involves := qc.Left.IsVar() && qc.Left.Var == t.Var ||
					qc.Right.IsVar() && qc.Right.Var == t.Var
				if involves && !viewCS.Implies(qc) {
					return false
				}
			}
			enforced[t.Var] = true
		}
	}
	return true
}

// --- small atom helpers ---

func atomGround(a cq.Atom) bool {
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	return true
}

func atomsEqual(a, b cq.Atom) bool {
	if a.Table != b.Table || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if !a.Args[i].Equal(b.Args[i]) {
			return false
		}
	}
	return true
}

// atomInstanceOf reports whether concrete atom a is an instance of
// pattern p (pattern variables bind consistently; constants and
// parameters must match, or be forced equal by the query constraints).
func atomInstanceOf(a, p cq.Atom, cs *cq.Constraints) bool {
	if a.Table != p.Table || len(a.Args) != len(p.Args) {
		return false
	}
	bind := map[string]cq.Term{}
	for i, pt := range p.Args {
		at := a.Args[i]
		if pt.IsVar() {
			if prev, ok := bind[pt.Var]; ok {
				if !prev.Equal(at) && !cs.Implies(cq.Comparison{Op: cq.Eq, Left: prev, Right: at}) {
					return false
				}
			} else {
				bind[pt.Var] = at
			}
			continue
		}
		if !pt.Equal(at) && !cs.Implies(cq.Comparison{Op: cq.Eq, Left: pt, Right: at}) {
			return false
		}
	}
	return true
}
