package checker

// The policy-coverage decision procedure — the "solver" behind the
// pipeline's cover stage. coverAll checks every disjunct of a
// decision template; coverDisjunct enumerates view embeddings and
// searches for an assignment of covering candidates that satisfies
// the joint visibility conditions.

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/cq"
)

// coverAll runs the coverage check for every disjunct of a decision
// template against the given fact set. Callers must check ctx.Err()
// before caching the result: a cancellation mid-loop yields a
// decision that must not be stored.
func (c *Checker) coverAll(ctx context.Context, snap *polSnapshot, tpl []*cq.Query, facts []cq.Fact) Decision {
	d := Decision{Allowed: true}
	usedViews := map[string]bool{}
	for _, q := range tpl {
		res := c.coverDisjunct(ctx, snap, q, facts)
		if ctx.Err() != nil {
			return canceledDecision(ctx)
		}
		if !res.ok {
			return Decision{Allowed: false, Reason: res.reason}
		}
		for _, v := range res.views {
			usedViews[v] = true
		}
	}
	for v := range usedViews {
		d.Views = append(d.Views, v)
	}
	sort.Strings(d.Views)
	if len(d.Views) > 0 {
		d.Reason = "covered by " + strings.Join(d.Views, ", ")
	} else {
		d.Reason = "reveals no database content"
	}
	return d
}

// coverResult is the outcome for one disjunct.
type coverResult struct {
	ok     bool
	views  []string
	reason string
}

// candidate is one usable view embedding.
type candidate struct {
	viewName string
	// covers[i] is true when query atom i is in the embedding's image
	// and every argument position passes the visibility rules.
	covers []bool
	// visible holds the term keys exposed by the view head under the
	// embedding.
	visible map[string]bool
	// enforced holds comparison-only query variables whose every
	// constraint the view's own body implies (so invisibility is
	// acceptable for them).
	enforced map[string]bool
}

// coverDisjunct decides one conjunctive disjunct against a policy
// snapshot. Cancellation is polled between view-embedding searches —
// the expensive inner step — and surfaces as a not-ok result the
// caller must discard after seeing ctx.Err.
func (c *Checker) coverDisjunct(ctx context.Context, snap *polSnapshot, q *cq.Query, facts []cq.Fact) coverResult {
	// A query whose comparisons are unsatisfiable returns nothing.
	cs := cq.NewConstraints()
	cs.AddAll(q.Comps)
	if !cs.Consistent() {
		return coverResult{ok: true}
	}

	// Vacuity via negative facts: an atom that can only match a
	// pattern known to be empty makes the disjunct return nothing.
	for _, a := range q.Atoms {
		for _, f := range facts {
			if f.Negated && atomInstanceOf(a, f.Atom, cs) {
				return coverResult{ok: true}
			}
		}
	}

	if len(q.Atoms) == 0 {
		return coverResult{ok: true} // reveals no database content
	}

	// Occurrence census for visibility rules.
	occ := countVarOccurrences(q)

	// The embedding target: the query's atoms plus positive trace
	// facts as extra known rows.
	target := &cq.Query{Atoms: append([]cq.Atom(nil), q.Atoms...), Comps: q.Comps}
	for _, f := range facts {
		if !f.Negated {
			target.Atoms = append(target.Atoms, f.Atom)
		}
	}

	// Fact-covered atoms: fully ground atoms whose row is known.
	factCovered := make([]bool, len(q.Atoms))
	for i, a := range q.Atoms {
		if !atomGround(a) {
			continue
		}
		for _, f := range facts {
			if !f.Negated && atomsEqual(a, f.Atom) {
				factCovered[i] = true
				break
			}
		}
	}

	// Enumerate view embeddings and derive candidates.
	var cands []candidate
	for _, v := range snap.viewDisj {
		if ctx.Err() != nil {
			return coverResult{reason: "check canceled"}
		}
		homs := cq.FindHoms(v, target, nil, c.opts.MaxHomsPerView)
		for _, h := range homs {
			cand := candidate{
				viewName: v.Name,
				covers:   make([]bool, len(q.Atoms)),
				visible:  make(map[string]bool),
				enforced: make(map[string]bool),
			}
			for _, ht := range v.Head {
				cand.visible[h.Map.Apply(ht).Key()] = true
			}
			// Constraints the view itself enforces, mapped onto query
			// terms: an invisible view column may still satisfy a
			// query comparison when the view's own body implies it.
			viewCS := cq.NewConstraints()
			for _, vc := range v.Comps {
				viewCS.Add(h.Map.ApplyComp(vc))
			}
			any := false
			for srcIdx, tgtIdx := range h.AtomImage {
				if tgtIdx >= len(q.Atoms) {
					continue // maps onto a fact atom
				}
				if c.atomCoverOK(v.Atoms[srcIdx], q.Atoms[tgtIdx], v, viewCS, occ, q, cand.enforced) {
					cand.covers[tgtIdx] = true
					any = true
				}
			}
			if any {
				cands = append(cands, cand)
			}
		}
	}

	// Choose a candidate per uncovered atom; then validate joint
	// visibility of join and head variables.
	need := make([]int, 0, len(q.Atoms))
	for i := range q.Atoms {
		if !factCovered[i] {
			need = append(need, i)
		}
	}
	if len(need) == 0 {
		return coverResult{ok: true}
	}

	options := make([][]int, len(need))
	for ni, ai := range need {
		for ci, cand := range cands {
			if cand.covers[ai] {
				options[ni] = append(options[ni], ci)
			}
		}
		if len(options[ni]) == 0 {
			return coverResult{
				reason: fmt.Sprintf("atom %s is not covered by any policy view", q.Atoms[ai]),
			}
		}
	}

	assign := make([]int, len(need))
	if c.searchAssignment(q, occ, cands, need, options, assign, 0) {
		used := map[string]bool{}
		for _, ci := range assign {
			used[cands[ci].viewName] = true
		}
		var views []string
		for v := range used {
			views = append(views, v)
		}
		sort.Strings(views)
		return coverResult{ok: true, views: views}
	}
	return coverResult{
		reason: "no combination of view embeddings determines the query's answer",
	}
}

// searchAssignment tries candidate assignments for the atoms in need.
func (c *Checker) searchAssignment(q *cq.Query, occ map[string]varOcc, cands []candidate, need []int, options [][]int, assign []int, i int) bool {
	if i == len(need) {
		return validateAssignment(q, occ, cands, need, assign)
	}
	for _, ci := range options[i] {
		assign[i] = ci
		if c.searchAssignment(q, occ, cands, need, options, assign, i+1) {
			return true
		}
	}
	return false
}

// validateAssignment enforces the joint visibility conditions: every
// head variable, comparison variable, and variable shared across
// atoms must be visible in the candidates covering those atoms.
func validateAssignment(q *cq.Query, occ map[string]varOcc, cands []candidate, need []int, assign []int) bool {
	// Candidate per atom index.
	byAtom := make(map[int]*candidate, len(need))
	for i, ai := range need {
		byAtom[ai] = &cands[assign[i]]
	}
	for v, o := range occ {
		key := cq.V(v).Key()
		distinguishing := o.inHead || o.inComps || len(o.atoms) > 1 || o.multiInAtom
		if !distinguishing {
			continue
		}
		// A comparison-only variable confined to a single atom is fine
		// when the covering view enforces its constraints itself.
		compOnly := o.inComps && !o.inHead && len(o.atoms) == 1 && !o.multiInAtom
		for ai := range o.atoms {
			cand, covered := byAtom[ai]
			if !covered {
				continue // fact-covered atoms are ground; vars can't occur there
			}
			if cand.visible[key] {
				continue
			}
			if compOnly && cand.enforced[v] {
				continue
			}
			return false
		}
	}
	return true
}

// varOcc summarizes where a query variable occurs.
type varOcc struct {
	atoms       map[int]bool
	inHead      bool
	inComps     bool
	multiInAtom bool // appears twice within one atom
}

func countVarOccurrences(q *cq.Query) map[string]varOcc {
	out := make(map[string]varOcc)
	get := func(v string) varOcc {
		o, ok := out[v]
		if !ok {
			o = varOcc{atoms: make(map[int]bool)}
		}
		return o
	}
	for ai, a := range q.Atoms {
		seenHere := map[string]bool{}
		for _, t := range a.Args {
			if !t.IsVar() {
				continue
			}
			o := get(t.Var)
			o.atoms[ai] = true
			if seenHere[t.Var] {
				o.multiInAtom = true
			}
			seenHere[t.Var] = true
			out[t.Var] = o
		}
	}
	for _, t := range q.Head {
		if t.IsVar() {
			o := get(t.Var)
			o.inHead = true
			out[t.Var] = o
		}
	}
	for _, cmp := range q.Comps {
		for _, t := range []cq.Term{cmp.Left, cmp.Right} {
			if t.IsVar() {
				o := get(t.Var)
				o.inComps = true
				out[t.Var] = o
			}
		}
	}
	return out
}

// atomCoverOK applies the per-position visibility rule for a view atom
// covering a query atom: a position whose query-side term is
// distinguishing (constant, parameter, head/join/comparison variable)
// must be visible in the view head, pinned by the view itself
// (view-side constant or parameter), or — for comparison variables —
// constrained identically by the view's own body (viewCS carries the
// view's comparisons mapped to query terms).
func (c *Checker) atomCoverOK(viewAtom, qAtom cq.Atom, view *cq.Query, viewCS *cq.Constraints, occ map[string]varOcc, q *cq.Query, enforced map[string]bool) bool {
	viewHead := make(map[string]bool, len(view.Head))
	for _, t := range view.Head {
		if t.IsVar() {
			viewHead[t.Var] = true
		}
	}
	for k, y := range viewAtom.Args {
		t := qAtom.Args[k]
		if !y.IsVar() {
			// View-side constant/parameter pins the position.
			continue
		}
		if viewHead[y.Var] {
			continue // visible: filterable and joinable by the caller
		}
		// Invisible view position: acceptable for a pure existential
		// query variable, or for a comparison-only variable whose
		// every constraint the view itself enforces.
		if !t.IsVar() {
			return false
		}
		o := occ[t.Var]
		if o.inHead || len(o.atoms) > 1 || o.multiInAtom {
			return false
		}
		if o.inComps {
			for _, qc := range q.Comps {
				involves := qc.Left.IsVar() && qc.Left.Var == t.Var ||
					qc.Right.IsVar() && qc.Right.Var == t.Var
				if involves && !viewCS.Implies(qc) {
					return false
				}
			}
			enforced[t.Var] = true
		}
	}
	return true
}

// --- small atom helpers ---

func atomGround(a cq.Atom) bool {
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	return true
}

func atomsEqual(a, b cq.Atom) bool {
	if a.Table != b.Table || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if !a.Args[i].Equal(b.Args[i]) {
			return false
		}
	}
	return true
}

// atomInstanceOf reports whether concrete atom a is an instance of
// pattern p (pattern variables bind consistently; constants and
// parameters must match, or be forced equal by the query constraints).
func atomInstanceOf(a, p cq.Atom, cs *cq.Constraints) bool {
	if a.Table != p.Table || len(a.Args) != len(p.Args) {
		return false
	}
	bind := map[string]cq.Term{}
	for i, pt := range p.Args {
		at := a.Args[i]
		if pt.IsVar() {
			if prev, ok := bind[pt.Var]; ok {
				if !prev.Equal(at) && !cs.Implies(cq.Comparison{Op: cq.Eq, Left: prev, Right: at}) {
					return false
				}
			} else {
				bind[pt.Var] = at
			}
			continue
		}
		if !pt.Equal(at) && !cs.Implies(cq.Comparison{Op: cq.Eq, Left: pt, Right: at}) {
			return false
		}
	}
	return true
}
